/**
 * @file
 * Multi-unit scaling study: dual-stream microprograms against 1/2/4
 * load/store memory units over 8 and 16 banks. Independent streams
 * on disjoint bank sets overlap their address phases as soon as a
 * second unit exists; a Split (dedicated load/store) policy only
 * helps when the program actually mixes the two directions.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("memunits", argc, argv);
}
