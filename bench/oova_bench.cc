/**
 * @file
 * Unified figure driver: run any paper table/figure (or all of
 * them) by name through the parallel sweep engine.
 *
 *   oova_bench --list
 *   oova_bench fig5 --threads 8
 *   oova_bench all --json > BENCH_all.json
 *
 * Trace scale comes from OOVA_SCALE or --scale; --json emits the
 * machine-readable result tables used to track the perf trajectory
 * across PRs.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/check.hh"
#include "harness/figure.hh"

using namespace oova;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <figure>|all|--list [--threads N] "
                 "[--json] [--scale S]\n",
                 argv0);
    std::fprintf(stderr, "figures:\n");
    for (const auto &fig : figureRegistry())
        std::fprintf(stderr, "  %-8s  %s\n", fig.name, fig.title);
    return 2;
}

void
list()
{
    for (const auto &fig : figureRegistry())
        std::printf("%-8s  %s\n", fig.name, fig.title);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string which;
    FigureOptions opts;
    opts.scale = envTraceScale();

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        int r = parseCommonFlag(argc, argv, i, opts);
        if (r < 0)
            return 2;
        if (r == 1)
            continue;
        if (std::strcmp(arg, "--list") == 0) {
            list();
            return 0;
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else if (which.empty()) {
            which = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (which.empty())
        return usage(argv[0]);

    std::vector<const FigureDef *> figs;
    if (which == "all") {
        for (const auto &fig : figureRegistry())
            figs.push_back(&fig);
    } else {
        const FigureDef *fig = findFigure(which);
        if (!fig) {
            std::fprintf(stderr, "unknown figure '%s'\n",
                         which.c_str());
            return usage(argv[0]);
        }
        figs.push_back(fig);
    }

    // One cache and one engine shared across figures, so `all` only
    // generates each trace once.
    TraceCache traces(opts.scale);
    SweepEngine engine(traces, opts.threads);

    if (opts.json)
        std::printf("[\n");
    for (size_t i = 0; i < figs.size(); ++i) {
        FigureResult result = figs[i]->fn(engine);
        std::string out =
            opts.json
                ? renderFigureJson(*figs[i], result, traces.scale(),
                                   engine.threads())
                : renderFigureText(*figs[i], result, traces.scale());
        std::fputs(out.c_str(), stdout);
        if (opts.json && i + 1 < figs.size())
            std::printf(",\n");
        std::fflush(stdout);
    }
    if (opts.json)
        std::printf("]\n");
    // Checkers are observe-only, so a violation never perturbs the
    // figure output above — it only turns the exit code red.
    return check::processExitCode();
}
