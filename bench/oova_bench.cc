/**
 * @file
 * Unified figure driver: run any paper table/figure (or all of
 * them) by name through the parallel sweep engine.
 *
 *   oova_bench --list
 *   oova_bench fig5 --threads 8
 *   oova_bench all --store .oova-store --workers 4 --store-stats
 *   oova_bench all --json > BENCH_all.json
 *   oova_bench hydro2d --pipetrace=hydro2d.pipeview
 *
 * Trace scale comes from OOVA_SCALE or --scale; --json emits the
 * machine-readable result tables used to track the perf trajectory
 * across PRs, each wrapped in a run-manifest envelope. --store makes
 * the run read and feed a content-addressed result store, and
 * --workers shards the sweep over forked worker processes — both
 * produce byte-identical figure output, so they compose freely with
 * the golden gate. With --pipetrace=FILE the positional name selects
 * a benchmark instead of a figure: one OOOVA run is traced per
 * instruction and written in O3PipeView format, which Konata renders
 * as a pipeline waterfall.
 */

#include <cctype>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hh"
#include "common/pipetrace.hh"
#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "harness/figure.hh"
#include "harness/perfetto.hh"
#include "harness/statsdump.hh"

using namespace oova;

namespace
{

void
printUsage(std::FILE *to, const char *argv0)
{
    std::fprintf(
        to,
        "usage: %s <figure>|all|--list [--threads N | --workers N]\n"
        "       %*s [--store DIR] [--store-stats] [--store-max-mb N]\n"
        "       %*s [--store-fsync] [--job-timeout-ms N] "
        "[--max-retries N]\n"
        "       %*s [--stats FILE] [--perfetto FILE] [--json] "
        "[--progress] [--scale S]\n"
        "       %s <benchmark> --pipetrace=FILE [--trace-limit=N] "
        "[--scale S]\n"
        "\n"
        "  --threads N     in-process worker threads (default "
        "backend; 0 = all cores)\n"
        "  --workers N     forked worker processes instead of "
        "threads (0 = all cores)\n"
        "                  --threads and --workers are mutually "
        "exclusive: neither\n"
        "                  takes precedence, passing both is an "
        "error\n"
        "  --job-timeout-ms N  kill and respawn a forked worker "
        "whose next result\n"
        "                  is overdue by N ms, requeueing its jobs "
        "(needs --workers)\n"
        "  --max-retries N extra attempts per job after a worker "
        "failure before\n"
        "                  the sweep fails with the job's attempt "
        "history\n"
        "                  (default 2; needs --workers)\n"
        "  --store DIR     content-addressed result store: serve "
        "previously computed\n"
        "                  results from DIR, persist fresh results "
        "into it\n"
        "  --store-stats   print the [store] hit/miss line to "
        "stderr (needs --store)\n"
        "  --store-max-mb N  cap the store's payload at N MiB: "
        "storing past the cap\n"
        "                  evicts the oldest entries first (needs "
        "--store)\n"
        "  --store-fsync   fsync store entries before publishing "
        "them (crash\n"
        "                  durability; needs --store)\n"
        "  --stats FILE    gem5-style `name value` telemetry dump "
        "of every result\n"
        "                  (\"-\" = stdout); occupancy needs "
        "OOVA_TELEMETRY=1 or a\n"
        "                  telemetry figure\n"
        "  --perfetto FILE Chrome trace-event JSON of the sweep; "
        "open in\n"
        "                  ui.perfetto.dev\n"
        "  --json          machine-readable output with run "
        "manifests\n"
        "  --progress      per-job heartbeat on stderr\n"
        "  --scale S       trace scale (overrides OOVA_SCALE)\n",
        argv0, static_cast<int>(std::strlen(argv0)), "",
        static_cast<int>(std::strlen(argv0)), "",
        static_cast<int>(std::strlen(argv0)), "", argv0);
    std::fprintf(to, "figures:\n");
    for (const auto &fig : figureRegistry())
        std::fprintf(to, "  %-8s  %s\n", fig.name, fig.title);
}

int
usage(const char *argv0)
{
    printUsage(stderr, argv0);
    return 2;
}

void
list()
{
    for (const auto &fig : figureRegistry())
        std::printf("%-8s  %s\n", fig.name, fig.title);
}

/** Run one traced OOOVA simulation and write the Konata file. */
int
runPipetrace(const std::string &bench, const std::string &path,
             size_t limit, double scale)
{
    TraceCache traces(scale);
    const std::vector<std::string> &names = traces.names();
    bool known = false;
    for (const auto &name : names)
        known = known || name == bench;
    if (!known) {
        std::fprintf(stderr, "unknown benchmark '%s'; choose from:",
                     bench.c_str());
        for (const auto &name : names)
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }

    PipeTracer tracer(limit);
    OooConfig cfg = makeOooConfig();
    cfg.pipeTracer = &tracer;
    SimResult res = simulateOoo(traces.get(bench), cfg);
    tracer.finish();
    if (!tracer.write(path)) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "%s: traced %llu of %llu instructions over %llu "
                 "cycles -> %s (load into Konata)\n",
                 bench.c_str(),
                 static_cast<unsigned long long>(tracer.recorded()),
                 static_cast<unsigned long long>(res.instructions),
                 static_cast<unsigned long long>(res.cycles),
                 path.c_str());
    return check::processExitCode();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string which;
    std::string pipetracePath;
    size_t traceLimit = PipeTracer::kDefaultLimit;
    FigureOptions opts;
    opts.scale = envTraceScale();

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        int r = parseCommonFlag(argc, argv, i, opts);
        if (r < 0)
            return 2;
        if (r == 1)
            continue;
        if (std::strcmp(arg, "--list") == 0) {
            list();
            return 0;
        } else if (std::strcmp(arg, "--help") == 0) {
            printUsage(stdout, argv[0]);
            return 0;
        } else if (std::strncmp(arg, "--pipetrace=", 12) == 0) {
            pipetracePath = arg + 12;
            if (pipetracePath.empty()) {
                std::fprintf(stderr,
                             "--pipetrace needs a file name\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--trace-limit=", 14) == 0) {
            const char *val = arg + 14;
            char *end = nullptr;
            unsigned long long n = std::strtoull(val, &end, 10);
            if (!std::isdigit(static_cast<unsigned char>(val[0])) ||
                end == val || *end != '\0' || n == 0) {
                std::fprintf(stderr, "bad --trace-limit '%s'\n",
                             val);
                return 2;
            }
            traceLimit = static_cast<size_t>(n);
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else if (which.empty()) {
            which = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (which.empty())
        return usage(argv[0]);
    if (!validateFigureOptions(opts))
        return 2;

    if (!pipetracePath.empty())
        return runPipetrace(which, pipetracePath, traceLimit,
                            opts.scale);

    std::vector<const FigureDef *> figs;
    if (which == "all") {
        for (const auto &fig : figureRegistry())
            figs.push_back(&fig);
    } else {
        const FigureDef *fig = findFigure(which);
        if (!fig) {
            std::fprintf(stderr, "unknown figure '%s'\n",
                         which.c_str());
            return usage(argv[0]);
        }
        figs.push_back(fig);
    }

    // One cache, one store and one engine shared across figures, so
    // `all` only generates each trace once and every figure feeds
    // the same store.
    TraceCache traces(opts.scale);
    std::unique_ptr<ResultStore> store;
    if (!opts.storeDir.empty()) {
        store = std::make_unique<ResultStore>(opts.storeDir);
        if (opts.storeMaxMb)
            store->setMaxBytes(opts.storeMaxMb << 20);
        if (opts.storeFsync)
            store->setFsync(true);
    }
    SweepEngine engine = makeSweepEngine(traces, opts, store.get());
    if (opts.progress)
        installProgressMeter(engine);
    if (opts.json)
        engine.enableManifest();
    SweepTraceLog traceLog;
    if (!opts.perfettoPath.empty())
        engine.setTraceLog(&traceLog);
    if (!opts.statsPath.empty())
        engine.enableResultCapture();

    if (opts.json)
        std::printf("[\n");
    for (size_t i = 0; i < figs.size(); ++i) {
        // The engine's manifest accumulates across figures; this
        // figure's jobs are the records added while it ran, and its
        // store traffic is the counter movement while it ran.
        size_t firstJob = engine.manifest().size();
        StoreStats before;
        if (store)
            before = store->stats();
        SweepFaultStats faultsBefore = engine.faultStats();
        auto t0 = std::chrono::steady_clock::now();
        FigureResult result = figs[i]->fn(engine);
        std::string out;
        if (opts.json) {
            RunManifest manifest;
            manifest.scale = traces.scale();
            manifest.threads = engine.threads();
            manifest.backend = engine.backendName();
            manifest.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (store) {
                manifest.hasStore = true;
                manifest.store = store->stats() - before;
            }
            manifest.faults = engine.faultStats() - faultsBefore;
            manifest.jobs.assign(
                engine.manifest().begin() +
                    static_cast<std::ptrdiff_t>(firstJob),
                engine.manifest().end());
            out = renderFigureJson(*figs[i], result, traces.scale(),
                                   engine.threads(), &manifest);
        } else {
            out = renderFigureText(*figs[i], result, traces.scale());
        }
        std::fputs(out.c_str(), stdout);
        if (opts.json && i + 1 < figs.size())
            std::printf(",\n");
        std::fflush(stdout);
    }
    if (opts.json)
        std::printf("]\n");
    if (store && opts.storeStats)
        printStoreStats(*store);
    bool sideFilesOk = true;
    if (!opts.statsPath.empty())
        sideFilesOk = writeStatsDump(opts.statsPath,
                                     engine.captured()) &&
                      sideFilesOk;
    if (!opts.perfettoPath.empty())
        sideFilesOk = traceLog.write(opts.perfettoPath) &&
                      sideFilesOk;
    if (!sideFilesOk)
        return 1;
    // Checkers are observe-only, so a violation never perturbs the
    // figure output above — it only turns the exit code red.
    return check::processExitCode();
}
