/**
 * @file
 * Figure 8: total execution time as main-memory latency varies over
 * {1, 50, 100} cycles, for REF, OOOVA-16 and IDEAL (16 physical
 * vector registers). The paper: REF is very sensitive to latency;
 * OOOVA performance is nearly flat from 1 to 100 cycles (less than
 * 6% degradation at 100), and OOOVA beats REF by 1.15-1.25 even at
 * latency 1.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig8", argc, argv);
}
