/**
 * @file
 * Figure 8: total execution time as main-memory latency varies over
 * {1, 50, 100} cycles, for REF, OOOVA-16 and IDEAL (16 physical
 * vector registers). The paper: REF is very sensitive to latency;
 * OOOVA performance is nearly flat from 1 to 100 cycles (less than
 * 6% degradation at 100), and OOOVA beats REF by 1.15-1.25 even at
 * latency 1.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 8: tolerance of main-memory latency", w);

    const unsigned lats[] = {1, 50, 100};
    TextTable table({"Program", "REF@1", "REF@50", "REF@100",
                     "OOO@1", "OOO@50", "OOO@100", "IDEAL",
                     "OOO 100/1", "spdup@1"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        std::vector<std::string> row{name};
        Cycle ref1 = 0, ooo1 = 0, ooo100 = 0;
        for (unsigned l : lats) {
            SimResult r = simulateRef(t, makeRefConfig(l));
            if (l == 1)
                ref1 = r.cycles;
            row.push_back(TextTable::fmt(r.cycles));
        }
        for (unsigned l : lats) {
            SimResult r = simulateOoo(t, makeOooConfig(16, 16, l));
            if (l == 1)
                ooo1 = r.cycles;
            if (l == 100)
                ooo100 = r.cycles;
            row.push_back(TextTable::fmt(r.cycles));
        }
        row.push_back(TextTable::fmt(idealCycles(t)));
        row.push_back(TextTable::fmt(
            static_cast<double>(ooo100) / static_cast<double>(ooo1),
            2));
        row.push_back(TextTable::fmt(
            static_cast<double>(ref1) / static_cast<double>(ooo1),
            2));
        table.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: OOOVA flat across 1..100 cycles; speedup "
                "1.15-1.25 even at latency 1)\n");
    return 0;
}
