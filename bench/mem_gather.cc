/**
 * @file
 * Gather index-pattern study: the same gather loop with its index
 * vector declared as a bank-friendly permutation, congruent mod 8,
 * and uniform random, against an 8-bank memory. With per-element
 * bank mapping the three patterns separate cleanly: the permutation
 * runs conflict-free, congruent-mod-8 serializes on one bank, and
 * random indices sit in between.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("memgather", argc, argv);
}
