/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): how many
 * simulated instructions per second each model sustains, plus the
 * cost of trace generation and of a whole sweep batch through the
 * parallel sweep engine. These guard against performance regressions
 * in the simulators and in the sweep path every figure runs on.
 * (For a quick table without google-benchmark, run
 * `oova_bench simspeed`.)
 */

#include <benchmark/benchmark.h>

#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

const TraceCache &
sharedTraces()
{
    static TraceCache cache(0.5);
    return cache;
}

const Trace &
cachedTrace()
{
    return sharedTraces().get("hydro2d");
}

} // namespace

static void
BM_TraceGeneration(benchmark::State &state)
{
    GenOptions o;
    o.scale = 0.25;
    size_t n = 0;
    for (auto _ : state) {
        Trace t = makeBenchmarkTrace("swm256", o);
        n = t.size();
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_TraceGeneration);

static void
BM_RefSim(benchmark::State &state)
{
    const Trace &t = cachedTrace();
    for (auto _ : state) {
        SimResult r = simulateRef(t, RefConfig{});
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * t.size()));
}
BENCHMARK(BM_RefSim);

static void
BM_OooSim(benchmark::State &state)
{
    const Trace &t = cachedTrace();
    OooConfig cfg;
    cfg.numPhysVRegs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        SimResult r = simulateOoo(t, cfg);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * t.size()));
}
BENCHMARK(BM_OooSim)->Arg(16)->Arg(64);

static void
BM_OooSimLoadElim(benchmark::State &state)
{
    const Trace &t = cachedTrace();
    OooConfig cfg;
    cfg.numPhysVRegs = 32;
    cfg.commit = CommitMode::Late;
    cfg.loadElim = LoadElimMode::SleVle;
    for (auto _ : state) {
        SimResult r = simulateOoo(t, cfg);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * t.size()));
}
BENCHMARK(BM_OooSimLoadElim);

/**
 * A whole figure-sized batch through the sweep engine: all ten
 * benchmarks on the default OOOVA, with the thread count as the
 * benchmark argument.
 */
static void
BM_SweepEngine(benchmark::State &state)
{
    const TraceCache &traces = sharedTraces();
    SweepEngine engine(traces,
                       static_cast<unsigned>(state.range(0)));
    std::vector<SweepJob> jobs;
    uint64_t elems = 0;
    for (const auto &name : traces.names()) {
        jobs.push_back(oooJob(name, makeOooConfig(16, 16, 50)));
        elems += traces.get(name).size();
    }
    for (auto _ : state) {
        std::vector<SimResult> res = engine.run(jobs);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * elems));
}
// Real time, not CPU time: the engine's worker threads do the work,
// so the main thread's CPU time would overstate throughput wildly.
BENCHMARK(BM_SweepEngine)->Arg(1)->Arg(4)->UseRealTime();

BENCHMARK_MAIN();
