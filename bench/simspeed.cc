/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): how many
 * simulated instructions per second each model sustains, plus the
 * cost of trace generation. These guard against performance
 * regressions in the simulators themselves.
 */

#include <benchmark/benchmark.h>

#include "core/ooosim.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

const Trace &
cachedTrace()
{
    static Trace t = [] {
        GenOptions o;
        o.scale = 0.5;
        return makeBenchmarkTrace("hydro2d", o);
    }();
    return t;
}

} // namespace

static void
BM_TraceGeneration(benchmark::State &state)
{
    GenOptions o;
    o.scale = 0.25;
    size_t n = 0;
    for (auto _ : state) {
        Trace t = makeBenchmarkTrace("swm256", o);
        n = t.size();
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_TraceGeneration);

static void
BM_RefSim(benchmark::State &state)
{
    const Trace &t = cachedTrace();
    for (auto _ : state) {
        SimResult r = simulateRef(t, RefConfig{});
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * t.size()));
}
BENCHMARK(BM_RefSim);

static void
BM_OooSim(benchmark::State &state)
{
    const Trace &t = cachedTrace();
    OooConfig cfg;
    cfg.numPhysVRegs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        SimResult r = simulateOoo(t, cfg);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * t.size()));
}
BENCHMARK(BM_OooSim)->Arg(16)->Arg(64);

static void
BM_OooSimLoadElim(benchmark::State &state)
{
    const Trace &t = cachedTrace();
    OooConfig cfg;
    cfg.numPhysVRegs = 32;
    cfg.commit = CommitMode::Late;
    cfg.loadElim = LoadElimMode::SleVle;
    for (auto _ : state) {
        SimResult r = simulateOoo(t, cfg);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * t.size()));
}
BENCHMARK(BM_OooSimLoadElim);

BENCHMARK_MAIN();
