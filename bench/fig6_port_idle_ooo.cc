/**
 * @file
 * Figure 6: percentage of idle memory-port cycles, reference vs
 * OOOVA (16 physical vector registers, memory latency 50). The
 * paper: "the fraction of idle memory cycles is more than cut in
 * half in most cases; for all but two benchmarks the port is idle
 * less than 20% of the time."
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig6", argc, argv);
}
