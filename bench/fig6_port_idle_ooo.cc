/**
 * @file
 * Figure 6: percentage of idle memory-port cycles, reference vs
 * OOOVA (16 physical vector registers, memory latency 50). The
 * paper: "the fraction of idle memory cycles is more than cut in
 * half in most cases; for all but two benchmarks the port is idle
 * less than 20% of the time."
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 6: memory-port idle, REF vs OOOVA", w);

    TextTable table({"Program", "REF idle%", "OOOVA idle%"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        SimResult ref = simulateRef(t, makeRefConfig(50));
        SimResult ooo = simulateOoo(t, makeOooConfig(16, 16, 50));
        table.addRow({name,
                      TextTable::fmt(100.0 * ref.portIdleFraction(), 1),
                      TextTable::fmt(100.0 * ooo.portIdleFraction(),
                                     1)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: OOOVA cuts idle cycles by more than half in "
                "most cases)\n");
    return 0;
}
