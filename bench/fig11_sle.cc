/**
 * @file
 * Figure 11: speedup of scalar load elimination (SLE) over the
 * late-commit OOOVA, for 16/32/64 physical vector registers. The
 * paper: most programs gain under 5%, but trfd and dyfesm reach
 * 1.30/1.36 because bypassing scalar loop-carried data lets the
 * machine overlap ("dynamically unroll") more iterations.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig11", argc, argv);
}
