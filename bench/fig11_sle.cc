/**
 * @file
 * Figure 11: speedup of scalar load elimination (SLE) over the
 * late-commit OOOVA, for 16/32/64 physical vector registers. The
 * paper: most programs gain under 5%, but trfd and dyfesm reach
 * 1.30/1.36 because bypassing scalar loop-carried data lets the
 * machine overlap ("dynamically unroll") more iterations.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 11: SLE speedup over late-commit OOOVA", w);

    const unsigned regs[] = {16, 32, 64};
    TextTable table({"Program", "16r", "32r", "64r", "sElims@32"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        std::vector<std::string> row{name};
        uint64_t elims = 0;
        for (unsigned r : regs) {
            SimResult base = simulateOoo(
                t, makeOooConfig(r, 16, 50, CommitMode::Late));
            SimResult sle = simulateOoo(
                t, makeOooConfig(r, 16, 50, CommitMode::Late,
                                 LoadElimMode::Sle));
            if (r == 32)
                elims = sle.scalarLoadsEliminated;
            row.push_back(TextTable::fmt(speedup(base, sle), 2));
        }
        row.push_back(TextTable::fmt(elims));
        table.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: <1.05 for most programs; 1.30/1.36 for "
                "trfd/dyfesm at 32 regs)\n");
    return 0;
}
