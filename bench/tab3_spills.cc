/**
 * @file
 * Table 3: vector memory spill operations (words moved) per
 * program, split into real and spill traffic, plus the scalar spill
 * census. The paper highlights bdna, where over 69% of all memory
 * traffic is spill traffic.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "trace/trace_stats.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Table 3: vector memory spill operations", w);

    TextTable table({"Program", "VLoad", "VLoadSpill", "VStore",
                     "VStoreSpill", "Spill%", "SLoadSpill",
                     "SStoreSpill"});
    for (const auto &name : w.names()) {
        TraceStats s = TraceStats::compute(w.get(name));
        table.addRow(
            {name, TextTable::fmt(s.vecLoadOps),
             TextTable::fmt(s.vecSpillLoadOps),
             TextTable::fmt(s.vecStoreOps),
             TextTable::fmt(s.vecSpillStoreOps),
             TextTable::fmt(100.0 * s.spillTrafficFraction(), 1),
             TextTable::fmt(s.scalarSpillLoads),
             TextTable::fmt(s.scalarSpillStores)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: several programs have large spill traffic; "
                "bdna over 69%% of total)\n");
    return 0;
}
