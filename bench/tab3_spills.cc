/**
 * @file
 * Table 3: vector memory spill operations (words moved) per
 * program, split into real and spill traffic, plus the scalar spill
 * census. The paper highlights bdna, where over 69% of all memory
 * traffic is spill traffic.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("tab3", argc, argv);
}
