/**
 * @file
 * Figure 4: percentage of cycles the memory port is idle on the
 * reference architecture, for memory latencies of 1, 20, 70 and 100
 * cycles. The paper reports 30-65% idle at latency 70 across the
 * ten programs, showing the in-order machine cannot keep its single
 * memory port busy.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 4: REF memory-port idle cycles", w);

    const unsigned lats[] = {1, 20, 70, 100};
    TextTable table(
        {"Program", "lat1", "lat20", "lat70", "lat100"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        std::vector<std::string> row{name};
        for (unsigned l : lats) {
            SimResult r = simulateRef(t, makeRefConfig(l));
            row.push_back(
                TextTable::fmt(100.0 * r.portIdleFraction(), 1));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: 30-65%% idle at latency 70; all ten "
                "programs are memory bound)\n");
    return 0;
}
