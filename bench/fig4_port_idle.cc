/**
 * @file
 * Figure 4: percentage of cycles the memory port is idle on the
 * reference architecture, for memory latencies of 1, 20, 70 and 100
 * cycles. The paper reports 30-65% idle at latency 70 across the
 * ten programs, showing the in-order machine cannot keep its single
 * memory port busy.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig4", argc, argv);
}
