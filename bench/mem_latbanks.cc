/**
 * @file
 * Latency x banks: the paper's figure-8 latency-tolerance experiment
 * extended with the memory hierarchy as a second axis — OOOVA cycles
 * under the flat bus and under 4- and 16-bank memories at main-memory
 * latencies 1/50/100.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("memlat", argc, argv);
}
