/**
 * @file
 * Figure 13: memory-traffic reduction under dynamic load
 * elimination with 32 physical vector registers: the ratio of
 * address-bus requests issued by the baseline late-commit OOOVA to
 * those issued by the SLE and SLE+VLE configurations.
 *
 * The paper: SLE+VLE removes 15-20% of all memory requests for most
 * programs and up to 40% for trfd/dyfesm.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig13", argc, argv);
}
