/**
 * @file
 * Figure 13: memory-traffic reduction under dynamic load
 * elimination with 32 physical vector registers: the ratio of
 * address-bus requests issued by the baseline late-commit OOOVA to
 * those issued by the SLE and SLE+VLE configurations.
 *
 * The paper: SLE+VLE removes 15-20% of all memory requests for most
 * programs and up to 40% for trfd/dyfesm.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 13: traffic reduction at 32 registers", w);

    TextTable table({"Program", "base reqs", "SLE reqs",
                     "SLE+VLE reqs", "SLE red%", "SLE+VLE red%"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        SimResult base = simulateOoo(
            t, makeOooConfig(32, 16, 50, CommitMode::Late));
        SimResult sle = simulateOoo(
            t, makeOooConfig(32, 16, 50, CommitMode::Late,
                             LoadElimMode::Sle));
        SimResult vle = simulateOoo(
            t, makeOooConfig(32, 16, 50, CommitMode::Late,
                             LoadElimMode::SleVle));
        auto reduction = [&](const SimResult &x) {
            return 100.0 * (1.0 - static_cast<double>(x.memRequests) /
                                      static_cast<double>(
                                          base.memRequests));
        };
        table.addRow({name, TextTable::fmt(base.memRequests),
                      TextTable::fmt(sle.memRequests),
                      TextTable::fmt(vle.memRequests),
                      TextTable::fmt(reduction(sle), 1),
                      TextTable::fmt(reduction(vle), 1)});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: 15-20%% typical reduction, up to 40%% for "
                "trfd/dyfesm)\n");
    return 0;
}
