/**
 * @file
 * Figure 3: functional-unit usage breakdown for the reference
 * architecture. Each execution cycle is classified by the 3-tuple
 * (FU2, FU1, MEM) of busy units; the paper plots the time in each of
 * the 8 states for memory latencies 1, 20, 70 and 100 (hydro2d and
 * dyfesm shown there; we print all ten programs).
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 3: REF execution-state breakdown", w);

    const unsigned lats[] = {1, 20, 70, 100};
    for (const auto &name : w.names()) {
        std::printf("--- %s ---\n", name.c_str());
        std::vector<std::string> hdr{"State"};
        for (unsigned l : lats)
            hdr.push_back("lat" + std::to_string(l) + " (%)");
        TextTable table(hdr);

        std::array<SimResult, 4> res;
        for (size_t i = 0; i < 4; ++i)
            res[i] = simulateRef(w.get(name), makeRefConfig(lats[i]));

        for (int st = UnitStateBreakdown::kNumStates - 1; st >= 0;
             --st) {
            std::vector<std::string> row{
                UnitStateBreakdown::stateName(st)};
            for (size_t i = 0; i < 4; ++i) {
                double pct = 100.0 *
                             static_cast<double>(res[i].stateCycles[st]) /
                             static_cast<double>(res[i].cycles);
                row.push_back(TextTable::fmt(pct, 1));
            }
            table.addRow(row);
        }
        std::vector<std::string> tot{"total cycles"};
        for (size_t i = 0; i < 4; ++i)
            tot.push_back(TextTable::fmt(res[i].cycles));
        table.addRow(tot);
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("(paper: few cycles at peak state <FU2,FU1,MEM>; "
                "idle state < , , > grows with latency)\n");
    return 0;
}
