/**
 * @file
 * Figure 3: functional-unit usage breakdown for the reference
 * architecture. Each execution cycle is classified by the 3-tuple
 * (FU2, FU1, MEM) of busy units; the paper plots the time in each of
 * the 8 states for memory latencies 1, 20, 70 and 100 (hydro2d and
 * dyfesm shown there; we print all ten programs).
 *
 * Paper's observations: few cycles at the peak state <FU2,FU1,MEM>;
 * the all-idle state < , , > grows with memory latency.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig3", argc, argv);
}
