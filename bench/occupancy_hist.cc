/**
 * @file
 * Occupancy telemetry: per-structure occupancy histograms (mean and
 * p95) for REF and two OOOVA register pools across the ten
 * benchmarks, sampled every cycle by the telemetry layer
 * (cfg.telemetry / OOVA_TELEMETRY=1). Not a paper figure — this is
 * the observability companion to the CPI stack: where cpi_stack
 * says where cycles went, this says how full each machine structure
 * was while they did. The occupancy-conservation checker pins every
 * distribution's sample weight to the run's cycle count, so the
 * numbers here cannot drift from the simulated timeline.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("occupancy", argc, argv);
}
