/**
 * @file
 * Table 1: functional-unit latencies of the two architectures. The
 * scanned paper's table is partially illegible; these are the
 * reconstructed values used throughout this reproduction (see
 * DESIGN.md section 2). Printed so every experiment's parameters
 * are on record.
 */

#include <cstdio>

#include "common/table.hh"
#include "isa/latency.hh"

using namespace oova;

int
main()
{
    LatencyTable ref = LatencyTable::refDefaults();
    LatencyTable ooo = LatencyTable::oooDefaults();

    std::printf("== Table 1: functional unit latencies (cycles) ==\n\n");
    TextTable table({"Parameter", "REF", "OOOVA"});
    auto row = [&](const char *name, unsigned a, unsigned b) {
        table.addRow({name, TextTable::fmt(uint64_t(a)),
                      TextTable::fmt(uint64_t(b))});
    };
    row("read x-bar", ref.readXbar, ooo.readXbar);
    row("write x-bar (vector)", ref.writeXbarVector,
        ooo.writeXbarVector);
    row("write x-bar (scalar)", ref.writeXbarScalar,
        ooo.writeXbarScalar);
    row("vector startup (*)", ref.vectorStartup, ooo.vectorStartup);
    row("move", ref.moveLat, ooo.moveLat);
    row("add/logic/shift", ref.addLogic, ooo.addLogic);
    row("mul", ref.mul, ooo.mul);
    row("div/sqrt", ref.divSqrt, ooo.divSqrt);
    row("memory (default, swept)", ref.memLatency, ooo.memLatency);
    row("branch mispredict", ref.branchMispredict,
        ooo.branchMispredict);
    std::printf("%s\n", table.str().c_str());
    std::printf("(*) as in the paper's footnote: 0 in OOOVA, 1 in "
                "REF.\n");
    return 0;
}
