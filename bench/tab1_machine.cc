/**
 * @file
 * Table 1: functional-unit latencies of the two architectures. The
 * scanned paper's table is partially illegible; these are the
 * reconstructed values used throughout this reproduction (see
 * DESIGN.md section 2). Printed so every experiment's parameters
 * are on record.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("tab1", argc, argv);
}
