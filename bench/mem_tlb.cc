/**
 * @file
 * Virtual-memory study: the OOOVA on the flat bus with a TLB in
 * front, swept over TLB reach (entries x page size) across the ten
 * benchmarks, plus a hardware-walk vs software-trap refill
 * comparison under late commit. Strided streams translate once per
 * page crossed and stay warm; nasa7's random gather translates per
 * element and thrashes small TLBs.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("memtlb", argc, argv);
}
