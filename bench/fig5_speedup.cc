/**
 * @file
 * Figure 5: speedup of the OOOVA over the reference architecture as
 * the number of physical vector registers varies (9, 12, 16, 32,
 * 64), for 16-deep and 128-deep instruction queues, against the
 * IDEAL bound. Memory latency 50 cycles, early commit.
 *
 * Paper's observations to compare against: speedups of 1.24-1.72 at
 * 16 registers (lowest tomcatv, highest trfd/dyfesm); 12 registers
 * already close; little further gain past 16 except bdna; deeper
 * queues add little.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig5", argc, argv);
}
