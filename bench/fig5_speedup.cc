/**
 * @file
 * Figure 5: speedup of the OOOVA over the reference architecture as
 * the number of physical vector registers varies (9, 12, 16, 32,
 * 64), for 16-deep and 128-deep instruction queues, against the
 * IDEAL bound. Memory latency 50 cycles, early commit.
 *
 * Paper's observations to compare against: speedups of 1.24-1.72 at
 * 16 registers (lowest tomcatv, highest trfd/dyfesm); 12 registers
 * already close; little further gain past 16 except bdna; deeper
 * queues add little.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 5: OOOVA speedup vs physical vector registers",
                w);

    const unsigned regs[] = {9, 12, 16, 32, 64};

    TextTable table({"Program", "q16/9r", "q16/12r", "q16/16r",
                     "q16/32r", "q16/64r", "q128/16r", "q128/64r",
                     "IDEAL"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        SimResult ref = simulateRef(t, makeRefConfig(50));
        std::vector<std::string> row{name};
        for (unsigned r : regs) {
            SimResult ooo = simulateOoo(t, makeOooConfig(r, 16, 50));
            row.push_back(TextTable::fmt(speedup(ref, ooo), 2));
        }
        for (unsigned r : {16u, 64u}) {
            SimResult ooo = simulateOoo(t, makeOooConfig(r, 128, 50));
            row.push_back(TextTable::fmt(speedup(ref, ooo), 2));
        }
        double ideal = static_cast<double>(ref.cycles) /
                       static_cast<double>(idealCycles(t));
        row.push_back(TextTable::fmt(ideal, 2));
        table.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: 1.24-1.72 at 16 regs; 12 regs nearly as "
                "good; queues 128 ~ queues 16)\n");
    return 0;
}
