/**
 * @file
 * Ablation studies beyond the paper (DESIGN.md section 8):
 *   1. load->FU chaining in the OOOVA (the paper's machine inherits
 *      the C3400's no-load-chaining datapath; what would adding the
 *      chaining path buy?)
 *   2. instruction-queue depth sweep (extends figure 5's two points)
 *   3. REF with dynamic port-conflict modeling (what careless,
 *      port-oblivious register allocation would cost the in-order
 *      machine)
 *   4. commit width sweep
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Ablations: chaining, queue depth, ports, commit "
                "width",
                w);

    // 1. load->FU chaining.
    {
        TextTable t({"Program", "no-chain cyc", "chain cyc",
                     "chain gain"});
        for (const auto &name : w.names()) {
            OooConfig base = makeOooConfig(16, 16, 50);
            OooConfig chain = base;
            chain.chainLoadsToFus = true;
            SimResult a = simulateOoo(w.get(name), base);
            SimResult b = simulateOoo(w.get(name), chain);
            t.addRow({name, TextTable::fmt(a.cycles),
                      TextTable::fmt(b.cycles),
                      TextTable::fmt(speedup(a, b), 2)});
        }
        std::printf("-- load->FU chaining --\n%s\n", t.str().c_str());
    }

    // 2. queue depth sweep.
    {
        TextTable t({"Program", "q4", "q8", "q16", "q32", "q64",
                     "q128"});
        for (const auto &name : {"swm256", "trfd", "dyfesm", "bdna"}) {
            const Trace &tr = w.get(name);
            SimResult ref = simulateRef(tr, makeRefConfig(50));
            std::vector<std::string> row{name};
            for (unsigned q : {4u, 8u, 16u, 32u, 64u, 128u}) {
                SimResult r = simulateOoo(tr, makeOooConfig(16, q, 50));
                row.push_back(TextTable::fmt(speedup(ref, r), 2));
            }
            t.addRow(row);
        }
        std::printf("-- queue depth (speedup over REF) --\n%s\n",
                    t.str().c_str());
    }

    // 3. REF banked-file port conflicts.
    {
        TextTable t({"Program", "compiler-sched cyc",
                     "port-oblivious cyc", "slowdown"});
        for (const auto &name : {"swm256", "arc2d", "su2cor"}) {
            RefConfig off = makeRefConfig(50);
            RefConfig on = makeRefConfig(50);
            on.modelPortConflicts = true;
            SimResult a = simulateRef(w.get(name), off);
            SimResult b = simulateRef(w.get(name), on);
            t.addRow({name, TextTable::fmt(a.cycles),
                      TextTable::fmt(b.cycles),
                      TextTable::fmt(speedup(a, b) > 0
                                         ? 1.0 / speedup(a, b)
                                         : 0.0,
                                     2)});
        }
        std::printf(
            "-- REF register-file port conflicts --\n%s\n",
            t.str().c_str());
    }

    // 4. commit width.
    {
        TextTable t({"Program", "w1", "w2", "w4", "w8"});
        for (const auto &name : {"tomcatv", "dyfesm"}) {
            const Trace &tr = w.get(name);
            std::vector<std::string> row{name};
            for (unsigned cw : {1u, 2u, 4u, 8u}) {
                OooConfig c = makeOooConfig(16, 16, 50);
                c.commitWidth = cw;
                row.push_back(
                    TextTable::fmt(simulateOoo(tr, c).cycles));
            }
            t.addRow(row);
        }
        std::printf("-- commit width (cycles) --\n%s\n",
                    t.str().c_str());
    }
    return 0;
}
