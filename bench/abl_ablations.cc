/**
 * @file
 * Ablation studies beyond the paper (DESIGN.md section 8):
 *   1. load->FU chaining in the OOOVA (the paper's machine inherits
 *      the C3400's no-load-chaining datapath; what would adding the
 *      chaining path buy?)
 *   2. instruction-queue depth sweep (extends figure 5's two points)
 *   3. REF with dynamic port-conflict modeling (what careless,
 *      port-oblivious register allocation would cost the in-order
 *      machine)
 *   4. commit width sweep
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("abl", argc, argv);
}
