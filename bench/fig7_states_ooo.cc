/**
 * @file
 * Figure 7: breakdown of execution cycles into the 8 (FU2, FU1,
 * MEM) states for REF vs OOOVA (16 physical vector registers,
 * latency 50). The paper: the all-idle state ( , , ) almost
 * disappears under the OOOVA and the fully-utilized state becomes
 * relatively more frequent.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 7: execution-state breakdown, REF vs OOOVA",
                w);

    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        SimResult ref = simulateRef(t, makeRefConfig(50));
        SimResult ooo = simulateOoo(t, makeOooConfig(16, 16, 50));

        std::printf("--- %s ---\n", name.c_str());
        TextTable table({"State", "REF %", "OOOVA %"});
        for (int st = UnitStateBreakdown::kNumStates - 1; st >= 0;
             --st) {
            table.addRow(
                {UnitStateBreakdown::stateName(st),
                 TextTable::fmt(100.0 *
                                    static_cast<double>(
                                        ref.stateCycles[st]) /
                                    static_cast<double>(ref.cycles),
                                1),
                 TextTable::fmt(100.0 *
                                    static_cast<double>(
                                        ooo.stateCycles[st]) /
                                    static_cast<double>(ooo.cycles),
                                1)});
        }
        table.addRow({"total cycles", TextTable::fmt(ref.cycles),
                      TextTable::fmt(ooo.cycles)});
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("(paper: the all-idle state < , , > almost "
                "disappears on the OOOVA)\n");
    return 0;
}
