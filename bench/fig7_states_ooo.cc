/**
 * @file
 * Figure 7: breakdown of execution cycles into the 8 (FU2, FU1,
 * MEM) states for REF vs OOOVA (16 physical vector registers,
 * latency 50). The paper: the all-idle state ( , , ) almost
 * disappears under the OOOVA and the fully-utilized state becomes
 * relatively more frequent.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig7", argc, argv);
}
