/**
 * @file
 * Figure 12: speedup of SLE+VLE (scalar + vector dynamic load
 * elimination) over the late-commit OOOVA, for 16/32/64 physical
 * vector registers.
 *
 * The paper: 1.04-1.16 for most programs at 16 registers (1.78 and
 * 2.13 for dyfesm/trfd); at 32 registers typically 1.10-1.20; 64
 * registers add little except tomcatv (1.19 -> 1.40).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 12: SLE+VLE speedup over late-commit OOOVA",
                w);

    const unsigned regs[] = {16, 32, 64};
    TextTable table(
        {"Program", "16r", "32r", "64r", "vElims@32", "sElims@32"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        std::vector<std::string> row{name};
        uint64_t velims = 0, selims = 0;
        for (unsigned r : regs) {
            SimResult base = simulateOoo(
                t, makeOooConfig(r, 16, 50, CommitMode::Late));
            SimResult vle = simulateOoo(
                t, makeOooConfig(r, 16, 50, CommitMode::Late,
                                 LoadElimMode::SleVle));
            if (r == 32) {
                velims = vle.vectorLoadsEliminated;
                selims = vle.scalarLoadsEliminated;
            }
            row.push_back(TextTable::fmt(speedup(base, vle), 2));
        }
        row.push_back(TextTable::fmt(velims));
        row.push_back(TextTable::fmt(selims));
        table.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: 1.04-1.16 typical at 16 regs, up to 2.13 "
                "trfd; 1.10-1.20 at 32 regs)\n");
    return 0;
}
