/**
 * @file
 * Figure 12: speedup of SLE+VLE (scalar + vector dynamic load
 * elimination) over the late-commit OOOVA, for 16/32/64 physical
 * vector registers.
 *
 * The paper: 1.04-1.16 for most programs at 16 registers (1.78 and
 * 2.13 for dyfesm/trfd); at 32 registers typically 1.10-1.20; 64
 * registers add little except tomcatv (1.19 -> 1.40).
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig12", argc, argv);
}
