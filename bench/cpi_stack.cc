/**
 * @file
 * CPI stack: top-down cycle accounting for REF and two OOOVA
 * configurations across the ten benchmarks. Every cycle is charged
 * to exactly one bucket; the cpi-conservation checker enforces that
 * the buckets sum to the run's cycle count.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("cpistack", argc, argv);
}
