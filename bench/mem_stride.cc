/**
 * @file
 * Stride-conflict study: a synthetic strided streaming kernel swept
 * over element strides {1,2,3,4,7,8,16} against an 8-bank memory.
 * Strides sharing a factor with the bank count touch fewer distinct
 * banks and dilate the address phase up to the bank busy time;
 * co-prime strides behave like stride 1.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("memstride", argc, argv);
}
