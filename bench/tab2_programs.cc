/**
 * @file
 * Table 2: basic operation counts for the ten benchmark programs —
 * scalar/vector instruction counts, vector operations, percentage of
 * vectorization and average vector length, regenerated from our
 * synthetic traces (the paper's are from Convex C3480 runs).
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("tab2", argc, argv);
}
