/**
 * @file
 * Table 2: basic operation counts for the ten benchmark programs —
 * scalar/vector instruction counts, vector operations, percentage of
 * vectorization and average vector length, regenerated from our
 * synthetic traces (the paper's are from Convex C3480 runs).
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "trace/trace_stats.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Table 2: basic operation counts", w);

    TextTable table({"Program", "#Scalar", "#Vector", "#VecOps",
                     "%Vect", "AvgVL"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        TraceStats s = TraceStats::compute(t);
        table.addRow({name, TextTable::fmt(s.scalarInsts),
                      TextTable::fmt(s.vectorInsts),
                      TextTable::fmt(s.vectorOps),
                      TextTable::fmt(s.vectorization(), 1),
                      TextTable::fmt(s.avgVectorLength(), 1)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper, for reference: >=70%% vectorization for all "
                "ten; swm256 99.9%% / VL 127; tomcatv most scalar "
                "instructions)\n");
    return 0;
}
