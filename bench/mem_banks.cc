/**
 * @file
 * Memory-hierarchy bank-count sweep: OOOVA speedup over REF as the
 * banked memory model grows from 1 to 16 interleaved banks (one
 * address port, 4-cycle bank busy time), next to the paper's flat
 * address bus. Unit-stride programs gain monotonically with banks
 * and approach the flat bus once the bank pool covers the bank busy
 * time; programs with power-of-two strides keep residual conflicts.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("membank", argc, argv);
}
