/**
 * @file
 * Figure 9: early vs late commit (precise traps, section 5),
 * speedups over REF for 9..64 physical vector registers at memory
 * latency 50.
 *
 * The paper: late commit costs <5% for five programs, 7%/10.3% for
 * flo52/nasa7, but 41%/47% for trfd/dyfesm whose cross-iteration
 * store->load dependences serialize on stores executing only at the
 * ROB head; and 12 registers are no longer enough under late
 * commit.
 */

#include "harness/figure.hh"

int
main(int argc, char **argv)
{
    return oova::runFigureMain("fig9", argc, argv);
}
