/**
 * @file
 * Figure 9: early vs late commit (precise traps, section 5),
 * speedups over REF for 9..64 physical vector registers at memory
 * latency 50.
 *
 * The paper: late commit costs <5% for five programs, 7%/10.3% for
 * flo52/nasa7, but 41%/47% for trfd/dyfesm whose cross-iteration
 * store->load dependences serialize on stores executing only at the
 * ROB head; and 12 registers are no longer enough under late
 * commit.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"

using namespace oova;

int
main()
{
    Workloads w;
    printHeader("Figure 9: early vs late commit (precise traps)", w);

    const unsigned regs[] = {9, 12, 16, 32, 64};
    TextTable table({"Program", "e/9r", "e/16r", "e/64r", "l/9r",
                     "l/12r", "l/16r", "l/32r", "l/64r",
                     "late/early@16"});
    for (const auto &name : w.names()) {
        const Trace &t = w.get(name);
        SimResult ref = simulateRef(t, makeRefConfig(50));
        std::vector<std::string> row{name};
        double early16 = 0, late16 = 0;
        for (unsigned r : {9u, 16u, 64u}) {
            SimResult ooo = simulateOoo(
                t, makeOooConfig(r, 16, 50, CommitMode::Early));
            double s = speedup(ref, ooo);
            if (r == 16)
                early16 = s;
            row.push_back(TextTable::fmt(s, 2));
        }
        for (unsigned r : regs) {
            SimResult ooo = simulateOoo(
                t, makeOooConfig(r, 16, 50, CommitMode::Late));
            double s = speedup(ref, ooo);
            if (r == 16)
                late16 = s;
            row.push_back(TextTable::fmt(s, 2));
        }
        row.push_back(TextTable::fmt(late16 / early16, 2));
        table.addRow(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("(paper: late commit costs <10%% for eight programs "
                "but 41%%/47%% for trfd/dyfesm)\n");
    return 0;
}
