/**
 * @file
 * Quickstart: build a small vector kernel, generate its trace, and
 * compare the in-order reference machine with the OOOVA.
 *
 * This is the 60-second tour of the library:
 *   1. describe a loop kernel (the workload generator plays the role
 *      of the Convex compiler + the Dixie tracer from the paper),
 *   2. generate a dynamic instruction trace,
 *   3. run it through both simulators,
 *   4. look at cycles, speedup and memory-port utilization.
 */

#include <cstdio>

#include "core/ideal.hh"
#include "core/ooosim.hh"
#include "ref/refsim.hh"
#include "tgen/program.hh"
#include "trace/trace_stats.hh"

using namespace oova;

int
main()
{
    // A daxpy-like kernel: y[i] = a*x[i] + y[i], strip-mined over
    // 128-element vector registers.
    Program prog("quickstart-daxpy");
    int x = prog.array(256 * 1024);
    int y = prog.array(256 * 1024);

    Kernel *k = prog.newKernel("daxpy");
    VVid vx = k->vload(x);
    VVid vy = k->vload(y);
    VVid ax = k->vmul(vx, vx); // stand-in for a*x (timing-identical)
    VVid sum = k->vadd(ax, vy);
    k->vstore(y, sum);

    prog.addLoop(k, 64, vlConstant(128));
    prog.setOuterReps(2);

    Trace trace = prog.generate();
    TraceStats stats = TraceStats::compute(trace);
    std::printf("trace: %zu instructions, %.1f%% vectorized, "
                "avg VL %.1f\n",
                trace.size(), stats.vectorization(),
                stats.avgVectorLength());

    // The in-order reference machine (Convex C3400 model).
    RefConfig ref_cfg;
    ref_cfg.lat.memLatency = 50;
    SimResult ref = simulateRef(trace, ref_cfg);

    // The out-of-order, register-renaming OOOVA with 16 physical
    // vector registers.
    OooConfig ooo_cfg;
    ooo_cfg.lat.memLatency = 50;
    ooo_cfg.numPhysVRegs = 16;
    SimResult ooo = simulateOoo(trace, ooo_cfg);

    Cycle ideal = idealCycles(trace);

    std::printf("\n%-12s %12s %10s %10s\n", "machine", "cycles",
                "port idle", "speedup");
    std::printf("%-12s %12llu %9.1f%% %10s\n", "REF",
                (unsigned long long)ref.cycles,
                100.0 * ref.portIdleFraction(), "1.00");
    std::printf("%-12s %12llu %9.1f%% %10.2f\n", "OOOVA",
                (unsigned long long)ooo.cycles,
                100.0 * ooo.portIdleFraction(),
                (double)ref.cycles / (double)ooo.cycles);
    std::printf("%-12s %12llu %10s %10.2f\n", "IDEAL",
                (unsigned long long)ideal, "-",
                (double)ref.cycles / (double)ideal);
    return 0;
}
