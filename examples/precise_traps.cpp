/**
 * @file
 * Precise-exception demo (paper section 5): inject a page fault
 * into a vector load mid-program. Under the late-commit model the
 * machine squashes every younger instruction, restores the rename
 * maps from the reorder buffer's old-mapping records, re-executes
 * from the faulting instruction, and still commits every
 * instruction exactly once — the property that makes virtual
 * memory practical on a vector machine.
 */

#include <cstdio>

#include "core/ooosim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

int
main()
{
    GenOptions opts;
    opts.scale = 0.5;
    Trace trace = makeBenchmarkTrace("hydro2d", opts);

    // Pick a victim load two thirds into the program.
    SeqNum victim = kNoSeq;
    for (SeqNum i = 2 * trace.size() / 3; i < trace.size(); ++i) {
        if (trace[i].op == Opcode::VLoad) {
            victim = i;
            break;
        }
    }
    std::printf("program: %s, %zu instructions\n",
                trace.name().c_str(), trace.size());
    std::printf("injecting a page fault into instruction #%llu: %s\n\n",
                (unsigned long long)victim,
                trace[victim].toString().c_str());

    OooConfig cfg;
    cfg.commit = CommitMode::Late; // precise-trap model

    SimResult clean = simulateOoo(trace, cfg);
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult faulted = simulateOoo(trace, cfg, fault);

    std::printf("%-18s %12s %12s %8s\n", "run", "cycles",
                "committed", "traps");
    std::printf("%-18s %12llu %12llu %8llu\n", "clean",
                (unsigned long long)clean.cycles,
                (unsigned long long)clean.instructions,
                (unsigned long long)clean.traps);
    std::printf("%-18s %12llu %12llu %8llu\n", "with page fault",
                (unsigned long long)faulted.cycles,
                (unsigned long long)faulted.instructions,
                (unsigned long long)faulted.traps);

    bool precise = faulted.instructions == trace.size() &&
                   faulted.traps == 1;
    std::printf("\nprecise recovery: %s (every instruction committed "
                "exactly once; trap cost %lld cycles)\n",
                precise ? "YES" : "NO",
                (long long)(faulted.cycles - clean.cycles));

    // The early-commit model cannot do this: it has already freed
    // the registers needed to rebuild the faulting state.
    OooConfig early = cfg;
    early.commit = CommitMode::Early;
    SimResult fast = simulateOoo(trace, early);
    std::printf("\nthe price of precision (paper section 5): early "
                "commit %llu cycles vs late %llu (%.1f%% slower)\n",
                (unsigned long long)fast.cycles,
                (unsigned long long)clean.cycles,
                100.0 * ((double)clean.cycles / (double)fast.cycles -
                         1.0));
    return precise ? 0 : 1;
}
