/**
 * @file
 * Latency-tolerance demo (the paper's figure 8 in miniature): sweep
 * main-memory latency from 1 to 200 cycles and watch the in-order
 * reference machine degrade while the OOOVA stays nearly flat —
 * the paper's argument that out-of-order vector machines can use
 * cheap, slow DRAM without losing throughput.
 */

#include <cstdio>

#include "core/ooosim.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

int
main()
{
    GenOptions opts;
    opts.scale = 0.5;
    Trace trace = makeBenchmarkTrace("flo52", opts);
    std::printf("program: %s (%zu instructions)\n\n",
                trace.name().c_str(), trace.size());

    std::printf("%8s %12s %12s %10s %14s\n", "latency", "REF cycles",
                "OOOVA cycles", "speedup", "OOOVA vs lat=1");

    Cycle ooo_at_1 = 0;
    for (unsigned lat : {1u, 25u, 50u, 75u, 100u, 150u, 200u}) {
        RefConfig rc;
        rc.lat.memLatency = lat;
        SimResult ref = simulateRef(trace, rc);

        OooConfig oc;
        oc.lat.memLatency = lat;
        SimResult ooo = simulateOoo(trace, oc);
        if (lat == 1)
            ooo_at_1 = ooo.cycles;

        std::printf("%8u %12llu %12llu %9.2fx %13.1f%%\n", lat,
                    (unsigned long long)ref.cycles,
                    (unsigned long long)ooo.cycles,
                    (double)ref.cycles / (double)ooo.cycles,
                    100.0 * ((double)ooo.cycles / (double)ooo_at_1 -
                             1.0));
    }
    std::printf("\nThe paper tolerates 100-cycle memory with <6%% "
                "degradation; cheap DRAM instead of\nexpensive SRAM "
                "becomes viable (section 4.3).\n");
    return 0;
}
