/**
 * @file
 * Dynamic load elimination demo (paper section 6): build a kernel
 * whose working set exceeds the 8 architected vector registers, so
 * the compiler must spill; then watch the OOOVA's register tags
 * turn the spill reloads into rename-table updates — less memory
 * traffic and more speed, without recompiling.
 */

#include <cstdio>

#include "core/ooosim.hh"
#include "tgen/program.hh"
#include "trace/trace_stats.hh"

using namespace oova;

int
main()
{
    // Sixteen simultaneously live values in an 8-register ISA:
    // guaranteed spill code.
    Program prog("spilly");
    int in = prog.array(512 * 1024);
    int out = prog.array(512 * 1024);

    Kernel *k = prog.newKernel("wide");
    VVid vals[16];
    for (auto &v : vals)
        v = k->vload(in);
    VVid acc = k->vadd(vals[0], vals[1]);
    for (int i = 2; i < 16; ++i)
        acc = k->vadd(acc, vals[i]);
    k->vstore(out, acc);
    prog.addLoop(k, 60, vlConstant(96));
    prog.setOuterReps(2);

    Trace trace = prog.generate();
    TraceStats stats = TraceStats::compute(trace);
    std::printf("trace: %zu instructions, %.0f%% of vector memory "
                "traffic is spill traffic\n\n",
                trace.size(), 100.0 * stats.spillTrafficFraction());

    auto run = [&](LoadElimMode mode, const char *name) {
        OooConfig cfg;
        cfg.numPhysVRegs = 32;
        cfg.commit = CommitMode::Late;
        cfg.loadElim = mode;
        SimResult r = simulateOoo(trace, cfg);
        std::printf("%-10s %10llu cycles  %10llu mem requests  "
                    "%6llu vector loads eliminated\n",
                    name, (unsigned long long)r.cycles,
                    (unsigned long long)r.memRequests,
                    (unsigned long long)r.vectorLoadsEliminated);
        return r;
    };

    SimResult base = run(LoadElimMode::None, "baseline");
    SimResult sle = run(LoadElimMode::Sle, "SLE");
    SimResult vle = run(LoadElimMode::SleVle, "SLE+VLE");
    (void)sle;

    std::printf("\nSLE+VLE: %.2fx speedup, %.1f%% less memory "
                "traffic\n",
                (double)base.cycles / (double)vle.cycles,
                100.0 * (1.0 - (double)vle.memRequests /
                                   (double)base.memRequests));
    std::printf("(the spill stores remain, as in the paper, to keep "
                "the memory image exact)\n");
    return 0;
}
