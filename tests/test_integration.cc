/**
 * @file
 * Cross-module integration tests: the paper's headline claims must
 * hold end to end on every benchmark — OOOVA beats REF, tolerates
 * latency, uses the memory port better, and IDEAL bounds both.
 */

#include <gtest/gtest.h>

#include "core/ideal.hh"
#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "ref/refsim.hh"
#include "trace/trace_io.hh"

using namespace oova;

namespace
{

GenOptions
smallScale()
{
    GenOptions o;
    o.scale = 0.25;
    return o;
}

} // namespace

class EndToEnd : public ::testing::TestWithParam<std::string>
{
  protected:
    Trace
    trace() const
    {
        return makeBenchmarkTrace(GetParam(), smallScale());
    }
};

TEST_P(EndToEnd, OoovaBeatsRef)
{
    Trace t = trace();
    SimResult ref = simulateRef(t, makeRefConfig(50));
    SimResult ooo = simulateOoo(t, makeOooConfig(16, 16, 50));
    EXPECT_GT(speedup(ref, ooo), 1.1) << GetParam();
}

TEST_P(EndToEnd, IdealBoundsBothMachines)
{
    Trace t = trace();
    Cycle ideal = idealCycles(t);
    EXPECT_LE(ideal, simulateOoo(t, makeOooConfig(64, 128, 1)).cycles);
    EXPECT_LE(ideal, simulateRef(t, makeRefConfig(1)).cycles);
}

TEST_P(EndToEnd, OoovaImprovesPortUtilization)
{
    Trace t = trace();
    SimResult ref = simulateRef(t, makeRefConfig(50));
    SimResult ooo = simulateOoo(t, makeOooConfig(16, 16, 50));
    EXPECT_LT(ooo.portIdleFraction(), ref.portIdleFraction())
        << GetParam();
}

TEST_P(EndToEnd, OoovaToleratesLatencyBetterThanRef)
{
    Trace t = trace();
    double ref_degrade =
        static_cast<double>(simulateRef(t, makeRefConfig(100)).cycles) /
        static_cast<double>(simulateRef(t, makeRefConfig(1)).cycles);
    double ooo_degrade =
        static_cast<double>(
            simulateOoo(t, makeOooConfig(16, 16, 100)).cycles) /
        static_cast<double>(
            simulateOoo(t, makeOooConfig(16, 16, 1)).cycles);
    // Scalar-bound programs (tomcatv) are nearly flat on both
    // machines; allow a small epsilon there.
    EXPECT_LT(ooo_degrade, ref_degrade + 0.05) << GetParam();
}

TEST_P(EndToEnd, MoreRegistersNeverHurt)
{
    Trace t = trace();
    Cycle c9 = simulateOoo(t, makeOooConfig(9, 16, 50)).cycles;
    Cycle c16 = simulateOoo(t, makeOooConfig(16, 16, 50)).cycles;
    Cycle c64 = simulateOoo(t, makeOooConfig(64, 16, 50)).cycles;
    EXPECT_GE(c9, c16);
    // Allow a tiny wobble between 16 and 64 from allocation order.
    EXPECT_LE(c64, c16 + c16 / 100);
}

TEST_P(EndToEnd, TraceSurvivesSerializationIntoSameResults)
{
    Trace t = trace();
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(t, ss));
    Trace u;
    ASSERT_TRUE(loadTrace(u, ss));
    SimResult a = simulateOoo(t, makeOooConfig(16, 16, 50));
    SimResult b = simulateOoo(u, makeOooConfig(16, 16, 50));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.memRequests, b.memRequests);
}

TEST_P(EndToEnd, SimulationIsDeterministic)
{
    Trace t = trace();
    SimResult a = simulateOoo(t, makeOooConfig(16, 16, 50));
    SimResult b = simulateOoo(t, makeOooConfig(16, 16, 50));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.vectorLoadsEliminated, b.vectorLoadsEliminated);
}

INSTANTIATE_TEST_SUITE_P(AllTen, EndToEnd,
                         ::testing::ValuesIn(benchmarkNames()));

TEST(Harness, WorkloadsCacheReturnsSameTrace)
{
    Workloads w(0.25);
    const Trace &a = w.get("swm256");
    const Trace &b = w.get("swm256");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(w.names().size(), 10u);
}

TEST(Harness, ConfigBuilders)
{
    RefConfig rc = makeRefConfig(70);
    EXPECT_EQ(rc.lat.memLatency, 70u);
    OooConfig oc = makeOooConfig(32, 128, 70, CommitMode::Late,
                                 LoadElimMode::SleVle);
    EXPECT_EQ(oc.numPhysVRegs, 32u);
    EXPECT_EQ(oc.queueSize, 128u);
    EXPECT_EQ(oc.lat.memLatency, 70u);
    EXPECT_EQ(oc.commit, CommitMode::Late);
    EXPECT_EQ(oc.loadElim, LoadElimMode::SleVle);
    EXPECT_NE(oc.name().find("sle+vle"), std::string::npos);
}

TEST(Ideal, HandComputedBound)
{
    Trace t("hand");
    // 2 loads of 64 -> mem 128; 1 mul of 64 -> fu2 64; 1 add -> fu1.
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVLoad(vReg(1), aReg(0), 0x2000, 8, 64));
    t.push(makeVArith(Opcode::VMul, vReg(2), vReg(0), vReg(1), 64));
    t.push(makeVArith(Opcode::VAdd, vReg(3), vReg(0), vReg(1), 64));
    IdealBreakdown b = idealBreakdown(t);
    EXPECT_EQ(b.memCycles, 128u);
    EXPECT_EQ(b.fu2Cycles, 64u);
    EXPECT_EQ(b.fu1Cycles, 64u);
    EXPECT_EQ(b.bound(), 128u);
}

TEST(Ideal, ScalarMemCountsTowardPort)
{
    Trace t("hand2");
    t.push(makeSLoad(sReg(0), aReg(0), 0x100));
    t.push(makeSStore(sReg(0), aReg(0), 0x200));
    EXPECT_EQ(idealBreakdown(t).memCycles, 2u);
}

TEST(Ideal, BalancesNonPinnedWork)
{
    Trace t("adds");
    for (int i = 0; i < 4; ++i)
        t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0),
                          64));
    IdealBreakdown b = idealBreakdown(t);
    EXPECT_EQ(b.fu1Cycles, 128u);
    EXPECT_EQ(b.fu2Cycles, 128u);
}
