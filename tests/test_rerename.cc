/**
 * @file
 * Regression coverage for the SLE+VLE Dep-stage re-rename: the Dep
 * stage renames a vector destination before the V-queue-full check,
 * so a stalled entry retries the rename on a later cycle. The retry
 * must drop the previous attempt's robDstRefs subscription (the
 * wakeup-dst-refs checker guards this), and it permanently orphans
 * the claim the first rename parked in the entry's oldPhys — an
 * accepted leak the audit tracks in a dedicated ledger so refCount
 * conservation stays checkable.
 *
 * These tests pin the path down: a config that forces rename retries
 * runs under the full invariant audit and must stay violation-free,
 * with results byte-equal to an unaudited run (checkers are
 * observe-only).
 */

#include <gtest/gtest.h>

#include "check/check.hh"
#include "core/ooosim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

/**
 * SLE+VLE with a tiny V queue and slow memory: the dependent vadds
 * pile up behind the load, fill the 2-entry V queue, and the next
 * vadd stalls in the Dep stage *after* renaming its destination —
 * retrying (and re-renaming) every cycle until a slot frees.
 */
OooConfig
rerenameCfg(int check_level)
{
    OooConfig c;
    c.loadElim = LoadElimMode::SleVle;
    c.commit = CommitMode::Late;
    c.queueSize = 2;
    c.numPhysVRegs = 32;
    c.lat.memLatency = 200;
    c.checkLevel = check_level;
    return c;
}

Trace
rerenameTrace()
{
    Trace t("rerename");
    for (int rep = 0; rep < 4; ++rep) {
        Addr base = 0x10000 + static_cast<Addr>(rep) * 0x10000;
        t.push(makeVLoad(vReg(0), aReg(0), base, 8, 64));
        // Six dependent ops on distinct destinations: more in-flight
        // V writers than V-queue slots, so the tail of each burst
        // stalls in Dep after renaming.
        for (uint8_t i = 1; i <= 6; ++i) {
            t.push(makeVArith(Opcode::VAdd, vReg(i), vReg(0),
                              vReg(0), 64));
        }
    }
    return t;
}

} // namespace

TEST(ReRename, StallPathIsExercised)
{
    // The scenario only regression-tests the re-rename if the Dep
    // stage actually stalls on a full V queue.
    SimResult r = simulateOoo(rerenameTrace(), rerenameCfg(0));
    EXPECT_GT(r.queueStallCycles, 0u);
}

TEST(ReRename, FullAuditIsViolationFree)
{
    check::resetProcessViolations();
    SimResult r = simulateOoo(rerenameTrace(), rerenameCfg(2));
    EXPECT_GT(r.queueStallCycles, 0u);
    // Every checker family runs (wakeup-dst-refs, the conservation
    // checker with the orphaned-claims ledger, the calendar bound,
    // ...) and none may fire: the subscription drop on retry and the
    // ledger entry for the orphaned claim must exactly cancel out.
    EXPECT_EQ(check::processViolationCount(), 0u);
    check::resetProcessViolations();
}

TEST(ReRename, AuditIsObserveOnly)
{
    check::resetProcessViolations();
    SimResult off = simulateOoo(rerenameTrace(), rerenameCfg(0));
    SimResult on = simulateOoo(rerenameTrace(), rerenameCfg(2));
    EXPECT_EQ(check::processViolationCount(), 0u);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.instructions, on.instructions);
    EXPECT_EQ(off.machine, on.machine);
    EXPECT_EQ(off.memBusyCycles, on.memBusyCycles);
    EXPECT_EQ(off.memRequests, on.memRequests);
    EXPECT_EQ(off.vectorLoadsEliminated, on.vectorLoadsEliminated);
    EXPECT_EQ(off.scalarLoadsEliminated, on.scalarLoadsEliminated);
    EXPECT_EQ(off.renameStallCycles, on.renameStallCycles);
    EXPECT_EQ(off.robStallCycles, on.robStallCycles);
    EXPECT_EQ(off.queueStallCycles, on.queueStallCycles);
    EXPECT_EQ(off.stateCycles, on.stateCycles);
    check::resetProcessViolations();
}

TEST(ReRename, AuditStaysCleanAcrossBenchmarks)
{
    // The full audit over real benchmark traces in the exact
    // configuration family (SLE+VLE, late commit) where the
    // re-rename occurs.
    check::resetProcessViolations();
    GenOptions small;
    small.scale = 0.05;
    for (const char *name : {"swm256", "tomcatv"}) {
        Trace t = makeBenchmarkTrace(name, small);
        OooConfig c = rerenameCfg(2);
        c.queueSize = 4;
        SimResult r = simulateOoo(t, c);
        EXPECT_GT(r.cycles, 0u) << name;
    }
    EXPECT_EQ(check::processViolationCount(), 0u);
    check::resetProcessViolations();
}
