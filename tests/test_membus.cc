/**
 * @file
 * Tests for the memory-system substrate (the shared address bus) and
 * the REF stall-attribution plumbing, plus cross-simulator sanity
 * properties on degenerate traces.
 */

#include <gtest/gtest.h>

#include "core/ooosim.hh"
#include "mem/membus.hh"
#include "mem/simresult.hh"
#include "ref/refsim.hh"

using namespace oova;

TEST(AddressBus, FirstReservationStartsOnRequest)
{
    AddressBus bus;
    EXPECT_EQ(bus.reserve(10, 4), 10u);
    EXPECT_EQ(bus.freeAt(), 14u);
    EXPECT_EQ(bus.requests(), 4u);
}

TEST(AddressBus, BackToBackReservationsQueue)
{
    AddressBus bus;
    bus.reserve(0, 10);
    EXPECT_EQ(bus.reserve(0, 5), 10u) << "bus is exclusive";
    EXPECT_EQ(bus.freeAt(), 15u);
}

TEST(AddressBus, GapsStayIdle)
{
    AddressBus bus;
    bus.reserve(0, 5);
    bus.reserve(100, 5);
    EXPECT_EQ(bus.busy().busyCycles(), 10u);
    EXPECT_EQ(bus.requests(), 10u);
}

TEST(AddressBus, LaterEarliestWins)
{
    AddressBus bus;
    bus.reserve(0, 2);
    EXPECT_EQ(bus.reserve(50, 2), 50u);
}

TEST(AddressBus, ZeroElementReservationIsNoop)
{
    AddressBus bus;
    bus.reserve(0, 5);
    // A zero-element reservation returns its earliest untouched —
    // even one before freeAt() — and advances no state: no empty
    // busy interval, no requests, no bus occupancy.
    EXPECT_EQ(bus.reserve(2, 0), 2u);
    EXPECT_EQ(bus.freeAt(), 5u);
    EXPECT_EQ(bus.requests(), 5u);
    EXPECT_EQ(bus.busy().count(), 1u);
    EXPECT_EQ(bus.reserve(100, 0), 100u);
    EXPECT_EQ(bus.freeAt(), 5u);
}

TEST(StallCause, NamesAreStable)
{
    EXPECT_STREQ(stallCauseName(StallCause::ScalarDep), "scalar-dep");
    EXPECT_STREQ(stallCauseName(StallCause::VectorDep), "vector-dep");
    EXPECT_STREQ(stallCauseName(StallCause::MemUnit), "mem-unit");
    EXPECT_STREQ(stallCauseName(StallCause::Ports), "ports");
    EXPECT_STREQ(stallCauseName(StallCause::None), "none");
}

TEST(StallAttribution, VectorDepDominatesLoadUse)
{
    Trace t("ld-use");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0), 64));
    RefConfig cfg;
    cfg.lat.memLatency = 100;
    SimResult r = simulateRef(t, cfg);
    auto dep = r.stallCycles[static_cast<unsigned>(
        StallCause::VectorDep)];
    EXPECT_GT(dep, 90u);
}

TEST(StallAttribution, MemUnitStallOnSecondLoad)
{
    Trace t("two-loads");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVLoad(vReg(1), aReg(0), 0x9000, 8, 64));
    SimResult r = simulateRef(t, RefConfig{});
    EXPECT_GT(r.stallCycles[static_cast<unsigned>(
                  StallCause::MemUnit)],
              0u);
}

TEST(SimResult, PortIdleFractionBounds)
{
    SimResult r;
    r.cycles = 100;
    r.memBusyCycles = 25;
    EXPECT_DOUBLE_EQ(r.portIdleFraction(), 0.75);
    r.memBusyCycles = 100;
    EXPECT_DOUBLE_EQ(r.portIdleFraction(), 0.0);
    SimResult empty;
    EXPECT_DOUBLE_EQ(empty.portIdleFraction(), 0.0);
}

TEST(SimResult, IpcComputation)
{
    SimResult r;
    r.cycles = 200;
    r.instructions = 100;
    EXPECT_DOUBLE_EQ(r.ipc(), 0.5);
}

// ---- degenerate-trace sanity on both machines -------------------

TEST(CrossSim, PureScalarTraceRunsOnBoth)
{
    Trace t("scalars");
    for (int i = 0; i < 100; ++i)
        t.push(makeScalar(Opcode::SAdd,
                          sReg(static_cast<uint8_t>(i % 8)),
                          sReg(static_cast<uint8_t>((i + 1) % 8))));
    SimResult ref = simulateRef(t);
    SimResult ooo = simulateOoo(t);
    EXPECT_EQ(ref.instructions, 100u);
    EXPECT_EQ(ooo.instructions, 100u);
    EXPECT_EQ(ref.memRequests, 0u);
    EXPECT_EQ(ooo.memRequests, 0u);
}

TEST(CrossSim, PureStoreTraceDrainsTheBus)
{
    Trace t("stores");
    for (int i = 0; i < 10; ++i)
        t.push(makeVStore(vReg(0), aReg(0),
                          0x1000 + static_cast<Addr>(i) * 0x10000, 8,
                          32));
    SimResult ref = simulateRef(t);
    SimResult ooo = simulateOoo(t);
    EXPECT_EQ(ref.memRequests, 320u);
    EXPECT_EQ(ooo.memRequests, 320u);
    EXPECT_GE(ref.cycles, 320u);
    EXPECT_GE(ooo.cycles, 320u);
}

TEST(CrossSim, SingleInstructionTraces)
{
    for (Opcode op : {Opcode::SMove, Opcode::SetVL, Opcode::Branch}) {
        Trace t("one");
        DynInst inst;
        inst.op = op;
        inst.vl = 1;
        t.push(inst);
        EXPECT_GT(simulateRef(t).cycles, 0u) << opName(op);
        EXPECT_GT(simulateOoo(t).cycles, 0u) << opName(op);
        EXPECT_EQ(simulateOoo(t).instructions, 1u) << opName(op);
    }
}

TEST(CrossSim, MaskPipelineWorks)
{
    Trace t("mask");
    DynInst cmp = makeVArith(Opcode::VCmp, mReg(0), vReg(0), vReg(1),
                             64);
    t.push(cmp);
    DynInst merge = makeVArith(Opcode::VMerge, vReg(2), vReg(0),
                               vReg(1), 64);
    merge.addSrc(mReg(0));
    t.push(merge);
    SimResult ref = simulateRef(t);
    SimResult ooo = simulateOoo(t);
    EXPECT_GE(ref.cycles, 128u) << "merge must wait for the mask";
    EXPECT_EQ(ooo.instructions, 2u);
}

TEST(CrossSim, ScatterOrdersAgainstOverlappingLoad)
{
    Trace t("scatter-load");
    DynInst sc;
    sc.op = Opcode::VScatter;
    sc.addSrc(vReg(0));
    sc.addSrc(vReg(1));
    sc.addSrc(aReg(0));
    sc.vl = 32;
    sc.addr = 0x8000;
    sc.regionBytes = 0x1000;
    t.push(sc);
    t.push(makeVLoad(vReg(2), aReg(0), 0x8100, 8, 32));
    SimResult ooo = simulateOoo(t);
    // The load overlaps the scatter's region: it must wait for the
    // scatter's bus phase, so total >= both bus phases serialized.
    EXPECT_GE(ooo.cycles, 64u);
    EXPECT_EQ(ooo.instructions, 2u);
}
