/**
 * @file
 * Determinism suite for the event-driven simulator core.
 *
 * The wakeup network, the event calendar and the ready-skip gates
 * are all bookkeeping: none of them may leak into simulated timing,
 * and no iteration order anywhere may depend on the host. These
 * tests lock that in from the outside: repeated runs must agree
 * field for field, sweep results must be independent of the worker
 * thread count, and the deadlock diagnostics that the old
 * full-rescan backed must still fire when a machine can make no
 * progress.
 */

#include <gtest/gtest.h>

#include "check/check.hh"
#include "core/ooosim.hh"
#include "harness/backend.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

constexpr double kScale = 0.25;

/** Field-by-field equality of two simulation outcomes. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.program, b.program);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stateCycles, b.stateCycles);
    EXPECT_EQ(a.fu1BusyCycles, b.fu1BusyCycles);
    EXPECT_EQ(a.fu2BusyCycles, b.fu2BusyCycles);
    EXPECT_EQ(a.memBusyCycles, b.memBusyCycles);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.memBankConflicts, b.memBankConflicts);
    EXPECT_EQ(a.memConflictCycles, b.memConflictCycles);
    EXPECT_EQ(a.memIndexedConflicts, b.memIndexedConflicts);
    EXPECT_EQ(a.memIndexedConflictCycles, b.memIndexedConflictCycles);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.mshrStallCycles, b.mshrStallCycles);
    EXPECT_EQ(a.tlbHits, b.tlbHits);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.tlbIndexedMisses, b.tlbIndexedMisses);
    EXPECT_EQ(a.tlbMissCycles, b.tlbMissCycles);
    EXPECT_EQ(a.vectorLoadsEliminated, b.vectorLoadsEliminated);
    EXPECT_EQ(a.scalarLoadsEliminated, b.scalarLoadsEliminated);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.renameStallCycles, b.renameStallCycles);
    EXPECT_EQ(a.robStallCycles, b.robStallCycles);
    EXPECT_EQ(a.queueStallCycles, b.queueStallCycles);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
}

/** OOOVA configurations covering every wakeup-network code path. */
std::vector<OooConfig>
sweepConfigs()
{
    return {
        makeOooConfig(16),
        makeOooConfig(64),
        makeOooConfig(16, 16, 50, CommitMode::Late),
        makeOooConfig(32, 16, 50, CommitMode::Late,
                      LoadElimMode::SleVle),
        makeOooConfig(32, 16, 50, CommitMode::Early,
                      LoadElimMode::Sle),
    };
}

} // namespace

TEST(Determinism, RepeatedOooRunsAreIdentical)
{
    Workloads w(kScale);
    for (const auto &cfg : sweepConfigs()) {
        for (const char *prog : {"hydro2d", "nasa7"}) {
            const Trace &t = w.get(prog);
            SimResult first = simulateOoo(t, cfg);
            SimResult second = simulateOoo(t, cfg);
            expectSameResult(first, second);
        }
    }
}

TEST(Determinism, RepeatedRefRunsAreIdentical)
{
    Workloads w(kScale);
    const Trace &t = w.get("hydro2d");
    expectSameResult(simulateRef(t, RefConfig{}),
                     simulateRef(t, RefConfig{}));
}

TEST(Determinism, SweepResultsIndependentOfThreadCount)
{
    TraceCache traces(kScale);
    std::vector<SweepJob> jobs;
    for (const auto &name : traces.names()) {
        jobs.push_back(oooJob(name, makeOooConfig(16)));
        jobs.push_back(oooJob(name, makeOooConfig(32, 16, 50,
                                                  CommitMode::Late,
                                                  LoadElimMode::SleVle)));
    }

    SweepEngine serial(traces, 1);
    SweepEngine parallel(traces, 8);
    std::vector<SimResult> one = serial.run(jobs);
    std::vector<SimResult> many = parallel.run(jobs);

    ASSERT_EQ(one.size(), many.size());
    for (size_t i = 0; i < one.size(); ++i)
        expectSameResult(one[i], many[i]);
}

/**
 * The sweep farm's sharding layer: results streamed back from
 * forked worker processes must agree field for field with the
 * in-process run, at any worker count, with the full invariant
 * audit riding along in every worker (its per-child violation tally
 * crosses the pipe too; zero violations expected throughout).
 */
TEST(Determinism, ForkedWorkersMatchInProcessRun)
{
    check::resetProcessViolations();
    TraceCache traces(kScale);
    std::vector<SweepJob> jobs;
    for (const char *prog : {"hydro2d", "nasa7", "arc2d"}) {
        for (auto cfg : sweepConfigs()) {
            cfg.checkLevel = 2; // full audit inside every worker
            jobs.push_back(oooJob(prog, cfg));
        }
        RefConfig rc;
        rc.checkLevel = 2;
        jobs.push_back(refJob(prog, rc));
    }

    SweepEngine inProcess(traces, 2);
    SweepEngine forkedOne(
        traces, std::make_unique<ForkedBackend>(traces, 1));
    SweepEngine forkedFour(
        traces, std::make_unique<ForkedBackend>(traces, 4));

    std::vector<SimResult> reference = inProcess.run(jobs);
    std::vector<SimResult> one = forkedOne.run(jobs);
    std::vector<SimResult> four = forkedFour.run(jobs);

    ASSERT_EQ(reference.size(), one.size());
    ASSERT_EQ(reference.size(), four.size());
    for (size_t i = 0; i < reference.size(); ++i) {
        expectSameResult(reference[i], one[i]);
        expectSameResult(reference[i], four[i]);
    }
    EXPECT_EQ(check::processViolationCount(), 0u);
    check::resetProcessViolations();
}

/**
 * A machine that can make no forward progress must die with the
 * deadlock diagnostics (previously backed by the every-idle-cycle
 * rescan; now by the event calendar coming up empty). A queue size
 * of zero guarantees the very first instruction can never leave the
 * fetch buffer.
 */
TEST(DeterminismDeathTest, DeadlockPanicsWithDiagnostics)
{
    Trace t("tiny");
    t.push(makeScalar(Opcode::SAdd, sReg(1), sReg(2), sReg(3)));

    OooConfig cfg;
    cfg.queueSize = 0;
    EXPECT_DEATH(simulateOoo(t, cfg), "OOOVA deadlock at cycle");
}

TEST(Determinism, InvariantAuditIsObserveOnly)
{
    // The full audit (OOVA_CHECK=2 equivalent) recomputes every
    // conservation law alongside the run; it must neither perturb a
    // single result field nor find a violation on any sweep config.
    check::resetProcessViolations();
    Workloads w(kScale);
    for (auto cfg : sweepConfigs()) {
        for (const char *prog : {"hydro2d", "nasa7"}) {
            const Trace &t = w.get(prog);
            cfg.checkLevel = 0;
            SimResult off = simulateOoo(t, cfg);
            cfg.checkLevel = 2;
            SimResult on = simulateOoo(t, cfg);
            expectSameResult(off, on);
        }
    }
    RefConfig rc;
    rc.checkLevel = 0;
    SimResult ref_off = simulateRef(w.get("hydro2d"), rc);
    rc.checkLevel = 2;
    SimResult ref_on = simulateRef(w.get("hydro2d"), rc);
    expectSameResult(ref_off, ref_on);
    EXPECT_EQ(check::processViolationCount(), 0u);
    check::resetProcessViolations();
}
