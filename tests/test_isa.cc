/**
 * @file
 * Unit tests for src/isa: registers, opcode traits, instruction
 * builders, memory ranges and the latency table.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/latency.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"

using namespace oova;

TEST(Registers, LogicalCounts)
{
    EXPECT_EQ(numLogicalRegs(RegClass::A), 8u);
    EXPECT_EQ(numLogicalRegs(RegClass::S), 8u);
    EXPECT_EQ(numLogicalRegs(RegClass::V), 8u);
    EXPECT_EQ(numLogicalRegs(RegClass::M), 1u);
    EXPECT_EQ(numLogicalRegs(RegClass::None), 0u);
}

TEST(Registers, Prefixes)
{
    EXPECT_EQ(regClassPrefix(RegClass::A), 'a');
    EXPECT_EQ(regClassPrefix(RegClass::S), 's');
    EXPECT_EQ(regClassPrefix(RegClass::V), 'v');
    EXPECT_EQ(regClassPrefix(RegClass::M), 'm');
}

TEST(Registers, RegIdEquality)
{
    EXPECT_EQ(vReg(3), vReg(3));
    EXPECT_FALSE(vReg(3) == vReg(4));
    EXPECT_FALSE(vReg(3) == sReg(3));
    EXPECT_FALSE(RegId().valid());
    EXPECT_TRUE(aReg(0).valid());
}

/** Every opcode must have coherent traits. */
class OpcodeTraits : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OpcodeTraits, Coherent)
{
    Opcode op = static_cast<Opcode>(GetParam());
    const OpTraits &t = traits(op);
    EXPECT_NE(t.name, nullptr);
    // Load and store are mutually exclusive and imply memory.
    EXPECT_FALSE(t.isLoad && t.isStore);
    if (t.isLoad || t.isStore) {
        EXPECT_TRUE(t.isMem);
    }
    if (t.isMem) {
        EXPECT_EQ(t.lat, LatClass::Mem);
    }
    // Only vector ops may be FU2-only.
    if (t.fu2Only) {
        EXPECT_TRUE(t.isVector);
    }
    // Branches are not memory ops and not vector ops.
    if (t.isBranch) {
        EXPECT_FALSE(t.isMem);
        EXPECT_FALSE(t.isVector);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeTraits,
                         ::testing::Range(0u, kNumOpcodes));

TEST(Opcodes, Fu2OnlySet)
{
    EXPECT_TRUE(traits(Opcode::VMul).fu2Only);
    EXPECT_TRUE(traits(Opcode::VDiv).fu2Only);
    EXPECT_TRUE(traits(Opcode::VSqrt).fu2Only);
    EXPECT_FALSE(traits(Opcode::VAdd).fu2Only);
    EXPECT_FALSE(traits(Opcode::VLogic).fu2Only);
    EXPECT_FALSE(traits(Opcode::VShift).fu2Only);
}

TEST(Opcodes, CallRetClassification)
{
    EXPECT_TRUE(isCallOp(Opcode::Call));
    EXPECT_TRUE(isRetOp(Opcode::Ret));
    EXPECT_FALSE(isCallOp(Opcode::Branch));
    EXPECT_TRUE(traits(Opcode::Call).isBranch);
    EXPECT_TRUE(traits(Opcode::Ret).isBranch);
}

TEST(Opcodes, MaskWriter)
{
    EXPECT_TRUE(traits(Opcode::VCmp).writesMask);
    EXPECT_FALSE(traits(Opcode::VMerge).writesMask);
}

TEST(Instruction, VLoadRange)
{
    DynInst ld = makeVLoad(vReg(0), aReg(1), 0x1000, 8, 4);
    auto [lo, hi] = ld.memRange();
    EXPECT_EQ(lo, 0x1000u);
    EXPECT_EQ(hi, 0x1000u + 3 * 8 + 8);
    EXPECT_EQ(ld.memElems(), 4u);
}

TEST(Instruction, StridedRange)
{
    DynInst ld = makeVLoad(vReg(0), aReg(1), 0x1000, 16, 4);
    auto [lo, hi] = ld.memRange();
    EXPECT_EQ(lo, 0x1000u);
    EXPECT_EQ(hi, 0x1000u + 3 * 16 + 8);
}

TEST(Instruction, NegativeStrideRange)
{
    DynInst ld = makeVLoad(vReg(0), aReg(1), 0x1000, -8, 4);
    auto [lo, hi] = ld.memRange();
    EXPECT_EQ(lo, 0x1000u - 3 * 8);
    EXPECT_EQ(hi, 0x1000u + 8);
    EXPECT_LT(lo, hi);
}

TEST(Instruction, ScalarRange)
{
    DynInst ld = makeSLoad(sReg(0), aReg(1), 0x2000);
    auto [lo, hi] = ld.memRange();
    EXPECT_EQ(lo, 0x2000u);
    EXPECT_EQ(hi, 0x2008u);
    EXPECT_EQ(ld.memElems(), 1u);
}

TEST(Instruction, GatherUsesRegion)
{
    DynInst g;
    g.op = Opcode::VGather;
    g.addr = 0x8000;
    g.regionBytes = 0x400;
    g.vl = 64;
    auto [lo, hi] = g.memRange();
    EXPECT_EQ(lo, 0x8000u);
    EXPECT_EQ(hi, 0x8400u);
    EXPECT_TRUE(g.isIndexedMem());
}

TEST(Instruction, RangesOverlap)
{
    using P = std::pair<Addr, Addr>;
    EXPECT_TRUE(DynInst::rangesOverlap(P{0, 10}, P{5, 15}));
    EXPECT_TRUE(DynInst::rangesOverlap(P{5, 15}, P{0, 10}));
    EXPECT_FALSE(DynInst::rangesOverlap(P{0, 10}, P{10, 20}));
    EXPECT_TRUE(DynInst::rangesOverlap(P{0, 100}, P{50, 51}));
}

TEST(Instruction, BuildersSetOperands)
{
    DynInst add = makeVArith(Opcode::VAdd, vReg(2), vReg(0), vReg(1),
                             64);
    EXPECT_EQ(add.dst, vReg(2));
    EXPECT_EQ(add.numSrc, 2u);
    EXPECT_EQ(add.vl, 64u);
    EXPECT_TRUE(add.isVectorArith());
    EXPECT_FALSE(add.isMem());

    DynInst st = makeVStore(vReg(3), aReg(2), 0x100, 8, 32);
    EXPECT_EQ(st.numSrc, 2u);
    EXPECT_EQ(st.src[0], vReg(3));
    EXPECT_TRUE(st.isStore());

    DynInst br = makeBranch(aReg(7), true, 0x44);
    EXPECT_TRUE(br.isBranch());
    EXPECT_TRUE(br.taken);
    EXPECT_EQ(br.target, 0x44u);
}

TEST(Instruction, SpillFlagPropagates)
{
    DynInst ld = makeVLoad(vReg(0), aReg(6), 0x100, 8, 8, true);
    EXPECT_TRUE(ld.isSpill);
    DynInst st = makeSStore(sReg(0), aReg(6), 0x100, true);
    EXPECT_TRUE(st.isSpill);
}

TEST(Instruction, Disassembly)
{
    DynInst add = makeVArith(Opcode::VAdd, vReg(2), vReg(0), vReg(1),
                             64);
    std::string s = add.toString();
    EXPECT_NE(s.find("vadd"), std::string::npos);
    EXPECT_NE(s.find("v2"), std::string::npos);
    EXPECT_NE(s.find("vl=64"), std::string::npos);

    DynInst ld = makeVLoad(vReg(1), aReg(0), 0x1000, 8, 16, true);
    std::string l = ld.toString();
    EXPECT_NE(l.find("[spill]"), std::string::npos);
}

TEST(Latency, Defaults)
{
    LatencyTable ref = LatencyTable::refDefaults();
    LatencyTable ooo = LatencyTable::oooDefaults();
    EXPECT_EQ(ref.vectorStartup, 1u);
    EXPECT_EQ(ooo.vectorStartup, 0u); // Table 1 footnote
    EXPECT_EQ(ref.opLatency(Opcode::VMul), ref.mul);
    EXPECT_EQ(ref.opLatency(Opcode::VDiv), ref.divSqrt);
    EXPECT_EQ(ref.opLatency(Opcode::VAdd), ref.addLogic);
    EXPECT_EQ(ref.opLatency(Opcode::SMove), ref.moveLat);
    EXPECT_EQ(ref.opLatency(Opcode::VLoad), ref.memLatency);
}
