/**
 * @file
 * Fault-tolerance suite for the sweep farm: every OOVA_FAULT site is
 * injected against a live forked sweep and the recovered run must
 * agree field for field with a fault-free one — same results, same
 * rendered figure bytes, zero invariant-audit violations — while the
 * backend's fault counters record exactly what happened. Retry
 * exhaustion and malformed fault specs must die loudly instead.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/check.hh"
#include "harness/backend.hh"
#include "harness/experiment.hh"
#include "harness/faultinj.hh"
#include "harness/figure.hh"
#include "harness/sweep.hh"

using namespace oova;

namespace
{

constexpr double kScale = 0.25;

/** Field-by-field equality of two simulation outcomes. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.program, b.program);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stateCycles, b.stateCycles);
    EXPECT_EQ(a.fu1BusyCycles, b.fu1BusyCycles);
    EXPECT_EQ(a.fu2BusyCycles, b.fu2BusyCycles);
    EXPECT_EQ(a.memBusyCycles, b.memBusyCycles);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.memBankConflicts, b.memBankConflicts);
    EXPECT_EQ(a.memConflictCycles, b.memConflictCycles);
    EXPECT_EQ(a.memIndexedConflicts, b.memIndexedConflicts);
    EXPECT_EQ(a.memIndexedConflictCycles, b.memIndexedConflictCycles);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.mshrStallCycles, b.mshrStallCycles);
    EXPECT_EQ(a.tlbHits, b.tlbHits);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.tlbIndexedMisses, b.tlbIndexedMisses);
    EXPECT_EQ(a.tlbMissCycles, b.tlbMissCycles);
    EXPECT_EQ(a.vectorLoadsEliminated, b.vectorLoadsEliminated);
    EXPECT_EQ(a.scalarLoadsEliminated, b.scalarLoadsEliminated);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.renameStallCycles, b.renameStallCycles);
    EXPECT_EQ(a.robStallCycles, b.robStallCycles);
    EXPECT_EQ(a.queueStallCycles, b.queueStallCycles);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    // And the byte-level proof: the persisted form is identical too.
    EXPECT_EQ(a.toJson(), b.toJson());
}

/**
 * A batch wide enough that every one of 4 workers owns several jobs
 * (so a killed worker always has work to requeue), with the full
 * invariant audit riding inside every job.
 */
std::vector<SweepJob>
makeJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *prog : {"hydro2d", "nasa7", "arc2d"}) {
        for (unsigned regs : {16u, 32u, 64u}) {
            OooConfig cfg = makeOooConfig(regs);
            cfg.checkLevel = 2;
            jobs.push_back(oooJob(prog, cfg));
        }
        OooConfig late = makeOooConfig(32, 16, 50, CommitMode::Late,
                                       LoadElimMode::SleVle);
        late.checkLevel = 2;
        jobs.push_back(oooJob(prog, late));
        RefConfig rc;
        rc.checkLevel = 2;
        jobs.push_back(refJob(prog, rc));
    }
    return jobs;
}

/**
 * Run @p jobs through a supervised ForkedBackend with @p spec armed
 * and require the recovered outcome to match the fault-free
 * in-process run field for field, with zero violations.
 */
SweepFaultStats
expectRecoveredRunMatches(const std::string &spec,
                          uint64_t jobTimeoutMs = 0)
{
    check::resetProcessViolations();
    TraceCache traces(kScale);
    std::vector<SweepJob> jobs = makeJobs();

    InProcessBackend reference(traces, 2);
    std::vector<JobOutcome> want = reference.run(jobs);

    faultinj::setSpecForTest(spec);
    ForkedBackend forked(traces, 4, jobTimeoutMs);
    std::vector<JobOutcome> got = forked.run(jobs);
    faultinj::setSpecForTest("");

    EXPECT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size() && i < got.size(); ++i)
        expectSameResult(want[i].result, got[i].result);
    EXPECT_EQ(check::processViolationCount(), 0u);
    check::resetProcessViolations();
    return forked.faultStats();
}

} // namespace

// ---------------------------------------------- recovery per site

TEST(FaultRecovery, WorkerExitRecovers)
{
    // The second spawned worker dies right after its first frame;
    // its remaining jobs must be requeued and the run unharmed.
    SweepFaultStats f = expectRecoveredRunMatches("worker-exit:2");
    EXPECT_GT(f.retriedJobs, 0u);
    EXPECT_EQ(f.respawnedWorkers, 1u);
    EXPECT_EQ(f.timeouts, 0u);
    EXPECT_EQ(f.fallbackJobs, 0u);
}

TEST(FaultRecovery, WorkerHangTripsWatchdogAndRecovers)
{
    // The first worker wedges after its first frame; only the
    // --job-timeout-ms watchdog can notice (no EOF, no exit).
    SweepFaultStats f =
        expectRecoveredRunMatches("worker-hang:1", 400);
    EXPECT_GT(f.retriedJobs, 0u);
    EXPECT_GE(f.timeouts, 1u);
    EXPECT_GE(f.respawnedWorkers, 1u);
}

TEST(FaultRecovery, FrameTruncateRecovers)
{
    // Frame sites count per worker process: every worker's first
    // frame is torn, so all four die and all four respawn (disarmed,
    // or the fault would re-fire forever).
    SweepFaultStats f = expectRecoveredRunMatches("frame-truncate:1");
    EXPECT_GT(f.retriedJobs, 0u);
    EXPECT_EQ(f.respawnedWorkers, 4u);
}

TEST(FaultRecovery, FrameGarbageRecovers)
{
    // A full-length frame of garbage: the parent must detect the
    // unparsable payload, kill the liar and requeue its jobs.
    SweepFaultStats f = expectRecoveredRunMatches("frame-garbage:1");
    EXPECT_GT(f.retriedJobs, 0u);
    EXPECT_EQ(f.respawnedWorkers, 4u);
}

TEST(FaultRecovery, MultipleSimultaneousFaultsRecover)
{
    // The acceptance mix: one crash, one hang, one torn frame in a
    // single 4-worker sweep.
    SweepFaultStats f = expectRecoveredRunMatches(
        "worker-exit:2,worker-hang:3,frame-truncate:2", 400);
    EXPECT_GT(f.retriedJobs, 0u);
    EXPECT_GE(f.respawnedWorkers, 2u);
    EXPECT_GE(f.timeouts, 1u);
}

// ------------------------------------------- fork-fail fallback

TEST(FaultRecovery, ForkFailFallsBackToByteIdenticalFigure)
{
    // With fork() failing, the whole figure must still come out —
    // rendered byte-identical to the in-process run — via the
    // fallback path, and the manifest counters must say so.
    const FigureDef *fig = findFigure("fig4");
    ASSERT_NE(fig, nullptr);
    TraceCache traces(kScale);

    SweepEngine inProcess(traces, 2);
    std::string want =
        renderFigureText(*fig, fig->fn(inProcess), kScale);

    faultinj::setSpecForTest("fork-fail:1");
    SweepEngine forked(
        traces, std::make_unique<ForkedBackend>(traces, 4));
    std::string got =
        renderFigureText(*fig, fig->fn(forked), kScale);
    faultinj::setSpecForTest("");

    EXPECT_EQ(want, got);
    EXPECT_GT(forked.faultStats().fallbackJobs, 0u);
}

// ------------------------------------------------ loud failures

TEST(FaultDeathTest, RetryExhaustionDiesWithAttemptHistory)
{
    TraceCache traces(kScale);
    OooConfig cfg = makeOooConfig(16);
    // Four jobs: each injected death still delivers one frame first,
    // so job 3 survives three worker deaths' requeues — attempt 1
    // plus 2 retries — before the batch could reach it.
    std::vector<SweepJob> jobs = {
        oooJob("swm256", cfg), oooJob("hydro2d", cfg),
        oooJob("nasa7", cfg), oooJob("arc2d", cfg)};
    // One worker, killed on every spawn: the sweep must fail —
    // naming the job and replaying its full attempt history —
    // rather than loop or hang.
    EXPECT_EXIT(
        {
            faultinj::setSpecForTest(
                "worker-exit:1,worker-exit:2,worker-exit:3");
            ForkedBackend backend(traces, 1, 0, 2);
            backend.run(jobs);
        },
        ::testing::ExitedWithCode(1),
        "failed 3 times; --max-retries 2 exhausted");
}

TEST(FaultDeathTest, MalformedSpecIsFatal)
{
    EXPECT_EXIT(faultinj::setSpecForTest("no-such-site:1"),
                ::testing::ExitedWithCode(1),
                "OOVA_FAULT: unknown site");
    EXPECT_EXIT(faultinj::setSpecForTest("worker-exit:0"),
                ::testing::ExitedWithCode(1),
                "OOVA_FAULT: bad occurrence");
    EXPECT_EXIT(faultinj::setSpecForTest("worker-exit:1junk"),
                ::testing::ExitedWithCode(1),
                "OOVA_FAULT: bad occurrence");
    EXPECT_EXIT(faultinj::setSpecForTest("worker-exit"),
                ::testing::ExitedWithCode(1),
                "OOVA_FAULT: entry");
}

// -------------------------------------------------- spec plumbing

TEST(FaultSpec, SiteNamesAreStable)
{
    // The kebab-case names are an external interface (OOVA_FAULT,
    // the README table, the chaos CI job); renaming one is a
    // breaking change and must be deliberate.
    using faultinj::Site;
    EXPECT_STREQ(faultinj::siteName(Site::WorkerExit), "worker-exit");
    EXPECT_STREQ(faultinj::siteName(Site::WorkerHang), "worker-hang");
    EXPECT_STREQ(faultinj::siteName(Site::FrameTruncate),
                 "frame-truncate");
    EXPECT_STREQ(faultinj::siteName(Site::FrameGarbage),
                 "frame-garbage");
    EXPECT_STREQ(faultinj::siteName(Site::StoreCorrupt),
                 "store-corrupt");
    EXPECT_STREQ(faultinj::siteName(Site::StoreTornIndex),
                 "store-torn-index");
    EXPECT_STREQ(faultinj::siteName(Site::ForkFail), "fork-fail");
}

TEST(FaultSpec, CountersCountAndDisarmSilences)
{
    using faultinj::Site;
    faultinj::setSpecForTest("store-corrupt:2,store-corrupt:4");
    EXPECT_FALSE(faultinj::shouldFire(Site::StoreCorrupt)); // 1st
    EXPECT_TRUE(faultinj::shouldFire(Site::StoreCorrupt));  // 2nd
    EXPECT_FALSE(faultinj::shouldFire(Site::StoreCorrupt)); // 3rd
    // Other sites share the spec but not the counter.
    EXPECT_FALSE(faultinj::shouldFire(Site::StoreTornIndex));
    faultinj::disarmAll();
    EXPECT_FALSE(faultinj::shouldFire(Site::StoreCorrupt)); // 4th
    faultinj::setSpecForTest("");
}
