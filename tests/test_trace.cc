/**
 * @file
 * Unit tests for src/trace: the trace container, statistics (the
 * Table 2/3 columns) and binary serialization round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"

using namespace oova;

namespace
{

Trace
smallTrace()
{
    Trace t("unit");
    t.push(makeScalar(Opcode::SAdd, aReg(0), aReg(0)));
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0), 64));
    t.push(makeVStore(vReg(1), aReg(0), 0x2000, 8, 64));
    t.push(makeBranch(aReg(0), true, 0x10));
    return t;
}

} // namespace

TEST(Trace, BasicContainer)
{
    Trace t = smallTrace();
    EXPECT_EQ(t.size(), 5u);
    EXPECT_FALSE(t.empty());
    EXPECT_EQ(t.name(), "unit");
    EXPECT_EQ(t[1].op, Opcode::VLoad);
}

TEST(TraceStats, CountsAndVectorization)
{
    TraceStats s = TraceStats::compute(smallTrace());
    EXPECT_EQ(s.scalarInsts, 2u);
    EXPECT_EQ(s.vectorInsts, 3u);
    EXPECT_EQ(s.vectorOps, 3u * 64u);
    EXPECT_EQ(s.branches, 1u);
    EXPECT_DOUBLE_EQ(s.avgVectorLength(), 64.0);
    double expect = 100.0 * 192.0 / (192.0 + 2.0);
    EXPECT_NEAR(s.vectorization(), expect, 1e-9);
}

TEST(TraceStats, SpillCensus)
{
    Trace t("spills");
    t.push(makeVLoad(vReg(0), aReg(0), 0x100, 8, 32, false));
    t.push(makeVLoad(vReg(1), aReg(0), 0x200, 8, 32, true));
    t.push(makeVStore(vReg(0), aReg(0), 0x300, 8, 32, true));
    t.push(makeSLoad(sReg(0), aReg(0), 0x400, true));
    t.push(makeSStore(sReg(0), aReg(0), 0x408, false));
    TraceStats s = TraceStats::compute(t);
    EXPECT_EQ(s.vecLoadOps, 32u);
    EXPECT_EQ(s.vecSpillLoadOps, 32u);
    EXPECT_EQ(s.vecStoreOps, 0u);
    EXPECT_EQ(s.vecSpillStoreOps, 32u);
    EXPECT_EQ(s.scalarSpillLoads, 1u);
    EXPECT_EQ(s.scalarStores, 1u);
    EXPECT_NEAR(s.spillTrafficFraction(), 64.0 / 96.0, 1e-9);
}

TEST(TraceStats, EmptyTraceSafe)
{
    TraceStats s = TraceStats::compute(Trace("empty"));
    EXPECT_EQ(s.totalInsts(), 0u);
    EXPECT_DOUBLE_EQ(s.vectorization(), 0.0);
    EXPECT_DOUBLE_EQ(s.avgVectorLength(), 0.0);
    EXPECT_DOUBLE_EQ(s.spillTrafficFraction(), 0.0);
}

TEST(TraceIo, RoundTripSmall)
{
    Trace t = smallTrace();
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(t, ss));
    Trace u;
    ASSERT_TRUE(loadTrace(u, ss));
    ASSERT_EQ(u.size(), t.size());
    EXPECT_EQ(u.name(), t.name());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(u[i].op, t[i].op) << i;
        EXPECT_EQ(u[i].dst, t[i].dst) << i;
        EXPECT_EQ(u[i].numSrc, t[i].numSrc) << i;
        EXPECT_EQ(u[i].addr, t[i].addr) << i;
        EXPECT_EQ(u[i].vl, t[i].vl) << i;
        EXPECT_EQ(u[i].taken, t[i].taken) << i;
    }
}

/** Property: random traces survive serialization byte-exactly. */
class TraceIoRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TraceIoRoundTrip, RandomTrace)
{
    Rng rng(GetParam());
    Trace t("rand" + std::to_string(GetParam()));
    for (int i = 0; i < 500; ++i) {
        DynInst inst;
        inst.pc = rng.next();
        inst.op = static_cast<Opcode>(rng.uniform(0, kNumOpcodes - 1));
        // Register indices stay inside each class's architected
        // count: the deserializer rejects out-of-range registers
        // (they would index out of the rename tables downstream).
        auto rand_reg = [&](int max_cls) {
            auto cls = static_cast<RegClass>(rng.uniform(0, max_cls));
            if (cls == RegClass::None)
                return RegId();
            auto idx = static_cast<uint8_t>(
                rng.uniform(0, static_cast<int>(numLogicalRegs(cls)) -
                                   1));
            return RegId(cls, idx);
        };
        inst.dst = rand_reg(4);
        inst.numSrc = static_cast<uint8_t>(rng.uniform(0, 3));
        for (unsigned k = 0; k < inst.numSrc; ++k)
            inst.src[k] = rand_reg(3);
        inst.vl = static_cast<uint16_t>(rng.uniform(1, 128));
        inst.strideBytes = static_cast<int64_t>(rng.uniform(0, 64)) - 32;
        inst.addr = rng.next();
        inst.regionBytes = static_cast<uint32_t>(rng.uniform(0, 1 << 20));
        inst.taken = rng.chance(0.5);
        inst.target = rng.next();
        inst.isSpill = rng.chance(0.3);
        t.push(inst);
    }

    std::stringstream ss;
    ASSERT_TRUE(saveTrace(t, ss));
    Trace u;
    ASSERT_TRUE(loadTrace(u, ss));
    ASSERT_EQ(u.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(u[i].pc, t[i].pc);
        EXPECT_EQ(u[i].op, t[i].op);
        EXPECT_EQ(u[i].dst, t[i].dst);
        EXPECT_EQ(u[i].strideBytes, t[i].strideBytes);
        EXPECT_EQ(u[i].regionBytes, t[i].regionBytes);
        EXPECT_EQ(u[i].target, t[i].target);
        EXPECT_EQ(u[i].isSpill, t[i].isSpill);
        for (unsigned k = 0; k < t[i].numSrc; ++k)
            EXPECT_EQ(u[i].src[k], t[i].src[k]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoRoundTrip,
                         ::testing::Values(1, 2, 3, 42, 1234));

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOTATRACE-FILE-AT-ALL";
    Trace u;
    EXPECT_FALSE(loadTrace(u, ss));
    EXPECT_TRUE(u.empty());
}

TEST(TraceIo, RejectsOutOfRangeEnumBytes)
{
    Trace t = smallTrace();
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(t, ss));
    std::string bytes = ss.str();
    // First instruction's opcode byte: magic(8) + name_len(4) +
    // name + count(8) + pc(8); then dst reg (2), numSrc (1), three
    // src regs (6), vl (2), stride (8), addr (8), region (4),
    // esize (1), ipat. All of these feed unchecked array subscripts
    // (traits() table, register files, src[] loops), so a corrupted
    // byte at any of them must be rejected at deserialization.
    size_t op_off = 8 + 4 + t.name().size() + 8 + 8;
    size_t dst_cls_off = op_off + 1;
    size_t num_src_off = op_off + 3;
    size_t ipat_off = num_src_off + 1 + 6 + 2 + 8 + 8 + 4 + 1;
    for (size_t off : {op_off, dst_cls_off, num_src_off, ipat_off}) {
        std::string bad_bytes = bytes;
        bad_bytes[off] = static_cast<char>(0xff);
        std::stringstream bad(bad_bytes);
        Trace u;
        EXPECT_FALSE(loadTrace(u, bad)) << "offset=" << off;
        EXPECT_TRUE(u.empty()) << "offset=" << off;
    }
}

TEST(TraceIo, RejectsTruncation)
{
    Trace t = smallTrace();
    std::stringstream ss;
    ASSERT_TRUE(saveTrace(t, ss));
    std::string bytes = ss.str();
    for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t(9)}) {
        std::stringstream cut_ss(bytes.substr(0, cut));
        Trace u;
        EXPECT_FALSE(loadTrace(u, cut_ss)) << "cut=" << cut;
    }
}

TEST(TraceIo, FileRoundTrip)
{
    Trace t = smallTrace();
    std::string path = ::testing::TempDir() + "/oova_trace_test.bin";
    ASSERT_TRUE(saveTraceFile(t, path));
    Trace u;
    ASSERT_TRUE(loadTraceFile(u, path));
    EXPECT_EQ(u.size(), t.size());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    Trace u;
    EXPECT_FALSE(loadTraceFile(u, "/nonexistent/path/trace.bin"));
}
