/**
 * @file
 * Tests for the occupancy-telemetry primitives (src/common/stats.hh):
 * StatDistribution math against brute-force recomputation from the
 * raw sample stream, StatTimeSeries epoch bounding and
 * batching-independence, interval-depth accumulation conservation,
 * the observe-only guarantee (telemetry on/off changes no result
 * field), the occupancy-conservation checker firing on corrupt
 * state, and --stats dump determinism across worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/check.hh"
#include "check/checkers.hh"
#include "common/stats.hh"
#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "harness/statsdump.hh"
#include "harness/sweep.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

constexpr double kScale = 0.25;

/** Deterministic pseudo-random stream (no host-dependent seeding). */
struct Lcg
{
    uint64_t state = 0x2545F4914F6CDD1Dull;

    uint64_t
    next(uint64_t bound)
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return (state >> 33) % bound;
    }
};

/** Brute-force p95 using the distribution's histogram semantics. */
uint64_t
bruteP95(std::vector<uint64_t> values, uint64_t width)
{
    std::sort(values.begin(), values.end());
    uint64_t n = values.size();
    uint64_t rank = (n * 95 + 99) / 100;
    uint64_t v = values[rank - 1];
    uint64_t bucket = std::min<uint64_t>(
        v / width, StatDistribution::kNumBuckets - 1);
    return std::min((bucket + 1) * width - 1, values.back());
}

} // namespace

// ------------------------------------------------- StatDistribution

TEST(StatDistribution, MatchesBruteForceOverRandomStream)
{
    StatDistribution d;
    d.setCapacity(200);
    Lcg rng;
    std::vector<uint64_t> values;
    for (int i = 0; i < 1000; ++i)
        values.push_back(rng.next(201));
    for (uint64_t v : values)
        d.sample(v);

    double sum = 0, sumSq = 0;
    uint64_t lo = values[0], hi = values[0];
    for (uint64_t v : values) {
        sum += static_cast<double>(v);
        sumSq += static_cast<double>(v) * static_cast<double>(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    double n = static_cast<double>(values.size());
    double mean = sum / n;
    double var = sumSq / n - mean * mean;

    EXPECT_EQ(d.samples, values.size());
    EXPECT_EQ(d.minValue, lo);
    EXPECT_EQ(d.maxValue, hi);
    EXPECT_DOUBLE_EQ(d.mean(), mean);
    EXPECT_NEAR(d.stddev(), std::sqrt(var), 1e-9);
    EXPECT_EQ(d.p95(), bruteP95(values, d.width));

    uint64_t bucketTotal = 0;
    for (uint64_t b : d.buckets)
        bucketTotal += b;
    EXPECT_EQ(bucketTotal, d.samples);
}

TEST(StatDistribution, P95BracketsTheTruePercentile)
{
    // The histogram p95 may round up to a bucket edge but never
    // below the true 95th-percentile sample (capacity sized, so no
    // value overflows the last bucket's edge).
    Lcg rng;
    for (int trial = 0; trial < 20; ++trial) {
        StatDistribution d;
        d.setCapacity(100);
        std::vector<uint64_t> values;
        for (int i = 0; i < 64; ++i)
            values.push_back(rng.next(101));
        for (uint64_t v : values)
            d.sample(v);
        std::sort(values.begin(), values.end());
        uint64_t rank = (values.size() * 95 + 99) / 100;
        uint64_t truth = values[rank - 1];
        EXPECT_GE(d.p95(), truth);
        EXPECT_LE(d.p95(), d.maxValue);
    }
}

TEST(StatDistribution, BulkWeightEqualsRepeatedSamples)
{
    StatDistribution bulk, repeated;
    bulk.setCapacity(64);
    repeated.setCapacity(64);
    Lcg rng;
    for (int i = 0; i < 200; ++i) {
        uint64_t v = rng.next(65);
        uint64_t n = 1 + rng.next(7);
        bulk.sample(v, n);
        for (uint64_t k = 0; k < n; ++k)
            repeated.sample(v);
    }
    EXPECT_EQ(bulk, repeated);
}

TEST(StatDistribution, ZeroWeightIsANoOp)
{
    StatDistribution d, untouched;
    d.setCapacity(8);
    untouched.setCapacity(8);
    d.sample(5, 0);
    EXPECT_EQ(d, untouched);
}

TEST(StatDistribution, SetCapacityKeepsFullValueOutOfOverflow)
{
    // A sample equal to the declared capacity must land in a real
    // bucket index (value / width <= 15), never get clamped into
    // the overflow bucket from above.
    for (uint64_t cap = 1; cap <= 1024; ++cap) {
        StatDistribution d;
        d.setCapacity(cap);
        EXPECT_LE(cap / d.width, StatDistribution::kNumBuckets - 1)
            << "capacity " << cap << " width " << d.width;
    }
}

// --------------------------------------------------- StatTimeSeries

TEST(StatTimeSeries, EpochBoundingAndExactTotals)
{
    StatTimeSeries ts;
    Lcg rng;
    uint64_t total = 0, weightedSum = 0;
    for (int i = 0; i < 500; ++i) {
        uint64_t v = rng.next(40);
        uint64_t n = 1 + rng.next(97);
        ts.sample(v, n);
        total += n;
        weightedSum += v * n;
    }

    EXPECT_EQ(ts.total, total);
    EXPECT_LE(ts.epochsUsed(), StatTimeSeries::kMaxEpochs);
    // epochLen stays a power of two through pairwise merges.
    EXPECT_EQ(ts.epochLen & (ts.epochLen - 1), 0u);

    uint64_t sumOfSums = 0, sumOfCycles = 0;
    for (size_t e = 0; e < StatTimeSeries::kMaxEpochs; ++e) {
        sumOfSums += ts.sums[e];
        sumOfCycles += ts.epochCycles(e);
    }
    EXPECT_EQ(sumOfSums, weightedSum);
    EXPECT_EQ(sumOfCycles, total);
}

TEST(StatTimeSeries, ShapeIndependentOfBatching)
{
    // The same (value, weight) stream must fold to the identical
    // epoch window whether charged in bulk or cycle by cycle.
    StatTimeSeries bulk, single;
    Lcg rng;
    for (int i = 0; i < 300; ++i) {
        uint64_t v = rng.next(16);
        uint64_t n = 1 + rng.next(11);
        bulk.sample(v, n);
        for (uint64_t k = 0; k < n; ++k)
            single.sample(v);
    }
    EXPECT_EQ(bulk, single);
}

TEST(StatTimeSeries, MergeDoublesEpochLengthAndKeepsSums)
{
    StatTimeSeries ts;
    // 100 cycles at value 3: outgrows the 32x1 window twice.
    ts.sample(3, 100);
    EXPECT_EQ(ts.total, 100u);
    EXPECT_EQ(ts.epochLen, 4u);
    EXPECT_EQ(ts.epochsUsed(), 25u);
    uint64_t sumOfSums = 0;
    for (uint64_t s : ts.sums)
        sumOfSums += s;
    EXPECT_EQ(sumOfSums, 300u);
    EXPECT_DOUBLE_EQ(ts.epochMean(0), 3.0);
    EXPECT_DOUBLE_EQ(ts.epochMean(24), 3.0);
}

// ------------------------------------------- accumulateIntervalDepth

TEST(AccumulateIntervalDepth, ConservesWeightAndMatchesBruteForce)
{
    IntervalRecorder rec;
    rec.add(2, 10);
    rec.add(5, 15); // overlaps the first: depth 2 over [5, 10)
    rec.add(5, 7);  // depth 3 over [5, 7)
    rec.add(20, 30);
    rec.add(28, 50); // clipped at total below

    constexpr Cycle kTotal = 40;
    StatDistribution dist;
    dist.setCapacity(8);
    StatTimeSeries ts;
    accumulateIntervalDepth(rec, kTotal, dist, ts);

    // Conservation: exactly one unit of weight per cycle in range.
    EXPECT_EQ(dist.samples, kTotal);
    EXPECT_EQ(ts.total, kTotal);

    // Brute force: count covering intervals cycle by cycle.
    uint64_t sum = 0, maxDepth = 0;
    for (Cycle c = 0; c < kTotal; ++c) {
        uint64_t depth = 0;
        for (const auto &[s, e] : rec.intervals())
            if (c >= s && c < std::min<Cycle>(e, kTotal))
                ++depth;
        sum += depth;
        maxDepth = std::max(maxDepth, depth);
    }
    EXPECT_EQ(dist.sum, sum);
    EXPECT_EQ(dist.maxValue, maxDepth);
    EXPECT_EQ(dist.minValue, 0u); // cycles [0,2) are idle
}

// --------------------------------------- occupancy conservation check

TEST(OccupancyConservation, CleanTelemetryIsQuiet)
{
    std::array<StatDistribution, kNumOccStructs> occ{};
    std::array<StatTimeSeries, kNumOccStructs> ts{};
    constexpr Cycle kCycles = 256;
    // Two modeled structures charged exactly once per cycle; the
    // rest stay empty (exempt, like REF's missing ROB).
    occ[0].sample(4, kCycles);
    ts[0].sample(4, kCycles);
    occ[3].sample(1, kCycles / 2);
    occ[3].sample(2, kCycles / 2);
    ts[3].sample(1, kCycles / 2);
    ts[3].sample(2, kCycles / 2);

    check::Registry reg;
    reg.add("occupancy-conservation", check::kSiteEnd,
            [&](check::Reporter &r) {
                check::checkOccupancyConservation(kCycles, occ, ts, r);
            });
    reg.runSite(check::kSiteEnd, kCycles);
    EXPECT_EQ(reg.violationCount(), 0u);
}

TEST(OccupancyConservation, CorruptSampleWeightFires)
{
    std::array<StatDistribution, kNumOccStructs> occ{};
    std::array<StatTimeSeries, kNumOccStructs> ts{};
    constexpr Cycle kCycles = 256;
    occ[0].sample(4, kCycles - 1); // one cycle short: a missed hook
    ts[0].sample(4, kCycles);
    occ[1].sample(2, kCycles);
    ts[1].sample(2, kCycles + 1); // one cycle extra: double charge

    check::Registry reg;
    reg.add("occupancy-conservation", check::kSiteEnd,
            [&](check::Reporter &r) {
                check::checkOccupancyConservation(kCycles, occ, ts, r);
            });
    reg.runSite(check::kSiteEnd, kCycles);
    EXPECT_EQ(reg.violationCount(), 2u);
    check::resetProcessViolations();
}

// ------------------------------------------------------ observe-only

TEST(Telemetry, SamplingIsObserveOnly)
{
    // Turning occupancy sampling on must not move a single
    // result field the figures read.
    Workloads w(kScale);
    auto expectCoreFieldsEqual = [](const SimResult &a,
                                    const SimResult &b) {
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.stateCycles, b.stateCycles);
        EXPECT_EQ(a.memRequests, b.memRequests);
        EXPECT_EQ(a.cacheHits, b.cacheHits);
        EXPECT_EQ(a.cacheMisses, b.cacheMisses);
        EXPECT_EQ(a.tlbHits, b.tlbHits);
        EXPECT_EQ(a.tlbMisses, b.tlbMisses);
        EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
        EXPECT_EQ(a.robStallCycles, b.robStallCycles);
        EXPECT_EQ(a.queueStallCycles, b.queueStallCycles);
        EXPECT_EQ(a.stallCycles, b.stallCycles);
        EXPECT_EQ(a.cpiCycles, b.cpiCycles);
    };

    const Trace &t = w.get("hydro2d");
    OooConfig cfg = makeOooConfig(16);
    cfg.telemetry = false;
    SimResult off = simulateOoo(t, cfg);
    cfg.telemetry = true;
    SimResult on = simulateOoo(t, cfg);
    expectCoreFieldsEqual(off, on);

    // The telemetry itself obeys conservation: every non-empty
    // distribution carries exactly one unit of weight per cycle.
    bool sawNonEmpty = false;
    for (size_t i = 0; i < kNumOccStructs; ++i) {
        if (on.occupancy[i].samples == 0)
            continue;
        sawNonEmpty = true;
        EXPECT_EQ(on.occupancy[i].samples, on.cycles)
            << occStructName(static_cast<OccStruct>(i));
        EXPECT_EQ(on.occupancyTs[i].total, on.cycles)
            << occStructName(static_cast<OccStruct>(i));
    }
    EXPECT_TRUE(sawNonEmpty);
    // Telemetry off leaves the arrays untouched.
    for (size_t i = 0; i < kNumOccStructs; ++i)
        EXPECT_EQ(off.occupancy[i].samples, 0u);

    RefConfig rc = makeRefConfig(50);
    rc.telemetry = false;
    SimResult refOff = simulateRef(t, rc);
    rc.telemetry = true;
    SimResult refOn = simulateRef(t, rc);
    expectCoreFieldsEqual(refOff, refOn);
}

// ------------------------------------------------- stats-dump output

TEST(StatsDump, IdenticalAcrossWorkerCounts)
{
    // The gem5-style dump is a pure function of the results, and the
    // results are worker-count independent — so the rendered dump
    // must be byte-identical at 1 and 8 threads.
    TraceCache traces(kScale);
    std::vector<SweepJob> jobs;
    for (const char *prog : {"hydro2d", "nasa7"}) {
        OooConfig cfg = makeOooConfig(16);
        cfg.telemetry = true;
        jobs.push_back(oooJob(prog, cfg));
        RefConfig rc = makeRefConfig(50);
        rc.telemetry = true;
        jobs.push_back(refJob(prog, rc));
    }

    SweepEngine serial(traces, 1);
    SweepEngine parallel(traces, 8);
    serial.enableResultCapture();
    parallel.enableResultCapture();
    serial.run(jobs);
    parallel.run(jobs);

    std::string one = renderStatsDump(serial.captured());
    std::string many = renderStatsDump(parallel.captured());
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, many);
    // Spot-check the grammar: a begin marker and a sanitized name.
    EXPECT_NE(one.find("---------- Begin Simulation Statistics"),
              std::string::npos);
    EXPECT_NE(one.find(".occupancy.rob.samples"), std::string::npos);
}
