/**
 * @file
 * Tests for the invariant-audit subsystem (src/check/): registry
 * mechanics (site filtering, recording caps, the structured report,
 * the process-wide tally and exit code), plus one injected violation
 * per checker family to prove each family actually fires on corrupt
 * state. The companion end-to-end coverage — a full simulation with
 * every checker enabled staying violation-free — lives in
 * test_rerename.cc and the invariant_audit ctest entry.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/check.hh"
#include "check/checkers.hh"

using namespace oova;
using namespace oova::check;

namespace
{

/** Run one ad-hoc checker at kSiteEnd and return the registry. */
Registry
runOnce(Registry::CheckFn fn, Cycle now = 100)
{
    Registry reg;
    reg.add("test-checker", kSiteEnd, std::move(fn));
    reg.runSite(kSiteEnd, now);
    return reg;
}

/** Count of violations a single checker-family call produces. */
uint64_t
countViolations(const std::function<void(Reporter &)> &fn)
{
    Registry reg = runOnce(fn);
    return reg.violationCount();
}

/** A structurally-sound two-register file: reg 0 live, reg 1 free. */
RegFileAudit
cleanFile()
{
    RegFileAudit rf;
    rf.cls = "V";
    rf.regs.push_back({1, false, 1, 1, 0});
    rf.regs.push_back({0, true, 0, 0, 0});
    rf.freeList.push_back(1);
    return rf;
}

/** A small sound TLB view: 2 sets x 1 way, page 2 in set 0. */
TlbAuditView
cleanTlb()
{
    TlbAuditView v;
    v.l1.sets = 2;
    v.l1.assoc = 1;
    v.l1.ways = {{true, 2, 5}, {false, 0, 0}};
    v.tick = 10;
    v.hits = 4;
    v.misses = 2;
    v.indexedMisses = 1;
    v.missCycles = 40;
    return v;
}

} // namespace

TEST(CheckRegistry, SiteFiltering)
{
    Registry reg;
    int retire_runs = 0, window_runs = 0;
    reg.add("retire-only", kSiteRetire,
            [&](Reporter &) { ++retire_runs; });
    reg.add("window-or-end", kSiteWindow | kSiteEnd,
            [&](Reporter &) { ++window_runs; });

    reg.runSite(kSiteRetire, 1);
    EXPECT_EQ(retire_runs, 1);
    EXPECT_EQ(window_runs, 0);

    reg.runSite(kSiteWindow, 2);
    reg.runSite(kSiteEnd, 3);
    EXPECT_EQ(retire_runs, 1);
    EXPECT_EQ(window_runs, 2);
    EXPECT_EQ(reg.numCheckers(), 2u);
    EXPECT_EQ(reg.violationCount(), 0u);
    EXPECT_TRUE(reg.report().empty());
}

TEST(CheckRegistry, ViolationIsRecordedStructured)
{
    resetProcessViolations();
    Registry reg = runOnce(
        [](Reporter &r) { r.fail("width %d exceeds %d", 7, 4); }, 42);

    ASSERT_EQ(reg.violationCount(), 1u);
    ASSERT_EQ(reg.violations().size(), 1u);
    const Violation &v = reg.violations()[0];
    EXPECT_EQ(v.cycle, 42u);
    EXPECT_EQ(v.checker, "test-checker");
    EXPECT_EQ(v.detail, "width 7 exceeds 4");

    std::string report = reg.report();
    EXPECT_NE(report.find("1 violation"), std::string::npos);
    EXPECT_NE(report.find("cycle=42"), std::string::npos);
    EXPECT_NE(report.find("checker=test-checker"), std::string::npos);
    EXPECT_NE(report.find("detail=width 7 exceeds 4"),
              std::string::npos);
    resetProcessViolations();
}

TEST(CheckRegistry, StoredViolationsAreCapped)
{
    resetProcessViolations();
    Registry reg = runOnce([](Reporter &r) {
        for (int i = 0; i < 100; ++i)
            r.fail("violation %d", i);
    });
    EXPECT_EQ(reg.violationCount(), 100u);
    EXPECT_EQ(reg.violations().size(), Registry::kMaxStored);
    resetProcessViolations();
}

TEST(CheckRegistry, ProcessTallyFeedsExitCode)
{
    resetProcessViolations();
    EXPECT_EQ(processViolationCount(), 0u);
    EXPECT_EQ(processExitCode(), 0);

    // Two independent registries (as in a parallel sweep) aggregate
    // into the one process tally the bench drivers exit with.
    Registry a = runOnce([](Reporter &r) { r.fail("a"); });
    Registry b = runOnce([](Reporter &r) { r.fail("b"); });
    EXPECT_EQ(a.violationCount() + b.violationCount(), 2u);
    EXPECT_EQ(processViolationCount(), 2u);
    EXPECT_EQ(processExitCode(), 3);
    resetProcessViolations();
    EXPECT_EQ(processExitCode(), 0);
}

TEST(CheckRegistry, ViolationTurnsExitCodeRed)
{
    EXPECT_EXIT(
        {
            resetProcessViolations();
            Registry reg = runOnce([](Reporter &r) {
                r.fail("injected for exit-code test");
            });
            std::exit(processExitCode());
        },
        ::testing::ExitedWithCode(3), "injected for exit-code test");
}

TEST(CheckLevelTest, Names)
{
    EXPECT_STREQ(levelName(CheckLevel::Off), "off");
    EXPECT_STREQ(levelName(CheckLevel::Retire), "retire");
    EXPECT_STREQ(levelName(CheckLevel::Full), "full");
}

// ---------------------------------------------------------------
// One injected corruption per checker family.
// ---------------------------------------------------------------

TEST(CheckerFamilies, FreeListCleanStateIsQuiet)
{
    resetProcessViolations();
    EXPECT_EQ(countViolations([](Reporter &r) {
                  RegFileAudit rf = cleanFile();
                  checkFreeListStructure(rf, r);
              }),
              0u);
    resetProcessViolations();
}

TEST(CheckerFamilies, FreeListCatchesLeakedRegister)
{
    resetProcessViolations();
    // refCount 0 but not on the free list: the classic leak.
    EXPECT_EQ(countViolations([](Reporter &r) {
                  RegFileAudit rf = cleanFile();
                  rf.regs[1].inFreeList = false;
                  rf.freeList.clear();
                  checkFreeListStructure(rf, r);
              }),
              1u);
    resetProcessViolations();
}

TEST(CheckerFamilies, FreeListCatchesStructuralCorruption)
{
    resetProcessViolations();
    // Out-of-range index, duplicate entry, flag/membership mismatch,
    // free-with-claims, negative refCount, free-with-subscribers.
    EXPECT_GE(countViolations([](Reporter &r) {
                  RegFileAudit rf = cleanFile();
                  rf.freeList = {7, 1, 1};   // bogus + duplicate
                  rf.regs[0].refCount = -1;  // negative
                  rf.regs[1].elimRefs = 2;   // free with subscribers
                  checkFreeListStructure(rf, r);
              }),
              4u);
    resetProcessViolations();
}

TEST(CheckerFamilies, ConservationCatchesCountDrift)
{
    resetProcessViolations();
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkCountsMatch("refCount", "V", {1, 0, 2},
                                   {1, 0, 1}, r);
              }),
              1u);
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkCountsMatch("refCount", "V", {1}, {1, 0}, r);
              }),
              1u);
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkCountsMatch("refCount", "V", {1, 0}, {1, 0},
                                   r);
              }),
              0u);
    resetProcessViolations();
}

TEST(CheckerFamilies, AgeOrderCatchesOutOfOrderQueue)
{
    resetProcessViolations();
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkAgeOrdered("rob", {1, 2, 2, 5}, r);
              }),
              1u);
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkAgeOrdered("rob", {1, 2, 5}, r);
              }),
              0u);
    resetProcessViolations();
}

TEST(CheckerFamilies, ScalarMismatchIsCaught)
{
    resetProcessViolations();
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkScalarMatch("memSlotsUsed", 3, 2, r);
              }),
              1u);
    resetProcessViolations();
}

TEST(CheckerFamilies, CalendarDivergenceIsCaught)
{
    resetProcessViolations();
    // A live transition earlier than the calendar minimum.
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkCalendarAgreement(100, 90, r);
              }),
              1u);
    // A calendar event with no live transition behind it.
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkCalendarAgreement(90, 100, r);
              }),
              1u);
    EXPECT_EQ(countViolations([](Reporter &r) {
                  checkCalendarAgreement(100, 100, r);
              }),
              0u);
    resetProcessViolations();
}

TEST(CheckerFamilies, MemWindowViolationsAreCaught)
{
    resetProcessViolations();
    MemAccess ok{10, 20, 15, 25};
    EXPECT_EQ(countViolations(
                  [&](Reporter &r) { checkMemWindow(ok, 10, r); }),
              0u);
    // Address phase starting before the request cycle.
    MemAccess early{5, 20, 15, 25};
    EXPECT_EQ(countViolations(
                  [&](Reporter &r) { checkMemWindow(early, 10, r); }),
              1u);
    // Data arriving before the address phase.
    MemAccess bad_data{10, 20, 5, 25};
    EXPECT_EQ(
        countViolations(
            [&](Reporter &r) { checkMemWindow(bad_data, 10, r); }),
        1u);
    resetProcessViolations();
}

TEST(CheckerFamilies, MemStatsContainmentIsCaught)
{
    resetProcessViolations();
    MemStats s;
    s.bankConflicts = 2;
    s.indexedConflicts = 5; // subset larger than its superset
    EXPECT_EQ(countViolations(
                  [&](Reporter &r) { checkMemStatsBounds(s, r); }),
              1u);
    resetProcessViolations();
}

TEST(CheckerFamilies, MemStatsRegressionIsCaught)
{
    resetProcessViolations();
    MemStats before, after;
    before.requests = 10;
    after.requests = 8; // a counter ran backwards
    EXPECT_EQ(countViolations([&](Reporter &r) {
                  checkMemStatsMonotone(before, after, r);
              }),
              1u);
    EXPECT_EQ(countViolations([&](Reporter &r) {
                  checkMemStatsMonotone(after, before, r);
              }),
              0u);
    resetProcessViolations();
}

TEST(CheckerFamilies, TlbCleanViewIsQuiet)
{
    resetProcessViolations();
    EXPECT_EQ(countViolations([](Reporter &r) {
                  TlbAuditView v = cleanTlb();
                  checkTlbSoundness(v, r);
              }),
              0u);
    resetProcessViolations();
}

TEST(CheckerFamilies, TlbCorruptionIsCaught)
{
    resetProcessViolations();
    // A page stored in the wrong set.
    EXPECT_EQ(countViolations([](Reporter &r) {
                  TlbAuditView v = cleanTlb();
                  v.l1.ways[1] = {true, 2, 5}; // page 2 in set 1
                  checkTlbSoundness(v, r);
              }),
              1u);
    // An LRU stamp from the future.
    EXPECT_EQ(countViolations([](Reporter &r) {
                  TlbAuditView v = cleanTlb();
                  v.l1.ways[0].lastUse = 99;
                  checkTlbSoundness(v, r);
              }),
              1u);
    // Counter containment: indexed misses exceeding all misses, and
    // more outcomes than lookups.
    EXPECT_EQ(countViolations([](Reporter &r) {
                  TlbAuditView v = cleanTlb();
                  v.indexedMisses = 3;
                  checkTlbSoundness(v, r);
              }),
              1u);
    EXPECT_EQ(countViolations([](Reporter &r) {
                  TlbAuditView v = cleanTlb();
                  v.hits = 20;
                  checkTlbSoundness(v, r);
              }),
              1u);
    resetProcessViolations();
}
