/**
 * @file
 * Unit tests for the OOOVA building blocks: BTB, return stack,
 * physical register files (refcounts, free lists, memory tags) and
 * the renamer (including rollback, the precise-trap mechanism).
 */

#include <gtest/gtest.h>

#include "core/btb.hh"
#include "core/physreg.hh"
#include "core/renamer.hh"

using namespace oova;

// ---------------- BTB ------------------------------------------

TEST(Btb, ColdPredictsNotTaken)
{
    Btb btb(64);
    EXPECT_FALSE(btb.predictTaken(0x1000));
    EXPECT_EQ(btb.predictedTarget(0x1000), 0u);
}

TEST(Btb, LearnsTakenAfterTwoUpdates)
{
    Btb btb(64);
    btb.update(0x1000, true, 0x40);
    EXPECT_TRUE(btb.predictTaken(0x1000)); // counter jumps to 2
    EXPECT_EQ(btb.predictedTarget(0x1000), 0x40u);
}

TEST(Btb, TwoBitHysteresis)
{
    Btb btb(64);
    btb.update(0x1000, true, 0x40);
    btb.update(0x1000, true, 0x40); // counter 3
    btb.update(0x1000, false, 0);   // counter 2: still predicts taken
    EXPECT_TRUE(btb.predictTaken(0x1000));
    btb.update(0x1000, false, 0); // counter 1
    EXPECT_FALSE(btb.predictTaken(0x1000));
}

TEST(Btb, AliasingReplacesEntry)
{
    Btb btb(4); // tiny, forces conflicts
    btb.update(0x10, true, 0xA);
    // 0x10 and 0x10 + 4*4 alias in a 4-entry BTB (pc>>2 % 4).
    Addr alias = 0x10 + 4 * 4;
    btb.update(alias, true, 0xB);
    EXPECT_FALSE(btb.predictTaken(0x10)); // tag mismatch -> cold
    EXPECT_TRUE(btb.predictTaken(alias));
}

TEST(Btb, TakenBranchesSaturate)
{
    Btb btb(64);
    for (int i = 0; i < 10; ++i)
        btb.update(0x2000, true, 0x99);
    EXPECT_TRUE(btb.predictTaken(0x2000));
    btb.update(0x2000, false, 0);
    EXPECT_TRUE(btb.predictTaken(0x2000)) << "saturation lost";
}

// ---------------- Return stack ----------------------------------

TEST(ReturnStack, LifoOrder)
{
    ReturnStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
}

TEST(ReturnStack, PopEmptyReturnsZero)
{
    ReturnStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(ReturnStack, OverflowDropsOldest)
{
    ReturnStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(ReturnStack, WrapsCorrectly)
{
    ReturnStack ras(3);
    for (Addr a = 1; a <= 7; ++a)
        ras.push(a);
    EXPECT_EQ(ras.pop(), 7u);
    EXPECT_EQ(ras.pop(), 6u);
    EXPECT_EQ(ras.pop(), 5u);
    EXPECT_TRUE(ras.empty());
}

// ---------------- PhysRegFile -----------------------------------

TEST(PhysRegFile, InitialState)
{
    PhysRegFile f(16, 8);
    EXPECT_EQ(f.size(), 16u);
    EXPECT_EQ(f.numFree(), 8u);
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(f.reg(r).refCount, 1) << r;
}

TEST(PhysRegFile, AllocDrainsFreeList)
{
    PhysRegFile f(10, 8);
    int a = f.alloc();
    int b = f.alloc();
    EXPECT_NE(a, b);
    EXPECT_FALSE(f.hasFree());
    EXPECT_EQ(f.reg(a).refCount, 1);
    EXPECT_EQ(f.reg(a).fullReadyAt, kNoCycle);
}

TEST(PhysRegFile, ReleaseReturnsToFreeList)
{
    PhysRegFile f(10, 8);
    int a = f.alloc();
    f.release(a);
    EXPECT_EQ(f.numFree(), 2u);
    EXPECT_TRUE(f.reg(a).inFreeList);
}

TEST(PhysRegFile, RefCountingDelaysFree)
{
    PhysRegFile f(10, 8);
    int a = f.alloc();
    f.addRef(a); // two claims
    f.release(a);
    EXPECT_FALSE(f.reg(a).inFreeList);
    f.release(a);
    EXPECT_TRUE(f.reg(a).inFreeList);
}

TEST(PhysRegFile, FreedRegisterKeepsTag)
{
    PhysRegFile f(10, 8);
    int a = f.alloc();
    MemTag tag{true, 0x100, 0x200, 32, 8, 8};
    f.reg(a).tag = tag;
    f.release(a);
    EXPECT_TRUE(f.reg(a).tag.valid);
    EXPECT_EQ(f.findExactTag(tag), a);
}

TEST(PhysRegFile, AllocPrefersUntagged)
{
    PhysRegFile f(11, 8); // 3 free
    int a = f.alloc();
    int b = f.alloc();
    int c = f.alloc();
    f.reg(a).tag = MemTag{true, 0x0, 0x100, 32, 8, 8};
    f.release(a);
    f.release(b);
    f.release(c);
    // Next two allocations should take b and c (untagged) first.
    int x = f.alloc();
    int y = f.alloc();
    EXPECT_NE(x, a);
    EXPECT_NE(y, a);
    int z = f.alloc(); // forced to take the tagged one
    EXPECT_EQ(z, a);
    EXPECT_FALSE(f.reg(z).tag.valid) << "alloc must reset the tag";
}

TEST(PhysRegFile, ReviveFromFreeList)
{
    PhysRegFile f(10, 8);
    int a = f.alloc();
    f.release(a);
    f.reviveFromFreeList(a);
    EXPECT_FALSE(f.reg(a).inFreeList);
    EXPECT_EQ(f.reg(a).refCount, 1);
    EXPECT_EQ(f.numFree(), 1u);
}

TEST(MemTag, ExactMatchSemantics)
{
    MemTag a{true, 0x100, 0x200, 32, 8, 8};
    MemTag same = a;
    MemTag diff_vl = a;
    diff_vl.vl = 16;
    MemTag diff_stride = a;
    diff_stride.stride = 16;
    MemTag invalid = a;
    invalid.valid = false;
    EXPECT_TRUE(a.exactMatch(same));
    EXPECT_FALSE(a.exactMatch(diff_vl));
    EXPECT_FALSE(a.exactMatch(diff_stride));
    EXPECT_FALSE(a.exactMatch(invalid));
}

TEST(MemTag, OverlapSemantics)
{
    MemTag a{true, 0x100, 0x200, 32, 8, 8};
    EXPECT_TRUE(a.overlaps(0x1ff, 0x300));
    EXPECT_TRUE(a.overlaps(0x0, 0x101));
    EXPECT_FALSE(a.overlaps(0x200, 0x300)); // half-open
    EXPECT_FALSE(a.overlaps(0x0, 0x100));
    MemTag inv;
    EXPECT_FALSE(inv.overlaps(0, UINT64_MAX));
}

TEST(PhysRegFile, InvalidateOverlappingRespectsExcept)
{
    PhysRegFile f(12, 8);
    int a = f.alloc(), b = f.alloc();
    f.reg(a).tag = MemTag{true, 0x100, 0x200, 32, 8, 8};
    f.reg(b).tag = MemTag{true, 0x180, 0x280, 32, 8, 8};
    f.invalidateOverlapping(0x180, 0x200, a);
    EXPECT_TRUE(f.reg(a).tag.valid); // excepted
    EXPECT_FALSE(f.reg(b).tag.valid);
}

TEST(PhysRegFile, InvalidateAllTags)
{
    PhysRegFile f(12, 8);
    int a = f.alloc();
    f.reg(a).tag = MemTag{true, 0x100, 0x200, 32, 8, 8};
    f.invalidateAllTags();
    EXPECT_FALSE(f.reg(a).tag.valid);
}

// ---------------- Renamer ---------------------------------------

TEST(Renamer, InitialIdentityMapping)
{
    Renamer ren(RenamerConfig{});
    for (unsigned i = 0; i < kNumLogicalVRegs; ++i)
        EXPECT_EQ(ren.mapOf(vReg(static_cast<uint8_t>(i))),
                  static_cast<int>(i));
}

TEST(Renamer, RenameUpdatesMapAndReportsOld)
{
    Renamer ren(RenamerConfig{});
    auto r1 = ren.renameDst(vReg(3));
    EXPECT_EQ(r1.oldPhys, 3);
    EXPECT_EQ(ren.mapOf(vReg(3)), r1.physDst);
    auto r2 = ren.renameDst(vReg(3));
    EXPECT_EQ(r2.oldPhys, r1.physDst);
}

TEST(Renamer, CommitReleaseRecyclesRegisters)
{
    RenamerConfig cfg;
    cfg.numPhysV = 9; // one spare
    Renamer ren(cfg);
    auto r1 = ren.renameDst(vReg(0));
    EXPECT_FALSE(ren.canRename(RegClass::V));
    ren.releaseOld(RegClass::V, r1.oldPhys); // commit
    EXPECT_TRUE(ren.canRename(RegClass::V));
    auto r2 = ren.renameDst(vReg(1));
    EXPECT_EQ(r2.physDst, r1.oldPhys) << "freed register reused";
}

TEST(Renamer, RollbackRestoresMapping)
{
    Renamer ren(RenamerConfig{});
    auto r1 = ren.renameDst(vReg(2));
    auto r2 = ren.renameDst(vReg(2));
    // Undo youngest-first, as the trap recovery walk does.
    ren.rollback(vReg(2), r2.physDst, r2.oldPhys);
    EXPECT_EQ(ren.mapOf(vReg(2)), r1.physDst);
    ren.rollback(vReg(2), r1.physDst, r1.oldPhys);
    EXPECT_EQ(ren.mapOf(vReg(2)), 2);
}

TEST(Renamer, RollbackReturnsRegisterToFreeList)
{
    RenamerConfig cfg;
    cfg.numPhysV = 10;
    Renamer ren(cfg);
    unsigned free_before = ren.file(RegClass::V).numFree();
    auto r = ren.renameDst(vReg(0));
    ren.rollback(vReg(0), r.physDst, r.oldPhys);
    EXPECT_EQ(ren.file(RegClass::V).numFree(), free_before);
}

TEST(Renamer, RedirectSharesPhysicalRegister)
{
    Renamer ren(RenamerConfig{});
    // Map v1 onto v0's physical register (a VLE tag hit).
    int p0 = ren.mapOf(vReg(0));
    auto r = ren.redirectDst(vReg(1), p0);
    EXPECT_EQ(ren.mapOf(vReg(1)), p0);
    EXPECT_EQ(ren.file(RegClass::V).reg(p0).refCount, 2);
    // Committing the redirect releases only the old mapping of v1.
    ren.releaseOld(RegClass::V, r.oldPhys);
    EXPECT_EQ(ren.file(RegClass::V).reg(p0).refCount, 2);
}

TEST(Renamer, RedirectToFreeRegisterRevives)
{
    RenamerConfig cfg;
    cfg.numPhysV = 10;
    Renamer ren(cfg);
    auto r1 = ren.renameDst(vReg(0));
    ren.releaseOld(RegClass::V, r1.oldPhys); // phys 0 goes free
    EXPECT_TRUE(ren.file(RegClass::V).reg(r1.oldPhys).inFreeList);
    auto r2 = ren.redirectDst(vReg(1), r1.oldPhys);
    EXPECT_FALSE(ren.file(RegClass::V).reg(r1.oldPhys).inFreeList);
    EXPECT_EQ(ren.mapOf(vReg(1)), r1.oldPhys);
    (void)r2;
}

TEST(Renamer, ClassesAreIndependent)
{
    Renamer ren(RenamerConfig{});
    auto rv = ren.renameDst(vReg(0));
    auto ra = ren.renameDst(aReg(0));
    auto rs = ren.renameDst(sReg(0));
    auto rm = ren.renameDst(mReg(0));
    EXPECT_EQ(ren.mapOf(vReg(0)), rv.physDst);
    EXPECT_EQ(ren.mapOf(aReg(0)), ra.physDst);
    EXPECT_EQ(ren.mapOf(sReg(0)), rs.physDst);
    EXPECT_EQ(ren.mapOf(mReg(0)), rm.physDst);
}

TEST(Renamer, MaskFileHasEightPhysical)
{
    Renamer ren(RenamerConfig{});
    // 1 logical + 7 free = 8 physical (paper's machine parameters).
    EXPECT_EQ(ren.file(RegClass::M).size(), 8u);
    for (int i = 0; i < 7; ++i)
        ren.renameDst(mReg(0));
    EXPECT_FALSE(ren.canRename(RegClass::M));
}
