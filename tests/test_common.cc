/**
 * @file
 * Unit tests for src/common: formatting, RNG, interval statistics,
 * the 8-state breakdown, histograms and table rendering.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace oova;

TEST(Csprintf, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("x=%d", 42), "x=42");
    EXPECT_EQ(csprintf("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(csprintf("%05u", 7u), "00007");
}

TEST(Csprintf, EmptyAndLong)
{
    EXPECT_EQ(csprintf("%s", ""), "");
    std::string big(3000, 'y');
    EXPECT_EQ(csprintf("%s", big.c_str()), big);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformSingleton)
{
    Rng r(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(IntervalRecorder, EmptyHasNoBusyCycles)
{
    IntervalRecorder rec;
    EXPECT_EQ(rec.busyCycles(), 0u);
    EXPECT_EQ(rec.lastEnd(), 0u);
    EXPECT_EQ(rec.count(), 0u);
}

TEST(IntervalRecorder, SingleInterval)
{
    IntervalRecorder rec;
    rec.add(10, 20);
    EXPECT_EQ(rec.busyCycles(), 10u);
    EXPECT_EQ(rec.lastEnd(), 20u);
}

TEST(IntervalRecorder, ZeroLengthIgnored)
{
    IntervalRecorder rec;
    rec.add(5, 5);
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_EQ(rec.busyCycles(), 0u);
}

TEST(IntervalRecorder, OverlapsMerge)
{
    IntervalRecorder rec;
    rec.add(0, 10);
    rec.add(5, 15);
    rec.add(20, 30);
    EXPECT_EQ(rec.busyCycles(), 25u);
}

TEST(IntervalRecorder, OutOfOrderInsertion)
{
    IntervalRecorder rec;
    rec.add(50, 60);
    rec.add(0, 10);
    rec.add(10, 20); // adjacent, still contiguous with [0,10)
    EXPECT_EQ(rec.busyCycles(), 30u);
}

TEST(IntervalRecorder, ClearResets)
{
    IntervalRecorder rec;
    rec.add(0, 100);
    rec.clear();
    EXPECT_EQ(rec.busyCycles(), 0u);
    EXPECT_EQ(rec.lastEnd(), 0u);
}

TEST(UnitStateBreakdown, AllIdle)
{
    IntervalRecorder a, b, c;
    auto st = UnitStateBreakdown::compute(a, b, c, 100);
    EXPECT_EQ(st[0], 100u);
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(st[i], 0u);
}

TEST(UnitStateBreakdown, SingleUnitBusy)
{
    IntervalRecorder fu2, fu1, mem;
    mem.add(0, 40);
    auto st = UnitStateBreakdown::compute(fu2, fu1, mem, 100);
    EXPECT_EQ(st[1], 40u); // < , ,MEM>
    EXPECT_EQ(st[0], 60u);
}

TEST(UnitStateBreakdown, FullOverlap)
{
    IntervalRecorder fu2, fu1, mem;
    fu2.add(0, 10);
    fu1.add(0, 10);
    mem.add(0, 10);
    auto st = UnitStateBreakdown::compute(fu2, fu1, mem, 10);
    EXPECT_EQ(st[7], 10u); // <FU2,FU1,MEM>
}

TEST(UnitStateBreakdown, StaggeredStates)
{
    IntervalRecorder fu2, fu1, mem;
    fu2.add(0, 30);  // FU2 busy [0,30)
    fu1.add(10, 20); // FU1 busy [10,20)
    mem.add(15, 40); // MEM busy [15,40)
    auto st = UnitStateBreakdown::compute(fu2, fu1, mem, 50);
    EXPECT_EQ(st[4], 10u); // <FU2, , >   [0,10)
    EXPECT_EQ(st[6], 5u);  // <FU2,FU1, > [10,15)
    EXPECT_EQ(st[7], 5u);  // all three   [15,20)
    EXPECT_EQ(st[5], 10u); // <FU2, ,MEM> [20,30)
    EXPECT_EQ(st[1], 10u); // < , ,MEM>   [30,40)
    EXPECT_EQ(st[0], 10u); // idle        [40,50)
}

TEST(UnitStateBreakdown, IntervalsClampedToTotal)
{
    IntervalRecorder fu2, fu1, mem;
    mem.add(0, 1000);
    auto st = UnitStateBreakdown::compute(fu2, fu1, mem, 100);
    EXPECT_EQ(st[1], 100u);
    uint64_t sum = 0;
    for (auto v : st)
        sum += v;
    EXPECT_EQ(sum, 100u);
}

TEST(UnitStateBreakdown, SumAlwaysEqualsTotal)
{
    IntervalRecorder fu2, fu1, mem;
    fu2.add(3, 17);
    fu2.add(5, 9);
    fu1.add(0, 4);
    mem.add(16, 22);
    auto st = UnitStateBreakdown::compute(fu2, fu1, mem, 60);
    uint64_t sum = 0;
    for (auto v : st)
        sum += v;
    EXPECT_EQ(sum, 60u);
}

TEST(UnitStateBreakdown, StateNames)
{
    EXPECT_EQ(UnitStateBreakdown::stateName(0), "<   ,   ,   >");
    EXPECT_EQ(UnitStateBreakdown::stateName(7), "<FU2,FU1,MEM>");
    EXPECT_EQ(UnitStateBreakdown::stateName(5), "<FU2,   ,MEM>");
}

TEST(Histogram, BasicBuckets)
{
    Histogram h(10, 5);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(49);
    h.sample(50); // overflow bucket
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
    EXPECT_EQ(h.buckets()[5], 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, MinMaxMean)
{
    Histogram h(1, 10);
    h.sample(2);
    h.sample(4);
    h.sample(6);
    EXPECT_EQ(h.min(), 2u);
    EXPECT_EQ(h.max(), 6u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h(4, 4);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(TextTable, AlignedRendering)
{
    TextTable t({"Name", "Val"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "23"});
    std::string s = t.str();
    EXPECT_NE(s.find("Name"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    // All lines equal width for data rows.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, CsvRendering)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, FmtHelpers)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(uint64_t(99)), "99");
}

TEST(TextTable, CountsRowsAndCols)
{
    TextTable t({"x", "y", "z"});
    EXPECT_EQ(t.numCols(), 3u);
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.numRows(), 1u);
}
