/**
 * @file
 * Cycle-accounting (CPI stack) tests: the conservation law (buckets
 * sum exactly to the run's cycle count) on both simulators across
 * the wakeup-sweep configurations, the REF commit identity, the
 * cpi-conservation checker firing on corrupt stacks, the whole
 * observability layer staying observe-only at maximum verbosity,
 * and the cpistack figure being independent of the worker thread
 * count.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "check/check.hh"
#include "check/checkers.hh"
#include "common/pipetrace.hh"
#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "harness/figure.hh"
#include "ref/refsim.hh"

using namespace oova;

namespace
{

constexpr double kScale = 0.25;

uint64_t
bucketSum(const SimResult &r)
{
    return std::accumulate(r.cpiCycles.begin(), r.cpiCycles.end(),
                           uint64_t{0});
}

/** The same config sweep the determinism suite covers. */
std::vector<OooConfig>
sweepConfigs()
{
    return {
        makeOooConfig(16),
        makeOooConfig(64),
        makeOooConfig(16, 16, 50, CommitMode::Late),
        makeOooConfig(32, 16, 50, CommitMode::Late,
                      LoadElimMode::SleVle),
        makeOooConfig(32, 16, 50, CommitMode::Early,
                      LoadElimMode::Sle),
    };
}

} // namespace

TEST(CpiStack, OooBucketsSumToCycles)
{
    Workloads w(kScale);
    for (auto cfg : sweepConfigs()) {
        cfg.cpiStack = true;
        for (const char *prog : {"hydro2d", "nasa7"}) {
            SimResult r = simulateOoo(w.get(prog), cfg);
            EXPECT_EQ(bucketSum(r), r.cycles)
                << prog << " on " << r.machine;
        }
    }
}

TEST(CpiStack, RefBucketsSumToCyclesAndCommitCountsIssues)
{
    Workloads w(kScale);
    RefConfig cfg = makeRefConfig(50);
    cfg.cpiStack = true;
    for (const char *prog : {"hydro2d", "nasa7", "bdna"}) {
        SimResult r = simulateRef(w.get(prog), cfg);
        EXPECT_EQ(bucketSum(r), r.cycles) << prog;
        // REF issues exactly one instruction per commit cycle.
        EXPECT_EQ(
            r.cpiCycles[static_cast<unsigned>(CpiBucket::Commit)],
            r.instructions)
            << prog;
    }
}

TEST(CpiStack, DisabledLeavesBucketsZero)
{
    Workloads w(kScale);
    SimResult ooo = simulateOoo(w.get("hydro2d"), makeOooConfig());
    SimResult ref = simulateRef(w.get("hydro2d"), makeRefConfig(50));
    EXPECT_EQ(bucketSum(ooo), 0u);
    EXPECT_EQ(bucketSum(ref), 0u);
}

TEST(CpiStack, CheckerFlagsCorruptStack)
{
    auto violations = [](Cycle cycles, uint64_t first_bucket) {
        std::array<uint64_t, kNumCpiBuckets> buckets{};
        buckets[0] = first_bucket;
        buckets[1] = 40;
        check::Registry reg;
        reg.add("cpi-conservation", check::kSiteEnd,
                [&](check::Reporter &r) {
                    check::checkCpiConservation(cycles, buckets, r);
                });
        reg.runSite(check::kSiteEnd, cycles);
        return reg.violationCount();
    };
    EXPECT_EQ(violations(100, 60), 0u); // 60 + 40 == 100
    EXPECT_EQ(violations(101, 60), 1u); // unattributed cycle
    EXPECT_EQ(violations(99, 60), 1u);  // overcharged cycle
}

TEST(CpiStack, ObservabilityIsObserveOnly)
{
    // Everything on at once — CPI stack, full audit, live pipeline
    // tracer — must not move a single result field.
    check::resetProcessViolations();
    Workloads w(kScale);
    for (auto cfg : sweepConfigs()) {
        for (const char *prog : {"hydro2d", "nasa7"}) {
            const Trace &t = w.get(prog);
            cfg.cpiStack = false;
            cfg.checkLevel = 0;
            cfg.pipeTracer = nullptr;
            SimResult off = simulateOoo(t, cfg);

            PipeTracer tracer;
            cfg.cpiStack = true;
            cfg.checkLevel = 2;
            cfg.pipeTracer = &tracer;
            SimResult on = simulateOoo(t, cfg);
            cfg.pipeTracer = nullptr;

            EXPECT_EQ(off.cycles, on.cycles) << prog;
            EXPECT_EQ(off.instructions, on.instructions) << prog;
            EXPECT_EQ(off.stallCycles, on.stallCycles) << prog;
            EXPECT_EQ(off.stateCycles, on.stateCycles) << prog;
            EXPECT_EQ(off.traps, on.traps) << prog;
            EXPECT_EQ(off.memRequests, on.memRequests) << prog;
            EXPECT_EQ(bucketSum(off), 0u) << prog;
            EXPECT_EQ(bucketSum(on), on.cycles) << prog;
        }
    }
    EXPECT_EQ(check::processViolationCount(), 0u);
    check::resetProcessViolations();
}

TEST(CpiStack, FigureIndependentOfThreadCount)
{
    const FigureDef *fig = findFigure("cpistack");
    ASSERT_NE(fig, nullptr);

    TraceCache traces(kScale);
    SweepEngine serial(traces, 1);
    SweepEngine parallel(traces, 8);
    std::string one =
        renderFigureText(*fig, fig->fn(serial), traces.scale());
    std::string many =
        renderFigureText(*fig, fig->fn(parallel), traces.scale());
    EXPECT_EQ(one, many);
}
