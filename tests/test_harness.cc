/**
 * @file
 * Tests for the experiment harness: the parallel sweep engine
 * (determinism across thread counts, submission-order results), the
 * shared trace cache (single generation and stable references under
 * concurrency), OOVA_SCALE parsing, and the speedup() degenerate
 * case.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "harness/backend.hh"
#include "harness/experiment.hh"
#include "harness/figure.hh"
#include "harness/sweep.hh"
#include "harness/tracecache.hh"

using namespace oova;

namespace
{

constexpr double kTestScale = 0.1;

/** A small but varied batch covering both simulators and IDEAL. */
std::vector<SweepJob>
testBatch(const TraceCache &traces)
{
    std::vector<SweepJob> jobs;
    for (const auto &name : traces.names()) {
        jobs.push_back(refJob(name, makeRefConfig(50)));
        jobs.push_back(oooJob(name, makeOooConfig(16, 16, 50)));
        jobs.push_back(oooJob(name, makeOooConfig(32, 16, 50,
                                                  CommitMode::Late,
                                                  LoadElimMode::SleVle)));
        jobs.push_back(idealJob(name));
    }
    return jobs;
}

} // namespace

TEST(SweepEngine, InlineTraceJobsBypassTheCache)
{
    // Synthetic traces (e.g. the memstride figure's strided kernels)
    // ride through the engine via SweepJob::inlineTrace instead of a
    // TraceCache name lookup.
    Trace t("inline-synthetic");
    for (int i = 0; i < 4; ++i)
        t.push(makeVLoad(vReg(static_cast<uint8_t>(i % 8)), aReg(0),
                         0x1000 + static_cast<Addr>(i) * 0x4000, 8,
                         64));
    auto shared = std::make_shared<const Trace>(std::move(t));

    TraceCache traces(kTestScale);
    SweepEngine engine(traces, 2);
    std::vector<SweepJob> jobs = {
        oooTraceJob(shared, makeOooConfig(16, 16, 50)),
        oooTraceJob(shared, makeBankedOooConfig(1, 50)),
    };
    std::vector<SimResult> res = engine.run(jobs);
    ASSERT_EQ(res.size(), 2u);
    EXPECT_EQ(res[0].program, "inline-synthetic");
    EXPECT_GT(res[0].cycles, 0u);
    // One bank at a 4-cycle busy time must be slower than the flat
    // bus on back-to-back unit-stride loads.
    EXPECT_GT(res[1].cycles, res[0].cycles);
}

TEST(SweepEngine, SameResultsAtOneAndEightThreads)
{
    TraceCache traces(kTestScale);
    std::vector<SweepJob> jobs = testBatch(traces);

    SweepEngine serial(traces, 1);
    SweepEngine parallel(traces, 8);
    std::vector<SimResult> a = serial.run(jobs);
    std::vector<SimResult> b = parallel.run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].program, b[i].program) << "job " << i;
        EXPECT_EQ(a[i].machine, b[i].machine) << "job " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "job " << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions) << "job " << i;
        EXPECT_EQ(a[i].memRequests, b[i].memRequests) << "job " << i;
        EXPECT_EQ(a[i].stateCycles, b[i].stateCycles) << "job " << i;
    }
}

TEST(SweepEngine, ResultsAlignWithSubmissionOrder)
{
    TraceCache traces(kTestScale);
    std::vector<SweepJob> jobs = testBatch(traces);
    SweepEngine engine(traces, 4);
    std::vector<SimResult> res = engine.run(jobs);

    ASSERT_EQ(res.size(), jobs.size());
    for (size_t i = 0; i < res.size(); ++i) {
        // Every simulator stamps the trace name; slot i must hold
        // the result of job i's trace no matter which worker ran it.
        EXPECT_EQ(res[i].program, jobs[i].trace) << "job " << i;
        EXPECT_GT(res[i].cycles, 0u) << "job " << i;
    }
    // The batch interleaves machines in a fixed pattern.
    EXPECT_EQ(res[0].machine, "REF");
    EXPECT_EQ(res[3].machine, "IDEAL");
}

TEST(SweepEngine, ZeroThreadsMeansHardwareConcurrency)
{
    TraceCache traces(kTestScale);
    SweepEngine engine(traces, 0);
    EXPECT_GE(engine.threads(), 1u);
}

TEST(SweepEngine, ProgressFiresPerJobThroughForkedBackend)
{
    // --progress must keep working when results stream back from
    // forked worker processes: one callback per completed job, with
    // a monotone done count reaching the batch size.
    TraceCache traces(kTestScale);
    std::vector<SweepJob> jobs = testBatch(traces);
    SweepEngine engine(traces,
                       std::make_unique<ForkedBackend>(traces, 2));

    std::atomic<size_t> calls{0};
    std::atomic<size_t> maxDone{0};
    std::atomic<size_t> badTotal{0};
    engine.setProgress([&](size_t done, size_t total) {
        ++calls;
        size_t prev = maxDone.load();
        while (prev < done && !maxDone.compare_exchange_weak(prev, done)) {
        }
        if (total != jobs.size())
            ++badTotal;
    });

    std::vector<SimResult> res = engine.run(jobs);
    ASSERT_EQ(res.size(), jobs.size());
    EXPECT_EQ(calls.load(), jobs.size());
    EXPECT_EQ(maxDone.load(), jobs.size());
    EXPECT_EQ(badTotal.load(), 0u);
}

TEST(JobSet, IndicesReadBackAfterRun)
{
    TraceCache traces(kTestScale);
    SweepEngine engine(traces, 2);
    JobSet js;
    size_t a = js.addRef("hydro2d", makeRefConfig(50));
    size_t b = js.addOoo("trfd", makeOooConfig(16, 16, 50));
    size_t c = js.addIdeal("swm256");
    js.run(engine);
    EXPECT_EQ(js[a].program, "hydro2d");
    EXPECT_EQ(js[a].machine, "REF");
    EXPECT_EQ(js[b].program, "trfd");
    EXPECT_EQ(js[c].program, "swm256");
    EXPECT_EQ(js[c].machine, "IDEAL");
}

TEST(TraceCache, GeneratesEachTraceOnceUnderConcurrency)
{
    std::atomic<unsigned> generations{0};
    TraceCache cache(kTestScale,
                     [&](const std::string &name,
                         const GenOptions &opts) {
                         generations.fetch_add(1);
                         return makeBenchmarkTrace(name, opts);
                     });

    const std::vector<std::string> wanted = {"hydro2d", "trfd"};
    constexpr unsigned kThreads = 8;
    std::vector<const Trace *> seen(kThreads * wanted.size());
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            for (size_t n = 0; n < wanted.size(); ++n)
                seen[t * wanted.size() + n] = &cache.get(wanted[n]);
        });
    for (auto &t : pool)
        t.join();

    // One generation per distinct trace, not per caller...
    EXPECT_EQ(generations.load(), wanted.size());
    // ...and every caller got the same stable object.
    for (unsigned t = 0; t < kThreads; ++t)
        for (size_t n = 0; n < wanted.size(); ++n)
            EXPECT_EQ(seen[t * wanted.size() + n],
                      seen[n]);
}

TEST(TraceCache, ReferencesStableAcrossLookups)
{
    TraceCache cache(kTestScale);
    const Trace *first = &cache.get("hydro2d");
    // Filling the rest of the cache must not move earlier entries.
    for (const auto &name : cache.names())
        cache.get(name);
    EXPECT_EQ(&cache.get("hydro2d"), first);
    EXPECT_EQ(cache.get("hydro2d").name(), "hydro2d");
}

TEST(TraceCache, WorkloadsWrapperSharesSemantics)
{
    Workloads w(kTestScale);
    const Trace *first = &w.get("trfd");
    for (const auto &name : w.names())
        w.get(name);
    EXPECT_EQ(&w.get("trfd"), first);
    EXPECT_EQ(w.scale(), kTestScale);
}

class EnvScaleTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        unsetenv("OOVA_SCALE");
    }

    double
    withEnv(const char *value)
    {
        setenv("OOVA_SCALE", value, 1);
        return envTraceScale();
    }
};

TEST_F(EnvScaleTest, UnsetDefaultsToOne)
{
    unsetenv("OOVA_SCALE");
    EXPECT_EQ(envTraceScale(), 1.0);
}

TEST_F(EnvScaleTest, AcceptsPositiveNumbers)
{
    EXPECT_EQ(withEnv("0.5"), 0.5);
    EXPECT_EQ(withEnv("2"), 2.0);
    EXPECT_EQ(withEnv("1e-1"), 0.1);
}

TEST_F(EnvScaleTest, RejectsTrailingGarbage)
{
    // atof would silently have parsed these as 0.5 / 1.0.
    EXPECT_EQ(withEnv("0.5x"), 1.0);
    EXPECT_EQ(withEnv("1.0 extra"), 1.0);
}

TEST_F(EnvScaleTest, RejectsNonNumbersAndNonPositive)
{
    EXPECT_EQ(withEnv(""), 1.0);
    EXPECT_EQ(withEnv("abc"), 1.0);
    EXPECT_EQ(withEnv("-1"), 1.0);
    EXPECT_EQ(withEnv("0"), 1.0);
    EXPECT_EQ(withEnv("nan"), 1.0);
    EXPECT_EQ(withEnv("inf"), 1.0);
}

TEST(Speedup, ZeroCyclesIsNaNNotZero)
{
    SimResult base, broken;
    base.cycles = 100;
    broken.cycles = 0;
    EXPECT_TRUE(std::isnan(speedup(base, broken)));
    broken.cycles = 50;
    EXPECT_EQ(speedup(base, broken), 2.0);
}

TEST(FigureRegistry, AllFiguresRegisteredAndFindable)
{
    const auto &registry = figureRegistry();
    EXPECT_EQ(registry.size(), 23u);
    EXPECT_EQ(findFigure("cpistack"), findFigure("cpi_stack"));
    EXPECT_EQ(findFigure("occupancy"), findFigure("occupancy_hist"));
    EXPECT_NE(findFigure("occupancy"), nullptr);
    EXPECT_NE(findFigure("cpistack"), nullptr);
    EXPECT_NE(findFigure("fig5"), nullptr);
    EXPECT_NE(findFigure("fig5_speedup"), nullptr);
    EXPECT_EQ(findFigure("fig5"), findFigure("fig5_speedup"));
    EXPECT_NE(findFigure("membank"), nullptr);
    EXPECT_NE(findFigure("mem_stride"), nullptr);
    EXPECT_EQ(findFigure("memlat"), findFigure("mem_latbanks"));
    EXPECT_EQ(findFigure("memunits"), findFigure("mem_units"));
    EXPECT_EQ(findFigure("memgather"), findFigure("mem_gather"));
    EXPECT_EQ(findFigure("memtlb"), findFigure("mem_tlb"));
    EXPECT_NE(findFigure("memtlb"), nullptr);
    EXPECT_EQ(findFigure("nope"), nullptr);
}

namespace
{

/** Drive parseCommonFlag over a whole argv the way the drivers do. */
int
parseAll(std::vector<const char *> args, FigureOptions &opts)
{
    args.insert(args.begin(), "prog");
    int argc = static_cast<int>(args.size());
    char **argv = const_cast<char **>(args.data());
    for (int i = 1; i < argc; ++i) {
        int r = parseCommonFlag(argc, argv, i, opts);
        if (r != 1)
            return r;
    }
    return 1;
}

} // namespace

TEST(FigureFlags, AcceptsWellFormedValues)
{
    FigureOptions opts;
    EXPECT_EQ(parseAll({"--threads", "8", "--json", "--scale", "0.5"},
                       opts),
              1);
    EXPECT_EQ(opts.threads, 8u);
    EXPECT_TRUE(opts.json);
    EXPECT_EQ(opts.scale, 0.5);
}

TEST(FigureFlags, RejectsMalformedThreads)
{
    // "-3" wraps to a huge unsigned through strtoul; "4x" has
    // trailing garbage; a missing value must not read past argv.
    FigureOptions opts;
    EXPECT_EQ(parseAll({"--threads", "-3"}, opts), -1);
    EXPECT_EQ(parseAll({"--threads", "4x"}, opts), -1);
    EXPECT_EQ(parseAll({"--threads", ""}, opts), -1);
    EXPECT_EQ(parseAll({"--threads", "999999999999"}, opts), -1);
    EXPECT_EQ(parseAll({"--threads"}, opts), -1);
    EXPECT_EQ(parseAll({"--threads", "0"}, opts), 1)
        << "0 legitimately means hardware concurrency";
}

TEST(FigureFlags, RejectsMalformedScale)
{
    // Mirrors the full-string envTraceScale() validation: the value
    // must parse in its entirety as a positive finite number, so a
    // typo can never silently run a sweep at the wrong scale.
    FigureOptions opts;
    EXPECT_EQ(parseAll({"--scale", "-2"}, opts), -1);
    EXPECT_EQ(parseAll({"--scale", "0"}, opts), -1);
    EXPECT_EQ(parseAll({"--scale", "abc"}, opts), -1);
    EXPECT_EQ(parseAll({"--scale", "nan"}, opts), -1);
    EXPECT_EQ(parseAll({"--scale", "inf"}, opts), -1);
    EXPECT_EQ(parseAll({"--scale", "1e999"}, opts), -1)
        << "overflow to infinity is rejected, not accepted";
    EXPECT_EQ(parseAll({"--scale", "0.5x"}, opts), -1)
        << "trailing garbage is rejected, not truncated";
    EXPECT_EQ(parseAll({"--scale", ""}, opts), -1);
    EXPECT_EQ(parseAll({"--scale"}, opts), -1);
    // And the smallest legal values still work.
    EXPECT_EQ(parseAll({"--scale", "1e-3"}, opts), 1);
    EXPECT_EQ(opts.scale, 1e-3);
}

TEST(FigureFlags, UnknownFlagIsNotConsumed)
{
    FigureOptions opts;
    EXPECT_EQ(parseAll({"--frobnicate"}, opts), 0);
}

TEST(FigureFlags, ParsesSweepFarmFlags)
{
    FigureOptions opts;
    EXPECT_EQ(parseAll({"--workers", "4", "--store", "/tmp/st",
                        "--store-stats"},
                       opts),
              1);
    EXPECT_TRUE(opts.workersSet);
    EXPECT_EQ(opts.workers, 4u);
    EXPECT_EQ(opts.storeDir, "/tmp/st");
    EXPECT_TRUE(opts.storeStats);
    EXPECT_FALSE(opts.threadsSet);

    // --workers shares the --threads validation wholesale.
    EXPECT_EQ(parseAll({"--workers", "-3"}, opts), -1);
    EXPECT_EQ(parseAll({"--workers", "4x"}, opts), -1);
    EXPECT_EQ(parseAll({"--workers"}, opts), -1);
    EXPECT_EQ(parseAll({"--store"}, opts), -1);
    EXPECT_EQ(parseAll({"--store", ""}, opts), -1);
}

TEST(FigureFlags, ParsesTelemetryFlags)
{
    FigureOptions opts;
    EXPECT_EQ(parseAll({"--store", "/tmp/st", "--store-max-mb", "64",
                        "--stats", "out.txt",
                        "--perfetto=trace.json"},
                       opts),
              1);
    EXPECT_EQ(opts.storeMaxMb, 64u);
    EXPECT_EQ(opts.statsPath, "out.txt");
    EXPECT_EQ(opts.perfettoPath, "trace.json");
    EXPECT_TRUE(validateFigureOptions(opts));

    // A cap of zero MiB would mean "evict everything": rejected, as
    // are the usual malformed spellings.
    EXPECT_EQ(parseAll({"--store-max-mb", "0"}, opts), -1);
    EXPECT_EQ(parseAll({"--store-max-mb", "4x"}, opts), -1);
    EXPECT_EQ(parseAll({"--store-max-mb"}, opts), -1);
    EXPECT_EQ(parseAll({"--stats", ""}, opts), -1);
    EXPECT_EQ(parseAll({"--stats"}, opts), -1);
    EXPECT_EQ(parseAll({"--perfetto="}, opts), -1);

    // Capping a store that was never configured is a cross-flag
    // error, like --store-stats without --store.
    FigureOptions capOnly;
    ASSERT_EQ(parseAll({"--store-max-mb", "8"}, capOnly), 1);
    EXPECT_FALSE(validateFigureOptions(capOnly));
}

TEST(FigureFlags, AcceptsEqualsSpellings)
{
    FigureOptions opts;
    EXPECT_EQ(parseAll({"--threads=8", "--workers=2", "--scale=0.5",
                        "--store=/tmp/st2"},
                       opts),
              1);
    EXPECT_EQ(opts.threads, 8u);
    EXPECT_EQ(opts.workers, 2u);
    EXPECT_EQ(opts.scale, 0.5);
    EXPECT_EQ(opts.storeDir, "/tmp/st2");
    EXPECT_EQ(parseAll({"--threads="}, opts), -1);
    EXPECT_EQ(parseAll({"--store="}, opts), -1);
}

TEST(FigureFlags, ValidateRejectsAmbiguousCombinations)
{
    // --threads and --workers pick competing backends; there is no
    // sensible precedence, so the combination is an explicit error.
    FigureOptions opts;
    ASSERT_EQ(parseAll({"--threads", "2", "--workers", "2"}, opts),
              1);
    EXPECT_FALSE(validateFigureOptions(opts));

    FigureOptions threadsOnly;
    ASSERT_EQ(parseAll({"--threads", "2"}, threadsOnly), 1);
    EXPECT_TRUE(validateFigureOptions(threadsOnly));

    FigureOptions workersOnly;
    ASSERT_EQ(parseAll({"--workers", "2"}, workersOnly), 1);
    EXPECT_TRUE(validateFigureOptions(workersOnly));

    // --store-stats without a store has nothing to report on.
    FigureOptions statsOnly;
    ASSERT_EQ(parseAll({"--store-stats"}, statsOnly), 1);
    EXPECT_FALSE(validateFigureOptions(statsOnly));

    FigureOptions storeAndStats;
    ASSERT_EQ(parseAll({"--store", "/tmp/st", "--store-stats"},
                       storeAndStats),
              1);
    EXPECT_TRUE(validateFigureOptions(storeAndStats));
}

TEST(FigureFlags, ParsesSupervisionFlags)
{
    FigureOptions opts;
    EXPECT_EQ(parseAll({"--workers", "4", "--job-timeout-ms", "5000",
                        "--max-retries", "3"},
                       opts),
              1);
    EXPECT_TRUE(opts.jobTimeoutSet);
    EXPECT_EQ(opts.jobTimeoutMs, 5000u);
    EXPECT_TRUE(opts.maxRetriesSet);
    EXPECT_EQ(opts.maxRetries, 3u);
    EXPECT_TRUE(validateFigureOptions(opts));

    // The --flag=value spellings work like everywhere else.
    FigureOptions eq;
    EXPECT_EQ(parseAll({"--workers=2", "--job-timeout-ms=250",
                        "--max-retries=1"},
                       eq),
              1);
    EXPECT_EQ(eq.jobTimeoutMs, 250u);
    EXPECT_EQ(eq.maxRetries, 1u);

    // A zero timeout (watchdog that fires never/always?) and zero
    // retries ("fail on the first hiccup" is spelled by not using a
    // farm) are ambiguous: rejected like the other zero values, as
    // are the usual malformed spellings.
    EXPECT_EQ(parseAll({"--job-timeout-ms", "0"}, opts), -1);
    EXPECT_EQ(parseAll({"--job-timeout-ms", "-5"}, opts), -1);
    EXPECT_EQ(parseAll({"--job-timeout-ms", "50x"}, opts), -1);
    EXPECT_EQ(parseAll({"--job-timeout-ms"}, opts), -1);
    EXPECT_EQ(parseAll({"--max-retries", "0"}, opts), -1);
    EXPECT_EQ(parseAll({"--max-retries", "-1"}, opts), -1);
    EXPECT_EQ(parseAll({"--max-retries", "2x"}, opts), -1);
    EXPECT_EQ(parseAll({"--max-retries"}, opts), -1);
}

TEST(FigureFlags, SupervisionAndFsyncNeedTheirSubsystem)
{
    // Supervision tunes the forked supervisor: without --workers
    // there is nothing to supervise, so the flags are an error, not
    // silently inert.
    FigureOptions timeoutOnly;
    ASSERT_EQ(parseAll({"--job-timeout-ms", "100"}, timeoutOnly), 1);
    EXPECT_FALSE(validateFigureOptions(timeoutOnly));

    FigureOptions retriesOnly;
    ASSERT_EQ(parseAll({"--max-retries", "1"}, retriesOnly), 1);
    EXPECT_FALSE(validateFigureOptions(retriesOnly));

    FigureOptions withThreads;
    ASSERT_EQ(parseAll({"--threads", "2", "--job-timeout-ms", "100"},
                       withThreads),
              1);
    EXPECT_FALSE(validateFigureOptions(withThreads));

    // --store-fsync without --store has nothing to sync.
    FigureOptions fsyncOnly;
    ASSERT_EQ(parseAll({"--store-fsync"}, fsyncOnly), 1);
    EXPECT_FALSE(validateFigureOptions(fsyncOnly));

    FigureOptions fsyncStore;
    ASSERT_EQ(parseAll({"--store", "/tmp/st", "--store-fsync"},
                       fsyncStore),
              1);
    EXPECT_TRUE(fsyncStore.storeFsync);
    EXPECT_TRUE(validateFigureOptions(fsyncStore));
}

TEST(FigureMain, UnknownFigureAndBadFlagsExitNonZero)
{
    // runFigureMain is the entry point of every per-figure binary
    // (and the oova_bench driver shares its flag parser): a typoed
    // figure id or malformed flag must fail loudly for CI.
    const char *bad_fig[] = {"prog"};
    EXPECT_EQ(runFigureMain("nosuchfigure", 1,
                            const_cast<char **>(bad_fig)),
              2);
    const char *bad_threads[] = {"prog", "--threads", "-3"};
    EXPECT_EQ(runFigureMain("fig4", 3,
                            const_cast<char **>(bad_threads)),
              2);
    const char *bad_scale[] = {"prog", "--scale", "0"};
    EXPECT_EQ(runFigureMain("fig4", 3,
                            const_cast<char **>(bad_scale)),
              2);
    const char *ambiguous[] = {"prog", "--threads", "2", "--workers",
                               "2"};
    EXPECT_EQ(runFigureMain("fig4", 5,
                            const_cast<char **>(ambiguous)),
              2);
}

TEST(FigureRegistry, FigureOutputIdenticalAcrossThreadCounts)
{
    const FigureDef *fig = findFigure("fig6");
    ASSERT_NE(fig, nullptr);
    TraceCache traces(kTestScale);
    SweepEngine serial(traces, 1);
    SweepEngine parallel(traces, 8);
    std::string a =
        renderFigureText(*fig, fig->fn(serial), traces.scale());
    std::string b =
        renderFigureText(*fig, fig->fn(parallel), traces.scale());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("== Figure 6"), std::string::npos);
}

TEST(SimResultJsonTest, SurfacesEveryCounter)
{
    SimResult res;
    res.program = "swm\"256";
    res.machine = "OOOVA-16";
    res.cycles = 1234;
    res.instructions = 617;
    res.memBusyCycles = 600;
    res.memRequests = 17;
    res.tlbMisses = 4;
    res.tlbIndexedMisses = 3;
    res.vectorLoadsEliminated = 5;
    res.stallCycles[static_cast<unsigned>(StallCause::Ports)] = 9;
    res.stateCycles[0] = 11;

    std::string js = res.toJson();
    // Structure: one object, quoted string values escaped.
    EXPECT_EQ(js.front(), '{');
    EXPECT_EQ(js.substr(js.size() - 2), "}\n");
    EXPECT_NE(js.find("\"program\": \"swm\\\"256\""),
              std::string::npos);
    EXPECT_NE(js.find("\"machine\": \"OOOVA-16\""),
              std::string::npos);
    // Plain counters, including ones left at zero.
    EXPECT_NE(js.find("\"cycles\": 1234"), std::string::npos);
    EXPECT_NE(js.find("\"instructions\": 617"), std::string::npos);
    EXPECT_NE(js.find("\"memRequests\": 17"), std::string::npos);
    EXPECT_NE(js.find("\"tlbIndexedMisses\": 3"), std::string::npos);
    EXPECT_NE(js.find("\"vectorLoadsEliminated\": 5"),
              std::string::npos);
    EXPECT_NE(js.find("\"traps\": 0"), std::string::npos);
    // Keyed breakdowns use their human-readable names.
    EXPECT_NE(js.find("\"stallCycles\""), std::string::npos);
    EXPECT_NE(js.find("\"ports\": 9"), std::string::npos);
    EXPECT_NE(js.find("\"stateCycles\""), std::string::npos);
    // Derived accessors are precomputed for consumers.
    EXPECT_NE(js.find("\"ipc\": 0.5"), std::string::npos);
    EXPECT_NE(js.find("\"portIdleFraction\""), std::string::npos);
    EXPECT_NE(js.find("\"memStridedConflicts\": 0"),
              std::string::npos);
    EXPECT_NE(js.find("\"stridedTlbMisses\": 1"), std::string::npos);
}
