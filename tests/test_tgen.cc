/**
 * @file
 * Tests for the workload generator: kernel IR, VL patterns, the code
 * generator's structural invariants (spill pairing, stream address
 * progression, loop control), and the ten benchmark models.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tgen/benchmarks.hh"
#include "tgen/program.hh"
#include "trace/trace_stats.hh"

using namespace oova;

TEST(Kernel, BuilderCountsValues)
{
    Kernel k("k");
    VVid a = k.vload(0);
    VVid b = k.vload(1);
    VVid c = k.vadd(a, b);
    k.vstore(2, c);
    SVid s = k.vreduce(c);
    (void)s;
    EXPECT_EQ(k.numVVals(), 3);
    EXPECT_EQ(k.numSVals(), 1);
    EXPECT_EQ(k.ops().size(), 5u);
}

TEST(Kernel, PressureOfChain)
{
    // A pure chain has pressure 2 (operand + result).
    Kernel k("chain");
    VVid v = k.vload(0);
    for (int i = 0; i < 10; ++i)
        v = k.vadd(v, v);
    EXPECT_LE(k.maxVectorPressure(), 2);
}

TEST(Kernel, PressureOfWideBlock)
{
    Kernel k("wide");
    VVid vals[12];
    for (auto &val : vals)
        val = k.vload(0);
    VVid acc = k.vadd(vals[0], vals[1]);
    for (int i = 2; i < 12; ++i)
        acc = k.vadd(acc, vals[i]);
    EXPECT_GE(k.maxVectorPressure(), 12);
}

TEST(VlPatterns, Constant)
{
    VlFn f = vlConstant(77);
    EXPECT_EQ(f(0), 77);
    EXPECT_EQ(f(1000), 77);
}

TEST(VlPatterns, Stripmine)
{
    EXPECT_EQ(stripTrips(128), 1u);
    EXPECT_EQ(stripTrips(129), 2u);
    EXPECT_EQ(stripTrips(300), 3u);
    VlFn f = vlStripmine(300);
    EXPECT_EQ(f(0), 128);
    EXPECT_EQ(f(1), 128);
    EXPECT_EQ(f(2), 44);
}

TEST(VlPatterns, StripmineExactMultiple)
{
    VlFn f = vlStripmine(256);
    EXPECT_EQ(f(0), 128);
    EXPECT_EQ(f(1), 128);
}

TEST(VlPatterns, Triangular)
{
    VlFn f = vlTriangular(120, 8, 8);
    EXPECT_EQ(f(0), 120);
    EXPECT_EQ(f(1), 112);
    EXPECT_EQ(f(14), 8);
    EXPECT_EQ(f(15), 120); // cycles
}

TEST(Program, ArrayLayoutIsDisjoint)
{
    Program p("layout");
    int a = p.array(1000);
    int b = p.array(5000);
    int c = p.array(1);
    EXPECT_GE(p.arrayBase(b), p.arrayBase(a) + 1000);
    EXPECT_GE(p.arrayBase(c), p.arrayBase(b) + 5000);
    EXPECT_EQ(p.arrayBase(a) % 0x1000, 0u);
}

TEST(Program, ScalarSlotsDistinct)
{
    Program p("slots");
    int s0 = p.scalarSlot();
    int s1 = p.scalarSlot();
    EXPECT_NE(p.scalarSlotAddr(s0), p.scalarSlotAddr(s1));
}

namespace
{

Trace
tinyLoopTrace(uint64_t trips, uint16_t vl)
{
    auto p = std::make_unique<Program>("tiny");
    int a = p->array(64 * 1024), b = p->array(64 * 1024);
    Kernel *k = p->newKernel("body");
    VVid x = k->vload(a);
    VVid y = k->vadd(x, x);
    k->vstore(b, y);
    p->addLoop(k, trips, vlConstant(vl));
    return p->generate();
}

} // namespace

TEST(CodeGen, LoopStructure)
{
    Trace t = tinyLoopTrace(5, 32);
    // Exactly one taken branch per non-final iteration, one
    // not-taken at the end, one call, one ret.
    unsigned taken = 0, not_taken = 0, calls = 0, rets = 0;
    for (const auto &inst : t) {
        if (inst.op == Opcode::Branch)
            ++(inst.taken ? taken : not_taken);
        if (inst.op == Opcode::Call)
            ++calls;
        if (inst.op == Opcode::Ret)
            ++rets;
    }
    EXPECT_EQ(taken, 4u);
    EXPECT_EQ(not_taken, 1u);
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(rets, 1u);
}

TEST(CodeGen, BranchPcStable)
{
    Trace t = tinyLoopTrace(6, 16);
    std::set<Addr> branch_pcs;
    for (const auto &inst : t)
        if (inst.op == Opcode::Branch)
            branch_pcs.insert(inst.pc);
    EXPECT_EQ(branch_pcs.size(), 1u); // the BTB can learn it
}

TEST(CodeGen, StreamAddressesAdvance)
{
    Trace t = tinyLoopTrace(4, 32);
    std::vector<Addr> load_addrs;
    for (const auto &inst : t)
        if (inst.op == Opcode::VLoad && !inst.isSpill)
            load_addrs.push_back(inst.addr);
    ASSERT_EQ(load_addrs.size(), 4u);
    for (size_t i = 1; i < load_addrs.size(); ++i)
        EXPECT_EQ(load_addrs[i], load_addrs[i - 1] + 32 * 8);
}

TEST(CodeGen, SetVlEmittedOncePerConstantLoop)
{
    Trace t = tinyLoopTrace(5, 32);
    unsigned setvls = 0;
    for (const auto &inst : t)
        if (inst.op == Opcode::SetVL)
            ++setvls;
    EXPECT_EQ(setvls, 1u);
}

TEST(CodeGen, SetVlTracksTriangularVl)
{
    auto p = std::make_unique<Program>("tri");
    int a = p->array(64 * 1024);
    Kernel *k = p->newKernel("body");
    VVid x = k->vload(a);
    k->vstore(a, x, 1);
    p->addLoop(k, 6, vlTriangular(96, 32, 32));
    Trace t = p->generate();
    unsigned setvls = 0;
    for (const auto &inst : t)
        if (inst.op == Opcode::SetVL)
            ++setvls;
    EXPECT_EQ(setvls, 6u); // changes every iteration
}

TEST(CodeGen, ScaleMultipliesTrips)
{
    GenOptions half;
    half.scale = 0.5;
    auto p1 = makeBenchmarkProgram("swm256");
    Trace full = p1->generate();
    auto p2 = makeBenchmarkProgram("swm256");
    Trace halved = p2->generate(half);
    EXPECT_LT(halved.size(), full.size());
    EXPECT_GT(halved.size(), full.size() / 4);
}

TEST(CodeGen, SpillStoresPrecedeReloads)
{
    // Build a kernel with pressure >> 8 and check every spill
    // reload reads an address some spill store wrote earlier in the
    // same iteration.
    auto p = std::make_unique<Program>("spilly");
    int a = p->array(256 * 1024), out = p->array(256 * 1024);
    Kernel *k = p->newKernel("wide");
    VVid vals[14];
    for (auto &v : vals)
        v = k->vload(a);
    VVid acc = k->vadd(vals[0], vals[1]);
    for (int i = 2; i < 14; ++i)
        acc = k->vadd(acc, vals[i]);
    k->vstore(out, acc);
    p->addLoop(k, 3, vlConstant(64));
    Trace t = p->generate();

    std::set<Addr> stored;
    unsigned reloads = 0;
    for (const auto &inst : t) {
        if (!inst.isSpill || !inst.isVector())
            continue;
        if (inst.isStore()) {
            stored.insert(inst.addr);
        } else {
            ++reloads;
            EXPECT_TRUE(stored.count(inst.addr))
                << "reload from never-written spill slot";
        }
    }
    EXPECT_GT(reloads, 0u);
}

TEST(CodeGen, PointerSpillsWhenStreamsExceedRegs)
{
    // 8 streams > 6 allocatable A registers -> pointer spill code.
    auto p = std::make_unique<Program>("manystreams");
    std::vector<int> arrays;
    for (int i = 0; i < 8; ++i)
        arrays.push_back(p->array(64 * 1024));
    Kernel *k = p->newKernel("body");
    VVid acc = k->vload(arrays[0]);
    for (int i = 1; i < 7; ++i)
        acc = k->vadd(acc, k->vload(arrays[i]));
    k->vstore(arrays[7], acc);
    p->addLoop(k, 4, vlConstant(32));
    Trace t = p->generate();
    TraceStats s = TraceStats::compute(t);
    EXPECT_GT(s.scalarSpillLoads + s.scalarSpillStores, 0u);
}

TEST(CodeGen, NoPointerSpillsWithSixStreams)
{
    auto p = std::make_unique<Program>("sixstreams");
    std::vector<int> arrays;
    for (int i = 0; i < 6; ++i)
        arrays.push_back(p->array(64 * 1024));
    Kernel *k = p->newKernel("body");
    VVid acc = k->vload(arrays[0]);
    for (int i = 1; i < 5; ++i)
        acc = k->vadd(acc, k->vload(arrays[i]));
    k->vstore(arrays[5], acc);
    p->addLoop(k, 4, vlConstant(32));
    Trace t = p->generate();
    TraceStats s = TraceStats::compute(t);
    EXPECT_EQ(s.scalarSpillLoads, 0u);
    EXPECT_EQ(s.scalarSpillStores, 0u);
}

TEST(CodeGen, FixedLoadsKeepAddress)
{
    auto p = std::make_unique<Program>("fixed");
    int a = p->array(64 * 1024), c = p->array(1024);
    Kernel *k = p->newKernel("body");
    VVid x = k->vload(a);
    VVid w = k->vloadFixed(c, 0, 32);
    VVid y = k->vmul(x, w);
    k->vstore(a, y);
    p->addLoop(k, 5, vlConstant(32));
    Trace t = p->generate();
    std::set<Addr> fixed_addrs;
    for (const auto &inst : t)
        if (inst.op == Opcode::VLoad && !inst.isSpill &&
            inst.addr >= p->arrayBase(c) &&
            inst.addr < p->arrayBase(c) + 1024) {
            fixed_addrs.insert(inst.addr);
        }
    EXPECT_EQ(fixed_addrs.size(), 1u);
}

// ---- the ten benchmarks --------------------------------------

class BenchmarkModels : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BenchmarkModels, GeneratesNonTrivialTrace)
{
    GenOptions small;
    small.scale = 0.25;
    Trace t = makeBenchmarkTrace(GetParam(), small);
    EXPECT_GT(t.size(), 500u);
    EXPECT_EQ(t.name(), GetParam());
}

TEST_P(BenchmarkModels, HighlyVectorized)
{
    GenOptions small;
    small.scale = 0.25;
    TraceStats s =
        TraceStats::compute(makeBenchmarkTrace(GetParam(), small));
    // Selection criterion from the paper: >= 70% vectorization.
    EXPECT_GE(s.vectorization(), 70.0) << GetParam();
    EXPECT_GT(s.avgVectorLength(), 8.0);
    EXPECT_LE(s.avgVectorLength(), 128.0);
}

TEST_P(BenchmarkModels, DeterministicGeneration)
{
    GenOptions small;
    small.scale = 0.25;
    Trace a = makeBenchmarkTrace(GetParam(), small);
    Trace b = makeBenchmarkTrace(GetParam(), small);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i += 97) {
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].addr, b[i].addr);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTen, BenchmarkModels,
                         ::testing::ValuesIn(benchmarkNames()));

TEST(Benchmarks, NamesAndRegistry)
{
    EXPECT_EQ(benchmarkNames().size(), 10u);
    EXPECT_TRUE(isBenchmarkName("trfd"));
    EXPECT_FALSE(isBenchmarkName("doom"));
}

TEST(Benchmarks, Swm256HasPaperProfile)
{
    TraceStats s = TraceStats::compute(makeBenchmarkTrace("swm256"));
    EXPECT_GE(s.vectorization(), 99.0); // paper: 99.9%
    EXPECT_NEAR(s.avgVectorLength(), 127.0, 1.0);
}

TEST(Benchmarks, DyfesmHasShortVectors)
{
    TraceStats s = TraceStats::compute(makeBenchmarkTrace("dyfesm"));
    EXPECT_LT(s.avgVectorLength(), 32.0);
}

TEST(Benchmarks, BdnaIsSpillHeavy)
{
    TraceStats s = TraceStats::compute(makeBenchmarkTrace("bdna"));
    EXPECT_GT(s.spillTrafficFraction(), 0.35);
}

TEST(Benchmarks, TomcatvIsScalarHeavy)
{
    TraceStats s = TraceStats::compute(makeBenchmarkTrace("tomcatv"));
    EXPECT_GT(static_cast<double>(s.scalarInsts) /
                  static_cast<double>(s.vectorInsts),
              8.0);
}

TEST(Benchmarks, TrfdHasCrossIterationTemp)
{
    Trace t = makeBenchmarkTrace("trfd");
    // The fixed-address temporary: some address both loaded and
    // stored repeatedly with identical vl.
    std::map<Addr, unsigned> loads, stores;
    for (const auto &inst : t) {
        if (inst.op == Opcode::VLoad && !inst.isSpill)
            ++loads[inst.addr];
        if (inst.op == Opcode::VStore && !inst.isSpill)
            ++stores[inst.addr];
    }
    bool found = false;
    for (const auto &[addr, n] : loads)
        if (n > 10 && stores.count(addr) && stores[addr] > 10)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Benchmarks, Nasa7UsesGatherScatter)
{
    Trace t = makeBenchmarkTrace("nasa7");
    bool gather = false, scatter = false;
    for (const auto &inst : t) {
        gather |= inst.op == Opcode::VGather;
        scatter |= inst.op == Opcode::VScatter;
    }
    EXPECT_TRUE(gather);
    EXPECT_TRUE(scatter);
}
