/**
 * @file
 * Tests for the virtual-memory/TLB subsystem: the set-associative
 * translation arrays (LRU, associativity, optional second level),
 * the page-lookup sequences of strided vs indexed streams, the
 * translation wrapper in front of every memory model, the config
 * labels, and the two refill policies — hardware walks charged in
 * the model, software refills through the OOOVA's precise-trap path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "mem/memsystem.hh"
#include "mem/tlb.hh"
#include "ref/refsim.hh"
#include "tgen/program.hh"

using namespace oova;

namespace
{

TlbConfig
smallTlb(unsigned entries = 4, unsigned page_bytes = 4096,
         unsigned assoc = 4)
{
    TlbConfig cfg;
    cfg.enabled = true;
    cfg.entries = entries;
    cfg.pageBytes = page_bytes;
    cfg.associativity = assoc;
    return cfg;
}

/** Addresses of @p n elements, one per page, pages @p first.. */
std::vector<Addr>
onePerPage(unsigned n, Addr first = 0, unsigned page_bytes = 4096)
{
    std::vector<Addr> a;
    for (unsigned i = 0; i < n; ++i)
        a.push_back((first + i) * page_bytes);
    return a;
}

/** The memgather figure's gather loop, parameterized by pattern. */
Trace
gatherTrace(IndexPattern pat, uint32_t param, double scale = 0.25)
{
    Program prog("gather-test");
    int idx = prog.array(64 * 8);
    int tbl = prog.array(512 * 1024);
    Kernel *k = prog.newKernel("gather");
    VVid iv = k->vloadFixed(idx, 0, 8);
    (void)k->vgather(tbl, iv, pat, param);
    prog.addLoop(k, 48, vlConstant(64));
    GenOptions opts;
    opts.scale = scale;
    return prog.generate(opts);
}

} // namespace

// ------------------------------------------------------------ label

TEST(TlbConfig, LabelGrammar)
{
    TlbConfig off;
    EXPECT_EQ(off.label(), "") << "disabled TLB stays invisible";

    TlbConfig cfg = smallTlb(64, 4096);
    EXPECT_EQ(cfg.label(), "/t64e4k");
    cfg.pageBytes = 64 * 1024;
    EXPECT_EQ(cfg.label(), "/t64e64k");
    cfg.pageBytes = 512;
    EXPECT_EQ(cfg.label(), "/t64e512b");

    cfg = smallTlb(16, 4096, 2);
    EXPECT_EQ(cfg.label(), "/t16e4ka2");
    cfg.l2Entries = 512;
    EXPECT_EQ(cfg.label(), "/t16e4ka2l512");
    cfg.refill = TlbRefill::SoftwareTrap;
    EXPECT_EQ(cfg.label(), "/t16e4ka2l512s");
}

TEST(TlbConfig, LabelComposesWithEveryMemoryModel)
{
    MemConfig flat;
    flat.tlb = smallTlb(64);
    EXPECT_EQ(flat.label(), "/t64e4k");

    MemConfig banked = makeBankedMem(8);
    banked.tlb = smallTlb(64);
    EXPECT_EQ(banked.label(), "/mb8p1/t64e4k");

    MemConfig cached = makeCachedMem();
    cached.tlb = smallTlb(64);
    EXPECT_EQ(cached.label(), "/c32k4w8m/t64e4k");

    OooConfig ooo;
    ooo.mem.tlb = smallTlb(64);
    EXPECT_EQ(ooo.name(), "OOOVA-16/16r/early/t64e4k");
}

// ---------------------------------------------------- page sequences

TEST(Tlb, StridedStreamTranslatesOncePerPageCrossed)
{
    Tlb tlb(smallTlb(64));
    // 64 unit-stride words inside one 4K page: one lookup.
    EXPECT_EQ(tlb.stridedPages(0x1000, 8, 64).size(), 1u);
    // Crossing into a second page: two, in first-touch order.
    std::vector<Addr> two = tlb.stridedPages(0x1F80, 8, 64);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], 1u);
    EXPECT_EQ(two[1], 2u);
    // Page-sized stride: every element crosses.
    EXPECT_EQ(tlb.stridedPages(0, 4096, 16).size(), 16u);
    // Negative stride walks pages downward.
    std::vector<Addr> down = tlb.stridedPages(0x3000, -4096, 3);
    ASSERT_EQ(down.size(), 3u);
    EXPECT_EQ(down[0], 3u);
    EXPECT_EQ(down[2], 1u);
    // Zero elements: nothing to translate.
    EXPECT_TRUE(tlb.stridedPages(0x1000, 8, 0).empty());
}

TEST(Tlb, IndexedStreamTranslatesPerElement)
{
    Tlb tlb(smallTlb(64));
    // Four elements on the same page still cost four lookups —
    // that is the per-element price of a gather.
    std::vector<Addr> addrs = {0x1000, 0x1008, 0x1100, 0x1FF8};
    EXPECT_EQ(tlb.indexedPages(addrs).size(), 4u);
    tlb.translate(tlb.indexedPages(addrs), true);
    EXPECT_EQ(tlb.misses(), 1u) << "first element walks";
    EXPECT_EQ(tlb.hits(), 3u) << "same-page elements hit";
    EXPECT_EQ(tlb.indexedMisses(), 1u);
}

// ------------------------------------------------------ translation

TEST(Tlb, HitsAreFreeMissesChargeTheWalk)
{
    TlbConfig cfg = smallTlb(64);
    cfg.missPenalty = 30;
    Tlb tlb(cfg);
    EXPECT_EQ(tlb.translate({7}, false), 30u);
    EXPECT_EQ(tlb.translate({7}, false), 0u) << "now resident";
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.missCycles(), 30u);
    EXPECT_EQ(tlb.indexedMisses(), 0u);
}

TEST(Tlb, LruEvictionWithinASet)
{
    // 2 entries, 2-way: one set. Pages 1,2 fill it; touching 1 then
    // inserting 3 must evict 2 (the least recently used).
    TlbConfig cfg = smallTlb(2, 4096, 2);
    Tlb tlb(cfg);
    tlb.translate({1, 2}, false);
    tlb.translate({1}, false);
    tlb.translate({3}, false);
    EXPECT_EQ(tlb.translate({1}, false), 0u) << "1 still resident";
    EXPECT_GT(tlb.translate({2}, false), 0u) << "2 was evicted";
}

TEST(Tlb, AssociativityConflictsEvictEarly)
{
    // 4 entries direct-mapped: pages 0 and 4 share set 0 and keep
    // evicting each other even though the TLB is half empty.
    Tlb direct(smallTlb(4, 4096, 1));
    direct.translate({0, 4, 0, 4}, false);
    EXPECT_EQ(direct.misses(), 4u);

    Tlb assoc(smallTlb(4, 4096, 4));
    assoc.translate({0, 4, 0, 4}, false);
    EXPECT_EQ(assoc.misses(), 2u) << "fully associative keeps both";
    EXPECT_EQ(assoc.hits(), 2u);
}

TEST(Tlb, SecondLevelShortensTheWalk)
{
    TlbConfig cfg = smallTlb(2, 4096, 2);
    cfg.missPenalty = 30;
    cfg.l2Entries = 64;
    cfg.l2HitPenalty = 6;
    Tlb tlb(cfg);
    // Fill pages 1..4: each first touch is a full walk.
    EXPECT_EQ(tlb.translate({1, 2, 3, 4}, false), 4 * 30u);
    // 1 and 2 were evicted from the tiny L1 but remain in L2: the
    // refill costs the L2 hit penalty, not the walk.
    EXPECT_EQ(tlb.translate({1}, false), 6u);
    EXPECT_EQ(tlb.misses(), 5u);
}

TEST(Tlb, ProbeAndInstallForSoftwareRefill)
{
    Tlb tlb(smallTlb(16));
    std::vector<Addr> pages = {10, 11, 12};
    EXPECT_TRUE(tlb.wouldMiss(pages));
    EXPECT_EQ(tlb.misses(), 0u) << "probe records nothing";
    EXPECT_EQ(tlb.install(pages, true), 3u);
    EXPECT_EQ(tlb.misses(), 3u);
    EXPECT_EQ(tlb.indexedMisses(), 3u);
    EXPECT_EQ(tlb.missCycles(), 0u) << "trap cost lives elsewhere";
    EXPECT_FALSE(tlb.wouldMiss(pages));
    EXPECT_EQ(tlb.install(pages, true), 0u) << "all resident";
}

// --------------------------------------------------------- patterns

TEST(Tlb, RandomGatherThrashesWhatAPermutationDoesNot)
{
    // The acceptance property behind the memtlb/memgather figures:
    // at a small TLB, per-element translation of uniform-random
    // indices over a large region misses far more than a
    // permutation of one contiguous window.
    DynInst gi;
    gi.op = Opcode::VGather;
    gi.vl = 64;
    gi.addr = 0x100000;
    gi.regionBytes = 512 * 1024;
    gi.elemSize = 8;
    gi.idxSeed = 99;

    auto missesFor = [&](IndexPattern pat) {
        gi.idxPattern = pat;
        Tlb tlb(smallTlb(16));
        tlb.translate(tlb.indexedPages(indexedElemAddrs(gi)), true);
        return tlb.misses();
    };
    uint64_t perm = missesFor(IndexPattern::Permutation);
    uint64_t rnd = missesFor(IndexPattern::Random);
    EXPECT_LE(perm, 2u) << "one window, at most two pages";
    EXPECT_GE(rnd, 8 * perm) << "random >> permutation";
}

// ---------------------------------------------------------- wrapper

TEST(TlbWrapper, DisabledTlbLeavesTheModelBare)
{
    auto mem = makeMemorySystem(MemConfig{}, 50);
    EXPECT_EQ(mem->tlb(), nullptr);
    EXPECT_EQ(mem->stats().tlbHits, 0u);
    EXPECT_EQ(mem->stats().tlbMisses, 0u);
}

TEST(TlbWrapper, MissStallsDelayTheStream)
{
    MemConfig cfg;
    cfg.tlb = smallTlb(64);
    cfg.tlb.missPenalty = 30;
    auto mem = makeMemorySystem(cfg, 50);
    ASSERT_NE(mem->tlb(), nullptr);
    // First stream: one page, one walk — the bus grant slips by the
    // walk penalty relative to the bare flat bus.
    MemAccess a = mem->reserve(0, 0x1000, 8, 16, MemOp::Load);
    EXPECT_EQ(a.start, 30u);
    EXPECT_EQ(a.end, 46u);
    EXPECT_EQ(a.firstData, 30u + 50u);
    // Second stream on the same page: resident, no delay beyond the
    // bus serialization.
    MemAccess b = mem->reserve(a.end, 0x1200, 8, 16, MemOp::Load);
    EXPECT_EQ(b.start, a.end);
    const MemStats &s = mem->stats();
    EXPECT_EQ(s.tlbMisses, 1u);
    EXPECT_EQ(s.tlbHits, 1u);
    EXPECT_EQ(s.tlbMissCycles, 30u);
    EXPECT_EQ(s.requests, 32u) << "inner-model counters ride along";
}

TEST(TlbWrapper, IndexedMissesSplitFromStrided)
{
    MemConfig cfg = makeBankedMem(8);
    cfg.tlb = smallTlb(16);
    auto mem = makeMemorySystem(cfg, 50);
    mem->reserve(0, 0x0, 8, 16, MemOp::Load); // strided: 1 walk
    mem->reserve(mem->freeAt(), onePerPage(8, 100), MemOp::Load);
    const MemStats &s = mem->stats();
    EXPECT_EQ(s.tlbMisses, 9u);
    EXPECT_EQ(s.tlbIndexedMisses, 8u);
    EXPECT_EQ(s.stridedTlbMisses(), 1u);
}

TEST(TlbWrapper, ZeroElementReservationStaysANoop)
{
    MemConfig cfg;
    cfg.tlb = smallTlb(64);
    auto mem = makeMemorySystem(cfg, 50);
    MemAccess a = mem->reserve(42, 0x1000, 8, 0);
    EXPECT_EQ(a.start, 42u);
    EXPECT_EQ(a.end, 42u);
    MemAccess b = mem->reserve(42, std::vector<Addr>{}, MemOp::Load);
    EXPECT_EQ(b.start, 42u);
    EXPECT_EQ(mem->freeAt(), 0u);
    EXPECT_EQ(mem->stats().tlbHits + mem->stats().tlbMisses, 0u);
}

TEST(TlbWrapper, CachedModelTranslatesOnceInFront)
{
    // The cache's line fills are physically addressed: a miss's
    // backing fetch must not be translated a second time.
    MemConfig cfg = makeCachedMem();
    cfg.tlb = smallTlb(64);
    auto mem = makeMemorySystem(cfg, 50);
    mem->reserve(0, 0, 8, 64, MemOp::Load);
    const MemStats &s = mem->stats();
    EXPECT_EQ(s.tlbMisses, 1u) << "one page, one walk";
    EXPECT_EQ(s.cacheMisses, 8u);
}

// --------------------------------------------------- whole machines

TEST(TlbSim, TranslationCostSurfacesInBothSimulators)
{
    GenOptions opts;
    opts.scale = 0.05;
    Trace t = makeBenchmarkTrace("swm256", opts);

    SimResult bare = simulateOoo(t, makeOooConfig(16, 16, 50));
    SimResult tlb = simulateOoo(t, makeTlbOooConfig(8, 4096, 50));
    EXPECT_EQ(tlb.machine, "OOOVA-16/16r/early/t8e4k");
    EXPECT_GT(tlb.tlbMisses, 0u);
    EXPECT_GT(tlb.tlbHits, 0u);
    EXPECT_GT(tlb.tlbMissCycles, 0u);
    EXPECT_GT(tlb.cycles, bare.cycles);

    RefConfig ref = makeRefConfig(50);
    ref.mem.tlb = makeTlb(8);
    SimResult r = simulateRef(t, ref);
    EXPECT_EQ(r.machine, "REF/t8e4k");
    EXPECT_GT(r.tlbMisses, 0u);
    EXPECT_GT(r.cycles, simulateRef(t, makeRefConfig(50)).cycles);
}

TEST(TlbSim, BiggerTlbMissesLess)
{
    GenOptions opts;
    opts.scale = 0.05;
    Trace t = makeBenchmarkTrace("hydro2d", opts);
    SimResult small = simulateOoo(t, makeTlbOooConfig(8));
    SimResult big = simulateOoo(t, makeTlbOooConfig(256));
    EXPECT_LT(big.tlbMisses, small.tlbMisses);
    EXPECT_LE(big.cycles, small.cycles);
}

TEST(TlbSim, GatherMissesLandInTheIndexedSplit)
{
    Trace t = gatherTrace(IndexPattern::Random, 0);
    OooConfig cfg = makeTlbOooConfig(16);
    SimResult r = simulateOoo(t, cfg);
    EXPECT_GT(r.tlbIndexedMisses, 0u);
    EXPECT_GT(r.tlbMisses, r.tlbIndexedMisses)
        << "the index-vector loads still translate strided";
    EXPECT_GT(r.tlbIndexedMisses, r.stridedTlbMisses())
        << "random gather dominates the miss mix";
}

TEST(TlbSim, SoftwareRefillTrapsPrecisely)
{
    GenOptions opts;
    opts.scale = 0.05;
    Trace t = makeBenchmarkTrace("swm256", opts);
    OooConfig sw = makeTlbOooConfig(64, 4096, 50, CommitMode::Late,
                                    TlbRefill::SoftwareTrap);
    SimResult r = simulateOoo(t, sw);
    EXPECT_EQ(r.machine, "OOOVA-16/16r/late/t64e4ks");
    EXPECT_GT(r.traps, 0u) << "misses refill through the trap path";
    EXPECT_EQ(r.instructions, t.size()) << "squash + replay is exact";
    EXPECT_GT(r.tlbMisses, 0u);

    SimResult hw = simulateOoo(
        t, makeTlbOooConfig(64, 4096, 50, CommitMode::Late));
    EXPECT_EQ(hw.traps, 0u);
    EXPECT_GT(hw.tlbMissCycles, 0u);
}

TEST(TlbSim, SoftwareRefillFallsBackUnderEarlyCommit)
{
    // Early commit has no precise-trap path; a software-refill
    // configuration must degrade to hardware-walk charging instead
    // of being silently free.
    GenOptions opts;
    opts.scale = 0.05;
    Trace t = makeBenchmarkTrace("swm256", opts);
    OooConfig cfg = makeTlbOooConfig(64, 4096, 50, CommitMode::Early,
                                     TlbRefill::SoftwareTrap);
    SimResult r = simulateOoo(t, cfg);
    EXPECT_EQ(r.traps, 0u);
    EXPECT_GT(r.tlbMisses, 0u);
    EXPECT_GT(r.tlbMissCycles, 0u);
}

TEST(TlbSim, EachMissingStreamTrapsOnceUnderSoftwareRefill)
{
    // Two independent loads to two cold pages, both marked behind a
    // slow divide that delays trap delivery: the older stream's trap
    // squashes the younger marking, and because translations are
    // installed only at delivery the younger stream re-detects its
    // miss and takes its own trap on replay — two traps, never a
    // silently free refill from a discarded marking.
    Trace t("two-cold-pages");
    t.push(makeVArith(Opcode::VDiv, vReg(7), vReg(6), vReg(5), 128));
    t.push(makeVLoad(vReg(0), aReg(0), 0x10000, 8, 16));
    t.push(makeVLoad(vReg(1), aReg(1), 0x20000, 8, 16));
    OooConfig cfg = makeTlbOooConfig(64, 4096, 50, CommitMode::Late,
                                     TlbRefill::SoftwareTrap);
    SimResult r = simulateOoo(t, cfg);
    EXPECT_EQ(r.traps, 2u);
    EXPECT_EQ(r.instructions, t.size());
    EXPECT_EQ(r.tlbMisses, 2u) << "one install per cold page";
}

TEST(TlbSim, InjectedFaultSurvivesEarlierTlbTraps)
{
    // Cold-TLB refill traps deliver before an injected page fault at
    // a later instruction; delivering them must not disarm the
    // injection (takeTrap only consumes fault_.faultSeq when the
    // delivered trap is the injected one). With a TLB big enough
    // that the replayed translations stay warm, the injected fault
    // adds exactly one trap over the clean run.
    GenOptions opts;
    opts.scale = 0.05;
    Trace t = makeBenchmarkTrace("swm256", opts);
    SeqNum victim = kNoSeq;
    for (SeqNum i = t.size() / 2; i < t.size(); ++i)
        if (t[i].op == Opcode::VLoad) {
            victim = i;
            break;
        }
    ASSERT_NE(victim, kNoSeq);

    OooConfig cfg = makeTlbOooConfig(256, 4096, 50, CommitMode::Late,
                                     TlbRefill::SoftwareTrap);
    SimResult clean = simulateOoo(t, cfg);
    ASSERT_GT(clean.traps, 0u) << "cold TLB must trap first";
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult faulted = simulateOoo(t, cfg, fault);
    EXPECT_EQ(faulted.traps, clean.traps + 1);
    EXPECT_EQ(faulted.instructions, t.size());
}

TEST(TlbSim, OversizedGatherStillMakesForwardProgress)
{
    // A random gather touches more pages than an 8-entry TLB can
    // hold at once: the software refill would self-evict and re-trap
    // forever without the one-trap-per-instruction guarantee.
    Trace t = gatherTrace(IndexPattern::Random, 0, 0.1);
    OooConfig cfg = makeTlbOooConfig(8, 4096, 50, CommitMode::Late,
                                     TlbRefill::SoftwareTrap);
    SimResult r = simulateOoo(t, cfg);
    EXPECT_EQ(r.instructions, t.size()) << "no livelock";
    EXPECT_GT(r.traps, 0u);
}

TEST(TlbSim, DisabledTlbIsByteIdenticalToTheSeedModel)
{
    GenOptions opts;
    opts.scale = 0.05;
    Trace t = makeBenchmarkTrace("trfd", opts);
    OooConfig off = makeOooConfig(16, 16, 50);
    off.mem.tlb.enabled = false; // explicit, for documentation
    SimResult a = simulateOoo(t, OooConfig{});
    SimResult b = simulateOoo(t, off);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(b.tlbHits + b.tlbMisses, 0u);
}
