/**
 * @file
 * Sweep-farm result store tests: the exact toJson()/fromJson()
 * round trip the store persists records through, key stability and
 * sensitivity, hit/miss/corruption behaviour of the on-disk store,
 * concurrent writers, and warm-vs-cold equality through the
 * StoreBackend.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "common/pipetrace.hh"
#include "harness/backend.hh"
#include "harness/experiment.hh"
#include "harness/figure.hh"
#include "harness/resultstore.hh"
#include "harness/sweep.hh"
#include "trace/trace_io.hh"

using namespace oova;

namespace
{

constexpr double kScale = 0.25;

/** A result with every stored field set to a distinct value. */
SimResult
fullyPopulatedResult()
{
    SimResult r;
    r.program = "swm\"2\\56";   // exercises string escaping
    r.machine = "OOOVA-16\n/t"; // and control-character escaping
    r.cycles = 101;
    r.instructions = 103;
    for (size_t i = 0; i < r.stateCycles.size(); ++i)
        r.stateCycles[i] = 200 + i;
    r.fu1BusyCycles = 301;
    r.fu2BusyCycles = 302;
    r.memBusyCycles = 303;
    r.memRequests = 304;
    r.memBankConflicts = 305;
    r.memConflictCycles = 306;
    r.memIndexedConflicts = 105;
    r.memIndexedConflictCycles = 308;
    r.cacheHits = 309;
    r.cacheMisses = 310;
    r.mshrStallCycles = 311;
    r.tlbHits = 312;
    r.tlbMisses = 313;
    r.tlbIndexedMisses = 114;
    r.tlbMissCycles = 315;
    r.vectorLoadsEliminated = 316;
    r.scalarLoadsEliminated = 317;
    r.branchMispredicts = 318;
    r.renameStallCycles = 319;
    r.robStallCycles = 320;
    r.queueStallCycles = 321;
    r.traps = 322;
    for (size_t i = 0; i < r.stallCycles.size(); ++i)
        r.stallCycles[i] = 400 + i;
    for (size_t i = 0; i < r.cpiCycles.size(); ++i)
        r.cpiCycles[i] = 500 + i;
    for (size_t i = 0; i < r.occupancy.size(); ++i) {
        StatDistribution &d = r.occupancy[i];
        d.width = 2 + i;
        d.samples = 600 + i;
        d.sum = 700 + i;
        d.sumSquares = 800 + i;
        d.minValue = 1 + i;
        d.maxValue = 90 + i;
        for (size_t b = 0; b < d.buckets.size(); ++b)
            d.buckets[b] = 1000 + i * d.buckets.size() + b;
        StatTimeSeries &ts = r.occupancyTs[i];
        ts.epochLen = 1ull << i;
        ts.total = 900 + i;
        for (size_t e = 0; e < ts.sums.size(); ++e)
            ts.sums[e] = 2000 + i * ts.sums.size() + e;
    }
    return r;
}

/** Field-by-field equality of every stored SimResult field. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.program, b.program);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stateCycles, b.stateCycles);
    EXPECT_EQ(a.fu1BusyCycles, b.fu1BusyCycles);
    EXPECT_EQ(a.fu2BusyCycles, b.fu2BusyCycles);
    EXPECT_EQ(a.memBusyCycles, b.memBusyCycles);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.memBankConflicts, b.memBankConflicts);
    EXPECT_EQ(a.memConflictCycles, b.memConflictCycles);
    EXPECT_EQ(a.memIndexedConflicts, b.memIndexedConflicts);
    EXPECT_EQ(a.memIndexedConflictCycles, b.memIndexedConflictCycles);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.mshrStallCycles, b.mshrStallCycles);
    EXPECT_EQ(a.tlbHits, b.tlbHits);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.tlbIndexedMisses, b.tlbIndexedMisses);
    EXPECT_EQ(a.tlbMissCycles, b.tlbMissCycles);
    EXPECT_EQ(a.vectorLoadsEliminated, b.vectorLoadsEliminated);
    EXPECT_EQ(a.scalarLoadsEliminated, b.scalarLoadsEliminated);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.renameStallCycles, b.renameStallCycles);
    EXPECT_EQ(a.robStallCycles, b.robStallCycles);
    EXPECT_EQ(a.queueStallCycles, b.queueStallCycles);
    EXPECT_EQ(a.traps, b.traps);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.cpiCycles, b.cpiCycles);
    EXPECT_EQ(a.occupancy, b.occupancy);
    EXPECT_EQ(a.occupancyTs, b.occupancyTs);
}

/** Fresh per-test store directory under the build tree. */
std::string
makeStoreDir(const char *tag)
{
    std::string dir =
        csprintf(".teststore-%s-%d", tag, static_cast<int>(getpid()));
    // Each test uses a distinct tag, so collisions only come from a
    // previous crashed run of the same test; start clean anyway.
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

} // namespace

// ------------------------------------------------- JSON round trip

TEST(SimResultRoundTrip, EveryFieldSurvivesExactly)
{
    SimResult in = fullyPopulatedResult();
    SimResult out;
    ASSERT_TRUE(SimResult::fromJson(in.toJson(), out));
    expectSameResult(in, out);
    // Integer-only storage means the reserialization is bit-exact,
    // which is what makes warm-store figure output byte-identical.
    EXPECT_EQ(in.toJson(), out.toJson());
}

TEST(SimResultRoundTrip, DefaultConstructedSurvives)
{
    SimResult in;
    SimResult out;
    ASSERT_TRUE(SimResult::fromJson(in.toJson(), out));
    expectSameResult(in, out);
}

TEST(SimResultRoundTrip, RejectsMalformedInput)
{
    SimResult out;
    std::string good = fullyPopulatedResult().toJson();

    EXPECT_FALSE(SimResult::fromJson("", out));
    EXPECT_FALSE(SimResult::fromJson("not json at all", out));
    // Truncation anywhere must fail, never yield a partial record.
    EXPECT_FALSE(
        SimResult::fromJson(good.substr(0, good.size() / 2), out));
    EXPECT_FALSE(
        SimResult::fromJson(good.substr(0, good.size() - 3), out));
    // Trailing garbage after the closing brace.
    EXPECT_FALSE(SimResult::fromJson(good + "x", out));
    // A missing required field (drop "cycles" wholesale).
    std::string dropped = good;
    size_t at = dropped.find("\"cycles\"");
    ASSERT_NE(at, std::string::npos);
    size_t end = dropped.find('\n', at);
    dropped.erase(at, end - at + 1);
    EXPECT_FALSE(SimResult::fromJson(dropped, out));
    // An unknown key: likely a newer schema that forgot to bump the
    // version; must be a clean parse failure, not silent tolerance.
    std::string extra = good;
    at = extra.find("\"cycles\"");
    extra.insert(at, "\"mysteryCounter\": 7,\n  ");
    EXPECT_FALSE(SimResult::fromJson(extra, out));
}

TEST(SimResultRoundTrip, RejectsForeignSchemaVersion)
{
    SimResult in = fullyPopulatedResult();
    std::string js = in.toJson();
    std::string tag =
        csprintf("\"resultSchemaVersion\": %d",
                 SimResult::kResultSchemaVersion);
    size_t at = js.find(tag);
    ASSERT_NE(at, std::string::npos);
    std::string other =
        js.substr(0, at) +
        csprintf("\"resultSchemaVersion\": %d",
                 SimResult::kResultSchemaVersion + 1) +
        js.substr(at + tag.size());
    SimResult out;
    EXPECT_FALSE(SimResult::fromJson(other, out));
}

TEST(SimResultRoundTrip, FailedParseLeavesOutputUntouched)
{
    SimResult out = fullyPopulatedResult();
    SimResult reference = fullyPopulatedResult();
    std::string good = fullyPopulatedResult().toJson();
    ASSERT_FALSE(
        SimResult::fromJson(good.substr(0, good.size() - 3), out));
    expectSameResult(reference, out);
}

// ------------------------------------------------------------ keys

TEST(ResultStoreKey, StableAndSensitive)
{
    std::string base = ResultStore::makeKey(0x1234, "OOO/v1|x", 0.25);
    EXPECT_EQ(base.size(), 32u);
    // Deterministic: same inputs, same key, every time.
    EXPECT_EQ(base, ResultStore::makeKey(0x1234, "OOO/v1|x", 0.25));
    // Every key ingredient moves the key.
    EXPECT_NE(base, ResultStore::makeKey(0x1235, "OOO/v1|x", 0.25));
    EXPECT_NE(base, ResultStore::makeKey(0x1234, "OOO/v1|y", 0.25));
    EXPECT_NE(base, ResultStore::makeKey(0x1234, "OOO/v1|x", 0.5));
}

TEST(ResultStoreKey, ConfigKeyCoversResultAffectingKnobs)
{
    OooConfig a = makeOooConfig();
    OooConfig b = makeOooConfig();
    EXPECT_EQ(sweepConfigKey(a), sweepConfigKey(b));

    // Knobs that change results must change the key...
    b.cpiStack = true;
    EXPECT_NE(sweepConfigKey(a), sweepConfigKey(b));
    b = makeOooConfig();
    b.lat.memLatency = 51;
    EXPECT_NE(sweepConfigKey(a), sweepConfigKey(b));
    b = makeOooConfig();
    b.mem.tlb = makeTlb(64);
    EXPECT_NE(sweepConfigKey(a), sweepConfigKey(b));

    // ...while the observe-only audit level must not: forcing the
    // audit on is exactly how the determinism suite proves results
    // are unchanged, so it shares the cache line with audit-off runs.
    b = makeOooConfig();
    b.checkLevel = 2;
    EXPECT_EQ(sweepConfigKey(a), sweepConfigKey(b));

    // REF and OOOVA keys can never collide.
    EXPECT_NE(sweepConfigKey(RefConfig{}),
              sweepConfigKey(OooConfig{}));
}

TEST(ResultStoreKey, PipeTracedJobsAreUncacheable)
{
    OooConfig cfg = makeOooConfig();
    EXPECT_FALSE(oooJob("hydro2d", cfg).configKey.empty());
    PipeTracer tracer(16);
    cfg.pipeTracer = &tracer;
    EXPECT_TRUE(oooJob("hydro2d", cfg).configKey.empty());
}

TEST(ResultStoreKey, TraceContentHashTracksContent)
{
    TraceCache a(kScale);
    TraceCache b(kScale);
    // Same generator inputs, same bytes, same hash — across caches.
    EXPECT_EQ(a.contentHash("hydro2d"), b.contentHash("hydro2d"));
    EXPECT_EQ(a.contentHash("hydro2d"), a.contentHash("hydro2d"));
    EXPECT_NE(a.contentHash("hydro2d"), a.contentHash("nasa7"));
    // A different scale generates a different trace.
    TraceCache half(kScale * 0.5);
    EXPECT_NE(a.contentHash("hydro2d"), half.contentHash("hydro2d"));
}

// ----------------------------------------------------------- store

TEST(ResultStore, RoundTripHitMatchesStoredResult)
{
    ResultStore store(makeStoreDir("roundtrip"));
    SimResult in = fullyPopulatedResult();
    std::string key = ResultStore::makeKey(0xabcd, "cfg", 0.25);

    SimResult out;
    EXPECT_FALSE(store.load(key, out)); // cold: miss
    store.store(key, in);
    ASSERT_TRUE(store.load(key, out)); // warm: hit
    expectSameResult(in, out);

    StoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_GT(s.bytesWritten, 0u);
    EXPECT_EQ(s.bytesRead, s.bytesWritten);
}

TEST(ResultStore, CorruptAndMismatchedEntriesAreQuarantined)
{
    std::string dir = makeStoreDir("corrupt");
    ResultStore store(dir);
    SimResult in = fullyPopulatedResult();
    std::string key = ResultStore::makeKey(0xabcd, "cfg", 0.25);
    store.store(key, in);
    std::string path = dir + "/" + key + ".json";
    std::string badPath = dir + "/" + key + ".bad";

    // Truncated mid-record: a miss, and the evidence is preserved —
    // the entry moves to <key>.bad instead of staying behind as a
    // perpetual parse failure.
    {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        std::string body = buf.str();
        std::ofstream os(path,
                         std::ios::binary | std::ios::trunc);
        os.write(body.data(),
                 static_cast<std::streamsize>(body.size() / 2));
    }
    SimResult out;
    EXPECT_FALSE(store.load(key, out));
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(badPath));

    // Re-storing heals the key: the next load is a clean hit again.
    store.store(key, in);
    ASSERT_TRUE(store.load(key, out));
    expectSameResult(in, out);

    // A record stored under a different key (file renamed by hand,
    // or a header/key mismatch from a foreign store version): a
    // quarantined miss too.
    std::string otherKey = ResultStore::makeKey(0xabce, "cfg", 0.25);
    std::string otherPath = dir + "/" + otherKey + ".json";
    ASSERT_EQ(std::rename(path.c_str(), otherPath.c_str()), 0);
    EXPECT_FALSE(store.load(otherKey, out));
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/" + otherKey + ".bad"));

    // Plain garbage: quarantined miss.
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "OOVA-RESULT but not really\n{]";
    }
    EXPECT_FALSE(store.load(key, out));
    EXPECT_EQ(store.stats().quarantined, 3u);

    // A genuinely absent entry is a plain miss: nothing to preserve,
    // nothing counted.
    std::string coldKey = ResultStore::makeKey(0xabcf, "cfg", 0.25);
    EXPECT_FALSE(store.load(coldKey, out));
    EXPECT_EQ(store.stats().quarantined, 3u);
}

TEST(ResultStore, TornIndexTailIsRepairedAndTolerated)
{
    std::string dir = makeStoreDir("tornindex");
    std::string k1, k2;
    {
        ResultStore store(dir);
        SimResult in = fullyPopulatedResult();
        k1 = ResultStore::makeKey(21, "cfg", 0.25);
        k2 = ResultStore::makeKey(22, "cfg", 0.25);
        store.store(k1, in);
        store.store(k2, in);
    }
    // Tear the tail the way a killed appender would: drop the last
    // line's second half, newline included.
    std::string idxPath = dir + "/index.log";
    {
        std::ifstream is(idxPath, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        std::string body = buf.str();
        size_t lastLine = body.rfind('\n', body.size() - 2) + 1;
        size_t keep = lastLine + (body.size() - lastLine) / 2;
        std::ofstream os(idxPath,
                         std::ios::binary | std::ios::trunc);
        os.write(body.data(), static_cast<std::streamsize>(keep));
    }

    // Reopening repairs the tail (terminates the partial line) and
    // everything still works: both entries load, and the cap's
    // index replay does not trip over the torn record.
    ResultStore store(dir);
    SimResult out;
    EXPECT_TRUE(store.load(k1, out));
    EXPECT_TRUE(store.load(k2, out));
    {
        std::ifstream is(idxPath, std::ios::binary | std::ios::ate);
        ASSERT_GT(is.tellg(), 0);
        is.seekg(-1, std::ios::end);
        char last = '\0';
        is.get(last);
        EXPECT_EQ(last, '\n');
    }
    store.setMaxBytes(1); // force a replay-driven eviction pass
    store.store(ResultStore::makeKey(23, "cfg", 0.25),
                fullyPopulatedResult());
    EXPECT_GT(store.stats().evictions, 0u);
}

TEST(ResultStore, FsyncRoundTripsUnchanged)
{
    ResultStore store(makeStoreDir("fsync"));
    store.setFsync(true);
    SimResult in = fullyPopulatedResult();
    std::string key = ResultStore::makeKey(31, "cfg", 0.25);
    store.store(key, in);
    SimResult out;
    ASSERT_TRUE(store.load(key, out));
    expectSameResult(in, out);
}

TEST(ResultStore, ConcurrentWritersOfOneKeyAllWin)
{
    ResultStore store(makeStoreDir("concurrent"));
    SimResult in = fullyPopulatedResult();
    std::string key = ResultStore::makeKey(0x7777, "cfg", 0.25);

    std::vector<std::thread> writers;
    for (int i = 0; i < 8; ++i)
        writers.emplace_back([&] { store.store(key, in); });
    for (auto &t : writers)
        t.join();

    SimResult out;
    ASSERT_TRUE(store.load(key, out));
    expectSameResult(in, out);
    EXPECT_EQ(store.stats().stores, 8u);
}

// ------------------------------------------------------- size cap

TEST(ResultStore, CapLeavesEntriesBelowItAlone)
{
    ResultStore store(makeStoreDir("capunder"));
    // Far above what two entries occupy: nothing may be evicted,
    // and both stay warm hits.
    store.setMaxBytes(64 * 1024 * 1024);
    SimResult in = fullyPopulatedResult();
    std::string k1 = ResultStore::makeKey(1, "cfg", 0.25);
    std::string k2 = ResultStore::makeKey(2, "cfg", 0.25);
    store.store(k1, in);
    store.store(k2, in);

    SimResult out;
    EXPECT_TRUE(store.load(k1, out));
    EXPECT_TRUE(store.load(k2, out));
    expectSameResult(in, out);
    EXPECT_EQ(store.stats().evictions, 0u);
}

TEST(ResultStore, CapEvictsOldestFirstAsCleanMisses)
{
    ResultStore store(makeStoreDir("capover"));
    SimResult in = fullyPopulatedResult();
    std::string k0 = ResultStore::makeKey(10, "cfg", 0.25);
    std::string k1 = ResultStore::makeKey(11, "cfg", 0.25);
    std::string k2 = ResultStore::makeKey(12, "cfg", 0.25);

    // Measure one entry's on-disk size, then cap at two and a half
    // entries: the third store must push the oldest out.
    store.store(k0, in);
    uint64_t entryBytes = store.stats().bytesWritten;
    ASSERT_GT(entryBytes, 0u);
    store.setMaxBytes(entryBytes * 5 / 2);

    store.store(k1, in); // 2 entries: still under the cap
    EXPECT_EQ(store.stats().evictions, 0u);
    store.store(k2, in); // 3 entries: k0 (oldest) must go

    SimResult out;
    EXPECT_FALSE(store.load(k0, out)); // evicted: a clean miss
    EXPECT_TRUE(store.load(k1, out));
    EXPECT_TRUE(store.load(k2, out));
    expectSameResult(in, out);
    EXPECT_EQ(store.stats().evictions, 1u);

    // Re-storing the evicted key appends a fresh index line, which
    // resets its age: the re-stored entry is now the newest, so the
    // next eviction takes k1 (the new oldest), not k0 again.
    store.store(k0, in);
    EXPECT_TRUE(store.load(k0, out));
    EXPECT_FALSE(store.load(k1, out));
    EXPECT_TRUE(store.load(k2, out));
    EXPECT_EQ(store.stats().evictions, 2u);
}

// --------------------------------------------------- StoreBackend

TEST(StoreBackend, WarmRunEqualsColdRunFieldForField)
{
    std::string dir = makeStoreDir("backend");
    TraceCache traces(kScale);
    std::vector<SweepJob> jobs;
    for (const char *prog : {"hydro2d", "nasa7"}) {
        jobs.push_back(oooJob(prog, makeOooConfig(16)));
        jobs.push_back(refJob(prog, makeRefConfig(50)));
        jobs.push_back(idealJob(prog));
    }

    ResultStore store(dir);
    SweepEngine cold(
        traces, std::make_unique<StoreBackend>(
                    store, traces,
                    std::make_unique<InProcessBackend>(traces, 2)));
    std::vector<SimResult> first = cold.run(jobs);
    EXPECT_EQ(store.stats().hits, 0u);
    EXPECT_EQ(store.stats().misses, jobs.size());
    EXPECT_EQ(store.stats().stores, jobs.size());

    // A fresh store object over the same directory (a new process
    // in real sweeps) must serve every job without simulating.
    ResultStore warmStore(dir);
    SweepEngine warm(
        traces, std::make_unique<StoreBackend>(
                    warmStore, traces,
                    std::make_unique<InProcessBackend>(traces, 2)));
    warm.enableManifest();
    std::vector<SimResult> second = warm.run(jobs);
    EXPECT_EQ(warmStore.stats().hits, jobs.size());
    EXPECT_EQ(warmStore.stats().misses, 0u);

    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        expectSameResult(first[i], second[i]);

    // The manifest records the hits as cached.
    ASSERT_EQ(warm.manifest().size(), jobs.size());
    for (const JobRecord &rec : warm.manifest())
        EXPECT_TRUE(rec.cached);
}

TEST(StoreBackend, InlineTraceJobsAreCacheable)
{
    std::string dir = makeStoreDir("inline");
    TraceCache traces(kScale);
    auto trace = std::make_shared<Trace>(traces.get("hydro2d"));
    std::vector<SweepJob> jobs = {
        oooTraceJob(trace, makeOooConfig(16)),
        refTraceJob(trace, makeRefConfig(50)),
    };

    ResultStore store(dir);
    StoreBackend backend(
        store, traces, std::make_unique<InProcessBackend>(traces, 1));
    std::vector<JobOutcome> first = backend.run(jobs);
    std::vector<JobOutcome> second = backend.run(jobs);

    EXPECT_EQ(store.stats().hits, jobs.size());
    EXPECT_EQ(store.stats().misses, jobs.size());
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_FALSE(first[i].fromStore);
        EXPECT_TRUE(second[i].fromStore);
        expectSameResult(first[i].result, second[i].result);
    }
}

TEST(StoreBackend, UncacheableJobsBypassTheStore)
{
    std::string dir = makeStoreDir("bypass");
    TraceCache traces(kScale);
    SweepJob job{"hydro2d",
                 [](const Trace &t) {
                     SimResult r;
                     r.machine = "CUSTOM";
                     r.cycles = t.size();
                     return r;
                 },
                 nullptr, std::string()};

    ResultStore store(dir);
    StoreBackend backend(
        store, traces, std::make_unique<InProcessBackend>(traces, 1));
    backend.run({job});
    backend.run({job});
    // No configKey: never looked up, never persisted.
    StoreStats s = store.stats();
    EXPECT_EQ(s.hits + s.misses + s.stores, 0u);
}
