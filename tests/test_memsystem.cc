/**
 * @file
 * Tests for the pluggable memory hierarchy: FlatBus equivalence with
 * the seed AddressBus, banked-memory bank mapping and port
 * arbitration, cache hit/miss/MSHR behaviour, and the config labels
 * threaded into machine names.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "mem/membus.hh"
#include "mem/memsystem.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

std::unique_ptr<MemorySystem>
makeFlat(unsigned latency = 50)
{
    return makeMemorySystem(MemConfig{}, latency);
}

std::unique_ptr<MemorySystem>
makeBanked(unsigned banks, unsigned ports = 1, unsigned busy = 4,
           unsigned latency = 50)
{
    MemConfig cfg = makeBankedMem(banks, ports, busy);
    return makeMemorySystem(cfg, latency);
}

} // namespace

// ---------------------------------------------------------- FlatBus

TEST(FlatBus, MatchesAddressBusTimings)
{
    AddressBus bus;
    auto flat = makeFlat(50);
    // A mix of back-to-back, gapped, and overlapping-request shapes.
    const std::pair<Cycle, unsigned> seq[] = {
        {0, 4},  {0, 1},   {2, 8},  {40, 16}, {40, 1},
        {41, 3}, {100, 128}, {90, 2}, {400, 64}, {400, 64},
    };
    for (auto [earliest, elems] : seq) {
        Cycle s = bus.reserve(earliest, elems);
        MemAccess a = flat->reserve(earliest, 0x1000, 8, elems);
        EXPECT_EQ(a.start, s);
        EXPECT_EQ(a.end, s + elems);
        EXPECT_EQ(a.firstData, s + 50);
        EXPECT_EQ(a.lastData, s + elems + 50);
        EXPECT_EQ(flat->freeAt(), bus.freeAt());
    }
    EXPECT_EQ(flat->stats().requests, bus.requests());
    EXPECT_EQ(flat->busy().busyCycles(), bus.busy().busyCycles());
    EXPECT_EQ(flat->stats().bankConflicts, 0u);
}

TEST(FlatBus, ReproducesSeedTimingsOnGeneratedTrace)
{
    // Replay every memory instruction of a generated benchmark trace
    // through both the seed AddressBus and the FlatBus model,
    // instruction for instruction, with a deterministic spread of
    // request cycles.
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("swm256", opts);
    AddressBus bus;
    auto flat = makeFlat(50);
    Cycle earliest = 0;
    size_t mem_ops = 0;
    for (const DynInst &di : t) {
        if (!di.isMem())
            continue;
        ++mem_ops;
        unsigned elems = di.memElems();
        Cycle s = bus.reserve(earliest, elems);
        MemAccess a =
            flat->reserve(earliest, di.addr, di.strideBytes, elems);
        ASSERT_EQ(a.start, s);
        ASSERT_EQ(a.end, s + elems);
        ASSERT_EQ(flat->freeAt(), bus.freeAt());
        earliest += 3; // let some requests queue, some find it idle
    }
    ASSERT_GT(mem_ops, 10u);
    EXPECT_EQ(flat->stats().requests, bus.requests());
    EXPECT_EQ(flat->busy().busyCycles(), bus.busy().busyCycles());
}

TEST(MemorySystem, ZeroElementReservationIsNoop)
{
    auto flat = makeFlat();
    auto banked = makeBanked(8);
    auto cached = makeMemorySystem(makeCachedMem(), 50);
    for (MemorySystem *m :
         {flat.get(), banked.get(), cached.get()}) {
        MemAccess a = m->reserve(42, 0x1000, 8, 0);
        EXPECT_EQ(a.start, 42u);
        EXPECT_EQ(a.end, 42u);
        EXPECT_EQ(m->freeAt(), 0u) << "no occupancy recorded";
        EXPECT_EQ(m->stats().requests, 0u);
        EXPECT_EQ(m->busy().busyCycles(), 0u);
    }
}

// ----------------------------------------------------- BankedMemory

TEST(BankedMemory, UnitStrideCoversAllBanksWithoutConflict)
{
    // Stride 1 over 8 banks: each bank is revisited only every 8
    // cycles, beyond the 4-cycle busy time, so the stream drives one
    // address per cycle like the flat bus.
    auto mem = makeBanked(8, 1, 4);
    MemAccess a = mem->reserve(0, 0, 8, 32);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(a.end, 32u);
    EXPECT_EQ(mem->stats().bankConflicts, 0u);
    EXPECT_EQ(mem->stats().conflictCycles, 0u);
}

TEST(BankedMemory, BankCountStrideSerializesOnOneBank)
{
    // Stride == bank count: every element maps to bank 0 and must
    // wait out the 4-cycle busy time — the address phase dilates to
    // busy * elems.
    auto mem = makeBanked(8, 1, 4);
    MemAccess a = mem->reserve(0, 0, 8 * 8, 16);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(a.end, 15u * 4 + 1);
    EXPECT_EQ(mem->stats().bankConflicts, 15u);
    EXPECT_GT(mem->stats().conflictCycles, 0u);
}

TEST(BankedMemory, CoPrimeStrideAvoidsConflicts)
{
    // Stride 3 (co-prime with 8) permutes all banks before reuse.
    auto mem = makeBanked(8, 1, 4);
    MemAccess a = mem->reserve(0, 0, 3 * 8, 32);
    EXPECT_EQ(a.end, 32u);
    EXPECT_EQ(mem->stats().bankConflicts, 0u);
}

TEST(BankedMemory, StrideTwoHalvesTheBankPool)
{
    // Stride 2 on 4 banks touches 2 banks; with busy 4 the reuse
    // distance (2 cycles) is under the busy time, so the stream
    // degrades to one element every busy/2 = 2 cycles steady state.
    auto mem = makeBanked(4, 1, 4);
    MemAccess a = mem->reserve(0, 0, 2 * 8, 16);
    EXPECT_GT(a.end, 24u);
    EXPECT_GT(mem->stats().bankConflicts, 0u);
}

TEST(BankedMemory, PortArbitrationLimitsIssueRate)
{
    // Two ports, plenty of banks: two addresses per cycle, so 16
    // elements drain in 8 cycles. The first element still defines
    // the start.
    auto mem = makeBanked(16, 2, 1);
    MemAccess a = mem->reserve(10, 0, 8, 16);
    EXPECT_EQ(a.start, 10u);
    EXPECT_EQ(a.end, 18u);
    EXPECT_EQ(mem->stats().bankConflicts, 0u);
}

TEST(BankedMemory, StreamsSerializeInOrder)
{
    // The single memory unit serializes streams: a second stream
    // with an earlier "earliest" still starts after the first one's
    // address phase.
    auto mem = makeBanked(8, 1, 4);
    MemAccess a = mem->reserve(5, 0, 8, 8);
    EXPECT_EQ(a.end, 13u);
    MemAccess b = mem->reserve(0, 0x800, 8, 8);
    EXPECT_GE(b.start, a.end);
    EXPECT_EQ(mem->freeAt(), b.end);
}

TEST(BankedMemory, DataFollowsAddressPhase)
{
    auto mem = makeBanked(8, 1, 4, 100);
    MemAccess a = mem->reserve(0, 0, 8, 8);
    EXPECT_EQ(a.firstData, a.start + 100);
    EXPECT_EQ(a.lastData, a.end + 100);
}

// ------------------------------------------- multi-unit arbitration

namespace
{

std::unique_ptr<MemorySystem>
makeMultiUnit(unsigned banks, unsigned units,
              LsPolicy policy = LsPolicy::Shared,
              unsigned latency = 50)
{
    MemConfig cfg = makeMultiUnitMem(banks, units, policy);
    return makeMemorySystem(cfg, latency);
}

} // namespace

TEST(MultiUnit, DisjointBankStreamsOverlapOnTwoUnits)
{
    // Stride 2 over 8 banks: stream A (even base) touches banks
    // {0,2,4,6}, stream B (base offset one word) banks {1,3,5,7}.
    // With one unit the phases serialize; with two they overlap
    // fully and conflict-free.
    auto one = makeMultiUnit(8, 1);
    MemAccess a1 = one->reserve(0, 0x1000, 16, 32, MemOp::Load);
    MemAccess b1 = one->reserve(0, 0x2008, 16, 32, MemOp::Load);
    EXPECT_EQ(a1.end, 32u);
    EXPECT_GE(b1.start, a1.end);
    EXPECT_EQ(b1.end, 64u);

    auto two = makeMultiUnit(8, 2);
    MemAccess a2 = two->reserve(0, 0x1000, 16, 32, MemOp::Load);
    MemAccess b2 = two->reserve(0, 0x2008, 16, 32, MemOp::Load);
    EXPECT_EQ(a2.end, 32u);
    EXPECT_EQ(b2.start, 0u) << "second unit starts immediately";
    EXPECT_EQ(b2.end, 32u);
    EXPECT_EQ(two->stats().bankConflicts, 0u);
    EXPECT_EQ(two->freeAt(), 32u);
}

TEST(MultiUnit, SameBankStreamsStillSerializeAcrossUnits)
{
    // Two units but both streams walk bank 0 only (stride = bank
    // count): the second stream's elements keep colliding with the
    // first's bank occupancy, so overlap buys (almost) nothing.
    auto two = makeMultiUnit(8, 2);
    MemAccess a = two->reserve(0, 0x1000, 64, 16, MemOp::Load);
    MemAccess b = two->reserve(0, 0x2000, 64, 16, MemOp::Load);
    EXPECT_EQ(a.end, 15u * 4 + 1);
    // Stream B interleaves into the same bank's busy slots: its
    // last element cannot land before ~2x the single-stream time.
    EXPECT_GE(b.end, 2 * 15u * 4 - 4);
    EXPECT_GT(two->stats().bankConflicts, 0u);
}

TEST(MultiUnit, ThirdStreamWaitsForAFreeUnit)
{
    auto two = makeMultiUnit(8, 2);
    MemAccess a = two->reserve(0, 0x1000, 8, 16, MemOp::Load);
    MemAccess b = two->reserve(0, 0x2008, 8, 16, MemOp::Load);
    // Both units busy until their phases end; a third stream must
    // wait for the earliest one.
    MemAccess c = two->reserve(0, 0x3000, 8, 16, MemOp::Load);
    EXPECT_GE(c.start, std::min(a.end, b.end));
}

TEST(MultiUnit, SplitPolicyDedicatesUnitsPerDirection)
{
    // Stride-2 streams: the loads walk the even banks, the store
    // the odd banks, so only unit assignment orders them.
    auto split = makeMultiUnit(8, 2, LsPolicy::Split);
    // Loads serialize against loads on the load unit...
    MemAccess la = split->reserve(0, 0x1000, 16, 16, MemOp::Load);
    MemAccess lb = split->reserve(0, 0x2000, 16, 16, MemOp::Load);
    EXPECT_GE(lb.start, la.end);
    // ...while a store runs on its own unit, overlapping the loads.
    MemAccess s = split->reserve(0, 0x4008, 16, 16, MemOp::Store);
    EXPECT_EQ(s.start, 0u);
    EXPECT_EQ(split->freeAt(MemOp::Store), s.end);
    EXPECT_GT(split->freeAt(MemOp::Load), s.end);
}

TEST(MultiUnit, FlatBusScalesAcrossUnitsToo)
{
    MemConfig cfg;
    cfg.memUnits = 2;
    auto flat = makeMemorySystem(cfg, 50);
    MemAccess a = flat->reserve(0, 0x1000, 8, 32, MemOp::Load);
    MemAccess b = flat->reserve(0, 0x2000, 8, 32, MemOp::Load);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u) << "second bus grants in parallel";
    EXPECT_EQ(flat->stats().requests, 64u);
    // Overlapping bus occupancy merges in the busy recorder.
    EXPECT_EQ(flat->busy().busyCycles(), 32u);
}

// ------------------------------------------- index-vector reserve

TEST(IndexedReserve, PermutationAddressesRunConflictFree)
{
    // A bank-friendly permutation of 32 consecutive words (odd step
    // 5): every bank revisit is 8 elements apart, beyond the 4-cycle
    // busy time.
    auto mem = makeBanked(8, 1, 4);
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 32; ++i)
        addrs.push_back(0x1000 + ((i * 5) % 32) * 8);
    MemAccess a = mem->reserve(0, addrs, MemOp::Load);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(a.end, 32u);
    EXPECT_EQ(mem->stats().bankConflicts, 0u);
    EXPECT_EQ(mem->stats().indexedConflicts, 0u);
}

TEST(IndexedReserve, CongruentIndicesDilateOnOneBank)
{
    // All addresses congruent mod 8 words: one bank, serialized at
    // the bank busy time — and counted as indexed conflicts.
    auto mem = makeBanked(8, 1, 4);
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 16; ++i)
        addrs.push_back(0x1000 + i * 8 * 8);
    MemAccess a = mem->reserve(0, addrs, MemOp::Load);
    EXPECT_EQ(a.end, 15u * 4 + 1);
    EXPECT_EQ(mem->stats().bankConflicts, 15u);
    EXPECT_EQ(mem->stats().indexedConflicts, 15u);
    EXPECT_GT(mem->stats().indexedConflictCycles, 0u);
    EXPECT_EQ(mem->stats().stridedConflicts(), 0u);
}

TEST(IndexedReserve, StridedAndIndexedConflictsSplitCleanly)
{
    auto mem = makeBanked(8, 1, 4);
    // A strided one-bank stream first...
    mem->reserve(0, 0x1000, 64, 8, MemOp::Load);
    uint64_t strided = mem->stats().bankConflicts;
    EXPECT_GT(strided, 0u);
    EXPECT_EQ(mem->stats().indexedConflicts, 0u);
    // ...then an indexed one-bank stream: only the indexed counters
    // move.
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 8; ++i)
        addrs.push_back(0x8000 + i * 64);
    mem->reserve(mem->freeAt(), addrs, MemOp::Load);
    EXPECT_GT(mem->stats().indexedConflicts, 0u);
    EXPECT_EQ(mem->stats().stridedConflicts(), strided);
}

TEST(IndexedReserve, FlatBusTimingMatchesStridedEquivalent)
{
    // The flat bus has no banks, so an index-vector reservation must
    // time exactly like a strided one of the same element count —
    // which is what keeps FlatBus figures byte-identical.
    auto flat = makeFlat(50);
    std::vector<Addr> addrs = {0x10, 0x4000, 0x8, 0x20000};
    MemAccess a = flat->reserve(7, addrs, MemOp::Load);
    EXPECT_EQ(a.start, 7u);
    EXPECT_EQ(a.end, 11u);
    EXPECT_EQ(a.firstData, 57u);
    EXPECT_EQ(a.lastData, 61u);
}

TEST(IndexedReserve, ZeroElementIndexVectorIsNoop)
{
    auto banked = makeBanked(8);
    MemAccess a = banked->reserve(42, std::vector<Addr>{}, MemOp::Load);
    EXPECT_EQ(a.start, 42u);
    EXPECT_EQ(a.end, 42u);
    EXPECT_EQ(banked->freeAt(), 0u);
    EXPECT_EQ(banked->stats().requests, 0u);
}

TEST(IndexedElemAddrs, ZeroLengthGatherReservesNothing)
{
    // vl == 0 must mirror the strided path's zero-element no-op.
    DynInst gi;
    gi.op = Opcode::VGather;
    gi.vl = 0;
    gi.addr = 0x1000;
    gi.regionBytes = 4096;
    gi.idxPattern = IndexPattern::Permutation;
    EXPECT_TRUE(indexedElemAddrs(gi).empty());
}

TEST(CachedMemory, IndexedStreamFillConflictsCountAsIndexed)
{
    // Cache over a 2-bank backing: every line fill alternates two
    // banks faster than the bank busy time, so fills conflict. When
    // the requesting stream is a gather, those conflicts must land
    // in the indexed counters, not the strided remainder.
    MemConfig cfg = makeCachedMem(4 * 1024, 8, MemModel::Banked);
    cfg.banks = 2;
    auto mem = makeMemorySystem(cfg, 50);
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 16; ++i)
        addrs.push_back(static_cast<Addr>(i) * 64 * 8);
    mem->reserve(0, addrs, MemOp::Load);
    EXPECT_EQ(mem->stats().cacheMisses, 16u);
    EXPECT_GT(mem->stats().bankConflicts, 0u);
    EXPECT_EQ(mem->stats().indexedConflicts,
              mem->stats().bankConflicts);
    EXPECT_EQ(mem->stats().stridedConflicts(), 0u);
}

TEST(IndexedElemAddrs, PatternsHaveTheAdvertisedShape)
{
    DynInst gi;
    gi.op = Opcode::VGather;
    gi.vl = 64;
    gi.addr = 0x100000;
    gi.regionBytes = 64 * 1024;
    gi.elemSize = 8;
    gi.idxSeed = 12345;

    gi.idxPattern = IndexPattern::None;
    std::vector<Addr> walk = indexedElemAddrs(gi);
    ASSERT_EQ(walk.size(), 64u);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(walk[i], gi.addr + i * 8u);

    gi.idxPattern = IndexPattern::Permutation;
    std::vector<Addr> perm = indexedElemAddrs(gi);
    std::vector<Addr> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    // A permutation of a contiguous window: 64 distinct consecutive
    // words.
    for (unsigned i = 1; i < 64; ++i)
        EXPECT_EQ(sorted[i], sorted[i - 1] + 8);
    EXPECT_NE(perm, sorted) << "shuffled, not the identity walk";

    gi.idxPattern = IndexPattern::CongruentMod;
    gi.idxParam = 8;
    for (Addr a : indexedElemAddrs(gi))
        EXPECT_EQ((a / 8) % 8, (indexedElemAddrs(gi)[0] / 8) % 8)
            << "all elements share one residue class";

    gi.idxPattern = IndexPattern::Random;
    std::vector<Addr> rnd = indexedElemAddrs(gi);
    EXPECT_EQ(rnd, indexedElemAddrs(gi)) << "deterministic";
    for (Addr a : rnd) {
        EXPECT_GE(a, gi.addr);
        EXPECT_LT(a, gi.addr + gi.regionBytes);
    }
}

// ----------------------------------------------------- CachedMemory

TEST(CachedMemory, UnitStrideMissesOncePerLine)
{
    // 64-byte lines, 8-byte words: 1 miss + 7 hits per line.
    auto mem = makeMemorySystem(makeCachedMem(32 * 1024, 8), 50);
    mem->reserve(0, 0, 8, 64);
    EXPECT_EQ(mem->stats().cacheMisses, 8u);
    EXPECT_EQ(mem->stats().cacheHits, 56u);
}

TEST(CachedMemory, RepeatedStreamHitsInCache)
{
    auto mem = makeMemorySystem(makeCachedMem(32 * 1024, 8), 50);
    MemAccess first = mem->reserve(0, 0, 8, 64);
    uint64_t misses = mem->stats().cacheMisses;
    uint64_t traffic = mem->stats().requests;
    MemAccess again = mem->reserve(first.end, 0, 8, 64);
    EXPECT_EQ(mem->stats().cacheMisses, misses)
        << "second pass over the same lines must not miss";
    EXPECT_EQ(mem->stats().requests, traffic)
        << "requests = backing bus traffic; an all-hit pass adds none";
    // All hits: data trails the address phase by the hit latency.
    EXPECT_LT(again.lastData, again.end + 50);
}

TEST(CachedMemory, MshrSaturationStallsMisses)
{
    // One MSHR and a stride of a whole line: every access misses and
    // must wait for the previous fill to land before its own can
    // start.
    MemConfig one = makeCachedMem(4 * 1024, 1);
    auto mem1 = makeMemorySystem(one, 50);
    mem1->reserve(0, 0, 64, 16);
    EXPECT_EQ(mem1->stats().cacheMisses, 16u);
    EXPECT_GT(mem1->stats().mshrStallCycles, 0u);

    MemConfig many = makeCachedMem(4 * 1024, 16);
    auto mem16 = makeMemorySystem(many, 50);
    mem16->reserve(0, 0, 64, 16);
    EXPECT_EQ(mem16->stats().cacheMisses, 16u);
    EXPECT_LT(mem16->stats().mshrStallCycles,
              mem1->stats().mshrStallCycles)
        << "more MSHRs must reduce miss serialization";
}

TEST(CachedMemory, SecondaryMissMergesWithInflightFill)
{
    // Two accesses to the same line back to back: the second is a
    // hit that waits on the in-flight fill rather than a new miss.
    auto mem = makeMemorySystem(makeCachedMem(32 * 1024, 8), 50);
    mem->reserve(0, 0, 8, 2);
    EXPECT_EQ(mem->stats().cacheMisses, 1u);
    EXPECT_EQ(mem->stats().cacheHits, 1u);
}

// ------------------------------------------------- config plumbing

TEST(MemConfig, DefaultLabelIsEmpty)
{
    MemConfig cfg;
    EXPECT_EQ(cfg.label(), "");
    // The default OOOVA name must be byte-identical to the seed's.
    EXPECT_EQ(OooConfig{}.name(), "OOOVA-16/16r/early");
}

TEST(MemConfig, LabelsReflectModelParameters)
{
    EXPECT_EQ(makeBankedMem(8).label(), "/mb8p1");
    EXPECT_EQ(makeBankedMem(16, 2).label(), "/mb16p2");
    EXPECT_EQ(makeCachedMem().label(), "/c32k4w8m");
    EXPECT_EQ(makeCachedMem(64 * 1024, 4, MemModel::Banked).label(),
              "/c64k4w4mb8");

    OooConfig ooo;
    ooo.mem = makeBankedMem(8);
    EXPECT_EQ(ooo.name(), "OOOVA-16/16r/early/mb8p1");
}

TEST(MemConfig, UnitCountAndPolicyRoundTripThroughLabels)
{
    EXPECT_EQ(makeMultiUnitMem(8, 2).label(), "/mb8p1x2");
    EXPECT_EQ(makeMultiUnitMem(8, 2, LsPolicy::Split).label(),
              "/mb8p1x2s");
    EXPECT_EQ(makeMultiUnitMem(16, 4, LsPolicy::Shared, 2).label(),
              "/mb16p2x4");
    // One unit is the default and stays invisible, for every model.
    EXPECT_EQ(makeMultiUnitMem(8, 1).label(), "/mb8p1");
    MemConfig flat;
    flat.memUnits = 2;
    EXPECT_EQ(flat.label(), "/x2");
    flat.lsPolicy = LsPolicy::Split;
    EXPECT_EQ(flat.label(), "/x2s");
    MemConfig cached = makeCachedMem();
    cached.memUnits = 2;
    EXPECT_EQ(cached.label(), "/c32k4w8mx2");

    OooConfig ooo;
    ooo.mem = makeMultiUnitMem(8, 2);
    EXPECT_EQ(ooo.name(), "OOOVA-16/16r/early/mb8p1x2");

    Trace t("one-load");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 16));
    RefConfig ref;
    ref.mem = makeMultiUnitMem(4, 2, LsPolicy::Split);
    EXPECT_EQ(simulateRef(t, ref).machine, "REF/mb4p1x2s");
}

TEST(MemUnitRange, OddUnitCountsUnderSplitFavorLoads)
{
    // Split gives loads the first ceil(N/2) units and stores the
    // rest: with an odd count the extra unit goes to loads, the two
    // ranges never overlap, and together they cover every unit.
    auto ranges = [](unsigned units) {
        MemConfig cfg;
        cfg.memUnits = units;
        cfg.lsPolicy = LsPolicy::Split;
        return std::pair{memUnitRange(cfg, MemOp::Load),
                         memUnitRange(cfg, MemOp::Store)};
    };
    {
        auto [ld, st] = ranges(3);
        EXPECT_EQ(ld, (std::pair<unsigned, unsigned>{0, 2}));
        EXPECT_EQ(st, (std::pair<unsigned, unsigned>{2, 3}));
    }
    {
        auto [ld, st] = ranges(5);
        EXPECT_EQ(ld, (std::pair<unsigned, unsigned>{0, 3}));
        EXPECT_EQ(st, (std::pair<unsigned, unsigned>{3, 5}));
    }
    {
        auto [ld, st] = ranges(7);
        EXPECT_EQ(ld.second, st.first) << "no gap, no overlap";
        EXPECT_EQ(st.second, 7u) << "every unit covered";
        EXPECT_GT(ld.second - ld.first, st.second - st.first)
            << "loads take the extra unit";
    }
    {
        // A single unit cannot be split: both directions share it.
        auto [ld, st] = ranges(1);
        EXPECT_EQ(ld, (std::pair<unsigned, unsigned>{0, 1}));
        EXPECT_EQ(st, (std::pair<unsigned, unsigned>{0, 1}));
    }
}

TEST(MemUnitRange, OddSplitStoresGetTheirOwnUnitInTheModel)
{
    // Three split units end to end: two load streams overlap on the
    // two load units while a store lands on the dedicated third.
    // Stride 32 over 8 banks with a 1-cycle bank busy time puts each
    // word-offset base on its own disjoint {b, b+4} bank pair, so
    // only unit assignment decides the timing.
    MemConfig cfg = makeMultiUnitMem(8, 3, LsPolicy::Split, 1, 1);
    auto mem = makeMemorySystem(cfg, 50);
    MemAccess a = mem->reserve(0, 0x1000, 32, 16, MemOp::Load);
    MemAccess b = mem->reserve(0, 0x1008, 32, 16, MemOp::Load);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u) << "two load units";
    MemAccess c = mem->reserve(0, 0x1018, 32, 16, MemOp::Load);
    EXPECT_GE(c.start, std::min(a.end, b.end))
        << "third load waits; the store unit is not eligible";
    MemAccess s = mem->reserve(0, 0x1010, 32, 16, MemOp::Store);
    EXPECT_EQ(s.start, 0u) << "the store unit was idle all along";
    EXPECT_EQ(mem->stats().bankConflicts, 0u);
}

TEST(MemConfig, CachedOverBankedLabels)
{
    // The cache label encodes size/ways/MSHRs, the backing's bank
    // count, then the unit suffix — all three dimensions must
    // round-trip for sweep tables to be self-describing.
    MemConfig cfg = makeCachedMem(16 * 1024, 2, MemModel::Banked);
    EXPECT_EQ(cfg.label(), "/c16k4w2mb8");
    cfg.banks = 16;
    EXPECT_EQ(cfg.label(), "/c16k4w2mb16");
    cfg.associativity = 8;
    EXPECT_EQ(cfg.label(), "/c16k8w2mb16");
    cfg.memUnits = 2;
    cfg.lsPolicy = LsPolicy::Split;
    EXPECT_EQ(cfg.label(), "/c16k8w2mb16x2s");
    // The banked suffix only appears for a banked backing.
    cfg.backing = MemModel::FlatBus;
    EXPECT_EQ(cfg.label(), "/c16k8w2mx2s");

    OooConfig ooo;
    ooo.mem = makeCachedMem(64 * 1024, 4, MemModel::Banked);
    ooo.mem.banks = 4;
    EXPECT_EQ(ooo.name(), "OOOVA-16/16r/early/c64k4w4mb4");
}

TEST(MemSystemSim, TwoUnitsSpeedUpDualStreamPrograms)
{
    // Whole-simulator version of the memunits figure's headline: a
    // hand-built dual-load program on disjoint bank sets runs >=
    // 1.5x faster with a second memory unit.
    Trace t("dual");
    Addr a = 0x100000, b = 0x200008;
    for (int k = 0; k < 24; ++k) {
        t.push(makeVLoad(vReg(0), aReg(0), a, 16, 64));
        t.push(makeVLoad(vReg(1), aReg(1), b, 16, 64));
        t.push(makeVArith(Opcode::VAdd, vReg(2), vReg(0), vReg(1),
                          64));
        a += 64 * 16;
        b += 64 * 16;
    }
    SimResult one = simulateOoo(t, makeMultiUnitOooConfig(8, 1));
    SimResult two = simulateOoo(t, makeMultiUnitOooConfig(8, 2));
    EXPECT_GE(speedup(one, two), 1.5);
    EXPECT_EQ(two.memBankConflicts, 0u) << "disjoint bank sets";
    EXPECT_EQ(two.machine, "OOOVA-16/16r/early/mb8p1x2");
}

TEST(MemConfig, RefMachineLabelReflectsModel)
{
    Trace t("one-load");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 16));
    EXPECT_EQ(simulateRef(t, RefConfig{}).machine, "REF");
    RefConfig banked;
    banked.mem = makeBankedMem(4);
    EXPECT_EQ(simulateRef(t, banked).machine, "REF/mb4p1");
}

// --------------------------------------------- whole-sim properties

TEST(MemSystemSim, DefaultConfigMatchesSeedModel)
{
    // The FlatBus default must leave both simulators' results
    // untouched relative to an explicitly constructed FlatBus (and,
    // transitively, the seed AddressBus — see the replay test).
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("trfd", opts);
    OooConfig flat;
    flat.mem.model = MemModel::FlatBus;
    SimResult a = simulateOoo(t, OooConfig{});
    SimResult b = simulateOoo(t, flat);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.memBusyCycles, b.memBusyCycles);
    EXPECT_EQ(a.memBankConflicts, 0u);
    EXPECT_EQ(a.cacheMisses, 0u);
}

TEST(BankedMemory, UnitStrideStreamsMonotoneInBankCount)
{
    // The model-level invariant behind the membank figure: a
    // unit-stride address stream never drains slower with more
    // banks. (Whole-simulator cycle counts may wiggle a few cycles
    // from second-order issue-scheduling effects, so the strict
    // property is asserted here, on the model.)
    Cycle prev = kNoCycle;
    for (unsigned banks : {1u, 2u, 4u, 8u, 16u}) {
        auto mem = makeBanked(banks, 1, 4);
        Cycle end = 0;
        for (unsigned s = 0; s < 8; ++s) {
            MemAccess a =
                mem->reserve(end, 0x1000 + s * 0x4000, 8, 64);
            end = a.end;
        }
        EXPECT_LE(end, prev) << banks << " banks";
        prev = end;
    }
}

TEST(MemSystemSim, BankCountScalesOoovaPerformance)
{
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("swm256", opts);
    Cycle flat = simulateOoo(t, OooConfig{}).cycles;
    Cycle b1 = simulateOoo(t, makeBankedOooConfig(1)).cycles;
    Cycle b16 = simulateOoo(t, makeBankedOooConfig(16)).cycles;
    // One bank at a 4-cycle busy time roughly quarters the address
    // rate of this memory-bound program; 16 banks restore the flat
    // bus's performance to within a few percent.
    EXPECT_GT(b1, 2 * b16);
    EXPECT_LT(b16, flat + flat / 20);
}

TEST(MemSystemSim, BankConflictsSurfaceInResults)
{
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("su2cor", opts); // stride-2 kernels
    SimResult r = simulateOoo(t, makeBankedOooConfig(2));
    EXPECT_GT(r.memBankConflicts, 0u);
    EXPECT_GT(r.memConflictCycles, 0u);
}

TEST(MemSystemSim, CachedModelRunsBothSimulators)
{
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("hydro2d", opts);
    OooConfig ooo;
    ooo.mem = makeCachedMem();
    SimResult a = simulateOoo(t, ooo);
    EXPECT_GT(a.cycles, 0u);
    EXPECT_GT(a.cacheHits + a.cacheMisses, 0u);
    RefConfig ref;
    ref.mem = makeCachedMem();
    SimResult b = simulateRef(t, ref);
    EXPECT_GT(b.cycles, 0u);
    EXPECT_GT(b.cacheHits + b.cacheMisses, 0u);
}

TEST(MemSystemSim, CacheOverBankedBacking)
{
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("flo52", opts);
    OooConfig cfg;
    cfg.mem = makeCachedMem(16 * 1024, 4, MemModel::Banked);
    cfg.mem.banks = 4;
    SimResult r = simulateOoo(t, cfg);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.cacheMisses, 0u);
}
