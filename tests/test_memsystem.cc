/**
 * @file
 * Tests for the pluggable memory hierarchy: FlatBus equivalence with
 * the seed AddressBus, banked-memory bank mapping and port
 * arbitration, cache hit/miss/MSHR behaviour, and the config labels
 * threaded into machine names.
 */

#include <gtest/gtest.h>

#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "mem/membus.hh"
#include "mem/memsystem.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

std::unique_ptr<MemorySystem>
makeFlat(unsigned latency = 50)
{
    return makeMemorySystem(MemConfig{}, latency);
}

std::unique_ptr<MemorySystem>
makeBanked(unsigned banks, unsigned ports = 1, unsigned busy = 4,
           unsigned latency = 50)
{
    MemConfig cfg = makeBankedMem(banks, ports, busy);
    return makeMemorySystem(cfg, latency);
}

} // namespace

// ---------------------------------------------------------- FlatBus

TEST(FlatBus, MatchesAddressBusTimings)
{
    AddressBus bus;
    auto flat = makeFlat(50);
    // A mix of back-to-back, gapped, and overlapping-request shapes.
    const std::pair<Cycle, unsigned> seq[] = {
        {0, 4},  {0, 1},   {2, 8},  {40, 16}, {40, 1},
        {41, 3}, {100, 128}, {90, 2}, {400, 64}, {400, 64},
    };
    for (auto [earliest, elems] : seq) {
        Cycle s = bus.reserve(earliest, elems);
        MemAccess a = flat->reserve(earliest, 0x1000, 8, elems);
        EXPECT_EQ(a.start, s);
        EXPECT_EQ(a.end, s + elems);
        EXPECT_EQ(a.firstData, s + 50);
        EXPECT_EQ(a.lastData, s + elems + 50);
        EXPECT_EQ(flat->freeAt(), bus.freeAt());
    }
    EXPECT_EQ(flat->stats().requests, bus.requests());
    EXPECT_EQ(flat->busy().busyCycles(), bus.busy().busyCycles());
    EXPECT_EQ(flat->stats().bankConflicts, 0u);
}

TEST(FlatBus, ReproducesSeedTimingsOnGeneratedTrace)
{
    // Replay every memory instruction of a generated benchmark trace
    // through both the seed AddressBus and the FlatBus model,
    // instruction for instruction, with a deterministic spread of
    // request cycles.
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("swm256", opts);
    AddressBus bus;
    auto flat = makeFlat(50);
    Cycle earliest = 0;
    size_t mem_ops = 0;
    for (const DynInst &di : t) {
        if (!di.isMem())
            continue;
        ++mem_ops;
        unsigned elems = di.memElems();
        Cycle s = bus.reserve(earliest, elems);
        MemAccess a =
            flat->reserve(earliest, di.addr, di.strideBytes, elems);
        ASSERT_EQ(a.start, s);
        ASSERT_EQ(a.end, s + elems);
        ASSERT_EQ(flat->freeAt(), bus.freeAt());
        earliest += 3; // let some requests queue, some find it idle
    }
    ASSERT_GT(mem_ops, 10u);
    EXPECT_EQ(flat->stats().requests, bus.requests());
    EXPECT_EQ(flat->busy().busyCycles(), bus.busy().busyCycles());
}

TEST(MemorySystem, ZeroElementReservationIsNoop)
{
    auto flat = makeFlat();
    auto banked = makeBanked(8);
    auto cached = makeMemorySystem(makeCachedMem(), 50);
    for (MemorySystem *m :
         {flat.get(), banked.get(), cached.get()}) {
        MemAccess a = m->reserve(42, 0x1000, 8, 0);
        EXPECT_EQ(a.start, 42u);
        EXPECT_EQ(a.end, 42u);
        EXPECT_EQ(m->freeAt(), 0u) << "no occupancy recorded";
        EXPECT_EQ(m->stats().requests, 0u);
        EXPECT_EQ(m->busy().busyCycles(), 0u);
    }
}

// ----------------------------------------------------- BankedMemory

TEST(BankedMemory, UnitStrideCoversAllBanksWithoutConflict)
{
    // Stride 1 over 8 banks: each bank is revisited only every 8
    // cycles, beyond the 4-cycle busy time, so the stream drives one
    // address per cycle like the flat bus.
    auto mem = makeBanked(8, 1, 4);
    MemAccess a = mem->reserve(0, 0, 8, 32);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(a.end, 32u);
    EXPECT_EQ(mem->stats().bankConflicts, 0u);
    EXPECT_EQ(mem->stats().conflictCycles, 0u);
}

TEST(BankedMemory, BankCountStrideSerializesOnOneBank)
{
    // Stride == bank count: every element maps to bank 0 and must
    // wait out the 4-cycle busy time — the address phase dilates to
    // busy * elems.
    auto mem = makeBanked(8, 1, 4);
    MemAccess a = mem->reserve(0, 0, 8 * 8, 16);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(a.end, 15u * 4 + 1);
    EXPECT_EQ(mem->stats().bankConflicts, 15u);
    EXPECT_GT(mem->stats().conflictCycles, 0u);
}

TEST(BankedMemory, CoPrimeStrideAvoidsConflicts)
{
    // Stride 3 (co-prime with 8) permutes all banks before reuse.
    auto mem = makeBanked(8, 1, 4);
    MemAccess a = mem->reserve(0, 0, 3 * 8, 32);
    EXPECT_EQ(a.end, 32u);
    EXPECT_EQ(mem->stats().bankConflicts, 0u);
}

TEST(BankedMemory, StrideTwoHalvesTheBankPool)
{
    // Stride 2 on 4 banks touches 2 banks; with busy 4 the reuse
    // distance (2 cycles) is under the busy time, so the stream
    // degrades to one element every busy/2 = 2 cycles steady state.
    auto mem = makeBanked(4, 1, 4);
    MemAccess a = mem->reserve(0, 0, 2 * 8, 16);
    EXPECT_GT(a.end, 24u);
    EXPECT_GT(mem->stats().bankConflicts, 0u);
}

TEST(BankedMemory, PortArbitrationLimitsIssueRate)
{
    // Two ports, plenty of banks: two addresses per cycle, so 16
    // elements drain in 8 cycles. The first element still defines
    // the start.
    auto mem = makeBanked(16, 2, 1);
    MemAccess a = mem->reserve(10, 0, 8, 16);
    EXPECT_EQ(a.start, 10u);
    EXPECT_EQ(a.end, 18u);
    EXPECT_EQ(mem->stats().bankConflicts, 0u);
}

TEST(BankedMemory, StreamsSerializeInOrder)
{
    // The single memory unit serializes streams: a second stream
    // with an earlier "earliest" still starts after the first one's
    // address phase.
    auto mem = makeBanked(8, 1, 4);
    MemAccess a = mem->reserve(5, 0, 8, 8);
    EXPECT_EQ(a.end, 13u);
    MemAccess b = mem->reserve(0, 0x800, 8, 8);
    EXPECT_GE(b.start, a.end);
    EXPECT_EQ(mem->freeAt(), b.end);
}

TEST(BankedMemory, DataFollowsAddressPhase)
{
    auto mem = makeBanked(8, 1, 4, 100);
    MemAccess a = mem->reserve(0, 0, 8, 8);
    EXPECT_EQ(a.firstData, a.start + 100);
    EXPECT_EQ(a.lastData, a.end + 100);
}

// ----------------------------------------------------- CachedMemory

TEST(CachedMemory, UnitStrideMissesOncePerLine)
{
    // 64-byte lines, 8-byte words: 1 miss + 7 hits per line.
    auto mem = makeMemorySystem(makeCachedMem(32 * 1024, 8), 50);
    mem->reserve(0, 0, 8, 64);
    EXPECT_EQ(mem->stats().cacheMisses, 8u);
    EXPECT_EQ(mem->stats().cacheHits, 56u);
}

TEST(CachedMemory, RepeatedStreamHitsInCache)
{
    auto mem = makeMemorySystem(makeCachedMem(32 * 1024, 8), 50);
    MemAccess first = mem->reserve(0, 0, 8, 64);
    uint64_t misses = mem->stats().cacheMisses;
    uint64_t traffic = mem->stats().requests;
    MemAccess again = mem->reserve(first.end, 0, 8, 64);
    EXPECT_EQ(mem->stats().cacheMisses, misses)
        << "second pass over the same lines must not miss";
    EXPECT_EQ(mem->stats().requests, traffic)
        << "requests = backing bus traffic; an all-hit pass adds none";
    // All hits: data trails the address phase by the hit latency.
    EXPECT_LT(again.lastData, again.end + 50);
}

TEST(CachedMemory, MshrSaturationStallsMisses)
{
    // One MSHR and a stride of a whole line: every access misses and
    // must wait for the previous fill to land before its own can
    // start.
    MemConfig one = makeCachedMem(4 * 1024, 1);
    auto mem1 = makeMemorySystem(one, 50);
    mem1->reserve(0, 0, 64, 16);
    EXPECT_EQ(mem1->stats().cacheMisses, 16u);
    EXPECT_GT(mem1->stats().mshrStallCycles, 0u);

    MemConfig many = makeCachedMem(4 * 1024, 16);
    auto mem16 = makeMemorySystem(many, 50);
    mem16->reserve(0, 0, 64, 16);
    EXPECT_EQ(mem16->stats().cacheMisses, 16u);
    EXPECT_LT(mem16->stats().mshrStallCycles,
              mem1->stats().mshrStallCycles)
        << "more MSHRs must reduce miss serialization";
}

TEST(CachedMemory, SecondaryMissMergesWithInflightFill)
{
    // Two accesses to the same line back to back: the second is a
    // hit that waits on the in-flight fill rather than a new miss.
    auto mem = makeMemorySystem(makeCachedMem(32 * 1024, 8), 50);
    mem->reserve(0, 0, 8, 2);
    EXPECT_EQ(mem->stats().cacheMisses, 1u);
    EXPECT_EQ(mem->stats().cacheHits, 1u);
}

// ------------------------------------------------- config plumbing

TEST(MemConfig, DefaultLabelIsEmpty)
{
    MemConfig cfg;
    EXPECT_EQ(cfg.label(), "");
    // The default OOOVA name must be byte-identical to the seed's.
    EXPECT_EQ(OooConfig{}.name(), "OOOVA-16/16r/early");
}

TEST(MemConfig, LabelsReflectModelParameters)
{
    EXPECT_EQ(makeBankedMem(8).label(), "/mb8p1");
    EXPECT_EQ(makeBankedMem(16, 2).label(), "/mb16p2");
    EXPECT_EQ(makeCachedMem().label(), "/c32k4w8m");
    EXPECT_EQ(makeCachedMem(64 * 1024, 4, MemModel::Banked).label(),
              "/c64k4w4mb8");

    OooConfig ooo;
    ooo.mem = makeBankedMem(8);
    EXPECT_EQ(ooo.name(), "OOOVA-16/16r/early/mb8p1");
}

TEST(MemConfig, RefMachineLabelReflectsModel)
{
    Trace t("one-load");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 16));
    EXPECT_EQ(simulateRef(t, RefConfig{}).machine, "REF");
    RefConfig banked;
    banked.mem = makeBankedMem(4);
    EXPECT_EQ(simulateRef(t, banked).machine, "REF/mb4p1");
}

// --------------------------------------------- whole-sim properties

TEST(MemSystemSim, DefaultConfigMatchesSeedModel)
{
    // The FlatBus default must leave both simulators' results
    // untouched relative to an explicitly constructed FlatBus (and,
    // transitively, the seed AddressBus — see the replay test).
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("trfd", opts);
    OooConfig flat;
    flat.mem.model = MemModel::FlatBus;
    SimResult a = simulateOoo(t, OooConfig{});
    SimResult b = simulateOoo(t, flat);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.memBusyCycles, b.memBusyCycles);
    EXPECT_EQ(a.memBankConflicts, 0u);
    EXPECT_EQ(a.cacheMisses, 0u);
}

TEST(BankedMemory, UnitStrideStreamsMonotoneInBankCount)
{
    // The model-level invariant behind the membank figure: a
    // unit-stride address stream never drains slower with more
    // banks. (Whole-simulator cycle counts may wiggle a few cycles
    // from second-order issue-scheduling effects, so the strict
    // property is asserted here, on the model.)
    Cycle prev = kNoCycle;
    for (unsigned banks : {1u, 2u, 4u, 8u, 16u}) {
        auto mem = makeBanked(banks, 1, 4);
        Cycle end = 0;
        for (unsigned s = 0; s < 8; ++s) {
            MemAccess a =
                mem->reserve(end, 0x1000 + s * 0x4000, 8, 64);
            end = a.end;
        }
        EXPECT_LE(end, prev) << banks << " banks";
        prev = end;
    }
}

TEST(MemSystemSim, BankCountScalesOoovaPerformance)
{
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("swm256", opts);
    Cycle flat = simulateOoo(t, OooConfig{}).cycles;
    Cycle b1 = simulateOoo(t, makeBankedOooConfig(1)).cycles;
    Cycle b16 = simulateOoo(t, makeBankedOooConfig(16)).cycles;
    // One bank at a 4-cycle busy time roughly quarters the address
    // rate of this memory-bound program; 16 banks restore the flat
    // bus's performance to within a few percent.
    EXPECT_GT(b1, 2 * b16);
    EXPECT_LT(b16, flat + flat / 20);
}

TEST(MemSystemSim, BankConflictsSurfaceInResults)
{
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("su2cor", opts); // stride-2 kernels
    SimResult r = simulateOoo(t, makeBankedOooConfig(2));
    EXPECT_GT(r.memBankConflicts, 0u);
    EXPECT_GT(r.memConflictCycles, 0u);
}

TEST(MemSystemSim, CachedModelRunsBothSimulators)
{
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("hydro2d", opts);
    OooConfig ooo;
    ooo.mem = makeCachedMem();
    SimResult a = simulateOoo(t, ooo);
    EXPECT_GT(a.cycles, 0u);
    EXPECT_GT(a.cacheHits + a.cacheMisses, 0u);
    RefConfig ref;
    ref.mem = makeCachedMem();
    SimResult b = simulateRef(t, ref);
    EXPECT_GT(b.cycles, 0u);
    EXPECT_GT(b.cacheHits + b.cacheMisses, 0u);
}

TEST(MemSystemSim, CacheOverBankedBacking)
{
    GenOptions opts;
    opts.scale = 0.02;
    Trace t = makeBenchmarkTrace("flo52", opts);
    OooConfig cfg;
    cfg.mem = makeCachedMem(16 * 1024, 4, MemModel::Banked);
    cfg.mem.banks = 4;
    SimResult r = simulateOoo(t, cfg);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.cacheMisses, 0u);
}
