/**
 * @file
 * Pipeline-tracer tests: every in-limit instruction gets one
 * O3PipeView record, the record limit bounds the file, squashed
 * (trap-replayed) instructions are marked with a zero retire tick,
 * the trace text is independent of the sweep engine's thread count,
 * and attaching a tracer never changes simulated timing.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/pipetrace.hh"
#include "core/ooosim.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "harness/tracecache.hh"

using namespace oova;

namespace
{

constexpr double kScale = 0.25;

size_t
countLines(const std::string &text, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1))
        ++n;
    return n;
}

/** The first vector load in @p t at or after @p start. */
SeqNum
firstVectorLoadAfter(const Trace &t, SeqNum start)
{
    for (SeqNum i = start; i < t.size(); ++i)
        if (t[i].op == Opcode::VLoad)
            return i;
    return kNoSeq;
}

} // namespace

TEST(PipeTrace, OneRecordPerInstructionWithinLimit)
{
    Workloads w(kScale);
    const Trace &t = w.get("hydro2d");
    PipeTracer tracer;
    OooConfig cfg = makeOooConfig();
    cfg.pipeTracer = &tracer;
    SimResult r = simulateOoo(t, cfg);
    tracer.finish();

    // No traps on this run, so fetch count equals instruction
    // count: one record per instruction, none squashed.
    ASSERT_EQ(r.traps, 0u);
    EXPECT_EQ(tracer.recorded(), r.instructions);
    EXPECT_EQ(countLines(tracer.str(), "O3PipeView:fetch:"),
              r.instructions);
    EXPECT_EQ(countLines(tracer.str(), "O3PipeView:retire:"),
              r.instructions);
    EXPECT_EQ(countLines(tracer.str(), "O3PipeView:retire:0:"), 0u);
}

TEST(PipeTrace, LimitBoundsTheTrace)
{
    Workloads w(kScale);
    PipeTracer tracer(100);
    OooConfig cfg = makeOooConfig();
    cfg.pipeTracer = &tracer;
    simulateOoo(w.get("hydro2d"), cfg);
    tracer.finish();
    EXPECT_EQ(tracer.recorded(), 100u);
    EXPECT_EQ(countLines(tracer.str(), "O3PipeView:fetch:"), 100u);
}

TEST(PipeTrace, SquashedReplayGetsZeroRetireTick)
{
    Workloads w(kScale);
    const Trace &t = w.get("hydro2d");
    SeqNum victim = firstVectorLoadAfter(t, t.size() / 2);
    ASSERT_NE(victim, kNoSeq);

    PipeTracer tracer;
    OooConfig cfg = makeOooConfig(16, 16, 50, CommitMode::Late);
    cfg.pipeTracer = &tracer;
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult r = simulateOoo(t, cfg, fault);
    tracer.finish();

    ASSERT_EQ(r.traps, 1u);
    // The squash killed at least the faulting instruction; replays
    // get fresh records, so the trace holds more than one record
    // per committed instruction and at least one zero retire tick.
    EXPECT_GT(tracer.recorded(), r.instructions);
    EXPECT_GE(countLines(tracer.str(), "O3PipeView:retire:0:"), 1u);
}

TEST(PipeTrace, IndependentOfSweepThreadCount)
{
    // A traced job inside a parallel sweep must produce the same
    // bytes as in a serial one, regardless of what runs alongside.
    TraceCache traces(kScale);
    auto traceWith = [&](unsigned threads, PipeTracer &tracer) {
        std::vector<SweepJob> jobs;
        for (const char *prog : {"nasa7", "swm256", "trfd"})
            jobs.push_back(oooJob(prog, makeOooConfig()));
        OooConfig cfg = makeOooConfig();
        cfg.pipeTracer = &tracer;
        jobs.push_back(oooJob("hydro2d", cfg));
        SweepEngine engine(traces, threads);
        engine.run(jobs);
        tracer.finish();
    };
    PipeTracer one, many;
    traceWith(1, one);
    traceWith(8, many);
    EXPECT_GT(one.recorded(), 0u);
    EXPECT_EQ(one.str(), many.str());
}

TEST(PipeTrace, TracingIsObserveOnly)
{
    Workloads w(kScale);
    const Trace &t = w.get("bdna");
    OooConfig cfg = makeOooConfig();
    SimResult off = simulateOoo(t, cfg);
    PipeTracer tracer;
    cfg.pipeTracer = &tracer;
    SimResult on = simulateOoo(t, cfg);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.instructions, on.instructions);
    EXPECT_EQ(off.stallCycles, on.stallCycles);
}
