/**
 * @file
 * Tests for the in-order reference simulator: timing of the basic
 * structures (chaining rules, memory unit serialization, scalar
 * interlocks, branches) on small hand-built traces, plus
 * monotonicity properties.
 */

#include <gtest/gtest.h>

#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

RefConfig
cfgLat(unsigned lat)
{
    RefConfig cfg;
    cfg.lat.memLatency = lat;
    return cfg;
}

} // namespace

TEST(RefSim, EmptyTrace)
{
    SimResult r = simulateRef(Trace("empty"));
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.instructions, 0u);
}

TEST(RefSim, SingleVectorLoadTiming)
{
    Trace t("ld");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    RefConfig cfg = cfgLat(50);
    SimResult r = simulateRef(t, cfg);
    // startup + bus(64) ... data written [startup+50+wx, +64).
    Cycle expect = cfg.lat.vectorStartup + cfg.lat.memLatency +
                   cfg.lat.writeXbarVector + 64;
    EXPECT_EQ(r.cycles, expect);
    EXPECT_EQ(r.memRequests, 64u);
}

TEST(RefSim, LoadUseNotChained)
{
    // The consumer of a load must wait for the load to complete.
    Trace t("ld-use");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0), 64));
    RefConfig cfg = cfgLat(50);
    SimResult r = simulateRef(t, cfg);
    Cycle load_done = cfg.lat.vectorStartup + cfg.lat.memLatency +
                      cfg.lat.writeXbarVector + 64;
    EXPECT_GE(r.cycles, load_done + 64) << "add overlapped the load";
}

TEST(RefSim, FuToFuChainingWorks)
{
    // Dependent arithmetic should overlap nearly completely.
    Trace t("chain");
    t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0), 64));
    t.push(makeVArith(Opcode::VAdd, vReg(2), vReg(1), vReg(1), 64));
    SimResult r = simulateRef(t, cfgLat(50));
    // Unchained would be ~2*(lat+64); chained ~lat+smallconst+64.
    EXPECT_LT(r.cycles, 2 * 64u);
}

TEST(RefSim, ChainLoadsConfigRestoresOverlap)
{
    Trace t("ld-use");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0), 64));
    RefConfig no_chain = cfgLat(50);
    RefConfig chain = cfgLat(50);
    chain.chainLoadsToFus = true;
    EXPECT_LT(simulateRef(t, chain).cycles,
              simulateRef(t, no_chain).cycles);
}

TEST(RefSim, MemUnitSerializesVectorMemOps)
{
    Trace t("two-loads");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVLoad(vReg(1), aReg(0), 0x9000, 8, 64));
    SimResult r = simulateRef(t, cfgLat(50));
    // The second load's address phase starts after the first's.
    EXPECT_GE(r.memBusyCycles, 128u);
    EXPECT_GE(r.cycles, 128u + 50u);
}

TEST(RefSim, Fu2OnlyOpsSerializeOnFu2)
{
    Trace t("two-muls");
    t.push(makeVArith(Opcode::VMul, vReg(1), vReg(0), vReg(0), 64));
    t.push(makeVArith(Opcode::VMul, vReg(2), vReg(0), vReg(0), 64));
    SimResult r = simulateRef(t, cfgLat(1));
    EXPECT_GE(r.cycles, 2 * 64u);
    EXPECT_EQ(r.fu1BusyCycles, 0u);
    EXPECT_GE(r.fu2BusyCycles, 2 * 64u);
}

TEST(RefSim, MixedOpsUseBothFus)
{
    Trace t("mul-add");
    t.push(makeVArith(Opcode::VMul, vReg(1), vReg(0), vReg(0), 64));
    t.push(makeVArith(Opcode::VAdd, vReg(2), vReg(0), vReg(0), 64));
    SimResult r = simulateRef(t, cfgLat(1));
    EXPECT_GT(r.fu1BusyCycles, 0u);
    EXPECT_GT(r.fu2BusyCycles, 0u);
    EXPECT_LT(r.cycles, 2 * 65u) << "add should run on FU1 in parallel";
}

TEST(RefSim, ScalarInterlock)
{
    Trace t("s-chain");
    t.push(makeScalar(Opcode::SAdd, sReg(1), sReg(0)));
    t.push(makeScalar(Opcode::SAdd, sReg(2), sReg(1)));
    t.push(makeScalar(Opcode::SAdd, sReg(3), sReg(2)));
    RefConfig cfg = cfgLat(1);
    SimResult r = simulateRef(t, cfg);
    unsigned per_op = cfg.lat.addLogic + cfg.lat.writeXbarScalar;
    EXPECT_GE(r.cycles, 2 * per_op);
    EXPECT_GT(r.stallCycles[static_cast<unsigned>(
                  StallCause::ScalarDep)],
              0u);
}

TEST(RefSim, TakenBranchPenalty)
{
    Trace nt("not-taken");
    nt.push(makeBranch(aReg(0), false, 0x0));
    nt.push(makeScalar(Opcode::SMove, sReg(0), RegId()));
    Trace tk("taken");
    tk.push(makeBranch(aReg(0), true, 0x0));
    tk.push(makeScalar(Opcode::SMove, sReg(0), RegId()));
    RefConfig cfg = cfgLat(1);
    EXPECT_GT(simulateRef(tk, cfg).cycles,
              simulateRef(nt, cfg).cycles);
}

TEST(RefSim, ScalarLoadLatency)
{
    Trace t("sload-use");
    t.push(makeSLoad(sReg(0), aReg(0), 0x1000));
    t.push(makeScalar(Opcode::SAdd, sReg(1), sReg(0)));
    RefConfig cfg = cfgLat(50);
    SimResult r = simulateRef(t, cfg);
    EXPECT_GE(r.cycles, cfg.lat.memLatency);
    EXPECT_EQ(r.memRequests, 1u);
}

TEST(RefSim, StoreChainsFromProducer)
{
    Trace t("fu-store");
    t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0), 64));
    t.push(makeVStore(vReg(1), aReg(0), 0x1000, 8, 64));
    SimResult r = simulateRef(t, cfgLat(1));
    // With FU->store chaining, total stays well under serial time.
    EXPECT_LT(r.cycles, 2 * 64u + 20u);
}

TEST(RefSim, PortConflictsCostWhenEnabled)
{
    // Same-bank sources conflict only when port modeling is on.
    Trace t("ports");
    t.push(makeVArith(Opcode::VAdd, vReg(2), vReg(0), vReg(1), 64));
    t.push(makeVArith(Opcode::VLogic, vReg(4), vReg(0), vReg(1), 64));
    RefConfig off = cfgLat(1);
    RefConfig on = cfgLat(1);
    on.modelPortConflicts = true;
    EXPECT_GE(simulateRef(t, on).cycles, simulateRef(t, off).cycles);
}

TEST(RefSim, GatherWaitsForFullIndex)
{
    Trace t("gather");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64)); // index load
    DynInst g;
    g.op = Opcode::VGather;
    g.dst = vReg(1);
    g.addSrc(vReg(0));
    g.addSrc(aReg(0));
    g.vl = 64;
    g.addr = 0x8000;
    g.regionBytes = 0x1000;
    t.push(g);
    RefConfig cfg = cfgLat(50);
    SimResult r = simulateRef(t, cfg);
    // Index complete at ~1+50+2+64; gather bus then 64 more.
    EXPECT_GE(r.cycles, 50u + 64u + 64u);
}

// ---- properties over the benchmark set -------------------------

class RefSimProperties : public ::testing::TestWithParam<std::string>
{
  protected:
    Trace
    trace()
    {
        GenOptions small;
        small.scale = 0.2;
        return makeBenchmarkTrace(GetParam(), small);
    }
};

TEST_P(RefSimProperties, LatencyMonotonicity)
{
    Trace t = trace();
    Cycle prev = 0;
    for (unsigned lat : {1u, 20u, 50u, 100u}) {
        Cycle c = simulateRef(t, cfgLat(lat)).cycles;
        EXPECT_GE(c, prev) << "latency " << lat;
        prev = c;
    }
}

TEST_P(RefSimProperties, BusAccountingConsistent)
{
    Trace t = trace();
    SimResult r = simulateRef(t, cfgLat(50));
    // Every memory element request occupies exactly one bus cycle.
    EXPECT_EQ(r.memBusyCycles, r.memRequests);
    EXPECT_LE(r.memBusyCycles, r.cycles);
    // State breakdown must partition all cycles.
    uint64_t sum = 0;
    for (auto v : r.stateCycles)
        sum += v;
    EXPECT_EQ(sum, r.cycles);
}

TEST_P(RefSimProperties, PortModelOnlyAddsCycles)
{
    Trace t = trace();
    RefConfig off = cfgLat(50);
    RefConfig on = cfgLat(50);
    on.modelPortConflicts = true;
    EXPECT_GE(simulateRef(t, on).cycles, simulateRef(t, off).cycles);
}

INSTANTIATE_TEST_SUITE_P(AllTen, RefSimProperties,
                         ::testing::ValuesIn(benchmarkNames()));
