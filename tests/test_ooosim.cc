/**
 * @file
 * Tests for the OOOVA simulator: out-of-order memory overlap,
 * renaming effects, queue/ROB limits, commit models, branch
 * prediction, and liveness/termination properties across a broad
 * configuration sweep.
 */

#include <gtest/gtest.h>

#include "core/ooosim.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

OooConfig
cfg(unsigned vregs = 16, unsigned qsize = 16, unsigned lat = 50,
    CommitMode commit = CommitMode::Early,
    LoadElimMode elim = LoadElimMode::None)
{
    OooConfig c;
    c.lat.memLatency = lat;
    c.numPhysVRegs = vregs;
    c.queueSize = qsize;
    c.commit = commit;
    c.loadElim = elim;
    return c;
}

Trace
independentLoads(int n, uint16_t vl)
{
    Trace t("loads");
    for (int i = 0; i < n; ++i)
        t.push(makeVLoad(vReg(static_cast<uint8_t>(i % 8)), aReg(0),
                         0x10000 + static_cast<Addr>(i) * 0x10000, 8,
                         vl));
    return t;
}

} // namespace

TEST(OooSim, EmptyTrace)
{
    SimResult r = simulateOoo(Trace("empty"), cfg());
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.instructions, 0u);
}

TEST(OooSim, CommitsEveryInstruction)
{
    Trace t = independentLoads(20, 32);
    SimResult r = simulateOoo(t, cfg());
    EXPECT_EQ(r.instructions, t.size());
}

TEST(OooSim, IndependentLoadsPipelineOnTheBus)
{
    // n loads of vl elements should take ~n*vl bus cycles plus one
    // latency, not n*(latency+vl).
    Trace t = independentLoads(8, 64);
    SimResult r = simulateOoo(t, cfg(16, 16, 100));
    EXPECT_LT(r.cycles, 8 * (100u + 64u));
    EXPECT_GE(r.cycles, 8 * 64u);
}

TEST(OooSim, RenamingRemovesWawSerialization)
{
    // All loads write the SAME logical register: without renaming
    // they would serialize completely; with renaming they pipeline.
    Trace t("waw");
    for (int i = 0; i < 8; ++i)
        t.push(makeVLoad(vReg(0), aReg(0),
                         0x10000 + static_cast<Addr>(i) * 0x10000, 8,
                         64));
    SimResult r = simulateOoo(t, cfg(16, 16, 100));
    EXPECT_LT(r.cycles, 4 * (100u + 64u));
}

TEST(OooSim, FewPhysRegsThrottle)
{
    // Under late commit a register is only recycled once its
    // redefiner completes, so 9 physical registers serialize the
    // load stream while 64 let it pipeline.
    Trace t("waw");
    for (int i = 0; i < 16; ++i)
        t.push(makeVLoad(vReg(0), aReg(0),
                         0x10000 + static_cast<Addr>(i) * 0x10000, 8,
                         64));
    Cycle nine =
        simulateOoo(t, cfg(9, 16, 100, CommitMode::Late)).cycles;
    Cycle sixty_four =
        simulateOoo(t, cfg(64, 16, 100, CommitMode::Late)).cycles;
    EXPECT_GT(nine, sixty_four);
}

TEST(OooSim, MemoryDisambiguationBlocksOverlap)
{
    // store [0x1000..] then load [0x1000..]: the load must wait.
    Trace t("st-ld");
    t.push(makeVStore(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVLoad(vReg(1), aReg(0), 0x1000, 8, 64));
    SimResult conflict = simulateOoo(t, cfg(16, 16, 50));

    Trace u("st-ld-disjoint");
    u.push(makeVStore(vReg(0), aReg(0), 0x1000, 8, 64));
    u.push(makeVLoad(vReg(1), aReg(0), 0x90000, 8, 64));
    SimResult disjoint = simulateOoo(u, cfg(16, 16, 50));
    EXPECT_GE(conflict.cycles, disjoint.cycles);
}

TEST(OooSim, LoadsBypassBlockedStores)
{
    // A store waiting on its (slow) data must not block an
    // independent younger load from issuing to memory.
    Trace t("bypass");
    t.push(makeVLoad(vReg(2), aReg(0), 0x50000, 8, 128)); // slow data
    t.push(makeVArith(Opcode::VMul, vReg(3), vReg(2), vReg(2), 128));
    t.push(makeVStore(vReg(3), aReg(0), 0x1000, 8, 128));
    t.push(makeVLoad(vReg(1), aReg(0), 0x90000, 8, 64));
    SimResult r = simulateOoo(t, cfg(16, 16, 50));
    // If the younger load had to wait for the store, the bus would
    // be idle for the mul's full latency; total would exceed this.
    EXPECT_LT(r.cycles, 128u + 50u + 128u + 50u + 128u + 64u + 50u);
}

TEST(OooSim, LateCommitNeverFasterThanEarly)
{
    GenOptions small;
    small.scale = 0.2;
    for (const auto &name : benchmarkNames()) {
        Trace t = makeBenchmarkTrace(name, small);
        Cycle early =
            simulateOoo(t, cfg(16, 16, 50, CommitMode::Early)).cycles;
        Cycle late =
            simulateOoo(t, cfg(16, 16, 50, CommitMode::Late)).cycles;
        EXPECT_GE(late, early) << name;
    }
}

TEST(OooSim, StoreAtHeadSerializesUnderLateCommit)
{
    // store then dependent-by-address load, cross iteration style.
    Trace t("head");
    for (int i = 0; i < 6; ++i) {
        t.push(makeVArith(Opcode::VAdd, vReg(0), vReg(1), vReg(1),
                          64));
        t.push(makeVStore(vReg(0), aReg(0), 0x1000, 8, 64));
        t.push(makeVLoad(vReg(2), aReg(0), 0x1000, 8, 64));
    }
    Cycle early =
        simulateOoo(t, cfg(16, 16, 50, CommitMode::Early)).cycles;
    Cycle late =
        simulateOoo(t, cfg(16, 16, 50, CommitMode::Late)).cycles;
    EXPECT_GT(late, early);
}

TEST(OooSim, QueueDepthNeverHurts)
{
    GenOptions small;
    small.scale = 0.2;
    for (const auto &name : {"swm256", "trfd", "dyfesm"}) {
        Trace t = makeBenchmarkTrace(name, small);
        Cycle q16 = simulateOoo(t, cfg(16, 16, 50)).cycles;
        Cycle q128 = simulateOoo(t, cfg(16, 128, 50)).cycles;
        EXPECT_LE(q128, q16 + q16 / 50) << name;
    }
}

TEST(OooSim, BranchMispredictsCostCycles)
{
    // Alternating branch pattern defeats the 2-bit counter.
    Trace flip("flip");
    for (int i = 0; i < 40; ++i) {
        flip.push(makeScalar(Opcode::SAdd, aReg(0), aReg(0)));
        DynInst br = makeBranch(aReg(0), i % 2 == 0, 0x40);
        br.pc = 0x100; // same static branch
        flip.push(br);
    }
    Trace steady("steady");
    for (int i = 0; i < 40; ++i) {
        steady.push(makeScalar(Opcode::SAdd, aReg(0), aReg(0)));
        DynInst br = makeBranch(aReg(0), true, 0x40);
        br.pc = 0x100;
        steady.push(br);
    }
    SimResult rf = simulateOoo(flip, cfg(16, 16, 1));
    SimResult rs = simulateOoo(steady, cfg(16, 16, 1));
    EXPECT_GT(rf.branchMispredicts, rs.branchMispredicts);
    EXPECT_GT(rf.cycles, rs.cycles);
}

TEST(OooSim, ReturnStackPredictsCallRet)
{
    Trace t("callret");
    for (int i = 0; i < 10; ++i) {
        DynInst call = makeCall(0x1000);
        call.pc = 0x100 + static_cast<Addr>(i) * 0x500;
        t.push(call);
        t.push(makeScalar(Opcode::SAdd, aReg(0), aReg(0)));
        DynInst ret = makeRet(call.pc + 4);
        ret.pc = 0x1000 + 0x40;
        t.push(ret);
    }
    SimResult r = simulateOoo(t, cfg());
    EXPECT_EQ(r.branchMispredicts, 0u)
        << "returns should be predicted by the return stack";
}

TEST(OooSim, VReduceProducesScalarForDependentOp)
{
    Trace t("reduce");
    DynInst red = makeVArith(Opcode::VReduce, sReg(0), vReg(0),
                             RegId(), 64);
    t.push(red);
    t.push(makeScalar(Opcode::SAdd, sReg(1), sReg(0)));
    SimResult r = simulateOoo(t, cfg(16, 16, 1));
    EXPECT_GE(r.cycles, 64u); // reduction consumes all elements
    EXPECT_EQ(r.instructions, 2u);
}

TEST(OooSim, ChainingAblationSlowsDependentLoads)
{
    Trace t("ld-use");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 128));
    t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0), 128));
    OooConfig chain = cfg(16, 16, 50);
    chain.chainLoadsToFus = true;
    OooConfig no_chain = cfg(16, 16, 50);
    no_chain.chainLoadsToFus = false;
    EXPECT_LT(simulateOoo(t, chain).cycles,
              simulateOoo(t, no_chain).cycles);
}

TEST(OooSim, ReadPortSerializesSharedOperand)
{
    // Two independent ops read the same register: its single read
    // port forces them apart even though FU1 and FU2 are both free.
    Trace t("shared");
    t.push(makeVArith(Opcode::VAdd, vReg(1), vReg(0), vReg(0), 64));
    t.push(makeVArith(Opcode::VLogic, vReg(2), vReg(0), vReg(0), 64));
    SimResult r = simulateOoo(t, cfg(16, 16, 1));
    EXPECT_GE(r.cycles, 2 * 64u);
}

TEST(OooSim, CommitWidthBoundsThroughput)
{
    Trace t("scalars");
    for (int i = 0; i < 200; ++i)
        t.push(makeScalar(Opcode::SMove, sReg(0), RegId()));
    OooConfig narrow = cfg();
    narrow.commitWidth = 1;
    OooConfig wide = cfg();
    wide.commitWidth = 8;
    EXPECT_GE(simulateOoo(t, narrow).cycles,
              simulateOoo(t, wide).cycles);
}

// ---- the big liveness/correctness sweep -------------------------

struct SweepParam
{
    std::string bench;
    unsigned vregs;
    unsigned qsize;
    unsigned lat;
    CommitMode commit;
    LoadElimMode elim;
};

class OooSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(OooSweep, TerminatesAndCommitsEverything)
{
    const SweepParam &p = GetParam();
    GenOptions small;
    small.scale = 0.15;
    Trace t = makeBenchmarkTrace(p.bench, small);
    SimResult r = simulateOoo(
        t, cfg(p.vregs, p.qsize, p.lat, p.commit, p.elim));
    EXPECT_EQ(r.instructions, t.size());
    EXPECT_GT(r.cycles, 0u);
    // The bus can never be busier than total time.
    EXPECT_LE(r.memBusyCycles, r.cycles);
    // State breakdown partitions time.
    uint64_t sum = 0;
    for (auto v : r.stateCycles)
        sum += v;
    EXPECT_EQ(sum, r.cycles);
}

static std::vector<SweepParam>
sweepParams()
{
    std::vector<SweepParam> out;
    for (const char *b : {"swm256", "trfd", "dyfesm", "bdna"})
        for (unsigned vr : {9u, 12u, 64u})
            for (CommitMode cm : {CommitMode::Early, CommitMode::Late})
                for (LoadElimMode le :
                     {LoadElimMode::None, LoadElimMode::Sle,
                      LoadElimMode::SleVle}) {
                    out.push_back({b, vr, 16u, 50u, cm, le});
                }
    // Queue and latency extremes on one program.
    for (unsigned q : {4u, 128u})
        for (unsigned lat : {1u, 100u})
            out.push_back({"nasa7", 16u, q, lat, CommitMode::Early,
                           LoadElimMode::None});
    return out;
}

static std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const SweepParam &p = info.param;
    std::string n = p.bench + "_r" + std::to_string(p.vregs) + "_q" +
                    std::to_string(p.qsize) + "_l" +
                    std::to_string(p.lat);
    n += p.commit == CommitMode::Early ? "_early" : "_late";
    if (p.elim == LoadElimMode::Sle)
        n += "_sle";
    else if (p.elim == LoadElimMode::SleVle)
        n += "_slevle";
    return n;
}

INSTANTIATE_TEST_SUITE_P(Configs, OooSweep,
                         ::testing::ValuesIn(sweepParams()),
                         sweepName);
