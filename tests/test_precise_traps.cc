/**
 * @file
 * Tests for the precise-trap machinery (paper section 5): fault
 * injection on loads and stores, squash + rename rollback, replay,
 * and full-program recovery under every load-elimination mode.
 */

#include <gtest/gtest.h>

#include "core/ooosim.hh"
#include "tgen/benchmarks.hh"

using namespace oova;

namespace
{

OooConfig
lateCfg(LoadElimMode elim = LoadElimMode::None)
{
    OooConfig c;
    c.lat.memLatency = 50;
    c.numPhysVRegs = 16;
    c.commit = CommitMode::Late;
    c.loadElim = elim;
    return c;
}

Trace
loopTrace()
{
    GenOptions small;
    small.scale = 0.15;
    return makeBenchmarkTrace("swm256", small);
}

SeqNum
firstVectorLoadAfter(const Trace &t, SeqNum start)
{
    for (SeqNum i = start; i < t.size(); ++i)
        if (t[i].op == Opcode::VLoad)
            return i;
    return kNoSeq;
}

} // namespace

TEST(PreciseTraps, FaultingLoadReplaysAndCompletes)
{
    Trace t = loopTrace();
    SeqNum victim = firstVectorLoadAfter(t, t.size() / 2);
    ASSERT_NE(victim, kNoSeq);

    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult r = simulateOoo(t, lateCfg(), fault);
    EXPECT_EQ(r.traps, 1u);
    // Squashed instructions re-execute; every instruction commits
    // exactly once overall.
    EXPECT_EQ(r.instructions, t.size());
}

TEST(PreciseTraps, TrapCostsCycles)
{
    Trace t = loopTrace();
    SeqNum victim = firstVectorLoadAfter(t, t.size() / 2);
    SimResult clean = simulateOoo(t, lateCfg());
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult faulted = simulateOoo(t, lateCfg(), fault);
    EXPECT_GT(faulted.cycles, clean.cycles);
}

TEST(PreciseTraps, FaultOnStore)
{
    Trace t = loopTrace();
    SeqNum victim = kNoSeq;
    for (SeqNum i = t.size() / 3; i < t.size(); ++i)
        if (t[i].op == Opcode::VStore) {
            victim = i;
            break;
        }
    ASSERT_NE(victim, kNoSeq);
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult r = simulateOoo(t, lateCfg(), fault);
    EXPECT_EQ(r.traps, 1u);
    EXPECT_EQ(r.instructions, t.size());
}

TEST(PreciseTraps, FaultOnScalarLoad)
{
    Trace t = loopTrace();
    SeqNum victim = kNoSeq;
    for (SeqNum i = 10; i < t.size(); ++i)
        if (t[i].op == Opcode::SLoad) {
            victim = i;
            break;
        }
    ASSERT_NE(victim, kNoSeq);
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult r = simulateOoo(t, lateCfg(), fault);
    EXPECT_EQ(r.traps, 1u);
    EXPECT_EQ(r.instructions, t.size());
}

TEST(PreciseTraps, FaultOnVeryFirstMemoryOp)
{
    Trace t = loopTrace();
    SeqNum victim = kNoSeq;
    for (SeqNum i = 0; i < t.size(); ++i)
        if (t[i].isMem()) {
            victim = i;
            break;
        }
    ASSERT_NE(victim, kNoSeq);
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult r = simulateOoo(t, lateCfg(), fault);
    EXPECT_EQ(r.traps, 1u);
    EXPECT_EQ(r.instructions, t.size());
}

/** Recovery must work with load elimination active, too. */
class TrapsUnderElim
    : public ::testing::TestWithParam<LoadElimMode>
{
};

TEST_P(TrapsUnderElim, RecoversCleanly)
{
    Trace t = loopTrace();
    SeqNum victim = firstVectorLoadAfter(t, t.size() / 2);
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult r = simulateOoo(t, lateCfg(GetParam()), fault);
    EXPECT_EQ(r.traps, 1u);
    EXPECT_EQ(r.instructions, t.size());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, TrapsUnderElim,
    ::testing::Values(LoadElimMode::None, LoadElimMode::Sle,
                      LoadElimMode::SleVle));

/** Sweep fault positions through a whole small program. */
class TrapPosition : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TrapPosition, AnyMemoryOpCanFault)
{
    GenOptions tiny;
    tiny.scale = 0.1;
    Trace t = makeBenchmarkTrace("dyfesm", tiny);
    // Pick the Nth memory instruction as the victim.
    unsigned target = GetParam();
    SeqNum victim = kNoSeq;
    unsigned seen = 0;
    for (SeqNum i = 0; i < t.size(); ++i) {
        if (t[i].isMem() && seen++ == target) {
            victim = i;
            break;
        }
    }
    ASSERT_NE(victim, kNoSeq);
    FaultInjection fault;
    fault.faultSeq = victim;
    SimResult r = simulateOoo(t, lateCfg(LoadElimMode::SleVle), fault);
    EXPECT_EQ(r.traps, 1u);
    EXPECT_EQ(r.instructions, t.size());
}

INSTANTIATE_TEST_SUITE_P(Positions, TrapPosition,
                         ::testing::Values(0u, 3u, 17u, 101u, 500u));
