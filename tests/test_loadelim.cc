/**
 * @file
 * Tests for dynamic load elimination (paper section 6): vector tag
 * matching, store invalidation, spill-reload elimination, scalar
 * bypass, and traffic accounting.
 */

#include <gtest/gtest.h>

#include "core/ooosim.hh"
#include "tgen/benchmarks.hh"
#include "trace/trace_stats.hh"

using namespace oova;

namespace
{

OooConfig
vleCfg(unsigned vregs = 32, LoadElimMode mode = LoadElimMode::SleVle)
{
    OooConfig c;
    c.lat.memLatency = 50;
    c.numPhysVRegs = vregs;
    c.commit = CommitMode::Late;
    c.loadElim = mode;
    return c;
}

} // namespace

TEST(LoadElim, RepeatedVectorLoadEliminated)
{
    // Load the same region twice with identical shape: the second
    // load must be satisfied by renaming.
    Trace t("repeat");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVLoad(vReg(1), aReg(0), 0x1000, 8, 64));
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 1u);
    EXPECT_EQ(r.memRequests, 64u) << "second load hit the bus";
}

TEST(LoadElim, ShapeMismatchPreventsElimination)
{
    // Same base address but different vector length: not an exact
    // 6-tuple match, so no elimination.
    Trace t("mismatch");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVLoad(vReg(1), aReg(0), 0x1000, 8, 32));
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 0u);
    EXPECT_EQ(r.memRequests, 96u);
}

TEST(LoadElim, StrideMismatchPreventsElimination)
{
    Trace t("stride");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVLoad(vReg(1), aReg(0), 0x1000, 16, 64));
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 0u);
}

TEST(LoadElim, StoreTagAllowsForwarding)
{
    // A store tags its data register; a later load of the same
    // region maps onto it without touching memory.
    Trace t("fwd");
    t.push(makeVArith(Opcode::VAdd, vReg(0), vReg(1), vReg(1), 64));
    t.push(makeVStore(vReg(0), aReg(0), 0x2000, 8, 64));
    t.push(makeVLoad(vReg(2), aReg(0), 0x2000, 8, 64));
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 1u);
    EXPECT_EQ(r.memRequests, 64u) << "only the store's traffic";
}

TEST(LoadElim, InterveningStoreInvalidatesTag)
{
    // A store overlapping the tagged region must kill the tag.
    Trace t("clobber");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVStore(vReg(3), aReg(0), 0x1100, 8, 8)); // overlaps
    t.push(makeVLoad(vReg(1), aReg(0), 0x1000, 8, 64));
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 0u);
}

TEST(LoadElim, DisjointStoreKeepsTag)
{
    Trace t("disjoint");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVStore(vReg(3), aReg(0), 0x90000, 8, 8));
    t.push(makeVLoad(vReg(1), aReg(0), 0x1000, 8, 64));
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 1u);
}

TEST(LoadElim, ScalarStoreInvalidatesVectorTag)
{
    // Cross-class consistency (section 6.1).
    Trace t("cross");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeSStore(sReg(0), aReg(0), 0x1008));
    t.push(makeVLoad(vReg(1), aReg(0), 0x1000, 8, 64));
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 0u);
}

TEST(LoadElim, RedefinitionInvalidatesTag)
{
    // Overwriting the tagged register invalidates its tag: the
    // second load of the region must not match stale contents.
    Trace t("redefine");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVArith(Opcode::VAdd, vReg(0), vReg(1), vReg(1), 64));
    t.push(makeVLoad(vReg(2), aReg(0), 0x1000, 8, 64));
    SimResult r = simulateOoo(t, vleCfg(64));
    // The tag lives on the physical register, which is renamed away
    // rather than overwritten, so the match is still legal here.
    // What matters is that the run is consistent and terminates.
    EXPECT_EQ(r.instructions, 3u);
}

TEST(LoadElim, ScalarBypassStoreToLoad)
{
    Trace t("sbypass");
    t.push(makeScalar(Opcode::SAdd, sReg(0), sReg(1)));
    t.push(makeSStore(sReg(0), aReg(0), 0x3000, true));
    t.push(makeSLoad(sReg(2), aReg(0), 0x3000, true));
    t.push(makeScalar(Opcode::SAdd, sReg(3), sReg(2)));
    SimResult sle = simulateOoo(t, vleCfg(32, LoadElimMode::Sle));
    SimResult base = simulateOoo(t, vleCfg(32, LoadElimMode::None));
    EXPECT_EQ(sle.scalarLoadsEliminated, 1u);
    EXPECT_LT(sle.cycles, base.cycles);
    EXPECT_EQ(sle.memRequests + 1, base.memRequests);
}

TEST(LoadElim, SleModeDoesNotTouchVectors)
{
    Trace t("slevec");
    t.push(makeVLoad(vReg(0), aReg(0), 0x1000, 8, 64));
    t.push(makeVLoad(vReg(1), aReg(0), 0x1000, 8, 64));
    SimResult r = simulateOoo(t, vleCfg(32, LoadElimMode::Sle));
    EXPECT_EQ(r.vectorLoadsEliminated, 0u);
}

TEST(LoadElim, GatherNeverEliminated)
{
    Trace t("gather");
    DynInst g;
    g.op = Opcode::VGather;
    g.dst = vReg(1);
    g.addSrc(vReg(0));
    g.addSrc(aReg(0));
    g.vl = 64;
    g.addr = 0x8000;
    g.regionBytes = 0x1000;
    t.push(g);
    DynInst g2 = g;
    g2.dst = vReg(2);
    t.push(g2);
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 0u);
}

TEST(LoadElim, SpillReloadPairEliminated)
{
    // The paper's headline use: a spill store followed by its
    // reload becomes a rename.
    Trace t("spill");
    t.push(makeVArith(Opcode::VAdd, vReg(0), vReg(1), vReg(1), 48));
    t.push(makeVStore(vReg(0), aReg(6), 0x70000000, 8, 48, true));
    t.push(makeVArith(Opcode::VAdd, vReg(0), vReg(2), vReg(2), 48));
    t.push(makeVLoad(vReg(3), aReg(6), 0x70000000, 8, 48, true));
    SimResult r = simulateOoo(t, vleCfg());
    EXPECT_EQ(r.vectorLoadsEliminated, 1u);
}

TEST(LoadElim, EliminationScalesWithPhysRegs)
{
    // More physical registers keep more tags alive (paper: 32 regs
    // capture most of the opportunity).
    GenOptions small;
    small.scale = 0.3;
    Trace t = makeBenchmarkTrace("arc2d", small);
    uint64_t at9 = simulateOoo(t, vleCfg(9)).vectorLoadsEliminated;
    uint64_t at32 = simulateOoo(t, vleCfg(32)).vectorLoadsEliminated;
    EXPECT_GE(at32, at9);
    EXPECT_GT(at32, 0u);
}

class LoadElimProperties
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LoadElimProperties, NeverIncreasesTrafficOrCycles)
{
    GenOptions small;
    small.scale = 0.2;
    Trace t = makeBenchmarkTrace(GetParam(), small);
    SimResult base = simulateOoo(t, vleCfg(32, LoadElimMode::None));
    SimResult sle = simulateOoo(t, vleCfg(32, LoadElimMode::Sle));
    SimResult vle = simulateOoo(t, vleCfg(32, LoadElimMode::SleVle));
    EXPECT_LE(sle.memRequests, base.memRequests) << "SLE";
    EXPECT_LE(vle.memRequests, sle.memRequests) << "VLE";
    // Cycles may wobble slightly from pipeline re-timing, but must
    // not regress meaningfully.
    EXPECT_LE(vle.cycles, base.cycles + base.cycles / 20)
        << GetParam();
}

TEST_P(LoadElimProperties, EliminatedLoadsMatchTrafficDelta)
{
    GenOptions small;
    small.scale = 0.2;
    Trace t = makeBenchmarkTrace(GetParam(), small);
    SimResult base = simulateOoo(t, vleCfg(32, LoadElimMode::None));
    SimResult vle = simulateOoo(t, vleCfg(32, LoadElimMode::SleVle));
    // Every eliminated scalar load saves 1 request; vector loads
    // save their vl. The exact element sum is checked loosely: the
    // delta must be at least the eliminated instruction count.
    uint64_t delta = base.memRequests - vle.memRequests;
    EXPECT_GE(delta, vle.vectorLoadsEliminated +
                         vle.scalarLoadsEliminated);
}

INSTANTIATE_TEST_SUITE_P(AllTen, LoadElimProperties,
                         ::testing::ValuesIn(benchmarkNames()));
