/**
 * @file
 * Execution backends for the sweep engine: figures declare *what*
 * to run (a batch of SweepJobs), a backend decides *how*.
 *
 *   InProcessBackend  worker threads in this process (the default;
 *                     byte-identical to the original engine).
 *   ForkedBackend     N forked worker processes, results streamed
 *                     back over pipes with a length-prefixed frame
 *                     protocol and merged in submission order.
 *   StoreBackend      decorator: consults a content-addressed
 *                     ResultStore first, delegates only the misses
 *                     to the wrapped backend, persists their
 *                     results.
 *
 * Every backend returns outcomes index-aligned with the submitted
 * jobs, so figure output is byte-identical whichever backend (and
 * whatever parallelism) ran the sweep — that invariant is what lets
 * the golden-figure gate double as the farm's correctness net.
 */

#ifndef OOVA_HARNESS_BACKEND_HH
#define OOVA_HARNESS_BACKEND_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/resultstore.hh"
#include "harness/sweep.hh"

namespace oova
{

class SweepTraceLog;

/** One job's execution outcome, index-aligned with the batch. */
struct JobOutcome
{
    SimResult result;
    /** Worker wall time (store hits: the load is effectively free). */
    double wallMs = 0.0;
    /** Served from the ResultStore instead of simulated. */
    bool fromStore = false;
};

/** How a backend executes a batch. See the file comment. */
class SweepBackend
{
  public:
    virtual ~SweepBackend() = default;

    /**
     * Execute all of @p jobs; outcome i belongs to job i regardless
     * of completion order. Figures run batches serially from one
     * thread; run() itself may fan out however it likes.
     */
    virtual std::vector<JobOutcome>
    run(const std::vector<SweepJob> &jobs) = 0;

    /** Worker parallelism (threads or processes). */
    virtual unsigned parallelism() const = 0;

    /** Human-readable description, e.g. "in-process x8". */
    virtual std::string describe() const = 0;

    /**
     * Install a per-job completion callback (jobs done, batch
     * size), invoked concurrently from workers — must be
     * thread-safe. Never called when unset.
     */
    virtual void
    setProgress(std::function<void(size_t, size_t)> cb)
    {
        progress_ = std::move(cb);
    }

    /**
     * Install a span sink for --perfetto (nullptr detaches). The
     * log must outlive every subsequent run(); backends record one
     * span per executed job plus spans for their internal batch
     * phases. Never consulted when unset, so the default costs
     * nothing.
     */
    virtual void setTraceLog(SweepTraceLog *log) { traceLog_ = log; }

    /**
     * Fault-recovery counters accumulated across run() calls.
     * Backends without failure modes report all zeros.
     */
    virtual SweepFaultStats faultStats() const { return {}; }

  protected:
    std::function<void(size_t, size_t)> progress_;
    SweepTraceLog *traceLog_ = nullptr;
};

/**
 * Resolve and run one job on the calling thread: look the trace up,
 * simulate, stamp the program label, time it. The unit of work every
 * backend is built from.
 */
JobOutcome runSweepJob(const TraceCache &traces, const SweepJob &job);

/** The original thread-pool execution, behind the backend API. */
class InProcessBackend : public SweepBackend
{
  public:
    /**
     * @param traces  shared trace cache (must outlive the backend)
     * @param threads worker count; 0 means hardware concurrency
     */
    explicit InProcessBackend(const TraceCache &traces,
                              unsigned threads = 0);

    std::vector<JobOutcome>
    run(const std::vector<SweepJob> &jobs) override;
    unsigned parallelism() const override { return threads_; }
    std::string describe() const override;

  private:
    const TraceCache &traces_;
    unsigned threads_;
};

/**
 * Fork-based sharding with worker supervision. Job i initially runs
 * in worker (i mod N); the parent generates every named trace before
 * forking, so workers inherit the trace pages copy-on-write instead
 * of regenerating them. Each worker streams
 * [u32 len][u64 idx][u64 wallUs][u64 vio][toJson() payload] frames
 * back over its pipe (vio = the job's invariant-audit violation
 * delta, folded into the parent's tally per frame so no tally is
 * lost with a dying worker), ending with a zero-length sentinel
 * frame.
 *
 * The parent is a single-threaded poll() supervisor over nonblocking
 * pipes: it detects worker death (EOF / waitpid), protocol breakage
 * (torn or garbage frames) and stalls (--job-timeout-ms wall-clock
 * watchdog), requeues the lost worker's unfinished jobs onto a
 * respawned worker with exponential backoff, and gives every job up
 * to 1 + maxRetries attempts before failing the sweep with the job's
 * full attempt history. When forking itself fails (or stops being
 * worth retrying), the remaining jobs fall back to an in-process
 * run with a structured warning — submission-order results either
 * way, so recovered output is byte-identical to a clean run.
 */
class ForkedBackend : public SweepBackend
{
  public:
    /** Default extra attempts per job after its first failure. */
    static constexpr unsigned kDefaultMaxRetries = 2;

    /**
     * @param workers      forked worker processes; 0 means hardware
     *                     concurrency.
     * @param jobTimeoutMs kill + requeue a worker whose next frame
     *                     is overdue by this much; 0 disables the
     *                     watchdog.
     * @param maxRetries   extra attempts per job after its first
     *                     failure; exhausting them is fatal.
     */
    explicit ForkedBackend(const TraceCache &traces,
                           unsigned workers = 0,
                           uint64_t jobTimeoutMs = 0,
                           unsigned maxRetries = kDefaultMaxRetries);

    std::vector<JobOutcome>
    run(const std::vector<SweepJob> &jobs) override;
    unsigned parallelism() const override { return workers_; }
    std::string describe() const override;
    SweepFaultStats faultStats() const override { return faults_; }

  private:
    const TraceCache &traces_;
    unsigned workers_;
    uint64_t jobTimeoutMs_;
    unsigned maxRetries_;
    SweepFaultStats faults_;
};

/**
 * Content-addressed caching decorator: keys every cacheable job
 * (non-empty SweepJob::configKey) through ResultStore::makeKey,
 * serves hits without simulating, runs only the misses through the
 * wrapped backend, and persists their results. Outcomes keep
 * submission order, so a warm store is byte-identical to a cold
 * run.
 */
class StoreBackend : public SweepBackend
{
  public:
    /** @param store shared result store (must outlive the backend) */
    StoreBackend(ResultStore &store, const TraceCache &traces,
                 std::unique_ptr<SweepBackend> inner);

    std::vector<JobOutcome>
    run(const std::vector<SweepJob> &jobs) override;
    unsigned
    parallelism() const override
    {
        return inner_->parallelism();
    }
    std::string describe() const override;
    void setProgress(std::function<void(size_t, size_t)> cb) override;
    /** Kept by the decorator and forwarded to the inner backend. */
    void setTraceLog(SweepTraceLog *log) override;
    /** The inner backend's counters (the store itself never forks). */
    SweepFaultStats
    faultStats() const override
    {
        return inner_->faultStats();
    }

  private:
    ResultStore &store_;
    const TraceCache &traces_;
    std::unique_ptr<SweepBackend> inner_;
};

} // namespace oova

#endif // OOVA_HARNESS_BACKEND_HH
