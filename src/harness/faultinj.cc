#include "harness/faultinj.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <vector>

#include "common/logging.hh"

namespace oova::faultinj
{

namespace
{

constexpr size_t kNumSites = static_cast<size_t>(Site::NumSites);

/** The parsed OOVA_FAULT plan: per site, the armed 1-based counts. */
struct Plan
{
    std::set<uint64_t> armed[kNumSites];
    bool any = false;
};

Plan plan;
std::atomic<uint64_t> counters[kNumSites];
/** Fast path: false means shouldFire() is one load and a branch. */
std::atomic<bool> armedAny{false};
std::once_flag envParsed;

void
parseSpec(const std::string &spec)
{
    Plan next;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;
        size_t colon = entry.find(':');
        if (colon == std::string::npos)
            fatal("OOVA_FAULT: entry '%s' is not <site>:<nth>",
                  entry.c_str());
        std::string name = entry.substr(0, colon);
        std::string nth = entry.substr(colon + 1);
        size_t site = kNumSites;
        for (size_t s = 0; s < kNumSites; ++s)
            if (name == siteName(static_cast<Site>(s)))
                site = s;
        if (site == kNumSites)
            fatal("OOVA_FAULT: unknown site '%s'", name.c_str());
        char *end = nullptr;
        unsigned long long n = std::strtoull(nth.c_str(), &end, 10);
        if (nth.empty() || *end != '\0' || n == 0)
            fatal("OOVA_FAULT: bad occurrence '%s' for site '%s' "
                  "(need a 1-based count)",
                  nth.c_str(), name.c_str());
        next.armed[site].insert(n);
        next.any = true;
    }
    plan = std::move(next);
    armedAny.store(plan.any, std::memory_order_release);
}

void
parseEnvOnce()
{
    std::call_once(envParsed, [] {
        const char *spec = std::getenv("OOVA_FAULT");
        if (spec && spec[0] != '\0')
            parseSpec(spec);
    });
}

} // namespace

const char *
siteName(Site site)
{
    switch (site) {
    case Site::WorkerExit:
        return "worker-exit";
    case Site::WorkerHang:
        return "worker-hang";
    case Site::FrameTruncate:
        return "frame-truncate";
    case Site::FrameGarbage:
        return "frame-garbage";
    case Site::StoreCorrupt:
        return "store-corrupt";
    case Site::StoreTornIndex:
        return "store-torn-index";
    case Site::ForkFail:
        return "fork-fail";
    case Site::NumSites:
        break;
    }
    return "?";
}

bool
shouldFire(Site site)
{
    parseEnvOnce();
    if (!armedAny.load(std::memory_order_acquire))
        return false;
    size_t s = static_cast<size_t>(site);
    uint64_t count = counters[s].fetch_add(1) + 1;
    if (plan.armed[s].count(count) == 0)
        return false;
    warn("fault injection: firing %s occurrence %llu",
         siteName(site), static_cast<unsigned long long>(count));
    return true;
}

void
setSpecForTest(const std::string &spec)
{
    // Make sure a racing env parse can't overwrite the test plan.
    parseEnvOnce();
    for (auto &c : counters)
        c.store(0);
    parseSpec(spec);
}

void
disarmAll()
{
    armedAny.store(false, std::memory_order_release);
}

} // namespace oova::faultinj
