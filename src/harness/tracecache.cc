#include "harness/tracecache.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "trace/trace_io.hh"

namespace oova
{

double
envTraceScale()
{
    const char *env = std::getenv("OOVA_SCALE");
    if (!env)
        return 1.0;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    // The whole string must be consumed: "0.5x" or "" are rejected,
    // not silently truncated the way atof() would.
    if (end == env || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
        warn("ignoring bad OOVA_SCALE '%s'", env);
        return 1.0;
    }
    return v;
}

TraceCache::TraceCache(double scale, Generator generator)
    : scale_(scale), generator_(std::move(generator))
{
    sim_assert(scale_ > 0.0, "non-positive trace scale");
    if (!generator_)
        generator_ = [](const std::string &name,
                        const GenOptions &opts) {
            return makeBenchmarkTrace(name, opts);
        };
    // Populate every key up front so the map structure is immutable
    // from here on and entry addresses are stable.
    for (const auto &name : benchmarkNames())
        entries_.try_emplace(name);
}

TraceCache::Entry &
TraceCache::generated(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        fatal("unknown benchmark '%s'", name.c_str());
    Entry &e = it->second;
    std::call_once(e.once, [&] {
        GenOptions opts;
        opts.scale = scale_;
        e.trace = generator_(name, opts);
    });
    return e;
}

const Trace &
TraceCache::get(const std::string &name) const
{
    return generated(name).trace;
}

uint64_t
TraceCache::contentHash(const std::string &name) const
{
    Entry &e = generated(name);
    std::call_once(e.hashOnce,
                   [&] { e.hash = traceContentHash(e.trace); });
    return e.hash;
}

const std::vector<std::string> &
TraceCache::names() const
{
    return benchmarkNames();
}

} // namespace oova
