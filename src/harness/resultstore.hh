/**
 * @file
 * The content-addressed result store of the sweep farm (ROADMAP
 * "Sweep farm" item): simulation results are pure functions of
 * (trace bytes, full machine configuration, trace scale, result
 * schema), so they can be persisted once and served forever.
 *
 * Layout: one file per key under the store directory —
 *
 *   <dir>/<32-hex-key>.json   one header line + SimResult::toJson()
 *   <dir>/index.log           append-only "key program machine" log
 *
 * Keys are derived by makeKey() from (trace content hash, the job's
 * complete config key, scale, SimResult::kResultSchemaVersion), so
 * any input that could change a result changes the key. Writes go
 * through a temp file plus atomic rename, so concurrent writers
 * (parallel sweeps sharing one store, even across processes) can
 * never expose a torn entry; readers quarantine anything unparsable
 * — truncated files, foreign schema versions, stray garbage — to
 * <key>.bad and re-simulate, so one bad sector costs one miss, not
 * a perpetual one. index.log replay tolerates a torn tail line
 * (crashed appender), and setFsync() buys full crash durability for
 * the entries themselves.
 */

#ifndef OOVA_HARNESS_RESULTSTORE_HH
#define OOVA_HARNESS_RESULTSTORE_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "mem/simresult.hh"

namespace oova
{

/** Hit/miss/traffic counters of one ResultStore. */
struct StoreStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
    /** Entries unlinked by the size cap (setMaxBytes). */
    uint64_t evictions = 0;
    /** Corrupt entries renamed to <key>.bad on first detection. */
    uint64_t quarantined = 0;
};

/** Per-figure deltas for the run manifest. */
inline StoreStats
operator-(const StoreStats &a, const StoreStats &b)
{
    return {a.hits - b.hits,           a.misses - b.misses,
            a.stores - b.stores,       a.bytesRead - b.bytesRead,
            a.bytesWritten - b.bytesWritten,
            a.evictions - b.evictions,
            a.quarantined - b.quarantined};
}

/** On-disk content-addressed SimResult store. See the file comment. */
class ResultStore
{
  public:
    /** Bump when the entry file layout (not the schema) changes. */
    static constexpr int kStoreVersion = 1;

    /** Opens (creating if needed) the store directory; fatal if the
     *  path exists but is not a directory or cannot be created. */
    explicit ResultStore(std::string dir);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * The content-addressed key: 32 hex digits over (result-schema
     * version, trace content hash, complete config key, scale).
     * Deterministic across processes and machines.
     */
    static std::string makeKey(uint64_t traceHash,
                               const std::string &configKey,
                               double scale);

    /**
     * Look @p key up; on a hit fill @p out and return true. A
     * missing entry is a plain miss; a present-but-unusable one
     * (torn, mis-keyed, schema-mismatched, garbage) is quarantined —
     * renamed to <key>.bad, preserved for post-mortem, counted in
     * StoreStats::quarantined — and then also a miss, so the farm
     * re-simulates and the next store() heals the entry. The rename
     * is atomic, so concurrent readers of a corrupt entry quarantine
     * it exactly once. Counts into stats(). Thread-safe.
     */
    bool load(const std::string &key, SimResult &out);

    /**
     * Persist @p res under @p key (temp file + atomic rename) and
     * append to the index. Failures warn and leave the store
     * consistent — the farm can always fall back to simulating.
     * Thread-safe; concurrent writers of one key all win (the entry
     * is a pure function of the key, so every version is identical).
     */
    void store(const std::string &key, const SimResult &res);

    /** Counters since construction (snapshot). Thread-safe. */
    StoreStats stats() const;

    const std::string &dir() const { return dir_; }

    /**
     * Cap the store's on-disk entry payload at @p bytes (0 =
     * uncapped, the default). Enforced after every store(): while
     * the entries' total size exceeds the cap, the oldest entries in
     * index.log order are unlinked, oldest first. A key's age is its
     * *last* index line, so rewriting (or re-storing an evicted)
     * entry makes it fresh again, and the entry just written is the
     * newest — it is evicted only when it exceeds the cap all by
     * itself. Unlinking is atomic and index
     * lines are never rewritten, so concurrent readers see an
     * evicted entry as a clean miss and stale index lines are
     * skipped; concurrent writers at worst both evict (idempotent).
     */
    void setMaxBytes(uint64_t bytes);

    /**
     * fsync every entry to stable storage before publishing it
     * (rename), and fsync the directory after — a crash can then
     * never leave a published-but-empty entry behind. Off by
     * default: entries are verifiable on read (and quarantined when
     * bad), so durability is an opt-in tax (--store-fsync).
     */
    void setFsync(bool on) { fsync_ = on; }

  private:
    std::string entryPath(const std::string &key) const;
    std::string headerLine(const std::string &key) const;
    /** Rename a corrupt entry to <key>.bad; count if we won. */
    void quarantine(const std::string &key);
    /** Apply the size cap; called after each successful store(). */
    void enforceCap();

    std::string dir_;
    mutable std::mutex mutex_;
    StoreStats stats_;
    uint64_t tmpSeq_ = 0;
    uint64_t maxBytes_ = 0;
    bool fsync_ = false;
};

} // namespace oova

#endif // OOVA_HARNESS_RESULTSTORE_HH
