/**
 * @file
 * A thread-safe, logically immutable cache of the ten benchmark
 * traces, shared by every worker of the parallel sweep engine.
 *
 * The map of entries is fully populated at construction and never
 * mutated afterwards, so references returned by get() are stable for
 * the cache's lifetime and concurrent lookups never race on the map
 * structure. Each trace body is generated lazily, exactly once, under
 * a per-entry std::once_flag; a second thread requesting the same
 * trace blocks until the first generation completes.
 */

#ifndef OOVA_HARNESS_TRACECACHE_HH
#define OOVA_HARNESS_TRACECACHE_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "tgen/benchmarks.hh"
#include "trace/trace.hh"

namespace oova
{

/**
 * Trace scale from the OOVA_SCALE environment variable, or 1.0 when
 * unset. The whole string must parse as a positive finite number;
 * anything else (including trailing garbage such as "0.5x") warns
 * and falls back to the default.
 */
double envTraceScale();

/** Shared benchmark-trace cache. See the file comment. */
class TraceCache
{
  public:
    /** Trace generator, injectable for tests. */
    using Generator =
        std::function<Trace(const std::string &, const GenOptions &)>;

    explicit TraceCache(double scale = envTraceScale(),
                        Generator generator = {});

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The trace for one benchmark, generated on first use. Safe to
     * call from any number of threads; the returned reference stays
     * valid for the cache's lifetime. Unknown names are fatal.
     */
    const Trace &get(const std::string &name) const;

    /**
     * traceContentHash() of the named trace, generating it first if
     * needed. Computed lazily, once per entry, under its own
     * once_flag — runs that never consult the result store pay
     * nothing. Thread-safe like get(); unknown names are fatal.
     */
    uint64_t contentHash(const std::string &name) const;

    /** All ten benchmark names, in the paper's order. */
    const std::vector<std::string> &names() const;

    double scale() const { return scale_; }

  private:
    struct Entry
    {
        std::once_flag once;
        Trace trace;
        std::once_flag hashOnce;
        uint64_t hash = 0;
    };

    Entry &generated(const std::string &name) const;

    double scale_;
    Generator generator_;
    /** Keys fixed at construction; values filled in lazily. */
    mutable std::map<std::string, Entry> entries_;
};

} // namespace oova

#endif // OOVA_HARNESS_TRACECACHE_HH
