/**
 * @file
 * The figure registry: every paper table/figure (and the extra
 * ablation study) is implemented as a function that declares its
 * sweep through the SweepEngine and returns its tables as data. One
 * renderer prints the classic text output (byte-identical to the
 * original hand-rolled bench binaries); another emits JSON so sweep
 * results are machine-readable for perf tracking across PRs.
 *
 * The per-figure binaries under bench/ are thin wrappers around
 * runFigureMain(); the unified oova_bench driver can run any entry
 * by name.
 */

#ifndef OOVA_HARNESS_FIGURE_HH
#define OOVA_HARNESS_FIGURE_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/resultstore.hh"
#include "harness/sweep.hh"

namespace oova
{

/** One table of a figure, with an optional section heading line. */
struct FigureSection
{
    /**
     * Heading printed verbatim on its own line before the table
     * (e.g. "--- hydro2d ---"); empty for single-table figures.
     */
    std::string heading;
    TextTable table;
};

/** Everything a figure produces, ready to render. */
struct FigureResult
{
    std::vector<FigureSection> sections;
    /** Closing "(paper: ...)" comparison note; empty to omit. */
    std::string footnote;
    /** Print the "trace scale:" line under the banner. */
    bool showScale = true;
};

using FigureFn = FigureResult (*)(const SweepEngine &engine);

/** A registered figure. */
struct FigureDef
{
    const char *name;   ///< short id, e.g. "fig5"
    const char *binary; ///< bench binary name, e.g. "fig5_speedup"
    const char *title;  ///< banner title
    FigureFn fn;
};

/** All figures, in the paper's order. */
const std::vector<FigureDef> &figureRegistry();

/**
 * Look up a figure by short name or by binary name; nullptr if
 * unknown.
 */
const FigureDef *findFigure(const std::string &name);

/** Classic text rendering (banner, tables, footnote). */
std::string renderFigureText(const FigureDef &fig,
                             const FigureResult &result,
                             double scale);

/**
 * Run metadata attached to each --json figure object, so a stored
 * result is self-describing: which schema wrote it, at what trace
 * scale, on how many workers, and what each job cost in wall time.
 */
struct RunManifest
{
    /**
     * Bump when the JSON envelope's shape changes. v2: added
     * resultSchemaVersion, the backend description, the optional
     * store-stats block, and the per-job "cached" flag. v3: the
     * store block gained "evictions" (the --store-max-mb cap). v4:
     * the store block gained "quarantined" and the envelope gained
     * the "faults" recovery-counter block, so a run that survived
     * worker deaths or store corruption says so on the record.
     */
    static constexpr int kSchemaVersion = 4;
    /** SimResult::kResultSchemaVersion in force when this ran. */
    int resultSchemaVersion = SimResult::kResultSchemaVersion;
    double scale = 1.0;   ///< effective OOVA_SCALE
    unsigned threads = 1; ///< sweep worker count
    /** Backend self-description, e.g. "store+forked x4". */
    std::string backend;
    double wallMs = 0.0;  ///< wall time for the whole figure
    /** Result-store traffic for this run; valid when hasStore. */
    bool hasStore = false;
    StoreStats store;
    /** Backend fault-recovery counters (all zero when healthy). */
    SweepFaultStats faults;
    std::vector<JobRecord> jobs;
};

/**
 * JSON rendering, one object per figure; @p manifest (when non-null)
 * is embedded as a "manifest" metadata envelope.
 */
std::string renderFigureJson(const FigureDef &fig,
                             const FigureResult &result, double scale,
                             unsigned threads,
                             const RunManifest *manifest = nullptr);

/** Options shared by every figure driver. */
struct FigureOptions
{
    unsigned threads = 0; ///< 0 = hardware concurrency
    /**
     * --threads and --workers select competing execution backends
     * (in-process thread pool vs. forked processes), so passing both
     * is rejected by validateFigureOptions() rather than one
     * silently winning. The *Set flags record what was given.
     */
    bool threadsSet = false;
    unsigned workers = 0; ///< 0 = hardware concurrency
    bool workersSet = false;
    bool json = false;
    bool progress = false; ///< stderr heartbeat while sweeping
    double scale = 1.0;
    /** Result-store directory (--store); empty = no store. */
    std::string storeDir;
    /** Print the [store] hit/miss line to stderr (--store-stats). */
    bool storeStats = false;
    /**
     * Store size cap in MiB (--store-max-mb); on-disk payload past
     * it evicts the oldest entries at store time. 0 = uncapped.
     */
    uint64_t storeMaxMb = 0;
    /** --stats FILE: gem5-style `name value` dump ("-" = stdout). */
    std::string statsPath;
    /** --perfetto FILE: Chrome trace-event JSON of the sweep. */
    std::string perfettoPath;
    /**
     * --job-timeout-ms N: the forked backend's per-job watchdog —
     * a worker whose next result is overdue by N ms is killed and
     * its jobs requeued. 0 = no watchdog (the default).
     */
    uint64_t jobTimeoutMs = 0;
    bool jobTimeoutSet = false;
    /**
     * --max-retries N: extra attempts per job after its first
     * worker failure before the sweep fails with the job's attempt
     * history.
     */
    unsigned maxRetries = 2;
    bool maxRetriesSet = false;
    /** --store-fsync: fsync entries before publishing them. */
    bool storeFsync = false;
};

/**
 * Cross-flag validation after parsing: rejects --threads combined
 * with --workers; --store-stats, --store-max-mb or --store-fsync
 * without --store; and --job-timeout-ms or --max-retries without
 * --workers — each with an explanatory message on stderr. Returns
 * false on rejection.
 */
bool validateFigureOptions(const FigureOptions &opts);

/**
 * Build the engine the options ask for: a ForkedBackend under
 * --workers, otherwise an InProcessBackend, either wrapped in a
 * StoreBackend when @p store is non-null.
 */
SweepEngine makeSweepEngine(const TraceCache &traces,
                            const FigureOptions &opts,
                            ResultStore *store);

/**
 * One machine-parseable summary line on stderr:
 * "[store] dir=... hits=... misses=... stores=... bytesRead=...
 *  bytesWritten=... hitRate=...%". Never stdout, so figure output
 * and goldens are unaffected.
 */
void printStoreStats(const ResultStore &store);

/**
 * Install the --progress heartbeat on @p engine: a per-job stderr
 * line (jobs done / batch total, elapsed, ETA). Never writes to
 * stdout, so figure output and goldens are unaffected.
 */
void installProgressMeter(SweepEngine &engine);

/**
 * Largest accepted --threads value: far above any real machine, but
 * small enough to catch typos and strtoul negative wrap-around.
 */
constexpr unsigned kMaxSweepThreads = 4096;

/**
 * Try to consume argv[i] (and its value, if any) as one of the
 * common flags --threads N / --workers N / --json / --progress /
 * --scale S / --store DIR / --store-stats / --store-max-mb N /
 * --store-fsync / --job-timeout-ms N / --max-retries N /
 * --stats FILE / --perfetto FILE (value-taking flags also
 * accept the --flag=value spelling). Returns 1 if consumed
 * (advancing @p i past any value), 0 if argv[i] is not a common
 * flag, -1 on a malformed value (after printing an error to stderr).
 * Cross-flag rules are validateFigureOptions()'s job, once parsing
 * is done.
 */
int parseCommonFlag(int argc, char **argv, int &i,
                    FigureOptions &opts);

/**
 * Shared main() for the per-figure bench binaries: parses the
 * common flags (plus --help), runs figure @p name through
 * makeSweepEngine() and prints it. Returns the process exit code.
 */
int runFigureMain(const std::string &name, int argc, char **argv);

} // namespace oova

#endif // OOVA_HARNESS_FIGURE_HH
