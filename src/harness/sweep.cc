#include "harness/sweep.hh"

#include "common/logging.hh"
#include "core/ideal.hh"
#include "core/ooosim.hh"
#include "harness/backend.hh"

namespace oova
{

namespace
{

// BEGIN config-key fields
//
// Every data member of LatencyTable / TlbConfig / MemConfig /
// RefConfig / OooConfig that can influence a simulation result must
// be serialized between these markers — scripts/lint_oova.py fails
// the build when a member of those structs is missing here, so a new
// knob can never silently alias store entries of runs that set it.
// Deliberately excluded (observe-only, results unaffected):
// checkLevel, pipeTracer (tracing jobs are made uncacheable instead).

std::string
latKey(const LatencyTable &lat)
{
    return csprintf(
        "lat{%u,%u,%u,%u,%u,%u,%u,%u,%u,%u}", lat.readXbar,
        lat.writeXbarVector, lat.writeXbarScalar, lat.vectorStartup,
        lat.moveLat, lat.addLogic, lat.mul, lat.divSqrt,
        lat.memLatency, lat.branchMispredict);
}

std::string
tlbKey(const TlbConfig &tlb)
{
    if (!tlb.enabled)
        return "tlb{off}";
    return csprintf("tlb{%u,%u,%u,%u,%u,%u,%u,%d}", tlb.entries,
                    tlb.pageBytes, tlb.associativity, tlb.missPenalty,
                    tlb.l2Entries, tlb.l2Associativity,
                    tlb.l2HitPenalty, static_cast<int>(tlb.refill));
}

std::string
memKey(const MemConfig &mem)
{
    return csprintf(
        "mem{%d,%u,%d,%u,%u,%u,%u,%d,%u,%u,%u,%u,%u,%s}",
        static_cast<int>(mem.model), mem.memUnits,
        static_cast<int>(mem.lsPolicy), mem.banks, mem.addressPorts,
        mem.bankBusyCycles, mem.interleaveBytes,
        static_cast<int>(mem.backing), mem.cacheBytes, mem.lineBytes,
        mem.associativity, mem.mshrs, mem.cacheHitLatency,
        tlbKey(mem.tlb).c_str());
}

// END config-key fields

} // namespace

std::string
sweepConfigKey(const RefConfig &cfg)
{
    // BEGIN config-key fields
    return csprintf("REF/v1|%s|%d,%d,%u,%d,%d|%s",
                    latKey(cfg.lat).c_str(),
                    static_cast<int>(cfg.modelPortConflicts),
                    static_cast<int>(cfg.chainLoadsToFus),
                    cfg.takenBranchPenalty,
                    static_cast<int>(cfg.cpiStack),
                    static_cast<int>(cfg.telemetry),
                    memKey(cfg.mem).c_str());
    // END config-key fields
}

std::string
sweepConfigKey(const OooConfig &cfg)
{
    // BEGIN config-key fields
    return csprintf(
        "OOO/v1|%s|%u,%u,%u,%u|%u,%u,%u,%u,%u,%u|%d,%d,%d,%u,%d,%d|%s",
        latKey(cfg.lat).c_str(), cfg.numPhysVRegs, cfg.numPhysARegs,
        cfg.numPhysSRegs, cfg.numPhysMRegs, cfg.queueSize,
        cfg.robSize, cfg.commitWidth, cfg.fetchBufferSize,
        cfg.btbEntries, cfg.rasDepth, static_cast<int>(cfg.commit),
        static_cast<int>(cfg.loadElim),
        static_cast<int>(cfg.chainLoadsToFus), cfg.trapPenalty,
        static_cast<int>(cfg.cpiStack),
        static_cast<int>(cfg.telemetry), memKey(cfg.mem).c_str());
    // END config-key fields
}

SweepJob
refJob(std::string trace, RefConfig cfg)
{
    return {std::move(trace),
            [cfg](const Trace &t) { return simulateRef(t, cfg); },
            nullptr, sweepConfigKey(cfg)};
}

SweepJob
oooJob(std::string trace, OooConfig cfg)
{
    // A tracing run has an observation side effect (the tracer's
    // event stream), so serving it from the store would lose the
    // very output the caller asked for: mark it uncacheable.
    std::string key =
        cfg.pipeTracer ? std::string() : sweepConfigKey(cfg);
    return {std::move(trace),
            [cfg](const Trace &t) { return simulateOoo(t, cfg); },
            nullptr, std::move(key)};
}

SweepJob
oooTraceJob(std::shared_ptr<const Trace> trace, OooConfig cfg)
{
    SweepJob job;
    job.trace = trace->name();
    job.run = [cfg](const Trace &t) { return simulateOoo(t, cfg); };
    job.inlineTrace = std::move(trace);
    if (!cfg.pipeTracer)
        job.configKey = sweepConfigKey(cfg);
    return job;
}

SweepJob
refTraceJob(std::shared_ptr<const Trace> trace, RefConfig cfg)
{
    SweepJob job;
    job.trace = trace->name();
    job.run = [cfg](const Trace &t) { return simulateRef(t, cfg); };
    job.inlineTrace = std::move(trace);
    job.configKey = sweepConfigKey(cfg);
    return job;
}

SweepJob
idealJob(std::string trace)
{
    return {std::move(trace),
            [](const Trace &t) {
                SimResult r;
                r.machine = "IDEAL";
                r.cycles = idealCycles(t);
                return r;
            },
            nullptr, "IDEAL/v1"};
}

SweepEngine::SweepEngine(const TraceCache &traces, unsigned threads)
    : SweepEngine(traces,
                  std::make_unique<InProcessBackend>(traces, threads))
{
}

SweepEngine::SweepEngine(const TraceCache &traces,
                         std::unique_ptr<SweepBackend> backend)
    : traces_(traces), backend_(std::move(backend))
{
    sim_assert(backend_ != nullptr, "null sweep backend");
}

SweepEngine::~SweepEngine() = default;
SweepEngine::SweepEngine(SweepEngine &&) noexcept = default;

unsigned
SweepEngine::threads() const
{
    return backend_->parallelism();
}

std::string
SweepEngine::backendName() const
{
    return backend_->describe();
}

SweepFaultStats
SweepEngine::faultStats() const
{
    return backend_->faultStats();
}

void
SweepEngine::setProgress(std::function<void(size_t, size_t)> cb)
{
    backend_->setProgress(std::move(cb));
}

void
SweepEngine::setTraceLog(SweepTraceLog *log)
{
    backend_->setTraceLog(log);
}

std::vector<SimResult>
SweepEngine::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<JobOutcome> outcomes = backend_->run(jobs);

    // Prefetch dummies carry no machine label and are skipped, so
    // the manifest lists exactly the simulations that ran.
    if (manifestEnabled_)
        for (const JobOutcome &o : outcomes)
            if (!o.result.machine.empty())
                manifest_.push_back({o.result.program,
                                     o.result.machine, o.wallMs,
                                     o.fromStore});
    if (captureEnabled_)
        for (const JobOutcome &o : outcomes)
            if (!o.result.machine.empty())
                captured_.push_back(o.result);

    std::vector<SimResult> results;
    results.reserve(outcomes.size());
    for (JobOutcome &o : outcomes)
        results.push_back(std::move(o.result));
    return results;
}

void
SweepEngine::prefetch(const std::vector<std::string> &names) const
{
    std::vector<SweepJob> jobs;
    jobs.reserve(names.size());
    for (const auto &name : names)
        jobs.push_back({name,
                        [](const Trace &) { return SimResult{}; },
                        nullptr, std::string()});
    run(jobs);
}

void
JobSet::run(const SweepEngine &engine)
{
    results_ = engine.run(jobs_);
}

const SimResult &
JobSet::operator[](size_t index) const
{
    sim_assert(index < results_.size(),
               "job %zu read before run() or out of range (%zu)",
               index, results_.size());
    return results_[index];
}

} // namespace oova
