#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "common/logging.hh"
#include "core/ideal.hh"
#include "core/ooosim.hh"

namespace oova
{

SweepJob
refJob(std::string trace, RefConfig cfg)
{
    return {std::move(trace), [cfg](const Trace &t) {
                return simulateRef(t, cfg);
            }, nullptr};
}

SweepJob
oooJob(std::string trace, OooConfig cfg)
{
    return {std::move(trace), [cfg](const Trace &t) {
                return simulateOoo(t, cfg);
            }, nullptr};
}

SweepJob
oooTraceJob(std::shared_ptr<const Trace> trace, OooConfig cfg)
{
    SweepJob job;
    job.trace = trace->name();
    job.run = [cfg](const Trace &t) { return simulateOoo(t, cfg); };
    job.inlineTrace = std::move(trace);
    return job;
}

SweepJob
refTraceJob(std::shared_ptr<const Trace> trace, RefConfig cfg)
{
    SweepJob job;
    job.trace = trace->name();
    job.run = [cfg](const Trace &t) { return simulateRef(t, cfg); };
    job.inlineTrace = std::move(trace);
    return job;
}

SweepJob
idealJob(std::string trace)
{
    return {std::move(trace), [](const Trace &t) {
                SimResult r;
                r.machine = "IDEAL";
                r.cycles = idealCycles(t);
                return r;
            }, nullptr};
}

SweepEngine::SweepEngine(const TraceCache &traces, unsigned threads)
    : traces_(traces), threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

std::vector<SimResult>
SweepEngine::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<SimResult> results(jobs.size());
    std::vector<double> wallMs(jobs.size(), 0.0);
    std::atomic<size_t> done{0};

    auto runOne = [&](size_t i) {
        const SweepJob &job = jobs[i];
        auto t0 = std::chrono::steady_clock::now();
        const Trace &t = job.inlineTrace ? *job.inlineTrace
                                         : traces_.get(job.trace);
        results[i] = job.run(t);
        wallMs[i] = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        if (results[i].program.empty())
            results[i].program = job.trace;
        if (progress_)
            progress_(done.fetch_add(1) + 1, jobs.size());
    };

    // Prefetch dummies carry no machine label and are skipped, so
    // the manifest lists exactly the simulations that ran.
    auto record = [&] {
        if (!manifestEnabled_)
            return;
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (results[i].machine.empty())
                continue;
            manifest_.push_back({results[i].program,
                                 results[i].machine, wallMs[i]});
        }
    };

    unsigned workers = threads_;
    if (jobs.size() < workers)
        workers = static_cast<unsigned>(jobs.size());

    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            runOne(i);
        record();
        return results;
    }

    // Each worker claims the next unstarted index; results land in
    // their submission-order slot, so completion order is invisible.
    std::atomic<size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= jobs.size())
                    return;
                try {
                    runOne(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
    record();
    return results;
}

void
SweepEngine::prefetch(const std::vector<std::string> &names) const
{
    std::vector<SweepJob> jobs;
    jobs.reserve(names.size());
    for (const auto &name : names)
        jobs.push_back(
            {name, [](const Trace &) { return SimResult{}; }, nullptr});
    run(jobs);
}

void
JobSet::run(const SweepEngine &engine)
{
    results_ = engine.run(jobs_);
}

const SimResult &
JobSet::operator[](size_t index) const
{
    sim_assert(index < results_.size(),
               "job %zu read before run() or out of range (%zu)",
               index, results_.size());
    return results_[index];
}

} // namespace oova
