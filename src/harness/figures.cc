/**
 * @file
 * Implementations of every paper table/figure as sweep declarations:
 * each builds a flat batch of (benchmark × config) jobs, hands it to
 * the SweepEngine, and assembles its tables from the index-aligned
 * results, so the output is identical no matter how many worker
 * threads execute the batch. The per-figure documentation (what the
 * paper reports and what to compare against) lives in the matching
 * wrapper under bench/.
 */

#include <array>
#include <chrono>
#include <numeric>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/figure.hh"
#include "isa/latency.hh"
#include "trace/trace_stats.hh"

namespace oova
{

namespace
{

// ------------------------------------------------------------ fig3/7
// Shared helper: the 8-state execution breakdown tables list states
// from fully-busy down to all-idle, then a total-cycles row.

FigureResult
fig3RefStates(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned lats[] = {1, 20, 70, 100};

    JobSet js;
    std::vector<std::array<size_t, 4>> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p)
        for (size_t i = 0; i < 4; ++i)
            idx[p][i] = js.addRef(names[p], makeRefConfig(lats[i]));
    js.run(engine);

    FigureResult out;
    for (size_t p = 0; p < names.size(); ++p) {
        std::vector<std::string> hdr{"State"};
        for (unsigned l : lats)
            hdr.push_back("lat" + std::to_string(l) + " (%)");
        TextTable table(hdr);
        for (int st = UnitStateBreakdown::kNumStates - 1; st >= 0;
             --st) {
            std::vector<std::string> row{
                UnitStateBreakdown::stateName(st)};
            for (size_t i = 0; i < 4; ++i) {
                const SimResult &r = js[idx[p][i]];
                double pct = 100.0 *
                             static_cast<double>(r.stateCycles[st]) /
                             static_cast<double>(r.cycles);
                row.push_back(TextTable::fmt(pct, 1));
            }
            table.addRow(row);
        }
        std::vector<std::string> tot{"total cycles"};
        for (size_t i = 0; i < 4; ++i)
            tot.push_back(TextTable::fmt(js[idx[p][i]].cycles));
        table.addRow(tot);
        out.sections.push_back(
            {"--- " + names[p] + " ---", std::move(table)});
    }
    out.footnote = "(paper: few cycles at peak state <FU2,FU1,MEM>; "
                   "idle state < , , > grows with latency)";
    return out;
}

// ------------------------------------------------------------- fig4

FigureResult
fig4PortIdle(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned lats[] = {1, 20, 70, 100};

    JobSet js;
    std::vector<std::array<size_t, 4>> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p)
        for (size_t i = 0; i < 4; ++i)
            idx[p][i] = js.addRef(names[p], makeRefConfig(lats[i]));
    js.run(engine);

    TextTable table({"Program", "lat1", "lat20", "lat70", "lat100"});
    for (size_t p = 0; p < names.size(); ++p) {
        std::vector<std::string> row{names[p]};
        for (size_t i = 0; i < 4; ++i)
            row.push_back(TextTable::fmt(
                100.0 * js[idx[p][i]].portIdleFraction(), 1));
        table.addRow(row);
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: 30-65% idle at latency 70; all ten "
                   "programs are memory bound)";
    return out;
}

// ------------------------------------------------------------- fig5

FigureResult
fig5Speedup(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned regs[] = {9, 12, 16, 32, 64};

    struct Row
    {
        size_t ref;
        std::array<size_t, 5> q16;
        std::array<size_t, 2> q128;
        size_t ideal;
    };
    JobSet js;
    std::vector<Row> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p].ref = js.addRef(names[p], makeRefConfig(50));
        for (size_t i = 0; i < 5; ++i)
            idx[p].q16[i] =
                js.addOoo(names[p], makeOooConfig(regs[i], 16, 50));
        const unsigned q128regs[] = {16, 64};
        for (size_t i = 0; i < 2; ++i)
            idx[p].q128[i] = js.addOoo(
                names[p], makeOooConfig(q128regs[i], 128, 50));
        idx[p].ideal = js.addIdeal(names[p]);
    }
    js.run(engine);

    TextTable table({"Program", "q16/9r", "q16/12r", "q16/16r",
                     "q16/32r", "q16/64r", "q128/16r", "q128/64r",
                     "IDEAL"});
    for (size_t p = 0; p < names.size(); ++p) {
        const SimResult &ref = js[idx[p].ref];
        std::vector<std::string> row{names[p]};
        for (size_t i = 0; i < 5; ++i)
            row.push_back(
                TextTable::fmt(speedup(ref, js[idx[p].q16[i]]), 2));
        for (size_t i = 0; i < 2; ++i)
            row.push_back(
                TextTable::fmt(speedup(ref, js[idx[p].q128[i]]), 2));
        double ideal = static_cast<double>(ref.cycles) /
                       static_cast<double>(js[idx[p].ideal].cycles);
        row.push_back(TextTable::fmt(ideal, 2));
        table.addRow(row);
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: 1.24-1.72 at 16 regs; 12 regs nearly as "
                   "good; queues 128 ~ queues 16)";
    return out;
}

// ------------------------------------------------------------- fig6

FigureResult
fig6PortIdleOoo(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();

    JobSet js;
    std::vector<std::array<size_t, 2>> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p][0] = js.addRef(names[p], makeRefConfig(50));
        idx[p][1] = js.addOoo(names[p], makeOooConfig(16, 16, 50));
    }
    js.run(engine);

    TextTable table({"Program", "REF idle%", "OOOVA idle%"});
    for (size_t p = 0; p < names.size(); ++p)
        table.addRow(
            {names[p],
             TextTable::fmt(100.0 * js[idx[p][0]].portIdleFraction(),
                            1),
             TextTable::fmt(100.0 * js[idx[p][1]].portIdleFraction(),
                            1)});

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: OOOVA cuts idle cycles by more than half "
                   "in most cases)";
    return out;
}

// ------------------------------------------------------------- fig7

FigureResult
fig7StatesOoo(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();

    JobSet js;
    std::vector<std::array<size_t, 2>> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p][0] = js.addRef(names[p], makeRefConfig(50));
        idx[p][1] = js.addOoo(names[p], makeOooConfig(16, 16, 50));
    }
    js.run(engine);

    FigureResult out;
    for (size_t p = 0; p < names.size(); ++p) {
        const SimResult &ref = js[idx[p][0]];
        const SimResult &ooo = js[idx[p][1]];
        TextTable table({"State", "REF %", "OOOVA %"});
        for (int st = UnitStateBreakdown::kNumStates - 1; st >= 0;
             --st) {
            table.addRow(
                {UnitStateBreakdown::stateName(st),
                 TextTable::fmt(100.0 *
                                    static_cast<double>(
                                        ref.stateCycles[st]) /
                                    static_cast<double>(ref.cycles),
                                1),
                 TextTable::fmt(100.0 *
                                    static_cast<double>(
                                        ooo.stateCycles[st]) /
                                    static_cast<double>(ooo.cycles),
                                1)});
        }
        table.addRow({"total cycles", TextTable::fmt(ref.cycles),
                      TextTable::fmt(ooo.cycles)});
        out.sections.push_back(
            {"--- " + names[p] + " ---", std::move(table)});
    }
    out.footnote = "(paper: the all-idle state < , , > almost "
                   "disappears on the OOOVA)";
    return out;
}

// ------------------------------------------------------------- fig8

FigureResult
fig8Latency(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned lats[] = {1, 50, 100};

    struct Row
    {
        std::array<size_t, 3> ref;
        std::array<size_t, 3> ooo;
        size_t ideal;
    };
    JobSet js;
    std::vector<Row> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        for (size_t i = 0; i < 3; ++i)
            idx[p].ref[i] = js.addRef(names[p], makeRefConfig(lats[i]));
        for (size_t i = 0; i < 3; ++i)
            idx[p].ooo[i] =
                js.addOoo(names[p], makeOooConfig(16, 16, lats[i]));
        idx[p].ideal = js.addIdeal(names[p]);
    }
    js.run(engine);

    TextTable table({"Program", "REF@1", "REF@50", "REF@100", "OOO@1",
                     "OOO@50", "OOO@100", "IDEAL", "OOO 100/1",
                     "spdup@1"});
    for (size_t p = 0; p < names.size(); ++p) {
        std::vector<std::string> row{names[p]};
        for (size_t i = 0; i < 3; ++i)
            row.push_back(TextTable::fmt(js[idx[p].ref[i]].cycles));
        for (size_t i = 0; i < 3; ++i)
            row.push_back(TextTable::fmt(js[idx[p].ooo[i]].cycles));
        row.push_back(TextTable::fmt(js[idx[p].ideal].cycles));
        Cycle ref1 = js[idx[p].ref[0]].cycles;
        Cycle ooo1 = js[idx[p].ooo[0]].cycles;
        Cycle ooo100 = js[idx[p].ooo[2]].cycles;
        row.push_back(TextTable::fmt(
            static_cast<double>(ooo100) / static_cast<double>(ooo1),
            2));
        row.push_back(TextTable::fmt(
            static_cast<double>(ref1) / static_cast<double>(ooo1),
            2));
        table.addRow(row);
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: OOOVA flat across 1..100 cycles; speedup "
                   "1.15-1.25 even at latency 1)";
    return out;
}

// ------------------------------------------------------------- fig9

FigureResult
fig9Commit(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned earlyRegs[] = {9, 16, 64};
    const unsigned lateRegs[] = {9, 12, 16, 32, 64};

    struct Row
    {
        size_t ref;
        std::array<size_t, 3> early;
        std::array<size_t, 5> late;
    };
    JobSet js;
    std::vector<Row> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p].ref = js.addRef(names[p], makeRefConfig(50));
        for (size_t i = 0; i < 3; ++i)
            idx[p].early[i] = js.addOoo(
                names[p], makeOooConfig(earlyRegs[i], 16, 50,
                                        CommitMode::Early));
        for (size_t i = 0; i < 5; ++i)
            idx[p].late[i] = js.addOoo(
                names[p],
                makeOooConfig(lateRegs[i], 16, 50, CommitMode::Late));
    }
    js.run(engine);

    TextTable table({"Program", "e/9r", "e/16r", "e/64r", "l/9r",
                     "l/12r", "l/16r", "l/32r", "l/64r",
                     "late/early@16"});
    for (size_t p = 0; p < names.size(); ++p) {
        const SimResult &ref = js[idx[p].ref];
        std::vector<std::string> row{names[p]};
        double early16 = 0, late16 = 0;
        for (size_t i = 0; i < 3; ++i) {
            double s = speedup(ref, js[idx[p].early[i]]);
            if (earlyRegs[i] == 16)
                early16 = s;
            row.push_back(TextTable::fmt(s, 2));
        }
        for (size_t i = 0; i < 5; ++i) {
            double s = speedup(ref, js[idx[p].late[i]]);
            if (lateRegs[i] == 16)
                late16 = s;
            row.push_back(TextTable::fmt(s, 2));
        }
        row.push_back(TextTable::fmt(late16 / early16, 2));
        table.addRow(row);
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: late commit costs <10% for eight programs "
                   "but 41%/47% for trfd/dyfesm)";
    return out;
}

// ------------------------------------------------------------ fig11

FigureResult
fig11Sle(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned regs[] = {16, 32, 64};

    struct Row
    {
        std::array<size_t, 3> base;
        std::array<size_t, 3> sle;
    };
    JobSet js;
    std::vector<Row> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        for (size_t i = 0; i < 3; ++i) {
            idx[p].base[i] = js.addOoo(
                names[p],
                makeOooConfig(regs[i], 16, 50, CommitMode::Late));
            idx[p].sle[i] = js.addOoo(
                names[p], makeOooConfig(regs[i], 16, 50,
                                        CommitMode::Late,
                                        LoadElimMode::Sle));
        }
    }
    js.run(engine);

    TextTable table({"Program", "16r", "32r", "64r", "sElims@32"});
    for (size_t p = 0; p < names.size(); ++p) {
        std::vector<std::string> row{names[p]};
        uint64_t elims = 0;
        for (size_t i = 0; i < 3; ++i) {
            const SimResult &sle = js[idx[p].sle[i]];
            if (regs[i] == 32)
                elims = sle.scalarLoadsEliminated;
            row.push_back(
                TextTable::fmt(speedup(js[idx[p].base[i]], sle), 2));
        }
        row.push_back(TextTable::fmt(elims));
        table.addRow(row);
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: <1.05 for most programs; 1.30/1.36 for "
                   "trfd/dyfesm at 32 regs)";
    return out;
}

// ------------------------------------------------------------ fig12

FigureResult
fig12SleVle(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned regs[] = {16, 32, 64};

    struct Row
    {
        std::array<size_t, 3> base;
        std::array<size_t, 3> vle;
    };
    JobSet js;
    std::vector<Row> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        for (size_t i = 0; i < 3; ++i) {
            idx[p].base[i] = js.addOoo(
                names[p],
                makeOooConfig(regs[i], 16, 50, CommitMode::Late));
            idx[p].vle[i] = js.addOoo(
                names[p], makeOooConfig(regs[i], 16, 50,
                                        CommitMode::Late,
                                        LoadElimMode::SleVle));
        }
    }
    js.run(engine);

    TextTable table(
        {"Program", "16r", "32r", "64r", "vElims@32", "sElims@32"});
    for (size_t p = 0; p < names.size(); ++p) {
        std::vector<std::string> row{names[p]};
        uint64_t velims = 0, selims = 0;
        for (size_t i = 0; i < 3; ++i) {
            const SimResult &vle = js[idx[p].vle[i]];
            if (regs[i] == 32) {
                velims = vle.vectorLoadsEliminated;
                selims = vle.scalarLoadsEliminated;
            }
            row.push_back(
                TextTable::fmt(speedup(js[idx[p].base[i]], vle), 2));
        }
        row.push_back(TextTable::fmt(velims));
        row.push_back(TextTable::fmt(selims));
        table.addRow(row);
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: 1.04-1.16 typical at 16 regs, up to 2.13 "
                   "trfd; 1.10-1.20 at 32 regs)";
    return out;
}

// ------------------------------------------------------------ fig13

FigureResult
fig13Traffic(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();

    JobSet js;
    std::vector<std::array<size_t, 3>> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p][0] = js.addOoo(
            names[p], makeOooConfig(32, 16, 50, CommitMode::Late));
        idx[p][1] = js.addOoo(
            names[p], makeOooConfig(32, 16, 50, CommitMode::Late,
                                    LoadElimMode::Sle));
        idx[p][2] = js.addOoo(
            names[p], makeOooConfig(32, 16, 50, CommitMode::Late,
                                    LoadElimMode::SleVle));
    }
    js.run(engine);

    TextTable table({"Program", "base reqs", "SLE reqs",
                     "SLE+VLE reqs", "SLE red%", "SLE+VLE red%"});
    for (size_t p = 0; p < names.size(); ++p) {
        const SimResult &base = js[idx[p][0]];
        const SimResult &sle = js[idx[p][1]];
        const SimResult &vle = js[idx[p][2]];
        auto reduction = [&](const SimResult &x) {
            return 100.0 * (1.0 - static_cast<double>(x.memRequests) /
                                      static_cast<double>(
                                          base.memRequests));
        };
        table.addRow({names[p], TextTable::fmt(base.memRequests),
                      TextTable::fmt(sle.memRequests),
                      TextTable::fmt(vle.memRequests),
                      TextTable::fmt(reduction(sle), 1),
                      TextTable::fmt(reduction(vle), 1)});
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: 15-20% typical reduction, up to 40% for "
                   "trfd/dyfesm)";
    return out;
}

// ------------------------------------------------------------- tab1

FigureResult
tab1Machine(const SweepEngine &)
{
    LatencyTable ref = LatencyTable::refDefaults();
    LatencyTable ooo = LatencyTable::oooDefaults();

    TextTable table({"Parameter", "REF", "OOOVA"});
    auto row = [&](const char *name, unsigned a, unsigned b) {
        table.addRow({name, TextTable::fmt(uint64_t(a)),
                      TextTable::fmt(uint64_t(b))});
    };
    row("read x-bar", ref.readXbar, ooo.readXbar);
    row("write x-bar (vector)", ref.writeXbarVector,
        ooo.writeXbarVector);
    row("write x-bar (scalar)", ref.writeXbarScalar,
        ooo.writeXbarScalar);
    row("vector startup (*)", ref.vectorStartup, ooo.vectorStartup);
    row("move", ref.moveLat, ooo.moveLat);
    row("add/logic/shift", ref.addLogic, ooo.addLogic);
    row("mul", ref.mul, ooo.mul);
    row("div/sqrt", ref.divSqrt, ooo.divSqrt);
    row("memory (default, swept)", ref.memLatency, ooo.memLatency);
    row("branch mispredict", ref.branchMispredict,
        ooo.branchMispredict);

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(*) as in the paper's footnote: 0 in OOOVA, 1 in "
                   "REF.";
    out.showScale = false;
    return out;
}

// ------------------------------------------------------------- tab2

FigureResult
tab2Programs(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    engine.prefetch(names);

    TextTable table({"Program", "#Scalar", "#Vector", "#VecOps",
                     "%Vect", "AvgVL"});
    for (const auto &name : names) {
        TraceStats s = TraceStats::compute(engine.traces().get(name));
        table.addRow({name, TextTable::fmt(s.scalarInsts),
                      TextTable::fmt(s.vectorInsts),
                      TextTable::fmt(s.vectorOps),
                      TextTable::fmt(s.vectorization(), 1),
                      TextTable::fmt(s.avgVectorLength(), 1)});
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper, for reference: >=70% vectorization for "
                   "all ten; swm256 99.9% / VL 127; tomcatv most "
                   "scalar instructions)";
    return out;
}

// ------------------------------------------------------------- tab3

FigureResult
tab3Spills(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    engine.prefetch(names);

    TextTable table({"Program", "VLoad", "VLoadSpill", "VStore",
                     "VStoreSpill", "Spill%", "SLoadSpill",
                     "SStoreSpill"});
    for (const auto &name : names) {
        TraceStats s = TraceStats::compute(engine.traces().get(name));
        table.addRow(
            {name, TextTable::fmt(s.vecLoadOps),
             TextTable::fmt(s.vecSpillLoadOps),
             TextTable::fmt(s.vecStoreOps),
             TextTable::fmt(s.vecSpillStoreOps),
             TextTable::fmt(100.0 * s.spillTrafficFraction(), 1),
             TextTable::fmt(s.scalarSpillLoads),
             TextTable::fmt(s.scalarSpillStores)});
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(paper: several programs have large spill "
                   "traffic; bdna over 69% of total)";
    return out;
}

// -------------------------------------------------------- ablations

FigureResult
ablAblations(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const std::vector<std::string> queueProgs = {"swm256", "trfd",
                                                 "dyfesm", "bdna"};
    const std::vector<std::string> portProgs = {"swm256", "arc2d",
                                                "su2cor"};
    const std::vector<std::string> widthProgs = {"tomcatv", "dyfesm"};
    const unsigned queues[] = {4, 8, 16, 32, 64, 128};
    const unsigned widths[] = {1, 2, 4, 8};

    JobSet js;

    // 1. load->FU chaining.
    std::vector<std::array<size_t, 2>> chainIdx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        OooConfig base = makeOooConfig(16, 16, 50);
        OooConfig chain = base;
        chain.chainLoadsToFus = true;
        chainIdx[p][0] = js.addOoo(names[p], base);
        chainIdx[p][1] = js.addOoo(names[p], chain);
    }

    // 2. queue depth sweep.
    struct QueueRow
    {
        size_t ref;
        std::array<size_t, 6> ooo;
    };
    std::vector<QueueRow> queueIdx(queueProgs.size());
    for (size_t p = 0; p < queueProgs.size(); ++p) {
        queueIdx[p].ref = js.addRef(queueProgs[p], makeRefConfig(50));
        for (size_t i = 0; i < 6; ++i)
            queueIdx[p].ooo[i] = js.addOoo(
                queueProgs[p], makeOooConfig(16, queues[i], 50));
    }

    // 3. REF banked-file port conflicts.
    std::vector<std::array<size_t, 2>> portIdx(portProgs.size());
    for (size_t p = 0; p < portProgs.size(); ++p) {
        RefConfig off = makeRefConfig(50);
        RefConfig on = makeRefConfig(50);
        on.modelPortConflicts = true;
        portIdx[p][0] = js.addRef(portProgs[p], off);
        portIdx[p][1] = js.addRef(portProgs[p], on);
    }

    // 4. commit width.
    std::vector<std::array<size_t, 4>> widthIdx(widthProgs.size());
    for (size_t p = 0; p < widthProgs.size(); ++p)
        for (size_t i = 0; i < 4; ++i) {
            OooConfig c = makeOooConfig(16, 16, 50);
            c.commitWidth = widths[i];
            widthIdx[p][i] = js.addOoo(widthProgs[p], c);
        }

    js.run(engine);

    FigureResult out;
    {
        TextTable t({"Program", "no-chain cyc", "chain cyc",
                     "chain gain"});
        for (size_t p = 0; p < names.size(); ++p) {
            const SimResult &a = js[chainIdx[p][0]];
            const SimResult &b = js[chainIdx[p][1]];
            t.addRow({names[p], TextTable::fmt(a.cycles),
                      TextTable::fmt(b.cycles),
                      TextTable::fmt(speedup(a, b), 2)});
        }
        out.sections.push_back(
            {"-- load->FU chaining --", std::move(t)});
    }
    {
        TextTable t({"Program", "q4", "q8", "q16", "q32", "q64",
                     "q128"});
        for (size_t p = 0; p < queueProgs.size(); ++p) {
            const SimResult &ref = js[queueIdx[p].ref];
            std::vector<std::string> row{queueProgs[p]};
            for (size_t i = 0; i < 6; ++i)
                row.push_back(TextTable::fmt(
                    speedup(ref, js[queueIdx[p].ooo[i]]), 2));
            t.addRow(row);
        }
        out.sections.push_back(
            {"-- queue depth (speedup over REF) --", std::move(t)});
    }
    {
        TextTable t({"Program", "compiler-sched cyc",
                     "port-oblivious cyc", "slowdown"});
        for (size_t p = 0; p < portProgs.size(); ++p) {
            const SimResult &a = js[portIdx[p][0]];
            const SimResult &b = js[portIdx[p][1]];
            t.addRow({portProgs[p], TextTable::fmt(a.cycles),
                      TextTable::fmt(b.cycles),
                      TextTable::fmt(speedup(a, b) > 0
                                         ? 1.0 / speedup(a, b)
                                         : 0.0,
                                     2)});
        }
        out.sections.push_back(
            {"-- REF register-file port conflicts --", std::move(t)});
    }
    {
        TextTable t({"Program", "w1", "w2", "w4", "w8"});
        for (size_t p = 0; p < widthProgs.size(); ++p) {
            std::vector<std::string> row{widthProgs[p]};
            for (size_t i = 0; i < 4; ++i)
                row.push_back(
                    TextTable::fmt(js[widthIdx[p][i]].cycles));
            t.addRow(row);
        }
        out.sections.push_back(
            {"-- commit width (cycles) --", std::move(t)});
    }
    return out;
}

// ---------------------------------------------------------- membank
// Memory-hierarchy study: speedup over REF as the banked model's
// bank count grows. With one address port and a 4-cycle bank busy
// time, unit-stride programs need 4+ banks to sustain one element
// per cycle; programs with power-of-two strides (su2cor, nasa7,
// arc2d) keep colliding on a subset of the banks.

FigureResult
figMemBanks(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned bankCounts[] = {1, 2, 4, 8, 16};

    struct Row
    {
        size_t ref;
        size_t refB8;
        size_t flat;
        std::array<size_t, 5> banked;
    };
    JobSet js;
    std::vector<Row> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p].ref = js.addRef(names[p], makeRefConfig(50));
        idx[p].refB8 = js.addRef(names[p], makeBankedRefConfig(8, 50));
        idx[p].flat = js.addOoo(names[p], makeOooConfig(16, 16, 50));
        for (size_t i = 0; i < 5; ++i)
            idx[p].banked[i] = js.addOoo(
                names[p], makeBankedOooConfig(bankCounts[i], 50));
    }
    js.run(engine);

    TextTable table({"Program", "flat", "b1", "b2", "b4", "b8", "b16",
                     "vsREFb8", "confl@b8", "confCyc@b8"});
    for (size_t p = 0; p < names.size(); ++p) {
        const SimResult &ref = js[idx[p].ref];
        std::vector<std::string> row{names[p]};
        row.push_back(TextTable::fmt(speedup(ref, js[idx[p].flat]), 2));
        for (size_t i = 0; i < 5; ++i)
            row.push_back(
                TextTable::fmt(speedup(ref, js[idx[p].banked[i]]), 2));
        const SimResult &b8 = js[idx[p].banked[3]];
        // Both machines on the same 8-bank memory: does the OOOVA's
        // advantage survive when REF also pays bank conflicts?
        row.push_back(
            TextTable::fmt(speedup(js[idx[p].refB8], b8), 2));
        row.push_back(TextTable::fmt(b8.memBankConflicts));
        row.push_back(TextTable::fmt(b8.memConflictCycles));
        table.addRow(row);
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(speedup over REF/flat at latency 50, except "
                   "vsREFb8 = OOOVA/b8 over REF/b8; unit-stride "
                   "programs climb monotonically with banks and "
                   "approach the flat bus, strided programs keep "
                   "residual bank conflicts)";
    return out;
}

// -------------------------------------------------------- memstride
// Stride-conflict study on the banked model: a synthetic streaming
// kernel (two strided loads, two arithmetic ops, one strided store)
// swept over element strides against an 8-bank memory. Strides
// sharing a factor with the bank count hit fewer distinct banks and
// dilate the address phase; co-prime strides behave like stride 1.

FigureResult
figMemStride(const SweepEngine &engine)
{
    const unsigned strides[] = {1, 2, 3, 4, 7, 8, 16};
    const double scale = engine.traces().scale();

    auto makeStrideTrace = [&](unsigned stride_elems) {
        Program p("stride" + std::to_string(stride_elems));
        // Big enough for the scaled trip count: scale multiplies
        // trips inside generate(), so the arrays must cover
        // trips*scale * vl * stride elements of 8 bytes per outer
        // rep or the streams would run past their arrays.
        uint64_t trips = std::max<uint64_t>(
            1, static_cast<uint64_t>(48.0 * scale + 1.0));
        uint64_t bytes = trips * 2 * 64 * stride_elems * 8 + 4096;
        int a = p.array(bytes), b = p.array(bytes), c = p.array(bytes);
        Kernel *k = p.newKernel("stream");
        VVid x = k->vload(a, stride_elems);
        VVid y = k->vload(b, stride_elems);
        VVid t1 = k->vadd(x, y);
        VVid t2 = k->vmul(t1, x);
        k->vstore(c, t2, stride_elems);
        p.addLoop(k, 48, vlConstant(64));
        p.setOuterReps(2);
        GenOptions opts;
        opts.scale = scale;
        return std::make_shared<const Trace>(p.generate(opts));
    };

    JobSet js;
    // The flat bus ignores addresses entirely, so its cycle count is
    // stride-invariant: simulate it once on the stride-1 trace.
    auto t1trace = makeStrideTrace(1);
    size_t flatIdx = js.addOooTrace(t1trace, makeOooConfig(16, 16, 50));
    std::array<size_t, 7> bankedIdx;
    std::array<size_t, 7> dualIdx;
    for (size_t i = 0; i < 7; ++i) {
        auto t = strides[i] == 1 ? t1trace : makeStrideTrace(strides[i]);
        bankedIdx[i] = js.addOooTrace(t, makeBankedOooConfig(8, 50));
        // The same 8-bank memory behind two load/store units: the
        // kernel's two load streams overlap their address phases.
        dualIdx[i] = js.addOooTrace(t, makeMultiUnitOooConfig(8, 2));
    }
    js.run(engine);

    const SimResult &flat = js[flatIdx];
    TextTable table({"Stride", "flat cyc", "b8 cyc", "slowdown",
                     "conflicts", "confCycles", "distinct banks",
                     "b8x2 cyc", "x2 gain"});
    for (size_t i = 0; i < 7; ++i) {
        unsigned s = strides[i];
        const SimResult &banked = js[bankedIdx[i]];
        const SimResult &dual = js[dualIdx[i]];
        unsigned distinct = 8 / std::gcd(8u, s);
        table.addRow(
            {std::to_string(s), TextTable::fmt(flat.cycles),
             TextTable::fmt(banked.cycles),
             TextTable::fmt(static_cast<double>(banked.cycles) /
                                static_cast<double>(flat.cycles),
                            2),
             TextTable::fmt(banked.memBankConflicts),
             TextTable::fmt(banked.memConflictCycles),
             TextTable::fmt(uint64_t(distinct)),
             TextTable::fmt(dual.cycles),
             TextTable::fmt(speedup(banked, dual), 2)});
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(8 banks, 1 port, 4-cycle bank busy; stride 8 "
                   "hits one bank and serializes at the bank busy "
                   "time, co-prime strides 3/7 match stride 1; the "
                   "x2 columns re-run the sweep with two shared "
                   "memory units)";
    return out;
}

// --------------------------------------------------------- memunits
// Multi-unit scaling study: hand-built dual-stream microprograms
// (the DSL's streaming loads cannot pin two streams to disjoint
// bank sets, so these traces control base alignment exactly) run
// against 1/2/4 memory units over 8 and 16 banks. "dual-load" is
// two independent strided loads on disjoint bank sets; "ld+st" is a
// load stream plus a store of the loaded value, the case a Split
// policy is built for.

FigureResult
figMemUnits(const SweepEngine &engine)
{
    const double scale = engine.traces().scale();
    const uint64_t iters = std::max<uint64_t>(
        1, static_cast<uint64_t>(96.0 * scale + 1.0));

    // Two loads per iteration, stride 16 bytes: stream A covers the
    // even banks of an 8-bank memory, stream B (base offset by one
    // word) the odd banks, so only unit count limits their overlap.
    auto makeDualLoad = [&] {
        Trace t("dual-load");
        Addr a = 0x100000, b = 0x200008;
        for (uint64_t k = 0; k < iters; ++k) {
            t.push(makeVLoad(vReg(0), aReg(0), a, 16, 64));
            t.push(makeVLoad(vReg(1), aReg(1), b, 16, 64));
            t.push(makeVArith(Opcode::VAdd, vReg(2), vReg(0),
                              vReg(1), 64));
            a += 64 * 16;
            b += 64 * 16;
        }
        return std::make_shared<const Trace>(std::move(t));
    };

    // A load stream feeding a store stream: with a Split policy the
    // two directions run on dedicated units.
    auto makeLoadStore = [&] {
        Trace t("ld+st");
        Addr a = 0x100000, c = 0x400000;
        for (uint64_t k = 0; k < iters; ++k) {
            t.push(makeVLoad(vReg(0), aReg(0), a, 8, 64));
            t.push(makeVStore(vReg(0), aReg(1), c, 8, 64));
            a += 64 * 8;
            c += 64 * 8;
        }
        return std::make_shared<const Trace>(std::move(t));
    };

    const unsigned bankCounts[] = {8, 16};
    struct Row
    {
        const char *program;
        unsigned banks;
        size_t x1, x2, x2s, x4;
    };
    JobSet js;
    std::vector<Row> rows;
    auto addProgram = [&](const char *name, auto make) {
        auto trace = make();
        for (unsigned banks : bankCounts) {
            Row r;
            r.program = name;
            r.banks = banks;
            r.x1 = js.addOooTrace(trace,
                                  makeMultiUnitOooConfig(banks, 1));
            r.x2 = js.addOooTrace(trace,
                                  makeMultiUnitOooConfig(banks, 2));
            r.x2s = js.addOooTrace(
                trace,
                makeMultiUnitOooConfig(banks, 2, LsPolicy::Split));
            r.x4 = js.addOooTrace(trace,
                                  makeMultiUnitOooConfig(banks, 4));
            rows.push_back(r);
        }
    };
    addProgram("dual-load", makeDualLoad);
    addProgram("ld+st", makeLoadStore);
    js.run(engine);

    TextTable table({"Program", "banks", "x1 cyc", "x2", "x2 split",
                     "x4", "confl@x2"});
    for (const Row &r : rows) {
        const SimResult &base = js[r.x1];
        table.addRow({r.program, std::to_string(r.banks),
                      TextTable::fmt(base.cycles),
                      TextTable::fmt(speedup(base, js[r.x2]), 2),
                      TextTable::fmt(speedup(base, js[r.x2s]), 2),
                      TextTable::fmt(speedup(base, js[r.x4]), 2),
                      TextTable::fmt(js[r.x2].memBankConflicts)});
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(speedup over the same memory with one unit; "
                   "dual-load's disjoint-bank streams overlap fully "
                   "at two shared units but not under a split "
                   "policy, which pays off only for ld+st)";
    return out;
}

// -------------------------------------------------------- memgather
// Gather index-pattern study: the same gather loop with its index
// vector declared as a bank-friendly permutation, as congruent
// mod 8 (every element on one of 8 banks), and as uniform random,
// against an 8-bank memory. The REF machine isolates the pattern:
// in-order issue leaves the banks idle while the index vector
// loads, so gather conflicts come from the index pattern alone.

FigureResult
figMemGather(const SweepEngine &engine)
{
    const double scale = engine.traces().scale();

    struct Pattern
    {
        const char *name;
        IndexPattern pat;
        uint32_t param;
    };
    const std::vector<Pattern> patterns = {
        {"permutation", IndexPattern::Permutation, 0},
        {"congruent-mod-8", IndexPattern::CongruentMod, 8},
        {"random", IndexPattern::Random, 0},
    };

    auto makeGatherTrace = [&](const Pattern &p) {
        Program prog(std::string("gather-") + p.name);
        int idx = prog.array(64 * 8);
        int tbl = prog.array(512 * 1024);
        Kernel *k = prog.newKernel("gather");
        // A short fixed index load: long enough to model fetching
        // the indices, short enough that its banks are long free
        // when the gather (which must wait for the full index
        // vector) issues.
        VVid iv = k->vloadFixed(idx, 0, 8);
        (void)k->vgather(tbl, iv, p.pat, p.param);
        prog.addLoop(k, 48, vlConstant(64));
        GenOptions opts;
        opts.scale = scale;
        return std::make_shared<const Trace>(prog.generate(opts));
    };

    struct Row
    {
        size_t refFlat, refB8, oooB8, refTlb;
    };
    JobSet js;
    std::vector<Row> idx(patterns.size());
    for (size_t i = 0; i < patterns.size(); ++i) {
        auto t = makeGatherTrace(patterns[i]);
        idx[i].refFlat = js.addRefTrace(t, makeRefConfig(50));
        idx[i].refB8 = js.addRefTrace(t, makeBankedRefConfig(8, 50));
        idx[i].oooB8 = js.addOooTrace(t, makeBankedOooConfig(8, 50));
        idx[i].refTlb = js.addRefTrace(
            t, makeTlbBankedRefConfig(8, 16, 4096, 50));
    }
    js.run(engine);

    TextTable table({"Pattern", "REF flat", "REF b8", "dilation",
                     "idxConfl", "idxConfCyc", "OOO b8"});
    for (size_t i = 0; i < patterns.size(); ++i) {
        const SimResult &flat = js[idx[i].refFlat];
        const SimResult &b8 = js[idx[i].refB8];
        table.addRow(
            {patterns[i].name, TextTable::fmt(flat.cycles),
             TextTable::fmt(b8.cycles),
             TextTable::fmt(static_cast<double>(b8.cycles) /
                                static_cast<double>(flat.cycles),
                            2),
             TextTable::fmt(b8.memIndexedConflicts),
             TextTable::fmt(b8.memIndexedConflictCycles),
             TextTable::fmt(js[idx[i].oooB8].cycles)});
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});

    // TLB interaction: the same three patterns against the same
    // 8-bank REF machine with a small TLB in front. Per-element
    // translation makes the index pattern decide the miss rate: the
    // permutation stays inside one page window, congruent-mod-8
    // spans a few pages, uniform-random indices thrash 16 entries.
    TextTable tlbTable({"Pattern", "REF b8 cyc", "+t16e4k cyc",
                        "dilation", "tlbMiss", "idxMiss",
                        "missCyc"});
    for (size_t i = 0; i < patterns.size(); ++i) {
        const SimResult &b8 = js[idx[i].refB8];
        const SimResult &tlb = js[idx[i].refTlb];
        tlbTable.addRow(
            {patterns[i].name, TextTable::fmt(b8.cycles),
             TextTable::fmt(tlb.cycles),
             TextTable::fmt(static_cast<double>(tlb.cycles) /
                                static_cast<double>(b8.cycles),
                            2),
             TextTable::fmt(tlb.tlbMisses),
             TextTable::fmt(tlb.tlbIndexedMisses),
             TextTable::fmt(tlb.tlbMissCycles)});
    }
    out.sections.push_back({"-- TLB interaction (16 entries, 4K "
                            "pages, hardware walk) --",
                            std::move(tlbTable)});

    out.footnote = "(8 banks, 4-cycle busy; a bank-friendly "
                   "permutation gathers conflict-free like stride 1, "
                   "congruent-mod-8 indices serialize on one bank "
                   "and dilate ~4x, random indices sit in between; "
                   "with a small TLB the random pattern's "
                   "per-element translation misses dominate while "
                   "the single-window permutation stays warm)";
    return out;
}

// ----------------------------------------------------------- memtlb
// Virtual-memory study: the OOOVA on the flat bus with a TLB in
// front, swept over TLB reach (entries x page size) across the ten
// benchmarks. Strided streams translate once per page crossed, so
// most programs barely feel an 8-entry TLB; nasa7's gather
// translates per element and thrashes it, and larger pages buy back
// reach without more entries. A second section compares the refill
// policies under late commit: hardware walks charged in the memory
// model vs software refills through the precise-trap path.

FigureResult
figMemTlb(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();

    struct TlbPoint
    {
        const char *label;
        unsigned entries;
        unsigned pageBytes;
    };
    const std::vector<TlbPoint> points = {
        {"t8e4k", 8, 4096},
        {"t32e4k", 32, 4096},
        {"t256e4k", 256, 4096},
        {"t32e64k", 32, 64 * 1024},
    };

    struct Row
    {
        size_t base;
        std::vector<size_t> tlb;
        size_t hw, sw;
    };
    JobSet js;
    std::vector<Row> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p].base = js.addOoo(names[p], makeOooConfig(16, 16, 50));
        for (const TlbPoint &pt : points)
            idx[p].tlb.push_back(js.addOoo(
                names[p],
                makeTlbOooConfig(pt.entries, pt.pageBytes)));
        idx[p].hw = js.addOoo(
            names[p],
            makeTlbOooConfig(8, 4096, 50, CommitMode::Late));
        idx[p].sw = js.addOoo(
            names[p], makeTlbOooConfig(8, 4096, 50, CommitMode::Late,
                                       TlbRefill::SoftwareTrap));
    }
    js.run(engine);

    FigureResult out;
    {
        TextTable t({"Program", "no-TLB cyc", "t8e4k", "t32e4k",
                     "t256e4k", "t32e64k", "miss@t8", "idxMiss@t8",
                     "missCyc@t8"});
        for (size_t p = 0; p < names.size(); ++p) {
            const SimResult &base = js[idx[p].base];
            std::vector<std::string> row{names[p],
                                         TextTable::fmt(base.cycles)};
            for (size_t i = 0; i < points.size(); ++i)
                row.push_back(TextTable::fmt(
                    static_cast<double>(js[idx[p].tlb[i]].cycles) /
                        static_cast<double>(base.cycles),
                    2));
            const SimResult &t8 = js[idx[p].tlb[0]];
            row.push_back(TextTable::fmt(t8.tlbMisses));
            row.push_back(TextTable::fmt(t8.tlbIndexedMisses));
            row.push_back(TextTable::fmt(t8.tlbMissCycles));
            t.addRow(row);
        }
        out.sections.push_back(
            {"-- TLB reach (slowdown over no TLB, latency 50) --",
             std::move(t)});
    }
    {
        TextTable t({"Program", "hw cyc", "sw cyc", "sw/hw",
                     "traps@sw", "miss@hw"});
        for (size_t p = 0; p < names.size(); ++p) {
            const SimResult &hw = js[idx[p].hw];
            const SimResult &sw = js[idx[p].sw];
            t.addRow({names[p], TextTable::fmt(hw.cycles),
                      TextTable::fmt(sw.cycles),
                      TextTable::fmt(static_cast<double>(sw.cycles) /
                                         static_cast<double>(
                                             hw.cycles),
                                     2),
                      TextTable::fmt(sw.traps),
                      TextTable::fmt(hw.tlbMisses)});
        }
        out.sections.push_back(
            {"-- refill policy at t8e4k (late commit) --",
             std::move(t)});
    }
    out.footnote = "(strided streams translate once per page "
                   "crossed, so unit-stride programs stay warm even "
                   "at 8 entries; nasa7's random gather translates "
                   "per element and thrashes small TLBs; software "
                   "refill pays a full squash-and-replay trap per "
                   "missing stream)";
    return out;
}

// ----------------------------------------------------------- memlat
// Latency x banks: figure 8's latency-tolerance experiment extended
// with the memory hierarchy as a second axis. OOOVA cycles for the
// flat bus and for 4/16-bank memories at latencies 1/50/100.

FigureResult
figMemLatBanks(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    const unsigned lats[] = {1, 50, 100};

    struct Row
    {
        std::array<size_t, 3> flat;
        std::array<size_t, 3> b4;
        std::array<size_t, 3> b16;
    };
    JobSet js;
    std::vector<Row> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        for (size_t i = 0; i < 3; ++i) {
            idx[p].flat[i] =
                js.addOoo(names[p], makeOooConfig(16, 16, lats[i]));
            idx[p].b4[i] = js.addOoo(
                names[p], makeBankedOooConfig(4, lats[i]));
            idx[p].b16[i] = js.addOoo(
                names[p], makeBankedOooConfig(16, lats[i]));
        }
    }
    js.run(engine);

    TextTable table({"Program", "flat@1", "flat@50", "flat@100",
                     "b4@1", "b4@50", "b4@100", "b16@1", "b16@50",
                     "b16@100", "b16 100/1"});
    for (size_t p = 0; p < names.size(); ++p) {
        std::vector<std::string> row{names[p]};
        for (size_t i = 0; i < 3; ++i)
            row.push_back(TextTable::fmt(js[idx[p].flat[i]].cycles));
        for (size_t i = 0; i < 3; ++i)
            row.push_back(TextTable::fmt(js[idx[p].b4[i]].cycles));
        for (size_t i = 0; i < 3; ++i)
            row.push_back(TextTable::fmt(js[idx[p].b16[i]].cycles));
        row.push_back(TextTable::fmt(
            static_cast<double>(js[idx[p].b16[2]].cycles) /
                static_cast<double>(js[idx[p].b16[0]].cycles),
            2));
        table.addRow(row);
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(the OOOVA's latency tolerance survives a banked "
                   "hierarchy: the 100/1 ratio stays near the flat "
                   "bus's figure-8 value even with 16 banks)";
    return out;
}

// --------------------------------------------------------- cpistack
// Top-down cycle accounting: every cycle of a run charged to exactly
// one bucket (the cpi-conservation checker enforces the sum). REF
// shows where the in-order machine stalls; the two OOOVA columns
// show how out-of-order issue converts those stalls into commit
// cycles, and how a tight rename pool (9 physical vector registers)
// brings rename/queue stalls back.

FigureResult
figCpiStack(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();

    RefConfig refCfg = makeRefConfig(50);
    refCfg.cpiStack = true;
    OooConfig ooo16 = makeOooConfig(16, 16, 50);
    ooo16.cpiStack = true;
    OooConfig ooo9 = makeOooConfig(9, 16, 50);
    ooo9.cpiStack = true;

    JobSet js;
    std::vector<std::array<size_t, 3>> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p][0] = js.addRef(names[p], refCfg);
        idx[p][1] = js.addOoo(names[p], ooo16);
        idx[p][2] = js.addOoo(names[p], ooo9);
    }
    js.run(engine);

    FigureResult out;
    for (size_t p = 0; p < names.size(); ++p) {
        TextTable table(
            {"Bucket", "REF %", "OOOVA-16r %", "OOOVA-9r %"});
        for (unsigned b = 0; b < kNumCpiBuckets; ++b) {
            std::vector<std::string> row = {
                cpiBucketName(static_cast<CpiBucket>(b))};
            for (size_t m = 0; m < 3; ++m) {
                const SimResult &r = js[idx[p][m]];
                row.push_back(TextTable::fmt(
                    100.0 *
                        static_cast<double>(r.cpiCycles[b]) /
                        static_cast<double>(r.cycles),
                    1));
            }
            table.addRow(row);
        }
        table.addRow({"total cycles",
                      TextTable::fmt(js[idx[p][0]].cycles),
                      TextTable::fmt(js[idx[p][1]].cycles),
                      TextTable::fmt(js[idx[p][2]].cycles)});
        out.sections.push_back(
            {"--- " + names[p] + " ---", std::move(table)});
    }
    out.footnote = "(columns sum to 100% of each machine's cycles; "
                   "the cpi-conservation checker enforces the sum "
                   "exactly)";
    return out;
}

// -------------------------------------------------------- occupancy
// Structure-occupancy telemetry: mean and p95 occupancy of every
// sampled machine structure, REF vs two OOOVA register pools, over
// a cached + TLB memory hierarchy so the mshrs and tlb-pages rows
// are non-trivial. Sampling is observe-only — the
// occupancy-conservation checker pins every non-empty
// distribution's weight to the run's cycle count — so this figure
// is the telemetry layer's golden gate. REF models no ROB, issue
// queues or renaming, so those rows render "-" in its columns.

FigureResult
figOccupancy(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();

    auto cachedTlbMem = [](MemConfig &m) {
        m.model = MemModel::Cached;
        m.tlb = makeTlb(64);
    };
    RefConfig refCfg = makeRefConfig(50);
    refCfg.telemetry = true;
    cachedTlbMem(refCfg.mem);
    OooConfig ooo16 = makeOooConfig(16, 16, 50);
    ooo16.telemetry = true;
    cachedTlbMem(ooo16.mem);
    OooConfig ooo64 = makeOooConfig(64, 16, 50);
    ooo64.telemetry = true;
    cachedTlbMem(ooo64.mem);

    JobSet js;
    std::vector<std::array<size_t, 3>> idx(names.size());
    for (size_t p = 0; p < names.size(); ++p) {
        idx[p][0] = js.addRef(names[p], refCfg);
        idx[p][1] = js.addOoo(names[p], ooo16);
        idx[p][2] = js.addOoo(names[p], ooo64);
    }
    js.run(engine);

    FigureResult out;
    for (size_t p = 0; p < names.size(); ++p) {
        TextTable table({"Structure", "REF mean", "REF p95",
                         "O-16r mean", "O-16r p95", "O-64r mean",
                         "O-64r p95"});
        for (size_t s = 0; s < kNumOccStructs; ++s) {
            std::vector<std::string> row = {
                occStructName(static_cast<OccStruct>(s))};
            for (size_t m = 0; m < 3; ++m) {
                const StatDistribution &d =
                    js[idx[p][m]].occupancy[s];
                if (d.samples == 0) {
                    row.push_back("-");
                    row.push_back("-");
                } else {
                    row.push_back(TextTable::fmt(d.mean(), 2));
                    row.push_back(TextTable::fmt(d.p95()));
                }
            }
            table.addRow(row);
        }
        out.sections.push_back(
            {"--- " + names[p] + " ---", std::move(table)});
    }
    out.footnote =
        "(per-cycle occupancy over the whole run; \"-\" marks "
        "structures a machine does not model. The "
        "occupancy-conservation checker pins every distribution's "
        "sample weight to the cycle count.)";
    return out;
}

// --------------------------------------------------------- simspeed
// Sweep-engine throughput: how many simulated instructions per
// second the full pool sustains for each machine model. The
// google-benchmark binary (bench/simspeed.cc) measures single-sim
// throughput; this entry measures the batch path the figures use,
// so --json runs can track sweep performance across PRs.

FigureResult
simspeedThroughput(const SweepEngine &engine)
{
    const auto &names = engine.traces().names();
    engine.prefetch(names);

    struct Model
    {
        const char *label;
        std::function<SweepJob(const std::string &)> make;
    };
    const std::vector<Model> models = {
        {"REF",
         [](const std::string &n) { return refJob(n, RefConfig{}); }},
        {"OOOVA-16",
         [](const std::string &n) {
             return oooJob(n, makeOooConfig(16, 16, 50));
         }},
        {"OOOVA-32 late SLE+VLE",
         [](const std::string &n) {
             return oooJob(n, makeOooConfig(32, 16, 50,
                                            CommitMode::Late,
                                            LoadElimMode::SleVle));
         }},
    };

    // The raw integer "instr/s" column is the stable machine-readable
    // field scripts/bench_speed.sh records into BENCH_simspeed.json;
    // the formatted columns are for humans.
    TextTable table({"Model", "jobs", "Minstr", "wall ms",
                     "Minstr/s", "instr/s"});
    for (const auto &m : models) {
        std::vector<SweepJob> jobs;
        for (const auto &n : names)
            jobs.push_back(m.make(n));
        auto t0 = std::chrono::steady_clock::now();
        std::vector<SimResult> res = engine.run(jobs);
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        uint64_t instrs = 0;
        for (const auto &r : res)
            instrs += r.instructions;
        double minstr = static_cast<double>(instrs) / 1e6;
        double per_s =
            ms > 0.0 ? static_cast<double>(instrs) / (ms / 1e3) : 0.0;
        table.addRow({m.label, TextTable::fmt(uint64_t(jobs.size())),
                      TextTable::fmt(minstr, 2),
                      TextTable::fmt(ms, 1),
                      TextTable::fmt(minstr / (ms / 1e3), 2),
                      TextTable::fmt(static_cast<uint64_t>(per_s))});
    }

    FigureResult out;
    out.sections.push_back({"", std::move(table)});
    out.footnote = "(timing, not simulation output: varies run to "
                   "run and with --threads)";
    return out;
}

} // namespace

const std::vector<FigureDef> &
figureRegistry()
{
    static const std::vector<FigureDef> registry = {
        {"tab1", "tab1_machine",
         "Table 1: functional unit latencies (cycles)", tab1Machine},
        {"tab2", "tab2_programs", "Table 2: basic operation counts",
         tab2Programs},
        {"tab3", "tab3_spills",
         "Table 3: vector memory spill operations", tab3Spills},
        {"fig3", "fig3_ref_states",
         "Figure 3: REF execution-state breakdown", fig3RefStates},
        {"fig4", "fig4_port_idle",
         "Figure 4: REF memory-port idle cycles", fig4PortIdle},
        {"fig5", "fig5_speedup",
         "Figure 5: OOOVA speedup vs physical vector registers",
         fig5Speedup},
        {"fig6", "fig6_port_idle_ooo",
         "Figure 6: memory-port idle, REF vs OOOVA", fig6PortIdleOoo},
        {"fig7", "fig7_states_ooo",
         "Figure 7: execution-state breakdown, REF vs OOOVA",
         fig7StatesOoo},
        {"fig8", "fig8_latency",
         "Figure 8: tolerance of main-memory latency", fig8Latency},
        {"fig9", "fig9_commit",
         "Figure 9: early vs late commit (precise traps)",
         fig9Commit},
        {"fig11", "fig11_sle",
         "Figure 11: SLE speedup over late-commit OOOVA", fig11Sle},
        {"fig12", "fig12_slevle",
         "Figure 12: SLE+VLE speedup over late-commit OOOVA",
         fig12SleVle},
        {"fig13", "fig13_traffic",
         "Figure 13: traffic reduction at 32 registers",
         fig13Traffic},
        {"abl", "abl_ablations",
         "Ablations: chaining, queue depth, ports, commit width",
         ablAblations},
        {"membank", "mem_banks",
         "Memory: OOOVA speedup vs bank count", figMemBanks},
        {"memstride", "mem_stride",
         "Memory: stride vs bank conflicts (8 banks)", figMemStride},
        {"memunits", "mem_units",
         "Memory: load/store unit scaling (units x banks)",
         figMemUnits},
        {"memgather", "mem_gather",
         "Memory: gather/scatter index patterns (8 banks)",
         figMemGather},
        {"memtlb", "mem_tlb",
         "Memory: TLB reach and refill policy (entries x page size)",
         figMemTlb},
        {"memlat", "mem_latbanks",
         "Memory: latency tolerance x bank count", figMemLatBanks},
        {"cpistack", "cpi_stack",
         "CPI stack: top-down cycle accounting, REF vs OOOVA",
         figCpiStack},
        {"occupancy", "occupancy_hist",
         "Occupancy: structure-occupancy telemetry, REF vs OOOVA",
         figOccupancy},
        {"simspeed", "simspeed_sweep", "Sweep-engine throughput",
         simspeedThroughput},
    };
    return registry;
}

} // namespace oova
