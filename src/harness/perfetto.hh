/**
 * @file
 * Sweep-farm tracing in Chrome trace-event JSON (--perfetto FILE):
 * one complete-event ("ph":"X") span per executed job, laid out on
 * one track per worker, plus spans for the silent batch phases
 * (pre-fork trace generation, result-store lookup). The file loads
 * directly into ui.perfetto.dev or chrome://tracing, turning a sweep
 * run into a waterfall: which worker ran what, where the stragglers
 * are, and how much of the wall time the store absorbed.
 *
 * The log is a passive sink shared by every backend in the chain
 * (SweepEngine::setTraceLog): backends record spans only when a log
 * is installed, so the default costs nothing and figure output is
 * untouched either way. Recording is mutex-serialized — workers call
 * in concurrently — and timestamps are microseconds since the log's
 * construction, so spans from forked workers (reconstructed by the
 * parent from frame wall times) and in-process threads share one
 * clock.
 */

#ifndef OOVA_HARNESS_PERFETTO_HH
#define OOVA_HARNESS_PERFETTO_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace oova
{

/** One complete event on the trace timeline. */
struct TraceSpan
{
    std::string name;
    std::string category;
    uint64_t tsUs = 0;  ///< start, microseconds since log creation
    uint64_t durUs = 0; ///< duration in microseconds
    uint32_t tid = 0;   ///< track (worker) the span belongs to
    /** Extra "args" entries, shown in the Perfetto detail pane. */
    std::vector<std::pair<std::string, std::string>> args;
};

/** Thread-safe span collector; write() emits the JSON trace. */
class SweepTraceLog
{
  public:
    SweepTraceLog() : origin_(std::chrono::steady_clock::now()) {}

    /** Microseconds elapsed since the log was created. */
    uint64_t
    nowUs() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - origin_)
                .count());
    }

    void
    addSpan(TraceSpan span)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spans_.push_back(std::move(span));
    }

    /** Label @p tid's track ("worker-0", "forked-worker-3", ...). */
    void
    setThreadName(uint32_t tid, std::string name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        threadNames_[tid] = std::move(name);
    }

    size_t
    spanCount() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return spans_.size();
    }

    /** The trace as Chrome trace-event JSON text. */
    std::string render() const;

    /**
     * Render and write to @p path. Returns false (with a message on
     * stderr) when the file cannot be written.
     */
    bool write(const std::string &path) const;

  private:
    std::chrono::steady_clock::time_point origin_;
    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
    std::map<uint32_t, std::string> threadNames_;
};

} // namespace oova

#endif // OOVA_HARNESS_PERFETTO_HH
