#include "harness/resultstore.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/faultinj.hh"

namespace oova
{

namespace
{

uint64_t
fnv1a(const std::string &s, uint64_t hash)
{
    for (unsigned char c : s)
        hash = (hash ^ c) * 1099511628211ull;
    return hash;
}

/** A well-formed index key: exactly 32 lowercase hex digits. */
bool
validIndexKey(const std::string &key)
{
    if (key.size() != 32)
        return false;
    for (char c : key)
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** Open + fsync + close; best-effort (durability, not correctness). */
void
fsyncPath(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec || !std::filesystem::is_directory(dir_))
        fatal("cannot create result store directory '%s'",
              dir_.c_str());

    // Repair a torn index tail (an appender that died mid-line):
    // terminating the partial line keeps it from merging with the
    // next append into one unparsable record. Replay additionally
    // skips any line whose key is not 32 hex digits, so even an
    // unrepaired tear only costs one ignorable line.
    std::string idxPath = dir_ + "/index.log";
    std::ifstream idx(idxPath, std::ios::binary | std::ios::ate);
    if (idx) {
        auto size = idx.tellg();
        if (size > 0) {
            idx.seekg(-1, std::ios::end);
            char last = '\n';
            idx.get(last);
            idx.close();
            if (last != '\n') {
                warn("result store: repairing torn index tail in "
                     "'%s'",
                     idxPath.c_str());
                std::ofstream fix(idxPath,
                                  std::ios::app | std::ios::binary);
                fix << '\n';
            }
        }
    }
}

std::string
ResultStore::makeKey(uint64_t traceHash, const std::string &configKey,
                     double scale)
{
    // Everything that can change a result, in one canonical string.
    // %.17g round-trips every double exactly, so two processes with
    // the same scale always derive the same key.
    std::string material =
        csprintf("schema=%d|trace=%016llx|cfg=%s|scale=%.17g",
                 SimResult::kResultSchemaVersion,
                 static_cast<unsigned long long>(traceHash),
                 configKey.c_str(), scale);
    // Two independent FNV-1a streams (offset basis vs. its
    // complement) give a 128-bit key; collisions would silently
    // serve the wrong result, so 64 bits alone is not enough.
    uint64_t lo = fnv1a(material, 14695981039346656037ull);
    uint64_t hi = fnv1a(material, ~14695981039346656037ull);
    return csprintf("%016llx%016llx",
                    static_cast<unsigned long long>(hi),
                    static_cast<unsigned long long>(lo));
}

std::string
ResultStore::entryPath(const std::string &key) const
{
    return dir_ + "/" + key + ".json";
}

std::string
ResultStore::headerLine(const std::string &key) const
{
    // First line of every entry: self-describing and self-checking,
    // so a renamed or truncated file can never parse as a hit.
    return csprintf("OOVA-RESULT store=%d schema=%d key=%s",
                    kStoreVersion, SimResult::kResultSchemaVersion,
                    key.c_str());
}

bool
ResultStore::load(const std::string &key, SimResult &out)
{
    auto miss = [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return false;
    };
    // An entry that exists but cannot be trusted is evidence —
    // quarantine it instead of leaving a perpetual silent miss
    // behind; the caller re-simulates and store() heals the key.
    auto corrupt = [&] {
        quarantine(key);
        return miss();
    };

    std::ifstream is(entryPath(key), std::ios::binary);
    if (!is)
        return miss();
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is.good() && !is.eof())
        return miss();
    std::string body = buf.str();

    size_t nl = body.find('\n');
    if (nl == std::string::npos ||
        body.substr(0, nl) != headerLine(key))
        return corrupt();
    if (!SimResult::fromJson(body.substr(nl + 1), out))
        return corrupt();

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    stats_.bytesRead += body.size();
    return true;
}

void
ResultStore::quarantine(const std::string &key)
{
    std::string from = entryPath(key);
    std::string to = dir_ + "/" + key + ".bad";
    // rename() is atomic, so of any number of concurrent readers
    // tripping over the same corrupt entry exactly one wins the
    // rename — only that one counts and reports it.
    if (std::rename(from.c_str(), to.c_str()) != 0)
        return;
    warn("result store: quarantined corrupt entry '%s' -> '%s'",
         from.c_str(), to.c_str());
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.quarantined;
}

void
ResultStore::store(const std::string &key, const SimResult &res)
{
    std::string body = headerLine(key) + "\n" + res.toJson();
    // Injected corruption: publish only half the entry, the on-disk
    // shape a lost write or truncated copy leaves behind. load()
    // must quarantine it, never serve or perpetually re-miss it.
    if (faultinj::shouldFire(faultinj::Site::StoreCorrupt))
        body.resize(body.size() / 2);

    uint64_t seq;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        seq = tmpSeq_++;
    }
    // Unique per (process, thread-serialized sequence): concurrent
    // writers — including other processes sharing the store — never
    // collide on the temp name, and rename() makes the final entry
    // appear atomically or not at all.
    std::string tmp =
        csprintf("%s/.tmp.%s.%d.%llu", dir_.c_str(), key.c_str(),
                 static_cast<int>(::getpid()),
                 static_cast<unsigned long long>(seq));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        os.write(body.data(),
                 static_cast<std::streamsize>(body.size()));
        if (!os.good()) {
            warn("result store: cannot write '%s'", tmp.c_str());
            os.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    // Data before name: with the entry bytes on stable storage
    // before the rename publishes them, a crash can never leave a
    // published-but-hollow entry.
    if (fsync_)
        fsyncPath(tmp);
    if (std::rename(tmp.c_str(), entryPath(key).c_str()) != 0) {
        warn("result store: cannot publish '%s'",
             entryPath(key).c_str());
        std::remove(tmp.c_str());
        return;
    }
    if (fsync_)
        fsyncPath(dir_);

    // Advisory provenance log; one formatted line per append so
    // interleaved writers stay line-atomic in practice.
    {
        std::string line =
            csprintf("%s %s %s\n", key.c_str(), res.program.c_str(),
                     res.machine.c_str());
        // Injected tear: half a line, no newline — the ctor repair
        // and the hex-key filter in replay must both shrug it off.
        if (faultinj::shouldFire(faultinj::Site::StoreTornIndex))
            line.resize(line.size() / 2);
        std::ofstream idx(dir_ + "/index.log",
                          std::ios::app | std::ios::binary);
        idx << line;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stores;
        stats_.bytesWritten += body.size();
    }
    if (maxBytes_ != 0)
        enforceCap();
}

void
ResultStore::setMaxBytes(uint64_t bytes)
{
    maxBytes_ = bytes;
}

void
ResultStore::enforceCap()
{
    // index.log is append-only, so its line order is the entries'
    // age order. A key can appear more than once — concurrent
    // writers of one key all win, and an evicted key may be
    // re-stored later — so a key's age is its *last* occurrence: a
    // rewrite makes the entry fresh again.
    std::vector<std::string> keys;
    std::unordered_set<std::string> seen;
    {
        std::vector<std::string> raw;
        std::ifstream idx(dir_ + "/index.log", std::ios::binary);
        std::string line;
        while (std::getline(idx, line)) {
            size_t sp = line.find(' ');
            std::string key =
                sp == std::string::npos ? line : line.substr(0, sp);
            // A torn append (no trailing newline before the next
            // writer's line, or a half-written key) yields a
            // malformed key; skipping it degrades gracefully —
            // worst case one entry ages as if never refreshed.
            if (validIndexKey(key))
                raw.push_back(std::move(key));
        }
        for (size_t i = raw.size(); i-- > 0;)
            if (seen.insert(raw[i]).second)
                keys.push_back(std::move(raw[i]));
        std::reverse(keys.begin(), keys.end());
    }

    uint64_t total = 0;
    std::vector<uint64_t> sizes(keys.size(), 0);
    std::error_code ec;
    for (size_t i = 0; i < keys.size(); ++i) {
        // Already-evicted (or foreign-process-evicted) entries leave
        // stale index lines behind; a missing file simply costs 0.
        uint64_t sz = std::filesystem::file_size(entryPath(keys[i]),
                                                 ec);
        if (ec) {
            ec.clear();
            continue;
        }
        sizes[i] = sz;
        total += sz;
    }

    uint64_t evicted = 0;
    for (size_t i = 0; i < keys.size() && total > maxBytes_; ++i) {
        if (sizes[i] == 0)
            continue;
        // Unlink is atomic: a reader mid-race gets a clean miss. A
        // concurrent evictor may have won; only count our removal.
        if (std::remove(entryPath(keys[i]).c_str()) == 0)
            ++evicted;
        total -= sizes[i];
    }
    if (evicted != 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.evictions += evicted;
    }
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace oova
