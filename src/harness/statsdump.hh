/**
 * @file
 * gem5-style statistics dump for sweep results (--stats FILE).
 *
 * One Begin/End block per simulation result, each line a
 * `name value` pair with the name left-justified in a fixed-width
 * column — the classic stats.txt grammar, so existing gem5 tooling
 * (grep pipelines, stat-diff scripts) works unchanged:
 *
 *   ---------- Begin Simulation Statistics ----------
 *   hydro2d.OOOVA-16r.cycles                              123456
 *   hydro2d.OOOVA-16r.occupancy.rob.mean                  41.25
 *   ...
 *   ---------- End Simulation Statistics   ----------
 *
 * Names are `<program>.<machine>.<stat>` with '/' mapped to '.' and
 * spaces to '_' so every name is one dot-separated token. Every
 * registered occupancy structure (enum OccStruct) is emitted for
 * every result — zero-sample distributions included — so the set of
 * lines per block is a function of the schema, never of the run.
 */

#ifndef OOVA_HARNESS_STATSDUMP_HH
#define OOVA_HARNESS_STATSDUMP_HH

#include <string>
#include <vector>

#include "mem/simresult.hh"

namespace oova
{

/** The full dump text for @p results, in order. */
std::string renderStatsDump(const std::vector<SimResult> &results);

/**
 * Render and write the dump to @p path ("-" writes to stdout).
 * Returns false (with a message on stderr) when the file cannot be
 * written.
 */
bool writeStatsDump(const std::string &path,
                    const std::vector<SimResult> &results);

} // namespace oova

#endif // OOVA_HARNESS_STATSDUMP_HH
