/**
 * @file
 * Deterministic fault injection for the sweep farm (OOVA_FAULT).
 *
 * Every recovery path in the farm — worker supervision, retries,
 * store quarantine, index repair, the in-process fallback — is dead
 * code until something fails, and real failures are neither portable
 * nor reproducible. This harness makes them both: code at each
 * failure-prone site asks shouldFire() whether the *nth* passage
 * through that site should fail, and the spec arming those counters
 * comes from one environment variable, so a fault schedule is a
 * string that replays identically on every machine and in CI.
 *
 * Spec grammar (also documented in README "Fault tolerance"):
 *
 *   OOVA_FAULT=<site>:<nth>[,<site>:<nth>...]
 *
 * where <site> is one of the kebab-case names below and <nth> is a
 * 1-based count of evaluations of that site *in the evaluating
 * process*. Parent-side sites (worker-exit, worker-hang, fork-fail,
 * store-corrupt, store-torn-index) count per spawn attempt or store
 * write in the sweep process; frame sites (frame-truncate,
 * frame-garbage) count per frame inside each worker, and respawned
 * workers are disarmed so an injected frame fault cannot re-fire
 * forever. A malformed spec is a user error and fatal()s.
 */

#ifndef OOVA_HARNESS_FAULTINJ_HH
#define OOVA_HARNESS_FAULTINJ_HH

#include <string>

namespace oova::faultinj
{

/** Injectable failure sites (names via siteName, spec-parser and
 *  README table kept in sync by lint_oova.py rule 9). */
enum class Site : unsigned
{
    /** Parent, per worker spawn: that worker _exit()s after its
     *  first frame. */
    WorkerExit = 0,
    /** Parent, per worker spawn: that worker hangs after its first
     *  frame (exercises the --job-timeout-ms watchdog). */
    WorkerHang,
    /** Worker, per frame: write a truncated frame, then die. */
    FrameTruncate,
    /** Worker, per frame: full-length frame of garbage payload. */
    FrameGarbage,
    /** Store writer, per store(): persist a truncated entry body. */
    StoreCorrupt,
    /** Store writer, per store(): tear the index.log append (half a
     *  line, no newline). */
    StoreTornIndex,
    /** Parent, per worker spawn: the fork "fails", triggering the
     *  in-process fallback. */
    ForkFail,
    NumSites,
};

/** The spec/README name of @p site, e.g. "worker-exit". */
const char *siteName(Site site);

/**
 * Count one evaluation of @p site and return true when this is one
 * of the armed occurrences of the OOVA_FAULT spec (parsed lazily,
 * once). Costs one predicted branch when no spec is set.
 * Thread-safe.
 */
bool shouldFire(Site site);

/**
 * Replace the armed plan with @p spec and zero every site counter —
 * the test-process equivalent of setting OOVA_FAULT before exec.
 * Empty spec disarms everything. Not safe concurrently with
 * shouldFire().
 */
void setSpecForTest(const std::string &spec);

/**
 * Disarm every site in this process (counters keep counting, nothing
 * fires). Respawned workers call this: they inherit the armed plan
 * and counters through fork, and an inherited frame fault re-firing
 * on every respawn would turn one injected fault into an infinite
 * retry loop.
 */
void disarmAll();

} // namespace oova::faultinj

#endif // OOVA_HARNESS_FAULTINJ_HH
