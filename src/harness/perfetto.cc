#include "harness/perfetto.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace oova
{

namespace
{

/** Minimal JSON string escape (control chars, quote, backslash). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
SweepTraceLog::render() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[tid, name] : threadNames_) {
        sep();
        os << csprintf("{\"ph\": \"M\", \"name\": \"thread_name\", "
                       "\"pid\": 1, \"tid\": %u, "
                       "\"args\": {\"name\": \"%s\"}}",
                       tid, escape(name).c_str());
    }
    for (const TraceSpan &s : spans_) {
        sep();
        os << csprintf("{\"ph\": \"X\", \"name\": \"%s\", "
                       "\"cat\": \"%s\", \"pid\": 1, \"tid\": %u, "
                       "\"ts\": %llu, \"dur\": %llu",
                       escape(s.name).c_str(),
                       escape(s.category).c_str(), s.tid,
                       static_cast<unsigned long long>(s.tsUs),
                       static_cast<unsigned long long>(s.durUs));
        if (!s.args.empty()) {
            os << ", \"args\": {";
            for (size_t i = 0; i < s.args.size(); ++i) {
                if (i)
                    os << ", ";
                os << "\"" << escape(s.args[i].first) << "\": \""
                   << escape(s.args[i].second) << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]\n}\n";
    return os.str();
}

bool
SweepTraceLog::write(const std::string &path) const
{
    std::string text = render();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "--perfetto: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size() && std::fclose(f) == 0;
    if (!ok)
        std::fprintf(stderr, "--perfetto: short write to '%s'\n",
                     path.c_str());
    return ok;
}

} // namespace oova
