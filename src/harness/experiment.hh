/**
 * @file
 * Shared machinery for the bench binaries that regenerate the
 * paper's tables and figures: a cached workload set, standard
 * machine-configuration builders, and speedup helpers.
 */

#ifndef OOVA_HARNESS_EXPERIMENT_HH
#define OOVA_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/config.hh"
#include "core/ideal.hh"
#include "core/ooosim.hh"
#include "harness/tracecache.hh"
#include "ref/refsim.hh"
#include "tgen/benchmarks.hh"

namespace oova
{

/**
 * Generates and caches the ten benchmark traces. The trace scale can
 * be adjusted with the OOVA_SCALE environment variable (default 1.0)
 * to trade bench runtime against steady-state fidelity.
 *
 * A thin wrapper over TraceCache, kept for the single-threaded
 * call sites and tests; references returned by get() are stable for
 * the lifetime of the Workloads object (the cache pre-creates every
 * entry, so no lookup ever reallocates another trace's storage),
 * and get() is safe to call concurrently.
 */
class Workloads
{
  public:
    explicit Workloads(double scale = envScale());

    /** The trace for one benchmark (generated on first use). */
    const Trace &get(const std::string &name);

    /** All ten, in the paper's order. */
    const std::vector<std::string> &names() const;

    double scale() const { return cache_.scale(); }

    /** Scale from OOVA_SCALE, or 1.0. */
    static double envScale();

  private:
    TraceCache cache_;
};

/** Reference machine at a given memory latency. */
RefConfig makeRefConfig(unsigned mem_latency);

/** OOOVA with the paper's default parameters, varying the knobs. */
OooConfig makeOooConfig(unsigned phys_vregs = 16,
                        unsigned queue_size = 16,
                        unsigned mem_latency = 50,
                        CommitMode commit = CommitMode::Early,
                        LoadElimMode elim = LoadElimMode::None);

/** Default OOOVA over a banked memory hierarchy. */
OooConfig makeBankedOooConfig(unsigned banks,
                              unsigned mem_latency = 50,
                              unsigned address_ports = 1);

/** Reference machine over a banked memory hierarchy. */
RefConfig makeBankedRefConfig(unsigned banks,
                              unsigned mem_latency = 50,
                              unsigned address_ports = 1);

/** Default OOOVA over banked memory with N load/store units. */
OooConfig makeMultiUnitOooConfig(unsigned banks, unsigned units,
                                 LsPolicy policy = LsPolicy::Shared,
                                 unsigned mem_latency = 50);

/** An enabled TLB with the standard sweep knobs. */
TlbConfig makeTlb(unsigned entries, unsigned page_bytes = 4096,
                  TlbRefill refill = TlbRefill::HardwareWalk);

/**
 * Default OOOVA on the flat bus with a TLB in front, isolating
 * translation cost from bank effects (the memtlb figure).
 */
OooConfig makeTlbOooConfig(unsigned entries,
                           unsigned page_bytes = 4096,
                           unsigned mem_latency = 50,
                           CommitMode commit = CommitMode::Early,
                           TlbRefill refill = TlbRefill::HardwareWalk);

/**
 * Reference machine over banked memory with a TLB in front (the
 * memgather TLB-interaction section).
 */
RefConfig makeTlbBankedRefConfig(unsigned banks, unsigned entries,
                                 unsigned page_bytes = 4096,
                                 unsigned mem_latency = 50);

/**
 * base.cycles / x.cycles — how much faster x is than base. A result
 * with x.cycles == 0 can only come from a broken simulation, so the
 * degenerate case returns NaN (rendered as "nan" in tables) instead
 * of a value that could be mistaken for a measurement.
 */
double speedup(const SimResult &base, const SimResult &x);

} // namespace oova

#endif // OOVA_HARNESS_EXPERIMENT_HH
