#include "harness/backend.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "check/check.hh"
#include "common/logging.hh"
#include "harness/perfetto.hh"
#include "trace/trace_io.hh"

namespace oova
{

JobOutcome
runSweepJob(const TraceCache &traces, const SweepJob &job)
{
    JobOutcome o;
    auto t0 = std::chrono::steady_clock::now();
    const Trace &t =
        job.inlineTrace ? *job.inlineTrace : traces.get(job.trace);
    o.result = job.run(t);
    o.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    if (o.result.program.empty())
        o.result.program = job.trace;
    return o;
}

namespace
{

unsigned
defaultedWorkers(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/**
 * Record one finished job on @p tid's track, anchored at its end
 * time @p endUs so the span covers [end - dur, end] — the only
 * placement the forked protocol supports (a frame carries the
 * duration; the arrival is the end), applied uniformly.
 */
void
recordJobSpan(SweepTraceLog *log, const JobOutcome &o, uint32_t tid,
              uint64_t endUs, uint64_t dur)
{
    TraceSpan s;
    s.name = o.result.machine.empty()
                 ? o.result.program + " (prefetch)"
                 : o.result.program + " " + o.result.machine;
    s.category = o.fromStore ? "store-hit" : "sim";
    s.durUs = dur;
    s.tsUs = endUs >= dur ? endUs - dur : 0;
    s.tid = tid;
    s.args = {{"program", o.result.program},
              {"machine", o.result.machine},
              {"cached", o.fromStore ? "true" : "false"}};
    log->addSpan(std::move(s));
}

} // namespace

// ------------------------------------------------------ in-process

InProcessBackend::InProcessBackend(const TraceCache &traces,
                                   unsigned threads)
    : traces_(traces), threads_(defaultedWorkers(threads))
{
}

std::string
InProcessBackend::describe() const
{
    return csprintf("in-process x%u", threads_);
}

std::vector<JobOutcome>
InProcessBackend::run(const std::vector<SweepJob> &jobs)
{
    std::vector<JobOutcome> out(jobs.size());
    std::atomic<size_t> done{0};

    auto runOne = [&](size_t i, uint32_t tid) {
        out[i] = runSweepJob(traces_, jobs[i]);
        if (traceLog_)
            recordJobSpan(
                traceLog_, out[i], tid, traceLog_->nowUs(),
                static_cast<uint64_t>(out[i].wallMs * 1000.0));
        if (progress_)
            progress_(done.fetch_add(1) + 1, jobs.size());
    };

    unsigned workers = threads_;
    if (jobs.size() < workers)
        workers = static_cast<unsigned>(jobs.size());

    if (traceLog_)
        for (unsigned k = 0; k < std::max(workers, 1u); ++k)
            traceLog_->setThreadName(k, csprintf("worker-%u", k));

    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            runOne(i, 0);
        return out;
    }

    // Each worker claims the next unstarted index; results land in
    // their submission-order slot, so completion order is invisible.
    std::atomic<size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= jobs.size())
                    return;
                try {
                    runOne(i, w);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
    return out;
}

// ---------------------------------------------------------- forked

namespace
{

/**
 * One pipe frame: fixed header then @c len payload bytes. The
 * sentinel frame (idx == kDoneIdx) ends a worker's stream and
 * carries its invariant-audit violation delta in @c wallUs.
 */
struct FrameHeader
{
    uint32_t len = 0;
    uint64_t idx = 0;
    uint64_t wallUs = 0;
};

constexpr uint64_t kDoneIdx = ~0ull;
/** Far above any toJson() payload; a violation means a torn pipe. */
constexpr uint32_t kMaxFrameLen = 1u << 20;

bool
writeAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
readAll(int fd, void *data, size_t n)
{
    char *p = static_cast<char *>(data);
    while (n > 0) {
        ssize_t r = ::read(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false; // EOF mid-frame
        p += r;
        n -= static_cast<size_t>(r);
    }
    return true;
}

bool
sendFrame(int fd, uint64_t idx, uint64_t wallUs,
          const std::string &payload)
{
    FrameHeader h;
    h.len = static_cast<uint32_t>(payload.size());
    h.idx = idx;
    h.wallUs = wallUs;
    return writeAll(fd, &h, sizeof(h)) &&
           writeAll(fd, payload.data(), payload.size());
}

/**
 * Worker-process body: run this worker's (round-robin) share of the
 * batch, stream each result back, then the violation sentinel.
 * Exits the process — never returns — and uses _exit so the child
 * cannot flush inherited stdio buffers or run parent atexit hooks.
 */
[[noreturn]] void
workerLoop(const TraceCache &traces,
           const std::vector<SweepJob> &jobs, unsigned worker,
           unsigned stride, int fd, uint64_t parentViolations)
{
    try {
        for (size_t i = worker; i < jobs.size(); i += stride) {
            JobOutcome o = runSweepJob(traces, jobs[i]);
            auto us = static_cast<uint64_t>(o.wallMs * 1000.0);
            if (!sendFrame(fd, i, us, o.result.toJson()))
                _exit(1);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep worker %u: %s\n", worker,
                     e.what());
        _exit(1);
    } catch (...) {
        std::fprintf(stderr, "sweep worker %u: unknown exception\n",
                     worker);
        _exit(1);
    }
    // The child's tally was inherited from the parent at fork time;
    // report only what this worker's jobs added.
    uint64_t delta =
        check::processViolationCount() - parentViolations;
    if (!sendFrame(fd, kDoneIdx, delta, ""))
        _exit(1);
    _exit(0);
}

} // namespace

ForkedBackend::ForkedBackend(const TraceCache &traces,
                             unsigned workers)
    : traces_(traces), workers_(defaultedWorkers(workers))
{
}

std::string
ForkedBackend::describe() const
{
    return csprintf("forked x%u", workers_);
}

std::vector<JobOutcome>
ForkedBackend::run(const std::vector<SweepJob> &jobs)
{
    std::vector<JobOutcome> out(jobs.size());
    if (jobs.empty())
        return out;

    // Generate every named trace up front (with a transient thread
    // pool, matching the in-process backend's parallelism) so the
    // forked children inherit the generated pages copy-on-write
    // instead of each regenerating its own copies.
    uint64_t genStartUs = traceLog_ ? traceLog_->nowUs() : 0;
    size_t namedTraces = 0;
    {
        std::vector<std::string> names;
        for (const auto &job : jobs)
            if (!job.inlineTrace)
                names.push_back(job.trace);
        std::atomic<size_t> next{0};
        unsigned genThreads = std::min<size_t>(
            workers_, names.empty() ? 1 : names.size());
        std::vector<std::thread> pool;
        for (unsigned w = 0; w < genThreads; ++w)
            pool.emplace_back([&] {
                for (;;) {
                    size_t i = next.fetch_add(1);
                    if (i >= names.size())
                        return;
                    traces_.get(names[i]);
                }
            });
        for (auto &t : pool)
            t.join();
        namedTraces = names.size();
    }
    if (traceLog_) {
        // The pre-fork generation phase is otherwise invisible: no
        // job runs during it, yet on a cold cache it can dominate
        // the sweep's wall time.
        traceLog_->setThreadName(0, "sweep-main");
        TraceSpan gen;
        gen.name = "trace-gen";
        gen.category = "sweep";
        gen.tsUs = genStartUs;
        gen.durUs = traceLog_->nowUs() - genStartUs;
        gen.tid = 0;
        gen.args = {{"traces", csprintf("%zu", namedTraces)}};
        traceLog_->addSpan(std::move(gen));
    }

    unsigned w = workers_;
    if (jobs.size() < w)
        w = static_cast<unsigned>(jobs.size());

    uint64_t parentViolations = check::processViolationCount();

    // Stdio buffers are duplicated into each child; flush now so a
    // child can never replay half-written parent output.
    std::fflush(stdout);
    std::fflush(stderr);

    std::vector<pid_t> pids(w, -1);
    std::vector<int> readFds(w, -1);
    for (unsigned k = 0; k < w; ++k) {
        int fds[2];
        if (::pipe(fds) != 0)
            fatal("sweep: cannot create worker pipe");
        pid_t pid = ::fork();
        if (pid < 0)
            fatal("sweep: cannot fork worker %u", k);
        if (pid == 0) {
            // Child: drop every parent-side read end, keep only our
            // write end.
            for (unsigned j = 0; j < k; ++j)
                ::close(readFds[j]);
            ::close(fds[0]);
            workerLoop(traces_, jobs, k, w, fds[1],
                       parentViolations);
        }
        ::close(fds[1]);
        pids[k] = pid;
        readFds[k] = fds[0];
    }

    // One reader thread per worker pipe: drains frames as they
    // arrive (a full pipe would otherwise deadlock the worker) and
    // scatters results into their submission-order slots — readers
    // touch disjoint indices, so no lock is needed on `out`.
    std::atomic<size_t> done{0};
    std::atomic<uint64_t> childViolations{0};
    std::atomic<bool> protocolOk{true};
    std::vector<char> filled(jobs.size(), 0);
    std::vector<std::thread> readers;
    readers.reserve(w);
    if (traceLog_)
        for (unsigned k = 0; k < w; ++k)
            traceLog_->setThreadName(
                1000 + k, csprintf("forked-worker-%u", k));
    for (unsigned k = 0; k < w; ++k) {
        readers.emplace_back([&, k] {
            int fd = readFds[k];
            std::string payload;
            for (;;) {
                FrameHeader h;
                if (!readAll(fd, &h, sizeof(h))) {
                    protocolOk = false; // EOF before the sentinel
                    return;
                }
                if (h.idx == kDoneIdx) {
                    childViolations += h.wallUs;
                    return;
                }
                if (h.len > kMaxFrameLen ||
                    h.idx >= jobs.size() || h.idx % w != k) {
                    protocolOk = false;
                    return;
                }
                payload.resize(h.len);
                if (!readAll(fd, payload.data(), h.len)) {
                    protocolOk = false;
                    return;
                }
                size_t i = static_cast<size_t>(h.idx);
                if (!SimResult::fromJson(payload, out[i].result)) {
                    protocolOk = false;
                    return;
                }
                out[i].wallMs =
                    static_cast<double>(h.wallUs) / 1000.0;
                filled[i] = 1;
                // The frame carries the job's duration and arrives
                // (pipe latency aside) when the job ends, which is
                // all a span needs; the worker's track is its own.
                if (traceLog_)
                    recordJobSpan(traceLog_, out[i], 1000 + k,
                                  traceLog_->nowUs(), h.wallUs);
                if (progress_)
                    progress_(done.fetch_add(1) + 1, jobs.size());
            }
        });
    }
    for (auto &t : readers)
        t.join();
    for (unsigned k = 0; k < w; ++k)
        ::close(readFds[k]);

    bool exitedClean = true;
    for (unsigned k = 0; k < w; ++k) {
        int status = 0;
        if (::waitpid(pids[k], &status, 0) != pids[k] ||
            !WIFEXITED(status) || WEXITSTATUS(status) != 0)
            exitedClean = false;
    }

    bool complete = true;
    for (char f : filled)
        complete = complete && f;
    if (!protocolOk || !exitedClean || !complete)
        fatal("sweep: a forked worker died or broke protocol; "
              "results would be incomplete");

    check::noteExternalViolations(childViolations.load());
    return out;
}

// ----------------------------------------------------------- store

StoreBackend::StoreBackend(ResultStore &store,
                           const TraceCache &traces,
                           std::unique_ptr<SweepBackend> inner)
    : store_(store), traces_(traces), inner_(std::move(inner))
{
}

std::string
StoreBackend::describe() const
{
    return "store+" + inner_->describe();
}

void
StoreBackend::setProgress(std::function<void(size_t, size_t)> cb)
{
    progress_ = std::move(cb);
}

void
StoreBackend::setTraceLog(SweepTraceLog *log)
{
    traceLog_ = log;
    inner_->setTraceLog(log);
}

std::vector<JobOutcome>
StoreBackend::run(const std::vector<SweepJob> &jobs)
{
    std::vector<JobOutcome> out(jobs.size());

    // Hash inline (synthetic) traces at most once per batch; named
    // traces are hashed once for the cache's lifetime.
    std::map<const Trace *, uint64_t> inlineHashes;
    auto traceHash = [&](const SweepJob &job) {
        if (!job.inlineTrace)
            return traces_.contentHash(job.trace);
        const Trace *t = job.inlineTrace.get();
        auto it = inlineHashes.find(t);
        if (it == inlineHashes.end())
            it = inlineHashes.emplace(t, traceContentHash(*t)).first;
        return it->second;
    };

    uint64_t lookupStartUs = traceLog_ ? traceLog_->nowUs() : 0;
    std::vector<size_t> missIdx;
    std::vector<SweepJob> missJobs;
    std::vector<std::string> missKeys;
    size_t hits = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const SweepJob &job = jobs[i];
        // Uncacheable jobs (empty configKey: prefetch dummies,
        // observe-side-effect runs) always go to the inner backend.
        std::string key;
        if (!job.configKey.empty()) {
            key = ResultStore::makeKey(traceHash(job), job.configKey,
                                       traces_.scale());
            uint64_t loadStartUs =
                traceLog_ ? traceLog_->nowUs() : 0;
            if (store_.load(key, out[i].result)) {
                out[i].fromStore = true;
                ++hits;
                // Hits get job spans too (category "store-hit",
                // cached=true), spanning the load itself — the
                // waterfall shows what a warm store saved.
                if (traceLog_) {
                    uint64_t end = traceLog_->nowUs();
                    recordJobSpan(traceLog_, out[i], 0, end,
                                  end - loadStartUs);
                }
                continue;
            }
        }
        missIdx.push_back(i);
        missJobs.push_back(job);
        missKeys.push_back(std::move(key));
    }
    if (traceLog_) {
        traceLog_->setThreadName(0, "sweep-main");
        TraceSpan lookup;
        lookup.name = "store-lookup";
        lookup.category = "store";
        lookup.tsUs = lookupStartUs;
        lookup.durUs = traceLog_->nowUs() - lookupStartUs;
        lookup.tid = 0;
        lookup.args = {{"hits", csprintf("%zu", hits)},
                       {"misses", csprintf("%zu", missIdx.size())}};
        traceLog_->addSpan(std::move(lookup));
    }

    if (progress_) {
        if (hits)
            progress_(hits, jobs.size());
        // Re-base the inner backend's progress on top of the hits.
        size_t total = jobs.size();
        size_t base = hits;
        inner_->setProgress([this, base, total](size_t d, size_t) {
            progress_(base + d, total);
        });
    } else {
        inner_->setProgress({});
    }

    if (missJobs.empty())
        return out;
    std::vector<JobOutcome> ran = inner_->run(missJobs);
    for (size_t m = 0; m < missIdx.size(); ++m) {
        if (!missKeys[m].empty())
            store_.store(missKeys[m], ran[m].result);
        out[missIdx[m]] = std::move(ran[m]);
    }
    return out;
}

} // namespace oova
