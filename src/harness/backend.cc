#include "harness/backend.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "check/check.hh"
#include "common/logging.hh"
#include "harness/faultinj.hh"
#include "harness/perfetto.hh"
#include "trace/trace_io.hh"

namespace oova
{

JobOutcome
runSweepJob(const TraceCache &traces, const SweepJob &job)
{
    JobOutcome o;
    auto t0 = std::chrono::steady_clock::now();
    const Trace &t =
        job.inlineTrace ? *job.inlineTrace : traces.get(job.trace);
    o.result = job.run(t);
    o.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    if (o.result.program.empty())
        o.result.program = job.trace;
    return o;
}

namespace
{

unsigned
defaultedWorkers(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/**
 * Record one finished job on @p tid's track, anchored at its end
 * time @p endUs so the span covers [end - dur, end] — the only
 * placement the forked protocol supports (a frame carries the
 * duration; the arrival is the end), applied uniformly.
 */
void
recordJobSpan(SweepTraceLog *log, const JobOutcome &o, uint32_t tid,
              uint64_t endUs, uint64_t dur)
{
    TraceSpan s;
    s.name = o.result.machine.empty()
                 ? o.result.program + " (prefetch)"
                 : o.result.program + " " + o.result.machine;
    s.category = o.fromStore ? "store-hit" : "sim";
    s.durUs = dur;
    s.tsUs = endUs >= dur ? endUs - dur : 0;
    s.tid = tid;
    s.args = {{"program", o.result.program},
              {"machine", o.result.machine},
              {"cached", o.fromStore ? "true" : "false"}};
    log->addSpan(std::move(s));
}

} // namespace

// ------------------------------------------------------ in-process

InProcessBackend::InProcessBackend(const TraceCache &traces,
                                   unsigned threads)
    : traces_(traces), threads_(defaultedWorkers(threads))
{
}

std::string
InProcessBackend::describe() const
{
    return csprintf("in-process x%u", threads_);
}

std::vector<JobOutcome>
InProcessBackend::run(const std::vector<SweepJob> &jobs)
{
    std::vector<JobOutcome> out(jobs.size());
    std::atomic<size_t> done{0};

    auto runOne = [&](size_t i, uint32_t tid) {
        out[i] = runSweepJob(traces_, jobs[i]);
        if (traceLog_)
            recordJobSpan(
                traceLog_, out[i], tid, traceLog_->nowUs(),
                static_cast<uint64_t>(out[i].wallMs * 1000.0));
        if (progress_)
            progress_(done.fetch_add(1) + 1, jobs.size());
    };

    unsigned workers = threads_;
    if (jobs.size() < workers)
        workers = static_cast<unsigned>(jobs.size());

    if (traceLog_)
        for (unsigned k = 0; k < std::max(workers, 1u); ++k)
            traceLog_->setThreadName(k, csprintf("worker-%u", k));

    if (workers <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            runOne(i, 0);
        return out;
    }

    // Each worker claims the next unstarted index; results land in
    // their submission-order slot, so completion order is invisible.
    std::atomic<size_t> next{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= jobs.size())
                    return;
                try {
                    runOne(i, w);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!error)
                        error = std::current_exception();
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
    return out;
}

// ---------------------------------------------------------- forked

namespace
{

/**
 * One pipe frame: fixed header then @c len payload bytes. @c vio
 * carries the job's invariant-audit violation delta, folded into
 * the parent's tally per frame so a later worker death can never
 * lose tallies already earned. The sentinel frame (idx == kDoneIdx,
 * len == 0) ends a worker's stream.
 */
struct FrameHeader
{
    uint32_t len = 0;
    uint64_t idx = 0;
    uint64_t wallUs = 0;
    uint64_t vio = 0;
};

constexpr uint64_t kDoneIdx = ~0ull;
/** Far above any toJson() payload; a violation means a torn pipe. */
constexpr uint32_t kMaxFrameLen = 1u << 20;

/** First respawn delay; doubles per respawn up to the cap. */
constexpr uint64_t kBackoffBaseMs = 25;
constexpr uint64_t kBackoffCapMs = 2000;

bool
writeAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

/**
 * Worker-side frame write. The two frame fault sites live here:
 * frame-truncate dies mid-write (what a crash between write()s
 * leaves behind), frame-garbage sends a well-formed header over a
 * corrupted payload (what a buffer bug would produce).
 */
bool
sendFrame(int fd, uint64_t idx, uint64_t wallUs, uint64_t vio,
          const std::string &payload)
{
    FrameHeader h;
    h.len = static_cast<uint32_t>(payload.size());
    h.idx = idx;
    h.wallUs = wallUs;
    h.vio = vio;
    if (faultinj::shouldFire(faultinj::Site::FrameTruncate)) {
        writeAll(fd, &h, sizeof(h));
        writeAll(fd, payload.data(), payload.size() / 2);
        _exit(1);
    }
    if (faultinj::shouldFire(faultinj::Site::FrameGarbage)) {
        std::string junk(payload.size(), '\xa5');
        return writeAll(fd, &h, sizeof(h)) &&
               writeAll(fd, junk.data(), junk.size());
    }
    return writeAll(fd, &h, sizeof(h)) &&
           writeAll(fd, payload.data(), payload.size());
}

/**
 * Worker-process body: run the assigned job indices in order,
 * stream each result back, then the sentinel. Exits the process —
 * never returns — and uses _exit so the child cannot flush
 * inherited stdio buffers or run parent atexit hooks. Respawned
 * workers disarm fault injection (see faultinj.hh); the injected
 * exit/hang faults are decided by the parent per spawn.
 */
[[noreturn]] void
workerLoop(const TraceCache &traces,
           const std::vector<SweepJob> &jobs,
           const std::vector<size_t> &mine, int fd, bool injectExit,
           bool injectHang, bool disarmFaults)
{
    if (disarmFaults)
        faultinj::disarmAll();
    bool first = true;
    try {
        for (size_t i : mine) {
            uint64_t before = check::processViolationCount();
            JobOutcome o = runSweepJob(traces, jobs[i]);
            uint64_t vio =
                check::processViolationCount() - before;
            auto us = static_cast<uint64_t>(o.wallMs * 1000.0);
            if (!sendFrame(fd, i, us, vio, o.result.toJson()))
                _exit(1);
            if (first) {
                first = false;
                if (injectExit)
                    _exit(17);
                while (injectHang)
                    ::pause();
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sweep worker: %s\n", e.what());
        _exit(1);
    } catch (...) {
        std::fprintf(stderr, "sweep worker: unknown exception\n");
        _exit(1);
    }
    // Zero assigned jobs still spawns a worker; let the injected
    // faults fire on it so a spec can never silently miss.
    if (injectExit)
        _exit(17);
    while (injectHang)
        ::pause();
    if (!sendFrame(fd, kDoneIdx, 0, 0, ""))
        _exit(1);
    _exit(0);
}

std::string
describeStatus(int status)
{
    if (WIFEXITED(status))
        return csprintf("exited with status %d",
                        WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return csprintf("killed by signal %d", WTERMSIG(status));
    return "ended with unknown status";
}

} // namespace

ForkedBackend::ForkedBackend(const TraceCache &traces,
                             unsigned workers, uint64_t jobTimeoutMs,
                             unsigned maxRetries)
    : traces_(traces), workers_(defaultedWorkers(workers)),
      jobTimeoutMs_(jobTimeoutMs), maxRetries_(maxRetries)
{
}

std::string
ForkedBackend::describe() const
{
    return csprintf("forked x%u", workers_);
}

std::vector<JobOutcome>
ForkedBackend::run(const std::vector<SweepJob> &jobs)
{
    using Clock = std::chrono::steady_clock;

    std::vector<JobOutcome> out(jobs.size());
    if (jobs.empty())
        return out;

    // Generate every named trace up front (with a transient thread
    // pool, matching the in-process backend's parallelism) so the
    // forked children inherit the generated pages copy-on-write
    // instead of each regenerating its own copies.
    uint64_t genStartUs = traceLog_ ? traceLog_->nowUs() : 0;
    size_t namedTraces = 0;
    {
        std::vector<std::string> names;
        for (const auto &job : jobs)
            if (!job.inlineTrace)
                names.push_back(job.trace);
        std::atomic<size_t> next{0};
        unsigned genThreads = std::min<size_t>(
            workers_, names.empty() ? 1 : names.size());
        std::vector<std::thread> pool;
        for (unsigned w = 0; w < genThreads; ++w)
            pool.emplace_back([&] {
                for (;;) {
                    size_t i = next.fetch_add(1);
                    if (i >= names.size())
                        return;
                    traces_.get(names[i]);
                }
            });
        for (auto &t : pool)
            t.join();
        namedTraces = names.size();
    }
    if (traceLog_) {
        // The pre-fork generation phase is otherwise invisible: no
        // job runs during it, yet on a cold cache it can dominate
        // the sweep's wall time.
        traceLog_->setThreadName(0, "sweep-main");
        TraceSpan gen;
        gen.name = "trace-gen";
        gen.category = "sweep";
        gen.tsUs = genStartUs;
        gen.durUs = traceLog_->nowUs() - genStartUs;
        gen.tid = 0;
        gen.args = {{"traces", csprintf("%zu", namedTraces)}};
        traceLog_->addSpan(std::move(gen));
    }

    unsigned w = workers_;
    if (jobs.size() < w)
        w = static_cast<unsigned>(jobs.size());

    // A dying worker must cost at most a requeue, never the sweep:
    // with SIGPIPE ignored, a write into a dead worker's pipe fails
    // with EPIPE instead of killing this process.
    std::signal(SIGPIPE, SIG_IGN);

    /** One spawned worker process and its read-side pipe state. */
    struct Slot
    {
        pid_t pid = -1;
        int fd = -1;
        /** Bytes received but not yet parsed into frames — this is
         *  what makes partial read()s of a frame a non-event. */
        std::string rx;
        /** Assigned jobs not yet answered, in execution order. */
        std::deque<size_t> pending;
        /** Last frame arrival; the watchdog's reference point. */
        Clock::time_point lastFrame;
        bool sentinel = false;
        /** Spawn ordinal across the run, for reports and spans. */
        unsigned ordinal = 0;
    };
    struct Respawn
    {
        Clock::time_point due;
        std::vector<size_t> indices;
    };

    std::vector<Slot> slots;
    std::deque<Respawn> respawnQueue;
    std::vector<unsigned> attempts(jobs.size(), 0);
    std::map<size_t, std::vector<std::string>> history;
    std::vector<char> filled(jobs.size(), 0);
    std::vector<size_t> fallbackIdx;
    bool fallbackMode = false;
    size_t done = 0;
    uint64_t childViolations = 0;
    unsigned spawned = 0;
    unsigned respawns = 0;

    auto enterFallback = [&](std::vector<size_t> lost,
                             const char *why) {
        if (!fallbackMode)
            warn("sweep: %s; falling back to in-process execution "
                 "for the affected jobs (results are unchanged — "
                 "every backend is submission-order identical)",
                 why);
        fallbackMode = true;
        faults_.fallbackJobs += lost.size();
        fallbackIdx.insert(fallbackIdx.end(), lost.begin(),
                           lost.end());
    };

    /** Fork one worker over @p indices; false when forking fails. */
    auto spawnWorker = [&](const std::vector<size_t> &indices,
                           bool isRespawn) -> bool {
        // Parent-side fault decisions, one evaluation per spawn
        // attempt (respawns included, so a spec can exhaust a job's
        // retries deterministically).
        bool injectExit =
            faultinj::shouldFire(faultinj::Site::WorkerExit);
        bool injectHang =
            faultinj::shouldFire(faultinj::Site::WorkerHang);
        bool injectForkFail =
            faultinj::shouldFire(faultinj::Site::ForkFail);
        int fds[2];
        if (::pipe(fds) != 0)
            return false;
        if (injectForkFail) {
            ::close(fds[0]);
            ::close(fds[1]);
            return false;
        }
        // Stdio buffers are duplicated into each child; flush now so
        // a child can never replay half-written parent output.
        std::fflush(stdout);
        std::fflush(stderr);
        pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            return false;
        }
        if (pid == 0) {
            // Child: drop every parent-side read end, keep only our
            // write end.
            for (const Slot &s : slots)
                if (s.fd >= 0)
                    ::close(s.fd);
            ::close(fds[0]);
            workerLoop(traces_, jobs, indices, fds[1], injectExit,
                       injectHang, isRespawn);
        }
        ::close(fds[1]);
        // Nonblocking reads let one supervisor thread drain every
        // pipe as bytes arrive, frame boundaries or not.
        int flags = ::fcntl(fds[0], F_GETFL, 0);
        ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
        Slot s;
        s.pid = pid;
        s.fd = fds[0];
        s.pending.assign(indices.begin(), indices.end());
        s.lastFrame = Clock::now();
        s.ordinal = spawned++;
        if (traceLog_)
            traceLog_->setThreadName(
                1000 + s.ordinal,
                csprintf("forked-worker-%u", s.ordinal));
        slots.push_back(std::move(s));
        return true;
    };

    /** Close + waitpid; returns the worker's exit status. */
    auto reap = [](Slot &s) -> int {
        if (s.fd >= 0) {
            ::close(s.fd);
            s.fd = -1;
        }
        int status = 0;
        if (s.pid >= 0) {
            ::waitpid(s.pid, &status, 0);
            s.pid = -1;
        }
        return status;
    };

    /**
     * Account a dead worker's unfinished jobs: one attempt burned
     * per job (exhaustion is fatal with the full history), then a
     * respawn with exponential backoff — or the fallback list once
     * forking has already failed.
     */
    auto requeueLost = [&](Slot &s, pid_t pid,
                           const std::string &reason) {
        std::vector<size_t> lost(s.pending.begin(),
                                 s.pending.end());
        s.pending.clear();
        if (lost.empty())
            return;
        for (size_t i : lost) {
            ++attempts[i];
            ++faults_.retriedJobs;
            history[i].push_back(csprintf(
                "attempt %u: worker %u (pid %d) %s", attempts[i],
                s.ordinal, static_cast<int>(pid), reason.c_str()));
            if (attempts[i] > maxRetries_) {
                std::string hist;
                for (const std::string &line : history[i])
                    hist += "  " + line + "\n";
                fatal("sweep: job %zu (program %s, machine %s) "
                      "failed %u times; --max-retries %u "
                      "exhausted:\n%s",
                      i, jobs[i].trace.c_str(),
                      jobs[i].configKey.empty()
                          ? "(uncacheable)"
                          : jobs[i].configKey.c_str(),
                      attempts[i], maxRetries_, hist.c_str());
            }
        }
        if (fallbackMode) {
            enterFallback(std::move(lost), "worker respawn "
                                           "unavailable");
            return;
        }
        unsigned shift = std::min(respawns, 6u);
        uint64_t delayMs = std::min(kBackoffBaseMs << shift,
                                    kBackoffCapMs);
        ++respawns;
        warn("sweep: worker %u (pid %d) %s; requeueing %zu jobs "
             "onto a respawned worker in %llu ms",
             s.ordinal, static_cast<int>(pid), reason.c_str(),
             lost.size(),
             static_cast<unsigned long long>(delayMs));
        respawnQueue.push_back(
            {Clock::now() + std::chrono::milliseconds(delayMs),
             std::move(lost)});
    };

    /** Kill + reap a misbehaving worker and requeue its jobs. */
    auto failWorker = [&](Slot &s, const std::string &reason) {
        pid_t pid = s.pid;
        if (s.pid >= 0)
            ::kill(s.pid, SIGKILL);
        reap(s);
        requeueLost(s, pid, reason);
    };

    /**
     * Consume every complete frame in @p s's receive buffer.
     * Returns false when the slot was closed (worker finished or
     * failed) and parsing must stop.
     */
    auto parseFrames = [&](Slot &s) -> bool {
        for (;;) {
            if (s.rx.size() < sizeof(FrameHeader))
                return true;
            FrameHeader h;
            std::memcpy(&h, s.rx.data(), sizeof(h));
            if (h.idx == kDoneIdx) {
                if (h.len != 0 || !s.pending.empty()) {
                    failWorker(
                        s, h.len != 0
                               ? std::string("sent a malformed "
                                             "sentinel frame")
                               : csprintf("claimed completion with "
                                          "%zu jobs outstanding",
                                          s.pending.size()));
                    return false;
                }
                int status = reap(s);
                if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                    warn("sweep: worker %u finished its jobs but "
                         "%s",
                         s.ordinal, describeStatus(status).c_str());
                return false;
            }
            if (h.len > kMaxFrameLen || s.pending.empty() ||
                h.idx != s.pending.front()) {
                failWorker(s, csprintf("broke frame protocol "
                                       "(header len=%u idx=%llu)",
                                       h.len,
                                       static_cast<unsigned long long>(
                                           h.idx)));
                return false;
            }
            if (s.rx.size() < sizeof(h) + h.len)
                return true; // partial frame: wait for more bytes
            size_t i = static_cast<size_t>(h.idx);
            std::string payload = s.rx.substr(sizeof(h), h.len);
            s.rx.erase(0, sizeof(h) + h.len);
            if (!SimResult::fromJson(payload, out[i].result)) {
                failWorker(s, csprintf("sent an unparsable payload "
                                       "for job %zu",
                                       i));
                return false;
            }
            out[i].wallMs = static_cast<double>(h.wallUs) / 1000.0;
            filled[i] = 1;
            s.pending.pop_front();
            s.lastFrame = Clock::now();
            childViolations += h.vio;
            ++done;
            // The frame carries the job's duration and arrives
            // (pipe latency aside) when the job ends, which is all
            // a span needs; the worker's track is its own.
            if (traceLog_)
                recordJobSpan(traceLog_, out[i], 1000 + s.ordinal,
                              traceLog_->nowUs(), h.wallUs);
            if (progress_)
                progress_(done, jobs.size());
        }
    };

    /** Drain @p s's pipe until EAGAIN, parsing frames as they
     *  complete; handles EOF (clean or premature) and errors. */
    auto drainSlot = [&](Slot &s) {
        char buf[65536];
        for (;;) {
            ssize_t r = ::read(s.fd, buf, sizeof(buf));
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return;
                failWorker(s, csprintf("pipe read failed (errno "
                                       "%d)",
                                       errno));
                return;
            }
            if (r == 0) {
                // EOF. A clean finish consumed the sentinel already
                // (parseFrames reaped the slot), so reaching here
                // means the worker died early.
                pid_t pid = s.pid;
                int status = reap(s);
                requeueLost(s, pid,
                            csprintf("exited before finishing "
                                     "(%s)",
                                     describeStatus(status)
                                         .c_str()));
                return;
            }
            s.rx.append(buf, static_cast<size_t>(r));
            if (!parseFrames(s))
                return;
        }
    };

    // Initial assignment keeps the historical striping (job i on
    // worker i mod w): deterministic and COW-friendly. A failed
    // initial fork degrades that worker's share to the fallback.
    {
        std::vector<std::vector<size_t>> initial(w);
        for (size_t i = 0; i < jobs.size(); ++i)
            initial[i % w].push_back(i);
        for (unsigned k = 0; k < w; ++k) {
            if (fallbackMode || !spawnWorker(initial[k], false))
                enterFallback(std::move(initial[k]),
                              "cannot fork a sweep worker");
        }
    }

    // The supervisor: one thread, poll()-driven. Runs until every
    // worker slot is reaped and no respawn is owed.
    for (;;) {
        bool anyLive = false;
        for (const Slot &s : slots)
            anyLive = anyLive || s.pid >= 0;
        if (!anyLive && respawnQueue.empty())
            break;

        std::vector<pollfd> pfds;
        std::vector<size_t> slotOf;
        for (size_t si = 0; si < slots.size(); ++si)
            if (slots[si].pid >= 0 && slots[si].fd >= 0) {
                pfds.push_back({slots[si].fd, POLLIN, 0});
                slotOf.push_back(si);
            }

        // Sleep until the next deadline: a watchdog expiry or a
        // respawn coming due — otherwise until bytes arrive (with a
        // coarse cap as a safety net against clock edge cases).
        Clock::time_point now = Clock::now();
        int timeoutMs = anyLive ? 10000 : 50;
        auto consider = [&](Clock::time_point due) {
            auto ms = std::chrono::duration_cast<
                          std::chrono::milliseconds>(due - now)
                          .count();
            long clamped = ms < 0 ? 0 : static_cast<long>(ms) + 1;
            if (clamped < timeoutMs)
                timeoutMs = static_cast<int>(clamped);
        };
        if (jobTimeoutMs_ != 0)
            for (const Slot &s : slots)
                if (s.pid >= 0 && !s.pending.empty())
                    consider(s.lastFrame +
                             std::chrono::milliseconds(
                                 jobTimeoutMs_));
        for (const Respawn &r : respawnQueue)
            consider(r.due);

        int ready = ::poll(pfds.data(),
                           static_cast<nfds_t>(pfds.size()),
                           timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            fatal("sweep: poll failed (errno %d)", errno);
        }
        for (size_t p = 0; p < pfds.size(); ++p)
            if (pfds[p].revents != 0)
                drainSlot(slots[slotOf[p]]);

        // Watchdog: a worker whose next frame is overdue is hung
        // (or so slow it is indistinguishable from hung) — kill it
        // and rerun its unfinished jobs elsewhere.
        if (jobTimeoutMs_ != 0) {
            now = Clock::now();
            for (Slot &s : slots) {
                if (s.pid < 0 || s.pending.empty())
                    continue;
                if (now - s.lastFrame >=
                    std::chrono::milliseconds(jobTimeoutMs_)) {
                    ++faults_.timeouts;
                    failWorker(
                        s, csprintf("timed out (no frame within "
                                    "--job-timeout-ms %llu, %zu "
                                    "jobs outstanding)",
                                    static_cast<unsigned long long>(
                                        jobTimeoutMs_),
                                    s.pending.size()));
                }
            }
        }

        // Respawns that have served their backoff.
        now = Clock::now();
        while (!respawnQueue.empty() &&
               respawnQueue.front().due <= now) {
            Respawn r = std::move(respawnQueue.front());
            respawnQueue.pop_front();
            std::sort(r.indices.begin(), r.indices.end());
            if (fallbackMode || !spawnWorker(r.indices, true))
                enterFallback(std::move(r.indices),
                              "cannot fork a replacement worker");
            else
                ++faults_.respawnedWorkers;
        }
    }

    // Graceful degradation: whatever could not be run in a worker
    // process runs right here, scattered back into submission-order
    // slots — byte-identical output, just without process isolation.
    if (!fallbackIdx.empty()) {
        std::sort(fallbackIdx.begin(), fallbackIdx.end());
        std::vector<SweepJob> rest;
        rest.reserve(fallbackIdx.size());
        for (size_t i : fallbackIdx)
            rest.push_back(jobs[i]);
        InProcessBackend inner(traces_, workers_);
        if (traceLog_)
            inner.setTraceLog(traceLog_);
        if (progress_) {
            size_t base = done;
            size_t total = jobs.size();
            inner.setProgress([this, base, total](size_t d, size_t) {
                progress_(base + d, total);
            });
        }
        std::vector<JobOutcome> ran = inner.run(rest);
        for (size_t m = 0; m < fallbackIdx.size(); ++m) {
            out[fallbackIdx[m]] = std::move(ran[m]);
            filled[fallbackIdx[m]] = 1;
        }
    }

    for (size_t i = 0; i < jobs.size(); ++i)
        if (!filled[i])
            fatal("sweep: job %zu (%s) was never completed — "
                  "supervisor accounting bug",
                  i, jobs[i].trace.c_str());

    check::noteExternalViolations(childViolations);
    return out;
}

// ----------------------------------------------------------- store

StoreBackend::StoreBackend(ResultStore &store,
                           const TraceCache &traces,
                           std::unique_ptr<SweepBackend> inner)
    : store_(store), traces_(traces), inner_(std::move(inner))
{
}

std::string
StoreBackend::describe() const
{
    return "store+" + inner_->describe();
}

void
StoreBackend::setProgress(std::function<void(size_t, size_t)> cb)
{
    progress_ = std::move(cb);
}

void
StoreBackend::setTraceLog(SweepTraceLog *log)
{
    traceLog_ = log;
    inner_->setTraceLog(log);
}

std::vector<JobOutcome>
StoreBackend::run(const std::vector<SweepJob> &jobs)
{
    std::vector<JobOutcome> out(jobs.size());

    // Hash inline (synthetic) traces at most once per batch; named
    // traces are hashed once for the cache's lifetime.
    std::map<const Trace *, uint64_t> inlineHashes;
    auto traceHash = [&](const SweepJob &job) {
        if (!job.inlineTrace)
            return traces_.contentHash(job.trace);
        const Trace *t = job.inlineTrace.get();
        auto it = inlineHashes.find(t);
        if (it == inlineHashes.end())
            it = inlineHashes.emplace(t, traceContentHash(*t)).first;
        return it->second;
    };

    uint64_t lookupStartUs = traceLog_ ? traceLog_->nowUs() : 0;
    std::vector<size_t> missIdx;
    std::vector<SweepJob> missJobs;
    std::vector<std::string> missKeys;
    size_t hits = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        const SweepJob &job = jobs[i];
        // Uncacheable jobs (empty configKey: prefetch dummies,
        // observe-side-effect runs) always go to the inner backend.
        std::string key;
        if (!job.configKey.empty()) {
            key = ResultStore::makeKey(traceHash(job), job.configKey,
                                       traces_.scale());
            uint64_t loadStartUs =
                traceLog_ ? traceLog_->nowUs() : 0;
            if (store_.load(key, out[i].result)) {
                out[i].fromStore = true;
                ++hits;
                // Hits get job spans too (category "store-hit",
                // cached=true), spanning the load itself — the
                // waterfall shows what a warm store saved.
                if (traceLog_) {
                    uint64_t end = traceLog_->nowUs();
                    recordJobSpan(traceLog_, out[i], 0, end,
                                  end - loadStartUs);
                }
                continue;
            }
        }
        missIdx.push_back(i);
        missJobs.push_back(job);
        missKeys.push_back(std::move(key));
    }
    if (traceLog_) {
        traceLog_->setThreadName(0, "sweep-main");
        TraceSpan lookup;
        lookup.name = "store-lookup";
        lookup.category = "store";
        lookup.tsUs = lookupStartUs;
        lookup.durUs = traceLog_->nowUs() - lookupStartUs;
        lookup.tid = 0;
        lookup.args = {{"hits", csprintf("%zu", hits)},
                       {"misses", csprintf("%zu", missIdx.size())}};
        traceLog_->addSpan(std::move(lookup));
    }

    if (progress_) {
        if (hits)
            progress_(hits, jobs.size());
        // Re-base the inner backend's progress on top of the hits.
        size_t total = jobs.size();
        size_t base = hits;
        inner_->setProgress([this, base, total](size_t d, size_t) {
            progress_(base + d, total);
        });
    } else {
        inner_->setProgress({});
    }

    if (missJobs.empty())
        return out;
    std::vector<JobOutcome> ran = inner_->run(missJobs);
    for (size_t m = 0; m < missIdx.size(); ++m) {
        if (!missKeys[m].empty())
            store_.store(missKeys[m], ran[m].result);
        out[missIdx[m]] = std::move(ran[m]);
    }
    return out;
}

} // namespace oova
