#include "harness/figure.hh"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "check/check.hh"
#include "common/logging.hh"

namespace oova
{

const FigureDef *
findFigure(const std::string &name)
{
    for (const auto &fig : figureRegistry())
        if (name == fig.name || name == fig.binary)
            return &fig;
    return nullptr;
}

std::string
renderFigureText(const FigureDef &fig, const FigureResult &result,
                 double scale)
{
    std::ostringstream os;
    os << "== " << fig.title << " ==\n";
    if (result.showScale)
        os << csprintf("trace scale: %.2f (set OOVA_SCALE to "
                       "change)\n",
                       scale);
    os << "\n";
    for (const auto &sec : result.sections) {
        if (!sec.heading.empty())
            os << sec.heading << "\n";
        os << sec.table.str() << "\n";
    }
    if (!result.footnote.empty())
        os << result.footnote << "\n";
    return os.str();
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
jsonStringArray(std::ostringstream &os,
                const std::vector<std::string> &items)
{
    os << "[";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(items[i]) << "\"";
    }
    os << "]";
}

/**
 * Wall times are genuinely fractional and non-deterministic; a fixed
 * precision keeps the envelope stable in shape if not in value.
 */
void
jsonManifest(std::ostringstream &os, const RunManifest &manifest)
{
    os << "  \"manifest\": {\n";
    os << "    \"schemaVersion\": " << RunManifest::kSchemaVersion
       << ",\n";
    os << "    \"scale\": " << manifest.scale << ",\n";
    os << "    \"threads\": " << manifest.threads << ",\n";
    os << csprintf("    \"wallMs\": %.3f,\n", manifest.wallMs);
    os << "    \"jobs\": [";
    for (size_t i = 0; i < manifest.jobs.size(); ++i) {
        const JobRecord &job = manifest.jobs[i];
        os << (i ? ",\n      " : "\n      ");
        os << "{\"program\": \"" << jsonEscape(job.program)
           << "\", \"machine\": \"" << jsonEscape(job.machine)
           << "\", " << csprintf("\"wallMs\": %.3f}", job.wallMs);
    }
    os << (manifest.jobs.empty() ? "]\n" : "\n    ]\n");
    os << "  },\n";
}

} // namespace

std::string
renderFigureJson(const FigureDef &fig, const FigureResult &result,
                 double scale, unsigned threads,
                 const RunManifest *manifest)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"figure\": \"" << jsonEscape(fig.name) << "\",\n";
    os << "  \"title\": \"" << jsonEscape(fig.title) << "\",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"threads\": " << threads << ",\n";
    if (manifest)
        jsonManifest(os, *manifest);
    os << "  \"sections\": [\n";
    for (size_t s = 0; s < result.sections.size(); ++s) {
        const auto &sec = result.sections[s];
        os << "    {\n";
        os << "      \"heading\": \"" << jsonEscape(sec.heading)
           << "\",\n";
        os << "      \"headers\": ";
        jsonStringArray(os, sec.table.headers());
        os << ",\n";
        os << "      \"rows\": [\n";
        const auto &rows = sec.table.rows();
        for (size_t r = 0; r < rows.size(); ++r) {
            os << "        ";
            jsonStringArray(os, rows[r]);
            os << (r + 1 < rows.size() ? ",\n" : "\n");
        }
        os << "      ]\n";
        os << "    }" << (s + 1 < result.sections.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

int
parseCommonFlag(int argc, char **argv, int &i, FigureOptions &opts)
{
    const char *arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
        opts.json = true;
        return 1;
    }
    if (std::strcmp(arg, "--progress") == 0) {
        opts.progress = true;
        return 1;
    }
    if (std::strcmp(arg, "--threads") == 0) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "--threads needs a value\n");
            return -1;
        }
        // strtoul silently wraps negative input ("-3" becomes a
        // huge unsigned), so insist on digits and a sane ceiling.
        const char *val = argv[++i];
        char *end = nullptr;
        unsigned long n = std::strtoul(val, &end, 10);
        if (!std::isdigit(static_cast<unsigned char>(val[0])) ||
            end == val || *end != '\0' || n > kMaxSweepThreads) {
            std::fprintf(stderr, "bad --threads '%s'\n", val);
            return -1;
        }
        opts.threads = static_cast<unsigned>(n);
        return 1;
    }
    if (std::strcmp(arg, "--scale") == 0) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "--scale needs a value\n");
            return -1;
        }
        char *end = nullptr;
        opts.scale = std::strtod(argv[++i], &end);
        if (end == argv[i] || *end != '\0' ||
            !std::isfinite(opts.scale) || opts.scale <= 0.0) {
            std::fprintf(stderr, "bad --scale '%s'\n", argv[i]);
            return -1;
        }
        return 1;
    }
    return 0;
}

void
installProgressMeter(SweepEngine &engine)
{
    // State shared by worker threads for the lifetime of the
    // std::function; the mutex serializes the stderr lines.
    struct Meter
    {
        std::chrono::steady_clock::time_point start =
            std::chrono::steady_clock::now();
        std::mutex mutex;
    };
    auto meter = std::make_shared<Meter>();
    engine.setProgress([meter](size_t done, size_t total) {
        std::lock_guard<std::mutex> lock(meter->mutex);
        double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - meter->start)
                .count();
        double eta =
            elapsed * static_cast<double>(total - done) /
            static_cast<double>(done);
        std::fprintf(stderr,
                     "[sweep] %zu/%zu jobs  %.1fs elapsed  "
                     "~%.1fs left\n",
                     done, total, elapsed, eta);
    });
}

int
runFigureMain(const std::string &name, int argc, char **argv)
{
    FigureOptions opts;
    opts.scale = envTraceScale();

    for (int i = 1; i < argc; ++i) {
        int r = parseCommonFlag(argc, argv, i, opts);
        if (r < 0)
            return 2;
        if (r == 0) {
            std::fprintf(stderr,
                         "usage: %s [--threads N] [--json] "
                         "[--progress] [--scale S]\n",
                         argv[0]);
            return 2;
        }
    }

    const FigureDef *fig = findFigure(name);
    if (!fig) {
        std::fprintf(stderr, "unknown figure '%s'\n", name.c_str());
        return 2;
    }

    TraceCache traces(opts.scale);
    SweepEngine engine(traces, opts.threads);
    if (opts.progress)
        installProgressMeter(engine);
    if (opts.json)
        engine.enableManifest();
    auto t0 = std::chrono::steady_clock::now();
    FigureResult result = fig->fn(engine);
    std::string out;
    if (opts.json) {
        RunManifest manifest;
        manifest.scale = traces.scale();
        manifest.threads = engine.threads();
        manifest.wallMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        manifest.jobs = engine.manifest();
        out = renderFigureJson(*fig, result, traces.scale(),
                               engine.threads(), &manifest);
    } else {
        out = renderFigureText(*fig, result, traces.scale());
    }
    std::fputs(out.c_str(), stdout);
    // Invariant-audit violations (observe-only, reported on stderr)
    // turn the exit code red without touching the figure output.
    return check::processExitCode();
}

} // namespace oova
