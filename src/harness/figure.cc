#include "harness/figure.hh"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "check/check.hh"
#include "common/logging.hh"
#include "harness/backend.hh"
#include "harness/perfetto.hh"
#include "harness/statsdump.hh"

namespace oova
{

const FigureDef *
findFigure(const std::string &name)
{
    for (const auto &fig : figureRegistry())
        if (name == fig.name || name == fig.binary)
            return &fig;
    return nullptr;
}

std::string
renderFigureText(const FigureDef &fig, const FigureResult &result,
                 double scale)
{
    std::ostringstream os;
    os << "== " << fig.title << " ==\n";
    if (result.showScale)
        os << csprintf("trace scale: %.2f (set OOVA_SCALE to "
                       "change)\n",
                       scale);
    os << "\n";
    for (const auto &sec : result.sections) {
        if (!sec.heading.empty())
            os << sec.heading << "\n";
        os << sec.table.str() << "\n";
    }
    if (!result.footnote.empty())
        os << result.footnote << "\n";
    return os.str();
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
jsonStringArray(std::ostringstream &os,
                const std::vector<std::string> &items)
{
    os << "[";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(items[i]) << "\"";
    }
    os << "]";
}

/**
 * Wall times are genuinely fractional and non-deterministic; a fixed
 * precision keeps the envelope stable in shape if not in value.
 */
void
jsonManifest(std::ostringstream &os, const RunManifest &manifest)
{
    os << "  \"manifest\": {\n";
    os << "    \"schemaVersion\": " << RunManifest::kSchemaVersion
       << ",\n";
    os << "    \"resultSchemaVersion\": "
       << manifest.resultSchemaVersion << ",\n";
    os << "    \"scale\": " << manifest.scale << ",\n";
    os << "    \"threads\": " << manifest.threads << ",\n";
    os << "    \"backend\": \"" << jsonEscape(manifest.backend)
       << "\",\n";
    os << csprintf("    \"wallMs\": %.3f,\n", manifest.wallMs);
    if (manifest.hasStore) {
        const StoreStats &s = manifest.store;
        os << csprintf("    \"store\": {\"hits\": %llu, "
                       "\"misses\": %llu, \"stores\": %llu, "
                       "\"bytesRead\": %llu, "
                       "\"bytesWritten\": %llu, "
                       "\"evictions\": %llu, "
                       "\"quarantined\": %llu},\n",
                       static_cast<unsigned long long>(s.hits),
                       static_cast<unsigned long long>(s.misses),
                       static_cast<unsigned long long>(s.stores),
                       static_cast<unsigned long long>(s.bytesRead),
                       static_cast<unsigned long long>(
                           s.bytesWritten),
                       static_cast<unsigned long long>(s.evictions),
                       static_cast<unsigned long long>(
                           s.quarantined));
    }
    const SweepFaultStats &f = manifest.faults;
    os << csprintf("    \"faults\": {\"retriedJobs\": %llu, "
                   "\"respawnedWorkers\": %llu, "
                   "\"timeouts\": %llu, "
                   "\"fallbackJobs\": %llu},\n",
                   static_cast<unsigned long long>(f.retriedJobs),
                   static_cast<unsigned long long>(
                       f.respawnedWorkers),
                   static_cast<unsigned long long>(f.timeouts),
                   static_cast<unsigned long long>(f.fallbackJobs));
    os << "    \"jobs\": [";
    for (size_t i = 0; i < manifest.jobs.size(); ++i) {
        const JobRecord &job = manifest.jobs[i];
        os << (i ? ",\n      " : "\n      ");
        os << "{\"program\": \"" << jsonEscape(job.program)
           << "\", \"machine\": \"" << jsonEscape(job.machine)
           << "\", " << csprintf("\"wallMs\": %.3f, ", job.wallMs)
           << "\"cached\": " << (job.cached ? "true" : "false")
           << "}";
    }
    os << (manifest.jobs.empty() ? "]\n" : "\n    ]\n");
    os << "  },\n";
}

} // namespace

std::string
renderFigureJson(const FigureDef &fig, const FigureResult &result,
                 double scale, unsigned threads,
                 const RunManifest *manifest)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"figure\": \"" << jsonEscape(fig.name) << "\",\n";
    os << "  \"title\": \"" << jsonEscape(fig.title) << "\",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"threads\": " << threads << ",\n";
    if (manifest)
        jsonManifest(os, *manifest);
    os << "  \"sections\": [\n";
    for (size_t s = 0; s < result.sections.size(); ++s) {
        const auto &sec = result.sections[s];
        os << "    {\n";
        os << "      \"heading\": \"" << jsonEscape(sec.heading)
           << "\",\n";
        os << "      \"headers\": ";
        jsonStringArray(os, sec.table.headers());
        os << ",\n";
        os << "      \"rows\": [\n";
        const auto &rows = sec.table.rows();
        for (size_t r = 0; r < rows.size(); ++r) {
            os << "        ";
            jsonStringArray(os, rows[r]);
            os << (r + 1 < rows.size() ? ",\n" : "\n");
        }
        os << "      ]\n";
        os << "    }" << (s + 1 < result.sections.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

namespace
{

/**
 * Match argv[i] against a value-taking @p flag, accepting both the
 * "--flag value" and "--flag=value" spellings. Returns 1 with
 * @p value set (advancing @p i past a separate value), 0 when
 * argv[i] is some other flag, -1 when the value is missing.
 */
int
takeValue(int argc, char **argv, int &i, const char *flag,
          const char **value)
{
    const char *arg = argv[i];
    size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0)
        return 0;
    if (arg[n] == '=') {
        *value = arg + n + 1;
        return 1;
    }
    if (arg[n] != '\0')
        return 0; // longer flag sharing the prefix, e.g. --store-stats
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return -1;
    }
    *value = argv[++i];
    return 1;
}

/** Shared --threads/--workers validation: digits only, sane ceiling. */
bool
parseWorkerCount(const char *flag, const char *val, unsigned &out)
{
    // strtoul silently wraps negative input ("-3" becomes a huge
    // unsigned), so insist on digits and a sane ceiling.
    char *end = nullptr;
    unsigned long n = std::strtoul(val, &end, 10);
    if (!std::isdigit(static_cast<unsigned char>(val[0])) ||
        end == val || *end != '\0' || n > kMaxSweepThreads) {
        std::fprintf(stderr, "bad %s '%s'\n", flag, val);
        return false;
    }
    out = static_cast<unsigned>(n);
    return true;
}

} // namespace

int
parseCommonFlag(int argc, char **argv, int &i, FigureOptions &opts)
{
    const char *arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
        opts.json = true;
        return 1;
    }
    if (std::strcmp(arg, "--progress") == 0) {
        opts.progress = true;
        return 1;
    }
    if (std::strcmp(arg, "--store-stats") == 0) {
        opts.storeStats = true;
        return 1;
    }
    if (std::strcmp(arg, "--store-fsync") == 0) {
        opts.storeFsync = true;
        return 1;
    }
    const char *val = nullptr;
    int r;
    if ((r = takeValue(argc, argv, i, "--threads", &val)) != 0) {
        if (r < 0 || !parseWorkerCount("--threads", val, opts.threads))
            return -1;
        opts.threadsSet = true;
        return 1;
    }
    if ((r = takeValue(argc, argv, i, "--workers", &val)) != 0) {
        if (r < 0 || !parseWorkerCount("--workers", val, opts.workers))
            return -1;
        opts.workersSet = true;
        return 1;
    }
    if ((r = takeValue(argc, argv, i, "--scale", &val)) != 0) {
        if (r < 0)
            return -1;
        char *end = nullptr;
        opts.scale = std::strtod(val, &end);
        if (end == val || *end != '\0' ||
            !std::isfinite(opts.scale) || opts.scale <= 0.0) {
            std::fprintf(stderr, "bad --scale '%s'\n", val);
            return -1;
        }
        return 1;
    }
    if ((r = takeValue(argc, argv, i, "--store-max-mb", &val)) != 0) {
        if (r < 0)
            return -1;
        char *end = nullptr;
        unsigned long long n = std::strtoull(val, &end, 10);
        if (!std::isdigit(static_cast<unsigned char>(val[0])) ||
            end == val || *end != '\0' || n == 0) {
            std::fprintf(stderr, "bad --store-max-mb '%s'\n", val);
            return -1;
        }
        opts.storeMaxMb = static_cast<uint64_t>(n);
        return 1;
    }
    if ((r = takeValue(argc, argv, i, "--job-timeout-ms", &val)) !=
        0) {
        if (r < 0)
            return -1;
        char *end = nullptr;
        unsigned long long n = std::strtoull(val, &end, 10);
        if (!std::isdigit(static_cast<unsigned char>(val[0])) ||
            end == val || *end != '\0' || n == 0) {
            std::fprintf(stderr, "bad --job-timeout-ms '%s'\n", val);
            return -1;
        }
        opts.jobTimeoutMs = static_cast<uint64_t>(n);
        opts.jobTimeoutSet = true;
        return 1;
    }
    if ((r = takeValue(argc, argv, i, "--max-retries", &val)) != 0) {
        if (r < 0)
            return -1;
        char *end = nullptr;
        unsigned long n = std::strtoul(val, &end, 10);
        if (!std::isdigit(static_cast<unsigned char>(val[0])) ||
            end == val || *end != '\0' || n == 0 ||
            n > kMaxSweepThreads) {
            std::fprintf(stderr, "bad --max-retries '%s'\n", val);
            return -1;
        }
        opts.maxRetries = static_cast<unsigned>(n);
        opts.maxRetriesSet = true;
        return 1;
    }
    if ((r = takeValue(argc, argv, i, "--store", &val)) != 0) {
        if (r < 0)
            return -1;
        if (val[0] == '\0') {
            std::fprintf(stderr, "bad --store ''\n");
            return -1;
        }
        opts.storeDir = val;
        return 1;
    }
    if ((r = takeValue(argc, argv, i, "--stats", &val)) != 0) {
        if (r < 0)
            return -1;
        if (val[0] == '\0') {
            std::fprintf(stderr, "bad --stats ''\n");
            return -1;
        }
        opts.statsPath = val;
        return 1;
    }
    if ((r = takeValue(argc, argv, i, "--perfetto", &val)) != 0) {
        if (r < 0)
            return -1;
        if (val[0] == '\0') {
            std::fprintf(stderr, "bad --perfetto ''\n");
            return -1;
        }
        opts.perfettoPath = val;
        return 1;
    }
    return 0;
}

bool
validateFigureOptions(const FigureOptions &opts)
{
    if (opts.threadsSet && opts.workersSet) {
        std::fprintf(
            stderr,
            "--threads and --workers are mutually exclusive: "
            "--threads sizes the in-process thread pool, --workers "
            "switches to forked worker processes; pass exactly "
            "one\n");
        return false;
    }
    if (opts.storeStats && opts.storeDir.empty()) {
        std::fprintf(stderr,
                     "--store-stats needs --store DIR (there are no "
                     "counters without a store)\n");
        return false;
    }
    if (opts.storeMaxMb != 0 && opts.storeDir.empty()) {
        std::fprintf(stderr,
                     "--store-max-mb needs --store DIR (there is "
                     "nothing to cap without a store)\n");
        return false;
    }
    if (opts.storeFsync && opts.storeDir.empty()) {
        std::fprintf(stderr,
                     "--store-fsync needs --store DIR (there is "
                     "nothing to sync without a store)\n");
        return false;
    }
    if (opts.jobTimeoutSet && !opts.workersSet) {
        std::fprintf(stderr,
                     "--job-timeout-ms needs --workers N (the "
                     "watchdog supervises forked workers; the "
                     "in-process backend has none)\n");
        return false;
    }
    if (opts.maxRetriesSet && !opts.workersSet) {
        std::fprintf(stderr,
                     "--max-retries needs --workers N (only forked "
                     "workers can fail and be retried)\n");
        return false;
    }
    return true;
}

SweepEngine
makeSweepEngine(const TraceCache &traces, const FigureOptions &opts,
                ResultStore *store)
{
    std::unique_ptr<SweepBackend> backend;
    if (opts.workersSet)
        backend = std::make_unique<ForkedBackend>(
            traces, opts.workers, opts.jobTimeoutMs,
            opts.maxRetries);
    else
        backend =
            std::make_unique<InProcessBackend>(traces, opts.threads);
    if (store)
        backend = std::make_unique<StoreBackend>(*store, traces,
                                                 std::move(backend));
    return SweepEngine(traces, std::move(backend));
}

void
printStoreStats(const ResultStore &store)
{
    StoreStats s = store.stats();
    uint64_t lookups = s.hits + s.misses;
    double rate = lookups == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(s.hits) /
                            static_cast<double>(lookups);
    std::fprintf(stderr,
                 "[store] dir=%s hits=%llu misses=%llu stores=%llu "
                 "bytesRead=%llu bytesWritten=%llu evictions=%llu "
                 "quarantined=%llu hitRate=%.1f%%\n",
                 store.dir().c_str(),
                 static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.misses),
                 static_cast<unsigned long long>(s.stores),
                 static_cast<unsigned long long>(s.bytesRead),
                 static_cast<unsigned long long>(s.bytesWritten),
                 static_cast<unsigned long long>(s.evictions),
                 static_cast<unsigned long long>(s.quarantined),
                 rate);
}

void
installProgressMeter(SweepEngine &engine)
{
    // State shared by worker threads for the lifetime of the
    // std::function; the mutex serializes the stderr lines.
    struct Meter
    {
        std::chrono::steady_clock::time_point start =
            std::chrono::steady_clock::now();
        std::mutex mutex;
    };
    auto meter = std::make_shared<Meter>();
    engine.setProgress([meter](size_t done, size_t total) {
        std::lock_guard<std::mutex> lock(meter->mutex);
        double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - meter->start)
                .count();
        double eta =
            elapsed * static_cast<double>(total - done) /
            static_cast<double>(done);
        std::fprintf(stderr,
                     "[sweep] %zu/%zu jobs  %.1fs elapsed  "
                     "~%.1fs left\n",
                     done, total, elapsed, eta);
    });
}

namespace
{

/** Shared by --help (stdout, exit 0) and bad usage (stderr, exit 2). */
constexpr char kFigureUsage[] =
    "[--threads N | --workers N] [--store DIR] [--store-stats]\n"
    "       [--store-max-mb N] [--store-fsync] "
    "[--job-timeout-ms N]\n"
    "       [--max-retries N] [--stats FILE] [--perfetto FILE]\n"
    "       [--json] [--progress] [--scale S]\n"
    "\n"
    "  --threads N     in-process worker threads (default backend; "
    "0 = all cores)\n"
    "  --workers N     forked worker processes instead of threads "
    "(0 = all cores)\n"
    "                  --threads and --workers are mutually "
    "exclusive: neither\n"
    "                  takes precedence, passing both is an error\n"
    "  --job-timeout-ms N  kill and respawn a forked worker whose "
    "next result is\n"
    "                  overdue by N ms, requeueing its jobs (needs "
    "--workers)\n"
    "  --max-retries N extra attempts per job after a worker "
    "failure before the\n"
    "                  sweep fails with the job's attempt history "
    "(default 2;\n"
    "                  needs --workers)\n"
    "  --store DIR     content-addressed result store: serve "
    "previously computed\n"
    "                  results from DIR, persist fresh results into "
    "it\n"
    "  --store-stats   print the [store] hit/miss line to stderr "
    "(needs --store)\n"
    "  --store-max-mb N  cap the store's payload at N MiB: storing "
    "past the cap\n"
    "                  evicts the oldest entries first (needs "
    "--store)\n"
    "  --store-fsync   fsync store entries before publishing them "
    "(crash\n"
    "                  durability; needs --store)\n"
    "  --stats FILE    gem5-style `name value` telemetry dump of "
    "every result\n"
    "                  (\"-\" = stdout); occupancy needs "
    "OOVA_TELEMETRY=1 or a\n"
    "                  telemetry figure\n"
    "  --perfetto FILE Chrome trace-event JSON of the sweep; open "
    "in\n"
    "                  ui.perfetto.dev\n"
    "  --json          machine-readable output with a run manifest\n"
    "  --progress      per-job heartbeat on stderr\n"
    "  --scale S       trace scale (overrides OOVA_SCALE)";

} // namespace

int
runFigureMain(const std::string &name, int argc, char **argv)
{
    FigureOptions opts;
    opts.scale = envTraceScale();

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s %s\n", argv[0], kFigureUsage);
            return 0;
        }
        int r = parseCommonFlag(argc, argv, i, opts);
        if (r < 0)
            return 2;
        if (r == 0) {
            std::fprintf(stderr, "usage: %s %s\n", argv[0],
                         kFigureUsage);
            return 2;
        }
    }
    if (!validateFigureOptions(opts))
        return 2;

    const FigureDef *fig = findFigure(name);
    if (!fig) {
        std::fprintf(stderr, "unknown figure '%s'\n", name.c_str());
        return 2;
    }

    TraceCache traces(opts.scale);
    std::unique_ptr<ResultStore> store;
    if (!opts.storeDir.empty()) {
        store = std::make_unique<ResultStore>(opts.storeDir);
        if (opts.storeMaxMb)
            store->setMaxBytes(opts.storeMaxMb << 20);
        if (opts.storeFsync)
            store->setFsync(true);
    }
    SweepEngine engine = makeSweepEngine(traces, opts, store.get());
    if (opts.progress)
        installProgressMeter(engine);
    if (opts.json)
        engine.enableManifest();
    SweepTraceLog traceLog;
    if (!opts.perfettoPath.empty())
        engine.setTraceLog(&traceLog);
    if (!opts.statsPath.empty())
        engine.enableResultCapture();
    auto t0 = std::chrono::steady_clock::now();
    FigureResult result = fig->fn(engine);
    std::string out;
    if (opts.json) {
        RunManifest manifest;
        manifest.scale = traces.scale();
        manifest.threads = engine.threads();
        manifest.backend = engine.backendName();
        manifest.wallMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (store) {
            manifest.hasStore = true;
            manifest.store = store->stats();
        }
        manifest.faults = engine.faultStats();
        manifest.jobs = engine.manifest();
        out = renderFigureJson(*fig, result, traces.scale(),
                               engine.threads(), &manifest);
    } else {
        out = renderFigureText(*fig, result, traces.scale());
    }
    std::fputs(out.c_str(), stdout);
    if (store && opts.storeStats)
        printStoreStats(*store);
    bool sideFilesOk = true;
    if (!opts.statsPath.empty())
        sideFilesOk = writeStatsDump(opts.statsPath,
                                     engine.captured()) &&
                      sideFilesOk;
    if (!opts.perfettoPath.empty())
        sideFilesOk = traceLog.write(opts.perfettoPath) &&
                      sideFilesOk;
    if (!sideFilesOk)
        return 1;
    // Invariant-audit violations (observe-only, reported on stderr)
    // turn the exit code red without touching the figure output.
    return check::processExitCode();
}

} // namespace oova
