#include "harness/figure.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "check/check.hh"
#include "common/logging.hh"

namespace oova
{

const FigureDef *
findFigure(const std::string &name)
{
    for (const auto &fig : figureRegistry())
        if (name == fig.name || name == fig.binary)
            return &fig;
    return nullptr;
}

std::string
renderFigureText(const FigureDef &fig, const FigureResult &result,
                 double scale)
{
    std::ostringstream os;
    os << "== " << fig.title << " ==\n";
    if (result.showScale)
        os << csprintf("trace scale: %.2f (set OOVA_SCALE to "
                       "change)\n",
                       scale);
    os << "\n";
    for (const auto &sec : result.sections) {
        if (!sec.heading.empty())
            os << sec.heading << "\n";
        os << sec.table.str() << "\n";
    }
    if (!result.footnote.empty())
        os << result.footnote << "\n";
    return os.str();
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
jsonStringArray(std::ostringstream &os,
                const std::vector<std::string> &items)
{
    os << "[";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(items[i]) << "\"";
    }
    os << "]";
}

} // namespace

std::string
renderFigureJson(const FigureDef &fig, const FigureResult &result,
                 double scale, unsigned threads)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"figure\": \"" << jsonEscape(fig.name) << "\",\n";
    os << "  \"title\": \"" << jsonEscape(fig.title) << "\",\n";
    os << "  \"scale\": " << scale << ",\n";
    os << "  \"threads\": " << threads << ",\n";
    os << "  \"sections\": [\n";
    for (size_t s = 0; s < result.sections.size(); ++s) {
        const auto &sec = result.sections[s];
        os << "    {\n";
        os << "      \"heading\": \"" << jsonEscape(sec.heading)
           << "\",\n";
        os << "      \"headers\": ";
        jsonStringArray(os, sec.table.headers());
        os << ",\n";
        os << "      \"rows\": [\n";
        const auto &rows = sec.table.rows();
        for (size_t r = 0; r < rows.size(); ++r) {
            os << "        ";
            jsonStringArray(os, rows[r]);
            os << (r + 1 < rows.size() ? ",\n" : "\n");
        }
        os << "      ]\n";
        os << "    }" << (s + 1 < result.sections.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

int
parseCommonFlag(int argc, char **argv, int &i, FigureOptions &opts)
{
    const char *arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
        opts.json = true;
        return 1;
    }
    if (std::strcmp(arg, "--threads") == 0) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "--threads needs a value\n");
            return -1;
        }
        // strtoul silently wraps negative input ("-3" becomes a
        // huge unsigned), so insist on digits and a sane ceiling.
        const char *val = argv[++i];
        char *end = nullptr;
        unsigned long n = std::strtoul(val, &end, 10);
        if (!std::isdigit(static_cast<unsigned char>(val[0])) ||
            end == val || *end != '\0' || n > kMaxSweepThreads) {
            std::fprintf(stderr, "bad --threads '%s'\n", val);
            return -1;
        }
        opts.threads = static_cast<unsigned>(n);
        return 1;
    }
    if (std::strcmp(arg, "--scale") == 0) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "--scale needs a value\n");
            return -1;
        }
        char *end = nullptr;
        opts.scale = std::strtod(argv[++i], &end);
        if (end == argv[i] || *end != '\0' ||
            !std::isfinite(opts.scale) || opts.scale <= 0.0) {
            std::fprintf(stderr, "bad --scale '%s'\n", argv[i]);
            return -1;
        }
        return 1;
    }
    return 0;
}

int
runFigureMain(const std::string &name, int argc, char **argv)
{
    FigureOptions opts;
    opts.scale = envTraceScale();

    for (int i = 1; i < argc; ++i) {
        int r = parseCommonFlag(argc, argv, i, opts);
        if (r < 0)
            return 2;
        if (r == 0) {
            std::fprintf(stderr,
                         "usage: %s [--threads N] [--json] "
                         "[--scale S]\n",
                         argv[0]);
            return 2;
        }
    }

    const FigureDef *fig = findFigure(name);
    if (!fig) {
        std::fprintf(stderr, "unknown figure '%s'\n", name.c_str());
        return 2;
    }

    TraceCache traces(opts.scale);
    SweepEngine engine(traces, opts.threads);
    FigureResult result = fig->fn(engine);
    std::string out =
        opts.json ? renderFigureJson(*fig, result, traces.scale(),
                                     engine.threads())
                  : renderFigureText(*fig, result, traces.scale());
    std::fputs(out.c_str(), stdout);
    // Invariant-audit violations (observe-only, reported on stderr)
    // turn the exit code red without touching the figure output.
    return check::processExitCode();
}

} // namespace oova
