#include "harness/statsdump.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"

namespace oova
{

namespace
{

/** Collapse a label into one dot-separated stats-name token. */
std::string
sanitizeName(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '/')
            out += '.';
        else if (c == ' ')
            out += '_';
        else
            out += c;
    }
    return out;
}

/** One `name value` line, name left-justified to the gem5 column. */
void
emit(std::ostringstream &os, const std::string &name,
     const std::string &value)
{
    os << csprintf("%-56s %s\n", name.c_str(), value.c_str());
}

void
emitU64(std::ostringstream &os, const std::string &name, uint64_t v)
{
    emit(os, name, csprintf("%llu",
                            static_cast<unsigned long long>(v)));
}

void
emitF64(std::ostringstream &os, const std::string &name, double v)
{
    emit(os, name, csprintf("%.6f", v));
}

void
emitResult(std::ostringstream &os, const SimResult &r)
{
    std::string prefix =
        sanitizeName(r.program) + "." + sanitizeName(r.machine);
    os << "---------- Begin Simulation Statistics ----------\n";
    emitU64(os, prefix + ".cycles", r.cycles);
    emitU64(os, prefix + ".instructions", r.instructions);
    emitF64(os, prefix + ".ipc",
            r.cycles == 0 ? 0.0
                          : static_cast<double>(r.instructions) /
                                static_cast<double>(r.cycles));
    for (size_t i = 0; i < kNumOccStructs; ++i) {
        const StatDistribution &d = r.occupancy[i];
        std::string p = prefix + ".occupancy." +
                        occStructName(static_cast<OccStruct>(i)) +
                        ".";
        emitU64(os, p + "samples", d.samples);
        emitU64(os, p + "min", d.minValue);
        emitU64(os, p + "max", d.maxValue);
        emitF64(os, p + "mean", d.mean());
        emitF64(os, p + "stddev", d.stddev());
        emitU64(os, p + "p95", d.p95());
        emitU64(os, p + "bucket-width", d.width);
        for (size_t b = 0; b < StatDistribution::kNumBuckets; ++b)
            emitU64(os, p + csprintf("bucket%02zu", b),
                    d.buckets[b]);
        const StatTimeSeries &ts = r.occupancyTs[i];
        emitU64(os, p + "ts-epoch-len", ts.epochLen);
        emitU64(os, p + "ts-epochs",
                static_cast<uint64_t>(ts.epochsUsed()));
        for (size_t e = 0; e < ts.epochsUsed(); ++e)
            emitF64(os, p + csprintf("ts-mean%02zu", e),
                    ts.epochMean(e));
    }
    os << "---------- End Simulation Statistics   ----------\n";
}

} // namespace

std::string
renderStatsDump(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    for (const SimResult &r : results)
        emitResult(os, r);
    return os.str();
}

bool
writeStatsDump(const std::string &path,
               const std::vector<SimResult> &results)
{
    std::string text = renderStatsDump(results);
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "--stats: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size() && std::fclose(f) == 0;
    if (!ok)
        std::fprintf(stderr, "--stats: short write to '%s'\n",
                     path.c_str());
    return ok;
}

} // namespace oova
