#include "harness/experiment.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace oova
{

Workloads::Workloads(double scale) : scale_(scale)
{
    sim_assert(scale > 0.0, "non-positive trace scale");
}

const Trace &
Workloads::get(const std::string &name)
{
    auto it = cache_.find(name);
    if (it != cache_.end())
        return it->second;
    GenOptions opts;
    opts.scale = scale_;
    auto [pos, inserted] =
        cache_.emplace(name, makeBenchmarkTrace(name, opts));
    (void)inserted;
    return pos->second;
}

const std::vector<std::string> &
Workloads::names() const
{
    return benchmarkNames();
}

double
Workloads::envScale()
{
    const char *env = std::getenv("OOVA_SCALE");
    if (!env)
        return 1.0;
    double v = std::atof(env);
    if (v <= 0.0) {
        warn("ignoring bad OOVA_SCALE '%s'", env);
        return 1.0;
    }
    return v;
}

RefConfig
makeRefConfig(unsigned mem_latency)
{
    RefConfig cfg;
    cfg.lat = LatencyTable::refDefaults();
    cfg.lat.memLatency = mem_latency;
    return cfg;
}

OooConfig
makeOooConfig(unsigned phys_vregs, unsigned queue_size,
              unsigned mem_latency, CommitMode commit,
              LoadElimMode elim)
{
    OooConfig cfg;
    cfg.lat = LatencyTable::oooDefaults();
    cfg.lat.memLatency = mem_latency;
    cfg.numPhysVRegs = phys_vregs;
    cfg.queueSize = queue_size;
    cfg.commit = commit;
    cfg.loadElim = elim;
    return cfg;
}

double
speedup(const SimResult &base, const SimResult &x)
{
    if (x.cycles == 0)
        return 0.0;
    return static_cast<double>(base.cycles) /
           static_cast<double>(x.cycles);
}

void
printHeader(const std::string &title, const Workloads &w)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("trace scale: %.2f (set OOVA_SCALE to change)\n\n",
                w.scale());
}

} // namespace oova
