#include "harness/experiment.hh"

#include <cmath>

#include "common/logging.hh"

namespace oova
{

Workloads::Workloads(double scale) : cache_(scale) {}

const Trace &
Workloads::get(const std::string &name)
{
    return cache_.get(name);
}

const std::vector<std::string> &
Workloads::names() const
{
    return cache_.names();
}

double
Workloads::envScale()
{
    return envTraceScale();
}

RefConfig
makeRefConfig(unsigned mem_latency)
{
    RefConfig cfg;
    cfg.lat = LatencyTable::refDefaults();
    cfg.lat.memLatency = mem_latency;
    return cfg;
}

OooConfig
makeOooConfig(unsigned phys_vregs, unsigned queue_size,
              unsigned mem_latency, CommitMode commit,
              LoadElimMode elim)
{
    OooConfig cfg;
    cfg.lat = LatencyTable::oooDefaults();
    cfg.lat.memLatency = mem_latency;
    cfg.numPhysVRegs = phys_vregs;
    cfg.queueSize = queue_size;
    cfg.commit = commit;
    cfg.loadElim = elim;
    return cfg;
}

OooConfig
makeBankedOooConfig(unsigned banks, unsigned mem_latency,
                    unsigned address_ports)
{
    OooConfig cfg = makeOooConfig(16, 16, mem_latency);
    cfg.mem = makeBankedMem(banks, address_ports);
    return cfg;
}

RefConfig
makeBankedRefConfig(unsigned banks, unsigned mem_latency,
                    unsigned address_ports)
{
    RefConfig cfg = makeRefConfig(mem_latency);
    cfg.mem = makeBankedMem(banks, address_ports);
    return cfg;
}

OooConfig
makeMultiUnitOooConfig(unsigned banks, unsigned units,
                       LsPolicy policy, unsigned mem_latency)
{
    OooConfig cfg = makeOooConfig(16, 16, mem_latency);
    cfg.mem = makeMultiUnitMem(banks, units, policy);
    return cfg;
}

TlbConfig
makeTlb(unsigned entries, unsigned page_bytes, TlbRefill refill)
{
    TlbConfig cfg;
    cfg.enabled = true;
    cfg.entries = entries;
    cfg.pageBytes = page_bytes;
    cfg.refill = refill;
    return cfg;
}

OooConfig
makeTlbOooConfig(unsigned entries, unsigned page_bytes,
                 unsigned mem_latency, CommitMode commit,
                 TlbRefill refill)
{
    OooConfig cfg = makeOooConfig(16, 16, mem_latency, commit);
    cfg.mem.tlb = makeTlb(entries, page_bytes, refill);
    return cfg;
}

RefConfig
makeTlbBankedRefConfig(unsigned banks, unsigned entries,
                       unsigned page_bytes, unsigned mem_latency)
{
    RefConfig cfg = makeBankedRefConfig(banks, mem_latency);
    cfg.mem.tlb = makeTlb(entries, page_bytes);
    return cfg;
}

double
speedup(const SimResult &base, const SimResult &x)
{
    if (x.cycles == 0)
        return std::nan("");
    return static_cast<double>(base.cycles) /
           static_cast<double>(x.cycles);
}

} // namespace oova
