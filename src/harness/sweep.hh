/**
 * @file
 * The parallel sweep engine. Every paper figure is a sweep — a batch
 * of (benchmark × machine configuration) simulation jobs — and this
 * engine executes such a batch through a pluggable SweepBackend
 * (in-process threads, forked worker processes, or either wrapped by
 * the content-addressed result store), against the shared TraceCache,
 * returning results in submission order so table layout is
 * deterministic regardless of completion order.
 *
 * Jobs must be independent pure functions of (trace, config); both
 * simulators satisfy this, which is what makes the --threads 1 and
 * --threads N (and --workers N, and warm-store) outputs
 * bit-identical.
 */

#ifndef OOVA_HARNESS_SWEEP_HH
#define OOVA_HARNESS_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "harness/tracecache.hh"
#include "mem/simresult.hh"
#include "ref/refsim.hh"

namespace oova
{

class SweepBackend;
class SweepTraceLog;

/** One unit of sweep work: a trace × a machine model. */
struct SweepJob
{
    /** Benchmark name, resolved through the TraceCache. */
    std::string trace;
    /** The simulation to run on that trace. */
    std::function<SimResult(const Trace &)> run;
    /**
     * When set, this trace is simulated instead of resolving
     * @c trace by name — for synthetic sweeps (e.g. the memstride
     * figure) whose traces live outside the benchmark cache. Shared
     * so several jobs can sweep configurations over one trace.
     */
    std::shared_ptr<const Trace> inlineTrace;
    /**
     * Canonical serialization of the complete machine configuration,
     * produced by sweepConfigKey(); together with the trace content
     * hash and scale it addresses this job's result in the
     * ResultStore. Empty means uncacheable (prefetch dummies, jobs
     * with observation side effects such as pipeline tracing).
     */
    std::string configKey;
};

/**
 * Canonical config-key strings: every field that can influence a
 * simulation result, enumerated explicitly (lint_oova.py checks the
 * enumeration stays complete as configs grow). checkLevel is
 * deliberately excluded — the invariant audit observes, it never
 * steers results.
 */
std::string sweepConfigKey(const RefConfig &cfg);
std::string sweepConfigKey(const OooConfig &cfg);

/** Job running the reference (in-order) simulator. */
SweepJob refJob(std::string trace, RefConfig cfg);

/** Job running the OOOVA simulator. */
SweepJob oooJob(std::string trace, OooConfig cfg);

/** Job running the OOOVA on a caller-supplied synthetic trace. */
SweepJob oooTraceJob(std::shared_ptr<const Trace> trace,
                     OooConfig cfg);

/** Job running the reference simulator on a synthetic trace. */
SweepJob refTraceJob(std::shared_ptr<const Trace> trace,
                     RefConfig cfg);

/**
 * Job computing the IDEAL bound; the result carries only .cycles
 * (and the machine label "IDEAL").
 */
SweepJob idealJob(std::string trace);

/**
 * Fault-recovery counters of a backend, accumulated across run()
 * calls: how often the supervision layer had to intervene. All zero
 * on a healthy sweep; surfaced in the --json run manifest so a run
 * that survived faults says so.
 */
struct SweepFaultStats
{
    /** Jobs requeued after their worker died, hung or broke
     *  protocol (one count per job per failure). */
    uint64_t retriedJobs = 0;
    /** Replacement workers spawned to take over requeued jobs. */
    uint64_t respawnedWorkers = 0;
    /** Workers killed by the --job-timeout-ms watchdog. */
    uint64_t timeouts = 0;
    /** Jobs that ran in-process because forking failed or stopped
     *  being worth retrying. */
    uint64_t fallbackJobs = 0;
};

/** Per-figure deltas for the run manifest. */
inline SweepFaultStats
operator-(const SweepFaultStats &a, const SweepFaultStats &b)
{
    return {a.retriedJobs - b.retriedJobs,
            a.respawnedWorkers - b.respawnedWorkers,
            a.timeouts - b.timeouts,
            a.fallbackJobs - b.fallbackJobs};
}

/**
 * One executed job's entry in the run manifest: what ran (program ×
 * machine label), how long the job took on its worker, and whether
 * the result was served from the result store instead of simulated.
 */
struct JobRecord
{
    std::string program;
    std::string machine;
    double wallMs = 0.0;
    bool cached = false;
};

/**
 * Executes batches of SweepJobs through a SweepBackend. The engine
 * owns manifest recording and prefetching; all execution policy
 * (threads, processes, store) lives in the backend.
 */
class SweepEngine
{
  public:
    /**
     * In-process convenience constructor, the default everywhere a
     * figure or test doesn't care about backends.
     *
     * @param traces  shared trace cache (must outlive the engine)
     * @param threads worker count; 0 means hardware concurrency
     */
    explicit SweepEngine(const TraceCache &traces,
                         unsigned threads = 0);

    /** Run batches through an explicit backend (takes ownership). */
    SweepEngine(const TraceCache &traces,
                std::unique_ptr<SweepBackend> backend);

    ~SweepEngine();
    SweepEngine(SweepEngine &&) noexcept;

    /**
     * Run all jobs and return their results, index-aligned with
     * @p jobs (submission order, not completion order).
     */
    std::vector<SimResult> run(const std::vector<SweepJob> &jobs) const;

    /**
     * Generate (and cache) the named traces using the worker pool,
     * for figures that read traces without simulating them.
     */
    void prefetch(const std::vector<std::string> &names) const;

    /** The backend's worker parallelism (threads or processes). */
    unsigned threads() const;
    /** The backend's self-description, e.g. "store+forked x4". */
    std::string backendName() const;
    /** The backend's fault-recovery counters (all zero when the
     *  backend has no failure modes, e.g. in-process). */
    SweepFaultStats faultStats() const;
    const TraceCache &traces() const { return traces_; }

    /**
     * Install a per-job completion callback (jobs done, batch size),
     * invoked from workers after every finished job — the callback
     * must be thread-safe. Used by --progress; never called when
     * unset, so the default costs nothing.
     */
    void setProgress(std::function<void(size_t, size_t)> cb);

    /**
     * Record a JobRecord for every job of subsequent run() calls
     * (prefetch dummies excluded). Drives the --json run manifest.
     */
    void enableManifest() { manifestEnabled_ = true; }

    /** The records accumulated since enableManifest(). */
    const std::vector<JobRecord> &manifest() const
    {
        return manifest_;
    }

    /**
     * Install a span sink on the backend chain for --perfetto; the
     * log must outlive the engine's last run(). nullptr detaches.
     */
    void setTraceLog(SweepTraceLog *log);

    /**
     * Keep a copy of every SimResult of subsequent run() calls
     * (prefetch dummies excluded). Drives the --stats dump, which
     * needs the raw telemetry after the figure has reduced its
     * results to table text.
     */
    void enableResultCapture() { captureEnabled_ = true; }

    /** The results accumulated since enableResultCapture(). */
    const std::vector<SimResult> &captured() const
    {
        return captured_;
    }

  private:
    const TraceCache &traces_;
    std::unique_ptr<SweepBackend> backend_;
    bool manifestEnabled_ = false;
    bool captureEnabled_ = false;
    /**
     * Appended after each batch's workers have joined (figures run
     * batches serially from one thread), so no lock is needed —
     * same discipline for captured_.
     */
    mutable std::vector<JobRecord> manifest_;
    mutable std::vector<SimResult> captured_;
};

/**
 * Convenience builder used by the figure implementations: collect
 * jobs while remembering their indices, run them all at once, then
 * read results back by index while assembling tables.
 */
class JobSet
{
  public:
    /** Append a job; returns its index for later lookup. */
    size_t
    add(SweepJob job)
    {
        jobs_.push_back(std::move(job));
        return jobs_.size() - 1;
    }

    size_t addRef(std::string trace, RefConfig cfg)
    {
        return add(refJob(std::move(trace), cfg));
    }
    size_t addOoo(std::string trace, OooConfig cfg)
    {
        return add(oooJob(std::move(trace), cfg));
    }
    size_t addOooTrace(std::shared_ptr<const Trace> trace,
                       OooConfig cfg)
    {
        return add(oooTraceJob(std::move(trace), cfg));
    }
    size_t addRefTrace(std::shared_ptr<const Trace> trace,
                       RefConfig cfg)
    {
        return add(refTraceJob(std::move(trace), cfg));
    }
    size_t addIdeal(std::string trace)
    {
        return add(idealJob(std::move(trace)));
    }

    /** Execute everything added so far. */
    void run(const SweepEngine &engine);

    /** Result of the job that add() numbered @p index. */
    const SimResult &operator[](size_t index) const;

    size_t size() const { return jobs_.size(); }

  private:
    std::vector<SweepJob> jobs_;
    std::vector<SimResult> results_;
};

} // namespace oova

#endif // OOVA_HARNESS_SWEEP_HH
