/**
 * @file
 * The IDEAL performance bound of figure 5: all data and memory
 * dependences removed, performance limited only by the most
 * saturated vector resource (FU1, FU2 or the memory port) over the
 * whole execution.
 */

#ifndef OOVA_CORE_IDEAL_HH
#define OOVA_CORE_IDEAL_HH

#include "common/types.hh"
#include "trace/trace.hh"

namespace oova
{

/** Per-unit work totals underlying the bound. */
struct IdealBreakdown
{
    uint64_t fu1Cycles = 0; ///< element cycles assigned to FU1
    uint64_t fu2Cycles = 0; ///< element cycles assigned to FU2
    uint64_t memCycles = 0; ///< element cycles on the address bus

    Cycle
    bound() const
    {
        uint64_t m = fu1Cycles;
        if (fu2Cycles > m)
            m = fu2Cycles;
        if (memCycles > m)
            m = memCycles;
        return m;
    }
};

/**
 * Compute the IDEAL cycle bound for a trace. Work that only FU2 can
 * execute (multiply/divide/sqrt) is pinned there; the remaining
 * vector arithmetic is balanced across FU1/FU2 greedily; every
 * memory element (scalar and vector) costs one address-bus cycle.
 */
IdealBreakdown idealBreakdown(const Trace &trace);

/** Shorthand for idealBreakdown(trace).bound(). */
Cycle idealCycles(const Trace &trace);

} // namespace oova

#endif // OOVA_CORE_IDEAL_HH
