/**
 * @file
 * Register renaming for the OOOVA (paper section 2.2): four
 * independent map tables, one per register class, each with its own
 * free list. Renaming records the previous mapping so the reorder
 * buffer can restore precise state (section 5) and so committed
 * instructions can return dead registers to the free list.
 */

#ifndef OOVA_CORE_RENAMER_HH
#define OOVA_CORE_RENAMER_HH

#include <array>
#include <vector>

#include "core/physreg.hh"

namespace oova
{

/** Physical register counts per class. */
struct RenamerConfig
{
    unsigned numPhysA = 64;
    unsigned numPhysS = 64;
    unsigned numPhysV = 16;
    unsigned numPhysM = 8;
};

/** Four map tables over four physical files. */
class Renamer
{
  public:
    explicit Renamer(const RenamerConfig &cfg);

    /** Current physical mapping of a logical register. */
    int
    mapOf(const RegId &r) const
    {
        return maps_[clsIdx(r.cls)][r.idx];
    }

    /** Can a destination of this class be renamed right now? */
    bool
    canRename(RegClass cls) const
    {
        return file(cls).hasFree();
    }

    /** Outcome of renaming a destination. */
    struct Renamed
    {
        int physDst;
        int oldPhys;
    };

    /**
     * Rename a destination: allocates a fresh physical register and
     * returns it with the previous mapping (to be stored in the
     * reorder buffer entry).
     */
    Renamed renameDst(const RegId &dst);

    /**
     * Redirect a logical register onto an existing physical register
     * (vector load elimination): claims @p phys — reviving it from
     * the free list if needed — and returns the previous mapping.
     */
    Renamed redirectDst(const RegId &dst, int phys);

    /**
     * Undo one rename (squash path): restore the old mapping and
     * drop the new register's claim.
     */
    void rollback(const RegId &dst, int phys_dst, int old_phys);

    /** Commit-side release of the overwritten old mapping. */
    void
    releaseOld(RegClass cls, int old_phys)
    {
        file(cls).release(old_phys);
    }

    PhysRegFile &file(RegClass cls) { return files_[clsIdx(cls)]; }
    const PhysRegFile &
    file(RegClass cls) const
    {
        return files_[clsIdx(cls)];
    }

    static unsigned
    clsIdx(RegClass cls)
    {
        return static_cast<unsigned>(cls);
    }

  private:
    std::array<PhysRegFile, kNumRegClasses> files_;
    std::array<std::vector<int>, kNumRegClasses> maps_;
};

} // namespace oova

#endif // OOVA_CORE_RENAMER_HH
