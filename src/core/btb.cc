#include "core/btb.hh"

#include "common/logging.hh"

namespace oova
{

Btb::Btb(unsigned entries) : entries_(entries)
{
    sim_assert(entries > 0, "BTB needs at least one entry");
}

const Btb::Entry &
Btb::entryFor(Addr pc) const
{
    return entries_[(pc >> 2) % entries_.size()];
}

Btb::Entry &
Btb::entryFor(Addr pc)
{
    return entries_[(pc >> 2) % entries_.size()];
}

bool
Btb::predictTaken(Addr pc) const
{
    const Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc)
        return false; // cold: predict not taken (fall through)
    return e.counter >= 2;
}

Addr
Btb::predictedTarget(Addr pc) const
{
    const Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc)
        return 0;
    return e.target;
}

void
Btb::update(Addr pc, bool taken, Addr target)
{
    Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc) {
        e.valid = true;
        e.tag = pc;
        e.target = target;
        e.counter = taken ? 2 : 1;
        return;
    }
    if (taken) {
        if (e.counter < 3)
            ++e.counter;
        e.target = target;
    } else if (e.counter > 0) {
        --e.counter;
    }
}

ReturnStack::ReturnStack(unsigned depth) : stack_(depth, 0)
{
    sim_assert(depth > 0, "return stack needs at least one entry");
}

void
ReturnStack::push(Addr ret_addr)
{
    stack_[top_] = ret_addr;
    top_ = (top_ + 1) % stack_.size();
    if (size_ < stack_.size())
        ++size_;
}

Addr
ReturnStack::pop()
{
    if (size_ == 0)
        return 0;
    top_ = (top_ + static_cast<unsigned>(stack_.size()) - 1) %
           stack_.size();
    --size_;
    return stack_[top_];
}

} // namespace oova
