#include "core/ooosim.hh"

#include <algorithm>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "core/btb.hh"
#include "core/renamer.hh"
#include "mem/memsystem.hh"

namespace oova
{

std::string
OooConfig::name() const
{
    std::string n = "OOOVA-" + std::to_string(queueSize) + "/" +
                    std::to_string(numPhysVRegs) + "r";
    n += commit == CommitMode::Early ? "/early" : "/late";
    if (loadElim == LoadElimMode::Sle)
        n += "/sle";
    else if (loadElim == LoadElimMode::SleVle)
        n += "/sle+vle";
    n += mem.label();
    return n;
}

namespace
{

/** One in-flight instruction; doubles as the ROB entry. */
struct RobEntry
{
    const DynInst *di = nullptr;
    SeqNum seq = 0;

    RegClass dstCls = RegClass::None;
    int physDst = -1;
    int oldPhys = -1;
    std::array<int, kMaxSrcRegs> physSrc{-1, -1, -1};

    bool started = false;          ///< began execution (early commit)
    Cycle completeAt = kNoCycle;
    Cycle depCycle = kNoCycle;     ///< cycle it left the Dep stage

    bool eliminated = false;       ///< satisfied by load elimination
    int copySrcPhys = -1;          ///< SLE: physical copy source
    bool holdsCopyClaim = false;   ///< reference held on copySrcPhys
    bool retired = false;          ///< left the ROB (committed)

    bool memIssued = false;
    Cycle memDoneAt = kNoCycle;    ///< end of its address-bus phase
    Addr rangeLo = 0, rangeHi = 0;

    bool faultArmed = false;       ///< will page-fault at issue
    bool faulted = false;          ///< fault pending trap at head
    bool wasMispredicted = false;  ///< fetch stalled on this branch

    /**
     * Software TLB refill pending trap delivery: the pages whose
     * translations the handler will install when this entry's trap
     * is taken at the ROB head. Installing only at delivery keeps a
     * squash-discarded fault marking from leaking installs (which
     * would let the squashed stream refill for free on replay).
     */
    bool tlbRefillPending = false;
    bool tlbRefillIndexed = false;
    std::vector<Addr> tlbRefillPages;
};

class OooMachine
{
  public:
    OooMachine(const Trace &trace, const OooConfig &cfg,
               const FaultInjection &fault)
        : trace_(trace), cfg_(cfg), lat_(cfg.lat), fault_(fault),
          renamer_(RenamerConfig{cfg.numPhysARegs, cfg.numPhysSRegs,
                                 cfg.numPhysVRegs, cfg.numPhysMRegs}),
          btb_(cfg.btbEntries), ras_(cfg.rasDepth),
          mem_(makeMemorySystem(cfg.mem, cfg.lat.memLatency))
    {
        pipeStage_.fill(nullptr);
    }

    SimResult run();

  private:
    // ---- per-cycle steps, in execution order ----
    unsigned commitStep();
    void resolveEliminated();
    void cleanupWaitSet();
    bool memIssueStep();
    bool issueQueue(std::vector<RobEntry *> &queue, bool vector_queue);
    bool pipeAdvance();
    bool dispatchStep();
    bool fetchStep();

    // ---- helpers ----
    bool usesVectorRegs(const DynInst &di) const;
    bool goesToMemPipe(const DynInst &di) const;
    int routeQueue(const DynInst &di) const; // 0=A 1=S 2=V 3=pipe
    bool scalarSrcsReady(const RobEntry &e) const;
    bool vectorSrcReady(int phys) const;
    bool entryOperandsReady(const RobEntry &e) const;
    void occupyVectorReadPorts(const RobEntry &e, Cycle until);
    bool memConflicts(const RobEntry &e) const;
    bool depStage(RobEntry *e);
    void applyStoreTags(RobEntry *e);
    MemTag tagFor(const DynInst &di) const;
    void executeVector(RobEntry *e);
    void executeScalar(RobEntry *e);
    void takeTrap();
    void finish(Cycle c) { endCycle_ = std::max(endCycle_, c); }
    Cycle nextEventAfter() const;

    PhysReg &
    vregOf(int phys)
    {
        return renamer_.file(RegClass::V).reg(phys);
    }

    const Trace &trace_;
    const OooConfig &cfg_;
    const LatencyTable &lat_;
    FaultInjection fault_;

    Renamer renamer_;
    Btb btb_;
    ReturnStack ras_;
    std::unique_ptr<MemorySystem> mem_;

    /** Stable storage for in-flight records; never shrinks, so
     *  pointers in the wait set survive early commit. */
    std::deque<RobEntry> slab_;

    std::deque<RobEntry *> rob_;
    std::vector<RobEntry *> aQueue_, sQueue_, vQueue_;
    std::deque<RobEntry *> pipeFifo_;
    std::array<RobEntry *, 3> pipeStage_; // 0=Issue/Rf 1=Range 2=Dep
    std::vector<RobEntry *> waitSet_;     // disambiguated mem ops
    std::vector<RobEntry *> elimWait_;    // eliminated, unresolved
    unsigned memSlotsUsed_ = 0;

    std::deque<std::pair<const DynInst *, SeqNum>> fetchBuffer_;
    size_t fetchIndex_ = 0;
    Cycle fetchStalledUntil_ = 0;  ///< kNoCycle = until resolve
    SeqNum redirectSeq_ = kNoSeq;  ///< branch fetch is stalled on
    SeqNum lastTlbTrapSeq_ = kNoSeq; ///< last TLB software-refill trap
    std::unordered_set<SeqNum> mispredictedSeqs_;

    Cycle fu1Free_ = 0, fu2Free_ = 0;
    IntervalRecorder fu1Rec_, fu2Rec_;

    Cycle now_ = 0;
    Cycle endCycle_ = 0;
    uint64_t committed_ = 0;

    // stats
    uint64_t mispredicts_ = 0;
    uint64_t vElims_ = 0, sElims_ = 0;
    uint64_t renameStalls_ = 0, robStalls_ = 0, queueStalls_ = 0;
    uint64_t traps_ = 0;
};

bool
OooMachine::usesVectorRegs(const DynInst &di) const
{
    if (di.dst.cls == RegClass::V)
        return true;
    for (unsigned i = 0; i < di.numSrc; ++i)
        if (di.src[i].cls == RegClass::V)
            return true;
    return false;
}

bool
OooMachine::goesToMemPipe(const DynInst &di) const
{
    if (di.isMem())
        return true;
    // SLE+VLE: single vector-rename point in the memory pipeline
    // (paper figure 10), so every vector-register instruction
    // traverses it.
    return cfg_.loadElim == LoadElimMode::SleVle && usesVectorRegs(di);
}

int
OooMachine::routeQueue(const DynInst &di) const
{
    if (di.isMem())
        return 3;
    if (di.isVector())
        return 2;
    if (di.isBranch() || di.dst.cls == RegClass::A)
        return 0;
    for (unsigned i = 0; i < di.numSrc; ++i)
        if (di.src[i].cls == RegClass::A)
            return 0;
    return 1;
}

bool
OooMachine::scalarSrcsReady(const RobEntry &e) const
{
    for (unsigned i = 0; i < e.di->numSrc; ++i) {
        const RegId &r = e.di->src[i];
        if (!r.valid() || r.cls == RegClass::V)
            continue;
        const PhysReg &p = renamer_.file(r.cls).reg(e.physSrc[i]);
        if (p.fullReadyAt == kNoCycle || p.fullReadyAt > now_)
            return false;
    }
    return true;
}

bool
OooMachine::vectorSrcReady(int phys) const
{
    const PhysReg &p = renamer_.file(RegClass::V).reg(phys);
    // The register's single dedicated read port must be free.
    if (p.readPortFreeAt > now_)
        return false;
    if (p.writerIsLoad && !cfg_.chainLoadsToFus)
        return p.fullReadyAt != kNoCycle && p.fullReadyAt <= now_;
    return p.chainReadyAt != kNoCycle && p.chainReadyAt <= now_;
}

bool
OooMachine::entryOperandsReady(const RobEntry &e) const
{
    if (!scalarSrcsReady(e))
        return false;
    for (unsigned i = 0; i < e.di->numSrc; ++i) {
        const RegId &r = e.di->src[i];
        if (r.cls != RegClass::V)
            continue;
        const PhysReg &p =
            renamer_.file(RegClass::V).reg(e.physSrc[i]);
        // Index vectors of gather/scatter must be fully written (the
        // memory unit needs all of them to form addresses); store
        // data and arithmetic sources chain element by element.
        bool is_index = e.di->isIndexedMem() &&
                        !(e.di->op == Opcode::VScatter && i == 0);
        if (is_index) {
            if (p.fullReadyAt == kNoCycle || p.fullReadyAt > now_ ||
                p.readPortFreeAt > now_) {
                return false;
            }
        } else if (!vectorSrcReady(e.physSrc[i])) {
            return false;
        }
    }
    return true;
}

void
OooMachine::occupyVectorReadPorts(const RobEntry &e, Cycle until)
{
    for (unsigned i = 0; i < e.di->numSrc; ++i) {
        if (e.di->src[i].cls != RegClass::V)
            continue;
        PhysReg &p = renamer_.file(RegClass::V).reg(e.physSrc[i]);
        p.readPortFreeAt = std::max(p.readPortFreeAt, until);
    }
}

// ---------------------------------------------------------------
// Commit
// ---------------------------------------------------------------

unsigned
OooMachine::commitStep()
{
    unsigned done = 0;
    while (done < cfg_.commitWidth && !rob_.empty()) {
        RobEntry &e = *rob_.front();
        if (e.faulted) {
            takeTrap();
            return done + 1; // the trap consumed this cycle
        }
        bool ok;
        if (cfg_.commit == CommitMode::Early)
            ok = e.started;
        else
            ok = e.completeAt != kNoCycle && e.completeAt <= now_;
        if (!ok)
            break;
        if (e.oldPhys >= 0)
            renamer_.releaseOld(e.dstCls, e.oldPhys);
        // Note: an early-committed eliminated load may still await
        // its source value. It stays on elimWait_ (its storage is in
        // the slab, which outlives retirement) so its destination
        // register's ready times are still established, and it keeps
        // its copy-source claim until then.
        e.retired = true;
        finish(now_ + 1);
        if (e.completeAt != kNoCycle)
            finish(e.completeAt);
        rob_.pop_front();
        ++committed_;
        ++done;
    }
    return done;
}

// ---------------------------------------------------------------
// Dynamic load elimination bookkeeping
// ---------------------------------------------------------------

MemTag
OooMachine::tagFor(const DynInst &di) const
{
    MemTag t;
    auto [lo, hi] = di.memRange();
    t.valid = true;
    t.start = lo;
    t.end = hi;
    t.vl = di.isVector() ? di.vl : 1;
    t.stride = di.isVector() ? di.strideBytes : 0;
    t.esz = di.elemSize;
    return t;
}

void
OooMachine::applyStoreTags(RobEntry *e)
{
    const DynInst &di = *e->di;
    MemTag tag = tagFor(di);
    int data_phys = e->physSrc[0]; // data register is src[0]
    RegClass data_cls = di.src[0].cls;

    // Tag the stored register: its contents now mirror this range.
    // Indexed stores (scatter) have no single stride; they only
    // invalidate.
    bool taggable = !di.isIndexedMem();
    if (taggable)
        renamer_.file(data_cls).reg(data_phys).tag = tag;

    // Conservatively invalidate every overlapping tag, in every
    // class: scalar stores must be checked against vector tags and
    // vice versa (section 6.1).
    for (unsigned c = 0; c < kNumRegClasses; ++c) {
        RegClass cls = static_cast<RegClass>(c);
        int except = (taggable && cls == data_cls) ? data_phys : -1;
        renamer_.file(cls).invalidateOverlapping(tag.start, tag.end,
                                                 except);
    }
}

// ---------------------------------------------------------------
// Memory pipeline: Dep stage
// ---------------------------------------------------------------

bool
OooMachine::depStage(RobEntry *e)
{
    const DynInst &di = *e->di;
    bool vle = cfg_.loadElim == LoadElimMode::SleVle;
    bool sle = cfg_.loadElim != LoadElimMode::None;

    // In SLE+VLE, vector sources are renamed here, in order.
    if (vle) {
        for (unsigned i = 0; i < di.numSrc; ++i)
            if (di.src[i].cls == RegClass::V)
                e->physSrc[i] = renamer_.mapOf(di.src[i]);
    }

    if (di.isMem()) {
        auto [lo, hi] = di.memRange();
        e->rangeLo = lo;
        e->rangeHi = hi;
    }

    // ---- vector load elimination ----
    if (vle && di.op == Opcode::VLoad && !e->faultArmed) {
        MemTag tag = tagFor(di);
        int match = renamer_.file(RegClass::V).findExactTag(tag);
        if (match >= 0) {
            auto ren = renamer_.redirectDst(di.dst, match);
            e->physDst = ren.physDst;
            e->oldPhys = ren.oldPhys;
            e->dstCls = RegClass::V;
            e->eliminated = true;
            e->started = true;
            e->depCycle = now_;
            ++vElims_;
            // Completion resolves once the matched register's value
            // is fully written.
            elimWait_.push_back(e);
            sim_assert(memSlotsUsed_ > 0, "mem slot underflow");
            --memSlotsUsed_;
            return true;
        }
    }

    // ---- vector destination renaming (SLE+VLE) ----
    if (vle && di.dst.cls == RegClass::V) {
        if (!renamer_.canRename(RegClass::V)) {
            ++renameStalls_;
            return false; // stall the Dep stage this cycle
        }
        auto ren = renamer_.renameDst(di.dst);
        e->physDst = ren.physDst;
        e->oldPhys = ren.oldPhys;
        e->dstCls = RegClass::V;
    }

    // ---- scalar load elimination ----
    if (sle && di.op == Opcode::SLoad && !e->faultArmed) {
        MemTag tag = tagFor(di);
        int match = renamer_.file(di.dst.cls).findExactTag(tag);
        if (match >= 0 && match != e->physDst) {
            e->eliminated = true;
            e->started = true;
            e->copySrcPhys = match;
            e->depCycle = now_;
            ++sElims_;
            // Hold the source register so it cannot be reallocated
            // before the copy's value is latched.
            PhysRegFile &f = renamer_.file(di.dst.cls);
            if (f.reg(match).inFreeList)
                f.reviveFromFreeList(match);
            else
                f.addRef(match);
            e->holdsCopyClaim = true;
            f.reg(e->physDst).tag = tag;
            elimWait_.push_back(e);
            sim_assert(memSlotsUsed_ > 0, "mem slot underflow");
            --memSlotsUsed_;
            return true;
        }
    }

    // ---- tag maintenance ----
    if (sle) {
        if (di.isLoad() && !di.isIndexedMem()) {
            if (di.isVector()) {
                // Vector tags only exist under VLE.
                if (vle)
                    vregOf(e->physDst).tag = tagFor(di);
            } else {
                renamer_.file(di.dst.cls).reg(e->physDst).tag =
                    tagFor(di);
            }
        } else if (di.isStore()) {
            applyStoreTags(e);
        }
    }

    if (di.isMem()) {
        e->depCycle = now_;
        waitSet_.push_back(e);
        return true;
    }

    // SLE+VLE vector arithmetic: move on to the V queue.
    if (vQueue_.size() >= cfg_.queueSize) {
        ++queueStalls_;
        return false;
    }
    e->depCycle = now_;
    vQueue_.push_back(e);
    sim_assert(memSlotsUsed_ > 0, "mem slot underflow");
    --memSlotsUsed_;
    return true;
}

bool
OooMachine::pipeAdvance()
{
    bool moved = false;
    if (pipeStage_[2]) {
        if (depStage(pipeStage_[2])) {
            pipeStage_[2] = nullptr;
            moved = true;
        }
    }
    if (!pipeStage_[2] && pipeStage_[1]) {
        pipeStage_[2] = pipeStage_[1]; // Range -> Dep
        pipeStage_[1] = nullptr;
        moved = true;
    }
    if (!pipeStage_[1] && pipeStage_[0]) {
        pipeStage_[1] = pipeStage_[0]; // Issue/Rf -> Range
        pipeStage_[0] = nullptr;
        moved = true;
    }
    if (!pipeStage_[0] && !pipeFifo_.empty()) {
        pipeStage_[0] = pipeFifo_.front();
        pipeFifo_.pop_front();
        moved = true;
    }
    return moved;
}

// ---------------------------------------------------------------
// Memory issue
// ---------------------------------------------------------------

bool
OooMachine::memConflicts(const RobEntry &e) const
{
    for (const RobEntry *o : waitSet_) {
        if (o->seq >= e.seq)
            break; // waitSet_ is ordered by age
        if (!(o->di->isStore() || e.di->isStore()))
            continue; // load/load never conflicts
        if (!(o->rangeLo < e.rangeHi && e.rangeLo < o->rangeHi))
            continue;
        // Conflicting older access: wait until its bus phase ends.
        if (!o->memIssued || o->memDoneAt > now_)
            return true;
    }
    return false;
}

void
OooMachine::cleanupWaitSet()
{
    std::erase_if(waitSet_, [this](RobEntry *e) {
        return e->memIssued && e->memDoneAt <= now_;
    });
}

bool
OooMachine::memIssueStep()
{
    if (mem_->freeAt() > now_)
        return false;
    for (RobEntry *e : waitSet_) {
        if (e->memIssued || e->faulted)
            continue;
        const DynInst &di = *e->di;
        MemOp mop = di.isStore() ? MemOp::Store : MemOp::Load;
        // A unit eligible for this direction must be free (with a
        // single shared unit this repeats the check above).
        if (mem_->freeAt(mop) > now_)
            continue;
        // Late commit: stores update memory only at the ROB head.
        if (cfg_.commit == CommitMode::Late && di.isStore() &&
            (rob_.empty() || rob_.front()->seq != e->seq)) {
            continue;
        }
        if (!entryOperandsReady(*e))
            continue;
        if (memConflicts(*e))
            continue;

        if (e->faultArmed) {
            // Page fault detected at translation; the trap is taken
            // when the instruction reaches the ROB head.
            e->faultArmed = false;
            e->faulted = true;
            return true;
        }

        // Gather/scatter element addresses, shared by the TLB
        // detection below and the reservation itself.
        std::vector<Addr> elem_addrs;
        if (di.isIndexedMem())
            elem_addrs = indexedElemAddrs(di);

        // Software-refilled TLB (precise traps only, hence late
        // commit): a stream whose translations are not all resident
        // traps instead of walking in hardware. The pages are
        // recorded here but installed only when the trap is
        // delivered at the ROB head, so a marking discarded by an
        // older trap's squash leaves no installs behind — the
        // squashed stream re-detects its miss and traps properly on
        // replay. One trap per dynamic instruction (the
        // lastTlbTrapSeq_ latch, set at delivery): a stream touching
        // more pages than the TLB holds would self-evict during
        // refill and re-trap forever, so its replay hardware-walks
        // the residue instead (the forward-progress guarantee every
        // software-managed TLB needs).
        if (cfg_.commit == CommitMode::Late &&
            e->seq != lastTlbTrapSeq_) {
            if (Tlb *tlb = mem_->tlb();
                tlb &&
                tlb->config().refill == TlbRefill::SoftwareTrap) {
                std::vector<Addr> pages =
                    di.isIndexedMem()
                        ? tlb->indexedPages(elem_addrs)
                        : tlb->stridedPages(di.addr, di.strideBytes,
                                            di.memElems());
                if (tlb->wouldMiss(pages)) {
                    e->tlbRefillPages = std::move(pages);
                    e->tlbRefillIndexed = di.isIndexedMem();
                    e->tlbRefillPending = true;
                    e->faulted = true;
                    return true;
                }
            }
        }

        // Gather/scatter reserve their real per-element addresses
        // (the index vector is fully available at issue), so bank
        // conflicts follow the actual index pattern; strided ops
        // reserve base + stride as before.
        MemAccess acc =
            di.isIndexedMem()
                ? mem_->reserve(now_, elem_addrs, mop)
                : mem_->reserve(now_, di.addr, di.strideBytes,
                                di.memElems(), mop);
        e->memIssued = true;
        e->started = true;
        e->memDoneAt = acc.end;
        occupyVectorReadPorts(*e, acc.end);
        sim_assert(memSlotsUsed_ > 0, "mem slot underflow");
        --memSlotsUsed_;

        if (di.isLoad()) {
            PhysReg &d = renamer_.file(di.dst.cls).reg(e->physDst);
            if (di.isVector()) {
                Cycle wstart = acc.firstData + lat_.writeXbarVector;
                d.chainReadyAt = wstart + 1;
                d.fullReadyAt = acc.lastData + lat_.writeXbarVector;
                d.writerIsLoad = true;
                e->completeAt = d.fullReadyAt;
            } else {
                Cycle ready = acc.firstData + lat_.writeXbarScalar;
                d.chainReadyAt = ready;
                d.fullReadyAt = ready;
                e->completeAt = ready;
            }
        } else {
            // Stores have no observed latency (section 2.2): once
            // issued, the address/data stream drains in the
            // background, so the instruction is complete (and, under
            // late commit, may retire) the cycle after issue. The
            // address phase still orders conflicting accesses via
            // memDoneAt.
            e->completeAt = acc.start + 1;
        }
        finish(e->completeAt);
        finish(e->memDoneAt);
        return true;
    }
    return false;
}

// ---------------------------------------------------------------
// Queue issue
// ---------------------------------------------------------------

void
OooMachine::executeVector(RobEntry *e)
{
    const DynInst &di = *e->di;
    int fu;
    if (di.traits().fu2Only)
        fu = 2;
    else
        fu = fu1Free_ <= fu2Free_ ? 1 : 2;

    Cycle busy_until = now_ + lat_.vectorStartup + di.vl;
    if (fu == 1) {
        fu1Free_ = busy_until;
        fu1Rec_.add(now_, busy_until);
    } else {
        fu2Free_ = busy_until;
        fu2Rec_.add(now_, busy_until);
    }
    occupyVectorReadPorts(*e, busy_until);

    e->started = true;
    if (di.dst.cls == RegClass::V || di.dst.cls == RegClass::M) {
        PhysReg &d = renamer_.file(di.dst.cls).reg(e->physDst);
        Cycle wstart = now_ + lat_.vectorStartup + lat_.readXbar +
                       lat_.opLatency(di.op) + lat_.writeXbarVector;
        d.chainReadyAt = wstart + 1;
        d.fullReadyAt = wstart + di.vl;
        d.writerIsLoad = false;
        e->completeAt = d.fullReadyAt;
    } else if (di.dst.valid()) {
        // VReduce: scalar result after consuming all elements.
        PhysReg &d = renamer_.file(di.dst.cls).reg(e->physDst);
        Cycle ready = now_ + lat_.vectorStartup + lat_.readXbar +
                      lat_.opLatency(di.op) + di.vl +
                      lat_.writeXbarScalar;
        d.chainReadyAt = ready;
        d.fullReadyAt = ready;
        e->completeAt = ready;
    } else {
        e->completeAt = busy_until;
    }
    finish(e->completeAt);
}

void
OooMachine::executeScalar(RobEntry *e)
{
    const DynInst &di = *e->di;
    e->started = true;
    Cycle done = now_ + lat_.opLatency(di.op);
    if (di.isBranch()) {
        e->completeAt = done;
        if (di.op == Opcode::Branch)
            btb_.update(di.pc, di.taken, di.target);
        if (e->wasMispredicted && e->seq == redirectSeq_) {
            fetchStalledUntil_ = done + lat_.branchMispredict;
            redirectSeq_ = kNoSeq;
        }
    } else if (di.dst.valid()) {
        PhysReg &d = renamer_.file(di.dst.cls).reg(e->physDst);
        Cycle ready = done + lat_.writeXbarScalar;
        d.chainReadyAt = ready;
        d.fullReadyAt = ready;
        e->completeAt = ready;
    } else {
        e->completeAt = done;
    }
    finish(e->completeAt);
}

bool
OooMachine::issueQueue(std::vector<RobEntry *> &queue,
                       bool vector_queue)
{
    for (size_t i = 0; i < queue.size(); ++i) {
        RobEntry *e = queue[i];
        if (vector_queue) {
            bool fu_ok = e->di->traits().fu2Only
                             ? fu2Free_ <= now_
                             : (fu1Free_ <= now_ || fu2Free_ <= now_);
            if (!fu_ok || !entryOperandsReady(*e))
                continue;
            executeVector(e);
        } else {
            if (!scalarSrcsReady(*e))
                continue;
            executeScalar(e);
        }
        queue.erase(queue.begin() + static_cast<long>(i));
        return true;
    }
    return false;
}

// ---------------------------------------------------------------
// Eliminated-load completion
// ---------------------------------------------------------------

void
OooMachine::resolveEliminated()
{
    std::erase_if(elimWait_, [this](RobEntry *e) {
        if (e->copySrcPhys >= 0) {
            // SLE: a register-to-register copy of the source value.
            const PhysReg &src =
                renamer_.file(e->di->dst.cls).reg(e->copySrcPhys);
            if (src.fullReadyAt == kNoCycle)
                return false;
            Cycle done = std::max(e->depCycle, src.fullReadyAt) + 1;
            PhysReg &d =
                renamer_.file(e->di->dst.cls).reg(e->physDst);
            d.chainReadyAt = done;
            d.fullReadyAt = done;
            e->completeAt = done;
            if (e->holdsCopyClaim) {
                renamer_.file(e->di->dst.cls).release(e->copySrcPhys);
                e->holdsCopyClaim = false;
            }
            finish(done);
            return true;
        }
        // VLE: the load became a mapping onto its match; it is
        // architecturally complete once the value is fully written.
        const PhysReg &p = vregOf(e->physDst);
        if (p.fullReadyAt == kNoCycle)
            return false;
        e->completeAt = std::max(e->depCycle + 1, p.fullReadyAt);
        finish(e->completeAt);
        return true;
    });
}

// ---------------------------------------------------------------
// Dispatch (decode/rename), 1 per cycle
// ---------------------------------------------------------------

bool
OooMachine::dispatchStep()
{
    if (fetchBuffer_.empty())
        return false;
    const DynInst &di = *fetchBuffer_.front().first;
    SeqNum seq = fetchBuffer_.front().second;

    if (rob_.size() >= cfg_.robSize) {
        ++robStalls_;
        return false;
    }

    bool vle = cfg_.loadElim == LoadElimMode::SleVle;
    bool to_pipe = goesToMemPipe(di);
    int q = routeQueue(di);

    // Structural space in the target queue.
    if (to_pipe) {
        if (memSlotsUsed_ >= cfg_.queueSize) {
            ++queueStalls_;
            return false;
        }
    } else if (q == 0 && aQueue_.size() >= cfg_.queueSize) {
        ++queueStalls_;
        return false;
    } else if (q == 1 && sQueue_.size() >= cfg_.queueSize) {
        ++queueStalls_;
        return false;
    } else if (q == 2 && vQueue_.size() >= cfg_.queueSize) {
        ++queueStalls_;
        return false;
    }

    // Destination renaming. V destinations are renamed here except
    // in SLE+VLE mode, where the Dep stage does it (figure 10).
    bool rename_dst_here =
        di.dst.valid() && (di.dst.cls != RegClass::V || !vle);
    if (rename_dst_here && !renamer_.canRename(di.dst.cls)) {
        ++renameStalls_;
        return false;
    }

    slab_.emplace_back();
    RobEntry *e = &slab_.back();
    e->di = &di;
    e->seq = seq;
    if (fault_.faultSeq != kNoSeq && seq == fault_.faultSeq)
        e->faultArmed = true;

    for (unsigned i = 0; i < di.numSrc; ++i) {
        const RegId &r = di.src[i];
        if (!r.valid())
            continue;
        if (r.cls == RegClass::V && vle)
            continue; // renamed at the Dep stage
        e->physSrc[i] = renamer_.mapOf(r);
    }
    if (rename_dst_here) {
        auto ren = renamer_.renameDst(di.dst);
        e->physDst = ren.physDst;
        e->oldPhys = ren.oldPhys;
        e->dstCls = di.dst.cls;
    }
    if (di.isBranch() && mispredictedSeqs_.count(seq)) {
        e->wasMispredicted = true;
        mispredictedSeqs_.erase(seq);
    }

    rob_.push_back(e);
    if (to_pipe) {
        ++memSlotsUsed_;
        pipeFifo_.push_back(e);
    } else if (q == 0) {
        aQueue_.push_back(e);
    } else if (q == 1) {
        sQueue_.push_back(e);
    } else {
        vQueue_.push_back(e);
    }

    fetchBuffer_.pop_front();
    return true;
}

// ---------------------------------------------------------------
// Fetch, 1 per cycle, with BTB + return-stack prediction
// ---------------------------------------------------------------

bool
OooMachine::fetchStep()
{
    if (fetchStalledUntil_ == kNoCycle || fetchStalledUntil_ > now_)
        return false;
    if (fetchIndex_ >= trace_.size())
        return false;
    if (fetchBuffer_.size() >= cfg_.fetchBufferSize)
        return false;

    const DynInst &di = trace_[fetchIndex_];
    SeqNum seq = fetchIndex_;
    fetchBuffer_.emplace_back(&di, seq);
    ++fetchIndex_;

    if (!di.isBranch())
        return true;

    bool mispredict = false;
    if (isCallOp(di.op)) {
        ras_.push(di.pc + 4);
        // Direct call: target known at decode; no misprediction.
    } else if (isRetOp(di.op)) {
        Addr pred = ras_.pop();
        mispredict = pred != di.target;
    } else {
        bool pred_taken = btb_.predictTaken(di.pc);
        if (pred_taken != di.taken)
            mispredict = true;
        else if (di.taken && btb_.predictedTarget(di.pc) != di.target)
            mispredict = true;
    }
    if (mispredict) {
        ++mispredicts_;
        mispredictedSeqs_.insert(seq);
        redirectSeq_ = seq;
        fetchStalledUntil_ = kNoCycle; // until the branch resolves
    }
    return true;
}

// ---------------------------------------------------------------
// Precise trap (section 5): squash and restore
// ---------------------------------------------------------------

void
OooMachine::takeTrap()
{
    sim_assert(cfg_.commit == CommitMode::Late,
               "precise traps require the late-commit model");
    RobEntry *head = rob_.front();
    SeqNum fault_seq = head->seq;

    // A software TLB refill delivers here: the handler installs the
    // missing translations (install() re-checks residence, so pages
    // that arrived since detection are skipped) and the replay of
    // this instruction skips re-detection via the latch.
    if (head->tlbRefillPending) {
        Tlb *tlb = mem_->tlb();
        sim_assert(tlb != nullptr, "TLB refill trap without a TLB");
        tlb->install(head->tlbRefillPages, head->tlbRefillIndexed);
        head->tlbRefillPending = false;
        head->tlbRefillPages.clear();
        lastTlbTrapSeq_ = fault_seq;
    }

    // Already-retired eliminated loads whose value timing has not
    // resolved yet keep architected state (they committed); settle
    // their destination registers at the trap point and drop their
    // claims before the squash.
    for (RobEntry *e : elimWait_) {
        if (!e->retired)
            continue;
        if (e->physDst >= 0 && e->copySrcPhys >= 0) {
            PhysReg &d = renamer_.file(e->di->dst.cls).reg(e->physDst);
            d.chainReadyAt = now_;
            d.fullReadyAt = now_;
        }
        if (e->holdsCopyClaim) {
            renamer_.file(e->di->dst.cls).release(e->copySrcPhys);
            e->holdsCopyClaim = false;
        }
    }

    // Walk the ROB youngest-first, undoing every rename and claim.
    for (auto it = rob_.rbegin(); it != rob_.rend(); ++it) {
        RobEntry *e = *it;
        if (e->holdsCopyClaim) {
            renamer_.file(e->di->dst.cls).release(e->copySrcPhys);
            e->holdsCopyClaim = false;
        }
        if (e->physDst >= 0)
            renamer_.rollback(e->di->dst, e->physDst, e->oldPhys);
    }

    rob_.clear();
    aQueue_.clear();
    sQueue_.clear();
    vQueue_.clear();
    pipeFifo_.clear();
    pipeStage_.fill(nullptr);
    waitSet_.clear();
    elimWait_.clear();
    memSlotsUsed_ = 0;
    fetchBuffer_.clear();
    mispredictedSeqs_.clear();
    redirectSeq_ = kNoSeq;

    // Tags may describe squashed state; drop them conservatively.
    for (unsigned c = 0; c < kNumRegClasses; ++c)
        renamer_.file(static_cast<RegClass>(c)).invalidateAllTags();

    // Re-execute from the faulting instruction; the page is now
    // resident so the fault does not recur. Only the injected fault
    // consumes its injection: a TLB refill trap delivered first must
    // not disarm a pending injection at a younger instruction.
    fetchIndex_ = fault_seq;
    if (fault_.faultSeq == fault_seq)
        fault_.faultSeq = kNoSeq;
    fetchStalledUntil_ = now_ + cfg_.trapPenalty;
    ++traps_;
}

// ---------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------

Cycle
OooMachine::nextEventAfter() const
{
    Cycle best = kNoCycle;
    auto consider = [&](Cycle c) {
        if (c != kNoCycle && c > now_ && c < best)
            best = c;
    };
    consider(fu1Free_);
    consider(fu2Free_);
    consider(mem_->freeAt());
    // Under a split load/store policy the per-direction units can
    // free later than the global minimum.
    consider(mem_->freeAt(MemOp::Load));
    consider(mem_->freeAt(MemOp::Store));
    consider(fetchStalledUntil_);
    for (const RobEntry *e : rob_) {
        consider(e->completeAt);
        consider(e->memDoneAt);
        if (e->physDst >= 0 && e->dstCls != RegClass::None) {
            const PhysReg &p =
                renamer_.file(e->dstCls).reg(e->physDst);
            consider(p.chainReadyAt);
            consider(p.fullReadyAt);
        }
        // Sources may have been written by producers that already
        // committed (early commit), so their ready times are only
        // visible through the consumer.
        for (unsigned i = 0; i < e->di->numSrc; ++i) {
            const RegId &r = e->di->src[i];
            if (!r.valid() || e->physSrc[i] < 0)
                continue;
            const PhysReg &p = renamer_.file(r.cls).reg(e->physSrc[i]);
            consider(p.chainReadyAt);
            consider(p.fullReadyAt);
            consider(p.readPortFreeAt);
        }
    }
    for (const RobEntry *e : elimWait_) {
        if (e->copySrcPhys >= 0) {
            consider(renamer_.file(e->di->dst.cls)
                         .reg(e->copySrcPhys)
                         .fullReadyAt);
        }
    }
    return best;
}

SimResult
OooMachine::run()
{
    while (true) {
        bool progress = false;
        progress |= commitStep() > 0;
        resolveEliminated();
        cleanupWaitSet();
        progress |= memIssueStep();
        progress |= issueQueue(aQueue_, false);
        progress |= issueQueue(sQueue_, false);
        progress |= issueQueue(vQueue_, true);
        progress |= pipeAdvance();
        progress |= dispatchStep();
        progress |= fetchStep();

        if (fetchIndex_ >= trace_.size() && fetchBuffer_.empty() &&
            rob_.empty()) {
            break;
        }

        if (progress) {
            ++now_;
        } else {
            Cycle next = nextEventAfter();
            if (next == kNoCycle) {
                std::string head = "-";
                if (!rob_.empty()) {
                    const RobEntry &h = *rob_.front();
                    head = h.di->toString();
                    for (unsigned i = 0; i < h.di->numSrc; ++i) {
                        const RegId &r = h.di->src[i];
                        if (!r.valid() || h.physSrc[i] < 0) {
                            head += csprintf(" [src%u unmapped]", i);
                            continue;
                        }
                        const PhysReg &p =
                            renamer_.file(r.cls).reg(h.physSrc[i]);
                        head += csprintf(
                            " [src%u=p%d chain=%lld full=%lld]", i,
                            h.physSrc[i],
                            p.chainReadyAt == kNoCycle
                                ? -1LL
                                : (long long)p.chainReadyAt,
                            p.fullReadyAt == kNoCycle
                                ? -1LL
                                : (long long)p.fullReadyAt);
                    }
                    head += csprintf(" started=%d conflicts=%d",
                                     (int)h.started,
                                     (int)memConflicts(h));
                }
                panic("OOOVA deadlock at cycle %llu: rob=%zu "
                      "fetch=%zu/%zu waitSet=%zu vQ=%zu aQ=%zu "
                      "sQ=%zu memSlots=%u head=%s",
                      (unsigned long long)now_, rob_.size(),
                      fetchIndex_, trace_.size(), waitSet_.size(),
                      vQueue_.size(), aQueue_.size(), sQueue_.size(),
                      memSlotsUsed_, head.c_str());
            }
            now_ = next;
        }
    }
    finish(now_);

    SimResult res;
    res.program = trace_.name();
    res.machine = cfg_.name();
    res.cycles = endCycle_;
    res.instructions = committed_;
    res.fu1BusyCycles = fu1Rec_.busyCycles();
    res.fu2BusyCycles = fu2Rec_.busyCycles();
    res.memBusyCycles = mem_->busy().busyCycles();
    res.memRequests = mem_->stats().requests;
    res.memBankConflicts = mem_->stats().bankConflicts;
    res.memConflictCycles = mem_->stats().conflictCycles;
    res.memIndexedConflicts = mem_->stats().indexedConflicts;
    res.memIndexedConflictCycles = mem_->stats().indexedConflictCycles;
    res.cacheHits = mem_->stats().cacheHits;
    res.cacheMisses = mem_->stats().cacheMisses;
    res.mshrStallCycles = mem_->stats().mshrStallCycles;
    res.tlbHits = mem_->stats().tlbHits;
    res.tlbMisses = mem_->stats().tlbMisses;
    res.tlbIndexedMisses = mem_->stats().tlbIndexedMisses;
    res.tlbMissCycles = mem_->stats().tlbMissCycles;
    res.vectorLoadsEliminated = vElims_;
    res.scalarLoadsEliminated = sElims_;
    res.branchMispredicts = mispredicts_;
    res.renameStallCycles = renameStalls_;
    res.robStallCycles = robStalls_;
    res.queueStallCycles = queueStalls_;
    res.traps = traps_;
    res.stateCycles = UnitStateBreakdown::compute(
        fu2Rec_, fu1Rec_, mem_->busy(), endCycle_);
    return res;
}

} // namespace

SimResult
simulateOoo(const Trace &trace, const OooConfig &cfg,
            const FaultInjection &fault)
{
    OooMachine machine(trace, cfg, fault);
    return machine.run();
}

} // namespace oova
