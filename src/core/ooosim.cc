#include "core/ooosim.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "check/check.hh"
#include "check/checkers.hh"
#include "common/logging.hh"
#include "common/pipetrace.hh"
#include "common/slidingqueue.hh"
#include "core/btb.hh"
#include "core/renamer.hh"
#include "mem/memsystem.hh"

namespace oova
{

std::string
OooConfig::name() const
{
    std::string n = "OOOVA-" + std::to_string(queueSize) + "/" +
                    std::to_string(numPhysVRegs) + "r";
    n += commit == CommitMode::Early ? "/early" : "/late";
    if (loadElim == LoadElimMode::Sle)
        n += "/sle";
    else if (loadElim == LoadElimMode::SleVle)
        n += "/sle+vle";
    n += mem.label();
    return n;
}

namespace
{

/** One in-flight instruction; doubles as the ROB entry. */
struct RobEntry
{
    const DynInst *di = nullptr;
    SeqNum seq = 0;

    RegClass dstCls = RegClass::None;
    int physDst = -1;
    int oldPhys = -1;
    std::array<int, kMaxSrcRegs> physSrc{-1, -1, -1};

    bool started = false;          ///< began execution (early commit)
    Cycle completeAt = kNoCycle;
    Cycle depCycle = kNoCycle;     ///< cycle it left the Dep stage

    bool eliminated = false;       ///< satisfied by load elimination
    int copySrcPhys = -1;          ///< SLE: physical copy source
    bool holdsCopyClaim = false;   ///< reference held on copySrcPhys
    bool retired = false;          ///< left the ROB (committed)

    bool memIssued = false;
    Cycle memDoneAt = kNoCycle;    ///< end of its address-bus phase
    Addr rangeLo = 0, rangeHi = 0;

    bool faultArmed = false;       ///< will page-fault at issue
    bool faulted = false;          ///< fault pending trap at head
    bool wasMispredicted = false;  ///< fetch stalled on this branch
    bool inRob = false;            ///< between dispatch and commit

    /**
     * Wakeup bookkeeping (no timing semantics): issue scans skip
     * this entry until @p recheckAt — a proven lower bound on the
     * cycle its conditions could next change. kNoCycle means the
     * entry is parked on a producer register's waiter list and is
     * re-examined when that register's ready times are written.
     */
    Cycle recheckAt = 0;
    uint32_t slabIdx = 0;          ///< own index in the slab
    int32_t waitNext = -1;         ///< next entry in the waiter list
    int8_t queueId = -1;           ///< issue queue (0=A 1=S 2=V)

    /**
     * Software TLB refill pending trap delivery: the pages whose
     * translations the handler will install when this entry's trap
     * is taken at the ROB head. Installing only at delivery keeps a
     * squash-discarded fault marking from leaking installs (which
     * would let the squashed stream refill for free on replay).
     */
    bool tlbRefillPending = false;
    bool tlbRefillIndexed = false;
    std::vector<Addr> tlbRefillPages;

    /** PipeTracer record handle (kNoTraceRec when not tracing). */
    uint32_t traceRec = kNoTraceRec;
};

/**
 * Stable storage for in-flight records. Pointer-stable like the
 * std::deque it replaces, but chunked at a size that costs a handful
 * of allocations per simulation instead of one malloc per two
 * entries; never shrinks, so pointers in the wait sets survive early
 * commit.
 */
class EntrySlab
{
  public:
    static constexpr size_t kChunk = 256;

    RobEntry &
    operator[](size_t i)
    {
        return chunks_[i / kChunk][i % kChunk];
    }

    const RobEntry &
    operator[](size_t i) const
    {
        return chunks_[i / kChunk][i % kChunk];
    }

    size_t size() const { return size_; }

    /** Hand out the next (default-constructed) entry. */
    RobEntry *
    alloc()
    {
        if (size_ == chunks_.size() * kChunk)
            chunks_.push_back(std::make_unique<RobEntry[]>(kChunk));
        RobEntry *e = &chunks_[size_ / kChunk][size_ % kChunk];
        ++size_;
        return e;
    }

  private:
    std::vector<std::unique_ptr<RobEntry[]>> chunks_;
    size_t size_ = 0;
};

class OooMachine
{
  public:
    OooMachine(const Trace &trace, const OooConfig &cfg,
               const FaultInjection &fault)
        : trace_(trace), cfg_(cfg), lat_(cfg.lat), fault_(fault),
          renamer_(RenamerConfig{cfg.numPhysARegs, cfg.numPhysSRegs,
                                 cfg.numPhysVRegs, cfg.numPhysMRegs}),
          btb_(cfg.btbEntries), ras_(cfg.rasDepth),
          mem_(makeMemorySystem(cfg.mem, cfg.lat.memLatency))
    {
        pipeStage_.fill(nullptr);
        check::CheckLevel lvl =
            cfg.checkLevel >= 0
                ? static_cast<check::CheckLevel>(
                      std::min(cfg.checkLevel, 2))
                : check::levelFromEnv();
        checkRetire_ = lvl >= check::CheckLevel::Retire;
        checkFull_ = lvl >= check::CheckLevel::Full;
        if (telemetry_) {
            auto cap = [this](OccStruct s, uint64_t capacity) {
                occ_[static_cast<size_t>(s)].setCapacity(capacity);
            };
            cap(OccStruct::Rob, cfg.robSize);
            cap(OccStruct::AQueue, cfg.queueSize);
            cap(OccStruct::SQueue, cfg.queueSize);
            cap(OccStruct::VQueue, cfg.queueSize);
            cap(OccStruct::FreeVRegs, cfg.numPhysVRegs);
            cap(OccStruct::Mshrs, cfg.mem.mshrs);
            cap(OccStruct::MemUnits, cfg.mem.memUnits);
            cap(OccStruct::TlbPages,
                cfg.mem.tlb.enabled
                    ? cfg.mem.tlb.entries + cfg.mem.tlb.l2Entries
                    : 1);
        }
        if (checkRetire_)
            registerAuditCheckers();
    }

    SimResult run();

  private:
    // ---- per-cycle steps, in execution order ----
    unsigned commitStep();
    void resolveEliminated();
    void cleanupWaitSet();
    bool memIssueStep();
    bool issueQueue(std::vector<RobEntry *> &queue, bool vector_queue,
                    int qid);
    bool pipeAdvance();
    bool dispatchStep();
    bool fetchStep();

    // ---- helpers ----
    bool usesVectorRegs(const DynInst &di) const;
    bool goesToMemPipe(const DynInst &di) const;
    int routeQueue(const DynInst &di) const; // 0=A 1=S 2=V 3=pipe
    bool scalarSrcsReady(const RobEntry &e) const;
    bool vectorSrcReady(int phys) const;
    bool entryOperandsReady(const RobEntry &e) const;
    bool operandsReadyOrSchedule(RobEntry *e, bool with_vector);
    bool operandsScheduleImpl(RobEntry *e, bool with_vector);
    void occupyVectorReadPorts(const RobEntry &e, Cycle until);
    bool memConflicts(const RobEntry &e) const;
    bool depStage(RobEntry *e);
    void applyStoreTags(RobEntry *e);
    MemTag tagFor(const DynInst &di) const;
    void executeVector(RobEntry *e);
    void executeScalar(RobEntry *e);
    void takeTrap();
    void finish(Cycle c) { endCycle_ = std::max(endCycle_, c); }
    [[maybe_unused]] Cycle nextEventAfterScan() const;

    /** CPI stack: classify one non-committing cycle, top-down. */
    CpiBucket cpiWaitBucket() const;

    /** Occupancy telemetry: charge @p weight cycles at now_. */
    void sampleOccupancy(uint64_t weight);

    // ---- invariant audit (src/check/, observe-only) ----
    void registerAuditCheckers();
    check::RegFileAudit auditRegFile(RegClass cls) const;
    std::vector<int64_t> expectedRefCounts(RegClass cls) const;
    void expectedSubscriptions(RegClass cls,
                               std::vector<int64_t> &src,
                               std::vector<int64_t> &dst,
                               std::vector<int64_t> &elim) const;

    // ---- event calendar & wakeup network ----
    // The run loop skips idle stretches by jumping to the next cycle
    // anything can change. That time used to be recomputed with a
    // full rescan of the ROB and register files
    // (nextEventAfterScan(), kept as the debug cross-check and the
    // ground truth for the deadlock diagnostics); it is now
    // maintained incrementally: every site that writes a future time
    // pushes it into a min-heap, and popped candidates are validated
    // against live state so a stale value can never surface a cycle
    // the scan would not have.
    enum EvKind : uint8_t
    {
        EvFu1,
        EvFu2,
        EvMemAny,
        EvMemLoad,
        EvMemStore,
        EvFetch,
        EvComplete, ///< id = slab index
        EvMemDone,  ///< id = slab index
        EvRegChain, ///< id = phys reg, cls = class
        EvRegFull,
        EvRegPort,
    };

    struct Event
    {
        Cycle t;
        uint32_t id;
        uint8_t kind;
        uint8_t cls;
    };

    struct EventAfter
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.t > b.t;
        }
    };

    void
    pushEvent(Cycle t, EvKind kind, uint32_t id = 0,
              RegClass cls = RegClass::None)
    {
        if (t == kNoCycle || t <= now_)
            return;
        // Stale events normally drain at idle-cycle queries; a
        // progress-heavy stretch never queries, so bound the heap by
        // compacting dead entries once it outgrows twice its size
        // after the last compaction (amortized O(1) per push).
        // Dropping a dead event is always safe: liveness only comes
        // back through a fresh push (every value overwrite and every
        // refcount rise from zero re-announces).
        if (events_.size() >= eventCompactAt_) {
            std::erase_if(events_, [this](const Event &ev) {
                return ev.t <= now_ || !eventLive(ev);
            });
            std::make_heap(events_.begin(), events_.end(),
                           EventAfter{});
            eventCompactAt_ = std::max<size_t>(
                kEventCompactMin, 2 * events_.size());
        }
        events_.push_back(
            {t, id, static_cast<uint8_t>(kind),
             static_cast<uint8_t>(cls)});
        std::push_heap(events_.begin(), events_.end(), EventAfter{});
    }

    bool eventLive(const Event &ev) const;
    Cycle nextEventFromCalendar();

    // Subscriptions mirror exactly the set of registers
    // nextEventAfterScan() would look at: a register's ready-time
    // events count only while some live ROB entry (or unresolved
    // eliminated load) references it. A time announced while the
    // register was referenced is still in the heap (pops only drop
    // an event whose reference count was zero or whose value went
    // stale — and every overwrite re-announces), so subscribing only
    // re-announces when the relevant count rises from zero.
    void
    subscribeSrc(RegClass cls, int phys)
    {
        PhysReg &p = renamer_.file(cls).reg(phys);
        bool chain_unref = p.robSrcRefs + p.robDstRefs == 0;
        bool full_unref = chain_unref && p.elimRefs == 0;
        bool port_unref = p.robSrcRefs == 0;
        ++p.robSrcRefs;
        if (chain_unref)
            pushEvent(p.chainReadyAt, EvRegChain,
                      static_cast<uint32_t>(phys), cls);
        if (full_unref)
            pushEvent(p.fullReadyAt, EvRegFull,
                      static_cast<uint32_t>(phys), cls);
        if (port_unref)
            pushEvent(p.readPortFreeAt, EvRegPort,
                      static_cast<uint32_t>(phys), cls);
    }

    void
    subscribeDst(RegClass cls, int phys)
    {
        PhysReg &p = renamer_.file(cls).reg(phys);
        bool chain_unref = p.robSrcRefs + p.robDstRefs == 0;
        bool full_unref = chain_unref && p.elimRefs == 0;
        ++p.robDstRefs;
        if (chain_unref)
            pushEvent(p.chainReadyAt, EvRegChain,
                      static_cast<uint32_t>(phys), cls);
        if (full_unref)
            pushEvent(p.fullReadyAt, EvRegFull,
                      static_cast<uint32_t>(phys), cls);
    }

    void unsubscribeEntry(RobEntry &e);

    /** Park @p e until @p phys's ready times are next written. */
    void
    parkOn(RobEntry *e, RegClass cls, int phys)
    {
        PhysReg &p = renamer_.file(cls).reg(phys);
        e->waitNext = p.waiterHead;
        p.waiterHead = static_cast<int32_t>(e->slabIdx);
        e->recheckAt = kNoCycle;
    }

    void
    wakeWaiters(PhysReg &p)
    {
        for (int32_t i = p.waiterHead; i >= 0;) {
            RobEntry &w = slab_[static_cast<size_t>(i)];
            i = w.waitNext;
            w.waitNext = -1;
            if (w.eliminated) {
                elimWaitDirty_ = true;
            } else {
                w.recheckAt = 0;
                if (w.queueId >= 0)
                    queueCheckAt_[static_cast<size_t>(w.queueId)] =
                        0;
            }
        }
        p.waiterHead = -1;
    }

    /**
     * Producer write of @p phys's ready times: announce and wake.
     * chainReadyAt and fullReadyAt are always written together, so
     * when they are equal (every scalar write) one EvRegFull event
     * covers both — its validation refcount is a superset of the
     * chain event's, and both values go stale only together.
     */
    void
    publishRegWrite(RegClass cls, int phys)
    {
        PhysReg &p = renamer_.file(cls).reg(phys);
        if (p.chainReadyAt != p.fullReadyAt)
            pushEvent(p.chainReadyAt, EvRegChain,
                      static_cast<uint32_t>(phys), cls);
        pushEvent(p.fullReadyAt, EvRegFull,
                  static_cast<uint32_t>(phys), cls);
        wakeWaiters(p);
    }

    /**
     * Refresh the cached memory-unit free times (they change only
     * inside reserve()) and announce them. freeAt() is the minimum
     * over all units, so when a per-direction time coincides with it
     * the EvMemAny event already covers that cycle.
     */
    void
    pushMemFreeEvents()
    {
        memFreeCache_ = mem_->freeAt();
        memFreeLoadCache_ = mem_->freeAt(MemOp::Load);
        memFreeStoreCache_ = mem_->freeAt(MemOp::Store);
        pushEvent(memFreeCache_, EvMemAny);
        if (memFreeLoadCache_ != memFreeCache_)
            pushEvent(memFreeLoadCache_, EvMemLoad);
        if (memFreeStoreCache_ != memFreeCache_)
            pushEvent(memFreeStoreCache_, EvMemStore);
    }

    PhysReg &
    vregOf(int phys)
    {
        return renamer_.file(RegClass::V).reg(phys);
    }

    const Trace &trace_;
    const OooConfig &cfg_;
    const LatencyTable &lat_;
    FaultInjection fault_;

    Renamer renamer_;
    Btb btb_;
    ReturnStack ras_;
    std::unique_ptr<MemorySystem> mem_;

    /** Stable storage for in-flight records. */
    EntrySlab slab_;

    SlidingQueue<RobEntry *> rob_;
    std::vector<RobEntry *> aQueue_, sQueue_, vQueue_;
    SlidingQueue<RobEntry *> pipeFifo_;
    std::array<RobEntry *, 3> pipeStage_; // 0=Issue/Rf 1=Range 2=Dep
    std::vector<RobEntry *> waitSet_;     // disambiguated mem ops
    std::vector<RobEntry *> elimWait_;    // eliminated, unresolved
    unsigned memSlotsUsed_ = 0;

    std::vector<Event> events_;  ///< pending-event min-heap
    static constexpr size_t kEventCompactMin = 4096;
    /** Heap size that triggers the next dead-event compaction. */
    size_t eventCompactAt_ = kEventCompactMin;
    /**
     * Per-queue scan gate: the minimum next-possible-progress cycle
     * over the queue's entries as of its last fruitless scan. While
     * now_ is below it, the whole queue provably has nothing to
     * issue. Reset to 0 on insertion, wakeup and issue. Index 3 is
     * the memory wait set (entries blocked on non-time conditions —
     * ROB head, conflicts — hold it at 0).
     */
    std::array<Cycle, 4> queueCheckAt_{{0, 0, 0, 0}};
    /**
     * Mirrors of mem_->freeAt() / freeAt(Load) / freeAt(Store),
     * refreshed after every reserve (the only mutation point), so
     * the per-cycle issue gate and event validation skip the
     * virtual calls.
     */
    Cycle memFreeCache_ = 0;
    Cycle memFreeLoadCache_ = 0;
    Cycle memFreeStoreCache_ = 0;
    /** Earliest memDoneAt still awaiting waitSet_ cleanup. */
    Cycle waitCleanupAt_ = kNoCycle;
    /** An elimWait_ entry may have become resolvable. */
    bool elimWaitDirty_ = false;
    /** Reusable gather/scatter element-address buffer. */
    std::vector<Addr> elemAddrScratch_;
    /** Reusable TLB page-sequence buffer. */
    std::vector<Addr> pageScratch_;

    /** One fetched, not-yet-dispatched instruction. */
    struct Fetched
    {
        const DynInst *di;
        SeqNum seq;
        /** Fetch predicted this branch wrong (consumed at rename). */
        bool mispredicted;
        /** PipeTracer record handle (kNoTraceRec when not tracing). */
        uint32_t traceRec = kNoTraceRec;
    };
    SlidingQueue<Fetched> fetchBuffer_;
    size_t fetchIndex_ = 0;
    // Memoized routing decision for the current dispatch head.
    SeqNum routedSeq_ = kNoSeq;
    bool routedToPipe_ = false;
    bool routedRenameHere_ = false;
    int routedQ_ = 0;
    Cycle fetchStalledUntil_ = 0;  ///< kNoCycle = until resolve
    SeqNum redirectSeq_ = kNoSeq;  ///< branch fetch is stalled on
    SeqNum lastTlbTrapSeq_ = kNoSeq; ///< last TLB software-refill trap

    // ---- observability (observe-only; see cfg.cpiStack) ----
    /** Cycle accounting: every cycle charged to one bucket. */
    std::array<uint64_t, kNumCpiBuckets> cpi_{};
    /**
     * Shadow of the last trap's fetch stall window: while an empty
     * machine is refilling after a trap, the wait is trap handling,
     * not an ordinary fetch bubble. fetchStalledUntil_ itself cannot
     * distinguish the two (mispredict redirects also set it).
     */
    Cycle trapStallUntil_ = 0;
    /** Instruction-lifecycle tracer (null = off). */
    PipeTracer *tracer_ = cfg_.pipeTracer;
    /**
     * Occupancy telemetry (observe-only; cfg.telemetry or
     * OOVA_TELEMETRY=1): one distribution + time series per
     * OccStruct, sampled at every event-calendar advance with the
     * same bulk-charge discipline as the CPI stack. MemUnits is the
     * exception: it is derived from the busy-interval sweep at end
     * of run, identically on both machines.
     */
    bool telemetry_ = cfg_.telemetry || telemetryForced();
    std::array<StatDistribution, kNumOccStructs> occ_{};
    std::array<StatTimeSeries, kNumOccStructs> occTs_{};

    Cycle fu1Free_ = 0, fu2Free_ = 0;
    IntervalRecorder fu1Rec_, fu2Rec_;

    Cycle now_ = 0;
    Cycle endCycle_ = 0;
    uint64_t committed_ = 0;

    // ---- invariant audit (observe-only; see src/check/) ----
    /** Level >= Retire: retire-site checks + end-of-run audit. */
    bool checkRetire_ = false;
    /** Level Full: adds per-event checks and periodic sweeps. */
    bool checkFull_ = false;
    check::Registry audit_;
    /** Next kSiteWindow sweep cycle (level Full). */
    Cycle nextAuditAt_ = 0;
    /** Previous mem-stats snapshot for the monotonicity audit. */
    MemStats prevMemStats_;
    /**
     * Claims permanently orphaned by the Dep-stage re-rename retry
     * (see depStage): the retry overwrites the entry's oldPhys, so
     * the claim the first rename parked there is never released.
     * That leak is accepted seed behavior; the ledger lets the
     * conservation checker account for it. Audit bookkeeping only.
     */
    std::vector<int64_t> orphanedClaims_[kNumRegClasses];

    // stats
    uint64_t mispredicts_ = 0;
    uint64_t vElims_ = 0, sElims_ = 0;
    uint64_t renameStalls_ = 0, robStalls_ = 0, queueStalls_ = 0;
    uint64_t traps_ = 0;
};

bool
OooMachine::usesVectorRegs(const DynInst &di) const
{
    if (di.dst.cls == RegClass::V)
        return true;
    for (unsigned i = 0; i < di.numSrc; ++i)
        if (di.src[i].cls == RegClass::V)
            return true;
    return false;
}

bool
OooMachine::goesToMemPipe(const DynInst &di) const
{
    if (di.isMem())
        return true;
    // SLE+VLE: single vector-rename point in the memory pipeline
    // (paper figure 10), so every vector-register instruction
    // traverses it.
    return cfg_.loadElim == LoadElimMode::SleVle && usesVectorRegs(di);
}

int
OooMachine::routeQueue(const DynInst &di) const
{
    if (di.isMem())
        return 3;
    if (di.isVector())
        return 2;
    if (di.isBranch() || di.dst.cls == RegClass::A)
        return 0;
    for (unsigned i = 0; i < di.numSrc; ++i)
        if (di.src[i].cls == RegClass::A)
            return 0;
    return 1;
}

bool
OooMachine::scalarSrcsReady(const RobEntry &e) const
{
    for (unsigned i = 0; i < e.di->numSrc; ++i) {
        const RegId &r = e.di->src[i];
        if (!r.valid() || r.cls == RegClass::V)
            continue;
        const PhysReg &p = renamer_.file(r.cls).reg(e.physSrc[i]);
        if (p.fullReadyAt == kNoCycle || p.fullReadyAt > now_)
            return false;
    }
    return true;
}

bool
OooMachine::vectorSrcReady(int phys) const
{
    const PhysReg &p = renamer_.file(RegClass::V).reg(phys);
    // The register's single dedicated read port must be free.
    if (p.readPortFreeAt > now_)
        return false;
    if (p.writerIsLoad && !cfg_.chainLoadsToFus)
        return p.fullReadyAt != kNoCycle && p.fullReadyAt <= now_;
    return p.chainReadyAt != kNoCycle && p.chainReadyAt <= now_;
}

bool
OooMachine::entryOperandsReady(const RobEntry &e) const
{
    if (!scalarSrcsReady(e))
        return false;
    for (unsigned i = 0; i < e.di->numSrc; ++i) {
        const RegId &r = e.di->src[i];
        if (r.cls != RegClass::V)
            continue;
        const PhysReg &p =
            renamer_.file(RegClass::V).reg(e.physSrc[i]);
        // Index vectors of gather/scatter must be fully written (the
        // memory unit needs all of them to form addresses); store
        // data and arithmetic sources chain element by element.
        bool is_index = e.di->isIndexedMem() &&
                        !(e.di->op == Opcode::VScatter && i == 0);
        if (is_index) {
            if (p.fullReadyAt == kNoCycle || p.fullReadyAt > now_ ||
                p.readPortFreeAt > now_) {
                return false;
            }
        } else if (!vectorSrcReady(e.physSrc[i])) {
            return false;
        }
    }
    return true;
}

/**
 * entryOperandsReady() / scalarSrcsReady(), plus scheduling on
 * failure: computes when the entry could next possibly be ready and
 * either sets recheckAt to that lower bound (all blocking times
 * known — they can only move later) or parks the entry on the first
 * producer register whose ready time is still unwritten. Issue scans
 * skip the entry until then, which is behavior-preserving because a
 * skipped entry would have failed the full re-evaluation anyway.
 */
bool
OooMachine::operandsReadyOrSchedule(RobEntry *e, bool with_vector)
{
    bool ready = operandsScheduleImpl(e, with_vector);
#ifndef NDEBUG
    // The scheduling evaluator must agree with the original
    // predicates it replaces on every call (the reference check is
    // read-only, so running it after the impl is safe).
    bool ref = with_vector ? entryOperandsReady(*e)
                           : scalarSrcsReady(*e);
    sim_assert(ready == ref,
               "operand scheduler (%d) diverges from reference "
               "predicate (%d) for %s",
               (int)ready, (int)ref, e->di->toString().c_str());
#endif
    return ready;
}

bool
OooMachine::operandsScheduleImpl(RobEntry *e, bool with_vector)
{
    Cycle bound = 0;
    const DynInst &di = *e->di;
    for (unsigned i = 0; i < di.numSrc; ++i) {
        const RegId &r = di.src[i];
        if (!r.valid())
            continue;
        if (r.cls != RegClass::V) {
            const PhysReg &p =
                renamer_.file(r.cls).reg(e->physSrc[i]);
            if (p.fullReadyAt == kNoCycle) {
                parkOn(e, r.cls, e->physSrc[i]);
                return false;
            }
            bound = std::max(bound, p.fullReadyAt);
            continue;
        }
        if (!with_vector)
            continue;
        const PhysReg &p =
            renamer_.file(RegClass::V).reg(e->physSrc[i]);
        bool is_index = di.isIndexedMem() &&
                        !(di.op == Opcode::VScatter && i == 0);
        bound = std::max(bound, p.readPortFreeAt);
        if (is_index ||
            (p.writerIsLoad && !cfg_.chainLoadsToFus)) {
            if (p.fullReadyAt == kNoCycle) {
                parkOn(e, RegClass::V, e->physSrc[i]);
                return false;
            }
            bound = std::max(bound, p.fullReadyAt);
        } else {
            if (p.chainReadyAt == kNoCycle) {
                parkOn(e, RegClass::V, e->physSrc[i]);
                return false;
            }
            bound = std::max(bound, p.chainReadyAt);
        }
    }
    if (bound <= now_)
        return true;
    e->recheckAt = bound;
    return false;
}

void
OooMachine::unsubscribeEntry(RobEntry &e)
{
    for (unsigned i = 0; i < e.di->numSrc; ++i) {
        const RegId &r = e.di->src[i];
        if (!r.valid() || e.physSrc[i] < 0)
            continue;
        --renamer_.file(r.cls).reg(e.physSrc[i]).robSrcRefs;
    }
    if (e.physDst >= 0 && e.dstCls != RegClass::None)
        --renamer_.file(e.dstCls).reg(e.physDst).robDstRefs;
}

void
OooMachine::occupyVectorReadPorts(const RobEntry &e, Cycle until)
{
    for (unsigned i = 0; i < e.di->numSrc; ++i) {
        if (e.di->src[i].cls != RegClass::V)
            continue;
        PhysReg &p = renamer_.file(RegClass::V).reg(e.physSrc[i]);
        if (until > p.readPortFreeAt) {
            p.readPortFreeAt = until;
            pushEvent(until, EvRegPort,
                      static_cast<uint32_t>(e.physSrc[i]),
                      RegClass::V);
        }
    }
}

// ---------------------------------------------------------------
// Commit
// ---------------------------------------------------------------

unsigned
OooMachine::commitStep()
{
    unsigned done = 0;
    while (done < cfg_.commitWidth && !rob_.empty()) {
        RobEntry &e = *rob_.front();
        if (e.faulted) {
            takeTrap();
            return done + 1; // the trap consumed this cycle
        }
        bool ok;
        if (cfg_.commit == CommitMode::Early)
            ok = e.started;
        else
            ok = e.completeAt != kNoCycle && e.completeAt <= now_;
        if (!ok)
            break;
        if (e.oldPhys >= 0)
            renamer_.releaseOld(e.dstCls, e.oldPhys);
        // Note: an early-committed eliminated load may still await
        // its source value. It stays on elimWait_ (its storage is in
        // the slab, which outlives retirement) so its destination
        // register's ready times are still established, and it keeps
        // its copy-source claim until then.
        e.retired = true;
        e.inRob = false;
        unsubscribeEntry(e);
        if (tracer_)
            tracer_->retire(e.traceRec, now_);
        finish(now_ + 1);
        if (e.completeAt != kNoCycle)
            finish(e.completeAt);
        rob_.pop_front();
        ++committed_;
        ++done;
    }
    return done;
}

// ---------------------------------------------------------------
// Dynamic load elimination bookkeeping
// ---------------------------------------------------------------

MemTag
OooMachine::tagFor(const DynInst &di) const
{
    MemTag t;
    auto [lo, hi] = di.memRange();
    t.valid = true;
    t.start = lo;
    t.end = hi;
    t.vl = di.isVector() ? di.vl : 1;
    t.stride = di.isVector() ? di.strideBytes : 0;
    t.esz = di.elemSize;
    return t;
}

void
OooMachine::applyStoreTags(RobEntry *e)
{
    const DynInst &di = *e->di;
    MemTag tag = tagFor(di);
    int data_phys = e->physSrc[0]; // data register is src[0]
    RegClass data_cls = di.src[0].cls;

    // Tag the stored register: its contents now mirror this range.
    // Indexed stores (scatter) have no single stride; they only
    // invalidate.
    bool taggable = !di.isIndexedMem();
    if (taggable)
        renamer_.file(data_cls).reg(data_phys).tag = tag;

    // Conservatively invalidate every overlapping tag, in every
    // class: scalar stores must be checked against vector tags and
    // vice versa (section 6.1).
    for (unsigned c = 0; c < kNumRegClasses; ++c) {
        RegClass cls = static_cast<RegClass>(c);
        int except = (taggable && cls == data_cls) ? data_phys : -1;
        renamer_.file(cls).invalidateOverlapping(tag.start, tag.end,
                                                 except);
    }
}

// ---------------------------------------------------------------
// Memory pipeline: Dep stage
// ---------------------------------------------------------------

bool
OooMachine::depStage(RobEntry *e)
{
    const DynInst &di = *e->di;
    bool vle = cfg_.loadElim == LoadElimMode::SleVle;
    bool sle = cfg_.loadElim != LoadElimMode::None;

    // In SLE+VLE, vector sources are renamed here, in order. The
    // mapping is stable across retries of a stalled Dep stage (the
    // single in-order vector rename point is this stage itself), so
    // map and subscribe each source exactly once.
    if (vle) {
        for (unsigned i = 0; i < di.numSrc; ++i) {
            if (di.src[i].cls == RegClass::V && e->physSrc[i] < 0) {
                e->physSrc[i] = renamer_.mapOf(di.src[i]);
                subscribeSrc(RegClass::V, e->physSrc[i]);
            }
        }
    }

    if (di.isMem()) {
        auto [lo, hi] = di.memRange();
        e->rangeLo = lo;
        e->rangeHi = hi;
    }

    // ---- vector load elimination ----
    if (vle && di.op == Opcode::VLoad && !e->faultArmed) {
        MemTag tag = tagFor(di);
        int match = renamer_.file(RegClass::V).findExactTag(tag);
        if (match >= 0) {
            auto ren = renamer_.redirectDst(di.dst, match);
            e->physDst = ren.physDst;
            e->oldPhys = ren.oldPhys;
            e->dstCls = RegClass::V;
            e->eliminated = true;
            e->started = true;
            e->depCycle = now_;
            ++vElims_;
            if (tracer_)
                tracer_->issue(e->traceRec, now_);
            subscribeDst(RegClass::V, e->physDst);
            // Completion resolves once the matched register's value
            // is fully written.
            elimWait_.push_back(e);
            if (vregOf(e->physDst).fullReadyAt != kNoCycle)
                elimWaitDirty_ = true;
            else
                parkOn(e, RegClass::V, e->physDst);
            sim_assert(memSlotsUsed_ > 0, "mem slot underflow");
            --memSlotsUsed_;
            return true;
        }
    }

    // ---- vector destination renaming (SLE+VLE) ----
    if (vle && di.dst.cls == RegClass::V) {
        if (!renamer_.canRename(RegClass::V)) {
            ++renameStalls_;
            return false; // stall the Dep stage this cycle
        }
        // A Dep stage that stalled on a full V queue below retries
        // here and renames again (seed behavior); the previous
        // attempt's destination is no longer this entry's.
        if (e->physDst >= 0 && e->dstCls != RegClass::None) {
            --renamer_.file(e->dstCls).reg(e->physDst).robDstRefs;
            // The retry overwrites e->oldPhys below, so the claim
            // the first rename parked there is never released. The
            // audit ledger keeps refCount conservation checkable
            // despite the leak.
            if (checkRetire_ && e->oldPhys >= 0) {
                ++orphanedClaims_[Renamer::clsIdx(e->dstCls)]
                                 [static_cast<size_t>(e->oldPhys)];
            }
        }
        auto ren = renamer_.renameDst(di.dst);
        e->physDst = ren.physDst;
        e->oldPhys = ren.oldPhys;
        e->dstCls = RegClass::V;
        subscribeDst(RegClass::V, e->physDst);
    }

    // ---- scalar load elimination ----
    if (sle && di.op == Opcode::SLoad && !e->faultArmed) {
        MemTag tag = tagFor(di);
        int match = renamer_.file(di.dst.cls).findExactTag(tag);
        if (match >= 0 && match != e->physDst) {
            e->eliminated = true;
            e->started = true;
            e->copySrcPhys = match;
            e->depCycle = now_;
            ++sElims_;
            if (tracer_)
                tracer_->issue(e->traceRec, now_);
            // Hold the source register so it cannot be reallocated
            // before the copy's value is latched.
            PhysRegFile &f = renamer_.file(di.dst.cls);
            if (f.reg(match).inFreeList)
                f.reviveFromFreeList(match);
            else
                f.addRef(match);
            e->holdsCopyClaim = true;
            f.reg(e->physDst).tag = tag;
            elimWait_.push_back(e);
            // The copy source now backs an unresolved elimination:
            // its full-ready time is a live event until resolution.
            PhysReg &src = f.reg(match);
            bool full_unref =
                src.robSrcRefs + src.robDstRefs + src.elimRefs == 0;
            ++src.elimRefs;
            if (src.fullReadyAt != kNoCycle) {
                if (full_unref)
                    pushEvent(src.fullReadyAt, EvRegFull,
                              static_cast<uint32_t>(match),
                              di.dst.cls);
                elimWaitDirty_ = true;
            } else {
                parkOn(e, di.dst.cls, match);
            }
            sim_assert(memSlotsUsed_ > 0, "mem slot underflow");
            --memSlotsUsed_;
            return true;
        }
    }

    // ---- tag maintenance ----
    if (sle) {
        if (di.isLoad() && !di.isIndexedMem()) {
            if (di.isVector()) {
                // Vector tags only exist under VLE.
                if (vle)
                    vregOf(e->physDst).tag = tagFor(di);
            } else {
                renamer_.file(di.dst.cls).reg(e->physDst).tag =
                    tagFor(di);
            }
        } else if (di.isStore()) {
            applyStoreTags(e);
        }
    }

    if (di.isMem()) {
        e->depCycle = now_;
        e->queueId = 3;
        waitSet_.push_back(e);
        queueCheckAt_[3] = 0;
        return true;
    }

    // SLE+VLE vector arithmetic: move on to the V queue.
    if (vQueue_.size() >= cfg_.queueSize) {
        ++queueStalls_;
        return false;
    }
    e->depCycle = now_;
    e->queueId = 2;
    vQueue_.push_back(e);
    queueCheckAt_[2] = 0;
    sim_assert(memSlotsUsed_ > 0, "mem slot underflow");
    --memSlotsUsed_;
    return true;
}

bool
OooMachine::pipeAdvance()
{
    bool moved = false;
    if (pipeStage_[2]) {
        if (depStage(pipeStage_[2])) {
            pipeStage_[2] = nullptr;
            moved = true;
        }
    }
    if (!pipeStage_[2] && pipeStage_[1]) {
        pipeStage_[2] = pipeStage_[1]; // Range -> Dep
        pipeStage_[1] = nullptr;
        moved = true;
    }
    if (!pipeStage_[1] && pipeStage_[0]) {
        pipeStage_[1] = pipeStage_[0]; // Issue/Rf -> Range
        pipeStage_[0] = nullptr;
        moved = true;
    }
    if (!pipeStage_[0] && !pipeFifo_.empty()) {
        pipeStage_[0] = pipeFifo_.front();
        pipeFifo_.pop_front();
        moved = true;
    }
    return moved;
}

// ---------------------------------------------------------------
// Memory issue
// ---------------------------------------------------------------

bool
OooMachine::memConflicts(const RobEntry &e) const
{
    for (const RobEntry *o : waitSet_) {
        if (o->seq >= e.seq)
            break; // waitSet_ is ordered by age
        if (!(o->di->isStore() || e.di->isStore()))
            continue; // load/load never conflicts
        if (!(o->rangeLo < e.rangeHi && e.rangeLo < o->rangeHi))
            continue;
        // Conflicting older access: wait until its bus phase ends.
        if (!o->memIssued || o->memDoneAt > now_)
            return true;
    }
    return false;
}

void
OooMachine::cleanupWaitSet()
{
    // Event-driven: erase only when the earliest pending address
    // phase has actually ended (waitCleanupAt_, maintained at issue).
    // Entries past their memDoneAt are no-ops for memConflicts(), so
    // deferring their removal to that exact point changes nothing.
    if (waitSet_.empty() || now_ < waitCleanupAt_)
        return;
    std::erase_if(waitSet_, [this](RobEntry *e) {
        return e->memIssued && e->memDoneAt <= now_;
    });
    waitCleanupAt_ = kNoCycle;
    for (const RobEntry *e : waitSet_)
        if (e->memIssued)
            waitCleanupAt_ = std::min(waitCleanupAt_, e->memDoneAt);
}

bool
OooMachine::memIssueStep()
{
    if (waitSet_.empty() || memFreeCache_ > now_ ||
        queueCheckAt_[3] > now_) {
        return false;
    }
    Cycle min_next = kNoCycle;
    for (RobEntry *e : waitSet_) {
        if (e->memIssued || e->faulted)
            continue;
        const DynInst &di = *e->di;
        MemOp mop = di.isStore() ? MemOp::Store : MemOp::Load;
        // A unit eligible for this direction must be free (with a
        // single shared unit this repeats the check above).
        Cycle dir_free = mop == MemOp::Store ? memFreeStoreCache_
                                             : memFreeLoadCache_;
        if (dir_free > now_) {
            min_next = std::min(min_next, dir_free);
            continue;
        }
        // Late commit: stores update memory only at the ROB head.
        if (cfg_.commit == CommitMode::Late && di.isStore() &&
            (rob_.empty() || rob_.front()->seq != e->seq)) {
            min_next = 0; // head advance is not a timed event
            continue;
        }
        if (e->recheckAt > now_) {
            min_next = std::min(min_next, e->recheckAt);
            continue;
        }
        if (!operandsReadyOrSchedule(e, true)) {
            min_next = std::min(min_next, e->recheckAt);
            continue;
        }
        if (memConflicts(*e)) {
            min_next = 0; // an older unissued access may clear anytime
            continue;
        }

        if (e->faultArmed) {
            // Page fault detected at translation; the trap is taken
            // when the instruction reaches the ROB head.
            e->faultArmed = false;
            e->faulted = true;
            queueCheckAt_[3] = 0;
            return true;
        }

        // Gather/scatter element addresses, shared by the TLB
        // detection below and the reservation itself (reusable
        // scratch: one stream issues at a time).
        const std::vector<Addr> *elem_addrs = nullptr;
        if (di.isIndexedMem()) {
            indexedElemAddrs(di, elemAddrScratch_);
            elem_addrs = &elemAddrScratch_;
        }

        // Software-refilled TLB (precise traps only, hence late
        // commit): a stream whose translations are not all resident
        // traps instead of walking in hardware. The pages are
        // recorded here but installed only when the trap is
        // delivered at the ROB head, so a marking discarded by an
        // older trap's squash leaves no installs behind — the
        // squashed stream re-detects its miss and traps properly on
        // replay. One trap per dynamic instruction (the
        // lastTlbTrapSeq_ latch, set at delivery): a stream touching
        // more pages than the TLB holds would self-evict during
        // refill and re-trap forever, so its replay hardware-walks
        // the residue instead (the forward-progress guarantee every
        // software-managed TLB needs).
        if (cfg_.commit == CommitMode::Late &&
            e->seq != lastTlbTrapSeq_) {
            if (Tlb *tlb = mem_->tlb();
                tlb &&
                tlb->config().refill == TlbRefill::SoftwareTrap) {
                if (di.isIndexedMem())
                    tlb->indexedPages(*elem_addrs, pageScratch_);
                else
                    tlb->stridedPages(di.addr, di.strideBytes,
                                      di.memElems(), pageScratch_);
                if (tlb->wouldMiss(pageScratch_)) {
                    e->tlbRefillPages = pageScratch_;
                    e->tlbRefillIndexed = di.isIndexedMem();
                    e->tlbRefillPending = true;
                    e->faulted = true;
                    queueCheckAt_[3] = 0;
                    return true;
                }
            }
        }

        // Gather/scatter reserve their real per-element addresses
        // (the index vector is fully available at issue), so bank
        // conflicts follow the actual index pattern; strided ops
        // reserve base + stride as before.
        MemAccess acc =
            di.isIndexedMem()
                ? mem_->reserve(now_, *elem_addrs, mop)
                : mem_->reserve(now_, di.addr, di.strideBytes,
                                di.memElems(), mop);
        if (checkFull_) {
            check::Reporter r = audit_.reporter("mem-window", now_);
            check::checkMemWindow(acc, now_, r);
        }
        e->memIssued = true;
        e->started = true;
        e->memDoneAt = acc.end;
        pushMemFreeEvents();
        // With one memory unit the unit's free time IS this stream's
        // address-phase end, and no reserve can supersede it before
        // it arrives (the unit is busy until then), so the EvMemAny
        // event just pushed covers memDoneAt.
        if (cfg_.mem.memUnits > 1)
            pushEvent(e->memDoneAt, EvMemDone, e->slabIdx);
        waitCleanupAt_ = std::min(waitCleanupAt_, e->memDoneAt);
        occupyVectorReadPorts(*e, acc.end);
        sim_assert(memSlotsUsed_ > 0, "mem slot underflow");
        --memSlotsUsed_;

        if (di.isLoad()) {
            PhysReg &d = renamer_.file(di.dst.cls).reg(e->physDst);
            if (di.isVector()) {
                Cycle wstart = acc.firstData + lat_.writeXbarVector;
                d.chainReadyAt = wstart + 1;
                d.fullReadyAt = acc.lastData + lat_.writeXbarVector;
                d.writerIsLoad = true;
                e->completeAt = d.fullReadyAt;
            } else {
                Cycle ready = acc.firstData + lat_.writeXbarScalar;
                d.chainReadyAt = ready;
                d.fullReadyAt = ready;
                e->completeAt = ready;
            }
            // completeAt == the destination's fullReadyAt: the
            // EvRegFull event just published covers it (the entry
            // holds a dst reference while it is in the ROB).
            publishRegWrite(di.dst.cls, e->physDst);
        } else {
            // Stores have no observed latency (section 2.2): once
            // issued, the address/data stream drains in the
            // background, so the instruction is complete (and, under
            // late commit, may retire) the cycle after issue. The
            // address phase still orders conflicting accesses via
            // memDoneAt.
            e->completeAt = acc.start + 1;
            pushEvent(e->completeAt, EvComplete, e->slabIdx);
        }
        finish(e->completeAt);
        finish(e->memDoneAt);
        if (tracer_) {
            tracer_->issue(e->traceRec, now_);
            tracer_->complete(e->traceRec, e->completeAt);
        }
        // Rescan next cycle: entries after this one were skipped.
        queueCheckAt_[3] = 0;
        return true;
    }
    queueCheckAt_[3] = min_next;
    return false;
}

// ---------------------------------------------------------------
// Queue issue
// ---------------------------------------------------------------

void
OooMachine::executeVector(RobEntry *e)
{
    const DynInst &di = *e->di;
    int fu;
    if (di.traits().fu2Only)
        fu = 2;
    else
        fu = fu1Free_ <= fu2Free_ ? 1 : 2;

    Cycle busy_until = now_ + lat_.vectorStartup + di.vl;
    if (fu == 1) {
        fu1Free_ = busy_until;
        fu1Rec_.add(now_, busy_until);
        pushEvent(busy_until, EvFu1);
    } else {
        fu2Free_ = busy_until;
        fu2Rec_.add(now_, busy_until);
        pushEvent(busy_until, EvFu2);
    }
    occupyVectorReadPorts(*e, busy_until);

    e->started = true;
    if (di.dst.cls == RegClass::V || di.dst.cls == RegClass::M) {
        PhysReg &d = renamer_.file(di.dst.cls).reg(e->physDst);
        Cycle wstart = now_ + lat_.vectorStartup + lat_.readXbar +
                       lat_.opLatency(di.op) + lat_.writeXbarVector;
        d.chainReadyAt = wstart + 1;
        d.fullReadyAt = wstart + di.vl;
        d.writerIsLoad = false;
        e->completeAt = d.fullReadyAt;
        // completeAt == fullReadyAt: the published EvRegFull covers
        // the completion event while the entry is in the ROB.
        publishRegWrite(di.dst.cls, e->physDst);
    } else if (di.dst.valid()) {
        // VReduce: scalar result after consuming all elements.
        PhysReg &d = renamer_.file(di.dst.cls).reg(e->physDst);
        Cycle ready = now_ + lat_.vectorStartup + lat_.readXbar +
                      lat_.opLatency(di.op) + di.vl +
                      lat_.writeXbarScalar;
        d.chainReadyAt = ready;
        d.fullReadyAt = ready;
        e->completeAt = ready;
        publishRegWrite(di.dst.cls, e->physDst);
    } else {
        e->completeAt = busy_until;
        pushEvent(e->completeAt, EvComplete, e->slabIdx);
    }
    finish(e->completeAt);
}

void
OooMachine::executeScalar(RobEntry *e)
{
    const DynInst &di = *e->di;
    e->started = true;
    Cycle done = now_ + lat_.opLatency(di.op);
    if (di.isBranch()) {
        e->completeAt = done;
        if (di.op == Opcode::Branch)
            btb_.update(di.pc, di.taken, di.target);
        if (e->wasMispredicted && e->seq == redirectSeq_) {
            fetchStalledUntil_ = done + lat_.branchMispredict;
            redirectSeq_ = kNoSeq;
            pushEvent(fetchStalledUntil_, EvFetch);
        }
    } else if (di.dst.valid()) {
        PhysReg &d = renamer_.file(di.dst.cls).reg(e->physDst);
        Cycle ready = done + lat_.writeXbarScalar;
        d.chainReadyAt = ready;
        d.fullReadyAt = ready;
        e->completeAt = ready;
        // completeAt == fullReadyAt: covered by the EvRegFull event.
        publishRegWrite(di.dst.cls, e->physDst);
        finish(e->completeAt);
        return;
    } else {
        e->completeAt = done;
    }
    pushEvent(e->completeAt, EvComplete, e->slabIdx);
    finish(e->completeAt);
}

bool
OooMachine::issueQueue(std::vector<RobEntry *> &queue,
                       bool vector_queue, int qid)
{
    // Queue-level gate: min recheckAt over the entries as of the
    // last fruitless scan. It can only be outdated downward by a
    // wakeup or an insertion, and both reset it to 0.
    if (queueCheckAt_[static_cast<size_t>(qid)] > now_)
        return false;
    Cycle min_next = kNoCycle;
    for (size_t i = 0; i < queue.size(); ++i) {
        RobEntry *e = queue[i];
        // Skip entries that provably cannot be ready yet: parked
        // (kNoCycle, woken by their producer's write) or bounded by
        // a known future time.
        if (e->recheckAt > now_) {
            min_next = std::min(min_next, e->recheckAt);
            continue;
        }
        if (vector_queue) {
            bool fu_ok = e->di->traits().fu2Only
                             ? fu2Free_ <= now_
                             : (fu1Free_ <= now_ || fu2Free_ <= now_);
            if (!fu_ok) {
                // Both eligible units busy: nothing to re-examine
                // before the earlier one frees (it only gets later).
                e->recheckAt = e->di->traits().fu2Only
                                   ? fu2Free_
                                   : std::min(fu1Free_, fu2Free_);
                min_next = std::min(min_next, e->recheckAt);
                continue;
            }
            if (!operandsReadyOrSchedule(e, true)) {
                min_next = std::min(min_next, e->recheckAt);
                continue;
            }
            executeVector(e);
        } else {
            if (!operandsReadyOrSchedule(e, false)) {
                min_next = std::min(min_next, e->recheckAt);
                continue;
            }
            executeScalar(e);
        }
        if (tracer_) {
            tracer_->issue(e->traceRec, now_);
            tracer_->complete(e->traceRec, e->completeAt);
        }
        queue.erase(queue.begin() + static_cast<long>(i));
        // Rescan next cycle: the issue may have unblocked nothing,
        // but entries after this one were not examined.
        queueCheckAt_[static_cast<size_t>(qid)] = 0;
        return true;
    }
    queueCheckAt_[static_cast<size_t>(qid)] = min_next;
    return false;
}

// ---------------------------------------------------------------
// Eliminated-load completion
// ---------------------------------------------------------------

void
OooMachine::resolveEliminated()
{
    // Event-driven: entries resolve the moment their trigger
    // register's full-ready time becomes known, and the dirty flag
    // is raised exactly at those writes (or at insertion when the
    // value was already known), so scanning at any other time would
    // find nothing. The full in-order walk below is kept because
    // several entries can resolve in the same pass and their
    // release() order decides free-list order.
    if (!elimWaitDirty_)
        return;
    std::erase_if(elimWait_, [this](RobEntry *e) {
        if (e->copySrcPhys >= 0) {
            // SLE: a register-to-register copy of the source value.
            PhysReg &src =
                renamer_.file(e->di->dst.cls).reg(e->copySrcPhys);
            if (src.fullReadyAt == kNoCycle)
                return false;
            Cycle done = std::max(e->depCycle, src.fullReadyAt) + 1;
            PhysReg &d =
                renamer_.file(e->di->dst.cls).reg(e->physDst);
            d.chainReadyAt = done;
            d.fullReadyAt = done;
            e->completeAt = done;
            --src.elimRefs;
            if (e->holdsCopyClaim) {
                renamer_.file(e->di->dst.cls).release(e->copySrcPhys);
                e->holdsCopyClaim = false;
            }
            // completeAt == the destination's fullReadyAt: covered
            // by the EvRegFull event published here (a not-retired
            // entry holds its dst reference; a retired one's
            // completion no longer gates anything).
            publishRegWrite(e->di->dst.cls, e->physDst);
            if (tracer_)
                tracer_->complete(e->traceRec, done);
            finish(done);
            return true;
        }
        // VLE: the load became a mapping onto its match; it is
        // architecturally complete once the value is fully written.
        const PhysReg &p = vregOf(e->physDst);
        if (p.fullReadyAt == kNoCycle)
            return false;
        e->completeAt = std::max(e->depCycle + 1, p.fullReadyAt);
        pushEvent(e->completeAt, EvComplete, e->slabIdx);
        if (tracer_)
            tracer_->complete(e->traceRec, e->completeAt);
        finish(e->completeAt);
        return true;
    });
    elimWaitDirty_ = false;
}

// ---------------------------------------------------------------
// Dispatch (decode/rename), 1 per cycle
// ---------------------------------------------------------------

bool
OooMachine::dispatchStep()
{
    if (fetchBuffer_.empty())
        return false;
    if (rob_.size() >= cfg_.robSize) {
        ++robStalls_;
        return false;
    }
    const DynInst &di = *fetchBuffer_.front().di;
    SeqNum seq = fetchBuffer_.front().seq;

    bool vle = cfg_.loadElim == LoadElimMode::SleVle;
    // Routing is a pure function of the instruction; a head blocked
    // on structural space or renaming re-enters here every cycle, so
    // memoize it per fetch-buffer head.
    if (seq != routedSeq_) {
        routedSeq_ = seq;
        routedToPipe_ = goesToMemPipe(di);
        routedQ_ = routeQueue(di);
        routedRenameHere_ =
            di.dst.valid() && (di.dst.cls != RegClass::V || !vle);
    }
    bool to_pipe = routedToPipe_;
    int q = routedQ_;

    // Structural space in the target queue.
    if (to_pipe) {
        if (memSlotsUsed_ >= cfg_.queueSize) {
            ++queueStalls_;
            return false;
        }
    } else if (q == 0 && aQueue_.size() >= cfg_.queueSize) {
        ++queueStalls_;
        return false;
    } else if (q == 1 && sQueue_.size() >= cfg_.queueSize) {
        ++queueStalls_;
        return false;
    } else if (q == 2 && vQueue_.size() >= cfg_.queueSize) {
        ++queueStalls_;
        return false;
    }

    // Destination renaming. V destinations are renamed here except
    // in SLE+VLE mode, where the Dep stage does it (figure 10).
    bool rename_dst_here = routedRenameHere_;
    if (rename_dst_here && !renamer_.canRename(di.dst.cls)) {
        ++renameStalls_;
        return false;
    }

    RobEntry *e = slab_.alloc();
    e->di = &di;
    e->seq = seq;
    e->slabIdx = static_cast<uint32_t>(slab_.size() - 1);
    e->inRob = true;
    if (fault_.faultSeq != kNoSeq && seq == fault_.faultSeq)
        e->faultArmed = true;

    for (unsigned i = 0; i < di.numSrc; ++i) {
        const RegId &r = di.src[i];
        if (!r.valid())
            continue;
        if (r.cls == RegClass::V && vle)
            continue; // renamed at the Dep stage
        e->physSrc[i] = renamer_.mapOf(r);
        subscribeSrc(r.cls, e->physSrc[i]);
    }
    if (rename_dst_here) {
        auto ren = renamer_.renameDst(di.dst);
        e->physDst = ren.physDst;
        e->oldPhys = ren.oldPhys;
        e->dstCls = di.dst.cls;
        subscribeDst(e->dstCls, e->physDst);
    }
    if (fetchBuffer_.front().mispredicted)
        e->wasMispredicted = true;
    e->traceRec = fetchBuffer_.front().traceRec;
    if (tracer_) {
        // Decode/rename and dispatch are one stage here.
        tracer_->rename(e->traceRec, now_);
        tracer_->dispatch(e->traceRec, now_);
    }

    rob_.push_back(e);
    if (to_pipe) {
        ++memSlotsUsed_;
        pipeFifo_.push_back(e);
    } else if (q == 0) {
        e->queueId = 0;
        aQueue_.push_back(e);
        queueCheckAt_[0] = 0;
    } else if (q == 1) {
        e->queueId = 1;
        sQueue_.push_back(e);
        queueCheckAt_[1] = 0;
    } else {
        e->queueId = 2;
        vQueue_.push_back(e);
        queueCheckAt_[2] = 0;
    }

    fetchBuffer_.pop_front();
    return true;
}

// ---------------------------------------------------------------
// Fetch, 1 per cycle, with BTB + return-stack prediction
// ---------------------------------------------------------------

bool
OooMachine::fetchStep()
{
    if (fetchStalledUntil_ == kNoCycle || fetchStalledUntil_ > now_)
        return false;
    if (fetchIndex_ >= trace_.size())
        return false;
    if (fetchBuffer_.size() >= cfg_.fetchBufferSize)
        return false;

    const DynInst &di = trace_[fetchIndex_];
    SeqNum seq = fetchIndex_;
    fetchBuffer_.push_back({&di, seq, false});
    if (tracer_)
        fetchBuffer_.back().traceRec = tracer_->fetch(&di, seq, now_);
    ++fetchIndex_;

    if (!di.isBranch())
        return true;

    bool mispredict = false;
    if (isCallOp(di.op)) {
        ras_.push(di.pc + 4);
        // Direct call: target known at decode; no misprediction.
    } else if (isRetOp(di.op)) {
        Addr pred = ras_.pop();
        mispredict = pred != di.target;
    } else {
        bool pred_taken = btb_.predictTaken(di.pc);
        if (pred_taken != di.taken)
            mispredict = true;
        else if (di.taken && btb_.predictedTarget(di.pc) != di.target)
            mispredict = true;
    }
    if (mispredict) {
        ++mispredicts_;
        fetchBuffer_.back().mispredicted = true;
        redirectSeq_ = seq;
        fetchStalledUntil_ = kNoCycle; // until the branch resolves
    }
    return true;
}

// ---------------------------------------------------------------
// Precise trap (section 5): squash and restore
// ---------------------------------------------------------------

void
OooMachine::takeTrap()
{
    sim_assert(cfg_.commit == CommitMode::Late,
               "precise traps require the late-commit model");
    RobEntry *head = rob_.front();
    SeqNum fault_seq = head->seq;

    // A software TLB refill delivers here: the handler installs the
    // missing translations (install() re-checks residence, so pages
    // that arrived since detection are skipped) and the replay of
    // this instruction skips re-detection via the latch.
    if (head->tlbRefillPending) {
        Tlb *tlb = mem_->tlb();
        sim_assert(tlb != nullptr, "TLB refill trap without a TLB");
        tlb->install(head->tlbRefillPages, head->tlbRefillIndexed);
        head->tlbRefillPending = false;
        head->tlbRefillPages.clear();
        lastTlbTrapSeq_ = fault_seq;
    }

    // Already-retired eliminated loads whose value timing has not
    // resolved yet keep architected state (they committed); settle
    // their destination registers at the trap point and drop their
    // claims before the squash.
    for (RobEntry *e : elimWait_) {
        if (!e->retired)
            continue;
        if (e->physDst >= 0 && e->copySrcPhys >= 0) {
            PhysReg &d = renamer_.file(e->di->dst.cls).reg(e->physDst);
            d.chainReadyAt = now_;
            d.fullReadyAt = now_;
        }
        if (e->holdsCopyClaim) {
            renamer_.file(e->di->dst.cls).release(e->copySrcPhys);
            e->holdsCopyClaim = false;
        }
    }

    // The squash drops every reference the wakeup network holds:
    // subscriptions die with their ROB entries, unresolved
    // eliminations with elimWait_, and parked waiter lists are swept
    // clean below (stale calendar events are harmless — they fail
    // validation once nothing references them).
    for (RobEntry *e : elimWait_) {
        if (e->copySrcPhys >= 0)
            --renamer_.file(e->di->dst.cls)
                  .reg(e->copySrcPhys)
                  .elimRefs;
    }

    // Walk the ROB youngest-first, undoing every rename and claim.
    for (auto it = rob_.rbegin(); it != rob_.rend(); ++it) {
        RobEntry *e = *it;
        e->inRob = false;
        unsubscribeEntry(*e);
        if (tracer_)
            tracer_->squash(e->traceRec, now_);
        if (e->holdsCopyClaim) {
            renamer_.file(e->di->dst.cls).release(e->copySrcPhys);
            e->holdsCopyClaim = false;
        }
        if (e->physDst >= 0)
            renamer_.rollback(e->di->dst, e->physDst, e->oldPhys);
    }

    for (unsigned c = 0; c < kNumRegClasses; ++c) {
        PhysRegFile &f = renamer_.file(static_cast<RegClass>(c));
        for (unsigned r = 0; r < f.size(); ++r)
            f.reg(static_cast<int>(r)).waiterHead = -1;
    }

    rob_.clear();
    aQueue_.clear();
    sQueue_.clear();
    vQueue_.clear();
    queueCheckAt_.fill(0);
    pipeFifo_.clear();
    pipeStage_.fill(nullptr);
    waitSet_.clear();
    waitCleanupAt_ = kNoCycle;
    elimWait_.clear();
    elimWaitDirty_ = false;
    memSlotsUsed_ = 0;
    if (tracer_) {
        for (const Fetched &fe : fetchBuffer_)
            tracer_->squash(fe.traceRec, now_);
    }
    fetchBuffer_.clear();
    redirectSeq_ = kNoSeq;

    // Tags may describe squashed state; drop them conservatively.
    for (unsigned c = 0; c < kNumRegClasses; ++c)
        renamer_.file(static_cast<RegClass>(c)).invalidateAllTags();

    // Re-execute from the faulting instruction; the page is now
    // resident so the fault does not recur. Only the injected fault
    // consumes its injection: a TLB refill trap delivered first must
    // not disarm a pending injection at a younger instruction.
    fetchIndex_ = fault_seq;
    if (fault_.faultSeq == fault_seq)
        fault_.faultSeq = kNoSeq;
    fetchStalledUntil_ = now_ + cfg_.trapPenalty;
    trapStallUntil_ = fetchStalledUntil_;
    pushEvent(fetchStalledUntil_, EvFetch);
    ++traps_;
}

// ---------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------

/**
 * Is a popped calendar candidate still a time the full rescan would
 * report? Each case checks exactly what nextEventAfterScan() would
 * look at: the value must still be current, and register times must
 * still be referenced by a live ROB entry (or, for full-ready times,
 * an unresolved eliminated load).
 */
bool
OooMachine::eventLive(const Event &ev) const
{
    switch (static_cast<EvKind>(ev.kind)) {
    case EvFu1:
        return ev.t == fu1Free_;
    case EvFu2:
        return ev.t == fu2Free_;
    case EvMemAny:
        return ev.t == memFreeCache_;
    case EvMemLoad:
        return ev.t == memFreeLoadCache_;
    case EvMemStore:
        return ev.t == memFreeStoreCache_;
    case EvFetch:
        return ev.t == fetchStalledUntil_;
    case EvComplete: {
        const RobEntry &e = slab_[ev.id];
        return e.inRob && ev.t == e.completeAt;
    }
    case EvMemDone: {
        const RobEntry &e = slab_[ev.id];
        return e.inRob && ev.t == e.memDoneAt;
    }
    case EvRegChain: {
        const PhysReg &p =
            renamer_.file(static_cast<RegClass>(ev.cls))
                .reg(static_cast<int>(ev.id));
        return p.robSrcRefs + p.robDstRefs > 0 &&
               ev.t == p.chainReadyAt;
    }
    case EvRegFull: {
        const PhysReg &p =
            renamer_.file(static_cast<RegClass>(ev.cls))
                .reg(static_cast<int>(ev.id));
        return p.robSrcRefs + p.robDstRefs + p.elimRefs > 0 &&
               ev.t == p.fullReadyAt;
    }
    case EvRegPort: {
        const PhysReg &p =
            renamer_.file(static_cast<RegClass>(ev.cls))
                .reg(static_cast<int>(ev.id));
        return p.robSrcRefs > 0 && ev.t == p.readPortFreeAt;
    }
    }
    return false;
}

Cycle
OooMachine::nextEventFromCalendar()
{
    while (!events_.empty()) {
        const Event &top = events_.front();
        if (top.t > now_ && eventLive(top))
            return top.t;
        std::pop_heap(events_.begin(), events_.end(), EventAfter{});
        events_.pop_back();
    }
    return kNoCycle;
}

Cycle
OooMachine::nextEventAfterScan() const
{
    Cycle best = kNoCycle;
    auto consider = [&](Cycle c) {
        if (c != kNoCycle && c > now_ && c < best)
            best = c;
    };
    consider(fu1Free_);
    consider(fu2Free_);
    consider(mem_->freeAt());
    // Under a split load/store policy the per-direction units can
    // free later than the global minimum.
    consider(mem_->freeAt(MemOp::Load));
    consider(mem_->freeAt(MemOp::Store));
    consider(fetchStalledUntil_);
    for (const RobEntry *e : rob_) {
        consider(e->completeAt);
        consider(e->memDoneAt);
        if (e->physDst >= 0 && e->dstCls != RegClass::None) {
            const PhysReg &p =
                renamer_.file(e->dstCls).reg(e->physDst);
            consider(p.chainReadyAt);
            consider(p.fullReadyAt);
        }
        // Sources may have been written by producers that already
        // committed (early commit), so their ready times are only
        // visible through the consumer.
        for (unsigned i = 0; i < e->di->numSrc; ++i) {
            const RegId &r = e->di->src[i];
            if (!r.valid() || e->physSrc[i] < 0)
                continue;
            const PhysReg &p = renamer_.file(r.cls).reg(e->physSrc[i]);
            consider(p.chainReadyAt);
            consider(p.fullReadyAt);
            consider(p.readPortFreeAt);
        }
    }
    for (const RobEntry *e : elimWait_) {
        if (e->copySrcPhys >= 0) {
            consider(renamer_.file(e->di->dst.cls)
                         .reg(e->copySrcPhys)
                         .fullReadyAt);
        }
    }
    return best;
}

/**
 * Top-down attribution of a cycle in which nothing committed: charge
 * whatever is holding up the ROB head (the oldest instruction is
 * what retirement is actually waiting for), or the front end when
 * nothing is in flight. Read-only over the same state the issue
 * logic consults, so accounting can never perturb timing.
 */
CpiBucket
OooMachine::cpiWaitBucket() const
{
    if (rob_.empty()) {
        // Nothing in flight: the front end is the limiter — either
        // the post-trap refill window or an ordinary fetch/redirect
        // bubble (mispredict penalty, empty fetch buffer).
        return now_ < trapStallUntil_ ? CpiBucket::TlbTrap
                                      : CpiBucket::Fetch;
    }
    const RobEntry &h = *rob_.front();
    if (h.faulted || h.faultArmed || h.tlbRefillPending)
        return CpiBucket::TlbTrap;
    if (h.started) {
        // Executing but not yet committable (late commit): the
        // remaining latency belongs to the unit doing the work.
        if (h.di->isMem())
            return CpiBucket::Memory;
        if (h.eliminated)
            return CpiBucket::OperandWait;
        return CpiBucket::FuBusy;
    }
    switch (h.queueId) {
    case 3:
        // In the memory wait set: blocked on operands, or on the
        // memory system itself (unit busy, disambiguation, bank and
        // MSHR backpressure all surface as a non-issuing ready op).
        return entryOperandsReady(h) ? CpiBucket::Memory
                                     : CpiBucket::OperandWait;
    case 0:
    case 1:
        // Scalar queues issue one per queue per cycle: a ready head
        // that has not issued lost the issue-slot race.
        return scalarSrcsReady(h) ? CpiBucket::FuBusy
                                  : CpiBucket::OperandWait;
    case 2:
        return entryOperandsReady(h) ? CpiBucket::FuBusy
                                     : CpiBucket::OperandWait;
    default:
        // Still in the memory pipeline (Issue/Range/Dep): either the
        // Dep stage is stalled on renaming or a full V queue, or the
        // entry is simply traversing the pipe.
        if (cfg_.loadElim == LoadElimMode::SleVle &&
            h.di->dst.cls == RegClass::V &&
            !renamer_.canRename(RegClass::V)) {
            return CpiBucket::Rename;
        }
        if (!h.di->isMem() && vQueue_.size() >= cfg_.queueSize)
            return CpiBucket::QueueFull;
        return CpiBucket::Memory;
    }
}

// ---------------------------------------------------------------
// Invariant audit (src/check/): observe-only checkers over the
// machine's conservation laws. Each checker recomputes its ground
// truth from first principles (map tables, the live ROB, the
// unresolved-elimination set) and compares it against the
// incrementally-maintained counters the hot path relies on.
// ---------------------------------------------------------------

check::RegFileAudit
OooMachine::auditRegFile(RegClass cls) const
{
    static const char *const kClsNames[kNumRegClasses] = {"A", "S",
                                                          "V", "M"};
    check::RegFileAudit rf;
    rf.cls = kClsNames[Renamer::clsIdx(cls)];
    const PhysRegFile &f = renamer_.file(cls);
    rf.regs.reserve(f.size());
    for (unsigned i = 0; i < f.size(); ++i) {
        const PhysReg &p = f.reg(static_cast<int>(i));
        rf.regs.push_back({p.refCount, p.inFreeList, p.robSrcRefs,
                           p.robDstRefs, p.elimRefs});
    }
    for (int idx : f.freeList())
        rf.freeList.push_back(idx);
    return rf;
}

std::vector<int64_t>
OooMachine::expectedRefCounts(RegClass cls) const
{
    const PhysRegFile &f = renamer_.file(cls);
    std::vector<int64_t> exp(f.size(), 0);
    // Claim 1: the map table — one per logical register currently
    // mapped onto the physical register.
    for (unsigned l = 0; l < numLogicalRegs(cls); ++l) {
        int p = renamer_.mapOf(RegId(cls, static_cast<uint8_t>(l)));
        if (p >= 0)
            ++exp[static_cast<size_t>(p)];
    }
    // Claim 2: in-flight overwrites — every ROB entry holds its
    // destination's previous mapping until commit releases it (or a
    // squash rolls it back).
    for (const RobEntry *e : rob_)
        if (e->dstCls == cls && e->oldPhys >= 0)
            ++exp[static_cast<size_t>(e->oldPhys)];
    // Claim 3: unresolved scalar eliminations hold their copy source
    // so it cannot be reallocated before the value is latched.
    for (const RobEntry *e : elimWait_)
        if (e->holdsCopyClaim && e->copySrcPhys >= 0 &&
            e->di->dst.cls == cls)
            ++exp[static_cast<size_t>(e->copySrcPhys)];
    // Claim 4: claims permanently orphaned by Dep-stage re-rename
    // retries (accepted seed leak; see depStage).
    const auto &orphans = orphanedClaims_[Renamer::clsIdx(cls)];
    for (size_t i = 0; i < orphans.size(); ++i)
        exp[i] += orphans[i];
    return exp;
}

void
OooMachine::expectedSubscriptions(RegClass cls,
                                  std::vector<int64_t> &src,
                                  std::vector<int64_t> &dst,
                                  std::vector<int64_t> &elim) const
{
    const PhysRegFile &f = renamer_.file(cls);
    src.assign(f.size(), 0);
    dst.assign(f.size(), 0);
    elim.assign(f.size(), 0);
    for (const RobEntry *e : rob_) {
        for (unsigned i = 0; i < e->di->numSrc; ++i) {
            const RegId &r = e->di->src[i];
            if (r.valid() && r.cls == cls && e->physSrc[i] >= 0)
                ++src[static_cast<size_t>(e->physSrc[i])];
        }
        if (e->dstCls == cls && e->physDst >= 0)
            ++dst[static_cast<size_t>(e->physDst)];
    }
    for (const RobEntry *e : elimWait_)
        if (e->copySrcPhys >= 0 && e->di->dst.cls == cls)
            ++elim[static_cast<size_t>(e->copySrcPhys)];
}

void
OooMachine::registerAuditCheckers()
{
    using check::RegAudit;
    using check::RegFileAudit;
    using check::Reporter;
    constexpr uint8_t kSweep = check::kSiteWindow | check::kSiteEnd;

    for (unsigned c = 0; c < kNumRegClasses; ++c) {
        orphanedClaims_[c].assign(
            renamer_.file(static_cast<RegClass>(c)).size(), 0);
    }

    // Every physical register is exactly one of free / mapped /
    // pending-free, and the free list structurally mirrors the
    // per-register flags.
    audit_.add("preg-freelist", kSweep, [this](Reporter &r) {
        for (unsigned c = 0; c < kNumRegClasses; ++c)
            checkFreeListStructure(
                auditRegFile(static_cast<RegClass>(c)), r);
    });

    // Reference-count conservation: refCount equals the claims the
    // rest of the machine can account for.
    audit_.add("preg-conservation", kSweep, [this](Reporter &r) {
        for (unsigned c = 0; c < kNumRegClasses; ++c) {
            RegClass cls = static_cast<RegClass>(c);
            RegFileAudit rf = auditRegFile(cls);
            std::vector<int64_t> actual;
            actual.reserve(rf.regs.size());
            for (const RegAudit &p : rf.regs)
                actual.push_back(p.refCount);
            checkCountsMatch("refCount", rf.cls, actual,
                             expectedRefCounts(cls), r);
        }
    });

    // Wakeup-subscription conservation, one checker per counter so a
    // violation names its family. wakeup-dst-refs is the dedicated
    // re-rename checker: a Dep stage that stalls on a full V queue
    // renames the same destination again on retry and must drop the
    // prior robDstRefs subscription first — a missed drop surfaces
    // here as a count above the ground truth.
    auto addSubChecker = [this](const char *id, const char *what,
                                int kind) {
        audit_.add(id, check::kSiteWindow | check::kSiteEnd,
                   [this, what, kind](Reporter &r) {
            for (unsigned c = 0; c < kNumRegClasses; ++c) {
                RegClass cls = static_cast<RegClass>(c);
                RegFileAudit rf = auditRegFile(cls);
                std::vector<int64_t> src, dst, elim;
                expectedSubscriptions(cls, src, dst, elim);
                const std::vector<int64_t> &exp =
                    kind == 0 ? src : kind == 1 ? dst : elim;
                std::vector<int64_t> actual;
                actual.reserve(rf.regs.size());
                for (const RegAudit &p : rf.regs)
                    actual.push_back(kind == 0   ? p.srcRefs
                                     : kind == 1 ? p.dstRefs
                                                 : p.elimRefs);
                checkCountsMatch(what, rf.cls, actual, exp, r);
            }
        });
    };
    addSubChecker("wakeup-src-refs", "robSrcRefs", 0);
    addSubChecker("wakeup-dst-refs", "robDstRefs", 1);
    addSubChecker("wakeup-elim-refs", "elimRefs", 2);

    // Age monotonicity of every in-flight queue. Cheap enough to run
    // at retire too (memory disambiguation depends on the wait set
    // staying age-sorted).
    audit_.add("rob-age",
               check::kSiteRetire | check::kSiteWindow |
                   check::kSiteEnd,
               [this](Reporter &r) {
        std::vector<SeqNum> seqs;
        auto auditSeqs = [&](const char *what,
                             const auto &container) {
            seqs.clear();
            for (const RobEntry *e : container)
                seqs.push_back(e->seq);
            check::checkAgeOrdered(what, seqs, r);
        };
        auditSeqs("rob", rob_);
        auditSeqs("pipe-fifo", pipeFifo_);
        auditSeqs("wait-set", waitSet_);
        auditSeqs("a-queue", aQueue_);
        auditSeqs("s-queue", sQueue_);
        auditSeqs("v-queue", vQueue_);
        auditSeqs("elim-wait", elimWait_);
        seqs.clear();
        for (const Fetched &fe : fetchBuffer_)
            seqs.push_back(fe.seq);
        check::checkAgeOrdered("fetch-buffer", seqs, r);
    });

    // Memory-pipeline slot conservation: the structural counter the
    // dispatch gate trusts equals the occupants it can account for
    // (faulted entries keep their slot until the trap squash).
    audit_.add("mem-slots", kSweep, [this](Reporter &r) {
        uint64_t expected = pipeFifo_.size();
        for (const RobEntry *e : pipeStage_)
            if (e)
                ++expected;
        for (const RobEntry *e : waitSet_)
            if (!e->memIssued)
                ++expected;
        check::checkScalarMatch("memSlotsUsed", memSlotsUsed_,
                                expected, r);
    });

    // Memory-system counter containment and monotonicity.
    audit_.add("mem-stats", kSweep, [this](Reporter &r) {
        const MemStats &s = mem_->stats();
        check::checkMemStatsBounds(s, r);
        check::checkMemStatsMonotone(prevMemStats_, s, r);
        prevMemStats_ = s;
    });

    // TLB structural soundness (set indexing, LRU timestamps,
    // counter containment), when translation is enabled.
    audit_.add("tlb-lru", kSweep, [this](Reporter &r) {
        if (const Tlb *tlb = mem_->tlb())
            check::checkTlbSoundness(tlb->auditView(), r);
    });

    // CPI-stack conservation: with cycle accounting on, the buckets
    // must partition the run exactly (checked once the drain bucket
    // has been settled at end of run).
    if (cfg_.cpiStack) {
        audit_.add("cpi-conservation", check::kSiteEnd,
                   [this](Reporter &r) {
            check::checkCpiConservation(endCycle_, cpi_, r);
        });
    }

    // Occupancy-telemetry conservation: every sampled structure gets
    // exactly one weighted sample per cycle, so each non-empty
    // distribution must hold endCycle_ samples once the drain charge
    // has been settled at end of run.
    if (telemetry_) {
        audit_.add("occupancy-conservation", check::kSiteEnd,
                   [this](Reporter &r) {
            check::checkOccupancyConservation(endCycle_, occ_,
                                              occTs_, r);
        });
    }
}

void
OooMachine::sampleOccupancy(uint64_t weight)
{
    auto charge = [&](OccStruct s, uint64_t value) {
        size_t i = static_cast<size_t>(s);
        occ_[i].sample(value, weight);
        occTs_[i].sample(value, weight);
    };
    charge(OccStruct::Rob, rob_.size());
    charge(OccStruct::AQueue, aQueue_.size());
    charge(OccStruct::SQueue, sQueue_.size());
    charge(OccStruct::VQueue, vQueue_.size());
    charge(OccStruct::FreeVRegs,
           renamer_.file(RegClass::V).numFree());
    charge(OccStruct::Mshrs, mem_->inFlightMshrs(now_));
    if (const Tlb *tlb = mem_->tlb())
        charge(OccStruct::TlbPages, tlb->residentPages());
}

SimResult
OooMachine::run()
{
    while (true) {
        if (checkFull_ && now_ >= nextAuditAt_) {
            audit_.runSite(check::kSiteWindow, now_);
            nextAuditAt_ = now_ + check::kAuditWindow;
        }
        bool progress = false;
        uint64_t traps_before = traps_;
        unsigned retired = commitStep();
        progress |= retired > 0;
        if (checkRetire_ && retired > 0)
            audit_.runSite(check::kSiteRetire, now_);
        resolveEliminated();
        cleanupWaitSet();
        progress |= memIssueStep();
        progress |= issueQueue(aQueue_, false, 0);
        progress |= issueQueue(sQueue_, false, 1);
        progress |= issueQueue(vQueue_, true, 2);
        progress |= pipeAdvance();
        progress |= dispatchStep();
        progress |= fetchStep();

        if (fetchIndex_ >= trace_.size() && fetchBuffer_.empty() &&
            rob_.empty()) {
            break;
        }

        if (progress) {
            if (cfg_.cpiStack) {
                // Charge exactly at the now_ advance: a trap squash
                // dominates the cycle, a retirement makes it a
                // committing cycle, anything else is charged to
                // whatever blocks the ROB head.
                CpiBucket b = traps_ > traps_before
                                  ? CpiBucket::TlbTrap
                                  : retired > 0 ? CpiBucket::Commit
                                                : cpiWaitBucket();
                ++cpi_[static_cast<unsigned>(b)];
            }
            if (telemetry_)
                sampleOccupancy(1);
            ++now_;
        } else {
            Cycle next = nextEventFromCalendar();
#ifndef NDEBUG
            // The incremental calendar must agree with the full
            // rescan on every idle jump; a divergence would silently
            // change simulated timing.
            sim_assert(next == nextEventAfterScan(),
                       "event calendar (%llu) diverges from scan "
                       "(%llu) at cycle %llu",
                       (unsigned long long)next,
                       (unsigned long long)nextEventAfterScan(),
                       (unsigned long long)now_);
#endif
            if (checkFull_) {
                // Generalizes the Debug-only assert above to every
                // build type: no live state transition may precede
                // the calendar minimum, and the minimum must be real.
                check::Reporter r =
                    audit_.reporter("calendar-bound", now_);
                check::checkCalendarAgreement(next,
                                              nextEventAfterScan(),
                                              r);
            }
            if (next == kNoCycle) {
                std::string head = "-";
                if (!rob_.empty()) {
                    const RobEntry &h = *rob_.front();
                    head = h.di->toString();
                    for (unsigned i = 0; i < h.di->numSrc; ++i) {
                        const RegId &r = h.di->src[i];
                        if (!r.valid() || h.physSrc[i] < 0) {
                            head += csprintf(" [src%u unmapped]", i);
                            continue;
                        }
                        const PhysReg &p =
                            renamer_.file(r.cls).reg(h.physSrc[i]);
                        head += csprintf(
                            " [src%u=p%d chain=%lld full=%lld]", i,
                            h.physSrc[i],
                            p.chainReadyAt == kNoCycle
                                ? -1LL
                                : (long long)p.chainReadyAt,
                            p.fullReadyAt == kNoCycle
                                ? -1LL
                                : (long long)p.fullReadyAt);
                    }
                    head += csprintf(" started=%d conflicts=%d",
                                     (int)h.started,
                                     (int)memConflicts(h));
                }
                panic("OOOVA deadlock at cycle %llu: rob=%zu "
                      "fetch=%zu/%zu waitSet=%zu vQ=%zu aQ=%zu "
                      "sQ=%zu memSlots=%u head=%s",
                      (unsigned long long)now_, rob_.size(),
                      fetchIndex_, trace_.size(), waitSet_.size(),
                      vQueue_.size(), aQueue_.size(), sQueue_.size(),
                      memSlotsUsed_, head.c_str());
            }
            if (cfg_.cpiStack) {
                // Every skipped cycle has the same blocker: nothing
                // changes until the calendar's next event.
                cpi_[static_cast<unsigned>(cpiWaitBucket())] +=
                    next - now_;
            }
            if (telemetry_) {
                // Same bulk-charge rule as the CPI stack: nothing
                // changes until the calendar's next event, so every
                // skipped cycle sees today's occupancies.
                sampleOccupancy(next - now_);
            }
            now_ = next;
        }
    }
    finish(now_);
    if (cfg_.cpiStack) {
        // The loop exits when the ROB empties; functional units and
        // the memory system keep draining until endCycle_. The final
        // committing cycle itself lands here too, which keeps the
        // stack an exact partition of res.cycles.
        cpi_[static_cast<unsigned>(CpiBucket::Drain)] +=
            endCycle_ - now_;
    }
    if (telemetry_) {
        // Drain cycles: the ROB is empty, the units are finishing.
        sampleOccupancy(endCycle_ - now_);
        // Per-unit memory busy is derived from the busy-interval
        // sweep — REF has no cycle loop to hook, so both machines
        // compute this structure the same way.
        size_t mu = static_cast<size_t>(OccStruct::MemUnits);
        accumulateIntervalDepth(mem_->busy(), endCycle_, occ_[mu],
                                occTs_[mu]);
    }

    if (checkRetire_) {
        // Final whole-state audit: with the ROB drained, every
        // conservation law collapses to its quiescent form (all
        // subscription counts zero, refCounts purely map-held).
        audit_.runSite(check::kSiteEnd, endCycle_);
        if (audit_.violationCount() > 0)
            std::fputs(audit_.report().c_str(), stderr);
    }

    SimResult res;
    res.program = trace_.name();
    res.machine = cfg_.name();
    res.cycles = endCycle_;
    res.instructions = committed_;
    res.fu1BusyCycles = fu1Rec_.busyCycles();
    res.fu2BusyCycles = fu2Rec_.busyCycles();
    res.memBusyCycles = mem_->busy().busyCycles();
    res.memRequests = mem_->stats().requests;
    res.memBankConflicts = mem_->stats().bankConflicts;
    res.memConflictCycles = mem_->stats().conflictCycles;
    res.memIndexedConflicts = mem_->stats().indexedConflicts;
    res.memIndexedConflictCycles = mem_->stats().indexedConflictCycles;
    res.cacheHits = mem_->stats().cacheHits;
    res.cacheMisses = mem_->stats().cacheMisses;
    res.mshrStallCycles = mem_->stats().mshrStallCycles;
    res.tlbHits = mem_->stats().tlbHits;
    res.tlbMisses = mem_->stats().tlbMisses;
    res.tlbIndexedMisses = mem_->stats().tlbIndexedMisses;
    res.tlbMissCycles = mem_->stats().tlbMissCycles;
    res.vectorLoadsEliminated = vElims_;
    res.scalarLoadsEliminated = sElims_;
    res.branchMispredicts = mispredicts_;
    res.renameStallCycles = renameStalls_;
    res.robStallCycles = robStalls_;
    res.queueStallCycles = queueStalls_;
    res.traps = traps_;
    res.cpiCycles = cpi_;
    res.occupancy = occ_;
    res.occupancyTs = occTs_;
    res.stateCycles = UnitStateBreakdown::compute(
        fu2Rec_, fu1Rec_, mem_->busy(), endCycle_);
    return res;
}

} // namespace

SimResult
simulateOoo(const Trace &trace, const OooConfig &cfg,
            const FaultInjection &fault)
{
    OooMachine machine(trace, cfg, fault);
    return machine.run();
}

} // namespace oova
