#include "core/ideal.hh"

namespace oova
{

IdealBreakdown
idealBreakdown(const Trace &trace)
{
    IdealBreakdown b;
    for (const DynInst &inst : trace) {
        if (inst.isMem()) {
            b.memCycles += inst.memElems();
        } else if (inst.isVectorArith()) {
            if (inst.traits().fu2Only)
                b.fu2Cycles += inst.vl;
            else if (b.fu1Cycles <= b.fu2Cycles)
                b.fu1Cycles += inst.vl;
            else
                b.fu2Cycles += inst.vl;
        }
    }
    return b;
}

Cycle
idealCycles(const Trace &trace)
{
    return idealBreakdown(trace).bound();
}

} // namespace oova
