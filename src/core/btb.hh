/**
 * @file
 * Branch prediction hardware of the OOOVA front end: a 64-entry
 * branch target buffer with 2-bit saturating counters and an 8-deep
 * return address stack (paper section 2.2, Machine Parameters).
 */

#ifndef OOVA_CORE_BTB_HH
#define OOVA_CORE_BTB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace oova
{

/** Direct-mapped BTB with 2-bit counters. */
class Btb
{
  public:
    explicit Btb(unsigned entries = 64);

    /**
     * Predict a conditional branch at @p pc.
     * @return predicted taken?
     */
    bool predictTaken(Addr pc) const;

    /** Predicted target, or 0 when the entry does not match. */
    Addr predictedTarget(Addr pc) const;

    /** Train with the resolved outcome. */
    void update(Addr pc, bool taken, Addr target);

    unsigned numEntries() const
    {
        return static_cast<unsigned>(entries_.size());
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        uint8_t counter = 1; // weakly not-taken
        bool valid = false;
    };

    const Entry &entryFor(Addr pc) const;
    Entry &entryFor(Addr pc);

    std::vector<Entry> entries_;
};

/** Fixed-depth return address stack. */
class ReturnStack
{
  public:
    explicit ReturnStack(unsigned depth = 8);

    /** Push a return address (calls). Overwrites when full. */
    void push(Addr ret_addr);

    /** Pop the predicted return target (returns 0 when empty). */
    Addr pop();

    bool empty() const { return size_ == 0; }
    unsigned size() const { return size_; }
    unsigned depth() const
    {
        return static_cast<unsigned>(stack_.size());
    }

  private:
    std::vector<Addr> stack_;
    unsigned top_ = 0;  // next push position
    unsigned size_ = 0; // valid entries (<= depth)
};

} // namespace oova

#endif // OOVA_CORE_BTB_HH
