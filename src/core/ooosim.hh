/**
 * @file
 * The OOOVA simulator: out-of-order, register-renaming vector
 * architecture (paper sections 2.2, 5 and 6).
 *
 * Pipeline structure, as in the paper's figure 2: instructions flow
 * in order through Fetch and Decode/Rename, then into one of four
 * queues (A, S, V, M) from which they issue out of order, at most
 * one instruction per queue per cycle. Memory instructions first
 * traverse a 3-stage in-order pipeline (Issue/Rf, Range,
 * Dependence); afterwards they issue to memory out of order, subject
 * to range-based disambiguation. A 64-entry reorder buffer holding
 * only register names (never values) retires up to 4 instructions
 * per cycle.
 *
 * Commit models: the aggressive early-commit scheme releases a dead
 * physical register as soon as the redefining instruction begins
 * execution reaches the ROB head; the late-commit scheme (precise
 * traps, section 5) requires completion and executes stores only at
 * the ROB head.
 *
 * Dynamic load elimination (section 6): physical registers carry
 * memory tags; a load whose tag exactly matches some register is
 * satisfied by a rename-table update (vector) or a register copy
 * (scalar) instead of a memory access. In SLE+VLE mode all
 * vector-register instructions pass through the memory pipeline so
 * vector renaming happens at a single stage (figure 10).
 */

#ifndef OOVA_CORE_OOOSIM_HH
#define OOVA_CORE_OOOSIM_HH

#include "core/config.hh"
#include "mem/simresult.hh"
#include "trace/trace.hh"

namespace oova
{

/**
 * Optional fault injection for the precise-trap integration tests:
 * the dynamic instruction with sequence number @p faultSeq (which
 * must be a load or store) page-faults on its first execution
 * attempt. Requires late commit; the machine recovers precise state
 * via the ROB and re-executes.
 */
struct FaultInjection
{
    SeqNum faultSeq = kNoSeq;
};

/** Run @p trace through the OOOVA. */
SimResult simulateOoo(const Trace &trace, const OooConfig &cfg = {},
                      const FaultInjection &fault = {});

} // namespace oova

#endif // OOVA_CORE_OOOSIM_HH
