#include "core/physreg.hh"

#include <algorithm>
#include <cassert>

#include "common/logging.hh"

namespace oova
{

PhysRegFile::PhysRegFile(unsigned num_regs, unsigned num_logical)
    : regs_(num_regs)
{
    sim_assert(num_regs > num_logical,
               "need more physical (%u) than logical (%u) registers",
               num_regs, num_logical);
    for (unsigned r = 0; r < num_logical; ++r)
        regs_[r].refCount = 1; // initial architected mappings
    for (unsigned r = num_logical; r < num_regs; ++r) {
        regs_[r].inFreeList = true;
        freeList_.push_back(static_cast<int>(r));
    }
}

int
PhysRegFile::alloc()
{
    sim_assert(!freeList_.empty(), "allocation from empty free list");
    // Prefer an untagged register: tagged free registers are a
    // cache of memory contents that load elimination can still hit.
    // Fast path: without load elimination no register ever carries a
    // tag, so the head of the list is the first untagged entry.
    int r;
    if (!regs_[static_cast<size_t>(freeList_.front())].tag.valid) {
        r = freeList_.front();
        freeList_.pop_front();
    } else {
        auto it =
            std::find_if(freeList_.begin(), freeList_.end(),
                         [this](int fr) { return !regs_[fr].tag.valid; });
        if (it == freeList_.end())
            it = freeList_.begin();
        r = *it;
        freeList_.erase(it);
    }

    PhysReg &p = regs_[r];
    // A register only reaches the free list once every in-flight
    // reader and writer has committed or been squashed, so the
    // subscription counts must be zero. The waiter list may still
    // hold retired-but-unresolved eliminated loads: they resolve
    // against whatever producer writes this register next, exactly
    // as the pre-wakeup code's every-cycle rescan did.
    assert(p.robSrcRefs == 0 && p.robDstRefs == 0 &&
           p.elimRefs == 0);
    p.inFreeList = false;
    p.refCount = 1;
    p.chainReadyAt = kNoCycle;
    p.fullReadyAt = kNoCycle;
    p.readPortFreeAt = 0;
    p.writerIsLoad = false;
    p.tag = MemTag{};
    return r;
}

void
PhysRegFile::addRef(int r)
{
    sim_assert(!regs_[r].inFreeList, "addRef on free register %d", r);
    ++regs_[r].refCount;
}

void
PhysRegFile::release(int r)
{
    PhysReg &p = regs_[r];
    sim_assert(p.refCount > 0, "release of unreferenced register %d",
               r);
    if (--p.refCount == 0) {
        sim_assert(!p.inFreeList, "double free of register %d", r);
        p.inFreeList = true;
        freeList_.push_back(r);
        // Value state and tag are intentionally preserved: the
        // register remains a load-elimination candidate until it is
        // reallocated for a new definition.
    }
}

void
PhysRegFile::reviveFromFreeList(int r)
{
    PhysReg &p = regs_[r];
    sim_assert(p.inFreeList, "revive of live register %d", r);
    auto it = std::find(freeList_.begin(), freeList_.end(), r);
    sim_assert(it != freeList_.end(), "free list corrupt");
    freeList_.erase(it);
    p.inFreeList = false;
    p.refCount = 1;
}

int
PhysRegFile::findExactTag(const MemTag &tag) const
{
    for (size_t r = 0; r < regs_.size(); ++r)
        if (regs_[r].tag.exactMatch(tag))
            return static_cast<int>(r);
    return -1;
}

void
PhysRegFile::invalidateOverlapping(Addr lo, Addr hi, int except)
{
    for (size_t r = 0; r < regs_.size(); ++r) {
        if (static_cast<int>(r) == except)
            continue;
        if (regs_[r].tag.overlaps(lo, hi))
            regs_[r].tag.valid = false;
    }
}

void
PhysRegFile::invalidateAllTags()
{
    for (auto &p : regs_)
        p.tag.valid = false;
}

} // namespace oova
