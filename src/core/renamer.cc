#include "core/renamer.hh"

#include "common/logging.hh"

namespace oova
{

Renamer::Renamer(const RenamerConfig &cfg)
    : files_{PhysRegFile(cfg.numPhysA, kNumLogicalARegs),
             PhysRegFile(cfg.numPhysS, kNumLogicalSRegs),
             PhysRegFile(cfg.numPhysV, kNumLogicalVRegs),
             PhysRegFile(cfg.numPhysM, kNumLogicalMRegs)}
{
    for (unsigned c = 0; c < kNumRegClasses; ++c) {
        unsigned n = numLogicalRegs(static_cast<RegClass>(c));
        maps_[c].resize(n);
        for (unsigned l = 0; l < n; ++l)
            maps_[c][l] = static_cast<int>(l);
    }
}

Renamer::Renamed
Renamer::renameDst(const RegId &dst)
{
    sim_assert(dst.valid(), "rename of invalid destination");
    auto &map = maps_[clsIdx(dst.cls)];
    int old_phys = map[dst.idx];
    int phys = file(dst.cls).alloc();
    map[dst.idx] = phys;
    return {phys, old_phys};
}

Renamer::Renamed
Renamer::redirectDst(const RegId &dst, int phys)
{
    sim_assert(dst.valid(), "redirect of invalid destination");
    auto &map = maps_[clsIdx(dst.cls)];
    int old_phys = map[dst.idx];
    PhysRegFile &f = file(dst.cls);
    if (f.reg(phys).inFreeList)
        f.reviveFromFreeList(phys);
    else
        f.addRef(phys);
    map[dst.idx] = phys;
    return {phys, old_phys};
}

void
Renamer::rollback(const RegId &dst, int phys_dst, int old_phys)
{
    auto &map = maps_[clsIdx(dst.cls)];
    sim_assert(map[dst.idx] == phys_dst,
               "rollback out of order: map holds %d, expected %d",
               map[dst.idx], phys_dst);
    map[dst.idx] = old_phys;
    file(dst.cls).release(phys_dst);
}

} // namespace oova
