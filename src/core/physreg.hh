/**
 * @file
 * Physical register files for the OOOVA.
 *
 * Each register class (A, S, V, M) has its own file and free list,
 * as in the paper. Two departures from a textbook R10000 scheme are
 * required by the paper's mechanisms:
 *
 *  - Registers are reference counted: dynamic load elimination can
 *    map several logical registers onto one physical register, and a
 *    physical register on the free list can be revived by a tag
 *    match, so "free" is only safe once the last claim dies.
 *  - Each register carries a memory tag (paper section 6.1): the
 *    address range, vector length, stride and element size of the
 *    memory region whose contents the register mirrors. Tags stay
 *    valid on the free list until the register is reallocated.
 */

#ifndef OOVA_CORE_PHYSREG_HH
#define OOVA_CORE_PHYSREG_HH

#include <cstddef>
#include <vector>

#include "common/slidingqueue.hh"
#include "common/types.hh"
#include "isa/registers.hh"

namespace oova
{

/** The 6-tuple (4-tuple for scalars) memory tag of section 6.1. */
struct MemTag
{
    bool valid = false;
    Addr start = 0;   ///< first byte of the mirrored region
    Addr end = 0;     ///< one past the last byte
    uint16_t vl = 0;  ///< vector length at tag creation (1 = scalar)
    int64_t stride = 0;
    uint8_t esz = 0;

    bool
    exactMatch(const MemTag &o) const
    {
        return valid && o.valid && start == o.start && end == o.end &&
               vl == o.vl && stride == o.stride && esz == o.esz;
    }

    bool
    overlaps(Addr lo, Addr hi) const
    {
        return valid && start < hi && lo < end;
    }
};

/** State of one physical register. */
struct PhysReg
{
    /** Earliest cycle a chaining consumer may start reading. */
    Cycle chainReadyAt = 0;
    /** Cycle the last element (or scalar value) is written. */
    Cycle fullReadyAt = 0;
    /**
     * Each OOOVA vector register has one dedicated read port
     * (paper section 2.2), so concurrent readers serialize. This is
     * the cycle the port frees.
     */
    Cycle readPortFreeAt = 0;
    bool writerIsLoad = false;
    int refCount = 0;
    bool inFreeList = false;
    MemTag tag;

    // ---- wakeup network (owned by the OOOVA simulator) ----
    // The simulator parks in-flight consumers on their producer
    // register instead of re-polling it every cycle, and counts how
    // many live ROB entries reference the register so its event
    // calendar can tell a live ready-time from a stale one. These
    // fields are bookkeeping only: they never influence simulated
    // timing, and the REF machine ignores them.
    /**
     * Head of the intrusive list of ROB entries waiting for this
     * register's next ready-time write (slab indices into the
     * simulator's in-flight storage; -1 = empty).
     */
    int32_t waiterHead = -1;
    /** Live ROB entries referencing this register as a source. */
    uint16_t robSrcRefs = 0;
    /** Live ROB entries referencing this register as destination. */
    uint16_t robDstRefs = 0;
    /** Unresolved eliminated loads copying from this register. */
    uint16_t elimRefs = 0;
};

/** One class's physical file + free list. */
class PhysRegFile
{
  public:
    /**
     * @param num_regs total physical registers
     * @param num_logical architected registers; physical 0..n-1 are
     *        the initial mappings (ready, refCount 1); the rest
     *        start on the free list
     */
    PhysRegFile(unsigned num_regs, unsigned num_logical);

    unsigned size() const
    {
        return static_cast<unsigned>(regs_.size());
    }

    unsigned numFree() const
    {
        return static_cast<unsigned>(freeList_.size());
    }

    bool hasFree() const { return !freeList_.empty(); }

    /**
     * Allocate a register for a new definition: prefers untagged
     * free registers so tagged ones survive longer for load
     * elimination. Resets tag and readiness; sets refCount to 1.
     * @return register index; panics if the free list is empty.
     */
    int alloc();

    /** Add a claim (extra logical mapping) to a register. */
    void addRef(int r);

    /** Drop a claim; the register is freed when none remain. */
    void release(int r);

    /**
     * Revive a free register matched by a load tag: removes it from
     * the free list (value state and tag are preserved) and gives it
     * one claim.
     */
    void reviveFromFreeList(int r);

    PhysReg &reg(int r) { return regs_[static_cast<size_t>(r)]; }
    const PhysReg &
    reg(int r) const
    {
        return regs_[static_cast<size_t>(r)];
    }

    /** Find any register whose tag exactly matches, else -1. */
    int findExactTag(const MemTag &tag) const;

    /**
     * Conservatively invalidate every tag overlapping [lo, hi),
     * except register @p except (the one being stored, whose tag
     * was just set to this very region).
     */
    void invalidateOverlapping(Addr lo, Addr hi, int except = -1);

    /** Invalidate all tags (used on trap recovery). */
    void invalidateAllTags();

    /**
     * The free list itself, in queue order, for the invariant audit
     * (src/check/): the free-list-conservation checker cross-checks
     * its contents against the per-register flags.
     */
    const SlidingQueue<int> &freeList() const { return freeList_; }

  private:
    std::vector<PhysReg> regs_;
    SlidingQueue<int> freeList_;
};

} // namespace oova

#endif // OOVA_CORE_PHYSREG_HH
