/**
 * @file
 * OOOVA machine configuration (paper section 2.2, Machine
 * Parameters), with the knobs the evaluation sweeps: physical vector
 * register count (figure 5), queue depth (OOOVA-16 vs OOOVA-128),
 * memory latency (figure 8), commit model (figure 9) and dynamic
 * load elimination mode (figures 11-13).
 */

#ifndef OOVA_CORE_CONFIG_HH
#define OOVA_CORE_CONFIG_HH

#include <string>

#include "isa/latency.hh"
#include "mem/memsystem.hh"

namespace oova
{

class PipeTracer;

/** When may an instruction's ROB entry commit? */
enum class CommitMode
{
    /**
     * Paper's aggressive scheme: committable once the instruction
     * begins execution. Not precise.
     */
    Early,
    /**
     * Precise-trap scheme of section 5: committable only when fully
     * complete, and stores execute only at the head of the ROB.
     */
    Late,
};

/** Dynamic load elimination mode (section 6). */
enum class LoadElimMode
{
    None,
    Sle,    ///< scalar load elimination only
    SleVle, ///< scalar + vector load elimination
};

/** Full OOOVA configuration. */
struct OooConfig
{
    LatencyTable lat = LatencyTable::oooDefaults();

    unsigned numPhysVRegs = 16; ///< swept 9..64 in figure 5
    unsigned numPhysARegs = 64;
    unsigned numPhysSRegs = 64;
    unsigned numPhysMRegs = 8;

    unsigned queueSize = 16; ///< all four instruction queues
    unsigned robSize = 64;
    unsigned commitWidth = 4;
    unsigned fetchBufferSize = 8;
    unsigned btbEntries = 64;
    unsigned rasDepth = 8;

    CommitMode commit = CommitMode::Early;
    LoadElimMode loadElim = LoadElimMode::None;

    /**
     * Chain memory loads into functional units. The OOOVA inherits
     * the C3400 datapath, which does not support load chaining
     * (section 2.1); out-of-order issue is what hides the latency
     * instead. On for the ablation study bench/abl_chaining.
     */
    bool chainLoadsToFus = false;

    /** Cycles charged for trap entry on a faulting instruction. */
    unsigned trapPenalty = 50;

    /**
     * Invariant-audit level (src/check/): -1 inherits the OOVA_CHECK
     * environment variable; 0/1/2 force off / retire+end / full.
     * Checkers are observe-only, so the level never changes simulated
     * timing, figure output, or the machine name.
     */
    int checkLevel = -1;

    /**
     * Cycle accounting (CPI stack): charge every cycle of the run to
     * one CpiBucket, surfaced as SimResult::cpiCycles. Observe-only
     * like checkLevel — it never changes simulated timing, figure
     * output, or the machine name. Off by default so the hot path
     * pays nothing.
     */
    bool cpiStack = false;

    /**
     * Occupancy telemetry: sample ROB / queue / free-register /
     * MSHR / TLB occupancy at every event-calendar advance into
     * SimResult::occupancy (+Ts), charged in bulk across idle jumps
     * like the CPI stack. Observe-only like cpiStack — never changes
     * simulated timing, figure output, or the machine name — and off
     * by default so the hot path pays nothing. OOVA_TELEMETRY=1 in
     * the environment forces it on (the goldens-byte-identical CI
     * proof), exactly as OOVA_CHECK overrides checkLevel.
     */
    bool telemetry = false;

    /**
     * Optional instruction-lifecycle tracer (common/pipetrace.hh)
     * recording fetch/rename/dispatch/issue/complete/retire/squash
     * timestamps. Observe-only; null (the default) disables tracing
     * entirely. Not owned; the caller keeps it alive for the run.
     */
    PipeTracer *pipeTracer = nullptr;

    /**
     * The memory hierarchy behind the address path. The default
     * FlatBus reproduces the paper's single-bus fixed-latency model
     * exactly; see mem/memsystem.hh for the banked and cached
     * models. lat.memLatency feeds whichever model is selected.
     */
    MemConfig mem;

    /** Short label, e.g. "OOOVA-16/16r/early" or ".../mb8p1". */
    std::string name() const;
};

} // namespace oova

#endif // OOVA_CORE_CONFIG_HH
