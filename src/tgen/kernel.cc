#include "tgen/kernel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace oova
{

VVid
Kernel::vload(int array, int64_t stride_elems)
{
    KOp op;
    op.kind = KOp::Kind::VLoad;
    op.opc = Opcode::VLoad;
    op.dst = newV();
    op.array = array;
    op.strideElems = stride_elems;
    ops_.push_back(op);
    return op.dst;
}

VVid
Kernel::vloadFixed(int array, uint64_t offset_bytes,
                   uint16_t vl_override)
{
    KOp op;
    op.kind = KOp::Kind::VLoad;
    op.opc = Opcode::VLoad;
    op.dst = newV();
    op.array = array;
    op.fixedAddr = true;
    op.offsetBytes = offset_bytes;
    op.vlOverride = vl_override;
    ops_.push_back(op);
    return op.dst;
}

void
Kernel::vstore(int array, VVid v, int64_t stride_elems)
{
    sim_assert(v >= 0 && v < numVVals_, "vstore of undefined value");
    KOp op;
    op.kind = KOp::Kind::VStore;
    op.opc = Opcode::VStore;
    op.srcs[0] = v;
    op.nsrcs = 1;
    op.array = array;
    op.strideElems = stride_elems;
    ops_.push_back(op);
}

void
Kernel::vstoreFixed(int array, VVid v, uint64_t offset_bytes,
                    uint16_t vl_override)
{
    sim_assert(v >= 0 && v < numVVals_, "vstore of undefined value");
    KOp op;
    op.kind = KOp::Kind::VStore;
    op.opc = Opcode::VStore;
    op.srcs[0] = v;
    op.nsrcs = 1;
    op.array = array;
    op.fixedAddr = true;
    op.offsetBytes = offset_bytes;
    op.vlOverride = vl_override;
    ops_.push_back(op);
}

VVid
Kernel::vgather(int array, VVid index, IndexPattern pattern,
                uint32_t pattern_param)
{
    sim_assert(index >= 0 && index < numVVals_, "gather bad index");
    KOp op;
    op.kind = KOp::Kind::VGather;
    op.opc = Opcode::VGather;
    op.dst = newV();
    op.srcs[0] = index;
    op.nsrcs = 1;
    op.array = array;
    op.fixedAddr = true;
    op.idxPattern = pattern;
    op.idxParam = pattern_param;
    ops_.push_back(op);
    return op.dst;
}

void
Kernel::vscatter(int array, VVid data, VVid index,
                 IndexPattern pattern, uint32_t pattern_param)
{
    sim_assert(data >= 0 && index >= 0, "scatter bad operands");
    KOp op;
    op.kind = KOp::Kind::VScatter;
    op.opc = Opcode::VScatter;
    op.srcs[0] = data;
    op.srcs[1] = index;
    op.nsrcs = 2;
    op.array = array;
    op.fixedAddr = true;
    op.idxPattern = pattern;
    op.idxParam = pattern_param;
    ops_.push_back(op);
}

VVid
Kernel::varith(Opcode opc, VVid a, VVid b)
{
    sim_assert(traits(opc).isVector && !traits(opc).isMem,
               "varith with non-arith opcode %s", opName(opc));
    KOp op;
    op.kind = KOp::Kind::VArith;
    op.opc = opc;
    op.dst = newV();
    op.srcs[0] = a;
    op.nsrcs = 1;
    if (b >= 0) {
        op.srcs[1] = b;
        op.nsrcs = 2;
    }
    ops_.push_back(op);
    return op.dst;
}

VVid
Kernel::vcmpMerge(VVid a, VVid b)
{
    KOp op;
    op.kind = KOp::Kind::VCmpMerge;
    op.opc = Opcode::VMerge;
    op.dst = newV();
    op.srcs[0] = a;
    op.srcs[1] = b;
    op.nsrcs = 2;
    ops_.push_back(op);
    return op.dst;
}

SVid
Kernel::vreduce(VVid v)
{
    KOp op;
    op.kind = KOp::Kind::VReduce;
    op.opc = Opcode::VReduce;
    op.dst = newS();
    op.srcs[0] = v;
    op.nsrcs = 1;
    ops_.push_back(op);
    return op.dst;
}

SVid
Kernel::sarith(Opcode opc, SVid a, SVid b)
{
    KOp op;
    op.kind = KOp::Kind::SArith;
    op.opc = opc;
    op.dst = newS();
    if (a >= 0) {
        op.srcs[0] = a;
        op.nsrcs = 1;
    }
    if (b >= 0) {
        op.srcs[op.nsrcs] = b;
        op.nsrcs++;
    }
    ops_.push_back(op);
    return op.dst;
}

SVid
Kernel::sloadSlot(int slot)
{
    KOp op;
    op.kind = KOp::Kind::SLoadSlot;
    op.opc = Opcode::SLoad;
    op.dst = newS();
    op.slot = slot;
    ops_.push_back(op);
    return op.dst;
}

void
Kernel::sstoreSlot(int slot, SVid v)
{
    KOp op;
    op.kind = KOp::Kind::SStoreSlot;
    op.opc = Opcode::SStore;
    op.srcs[0] = v;
    op.nsrcs = 1;
    op.slot = slot;
    ops_.push_back(op);
}

void
Kernel::scalarChain(int n)
{
    sim_assert(n > 0, "empty scalar chain");
    KOp op;
    op.kind = KOp::Kind::ScalarChain;
    op.chainLen = n;
    ops_.push_back(op);
}

int
Kernel::maxVectorPressure() const
{
    // A vector value is live from its def to its last use.
    std::vector<int> last_use(numVVals_, -1);
    std::vector<int> def_at(numVVals_, -1);
    for (int i = 0; i < static_cast<int>(ops_.size()); ++i) {
        const KOp &op = ops_[i];
        bool v_dst = op.kind == KOp::Kind::VLoad ||
                     op.kind == KOp::Kind::VGather ||
                     op.kind == KOp::Kind::VArith ||
                     op.kind == KOp::Kind::VCmpMerge;
        if (v_dst && op.dst >= 0)
            def_at[op.dst] = i;
        bool v_src = op.kind != KOp::Kind::SArith &&
                     op.kind != KOp::Kind::SLoadSlot &&
                     op.kind != KOp::Kind::SStoreSlot &&
                     op.kind != KOp::Kind::ScalarChain;
        if (v_src) {
            for (int s = 0; s < op.nsrcs; ++s)
                if (op.srcs[s] >= 0)
                    last_use[op.srcs[s]] = i;
        }
    }
    int pressure = 0, peak = 0;
    for (int i = 0; i < static_cast<int>(ops_.size()); ++i) {
        for (int v = 0; v < numVVals_; ++v)
            if (def_at[v] == i)
                ++pressure;
        peak = std::max(peak, pressure);
        for (int v = 0; v < numVVals_; ++v)
            if (last_use[v] == i && def_at[v] >= 0)
                --pressure;
    }
    return peak;
}

} // namespace oova
