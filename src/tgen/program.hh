/**
 * @file
 * A synthetic program: arrays, scalar slots, and a sequence of
 * strip-mined loops over kernels, optionally repeated (outer loop).
 * Program::generate() lowers everything to a dynamic instruction
 * Trace through the code generator.
 */

#ifndef OOVA_TGEN_PROGRAM_HH
#define OOVA_TGEN_PROGRAM_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "tgen/kernel.hh"
#include "trace/trace.hh"

namespace oova
{

/** Per-iteration vector length function. */
using VlFn = std::function<uint16_t(uint64_t iter)>;

/** Constant vector length. */
VlFn vlConstant(uint16_t vl);

/**
 * Strip-mine @p total_elems elements: full strips of kMaxVectorLength
 * followed by one remainder strip. Trip count must be
 * stripTrips(total_elems).
 */
VlFn vlStripmine(uint64_t total_elems);
uint64_t stripTrips(uint64_t total_elems);

/** Triangular loop: vl cycles max_vl, max_vl-step, ..., down to lo. */
VlFn vlTriangular(uint16_t max_vl, uint16_t lo, uint16_t step);

/** One strip-mined loop over a kernel. */
struct LoopSpec
{
    const Kernel *kernel;
    uint64_t trips;
    VlFn vlOf;
};

/** Trace-generation options. */
struct GenOptions
{
    /** Multiplies every loop's trip count (>= 1 trip kept). */
    double scale = 1.0;
    /** Emit SetVL instructions when the vector length changes. */
    bool emitSetVl = true;
};

/** A whole synthetic program. */
class Program
{
  public:
    explicit Program(std::string name);
    ~Program();

    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;

    /** Allocate a data array; returns its id. */
    int array(uint64_t bytes);

    /** Allocate a loop-carried scalar home slot; returns its id. */
    int scalarSlot();

    /** Create a kernel owned by this program. */
    Kernel *newKernel(const std::string &kernel_name);

    /** Append a loop executing @p kernel for @p trips iterations. */
    void addLoop(const Kernel *kernel, uint64_t trips, VlFn vl_of);

    /** Repeat the whole loop sequence @p reps times. */
    void setOuterReps(unsigned reps) { outerReps_ = reps; }

    /** Lower to a dynamic instruction trace. */
    Trace generate(const GenOptions &opts = {}) const;

    const std::string &name() const { return name_; }
    Addr arrayBase(int id) const;
    uint64_t arrayBytes(int id) const;
    Addr scalarSlotAddr(int id) const;
    const std::vector<LoopSpec> &loops() const { return loops_; }
    unsigned outerReps() const { return outerReps_; }

    /** Base of the region holding vector spill slots. */
    Addr vectorSpillBase() const;

    /** Base of the region holding stream-pointer home locations. */
    Addr streamHomeBase() const;

  private:
    struct ArrayInfo
    {
        Addr base;
        uint64_t bytes;
    };

    std::string name_;
    std::vector<ArrayInfo> arrays_;
    int numScalarSlots_ = 0;
    std::deque<Kernel> kernels_;
    std::vector<LoopSpec> loops_;
    unsigned outerReps_ = 1;
    Addr nextArrayBase_;
};

} // namespace oova

#endif // OOVA_TGEN_PROGRAM_HH
