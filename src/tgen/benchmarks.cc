#include "tgen/benchmarks.hh"

#include "common/logging.hh"
#include "isa/registers.hh"

namespace oova
{

namespace
{

constexpr uint64_t kKiB = 1024;

/**
 * swm256: shallow-water model. The paper reports 99.9% vectorization
 * and average vector length 127 — long unit-stride stencil loops
 * with almost no scalar code. Three update loops (CALC1/2/3 style),
 * low register pressure, few spills.
 */
std::unique_ptr<Program>
makeSwm256()
{
    auto p = std::make_unique<Program>("swm256");
    int u = p->array(512 * kKiB), v = p->array(512 * kKiB);
    int pres = p->array(512 * kKiB), z = p->array(512 * kKiB);
    int cu = p->array(512 * kKiB), cv = p->array(512 * kKiB);
    // Coefficient vector: reloaded every iteration because only 8
    // architected registers exist ("repeated loads from the same
    // memory location", section 6) — prime VLE food.
    int coef = p->array(kKiB);

    // CALC1: cu, cv, z from u, v, p.
    Kernel *k1 = p->newKernel("calc1");
    {
        VVid a = k1->vload(u), b = k1->vload(v), c = k1->vload(pres);
        VVid w0 = k1->vloadFixed(coef, 0, 127);
        VVid t1 = k1->vmul(a, c);
        VVid t2 = k1->vmul(b, c);
        VVid t3 = k1->vadd(t1, t2);
        VVid t4 = k1->vadd(a, b);
        VVid t5 = k1->vmul(t3, t4);
        VVid t6 = k1->vadd(t5, t1);
        VVid t7 = k1->vmul(t6, w0);
        k1->vstore(cu, t2);
        k1->vstore(cv, t7);
    }
    // CALC2: sweep combining computed capacities.
    Kernel *k2 = p->newKernel("calc2");
    {
        VVid a = k2->vload(cu), b = k2->vload(cv), c = k2->vload(z);
        VVid w0 = k2->vloadFixed(coef, 0, 127);
        VVid t1 = k2->vadd(a, b);
        VVid t2 = k2->vmul(t1, c);
        VVid t3 = k2->vadd(t2, a);
        VVid t4 = k2->vmul(t3, b);
        VVid t5 = k2->vadd(t4, t2);
        VVid t6 = k2->vmul(t5, w0);
        k2->vstore(u, t3);
        k2->vstore(v, t6);
    }
    // CALC3: time smoothing.
    Kernel *k3 = p->newKernel("calc3");
    {
        VVid a = k3->vload(u), b = k3->vload(v), c = k3->vload(pres);
        VVid w0 = k3->vloadFixed(coef, 0, 127);
        VVid t1 = k3->vadd(a, b);
        VVid t2 = k3->vadd(t1, c);
        VVid t3 = k3->vmul(t2, a);
        VVid t4 = k3->vadd(t3, b);
        VVid t5 = k3->vmul(t4, c);
        VVid t6 = k3->vadd(t5, t3);
        VVid t7 = k3->vadd(t6, w0);
        k3->vstore(pres, t7);
        k3->vstore(z, t4);
    }
    p->addLoop(k1, 40, vlConstant(127));
    p->addLoop(k2, 40, vlConstant(127));
    p->addLoop(k3, 40, vlConstant(127));
    p->setOuterReps(3);
    return p;
}

/**
 * hydro2d: astrophysical hydrodynamics. Long vectors, a balanced
 * add/mul mix with an occasional divide, high vectorization.
 */
std::unique_ptr<Program>
makeHydro2d()
{
    auto p = std::make_unique<Program>("hydro2d");
    int ro = p->array(400 * kKiB), en = p->array(400 * kKiB);
    int vx = p->array(400 * kKiB), vy = p->array(400 * kKiB);
    int fl = p->array(400 * kKiB);
    int gam = p->array(kKiB); // invariant equation-of-state vector

    Kernel *k1 = p->newKernel("advect");
    {
        // Six streams: exactly fills the six allocatable address
        // registers, as the Convex compiler would arrange.
        VVid a = k1->vload(ro), b = k1->vload(vx), c = k1->vload(vy);
        VVid d = k1->vload(en);
        VVid w0 = k1->vloadFixed(gam, 0, 100);
        VVid t1 = k1->vmul(a, b);
        VVid t2 = k1->vmul(a, c);
        VVid t3 = k1->vadd(t1, t2);
        VVid t4 = k1->vdiv(d, a);
        VVid t5 = k1->vadd(t3, t4);
        VVid t6 = k1->vmul(t5, t3);
        VVid t7 = k1->vadd(t6, t1);
        VVid t8 = k1->vadd(t7, t2);
        VVid t9 = k1->vadd(t5, t8);
        VVid t10 = k1->vmul(t9, w0);
        k1->vstore(ro, t10);
    }
    Kernel *k2 = p->newKernel("flux");
    {
        VVid a = k2->vload(vx), b = k2->vload(vy), c = k2->vload(fl);
        VVid d = k2->vload(ro);
        VVid w0 = k2->vloadFixed(gam, 0, 100);
        VVid t1 = k2->vadd(a, b);
        VVid t2 = k2->vmul(t1, c);
        VVid t3 = k2->vadd(t2, d);
        VVid t4 = k2->vmul(t3, t1);
        VVid t5 = k2->vadd(t4, c);
        VVid t6 = k2->vmul(t5, d);
        VVid t7 = k2->vadd(t6, w0);
        VVid t8 = k2->vadd(t7, t4);
        k2->vstore(fl, t8);
    }
    p->addLoop(k1, 55, vlConstant(100));
    p->addLoop(k2, 55, vlConstant(100));
    p->setOuterReps(3);
    return p;
}

/**
 * arc2d: implicit finite-difference fluid code. One wide loop with
 * many simultaneously live values (pressure > 8 V registers), so the
 * allocator produces a moderate amount of vector spill code, plus a
 * conditional merge.
 */
std::unique_ptr<Program>
makeArc2d()
{
    auto p = std::make_unique<Program>("arc2d");
    int q1 = p->array(600 * kKiB), q2 = p->array(600 * kKiB);
    int q3 = p->array(600 * kKiB), rhs = p->array(600 * kKiB);
    int wk = p->array(600 * kKiB), out = p->array(600 * kKiB);

    Kernel *k = p->newKernel("stencil");
    {
        // Load a wide working set first; everything stays live
        // across the computation below, exceeding 8 registers.
        VVid a = k->vload(q1), b = k->vload(q2), c = k->vload(q3);
        VVid d = k->vload(rhs), e = k->vload(wk), f = k->vload(q1, 2);
        VVid g = k->vload(q2, 2), h = k->vload(q3, 2);

        VVid t1 = k->vmul(a, b);
        VVid t2 = k->vmul(c, d);
        VVid t3 = k->vadd(t1, t2);
        VVid t4 = k->vmul(e, f);
        VVid t5 = k->vadd(t3, t4);
        VVid t6 = k->vmul(g, h);
        VVid t7 = k->vadd(t5, t6);
        VVid t8 = k->vadd(a, h);   // early values used late
        VVid t9 = k->vadd(b, g);
        VVid t10 = k->vmul(t8, t9);
        VVid t11 = k->vadd(t7, t10);
        VVid t12 = k->vcmpMerge(t11, c);
        VVid t13 = k->vadd(t12, d);
        VVid t14 = k->vmul(t13, e);
        VVid t15 = k->vadd(t14, f);
        k->vstore(out, t11);
        k->vstore(rhs, t13);
        k->vstore(wk, t15);
        k->scalarChain(17); // implicit-solver index bookkeeping
    }
    p->addLoop(k, 65, vlConstant(115));
    p->setOuterReps(3);
    return p;
}

/**
 * flo52: transonic flow, multigrid structure. Vector length halves
 * from level to level (96 -> 48 -> 24 -> 12), which makes the
 * program latency sensitive — the paper singles it out (with trfd
 * and dyfesm) as highly affected by memory latency.
 */
std::unique_ptr<Program>
makeFlo52()
{
    auto p = std::make_unique<Program>("flo52");
    int w = p->array(256 * kKiB), fs = p->array(256 * kKiB);
    int dw = p->array(256 * kKiB), rad = p->array(256 * kKiB);
    int wt = p->array(kKiB); // invariant restriction weights

    const uint16_t levels[4] = {96, 48, 24, 12};
    for (uint16_t vl : levels) {
        Kernel *k = p->newKernel("level" + std::to_string(vl));
        VVid a = k->vload(w), b = k->vload(fs), c = k->vload(rad);
        VVid w0 = k->vloadFixed(wt, 0, vl);
        VVid t1 = k->vmul(a, b);
        VVid t2 = k->vadd(t1, c);
        VVid t3 = k->vmul(t2, a);
        VVid t4 = k->vadd(t3, b);
        VVid t5 = k->vadd(t4, t1);
        VVid t6 = k->vmul(t5, w0);
        k->vstore(dw, t3);
        k->vstore(w, t6);
        k->scalarChain(9); // grid-transfer address arithmetic
        p->addLoop(k, 40, vlConstant(vl));
    }
    p->setOuterReps(5);
    return p;
}

/**
 * nasa7: seven NASA kernels. Modeled as four representative loops:
 * a matrix-multiply inner loop with a loop-invariant operand (a
 * repeated load from the same address, food for vector load
 * elimination), a strided FFT-like pass, a gather/scatter kernel
 * and a reduction kernel.
 */
std::unique_ptr<Program>
makeNasa7()
{
    auto p = std::make_unique<Program>("nasa7");
    int ma = p->array(512 * kKiB), mb = p->array(512 * kKiB);
    int mc = p->array(512 * kKiB), fft = p->array(512 * kKiB);
    int tbl = p->array(64 * kKiB), idx = p->array(64 * kKiB);
    int red = p->array(512 * kKiB);
    int acc_slot = p->scalarSlot();

    Kernel *km = p->newKernel("mxm");
    {
        VVid col = km->vloadFixed(mb);   // invariant across the strip
        VVid a = km->vload(ma);
        VVid c = km->vload(mc);
        VVid t1 = km->vmul(a, col);
        VVid t2 = km->vadd(c, t1);
        VVid a2 = km->vload(ma, 2);
        VVid t3 = km->vmul(a2, col);
        VVid t4 = km->vadd(t2, t3);
        km->vstore(mc, t4);
        km->scalarChain(11);
    }
    Kernel *kf = p->newKernel("cfft2d");
    {
        VVid re = kf->vload(fft, 2), im = kf->vload(fft, 2);
        VVid wr = kf->vload(tbl), wi = kf->vload(tbl);
        VVid t1 = kf->vmul(re, wr);
        VVid t2 = kf->vmul(im, wi);
        VVid t3 = kf->vadd(t1, t2);
        VVid t4 = kf->vmul(re, wi);
        VVid t5 = kf->vmul(im, wr);
        VVid t6 = kf->vadd(t4, t5);
        kf->vstore(fft, t3, 2);
        kf->vstore(fft, t6, 2);
        kf->scalarChain(11);
    }
    Kernel *kg = p->newKernel("gmtry");
    {
        VVid iv = kg->vload(idx);
        VVid gv = kg->vgather(tbl, iv);
        VVid a = kg->vload(red);
        VVid t1 = kg->vmul(gv, a);
        VVid t2 = kg->vadd(t1, gv);
        kg->vscatter(tbl, t2, iv);
        kg->scalarChain(11);
    }
    Kernel *kr = p->newKernel("emit");
    {
        VVid a = kr->vload(red), b = kr->vload(ma);
        VVid t1 = kr->vmul(a, b);
        SVid s = kr->vreduce(t1);
        SVid acc = kr->sloadSlot(acc_slot);
        SVid sum = kr->sarith(Opcode::SAdd, acc, s);
        kr->sstoreSlot(acc_slot, sum);
        kr->scalarChain(11);
    }
    p->addLoop(km, 45, vlConstant(128));
    p->addLoop(kf, 40, vlConstant(64));
    p->addLoop(kg, 35, vlConstant(96));
    p->addLoop(kr, 45, vlConstant(128));
    p->setOuterReps(2);
    return p;
}

/**
 * su2cor: quantum chromodynamics Monte Carlo. Medium vector lengths
 * and stride-2 accesses over the lattice, multiply heavy.
 */
std::unique_ptr<Program>
makeSu2cor()
{
    auto p = std::make_unique<Program>("su2cor");
    int u1 = p->array(384 * kKiB), u2 = p->array(384 * kKiB);
    int g = p->array(384 * kKiB), wrk = p->array(384 * kKiB);
    int lnk = p->array(kKiB); // invariant gauge links

    Kernel *k1 = p->newKernel("sweep");
    {
        VVid a = k1->vload(u1, 2), b = k1->vload(u2, 2);
        VVid c = k1->vload(g);
        VVid w0 = k1->vloadFixed(lnk, 0, 64);
        VVid t1 = k1->vmul(a, b);
        VVid t2 = k1->vmul(t1, c);
        VVid t3 = k1->vmul(a, c);
        VVid t4 = k1->vadd(t2, t3);
        VVid t5 = k1->vmul(t4, b);
        VVid t6 = k1->vadd(t5, t1);
        VVid t7 = k1->vmul(t6, w0);
        k1->vstore(wrk, t4);
        k1->vstore(u1, t7, 2);
        k1->scalarChain(45); // lattice-site update bookkeeping
    }
    Kernel *k2 = p->newKernel("update");
    {
        VVid a = k2->vload(wrk), b = k2->vload(g);
        VVid w0 = k2->vloadFixed(lnk, 0, 64);
        VVid t1 = k2->vmul(a, b);
        VVid t2 = k2->vadd(t1, a);
        VVid t3 = k2->vmul(t2, b);
        VVid t4 = k2->vadd(t3, w0);
        k2->vstore(u2, t4, 2);
        k2->scalarChain(25);
    }
    p->addLoop(k1, 75, vlConstant(64));
    p->addLoop(k2, 75, vlConstant(64));
    p->setOuterReps(3);
    return p;
}

/**
 * tomcatv: mesh generation. Long vectors in the vectorized sweeps,
 * but the largest scalar component of the ten programs (the paper's
 * Table 2 shows 125.8M scalar vs 7.2M vector instructions), modeled
 * by chains of dependent scalar work between the vector loops. The
 * paper reports its lowest OOOVA speedup (1.24) on this program.
 */
std::unique_ptr<Program>
makeTomcatv()
{
    auto p = std::make_unique<Program>("tomcatv");
    int x = p->array(520 * kKiB), y = p->array(520 * kKiB);
    int rx = p->array(520 * kKiB), ry = p->array(520 * kKiB);
    int aa = p->array(520 * kKiB), dd = p->array(520 * kKiB);
    int rc = p->array(kKiB); // invariant relaxation coefficients

    Kernel *k1 = p->newKernel("resid");
    {
        VVid a = k1->vload(x), b = k1->vload(y);
        VVid c = k1->vload(rx), d = k1->vload(ry);
        VVid w0 = k1->vloadFixed(rc, 0, 127);
        VVid t1 = k1->vmul(a, b);
        VVid t2 = k1->vadd(t1, c);
        VVid t3 = k1->vmul(t2, d);
        VVid t4 = k1->vadd(t3, t1);
        VVid t5 = k1->vmul(t4, a);
        VVid t6 = k1->vadd(t5, b);
        VVid t7 = k1->vmul(t6, c);
        VVid t8 = k1->vadd(t7, t2);
        VVid t9 = k1->vmul(t8, w0);
        VVid t10 = k1->vadd(t9, t4);
        k1->vstore(ry, t10);
        k1->scalarChain(120); // per-row scalar mesh bookkeeping
    }
    Kernel *k2 = p->newKernel("solve");
    {
        VVid a = k2->vload(rx), b = k2->vload(ry), c = k2->vload(dd);
        VVid t1 = k2->vdiv(a, c);
        VVid t2 = k2->vmul(t1, b);
        VVid t3 = k2->vadd(t2, a);
        VVid t4 = k2->vmul(t3, c);
        k2->vstore(aa, t2);
        k2->vstore(dd, t4);
        k2->scalarChain(120);
    }
    // The scalar boundary/tridiagonal bookkeeping between sweeps.
    // No stores here: the scalar phases only read the mesh, so the
    // late-commit model costs tomcatv almost nothing (paper: <5%).
    Kernel *k3 = p->newKernel("boundary");
    {
        k3->scalarChain(230);
        VVid a = k3->vload(x);
        VVid t1 = k3->vshift(a);
        k3->vreduce(t1);
    }
    p->addLoop(k1, 50, vlConstant(127));
    p->addLoop(k2, 50, vlConstant(127));
    p->addLoop(k3, 40, vlConstant(16));
    p->setOuterReps(3);
    return p;
}

/**
 * bdna: molecular dynamics of DNA. The paper highlights its
 * extremely large basic blocks (more than 800 vector instructions)
 * and that 69% of its memory traffic is spill traffic; it is the one
 * program that keeps improving up to 64 physical registers. The
 * kernel loads a wide particle working set and consumes it in
 * load order, which defeats farthest-next-use allocation over 8
 * registers and produces the desired heavy spilling.
 */
std::unique_ptr<Program>
makeBdna()
{
    auto p = std::make_unique<Program>("bdna");
    int xs = p->array(768 * kKiB), fs = p->array(768 * kKiB);
    int out = p->array(768 * kKiB);

    Kernel *k = p->newKernel("forces");
    {
        constexpr int kWide = 40;
        VVid vals[kWide];
        for (int i = 0; i < kWide; ++i)
            vals[i] = k->vload(i % 2 ? xs : fs);
        // Four partial accumulators give independent chains (ILP),
        // but every loaded value is still consumed long after its
        // definition, so most of them cross a spill.
        VVid acc[4];
        for (int a = 0; a < 4; ++a)
            acc[a] = k->vmul(vals[a], vals[a + 4]);
        for (int i = 8; i < kWide; ++i)
            acc[i % 4] = k->vadd(acc[i % 4], vals[i]);
        VVid s1 = k->vadd(acc[0], acc[1]);
        VVid s2 = k->vadd(acc[2], acc[3]);
        VVid s3 = k->vmul(s1, s2);
        k->vstore(out, s3);
        k->vstore(fs, s1);
    }
    // The scalar phases between force loops dominate bdna's
    // instruction count (paper Table 2: 239M scalar vs 19.6M
    // vector instructions).
    Kernel *ks = p->newKernel("bookkeeping");
    ks->scalarChain(250);
    p->addLoop(k, 30, vlConstant(96));
    p->addLoop(ks, 120, vlConstant(96));
    p->setOuterReps(3);
    return p;
}

/**
 * trfd: two-electron integral transformation. Triangular loop nests
 * give a small average vector length; the main loop carries a
 * memory dependence from the last vector store of iteration i to
 * the first vector load of iteration i+1 (same address), which is
 * why the paper reports its largest early-commit speedup (1.72),
 * its worst late-commit degradation (41%), and its largest
 * SLE+VLE gain (2.13). Eight array streams compete for six
 * allocatable A registers, producing scalar pointer spills.
 */
std::unique_ptr<Program>
makeTrfd()
{
    auto p = std::make_unique<Program>("trfd");
    int xijks = p->array(256 * kKiB), xrsij = p->array(256 * kKiB);
    int v1 = p->array(256 * kKiB), v2 = p->array(256 * kKiB);
    int v3 = p->array(256 * kKiB), v4 = p->array(256 * kKiB);
    int tmp = p->array(4 * kKiB); // the cross-iteration temporary
    int acc_slot = p->scalarSlot();

    constexpr uint16_t kTmpVl = 64;

    Kernel *k = p->newKernel("transform");
    {
        // First op: load the temporary written by the previous
        // iteration (cross-iteration store->load dependence).
        VVid t_in = k->vloadFixed(tmp, 0, kTmpVl);
        VVid a = k->vload(v1), b = k->vload(v2);
        VVid c = k->vload(v3), d = k->vload(v4);
        VVid t1 = k->vmul(a, b);
        VVid t2 = k->vadd(t1, c);
        VVid t3 = k->vmul(t2, d);
        VVid t4 = k->vadd(t3, t_in);
        VVid t5 = k->vmul(t4, a);
        k->vstore(xijks, t3);
        k->vstore(xrsij, t5);
        // Last op: store the temporary for the next iteration.
        k->vstoreFixed(tmp, t4, 0, kTmpVl);
        k->scalarChain(60); // triangular index computation
    }
    Kernel *k2 = p->newKernel("accum");
    {
        VVid a = k2->vload(xrsij), b = k2->vload(xijks);
        VVid t1 = k2->vmul(a, b);
        SVid s = k2->vreduce(t1);
        SVid acc = k2->sloadSlot(acc_slot);
        SVid sum = k2->sarith(Opcode::SAdd, acc, s);
        k2->sstoreSlot(acc_slot, sum);
        k2->scalarChain(40);
    }
    p->addLoop(k, 90, vlTriangular(120, 8, 8));
    p->addLoop(k2, 45, vlConstant(32));
    p->setOuterReps(3);
    return p;
}

/**
 * dyfesm: structural dynamics finite elements. Small vector lengths
 * (the shortest of the set), and loop-carried scalar accumulators
 * that the compiler keeps in memory slots across iterations: a
 * scalar store at the bottom of the loop feeds a scalar load at the
 * top of the next iteration. Scalar load elimination (SLE) bypasses
 * that pair and effectively unrolls the loop, the behaviour the
 * paper uses to explain dyfesm's outlier SLE speedup (1.36) and
 * late-commit degradation (47%).
 */
std::unique_ptr<Program>
makeDyfesm()
{
    auto p = std::make_unique<Program>("dyfesm");
    int xd = p->array(128 * kKiB), fe = p->array(128 * kKiB);
    int stif = p->array(128 * kKiB), disp = p->array(128 * kKiB);
    int acc0 = p->scalarSlot(), acc1 = p->scalarSlot();

    Kernel *k = p->newKernel("element");
    {
        SVid e0 = k->sloadSlot(acc0);
        SVid e1 = k->sloadSlot(acc1);
        // A wide element working set: the early values a, b, c stay
        // live until the very end, pushing pressure past the 8
        // architected registers and producing per-iteration spill
        // store/reload pairs — the food for vector load elimination.
        VVid a = k->vload(xd), b = k->vload(fe), c = k->vload(stif);
        VVid d = k->vload(xd, 2), e = k->vload(fe, 2);
        VVid t1 = k->vmul(a, b);
        VVid t2 = k->vadd(t1, c);
        VVid t3 = k->vmul(t2, d);
        VVid t4 = k->vadd(t3, e);
        VVid t5 = k->vmul(t4, t1);
        VVid t6 = k->vadd(t5, a);   // early values reused late
        VVid t7 = k->vmul(t6, b);
        VVid t8 = k->vadd(t7, c);
        VVid t9 = k->vadd(t8, d);
        VVid t10 = k->vmul(t9, e);
        VVid t11 = k->vadd(t10, t2);
        VVid t12 = k->vadd(t11, t3);
        SVid r = k->vreduce(t12);
        SVid s1 = k->sarith(Opcode::SAdd, e0, r);
        SVid s2 = k->sarith(Opcode::SMul, s1, e1);
        k->sstoreSlot(acc0, s1);
        k->sstoreSlot(acc1, s2);
        k->vstore(disp, t8);
        k->scalarChain(25); // element assembly bookkeeping
    }
    Kernel *k2 = p->newKernel("gather-phase");
    {
        VVid a = k2->vload(disp), b = k2->vload(stif);
        VVid t1 = k2->vmul(a, b);
        VVid t2 = k2->vadd(t1, a);
        k2->vstore(fe, t2);
        k2->scalarChain(15);
    }
    p->addLoop(k, 130, vlConstant(24));
    p->addLoop(k2, 80, vlConstant(20));
    p->setOuterReps(3);
    return p;
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "swm256", "hydro2d", "arc2d", "flo52", "nasa7",
        "su2cor", "tomcatv", "bdna", "trfd", "dyfesm",
    };
    return names;
}

bool
isBenchmarkName(const std::string &name)
{
    for (const auto &n : benchmarkNames())
        if (n == name)
            return true;
    return false;
}

std::unique_ptr<Program>
makeBenchmarkProgram(const std::string &name)
{
    if (name == "swm256")
        return makeSwm256();
    if (name == "hydro2d")
        return makeHydro2d();
    if (name == "arc2d")
        return makeArc2d();
    if (name == "flo52")
        return makeFlo52();
    if (name == "nasa7")
        return makeNasa7();
    if (name == "su2cor")
        return makeSu2cor();
    if (name == "tomcatv")
        return makeTomcatv();
    if (name == "bdna")
        return makeBdna();
    if (name == "trfd")
        return makeTrfd();
    if (name == "dyfesm")
        return makeDyfesm();
    fatal("unknown benchmark '%s'", name.c_str());
}

Trace
makeBenchmarkTrace(const std::string &name, const GenOptions &opts)
{
    return makeBenchmarkProgram(name)->generate(opts);
}

} // namespace oova
