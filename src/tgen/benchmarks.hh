/**
 * @file
 * The ten synthetic benchmark programs.
 *
 * The paper traces 10 highly vectorizable Perfect Club / SPECfp92
 * programs on a Convex C3480. We cannot obtain those traces, so each
 * program here is a synthetic model that reproduces the trace-level
 * characteristics the paper documents for it (Table 2 statistics,
 * spill behaviour, loop structure, cross-iteration dependences).
 * See DESIGN.md section 5 for the per-program inventory.
 */

#ifndef OOVA_TGEN_BENCHMARKS_HH
#define OOVA_TGEN_BENCHMARKS_HH

#include <memory>
#include <string>
#include <vector>

#include "tgen/program.hh"

namespace oova
{

/** Names of the ten benchmark programs, in the paper's order. */
const std::vector<std::string> &benchmarkNames();

/** True if @p name is one of the ten benchmarks. */
bool isBenchmarkName(const std::string &name);

/** Construct the synthetic program model for @p name. */
std::unique_ptr<Program> makeBenchmarkProgram(const std::string &name);

/** Convenience: build the program and generate its trace. */
Trace makeBenchmarkTrace(const std::string &name,
                         const GenOptions &opts = {});

} // namespace oova

#endif // OOVA_TGEN_BENCHMARKS_HH
