/**
 * @file
 * Lowering from the kernel IR to the dynamic instruction trace.
 *
 * The generator plays the role of the Convex compiler plus the Dixie
 * tracer: it strip-mines loops, assigns the 8 architected vector
 * registers with a Belady (farthest-next-use) policy, spills to a
 * dedicated spill region when pressure exceeds the file, keeps array
 * stream pointers in the 6 allocatable A registers with LRU
 * replacement (spilling pointers to their memory homes when they
 * overflow), and emits the loop-control scalar code and branches.
 *
 * The spill code it emits is the raw material for the paper's
 * Table 3 and the dynamic-load-elimination experiments.
 */

#ifndef OOVA_TGEN_CODEGEN_HH
#define OOVA_TGEN_CODEGEN_HH

#include <array>
#include <map>
#include <vector>

#include "tgen/program.hh"

namespace oova
{

/** One-shot lowering engine; use Program::generate() normally. */
class CodeGen
{
  public:
    CodeGen(const Program &prog, const GenOptions &opts);

    /** Produce the trace (callable once). */
    Trace run();

  private:
    // Static, per-kernel operand-use analysis, cached across loops.
    struct KernelInfo
    {
        // Per virtual value: ordered op positions of each source use
        // (duplicates kept: a value used twice by one op appears
        // twice).
        std::vector<std::vector<int>> vUsePos;
        std::vector<std::vector<int>> sUsePos;
    };

    // Block-scoped register allocation state for one class.
    struct BlockAlloc
    {
        int numRegs = 0;
        std::vector<int> holder;  // reg -> vid (-1 free)
        std::vector<int> regOf;   // vid -> reg (-1 not resident)
        std::vector<bool> spilled;
        std::vector<int> cursor;  // next unconsumed use index
        std::vector<int> usesLeft;
        std::vector<bool> pinned; // per reg, during one op
        int rrNext = 0;           // round-robin start for free scan

        void reset(int num_regs, int num_vids,
                   const std::vector<std::vector<int>> &use_pos);
        int nextUse(int vid,
                    const std::vector<std::vector<int>> &use_pos) const;
    };

    // Array stream pointers living in A registers a0..a5.
    struct Stream
    {
        Addr cur = 0;
        Addr home = 0;
        int areg = -1; // index into stream regs (0..5)
        bool dirty = false;
        uint64_t lastUse = 0;
        bool loaded = false; // pointer has been in a register before
    };

    static constexpr int kNumStreamRegs = 6;  // a0..a5
    static constexpr int kSpillBaseAReg = 6;  // a6
    static constexpr int kCounterAReg = 7;    // a7
    static constexpr int kChainSRegA = 7;     // s7 scratch chain 1
    static constexpr int kChainSRegB = 6;     // s6 scratch chain 2
    static constexpr int kNumAllocSRegs = 6;  // s0..s5

    const KernelInfo &kernelInfo(const Kernel *k);

    void emit(DynInst inst);
    void runLoop(const LoopSpec &loop, size_t loop_idx);
    void emitIteration(const LoopSpec &loop, size_t loop_idx,
                       uint64_t iter, uint16_t vl, bool last_iter);

    // Stream (A register) management.
    int streamId(size_t loop_idx, int op_idx);
    int ensureStream(int sid);
    void bumpStream(int sid, int64_t advance_bytes);
    void resetStreamRegs();

    // V/S block allocation; emits spill code as needed.
    int ensureV(int vvid, uint16_t vl, size_t loop_idx);
    int allocV(int vvid, uint16_t vl, size_t loop_idx);
    void consumeV(int vvid);
    int ensureS(int svid, size_t loop_idx);
    int allocS(int svid, size_t loop_idx);
    void consumeS(int svid);
    int pickVictim(BlockAlloc &ba,
                   const std::vector<std::vector<int>> &use_pos) const;

    Addr vSpillAddr(size_t loop_idx, int vvid) const;
    Addr sSpillAddr(size_t loop_idx, int svid) const;

    const Program &prog_;
    GenOptions opts_;
    Trace trace_;

    std::map<const Kernel *, KernelInfo> kernelInfoCache_;
    std::map<std::pair<size_t, int>, int> streamIds_;
    std::vector<Stream> streams_;
    std::array<int, kNumStreamRegs> streamRegHolder_;
    uint64_t useClock_ = 0;

    BlockAlloc vAlloc_;
    BlockAlloc sAlloc_;
    const KernelInfo *curInfo_ = nullptr;

    uint16_t curVl_ = 0;
    Addr blockBase_ = 0;
    uint64_t pcIndex_ = 0;
    bool ran_ = false;
};

} // namespace oova

#endif // OOVA_TGEN_CODEGEN_HH
