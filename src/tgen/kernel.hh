/**
 * @file
 * Loop-body kernel IR for the synthetic workload generator.
 *
 * A Kernel describes one vectorized loop body as a DAG of operations
 * on virtual vector values (VVid) and virtual scalar values (SVid).
 * The code generator lowers a kernel to the architected ISA once per
 * strip-mined iteration, allocating the 8 logical V registers and
 * inserting spill code exactly where a compiler for the reference
 * machine would have to — this is what reproduces the paper's
 * Table 3 spill census and the dynamic-load-elimination results.
 */

#ifndef OOVA_TGEN_KERNEL_HH
#define OOVA_TGEN_KERNEL_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace oova
{

/** Virtual vector value id (SSA-like, block scoped). */
using VVid = int;

/** Virtual scalar value id (block scoped). */
using SVid = int;

/** One kernel-IR operation. */
struct KOp
{
    enum class Kind : uint8_t
    {
        VLoad,      ///< streaming or fixed-address vector load
        VStore,     ///< streaming or fixed-address vector store
        VGather,    ///< indexed vector load
        VScatter,   ///< indexed vector store
        VArith,     ///< vector arithmetic (opc selects flavor)
        VCmpMerge,  ///< compare to mask + merge (two instructions)
        VReduce,    ///< vector -> scalar reduction
        SArith,     ///< scalar arithmetic on virtual scalars
        SLoadSlot,  ///< load a loop-carried scalar from its home slot
        SStoreSlot, ///< store a loop-carried scalar to its home slot
        ScalarChain,///< chain of dependent scalar ops (scalar work)
    };

    Kind kind;
    Opcode opc = Opcode::VAdd;
    int dst = -1;                  ///< VVid or SVid depending on kind
    int srcs[3] = {-1, -1, -1};
    int nsrcs = 0;
    int array = -1;                ///< memory ops: program array id
    bool fixedAddr = false;        ///< loop-invariant address
    uint64_t offsetBytes = 0;      ///< offset for fixed-address ops
    int64_t strideElems = 1;       ///< stream stride in elements
    int slot = -1;                 ///< scalar slot id (program scope)
    int chainLen = 0;              ///< ScalarChain length
    uint16_t vlOverride = 0;       ///< 0 = use the iteration VL

    // Gather/scatter only: how the index vector was generated (the
    // memory system maps banks from the real pattern).
    IndexPattern idxPattern = IndexPattern::Random;
    uint32_t idxParam = 0;
};

/**
 * Builder for one loop body. All building methods return the id of
 * the produced virtual value (where applicable).
 */
class Kernel
{
  public:
    explicit Kernel(std::string name) : name_(std::move(name)) {}

    /** Streaming load: address advances by vl*stride each iter. */
    VVid vload(int array, int64_t stride_elems = 1);

    /**
     * Loop-invariant load: same address every iteration. A nonzero
     * @p vl_override fixes the length regardless of the iteration
     * VL (used for cross-iteration temporaries whose tag must match
     * exactly for dynamic load elimination).
     */
    VVid vloadFixed(int array, uint64_t offset_bytes = 0,
                    uint16_t vl_override = 0);

    void vstore(int array, VVid v, int64_t stride_elems = 1);
    void vstoreFixed(int array, VVid v, uint64_t offset_bytes = 0,
                     uint16_t vl_override = 0);

    /**
     * Indexed load over the whole array region. @p pattern declares
     * how the index vector was generated (the default Random models
     * an arbitrary table lookup); @p pattern_param is its parameter
     * (e.g. the modulus of IndexPattern::CongruentMod).
     */
    VVid vgather(int array, VVid index,
                 IndexPattern pattern = IndexPattern::Random,
                 uint32_t pattern_param = 0);
    void vscatter(int array, VVid data, VVid index,
                  IndexPattern pattern = IndexPattern::Random,
                  uint32_t pattern_param = 0);

    VVid varith(Opcode op, VVid a, VVid b = -1);
    VVid vadd(VVid a, VVid b) { return varith(Opcode::VAdd, a, b); }
    VVid vmul(VVid a, VVid b) { return varith(Opcode::VMul, a, b); }
    VVid vdiv(VVid a, VVid b) { return varith(Opcode::VDiv, a, b); }
    VVid vsqrt(VVid a) { return varith(Opcode::VSqrt, a); }
    VVid vlogic(VVid a, VVid b) { return varith(Opcode::VLogic, a, b); }
    VVid vshift(VVid a) { return varith(Opcode::VShift, a); }

    /** Compare a,b into the mask then merge a,b under the mask. */
    VVid vcmpMerge(VVid a, VVid b);

    /** Reduce a vector to a scalar (sum/max style). */
    SVid vreduce(VVid v);

    SVid sarith(Opcode op, SVid a, SVid b = -1);

    /** Load/store a loop-carried scalar via its memory home slot. */
    SVid sloadSlot(int slot);
    void sstoreSlot(int slot, SVid v);

    /** n dependent scalar ALU ops modeling non-vectorized work. */
    void scalarChain(int n);

    const std::string &name() const { return name_; }
    const std::vector<KOp> &ops() const { return ops_; }
    int numVVals() const { return numVVals_; }
    int numSVals() const { return numSVals_; }

    /**
     * Maximum number of simultaneously live vector values, i.e. the
     * register pressure the allocator will face.
     */
    int maxVectorPressure() const;

  private:
    VVid newV() { return numVVals_++; }
    SVid newS() { return numSVals_++; }

    std::string name_;
    std::vector<KOp> ops_;
    int numVVals_ = 0;
    int numSVals_ = 0;
};

} // namespace oova

#endif // OOVA_TGEN_KERNEL_HH
