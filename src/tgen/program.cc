#include "tgen/program.hh"

#include "common/logging.hh"
#include "isa/registers.hh"
#include "tgen/codegen.hh"

namespace oova
{

namespace
{

// Fixed regions of the synthetic address space.
constexpr Addr kArrayRegion = 0x10000000ULL;
constexpr Addr kVectorSpillRegion = 0x70000000ULL;
constexpr Addr kScalarSlotRegion = 0x78000000ULL;
constexpr Addr kStreamHomeRegion = 0x7c000000ULL;

constexpr Addr
align4k(Addr a)
{
    return (a + 0xfffULL) & ~0xfffULL;
}

} // namespace

VlFn
vlConstant(uint16_t vl)
{
    sim_assert(vl >= 1 && vl <= kMaxVectorLength, "bad vl %u", vl);
    return [vl](uint64_t) { return vl; };
}

uint64_t
stripTrips(uint64_t total_elems)
{
    return (total_elems + kMaxVectorLength - 1) / kMaxVectorLength;
}

VlFn
vlStripmine(uint64_t total_elems)
{
    sim_assert(total_elems >= 1, "stripmine of empty range");
    uint64_t full = total_elems / kMaxVectorLength;
    uint16_t rem =
        static_cast<uint16_t>(total_elems % kMaxVectorLength);
    return [full, rem](uint64_t iter) -> uint16_t {
        if (iter < full)
            return kMaxVectorLength;
        return rem ? rem : kMaxVectorLength;
    };
}

VlFn
vlTriangular(uint16_t max_vl, uint16_t lo, uint16_t step)
{
    sim_assert(max_vl >= lo && lo >= 1 && step >= 1,
               "bad triangular spec");
    unsigned levels = (max_vl - lo) / step + 1;
    return [max_vl, step, levels](uint64_t iter) -> uint16_t {
        unsigned level = static_cast<unsigned>(iter % levels);
        return static_cast<uint16_t>(max_vl - level * step);
    };
}

Program::Program(std::string name)
    : name_(std::move(name)), nextArrayBase_(kArrayRegion)
{
}

Program::~Program() = default;

int
Program::array(uint64_t bytes)
{
    sim_assert(bytes > 0, "empty array");
    ArrayInfo info{nextArrayBase_, bytes};
    nextArrayBase_ = align4k(nextArrayBase_ + bytes);
    arrays_.push_back(info);
    return static_cast<int>(arrays_.size()) - 1;
}

int
Program::scalarSlot()
{
    return numScalarSlots_++;
}

Kernel *
Program::newKernel(const std::string &kernel_name)
{
    kernels_.emplace_back(kernel_name);
    return &kernels_.back();
}

void
Program::addLoop(const Kernel *kernel, uint64_t trips, VlFn vl_of)
{
    sim_assert(kernel != nullptr, "null kernel");
    sim_assert(trips >= 1, "loop with no trips");
    loops_.push_back(LoopSpec{kernel, trips, std::move(vl_of)});
}

Addr
Program::arrayBase(int id) const
{
    sim_assert(id >= 0 && id < static_cast<int>(arrays_.size()),
               "bad array id %d", id);
    return arrays_[id].base;
}

uint64_t
Program::arrayBytes(int id) const
{
    sim_assert(id >= 0 && id < static_cast<int>(arrays_.size()),
               "bad array id %d", id);
    return arrays_[id].bytes;
}

Addr
Program::scalarSlotAddr(int id) const
{
    sim_assert(id >= 0 && id < numScalarSlots_, "bad slot id %d", id);
    return kScalarSlotRegion + static_cast<Addr>(id) * kElemBytes;
}

Addr
Program::vectorSpillBase() const
{
    return kVectorSpillRegion;
}

Addr
Program::streamHomeBase() const
{
    return kStreamHomeRegion;
}

Trace
Program::generate(const GenOptions &opts) const
{
    CodeGen gen(*this, opts);
    return gen.run();
}

} // namespace oova
