#include "tgen/codegen.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace oova
{

namespace
{

constexpr Addr kScalarSpillRegion = 0x7a000000ULL;
constexpr int kMaxVVidsPerLoop = 512;
constexpr int kMaxSVidsPerLoop = 512;
constexpr int kInfinity = std::numeric_limits<int>::max();

/** V-source operand positions of an op (indices into op.srcs). */
void
forEachVSrc(const KOp &op, const std::function<void(int)> &fn)
{
    using K = KOp::Kind;
    switch (op.kind) {
    case K::VStore:
    case K::VGather:
    case K::VReduce:
        fn(op.srcs[0]);
        break;
    case K::VScatter:
        fn(op.srcs[0]);
        fn(op.srcs[1]);
        break;
    case K::VArith:
    case K::VCmpMerge:
        for (int i = 0; i < op.nsrcs; ++i)
            fn(op.srcs[i]);
        break;
    default:
        break;
    }
}

void
forEachSSrc(const KOp &op, const std::function<void(int)> &fn)
{
    using K = KOp::Kind;
    switch (op.kind) {
    case K::SArith:
        for (int i = 0; i < op.nsrcs; ++i)
            fn(op.srcs[i]);
        break;
    case K::SStoreSlot:
        fn(op.srcs[0]);
        break;
    default:
        break;
    }
}

} // namespace

CodeGen::CodeGen(const Program &prog, const GenOptions &opts)
    : prog_(prog), opts_(opts)
{
    streamRegHolder_.fill(-1);
}

void
CodeGen::BlockAlloc::reset(int num_regs, int num_vids,
                           const std::vector<std::vector<int>> &use_pos)
{
    numRegs = num_regs;
    holder.assign(num_regs, -1);
    pinned.assign(num_regs, false);
    regOf.assign(num_vids, -1);
    spilled.assign(num_vids, false);
    cursor.assign(num_vids, 0);
    usesLeft.assign(num_vids, 0);
    for (int v = 0; v < num_vids; ++v)
        usesLeft[v] = static_cast<int>(use_pos[v].size());
    rrNext = 0;
}

int
CodeGen::BlockAlloc::nextUse(
    int vid, const std::vector<std::vector<int>> &use_pos) const
{
    if (cursor[vid] >= static_cast<int>(use_pos[vid].size()))
        return kInfinity;
    return use_pos[vid][cursor[vid]];
}

const CodeGen::KernelInfo &
CodeGen::kernelInfo(const Kernel *k)
{
    auto it = kernelInfoCache_.find(k);
    if (it != kernelInfoCache_.end())
        return it->second;

    KernelInfo info;
    info.vUsePos.resize(k->numVVals());
    info.sUsePos.resize(k->numSVals());
    const auto &ops = k->ops();
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
        forEachVSrc(ops[i], [&](int v) {
            sim_assert(v >= 0 && v < k->numVVals(),
                       "kernel %s: op %d uses undefined vector value",
                       k->name().c_str(), i);
            info.vUsePos[v].push_back(i);
        });
        forEachSSrc(ops[i], [&](int s) {
            sim_assert(s >= 0 && s < k->numSVals(),
                       "kernel %s: op %d uses undefined scalar value",
                       k->name().c_str(), i);
            info.sUsePos[s].push_back(i);
        });
    }
    return kernelInfoCache_.emplace(k, std::move(info)).first->second;
}

void
CodeGen::emit(DynInst inst)
{
    inst.pc = blockBase_ + pcIndex_ * 4;
    ++pcIndex_;
    trace_.push(inst);
}

Addr
CodeGen::vSpillAddr(size_t loop_idx, int vvid) const
{
    sim_assert(vvid < kMaxVVidsPerLoop, "too many vector values");
    return prog_.vectorSpillBase() +
           (static_cast<Addr>(loop_idx) * kMaxVVidsPerLoop + vvid) *
               (kMaxVectorLength * kElemBytes);
}

Addr
CodeGen::sSpillAddr(size_t loop_idx, int svid) const
{
    sim_assert(svid < kMaxSVidsPerLoop, "too many scalar values");
    return kScalarSpillRegion +
           (static_cast<Addr>(loop_idx) * kMaxSVidsPerLoop + svid) *
               kElemBytes;
}

int
CodeGen::pickVictim(BlockAlloc &ba,
                    const std::vector<std::vector<int>> &use_pos) const
{
    int victim = -1;
    int victim_next = -1;
    for (int r = 0; r < ba.numRegs; ++r) {
        if (ba.pinned[r] || ba.holder[r] < 0)
            continue;
        int nu = ba.nextUse(ba.holder[r], use_pos);
        if (nu > victim_next) {
            victim_next = nu;
            victim = r;
        }
    }
    sim_assert(victim >= 0, "no evictable register");
    return victim;
}

int
CodeGen::allocV(int vvid, uint16_t vl, size_t loop_idx)
{
    // Free register first (round-robin scan to spread usage over the
    // banked file of the reference machine).
    for (int i = 0; i < vAlloc_.numRegs; ++i) {
        int r = (vAlloc_.rrNext + i) % vAlloc_.numRegs;
        if (vAlloc_.holder[r] < 0 && !vAlloc_.pinned[r]) {
            vAlloc_.rrNext = (r + 1) % vAlloc_.numRegs;
            vAlloc_.holder[r] = vvid;
            vAlloc_.regOf[vvid] = r;
            return r;
        }
    }
    // Evict the holder with the farthest next use; spill it if it is
    // still needed and has no valid spill copy.
    int r = pickVictim(vAlloc_, curInfo_->vUsePos);
    int victim = vAlloc_.holder[r];
    if (vAlloc_.usesLeft[victim] > 0 && !vAlloc_.spilled[victim]) {
        emit(makeVStore(vReg(static_cast<uint8_t>(r)),
                        aReg(kSpillBaseAReg),
                        vSpillAddr(loop_idx, victim), kElemBytes, vl,
                        /*is_spill=*/true));
        vAlloc_.spilled[victim] = true;
    }
    vAlloc_.regOf[victim] = -1;
    vAlloc_.holder[r] = vvid;
    vAlloc_.regOf[vvid] = r;
    return r;
}

int
CodeGen::ensureV(int vvid, uint16_t vl, size_t loop_idx)
{
    int r = vAlloc_.regOf[vvid];
    if (r >= 0) {
        vAlloc_.pinned[r] = true;
        return r;
    }
    sim_assert(vAlloc_.spilled[vvid],
               "vector value %d neither resident nor spilled", vvid);
    r = allocV(vvid, vl, loop_idx);
    vAlloc_.pinned[r] = true;
    emit(makeVLoad(vReg(static_cast<uint8_t>(r)), aReg(kSpillBaseAReg),
                   vSpillAddr(loop_idx, vvid), kElemBytes, vl,
                   /*is_spill=*/true));
    return r;
}

void
CodeGen::consumeV(int vvid)
{
    ++vAlloc_.cursor[vvid];
    --vAlloc_.usesLeft[vvid];
    sim_assert(vAlloc_.usesLeft[vvid] >= 0, "over-consumed value");
    if (vAlloc_.usesLeft[vvid] == 0) {
        int r = vAlloc_.regOf[vvid];
        if (r >= 0) {
            vAlloc_.holder[r] = -1;
            vAlloc_.regOf[vvid] = -1;
        }
    }
}

int
CodeGen::allocS(int svid, size_t loop_idx)
{
    for (int i = 0; i < sAlloc_.numRegs; ++i) {
        int r = (sAlloc_.rrNext + i) % sAlloc_.numRegs;
        if (sAlloc_.holder[r] < 0 && !sAlloc_.pinned[r]) {
            sAlloc_.rrNext = (r + 1) % sAlloc_.numRegs;
            sAlloc_.holder[r] = svid;
            sAlloc_.regOf[svid] = r;
            return r;
        }
    }
    int r = pickVictim(sAlloc_, curInfo_->sUsePos);
    int victim = sAlloc_.holder[r];
    if (sAlloc_.usesLeft[victim] > 0 && !sAlloc_.spilled[victim]) {
        emit(makeSStore(sReg(static_cast<uint8_t>(r)),
                        aReg(kSpillBaseAReg),
                        sSpillAddr(loop_idx, victim),
                        /*is_spill=*/true));
        sAlloc_.spilled[victim] = true;
    }
    sAlloc_.regOf[victim] = -1;
    sAlloc_.holder[r] = svid;
    sAlloc_.regOf[svid] = r;
    return r;
}

int
CodeGen::ensureS(int svid, size_t loop_idx)
{
    int r = sAlloc_.regOf[svid];
    if (r >= 0) {
        sAlloc_.pinned[r] = true;
        return r;
    }
    sim_assert(sAlloc_.spilled[svid],
               "scalar value %d neither resident nor spilled", svid);
    r = allocS(svid, loop_idx);
    sAlloc_.pinned[r] = true;
    emit(makeSLoad(sReg(static_cast<uint8_t>(r)), aReg(kSpillBaseAReg),
                   sSpillAddr(loop_idx, svid), /*is_spill=*/true));
    return r;
}

void
CodeGen::consumeS(int svid)
{
    ++sAlloc_.cursor[svid];
    --sAlloc_.usesLeft[svid];
    sim_assert(sAlloc_.usesLeft[svid] >= 0, "over-consumed value");
    if (sAlloc_.usesLeft[svid] == 0) {
        int r = sAlloc_.regOf[svid];
        if (r >= 0) {
            sAlloc_.holder[r] = -1;
            sAlloc_.regOf[svid] = -1;
        }
    }
}

int
CodeGen::streamId(size_t loop_idx, int op_idx)
{
    auto key = std::make_pair(loop_idx, op_idx);
    auto it = streamIds_.find(key);
    if (it != streamIds_.end())
        return it->second;
    int sid = static_cast<int>(streams_.size());
    Stream s;
    s.home = prog_.streamHomeBase() +
             static_cast<Addr>(sid) * kElemBytes;
    streams_.push_back(s);
    streamIds_.emplace(key, sid);
    return sid;
}

void
CodeGen::resetStreamRegs()
{
    streamRegHolder_.fill(-1);
    for (auto &s : streams_) {
        s.areg = -1;
        s.dirty = false;
    }
}

int
CodeGen::ensureStream(int sid)
{
    Stream &s = streams_[sid];
    s.lastUse = ++useClock_;
    if (s.areg >= 0)
        return s.areg;

    // Find a free stream register, else evict the LRU one.
    int reg = -1;
    for (int r = 0; r < kNumStreamRegs; ++r) {
        if (streamRegHolder_[r] < 0) {
            reg = r;
            break;
        }
    }
    if (reg < 0) {
        uint64_t oldest = UINT64_MAX;
        for (int r = 0; r < kNumStreamRegs; ++r) {
            const Stream &h = streams_[streamRegHolder_[r]];
            if (h.lastUse < oldest) {
                oldest = h.lastUse;
                reg = r;
            }
        }
        Stream &victim = streams_[streamRegHolder_[reg]];
        if (victim.dirty) {
            emit(makeSStore(aReg(static_cast<uint8_t>(reg)),
                            aReg(kSpillBaseAReg), victim.home,
                            /*is_spill=*/true));
            victim.dirty = false;
        }
        victim.areg = -1;
    }
    // Load the pointer from its home. The very first touch is the
    // initial pointer load (not pressure induced), so not a spill.
    emit(makeSLoad(aReg(static_cast<uint8_t>(reg)),
                   aReg(kSpillBaseAReg), s.home,
                   /*is_spill=*/s.loaded));
    s.loaded = true;
    s.areg = reg;
    streamRegHolder_[reg] = sid;
    return reg;
}

void
CodeGen::bumpStream(int sid, int64_t advance_bytes)
{
    Stream &s = streams_[sid];
    sim_assert(s.areg >= 0, "bump of non-resident stream");
    s.cur = static_cast<Addr>(static_cast<int64_t>(s.cur) +
                              advance_bytes);
    emit(makeScalar(Opcode::SAdd, aReg(static_cast<uint8_t>(s.areg)),
                    aReg(static_cast<uint8_t>(s.areg))));
    s.dirty = true;
}

void
CodeGen::emitIteration(const LoopSpec &loop, size_t loop_idx,
                       uint64_t iter, uint16_t vl, bool last_iter)
{
    (void)iter;
    const Kernel &k = *loop.kernel;
    const KernelInfo &info = kernelInfo(&k);
    curInfo_ = &info;

    if (opts_.emitSetVl && vl != curVl_) {
        DynInst setvl;
        setvl.op = Opcode::SetVL;
        setvl.vl = 1;
        emit(setvl);
    }
    curVl_ = vl;

    vAlloc_.reset(static_cast<int>(kNumLogicalVRegs), k.numVVals(),
                  info.vUsePos);
    sAlloc_.reset(kNumAllocSRegs, k.numSVals(), info.sUsePos);

    const auto &ops = k.ops();
    for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
        const KOp &op = ops[i];
        using K = KOp::Kind;

        // Reset per-op pinning.
        std::fill(vAlloc_.pinned.begin(), vAlloc_.pinned.end(), false);
        std::fill(sAlloc_.pinned.begin(), sAlloc_.pinned.end(), false);

        switch (op.kind) {
        case K::VLoad: {
            int sid = streamId(loop_idx, i);
            int areg = ensureStream(sid);
            Addr addr = op.fixedAddr
                            ? prog_.arrayBase(op.array) + op.offsetBytes
                            : streams_[sid].cur;
            uint16_t use_vl = op.vlOverride ? op.vlOverride : vl;
            int r = allocV(op.dst, vl, loop_idx);
            emit(makeVLoad(vReg(static_cast<uint8_t>(r)),
                           aReg(static_cast<uint8_t>(areg)), addr,
                           op.strideElems * kElemBytes, use_vl));
            if (vAlloc_.usesLeft[op.dst] == 0) {
                vAlloc_.holder[r] = -1; // dead load
                vAlloc_.regOf[op.dst] = -1;
            }
            if (!op.fixedAddr)
                bumpStream(sid, static_cast<int64_t>(vl) *
                                    op.strideElems * kElemBytes);
            break;
        }
        case K::VStore: {
            int r = ensureV(op.srcs[0], vl, loop_idx);
            int sid = streamId(loop_idx, i);
            int areg = ensureStream(sid);
            Addr addr = op.fixedAddr
                            ? prog_.arrayBase(op.array) + op.offsetBytes
                            : streams_[sid].cur;
            uint16_t use_vl = op.vlOverride ? op.vlOverride : vl;
            emit(makeVStore(vReg(static_cast<uint8_t>(r)),
                            aReg(static_cast<uint8_t>(areg)), addr,
                            op.strideElems * kElemBytes, use_vl));
            consumeV(op.srcs[0]);
            if (!op.fixedAddr)
                bumpStream(sid, static_cast<int64_t>(vl) *
                                    op.strideElems * kElemBytes);
            break;
        }
        case K::VGather: {
            int ri = ensureV(op.srcs[0], vl, loop_idx);
            int sid = streamId(loop_idx, i);
            int areg = ensureStream(sid);
            int rd = allocV(op.dst, vl, loop_idx);
            DynInst inst;
            inst.op = Opcode::VGather;
            inst.dst = vReg(static_cast<uint8_t>(rd));
            inst.addSrc(vReg(static_cast<uint8_t>(ri)));
            inst.addSrc(aReg(static_cast<uint8_t>(areg)));
            inst.vl = vl;
            inst.addr = prog_.arrayBase(op.array);
            inst.regionBytes =
                static_cast<uint32_t>(prog_.arrayBytes(op.array));
            inst.idxPattern = op.idxPattern;
            inst.idxParam = op.idxParam;
            // Seed from the trace position: deterministic, but each
            // dynamic instance gets its own index placement.
            inst.idxSeed = trace_.size() + 1;
            emit(inst);
            consumeV(op.srcs[0]);
            if (vAlloc_.usesLeft[op.dst] == 0) {
                vAlloc_.holder[rd] = -1;
                vAlloc_.regOf[op.dst] = -1;
            }
            break;
        }
        case K::VScatter: {
            int rd = ensureV(op.srcs[0], vl, loop_idx);
            int ri = ensureV(op.srcs[1], vl, loop_idx);
            int sid = streamId(loop_idx, i);
            int areg = ensureStream(sid);
            DynInst inst;
            inst.op = Opcode::VScatter;
            inst.addSrc(vReg(static_cast<uint8_t>(rd)));
            inst.addSrc(vReg(static_cast<uint8_t>(ri)));
            inst.addSrc(aReg(static_cast<uint8_t>(areg)));
            inst.vl = vl;
            inst.addr = prog_.arrayBase(op.array);
            inst.regionBytes =
                static_cast<uint32_t>(prog_.arrayBytes(op.array));
            inst.idxPattern = op.idxPattern;
            inst.idxParam = op.idxParam;
            inst.idxSeed = trace_.size() + 1;
            emit(inst);
            consumeV(op.srcs[0]);
            consumeV(op.srcs[1]);
            break;
        }
        case K::VArith: {
            int ra = ensureV(op.srcs[0], vl, loop_idx);
            int rb = -1;
            if (op.nsrcs > 1)
                rb = ensureV(op.srcs[1], vl, loop_idx);
            int rd = allocV(op.dst, vl, loop_idx);
            emit(makeVArith(op.opc, vReg(static_cast<uint8_t>(rd)),
                            vReg(static_cast<uint8_t>(ra)),
                            rb >= 0 ? vReg(static_cast<uint8_t>(rb))
                                    : RegId(),
                            vl));
            for (int sidx = 0; sidx < op.nsrcs; ++sidx)
                consumeV(op.srcs[sidx]);
            if (vAlloc_.usesLeft[op.dst] == 0) {
                vAlloc_.holder[rd] = -1;
                vAlloc_.regOf[op.dst] = -1;
            }
            break;
        }
        case K::VCmpMerge: {
            int ra = ensureV(op.srcs[0], vl, loop_idx);
            int rb = ensureV(op.srcs[1], vl, loop_idx);
            DynInst cmp = makeVArith(Opcode::VCmp, mReg(0),
                                     vReg(static_cast<uint8_t>(ra)),
                                     vReg(static_cast<uint8_t>(rb)),
                                     vl);
            emit(cmp);
            int rd = allocV(op.dst, vl, loop_idx);
            DynInst merge = makeVArith(
                Opcode::VMerge, vReg(static_cast<uint8_t>(rd)),
                vReg(static_cast<uint8_t>(ra)),
                vReg(static_cast<uint8_t>(rb)), vl);
            merge.addSrc(mReg(0));
            emit(merge);
            consumeV(op.srcs[0]);
            consumeV(op.srcs[1]);
            if (vAlloc_.usesLeft[op.dst] == 0) {
                vAlloc_.holder[rd] = -1;
                vAlloc_.regOf[op.dst] = -1;
            }
            break;
        }
        case K::VReduce: {
            int rv = ensureV(op.srcs[0], vl, loop_idx);
            int rs = allocS(op.dst, loop_idx);
            DynInst inst = makeVArith(Opcode::VReduce,
                                      sReg(static_cast<uint8_t>(rs)),
                                      vReg(static_cast<uint8_t>(rv)),
                                      RegId(), vl);
            emit(inst);
            consumeV(op.srcs[0]);
            if (sAlloc_.usesLeft[op.dst] == 0) {
                sAlloc_.holder[rs] = -1;
                sAlloc_.regOf[op.dst] = -1;
            }
            break;
        }
        case K::SArith: {
            int ra = -1, rb = -1;
            if (op.nsrcs > 0)
                ra = ensureS(op.srcs[0], loop_idx);
            if (op.nsrcs > 1)
                rb = ensureS(op.srcs[1], loop_idx);
            int rd = allocS(op.dst, loop_idx);
            emit(makeScalar(op.opc, sReg(static_cast<uint8_t>(rd)),
                            ra >= 0 ? sReg(static_cast<uint8_t>(ra))
                                    : RegId(),
                            rb >= 0 ? sReg(static_cast<uint8_t>(rb))
                                    : RegId()));
            for (int sidx = 0; sidx < op.nsrcs; ++sidx)
                consumeS(op.srcs[sidx]);
            if (sAlloc_.usesLeft[op.dst] == 0) {
                sAlloc_.holder[rd] = -1;
                sAlloc_.regOf[op.dst] = -1;
            }
            break;
        }
        case K::SLoadSlot: {
            int rd = allocS(op.dst, loop_idx);
            emit(makeSLoad(sReg(static_cast<uint8_t>(rd)),
                           aReg(kSpillBaseAReg),
                           prog_.scalarSlotAddr(op.slot),
                           /*is_spill=*/true));
            if (sAlloc_.usesLeft[op.dst] == 0) {
                sAlloc_.holder[rd] = -1;
                sAlloc_.regOf[op.dst] = -1;
            }
            break;
        }
        case K::SStoreSlot: {
            int rs = ensureS(op.srcs[0], loop_idx);
            emit(makeSStore(sReg(static_cast<uint8_t>(rs)),
                            aReg(kSpillBaseAReg),
                            prog_.scalarSlotAddr(op.slot),
                            /*is_spill=*/true));
            consumeS(op.srcs[0]);
            break;
        }
        case K::ScalarChain: {
            // Two interleaved dependence chains, re-seeded every few
            // operations: models the mix of serial and mildly
            // parallel scalar bookkeeping around the vector loops.
            // The reseeding (a move with no source) lets renaming
            // overlap chain segments while the in-order reference
            // machine pays the full interlock.
            for (int c = 0; c < op.chainLen; ++c) {
                uint8_t r = (c % 2 == 0)
                                ? static_cast<uint8_t>(kChainSRegA)
                                : static_cast<uint8_t>(kChainSRegB);
                if (c % 8 < 2) {
                    emit(makeScalar(Opcode::SMove, sReg(r), RegId()));
                    continue;
                }
                Opcode opc =
                    (c % 8 == 7) ? Opcode::SMul : Opcode::SAdd;
                emit(makeScalar(opc, sReg(r), sReg(r)));
            }
            break;
        }
        }
    }

    // Loop control: bump the counter and branch back unless done.
    emit(makeScalar(Opcode::SAdd, aReg(kCounterAReg),
                    aReg(kCounterAReg)));
    DynInst br = makeBranch(aReg(kCounterAReg), !last_iter,
                            blockBase_);
    br.pc = blockBase_ + 0x3fff0;
    ++pcIndex_;
    trace_.push(br); // pc assigned manually: stable branch address
}

void
CodeGen::runLoop(const LoopSpec &loop, size_t loop_idx)
{
    uint64_t trips = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround(static_cast<double>(loop.trips) *
                            opts_.scale)));

    blockBase_ = 0x1000 + static_cast<Addr>(loop_idx) * 0x40000;
    pcIndex_ = 0;
    curVl_ = 0; // force a SetVL on loop entry

    // Enter the loop body through a call so the OOOVA return stack
    // sees realistic call/return traffic.
    DynInst call = makeCall(blockBase_);
    call.pc = blockBase_ - 8;
    trace_.push(call);

    // Stream pointers restart at the array bases on loop entry.
    resetStreamRegs();
    for (const auto &[key, sid] : streamIds_) {
        if (key.first == loop_idx) {
            const KOp &op = loop.kernel->ops()[key.second];
            if (op.array >= 0)
                streams_[sid].cur = prog_.arrayBase(op.array);
        }
    }

    for (uint64_t iter = 0; iter < trips; ++iter) {
        pcIndex_ = 0;
        uint16_t vl = loop.vlOf(iter);
        sim_assert(vl >= 1 && vl <= kMaxVectorLength,
                   "loop %zu iter %llu: bad vl %u", loop_idx,
                   (unsigned long long)iter, vl);
        emitIteration(loop, loop_idx, iter, vl,
                      iter == trips - 1);
    }

    DynInst ret = makeRet(blockBase_ - 4);
    ret.pc = blockBase_ + 0x3fff8;
    trace_.push(ret);
}

Trace
CodeGen::run()
{
    sim_assert(!ran_, "CodeGen::run() called twice");
    ran_ = true;
    trace_.setName(prog_.name());

    // Pre-create stream ids so loop entry can reset pointers.
    for (size_t li = 0; li < prog_.loops().size(); ++li) {
        const auto &ops = prog_.loops()[li].kernel->ops();
        for (int oi = 0; oi < static_cast<int>(ops.size()); ++oi) {
            const KOp &op = ops[oi];
            if (op.kind == KOp::Kind::VLoad ||
                op.kind == KOp::Kind::VStore ||
                op.kind == KOp::Kind::VGather ||
                op.kind == KOp::Kind::VScatter) {
                int sid = streamId(li, oi);
                streams_[sid].cur = prog_.arrayBase(op.array);
            }
        }
    }

    // Preamble: set up the spill-base and counter registers.
    blockBase_ = 0x100;
    pcIndex_ = 0;
    emit(makeScalar(Opcode::SMove, aReg(kSpillBaseAReg), RegId()));
    emit(makeScalar(Opcode::SMove, aReg(kCounterAReg), RegId()));
    emit(makeScalar(Opcode::SMove, sReg(kChainSRegA), RegId()));
    emit(makeScalar(Opcode::SMove, sReg(kChainSRegB), RegId()));

    for (unsigned rep = 0; rep < prog_.outerReps(); ++rep)
        for (size_t li = 0; li < prog_.loops().size(); ++li)
            runLoop(prog_.loops()[li], li);

    return std::move(trace_);
}

} // namespace oova
