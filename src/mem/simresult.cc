#include "mem/simresult.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace oova
{

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
    case StallCause::None:
        return "none";
    case StallCause::ScalarDep:
        return "scalar-dep";
    case StallCause::VectorDep:
        return "vector-dep";
    case StallCause::WarWaw:
        return "war/waw";
    case StallCause::FuBusy:
        return "fu-busy";
    case StallCause::MemUnit:
        return "mem-unit";
    case StallCause::Ports:
        return "ports";
    case StallCause::Branch:
        return "branch";
    default:
        return "?";
    }
}

const char *
cpiBucketName(CpiBucket bucket)
{
    switch (bucket) {
    case CpiBucket::Commit:
        return "commit";
    case CpiBucket::Fetch:
        return "fetch";
    case CpiBucket::Rename:
        return "rename";
    case CpiBucket::QueueFull:
        return "queue-full";
    case CpiBucket::OperandWait:
        return "operand-wait";
    case CpiBucket::FuBusy:
        return "fu-busy";
    case CpiBucket::Memory:
        return "memory";
    case CpiBucket::TlbTrap:
        return "tlb-trap";
    case CpiBucket::Drain:
        return "drain";
    default:
        return "?";
    }
}

namespace
{

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += csprintf("\\u%04x", c);
        else
            out += c;
    }
    out += '"';
    return out;
}

/**
 * Flat field surface of one StatDistribution / StatTimeSeries for
 * the keyed-object JSON encoding: exact integers only, one stable
 * label per slot, parsed back through parseKeyedU64.
 */
constexpr unsigned kDistFields = 6 + StatDistribution::kNumBuckets;
constexpr unsigned kTsFields = 2 + StatTimeSeries::kMaxEpochs;

std::string
distFieldName(unsigned i)
{
    static const char *kScalars[6] = {"width", "samples", "sum",
                                      "sumsq", "min",     "max"};
    if (i < 6)
        return kScalars[i];
    return csprintf("b%u", i - 6);
}

void
distToVals(const StatDistribution &d, uint64_t *v)
{
    v[0] = d.width;
    v[1] = d.samples;
    v[2] = d.sum;
    v[3] = d.sumSquares;
    v[4] = d.minValue;
    v[5] = d.maxValue;
    for (size_t b = 0; b < StatDistribution::kNumBuckets; ++b)
        v[6 + b] = d.buckets[b];
}

void
distFromVals(StatDistribution &d, const uint64_t *v)
{
    d.width = v[0];
    d.samples = v[1];
    d.sum = v[2];
    d.sumSquares = v[3];
    d.minValue = v[4];
    d.maxValue = v[5];
    for (size_t b = 0; b < StatDistribution::kNumBuckets; ++b)
        d.buckets[b] = v[6 + b];
}

std::string
tsFieldName(unsigned i)
{
    if (i == 0)
        return "epoch";
    if (i == 1)
        return "total";
    return csprintf("e%u", i - 2);
}

void
tsToVals(const StatTimeSeries &t, uint64_t *v)
{
    v[0] = t.epochLen;
    v[1] = t.total;
    for (size_t e = 0; e < StatTimeSeries::kMaxEpochs; ++e)
        v[2 + e] = t.sums[e];
}

void
tsFromVals(StatTimeSeries &t, const uint64_t *v)
{
    t.epochLen = v[0];
    t.total = v[1];
    for (size_t e = 0; e < StatTimeSeries::kMaxEpochs; ++e)
        t.sums[e] = v[2 + e];
}

} // namespace

std::string
SimResult::toJson() const
{
    std::ostringstream os;
    auto u64 = [&](const char *name, uint64_t v) {
        os << "  \"" << name << "\": " << v << ",\n";
    };
    os << "{\n";
    os << "  \"resultSchemaVersion\": " << kResultSchemaVersion
       << ",\n";
    os << "  \"program\": " << jsonString(program) << ",\n";
    os << "  \"machine\": " << jsonString(machine) << ",\n";
    u64("cycles", cycles);
    u64("instructions", instructions);
    os << "  \"stateCycles\": {";
    for (int s = 0; s < UnitStateBreakdown::kNumStates; ++s) {
        if (s)
            os << ", ";
        os << jsonString(UnitStateBreakdown::stateName(s)) << ": "
           << stateCycles[static_cast<size_t>(s)];
    }
    os << "},\n";
    u64("fu1BusyCycles", fu1BusyCycles);
    u64("fu2BusyCycles", fu2BusyCycles);
    u64("memBusyCycles", memBusyCycles);
    u64("memRequests", memRequests);
    u64("memBankConflicts", memBankConflicts);
    u64("memConflictCycles", memConflictCycles);
    u64("memIndexedConflicts", memIndexedConflicts);
    u64("memIndexedConflictCycles", memIndexedConflictCycles);
    u64("cacheHits", cacheHits);
    u64("cacheMisses", cacheMisses);
    u64("mshrStallCycles", mshrStallCycles);
    u64("tlbHits", tlbHits);
    u64("tlbMisses", tlbMisses);
    u64("tlbIndexedMisses", tlbIndexedMisses);
    u64("tlbMissCycles", tlbMissCycles);
    u64("vectorLoadsEliminated", vectorLoadsEliminated);
    u64("scalarLoadsEliminated", scalarLoadsEliminated);
    u64("branchMispredicts", branchMispredicts);
    u64("renameStallCycles", renameStallCycles);
    u64("robStallCycles", robStallCycles);
    u64("queueStallCycles", queueStallCycles);
    u64("traps", traps);
    os << "  \"stallCycles\": {";
    for (unsigned c = 0; c < kNumStallCauses; ++c) {
        if (c)
            os << ", ";
        os << jsonString(stallCauseName(static_cast<StallCause>(c)))
           << ": " << stallCycles[c];
    }
    os << "},\n";
    os << "  \"cpiCycles\": {";
    for (unsigned b = 0; b < kNumCpiBuckets; ++b) {
        if (b)
            os << ", ";
        os << jsonString(cpiBucketName(static_cast<CpiBucket>(b)))
           << ": " << cpiCycles[b];
    }
    os << "},\n";
    os << "  \"occupancy\": {";
    for (size_t s = 0; s < kNumOccStructs; ++s) {
        uint64_t vals[kDistFields];
        distToVals(occupancy[s], vals);
        if (s)
            os << ",";
        os << "\n    "
           << jsonString(occStructName(static_cast<OccStruct>(s)))
           << ": {";
        for (unsigned i = 0; i < kDistFields; ++i) {
            if (i)
                os << ", ";
            os << jsonString(distFieldName(i)) << ": " << vals[i];
        }
        os << "}";
    }
    os << "},\n";
    os << "  \"occupancyTs\": {";
    for (size_t s = 0; s < kNumOccStructs; ++s) {
        uint64_t vals[kTsFields];
        tsToVals(occupancyTs[s], vals);
        if (s)
            os << ",";
        os << "\n    "
           << jsonString(occStructName(static_cast<OccStruct>(s)))
           << ": {";
        for (unsigned i = 0; i < kTsFields; ++i) {
            if (i)
                os << ", ";
            os << jsonString(tsFieldName(i)) << ": " << vals[i];
        }
        os << "}";
    }
    os << "},\n";
    // Derived accessors, so consumers need not re-implement them.
    os << csprintf("  \"portIdleFraction\": %.6f,\n",
                   portIdleFraction());
    u64("memStridedConflicts", memStridedConflicts());
    u64("stridedTlbMisses", stridedTlbMisses());
    os << csprintf("  \"ipc\": %.6f\n", ipc());
    os << "}\n";
    return os.str();
}

namespace
{

/**
 * Minimal strict cursor over the JSON subset toJson() emits:
 * objects, strings, and numbers. Anything else is a parse failure —
 * the caller treats that as a corrupt or stale record.
 */
class JsonCursor
{
  public:
    explicit JsonCursor(const std::string &s)
        : p_(s.data()), end_(s.data() + s.size())
    {
    }

    /** Consume @p c (after whitespace); false if absent. */
    bool
    lit(char c)
    {
        ws();
        if (p_ < end_ && *p_ == c) {
            ++p_;
            return true;
        }
        return false;
    }

    /** Whether @p c is next (after whitespace), without consuming. */
    bool
    peek(char c)
    {
        ws();
        return p_ < end_ && *p_ == c;
    }

    /** Parse a quoted string, undoing jsonString()'s escapes. */
    bool
    str(std::string &out)
    {
        if (!lit('"'))
            return false;
        out.clear();
        while (p_ < end_ && *p_ != '"') {
            char c = *p_++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p_ >= end_)
                return false;
            char e = *p_++;
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out += e;
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                if (end_ - p_ < 4)
                    return false;
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p_++;
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // The writer only escapes bytes below 0x20.
                if (v > 0xff)
                    return false;
                out += static_cast<char>(v);
                break;
            }
            default:
                return false;
            }
        }
        return lit('"');
    }

    /** Parse an unsigned decimal integer. */
    bool
    u64(uint64_t &v)
    {
        ws();
        if (p_ >= end_ || *p_ < '0' || *p_ > '9')
            return false;
        char *end = nullptr;
        errno = 0;
        v = std::strtoull(p_, &end, 10);
        if (end == p_ || errno == ERANGE)
            return false;
        p_ = end;
        return true;
    }

    /** Validate-and-skip a number (derived double-valued keys). */
    bool
    skipNumber()
    {
        ws();
        char *end = nullptr;
        double v = std::strtod(p_, &end);
        (void)v;
        if (end == p_)
            return false;
        p_ = end;
        return true;
    }

    /** True once only trailing whitespace remains. */
    bool
    atEnd()
    {
        ws();
        return p_ == end_;
    }

  private:
    void
    ws()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\n' ||
                             *p_ == '\t' || *p_ == '\r'))
            ++p_;
    }

    const char *p_;
    const char *end_;
};

/**
 * Parse one "{name: count, ...}" breakdown keyed by human-readable
 * labels, requiring every label exactly once.
 */
template <typename NameFn>
bool
parseKeyedU64(JsonCursor &p, uint64_t *vals, unsigned n, NameFn name)
{
    if (!p.lit('{'))
        return false;
    unsigned seen = 0;
    bool first = true;
    while (!p.peek('}')) {
        if (!first && !p.lit(','))
            return false;
        first = false;
        std::string key;
        uint64_t v = 0;
        if (!p.str(key) || !p.lit(':') || !p.u64(v))
            return false;
        bool matched = false;
        for (unsigned i = 0; i < n; ++i) {
            if (key == name(i)) {
                vals[i] = v;
                matched = true;
                break;
            }
        }
        if (!matched)
            return false;
        ++seen;
    }
    return p.lit('}') && seen == n;
}

/**
 * Parse one "{structName: {field: count, ...}, ...}" telemetry
 * object: every OccStruct label exactly once, each value a flat
 * keyed record of @p n_fields slots handed to @p apply.
 */
template <typename NameFn, typename ApplyFn>
bool
parseOccupancyKeyed(JsonCursor &p, unsigned n_fields, NameFn name,
                    ApplyFn apply)
{
    if (!p.lit('{'))
        return false;
    bool got[kNumOccStructs] = {};
    bool first = true;
    while (!p.peek('}')) {
        if (!first && !p.lit(','))
            return false;
        first = false;
        std::string key;
        if (!p.str(key) || !p.lit(':'))
            return false;
        size_t idx = kNumOccStructs;
        for (size_t i = 0; i < kNumOccStructs; ++i) {
            if (key == occStructName(static_cast<OccStruct>(i))) {
                idx = i;
                break;
            }
        }
        if (idx == kNumOccStructs || got[idx])
            return false;
        got[idx] = true;
        std::array<uint64_t, kDistFields + kTsFields> vals{};
        if (!parseKeyedU64(p, vals.data(), n_fields, name))
            return false;
        apply(idx, vals.data());
    }
    if (!p.lit('}'))
        return false;
    for (size_t i = 0; i < kNumOccStructs; ++i)
        if (!got[i])
            return false;
    return true;
}

} // namespace

bool
SimResult::fromJson(const std::string &json, SimResult &out)
{
    SimResult r;
    JsonCursor p(json);
    if (!p.lit('{'))
        return false;

    // Every stored (non-derived) field must appear exactly once;
    // kRequired is the count of ++required sites below.
    constexpr unsigned kRequired = 31;
    unsigned required = 0;
    bool sawVersion = false;
    bool first = true;

    auto field = [&](uint64_t &dst, JsonCursor &c) {
        uint64_t v = 0;
        if (!c.u64(v))
            return false;
        dst = v;
        ++required;
        return true;
    };

    while (!p.peek('}')) {
        if (!first && !p.lit(','))
            return false;
        first = false;
        std::string key;
        if (!p.str(key) || !p.lit(':'))
            return false;
        bool ok = true;
        if (key == "resultSchemaVersion") {
            uint64_t v = 0;
            ok = p.u64(v) && v == kResultSchemaVersion;
            sawVersion = ok;
        } else if (key == "program") {
            ok = p.str(r.program);
            ++required;
        } else if (key == "machine") {
            ok = p.str(r.machine);
            ++required;
        } else if (key == "cycles") {
            ok = field(r.cycles, p);
        } else if (key == "instructions") {
            ok = field(r.instructions, p);
        } else if (key == "stateCycles") {
            ok = parseKeyedU64(p, r.stateCycles.data(),
                               UnitStateBreakdown::kNumStates,
                               [](unsigned i) {
                                   return UnitStateBreakdown::
                                       stateName(static_cast<int>(i));
                               });
            ++required;
        } else if (key == "fu1BusyCycles") {
            ok = field(r.fu1BusyCycles, p);
        } else if (key == "fu2BusyCycles") {
            ok = field(r.fu2BusyCycles, p);
        } else if (key == "memBusyCycles") {
            ok = field(r.memBusyCycles, p);
        } else if (key == "memRequests") {
            ok = field(r.memRequests, p);
        } else if (key == "memBankConflicts") {
            ok = field(r.memBankConflicts, p);
        } else if (key == "memConflictCycles") {
            ok = field(r.memConflictCycles, p);
        } else if (key == "memIndexedConflicts") {
            ok = field(r.memIndexedConflicts, p);
        } else if (key == "memIndexedConflictCycles") {
            ok = field(r.memIndexedConflictCycles, p);
        } else if (key == "cacheHits") {
            ok = field(r.cacheHits, p);
        } else if (key == "cacheMisses") {
            ok = field(r.cacheMisses, p);
        } else if (key == "mshrStallCycles") {
            ok = field(r.mshrStallCycles, p);
        } else if (key == "tlbHits") {
            ok = field(r.tlbHits, p);
        } else if (key == "tlbMisses") {
            ok = field(r.tlbMisses, p);
        } else if (key == "tlbIndexedMisses") {
            ok = field(r.tlbIndexedMisses, p);
        } else if (key == "tlbMissCycles") {
            ok = field(r.tlbMissCycles, p);
        } else if (key == "vectorLoadsEliminated") {
            ok = field(r.vectorLoadsEliminated, p);
        } else if (key == "scalarLoadsEliminated") {
            ok = field(r.scalarLoadsEliminated, p);
        } else if (key == "branchMispredicts") {
            ok = field(r.branchMispredicts, p);
        } else if (key == "renameStallCycles") {
            ok = field(r.renameStallCycles, p);
        } else if (key == "robStallCycles") {
            ok = field(r.robStallCycles, p);
        } else if (key == "queueStallCycles") {
            ok = field(r.queueStallCycles, p);
        } else if (key == "traps") {
            ok = field(r.traps, p);
        } else if (key == "stallCycles") {
            ok = parseKeyedU64(p, r.stallCycles.data(),
                               kNumStallCauses, [](unsigned i) {
                                   return stallCauseName(
                                       static_cast<StallCause>(i));
                               });
            ++required;
        } else if (key == "cpiCycles") {
            ok = parseKeyedU64(p, r.cpiCycles.data(), kNumCpiBuckets,
                               [](unsigned i) {
                                   return cpiBucketName(
                                       static_cast<CpiBucket>(i));
                               });
            ++required;
        } else if (key == "occupancy") {
            ok = parseOccupancyKeyed(
                p, kDistFields, distFieldName,
                [&r](size_t i, const uint64_t *vals) {
                    distFromVals(r.occupancy[i], vals);
                });
            ++required;
        } else if (key == "occupancyTs") {
            ok = parseOccupancyKeyed(
                p, kTsFields, tsFieldName,
                [&r](size_t i, const uint64_t *vals) {
                    tsFromVals(r.occupancyTs[i], vals);
                });
            ++required;
        } else if (key == "portIdleFraction" || key == "ipc") {
            // Derived; validated, then recomputed from the fields.
            ok = p.skipNumber();
        } else if (key == "memStridedConflicts" ||
                   key == "stridedTlbMisses") {
            ok = p.skipNumber();
        } else {
            // Unknown key: a record from a different (future)
            // schema, or corruption. Either way: not this version.
            return false;
        }
        if (!ok)
            return false;
    }
    if (!p.lit('}') || !p.atEnd())
        return false;
    if (!sawVersion || required != kRequired)
        return false;
    out = std::move(r);
    return true;
}

} // namespace oova
