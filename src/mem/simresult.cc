#include "mem/simresult.hh"

namespace oova
{

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
    case StallCause::None:
        return "none";
    case StallCause::ScalarDep:
        return "scalar-dep";
    case StallCause::VectorDep:
        return "vector-dep";
    case StallCause::WarWaw:
        return "war/waw";
    case StallCause::FuBusy:
        return "fu-busy";
    case StallCause::MemUnit:
        return "mem-unit";
    case StallCause::Ports:
        return "ports";
    case StallCause::Branch:
        return "branch";
    default:
        return "?";
    }
}

} // namespace oova
