#include "mem/simresult.hh"

#include <sstream>

#include "common/logging.hh"

namespace oova
{

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
    case StallCause::None:
        return "none";
    case StallCause::ScalarDep:
        return "scalar-dep";
    case StallCause::VectorDep:
        return "vector-dep";
    case StallCause::WarWaw:
        return "war/waw";
    case StallCause::FuBusy:
        return "fu-busy";
    case StallCause::MemUnit:
        return "mem-unit";
    case StallCause::Ports:
        return "ports";
    case StallCause::Branch:
        return "branch";
    default:
        return "?";
    }
}

const char *
cpiBucketName(CpiBucket bucket)
{
    switch (bucket) {
    case CpiBucket::Commit:
        return "commit";
    case CpiBucket::Fetch:
        return "fetch";
    case CpiBucket::Rename:
        return "rename";
    case CpiBucket::QueueFull:
        return "queue-full";
    case CpiBucket::OperandWait:
        return "operand-wait";
    case CpiBucket::FuBusy:
        return "fu-busy";
    case CpiBucket::Memory:
        return "memory";
    case CpiBucket::TlbTrap:
        return "tlb-trap";
    case CpiBucket::Drain:
        return "drain";
    default:
        return "?";
    }
}

namespace
{

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += csprintf("\\u%04x", c);
        else
            out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
simResultJson(const SimResult &res)
{
    std::ostringstream os;
    auto u64 = [&](const char *name, uint64_t v) {
        os << "  \"" << name << "\": " << v << ",\n";
    };
    os << "{\n";
    os << "  \"program\": " << jsonString(res.program) << ",\n";
    os << "  \"machine\": " << jsonString(res.machine) << ",\n";
    u64("cycles", res.cycles);
    u64("instructions", res.instructions);
    os << "  \"stateCycles\": {";
    for (int s = 0; s < UnitStateBreakdown::kNumStates; ++s) {
        if (s)
            os << ", ";
        os << jsonString(UnitStateBreakdown::stateName(s)) << ": "
           << res.stateCycles[static_cast<size_t>(s)];
    }
    os << "},\n";
    u64("fu1BusyCycles", res.fu1BusyCycles);
    u64("fu2BusyCycles", res.fu2BusyCycles);
    u64("memBusyCycles", res.memBusyCycles);
    u64("memRequests", res.memRequests);
    u64("memBankConflicts", res.memBankConflicts);
    u64("memConflictCycles", res.memConflictCycles);
    u64("memIndexedConflicts", res.memIndexedConflicts);
    u64("memIndexedConflictCycles", res.memIndexedConflictCycles);
    u64("cacheHits", res.cacheHits);
    u64("cacheMisses", res.cacheMisses);
    u64("mshrStallCycles", res.mshrStallCycles);
    u64("tlbHits", res.tlbHits);
    u64("tlbMisses", res.tlbMisses);
    u64("tlbIndexedMisses", res.tlbIndexedMisses);
    u64("tlbMissCycles", res.tlbMissCycles);
    u64("vectorLoadsEliminated", res.vectorLoadsEliminated);
    u64("scalarLoadsEliminated", res.scalarLoadsEliminated);
    u64("branchMispredicts", res.branchMispredicts);
    u64("renameStallCycles", res.renameStallCycles);
    u64("robStallCycles", res.robStallCycles);
    u64("queueStallCycles", res.queueStallCycles);
    u64("traps", res.traps);
    os << "  \"stallCycles\": {";
    for (unsigned c = 0; c < kNumStallCauses; ++c) {
        if (c)
            os << ", ";
        os << jsonString(stallCauseName(static_cast<StallCause>(c)))
           << ": " << res.stallCycles[c];
    }
    os << "},\n";
    os << "  \"cpiCycles\": {";
    for (unsigned b = 0; b < kNumCpiBuckets; ++b) {
        if (b)
            os << ", ";
        os << jsonString(cpiBucketName(static_cast<CpiBucket>(b)))
           << ": " << res.cpiCycles[b];
    }
    os << "},\n";
    // Derived accessors, so consumers need not re-implement them.
    os << csprintf("  \"portIdleFraction\": %.6f,\n",
                   res.portIdleFraction());
    u64("memStridedConflicts", res.memStridedConflicts());
    u64("stridedTlbMisses", res.stridedTlbMisses());
    os << csprintf("  \"ipc\": %.6f\n", res.ipc());
    os << "}\n";
    return os.str();
}

} // namespace oova
