/**
 * @file
 * The pluggable memory hierarchy.
 *
 * The paper's memory system (section 2.2) is the simplest possible:
 * one contended address bus and a fixed main-memory latency. That
 * model is preserved here as FlatBus, the default, and every paper
 * figure is byte-identical under it. Two richer models slot in
 * behind the same interface:
 *
 *  - BankedMemory: N interleaved banks with a per-bank busy time and
 *    a configurable number of address ports, so strided vector
 *    streams suffer realistic bank conflicts (stride vs. bank-count
 *    interactions, as in multi-banked vector machines such as Ara
 *    and the RISC-V vector evaluations of Ramirez et al.).
 *  - CachedMemory: a simple non-blocking cache front (configurable
 *    size / line / associativity, MSHR-limited outstanding misses)
 *    over either backing model.
 *
 * The interface is stream-oriented, matching how both simulators
 * talk to memory: a memory instruction reserves a stream of element
 * accesses (base address + stride, or an explicit per-element
 * address vector for gather/scatter) and gets back the address-phase
 * occupancy window plus the data arrival window, from which the
 * simulators derive chaining and completion times. The memory
 * latency lives inside the model (FlatBus adds the fixed latency;
 * CachedMemory shortens it on hits).
 *
 * Every model supports N load/store units (MemConfig::memUnits):
 * streams assigned to different units overlap their address phases,
 * contending only for shared structures (banks, the cache front and
 * MSHRs), which is what lets independent streams on disjoint banks
 * proceed in parallel. A Split policy dedicates units to loads and
 * stores respectively, as in decoupled vector load/store pipelines.
 */

#ifndef OOVA_MEM_MEMSYSTEM_HH
#define OOVA_MEM_MEMSYSTEM_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/tlb.hh"

namespace oova
{

/** Which concrete memory model to instantiate. */
enum class MemModel : uint8_t
{
    FlatBus, ///< the paper's single address bus + fixed latency
    Banked,  ///< interleaved banks, address ports, bank busy time
    Cached,  ///< non-blocking cache front over a backing model
};

/**
 * Whether a reserved stream reads or writes memory. Only unit
 * assignment cares (a Split configuration dedicates units per
 * direction); timing within a unit is direction-agnostic, as in the
 * paper's shared address bus.
 */
enum class MemOp : uint8_t
{
    Load,
    Store,
};

/** How streams are assigned when there is more than one memory unit. */
enum class LsPolicy : uint8_t
{
    /** Any unit may serve any stream (earliest-free wins). */
    Shared,
    /**
     * Dedicated load and store units: the first ceil(N/2) units
     * serve loads, the rest serve stores (Saturn-style split vector
     * load/store scheduling). Ignored with a single unit.
     */
    Split,
};

/** Memory-hierarchy configuration, embedded in both machine configs. */
struct MemConfig
{
    MemModel model = MemModel::FlatBus;

    // ---- memory-unit knobs (all models) ----
    /**
     * Number of independent load/store units. Each unit serializes
     * the address phases of the streams assigned to it; different
     * units overlap, contending only for shared structures (banks,
     * cache front, MSHRs). The default single unit reproduces the
     * paper's one-memory-unit machine exactly.
     */
    unsigned memUnits = 1;
    /** Stream-to-unit assignment when memUnits > 1. */
    LsPolicy lsPolicy = LsPolicy::Shared;

    // ---- BankedMemory knobs ----
    /** Number of interleaved banks (power of two recommended). */
    unsigned banks = 8;
    /** Addresses the memory unit can drive per cycle. */
    unsigned addressPorts = 1;
    /** Cycles a bank stays busy after accepting one access. */
    unsigned bankBusyCycles = 4;
    /** Interleave granularity in bytes (one element by default). */
    unsigned interleaveBytes = 8;

    // ---- CachedMemory knobs ----
    /** Backing model behind the cache (FlatBus or Banked). */
    MemModel backing = MemModel::FlatBus;
    unsigned cacheBytes = 32 * 1024;
    unsigned lineBytes = 64;
    unsigned associativity = 4;
    /** Outstanding-miss registers; misses stall when all are busy. */
    unsigned mshrs = 8;
    /** Data latency of a cache hit. */
    unsigned cacheHitLatency = 2;

    // ---- translation knobs (all models) ----
    /**
     * The TLB in front of the model (see mem/tlb.hh). Disabled by
     * default: translation is free, labels and timings untouched.
     */
    TlbConfig tlb;

    /**
     * Config suffix appended to machine names, e.g. "/mb8p1",
     * "/mb8p1x2" (two shared units), "/mb8p1x2s" (split load/store
     * units), "/c32k4w8m" or "/t64e4k" (TLB in front of the default
     * flat bus). Empty for the default single-unit FlatBus so the
     * seed machine labels (and every paper table) are unchanged.
     */
    std::string label() const;
};

/**
 * [lo, hi) of the unit indices eligible for @p op under @p cfg: all
 * units under Shared, the first ceil(N/2) for loads / the rest for
 * stores under Split. The single definition of the assignment
 * policy, shared by the models' internal arbitration and the REF
 * front end's unit-availability modeling.
 */
std::pair<unsigned, unsigned> memUnitRange(const MemConfig &cfg,
                                           MemOp op);

/** Convenience builder for a banked configuration. */
MemConfig makeBankedMem(unsigned banks, unsigned address_ports = 1,
                        unsigned bank_busy_cycles = 4);

/** Banked configuration with @p units load/store units. */
MemConfig makeMultiUnitMem(unsigned banks, unsigned units,
                           LsPolicy policy = LsPolicy::Shared,
                           unsigned address_ports = 1,
                           unsigned bank_busy_cycles = 4);

/** Convenience builder for a cached configuration. */
MemConfig makeCachedMem(unsigned cache_bytes = 32 * 1024,
                        unsigned mshrs = 8,
                        MemModel backing = MemModel::FlatBus);

/**
 * Timing of one reserved element stream. All windows are half-open.
 * For the flat bus: start = bus grant, end = start + elems,
 * firstData = start + latency, lastData = end + latency.
 */
struct MemAccess
{
    /** Cycle the first address is driven. */
    Cycle start = 0;
    /** Cycle past the last address slot (address-phase end). */
    Cycle end = 0;
    /** Cycle the first element's data is available. */
    Cycle firstData = 0;
    /** Cycle past the last element's data. */
    Cycle lastData = 0;
};

/** Occupancy and conflict counters, all zero on the flat bus. */
struct MemStats
{
    /**
     * Element requests driven on the memory bus (the "requests" of
     * figure 13). Under CachedMemory this is the backing model's
     * line-fill traffic — the quantity a cache exists to shrink —
     * while the CPU-side access count is cacheHits + cacheMisses.
     */
    uint64_t requests = 0;
    /** Element issues that found their bank busy (all streams). */
    uint64_t bankConflicts = 0;
    /** Cycles those elements waited beyond port availability. */
    uint64_t conflictCycles = 0;
    /**
     * The subset of bankConflicts/conflictCycles charged to
     * index-vector (gather/scatter) streams; the strided remainder
     * is exposed by stridedConflicts()/stridedConflictCycles().
     */
    uint64_t indexedConflicts = 0;
    uint64_t indexedConflictCycles = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    /** Cycles misses waited for a free MSHR. */
    uint64_t mshrStallCycles = 0;
    /** TLB lookups that found their translation resident. */
    uint64_t tlbHits = 0;
    /**
     * TLB lookups that required a refill; the subset charged to
     * gather/scatter per-element translation is tlbIndexedMisses
     * (the strided remainder is stridedTlbMisses()).
     */
    uint64_t tlbMisses = 0;
    uint64_t tlbIndexedMisses = 0;
    /** Stall cycles hardware page walks added to stream setup. */
    uint64_t tlbMissCycles = 0;

    /** TLB refills charged to strided (non-indexed) streams. */
    uint64_t
    stridedTlbMisses() const
    {
        return tlbMisses - tlbIndexedMisses;
    }

    /** Conflicts charged to strided (non-indexed) streams. */
    uint64_t
    stridedConflicts() const
    {
        return bankConflicts - indexedConflicts;
    }

    uint64_t
    stridedConflictCycles() const
    {
        return conflictCycles - indexedConflictCycles;
    }
};

/**
 * Abstract memory system. One instance per simulated machine; not
 * thread-safe (each sweep job owns its own machine).
 *
 * Streams are reserved in issue order; each is assigned to one of
 * the configured memory units (MemConfig::memUnits / lsPolicy) and
 * serializes against the other streams of that unit only, so
 * independent streams on different units overlap their address
 * phases, contending only for shared structures (banks, the cache
 * front). Within a stream, the banked model may drive several
 * addresses per cycle (addressPorts, a per-unit resource) or dilate
 * the phase on bank conflicts.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /**
     * Reserve a stream of @p elems element accesses starting at
     * @p addr with byte stride @p stride_bytes, no earlier than
     * @p earliest. Zero-element reservations are a no-op returning
     * an empty window at @p earliest.
     */
    virtual MemAccess reserve(Cycle earliest, Addr addr,
                              int64_t stride_bytes, unsigned elems,
                              MemOp op = MemOp::Load) = 0;

    /**
     * Index-vector overload: reserve one element access per entry
     * of @p elem_addrs — a gather/scatter whose real per-element
     * addresses are known, so bank mapping and conflicts follow the
     * actual index pattern instead of a contiguous walk. Conflicts
     * are counted in the indexed counters of MemStats.
     */
    virtual MemAccess reserve(Cycle earliest,
                              const std::vector<Addr> &elem_addrs,
                              MemOp op = MemOp::Load) = 0;

    /** First cycle any unit could begin a new stream. */
    virtual Cycle freeAt() const = 0;

    /**
     * First cycle a unit eligible for @p op could begin a new
     * stream (== freeAt() unless the policy splits load/store).
     */
    virtual Cycle freeAt(MemOp op) const = 0;

    /** Occupancy and conflict counters. */
    virtual const MemStats &stats() const { return stats_; }

    /** Address-phase busy intervals (the MEM state component). */
    virtual const IntervalRecorder &busy() const { return busy_; }

    /**
     * Miss-status registers still tracking an outstanding line fill
     * at @p now. Zero for models without a cache; the occupancy
     * telemetry layer samples this at event-calendar advances.
     */
    virtual unsigned
    inFlightMshrs(Cycle now) const
    {
        (void)now;
        return 0;
    }

    /**
     * The TLB in front of this model, or nullptr when translation is
     * disabled. The OOOVA uses it to route software-refilled misses
     * through its precise-trap path.
     */
    virtual Tlb *tlb() { return nullptr; }

  protected:
    MemStats stats_;
    IntervalRecorder busy_;
};

/**
 * Instantiate the model selected by @p cfg. @p mem_latency is the
 * main-memory latency in cycles (from the machine's LatencyTable, so
 * the existing latency sweeps apply to every model).
 */
std::unique_ptr<MemorySystem> makeMemorySystem(const MemConfig &cfg,
                                               unsigned mem_latency);

} // namespace oova

#endif // OOVA_MEM_MEMSYSTEM_HH
