#include "mem/memsystem.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "mem/membus.hh"

namespace oova
{

namespace
{

/** Machine word size; the interleave/line unit of every model. */
constexpr unsigned kWordBytes = 8;

/**
 * Coalesces consecutive per-element busy cycles into runs before
 * recording them, so a stream adds O(conflict sites) intervals
 * instead of O(elements). Shared by the banked and cached models;
 * flushes the open run on destruction.
 */
class BusyRunMerger
{
  public:
    explicit BusyRunMerger(IntervalRecorder &rec) : rec_(rec) {}

    /** Record cycle @p t busy; cycles arrive nondecreasing. */
    void
    add(Cycle t)
    {
        if (runStart_ == kNoCycle) {
            runStart_ = t;
            runEnd_ = t + 1;
        } else if (t == runEnd_) {
            ++runEnd_;
        } else if (t > runEnd_) {
            rec_.add(runStart_, runEnd_);
            runStart_ = t;
            runEnd_ = t + 1;
        }
        // t within the open run (multi-port same-cycle issue): no-op.
    }

    ~BusyRunMerger()
    {
        if (runStart_ != kNoCycle)
            rec_.add(runStart_, runEnd_);
    }

  private:
    IntervalRecorder &rec_;
    Cycle runStart_ = kNoCycle, runEnd_ = 0;
};

/**
 * The paper's model: an exclusive serializing address bus driving
 * one address per cycle, plus a fixed latency to data. Grant timing
 * delegates to the seed AddressBus, so equivalence with it holds by
 * construction: a stream of n elements granted at cycle s occupies
 * [s, s+n) and element i's data arrives at s + i + latency.
 */
class FlatBus : public MemorySystem
{
  public:
    explicit FlatBus(unsigned latency) : latency_(latency) {}

    MemAccess
    reserve(Cycle earliest, Addr, int64_t, unsigned elems) override
    {
        MemAccess acc;
        if (elems == 0) {
            acc.start = acc.end = earliest;
            acc.firstData = acc.lastData = earliest + latency_;
            return acc;
        }
        acc.start = bus_.reserve(earliest, elems);
        acc.end = acc.start + elems;
        acc.firstData = acc.start + latency_;
        acc.lastData = acc.end + latency_;
        stats_.requests = bus_.requests();
        return acc;
    }

    Cycle freeAt() const override { return bus_.freeAt(); }

    /** The bus already records its occupancy; don't store it twice. */
    const IntervalRecorder &busy() const override { return bus_.busy(); }

  private:
    unsigned latency_;
    AddressBus bus_;
};

/**
 * Interleaved banks behind a small set of address ports. Addresses
 * of one stream are generated in order; each element takes the first
 * cycle with both a free port slot and a free bank, and then holds
 * its bank for bankBusyCycles. Streams themselves are serialized by
 * the single memory unit, as on the flat bus.
 */
class BankedMemory : public MemorySystem
{
  public:
    BankedMemory(const MemConfig &cfg, unsigned latency)
        : latency_(latency), banks_(cfg.banks),
          ports_(cfg.addressPorts), bankBusy_(cfg.bankBusyCycles),
          interleave_(std::max(cfg.interleaveBytes, 1u)),
          bankFreeAt_(cfg.banks, 0)
    {
    }

    MemAccess
    reserve(Cycle earliest, Addr addr, int64_t stride,
            unsigned elems) override
    {
        MemAccess acc;
        if (elems == 0) {
            acc.start = acc.end = earliest;
            acc.firstData = acc.lastData = earliest + latency_;
            return acc;
        }
        Cycle cur = std::max(earliest, unitFreeAt_);
        Cycle last = cur;
        BusyRunMerger busy(busy_);
        for (unsigned i = 0; i < elems; ++i) {
            Addr a = addr + static_cast<int64_t>(i) * stride;
            unsigned bank =
                static_cast<unsigned>((a / interleave_) % banks_);
            Cycle t = portSlot(cur);
            if (bankFreeAt_[bank] > t) {
                Cycle delayed = portSlot(bankFreeAt_[bank]);
                ++stats_.bankConflicts;
                stats_.conflictCycles += delayed - t;
                t = delayed;
            }
            takePort(t);
            bankFreeAt_[bank] = t + bankBusy_;
            busy.add(t);
            if (i == 0)
                acc.start = t;
            last = t;
            cur = t;
        }
        stats_.requests += elems;
        acc.end = last + 1;
        acc.firstData = acc.start + latency_;
        acc.lastData = last + 1 + latency_;
        unitFreeAt_ = acc.end;
        return acc;
    }

    Cycle freeAt() const override { return unitFreeAt_; }

  private:
    /** First cycle >= @p c with a free address-port slot. */
    Cycle
    portSlot(Cycle c) const
    {
        if (c < portCycle_)
            c = portCycle_;
        if (c == portCycle_ && portsUsed_ >= ports_)
            return portCycle_ + 1;
        return c;
    }

    void
    takePort(Cycle t)
    {
        if (t > portCycle_) {
            portCycle_ = t;
            portsUsed_ = 1;
        } else {
            ++portsUsed_;
        }
    }

    unsigned latency_;
    unsigned banks_;
    unsigned ports_;
    unsigned bankBusy_;
    unsigned interleave_;
    std::vector<Cycle> bankFreeAt_;
    Cycle unitFreeAt_ = 0;
    Cycle portCycle_ = 0;
    unsigned portsUsed_ = 0;
};

/**
 * A non-blocking set-associative cache in front of a backing model.
 * The front drives one element address per cycle. Hits return data
 * after cacheHitLatency (or when their line's outstanding fill
 * lands). A miss claims an MSHR — stalling the address stream when
 * none is free — and fetches the whole line from the backing model;
 * later accesses to that line merge with the in-flight fill. Loads
 * and stores are treated uniformly (allocate-on-miss), which keeps
 * the model simple and symmetric with the other two.
 */
class CachedMemory : public MemorySystem
{
  public:
    CachedMemory(const MemConfig &cfg, unsigned latency)
        : hitLat_(cfg.cacheHitLatency),
          lineBytes_(std::max(cfg.lineBytes, kWordBytes)),
          assoc_(std::max(cfg.associativity, 1u)),
          lineElems_(std::max(cfg.lineBytes / kWordBytes, 1u))
    {
        sets_ = std::max(cfg.cacheBytes / (lineBytes_ * assoc_), 1u);
        ways_.assign(static_cast<size_t>(sets_) * assoc_, Way{});
        mshrFreeAt_.assign(std::max(cfg.mshrs, 1u), 0);
        MemConfig back = cfg;
        back.model = cfg.backing == MemModel::Banked
                         ? MemModel::Banked
                         : MemModel::FlatBus;
        backing_ = makeMemorySystem(back, latency);
    }

    MemAccess
    reserve(Cycle earliest, Addr addr, int64_t stride,
            unsigned elems) override
    {
        MemAccess acc;
        if (elems == 0) {
            acc.start = acc.end = earliest;
            acc.firstData = acc.lastData = earliest + hitLat_;
            return acc;
        }
        Cycle cur = std::max(earliest, unitFreeAt_);
        Cycle last = cur;
        Cycle maxDataAt = 0;
        BusyRunMerger busy(busy_);
        for (unsigned i = 0; i < elems; ++i) {
            Addr a = addr + static_cast<int64_t>(i) * stride;
            Addr line = a / lineBytes_;
            Cycle t = cur;
            Cycle dataAt;
            if (Way *w = lookup(line)) {
                ++stats_.cacheHits;
                dataAt = std::max(t + hitLat_, w->fillDone);
                w->lastUse = t;
            } else {
                ++stats_.cacheMisses;
                auto m = std::min_element(mshrFreeAt_.begin(),
                                          mshrFreeAt_.end());
                if (*m > t) {
                    stats_.mshrStallCycles += *m - t;
                    t = *m;
                }
                MemAccess fill = backing_->reserve(
                    t, line * lineBytes_, kWordBytes, lineElems_);
                // fill.lastData is one past the last element's
                // arrival; the line is usable on the arrival cycle
                // itself (dataAt is a closed arrival time, like the
                // hit path's t + hitLat_).
                dataAt = fill.lastData - 1;
                *m = fill.lastData;
                Way &v = victim(line, t);
                v.line = line;
                v.valid = true;
                v.lastUse = t;
                v.fillDone = dataAt;
            }
            busy.add(t);
            if (i == 0) {
                acc.start = t;
                acc.firstData = dataAt;
            }
            maxDataAt = std::max(maxDataAt, dataAt);
            last = t;
            cur = t + 1;
        }
        // "requests" means bus traffic (the figure-13 metric): a
        // cache's job is to shrink it, so report the backing model's
        // line-fill elements, not the CPU-side element count (which
        // is cacheHits + cacheMisses).
        stats_.requests = backing_->stats().requests;
        stats_.bankConflicts = backing_->stats().bankConflicts;
        stats_.conflictCycles = backing_->stats().conflictCycles;
        acc.end = last + 1;
        acc.lastData = maxDataAt + 1;
        unitFreeAt_ = acc.end;
        return acc;
    }

    Cycle freeAt() const override { return unitFreeAt_; }

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        Cycle lastUse = 0;
        Cycle fillDone = 0;
    };

    Way *
    lookup(Addr line)
    {
        Way *set = &ways_[(line % sets_) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w)
            if (set[w].valid && set[w].line == line)
                return &set[w];
        return nullptr;
    }

    /** LRU victim in @p line's set (invalid ways first). */
    Way &
    victim(Addr line, Cycle)
    {
        Way *set = &ways_[(line % sets_) * assoc_];
        Way *best = &set[0];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!set[w].valid)
                return set[w];
            if (set[w].lastUse < best->lastUse)
                best = &set[w];
        }
        return *best;
    }

    unsigned hitLat_;
    unsigned lineBytes_;
    unsigned assoc_;
    unsigned lineElems_;
    unsigned sets_;
    std::vector<Way> ways_;
    std::vector<Cycle> mshrFreeAt_;
    std::unique_ptr<MemorySystem> backing_;
    Cycle unitFreeAt_ = 0;
};

} // namespace

std::string
MemConfig::label() const
{
    switch (model) {
      case MemModel::FlatBus:
        return "";
      case MemModel::Banked:
        return csprintf("/mb%up%u", banks, addressPorts);
      case MemModel::Cached: {
        std::string l = csprintf("/c%uk%uw%um", cacheBytes / 1024,
                                 associativity, mshrs);
        if (backing == MemModel::Banked)
            l += csprintf("b%u", banks);
        return l;
      }
    }
    return "";
}

MemConfig
makeBankedMem(unsigned banks, unsigned address_ports,
              unsigned bank_busy_cycles)
{
    MemConfig cfg;
    cfg.model = MemModel::Banked;
    cfg.banks = banks;
    cfg.addressPorts = address_ports;
    cfg.bankBusyCycles = bank_busy_cycles;
    return cfg;
}

MemConfig
makeCachedMem(unsigned cache_bytes, unsigned mshrs, MemModel backing)
{
    MemConfig cfg;
    cfg.model = MemModel::Cached;
    cfg.cacheBytes = cache_bytes;
    cfg.mshrs = mshrs;
    cfg.backing = backing;
    return cfg;
}

std::unique_ptr<MemorySystem>
makeMemorySystem(const MemConfig &cfg, unsigned mem_latency)
{
    switch (cfg.model) {
      case MemModel::FlatBus:
        return std::make_unique<FlatBus>(mem_latency);
      case MemModel::Banked:
        if (cfg.banks == 0 || cfg.addressPorts == 0)
            fatal("banked memory needs >= 1 bank and >= 1 port");
        return std::make_unique<BankedMemory>(cfg, mem_latency);
      case MemModel::Cached:
        if (cfg.backing == MemModel::Cached)
            fatal("cache backing must be FlatBus or Banked");
        return std::make_unique<CachedMemory>(cfg, mem_latency);
    }
    panic("unknown memory model %d", static_cast<int>(cfg.model));
}

} // namespace oova
