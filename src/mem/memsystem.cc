#include "mem/memsystem.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "mem/membus.hh"

namespace oova
{

namespace
{

/** Machine word size; the interleave/line unit of every model. */
constexpr unsigned kWordBytes = 8;

/**
 * Per-unit stream assignment shared by the concrete models: tracks
 * when each memory unit's address phase frees up and picks the
 * earliest-free unit among those eligible for a stream's direction
 * (all units under Shared; a dedicated subset under Split).
 */
class UnitPool
{
  public:
    explicit UnitPool(const MemConfig &cfg)
        : freeAt_(std::max(cfg.memUnits, 1u), 0),
          loadRange_(memUnitRange(cfg, MemOp::Load)),
          storeRange_(memUnitRange(cfg, MemOp::Store))
    {
    }

    /** [lo, hi) of unit indices eligible for @p op. */
    std::pair<unsigned, unsigned>
    range(MemOp op) const
    {
        return op == MemOp::Load ? loadRange_ : storeRange_;
    }

    /** Earliest-free eligible unit (lowest index wins ties). */
    unsigned
    pick(MemOp op) const
    {
        auto [lo, hi] = range(op);
        unsigned best = lo;
        for (unsigned u = lo + 1; u < hi; ++u)
            if (freeAt_[u] < freeAt_[best])
                best = u;
        return best;
    }

    Cycle
    freeAt(MemOp op) const
    {
        return freeAt_[pick(op)];
    }

    Cycle
    freeAt() const
    {
        return *std::min_element(freeAt_.begin(), freeAt_.end());
    }

    Cycle &operator[](unsigned u) { return freeAt_[u]; }

    unsigned count() const
    {
        return static_cast<unsigned>(freeAt_.size());
    }

  private:
    std::vector<Cycle> freeAt_;
    std::pair<unsigned, unsigned> loadRange_;
    std::pair<unsigned, unsigned> storeRange_;
};

/**
 * Coalesces consecutive per-element busy cycles into runs before
 * recording them, so a stream adds O(conflict sites) intervals
 * instead of O(elements). Shared by the banked and cached models;
 * flushes the open run on destruction.
 */
class BusyRunMerger
{
  public:
    explicit BusyRunMerger(IntervalRecorder &rec) : rec_(rec) {}

    /** Record cycle @p t busy; cycles arrive nondecreasing. */
    void
    add(Cycle t)
    {
        if (runStart_ == kNoCycle) {
            runStart_ = t;
            runEnd_ = t + 1;
        } else if (t == runEnd_) {
            ++runEnd_;
        } else if (t > runEnd_) {
            rec_.add(runStart_, runEnd_);
            runStart_ = t;
            runEnd_ = t + 1;
        }
        // t within the open run (multi-port same-cycle issue): no-op.
    }

    ~BusyRunMerger()
    {
        if (runStart_ != kNoCycle)
            rec_.add(runStart_, runEnd_);
    }

  private:
    IntervalRecorder &rec_;
    Cycle runStart_ = kNoCycle, runEnd_ = 0;
};

/**
 * The paper's model: exclusive serializing address buses driving one
 * address per cycle, plus a fixed latency to data. Addresses never
 * matter (there are no banks), so indexed streams time exactly like
 * strided ones. With the default single unit, grant timing delegates
 * to the seed AddressBus, so equivalence with it holds by
 * construction: a stream of n elements granted at cycle s occupies
 * [s, s+n) and element i's data arrives at s + i + latency. With
 * multiple units, each unit is one such bus and a stream takes the
 * earliest-free eligible bus.
 */
class FlatBus : public MemorySystem
{
  public:
    FlatBus(const MemConfig &cfg, unsigned latency)
        : latency_(latency), units_(cfg),
          buses_(units_.count())
    {
    }

    MemAccess
    reserve(Cycle earliest, Addr, int64_t, unsigned elems,
            MemOp op) override
    {
        MemAccess acc;
        if (elems == 0) {
            acc.start = acc.end = earliest;
            acc.firstData = acc.lastData = earliest + latency_;
            return acc;
        }
        unsigned u = units_.pick(op);
        acc.start = buses_[u].reserve(earliest, elems);
        acc.end = acc.start + elems;
        acc.firstData = acc.start + latency_;
        acc.lastData = acc.end + latency_;
        units_[u] = buses_[u].freeAt();
        if (buses_.size() == 1) {
            stats_.requests = buses_[0].requests();
        } else {
            stats_.requests = 0;
            for (const AddressBus &b : buses_)
                stats_.requests += b.requests();
            busy_.add(acc.start, acc.end);
        }
        return acc;
    }

    MemAccess
    reserve(Cycle earliest, const std::vector<Addr> &elem_addrs,
            MemOp op) override
    {
        // No banks: only the element count matters.
        return reserve(earliest, 0, 0,
                       static_cast<unsigned>(elem_addrs.size()), op);
    }

    Cycle freeAt() const override { return units_.freeAt(); }

    Cycle freeAt(MemOp op) const override { return units_.freeAt(op); }

    /**
     * A single bus already records its occupancy; don't store it
     * twice. Multiple buses merge into the base-class recorder.
     */
    const IntervalRecorder &
    busy() const override
    {
        return buses_.size() == 1 ? buses_[0].busy() : busy_;
    }

  private:
    unsigned latency_;
    UnitPool units_;
    std::vector<AddressBus> buses_;
};

/**
 * Interleaved banks behind per-unit sets of address ports. Addresses
 * of one stream are generated in order; each element takes the first
 * cycle with both a free port slot on its unit and a free bank, and
 * then holds its bank for bankBusyCycles. Streams on the same unit
 * serialize as on the flat bus; streams on different units overlap,
 * colliding only where they share banks.
 */
class BankedMemory : public MemorySystem
{
  public:
    BankedMemory(const MemConfig &cfg, unsigned latency)
        : latency_(latency), banks_(cfg.banks),
          ports_(cfg.addressPorts), bankBusy_(cfg.bankBusyCycles),
          interleave_(std::max(cfg.interleaveBytes, 1u)),
          bankFreeAt_(cfg.banks, 0), units_(cfg),
          unitPorts_(units_.count())
    {
    }

    MemAccess
    reserve(Cycle earliest, Addr addr, int64_t stride,
            unsigned elems, MemOp op) override
    {
        return stream(earliest, op, false, elems, [&](unsigned i) {
            return addr + static_cast<int64_t>(i) * stride;
        });
    }

    MemAccess
    reserve(Cycle earliest, const std::vector<Addr> &elem_addrs,
            MemOp op) override
    {
        return stream(earliest, op, true,
                      static_cast<unsigned>(elem_addrs.size()),
                      [&](unsigned i) { return elem_addrs[i]; });
    }

    Cycle freeAt() const override { return units_.freeAt(); }

    Cycle freeAt(MemOp op) const override { return units_.freeAt(op); }

  private:
    /** Address-port occupancy of one unit. */
    struct PortState
    {
        Cycle cycle = 0;
        unsigned used = 0;
    };

    template <typename AddrOf>
    MemAccess
    stream(Cycle earliest, MemOp op, bool indexed, unsigned elems,
           AddrOf addr_of)
    {
        MemAccess acc;
        if (elems == 0) {
            acc.start = acc.end = earliest;
            acc.firstData = acc.lastData = earliest + latency_;
            return acc;
        }
        unsigned u = units_.pick(op);
        PortState &ports = unitPorts_[u];
        Cycle cur = std::max(earliest, units_[u]);
        Cycle last = cur;
        BusyRunMerger busy(busy_);
        for (unsigned i = 0; i < elems; ++i) {
            Addr a = addr_of(i);
            unsigned bank =
                static_cast<unsigned>((a / interleave_) % banks_);
            Cycle t = portSlot(ports, cur);
            if (bankFreeAt_[bank] > t) {
                Cycle delayed = portSlot(ports, bankFreeAt_[bank]);
                ++stats_.bankConflicts;
                stats_.conflictCycles += delayed - t;
                if (indexed) {
                    ++stats_.indexedConflicts;
                    stats_.indexedConflictCycles += delayed - t;
                }
                t = delayed;
            }
            takePort(ports, t);
            bankFreeAt_[bank] = t + bankBusy_;
            busy.add(t);
            if (i == 0)
                acc.start = t;
            last = t;
            cur = t;
        }
        stats_.requests += elems;
        acc.end = last + 1;
        acc.firstData = acc.start + latency_;
        acc.lastData = last + 1 + latency_;
        units_[u] = acc.end;
        return acc;
    }

    /** First cycle >= @p c with a free address-port slot. */
    Cycle
    portSlot(const PortState &ports, Cycle c) const
    {
        if (c < ports.cycle)
            c = ports.cycle;
        if (c == ports.cycle && ports.used >= ports_)
            return ports.cycle + 1;
        return c;
    }

    void
    takePort(PortState &ports, Cycle t)
    {
        if (t > ports.cycle) {
            ports.cycle = t;
            ports.used = 1;
        } else {
            ++ports.used;
        }
    }

    unsigned latency_;
    unsigned banks_;
    unsigned ports_;
    unsigned bankBusy_;
    unsigned interleave_;
    std::vector<Cycle> bankFreeAt_;
    UnitPool units_;
    std::vector<PortState> unitPorts_;
};

/**
 * A non-blocking set-associative cache in front of a backing model.
 * Each unit's front drives one element address per cycle. Hits
 * return data after cacheHitLatency (or when their line's
 * outstanding fill lands). A miss claims an MSHR — stalling the
 * address stream when none is free — and fetches the whole line from
 * the backing model; later accesses to that line merge with the
 * in-flight fill. Loads and stores are treated uniformly
 * (allocate-on-miss), which keeps the model simple and symmetric
 * with the other two. Indexed streams probe the cache with their
 * real element addresses, so gather locality (or the lack of it) is
 * what decides their hit rate.
 */
class CachedMemory : public MemorySystem
{
  public:
    CachedMemory(const MemConfig &cfg, unsigned latency)
        : hitLat_(cfg.cacheHitLatency),
          lineBytes_(std::max(cfg.lineBytes, kWordBytes)),
          assoc_(std::max(cfg.associativity, 1u)),
          lineElems_(std::max(cfg.lineBytes / kWordBytes, 1u)),
          units_(cfg)
    {
        sets_ = std::max(cfg.cacheBytes / (lineBytes_ * assoc_), 1u);
        ways_.assign(static_cast<size_t>(sets_) * assoc_, Way{});
        mshrFreeAt_.assign(std::max(cfg.mshrs, 1u), 0);
        MemConfig back = cfg;
        back.model = cfg.backing == MemModel::Banked
                         ? MemModel::Banked
                         : MemModel::FlatBus;
        // The backing bus serves line fills from every front unit.
        back.memUnits = 1;
        back.lsPolicy = LsPolicy::Shared;
        // Line fills are physically addressed: translation happens
        // once, in front of the cache, never again behind it.
        back.tlb.enabled = false;
        backing_ = makeMemorySystem(back, latency);
    }

    MemAccess
    reserve(Cycle earliest, Addr addr, int64_t stride,
            unsigned elems, MemOp op) override
    {
        return stream(earliest, op, false, elems, [&](unsigned i) {
            return addr + static_cast<int64_t>(i) * stride;
        });
    }

    MemAccess
    reserve(Cycle earliest, const std::vector<Addr> &elem_addrs,
            MemOp op) override
    {
        return stream(earliest, op, true,
                      static_cast<unsigned>(elem_addrs.size()),
                      [&](unsigned i) { return elem_addrs[i]; });
    }

    Cycle freeAt() const override { return units_.freeAt(); }

    Cycle freeAt(MemOp op) const override { return units_.freeAt(op); }

    unsigned
    inFlightMshrs(Cycle now) const override
    {
        unsigned busy = 0;
        for (Cycle free_at : mshrFreeAt_)
            busy += free_at > now ? 1 : 0;
        return busy;
    }

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        Cycle lastUse = 0;
        Cycle fillDone = 0;
    };

    template <typename AddrOf>
    MemAccess
    stream(Cycle earliest, MemOp op, bool indexed, unsigned elems,
           AddrOf addr_of)
    {
        MemAccess acc;
        if (elems == 0) {
            acc.start = acc.end = earliest;
            acc.firstData = acc.lastData = earliest + hitLat_;
            return acc;
        }
        // Backing conflicts accrued by this stream's line fills are
        // attributed to the requesting stream's kind: a fill is a
        // strided line read, but an indexed stream caused it.
        uint64_t preConfl = backing_->stats().bankConflicts;
        uint64_t preConflCycles = backing_->stats().conflictCycles;
        unsigned u = units_.pick(op);
        Cycle cur = std::max(earliest, units_[u]);
        Cycle last = cur;
        Cycle maxDataAt = 0;
        BusyRunMerger busy(busy_);
        for (unsigned i = 0; i < elems; ++i) {
            Addr a = addr_of(i);
            Addr line = a / lineBytes_;
            Cycle t = cur;
            Cycle dataAt;
            if (Way *w = lookup(line)) {
                ++stats_.cacheHits;
                dataAt = std::max(t + hitLat_, w->fillDone);
                w->lastUse = t;
            } else {
                ++stats_.cacheMisses;
                auto m = std::min_element(mshrFreeAt_.begin(),
                                          mshrFreeAt_.end());
                if (*m > t) {
                    stats_.mshrStallCycles += *m - t;
                    t = *m;
                }
                MemAccess fill = backing_->reserve(
                    t, line * lineBytes_, kWordBytes, lineElems_,
                    MemOp::Load);
                // fill.lastData is one past the last element's
                // arrival; the line is usable on the arrival cycle
                // itself (dataAt is a closed arrival time, like the
                // hit path's t + hitLat_).
                dataAt = fill.lastData - 1;
                *m = fill.lastData;
                Way &v = victim(line, t);
                v.line = line;
                v.valid = true;
                v.lastUse = t;
                v.fillDone = dataAt;
            }
            busy.add(t);
            if (i == 0) {
                acc.start = t;
                acc.firstData = dataAt;
            }
            maxDataAt = std::max(maxDataAt, dataAt);
            last = t;
            cur = t + 1;
        }
        // "requests" means bus traffic (the figure-13 metric): a
        // cache's job is to shrink it, so report the backing model's
        // line-fill elements, not the CPU-side element count (which
        // is cacheHits + cacheMisses).
        stats_.requests = backing_->stats().requests;
        stats_.bankConflicts = backing_->stats().bankConflicts;
        stats_.conflictCycles = backing_->stats().conflictCycles;
        if (indexed) {
            stats_.indexedConflicts +=
                backing_->stats().bankConflicts - preConfl;
            stats_.indexedConflictCycles +=
                backing_->stats().conflictCycles - preConflCycles;
        }
        acc.end = last + 1;
        acc.lastData = maxDataAt + 1;
        units_[u] = acc.end;
        return acc;
    }

    Way *
    lookup(Addr line)
    {
        Way *set = &ways_[(line % sets_) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w)
            if (set[w].valid && set[w].line == line)
                return &set[w];
        return nullptr;
    }

    /** LRU victim in @p line's set (invalid ways first). */
    Way &
    victim(Addr line, Cycle)
    {
        Way *set = &ways_[(line % sets_) * assoc_];
        Way *best = &set[0];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!set[w].valid)
                return set[w];
            if (set[w].lastUse < best->lastUse)
                best = &set[w];
        }
        return *best;
    }

    unsigned hitLat_;
    unsigned lineBytes_;
    unsigned assoc_;
    unsigned lineElems_;
    unsigned sets_;
    std::vector<Way> ways_;
    std::vector<Cycle> mshrFreeAt_;
    std::unique_ptr<MemorySystem> backing_;
    UnitPool units_;
};

} // namespace

std::pair<unsigned, unsigned>
memUnitRange(const MemConfig &cfg, MemOp op)
{
    unsigned n = std::max(cfg.memUnits, 1u);
    if (cfg.lsPolicy != LsPolicy::Split || n < 2)
        return {0, n};
    unsigned load_units = (n + 1) / 2;
    return op == MemOp::Load
               ? std::pair<unsigned, unsigned>{0, load_units}
               : std::pair<unsigned, unsigned>{load_units, n};
}

std::string
MemConfig::label() const
{
    std::string units;
    if (memUnits > 1) {
        units = csprintf("x%u", memUnits);
        if (lsPolicy == LsPolicy::Split)
            units += "s";
    }
    std::string l;
    switch (model) {
    case MemModel::FlatBus:
        l = units.empty() ? "" : "/" + units;
        break;
    case MemModel::Banked:
        l = csprintf("/mb%up%u", banks, addressPorts) + units;
        break;
    case MemModel::Cached:
        l = csprintf("/c%uk%uw%um", cacheBytes / 1024, associativity,
                     mshrs);
        if (backing == MemModel::Banked)
            l += csprintf("b%u", banks);
        l += units;
        break;
    }
    return l + tlb.label();
}

MemConfig
makeBankedMem(unsigned banks, unsigned address_ports,
              unsigned bank_busy_cycles)
{
    MemConfig cfg;
    cfg.model = MemModel::Banked;
    cfg.banks = banks;
    cfg.addressPorts = address_ports;
    cfg.bankBusyCycles = bank_busy_cycles;
    return cfg;
}

MemConfig
makeMultiUnitMem(unsigned banks, unsigned units, LsPolicy policy,
                 unsigned address_ports, unsigned bank_busy_cycles)
{
    MemConfig cfg =
        makeBankedMem(banks, address_ports, bank_busy_cycles);
    cfg.memUnits = units;
    cfg.lsPolicy = policy;
    return cfg;
}

MemConfig
makeCachedMem(unsigned cache_bytes, unsigned mshrs, MemModel backing)
{
    MemConfig cfg;
    cfg.model = MemModel::Cached;
    cfg.cacheBytes = cache_bytes;
    cfg.mshrs = mshrs;
    cfg.backing = backing;
    return cfg;
}

std::unique_ptr<MemorySystem>
makeMemorySystem(const MemConfig &cfg, unsigned mem_latency)
{
    if (cfg.memUnits == 0)
        fatal("memory system needs >= 1 load/store unit");
    std::unique_ptr<MemorySystem> mem;
    switch (cfg.model) {
    case MemModel::FlatBus:
        mem = std::make_unique<FlatBus>(cfg, mem_latency);
        break;
    case MemModel::Banked:
        if (cfg.banks == 0 || cfg.addressPorts == 0)
            fatal("banked memory needs >= 1 bank and >= 1 port");
        mem = std::make_unique<BankedMemory>(cfg, mem_latency);
        break;
    case MemModel::Cached:
        if (cfg.backing == MemModel::Cached)
            fatal("cache backing must be FlatBus or Banked");
        mem = std::make_unique<CachedMemory>(cfg, mem_latency);
        break;
    }
    if (!mem)
        panic("unknown memory model %d", static_cast<int>(cfg.model));
    if (cfg.tlb.enabled)
        mem = wrapWithTlb(std::move(mem), cfg.tlb);
    return mem;
}

} // namespace oova
