#include "mem/membus.hh"

// AddressBus is header-only; this file anchors the library target.
