/**
 * @file
 * The result record shared by both simulators and consumed by the
 * experiment harness. Every figure of the paper is computed from
 * these fields.
 */

#ifndef OOVA_MEM_SIMRESULT_HH
#define OOVA_MEM_SIMRESULT_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace oova
{

/** Why an in-order issue slot was delayed (REF diagnostics). */
enum class StallCause : uint8_t
{
    None,      ///< issued back to back
    ScalarDep, ///< waiting on a scalar source
    VectorDep, ///< waiting on a vector source (RAW)
    WarWaw,    ///< destination register still in use
    FuBusy,    ///< functional unit occupied
    MemUnit,   ///< memory unit still streaming addresses
    Ports,     ///< register-file port conflict
    Branch,    ///< post-branch redirect bubble
    NumCauses,
};

constexpr unsigned kNumStallCauses =
    static_cast<unsigned>(StallCause::NumCauses);

/** Human-readable stall-cause label. */
const char *stallCauseName(StallCause cause);

/**
 * CPI-stack bucket: where one machine cycle went, top-down. Both
 * simulators charge every cycle of a run to exactly one bucket when
 * cycle accounting is enabled (off by default); the conservation
 * invariant (buckets sum to `cycles`) is enforced by the
 * cpi-conservation checker in src/check/.
 */
enum class CpiBucket : uint8_t
{
    Commit,      ///< at least one instruction retired
    Fetch,       ///< front end empty: fetch/BTB-limited
    Rename,      ///< free-list empty: rename-limited
    QueueFull,   ///< dispatch blocked on a full aQ/sQ/vQ
    OperandWait, ///< head waiting on source operands
    FuBusy,      ///< ready but lost the FU/issue-port race
    Memory,      ///< memory unit, bank, or MSHR limited
    TlbTrap,     ///< TLB miss handling / precise-trap squash
    Drain,       ///< end-of-trace pipeline drain
    NumBuckets,
};

constexpr unsigned kNumCpiBuckets =
    static_cast<unsigned>(CpiBucket::NumBuckets);

/** Human-readable CPI-bucket label. */
const char *cpiBucketName(CpiBucket bucket);

/** Aggregate outcome of simulating one trace on one machine. */
struct SimResult
{
    /**
     * Result-schema version, bumped whenever a field is added,
     * removed, or changes meaning. toJson() embeds it, fromJson()
     * rejects any other value, and the sweep-farm ResultStore folds
     * it into the content-addressed key — so a stored record from an
     * older schema is a clean miss, never a silent misparse.
     */
    static constexpr int kResultSchemaVersion = 3;

    std::string program;
    std::string machine;

    Cycle cycles = 0;
    uint64_t instructions = 0;

    /** Figures 3/7: cycles in each (FU2, FU1, MEM) state. */
    std::array<uint64_t, UnitStateBreakdown::kNumStates> stateCycles{};

    uint64_t fu1BusyCycles = 0;
    uint64_t fu2BusyCycles = 0;
    uint64_t memBusyCycles = 0;  ///< address-bus busy cycles
    uint64_t memRequests = 0;    ///< element requests on the bus

    // Memory-hierarchy detail; all zero under the default FlatBus.
    uint64_t memBankConflicts = 0;  ///< element issues that hit a busy bank
    uint64_t memConflictCycles = 0; ///< cycles lost waiting on banks
    /** Subset of the above charged to gather/scatter index streams. */
    uint64_t memIndexedConflicts = 0;
    uint64_t memIndexedConflictCycles = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t mshrStallCycles = 0;   ///< cycles misses waited for an MSHR
    // Translation detail; all zero while the TLB is disabled.
    uint64_t tlbHits = 0;
    uint64_t tlbMisses = 0;         ///< lookups that required a refill
    /** Subset of tlbMisses from gather/scatter per-element lookups. */
    uint64_t tlbIndexedMisses = 0;
    uint64_t tlbMissCycles = 0;     ///< stall cycles from hardware walks

    // OOOVA-only detail.
    uint64_t vectorLoadsEliminated = 0;
    uint64_t scalarLoadsEliminated = 0;
    uint64_t branchMispredicts = 0;
    uint64_t renameStallCycles = 0;
    uint64_t robStallCycles = 0;
    uint64_t queueStallCycles = 0;
    uint64_t traps = 0;

    /** REF only: issue-stall cycles attributed to their cause. */
    std::array<uint64_t, kNumStallCauses> stallCycles{};

    /**
     * CPI stack: every cycle charged to one bucket. All zero unless
     * the config enables cycle accounting (cpiStack); when enabled,
     * the entries sum exactly to `cycles`.
     */
    std::array<uint64_t, kNumCpiBuckets> cpiCycles{};

    /**
     * Occupancy telemetry, one distribution and one bounded time
     * series per machine structure (see OccStruct). Empty (zero
     * samples) unless the config enables telemetry; when enabled,
     * every sampled structure's sample count equals `cycles` — the
     * occupancy-conservation checker's invariant. Exact integers,
     * so the JSON round trip through the ResultStore is bit-exact.
     */
    std::array<StatDistribution, kNumOccStructs> occupancy{};
    std::array<StatTimeSeries, kNumOccStructs> occupancyTs{};

    /** Fraction of cycles the memory port was idle (figures 4/6). */
    double
    portIdleFraction() const
    {
        if (cycles == 0)
            return 0.0;
        return 1.0 -
               static_cast<double>(memBusyCycles) /
                   static_cast<double>(cycles);
    }

    /** Bank conflicts charged to strided (non-indexed) streams. */
    uint64_t
    memStridedConflicts() const
    {
        return memBankConflicts - memIndexedConflicts;
    }

    /** TLB refills charged to strided (non-indexed) streams. */
    uint64_t
    stridedTlbMisses() const
    {
        return tlbMisses - tlbIndexedMisses;
    }

    /** Instructions per cycle over the whole run. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles
                      : 0.0;
    }

    /**
     * Render every field (including the derived accessors) as one
     * JSON object, tagged with kResultSchemaVersion. The
     * scripts/lint_oova.py gate parses the struct and fails if a
     * field is added here without being surfaced there, so new
     * counters cannot silently dodge the machine-readable output or
     * the toJson()/fromJson() round trip.
     */
    std::string toJson() const;

    /**
     * Strict inverse of toJson(): parses one result object into
     * @p out. Returns false — leaving @p out untouched — on
     * malformed JSON, unknown keys, missing fields, or a schema
     * version other than kResultSchemaVersion; the ResultStore
     * treats every false as a cache miss. All stored fields are
     * integers or strings, so the round trip is exact (derived
     * double-valued keys are validated and recomputed, not stored).
     */
    static bool fromJson(const std::string &json, SimResult &out);
};

} // namespace oova

#endif // OOVA_MEM_SIMRESULT_HH
