#include "mem/tlb.hh"

#include <algorithm>

#include "common/logging.hh"
#include "mem/memsystem.hh"

namespace oova
{

std::string
TlbConfig::label() const
{
    if (!enabled)
        return "";
    std::string l = csprintf("/t%ue", entries);
    if (pageBytes % 1024 == 0)
        l += csprintf("%uk", pageBytes / 1024);
    else
        l += csprintf("%ub", pageBytes);
    if (associativity != 4)
        l += csprintf("a%u", associativity);
    if (l2Entries)
        l += csprintf("l%u", l2Entries);
    if (refill == TlbRefill::SoftwareTrap)
        l += "s";
    return l;
}

// ------------------------------------------------------------ Level

void
Tlb::Level::init(unsigned entries, unsigned associativity)
{
    if (entries == 0)
        return;
    assoc = std::min(std::max(associativity, 1u), entries);
    // Refuse to round: a 10-entry 4-way config would silently hold
    // 8 translations while its /tNe label claimed 10.
    if (entries % assoc != 0)
        fatal("TLB level: %u entries not divisible by %u ways",
              entries, assoc);
    sets = entries / assoc;
    ways.assign(static_cast<size_t>(sets) * assoc, Entry{});
}

Tlb::Entry *
Tlb::Level::find(Addr page, uint64_t tick)
{
    Entry *set = &ways[(page % sets) * assoc];
    for (unsigned w = 0; w < assoc; ++w) {
        if (set[w].valid && set[w].page == page) {
            set[w].lastUse = tick;
            return &set[w];
        }
    }
    return nullptr;
}

const Tlb::Entry *
Tlb::Level::peek(Addr page) const
{
    const Entry *set = &ways[(page % sets) * assoc];
    for (unsigned w = 0; w < assoc; ++w)
        if (set[w].valid && set[w].page == page)
            return &set[w];
    return nullptr;
}

Tlb::Entry *
Tlb::Level::insert(Addr page, uint64_t tick)
{
    Entry *set = &ways[(page % sets) * assoc];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < assoc; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (!victim->valid)
        ++valid;
    victim->page = page;
    victim->valid = true;
    victim->lastUse = tick;
    return victim;
}

// -------------------------------------------------------------- Tlb

Tlb::Tlb(const TlbConfig &cfg) : cfg_(cfg)
{
    if (cfg_.entries == 0 || cfg_.pageBytes == 0)
        fatal("TLB needs >= 1 entry and a non-zero page size");
    l1_.init(cfg_.entries, cfg_.associativity);
    l2_.init(cfg_.l2Entries, cfg_.l2Associativity);
}

std::vector<Addr>
Tlb::stridedPages(Addr addr, int64_t stride_bytes,
                  unsigned elems) const
{
    std::vector<Addr> pages;
    stridedPages(addr, stride_bytes, elems, pages);
    return pages;
}

void
Tlb::stridedPages(Addr addr, int64_t stride_bytes, unsigned elems,
                  std::vector<Addr> &out) const
{
    out.clear();
    Addr prev = 0;
    bool have_prev = false;
    for (unsigned i = 0; i < elems; ++i) {
        Addr a = addr + static_cast<int64_t>(i) * stride_bytes;
        Addr p = pageOf(a);
        if (!have_prev || p != prev) {
            out.push_back(p);
            prev = p;
            have_prev = true;
        }
    }
}

std::vector<Addr>
Tlb::indexedPages(const std::vector<Addr> &elem_addrs) const
{
    std::vector<Addr> pages;
    indexedPages(elem_addrs, pages);
    return pages;
}

void
Tlb::indexedPages(const std::vector<Addr> &elem_addrs,
                  std::vector<Addr> &out) const
{
    out.clear();
    out.reserve(elem_addrs.size());
    for (Addr a : elem_addrs)
        out.push_back(pageOf(a));
}

unsigned
Tlb::translate(const std::vector<Addr> &pages, bool indexed)
{
    unsigned delay = 0;
    // Page sequences repeat heavily (unit-stride re-entries,
    // congruent-mod gathers), so batch consecutive lookups of the
    // same page: a repeat of the page just touched always hits L1,
    // and the cached entry pointer is refreshed after every insert,
    // so counters, ticks and LRU timestamps are exactly those of the
    // full set walk.
    Entry *last = nullptr;
    Addr last_page = 0;
    for (Addr p : pages) {
        ++tick_;
        if (last && p == last_page) {
            ++hits_;
            last->lastUse = tick_;
            continue;
        }
        if (Entry *e = l1_.find(p, tick_)) {
            ++hits_;
            last = e;
            last_page = p;
            continue;
        }
        ++misses_;
        if (indexed)
            ++indexedMisses_;
        unsigned cost;
        if (!l2_.empty() && l2_.find(p, tick_)) {
            cost = cfg_.l2HitPenalty;
        } else {
            cost = cfg_.missPenalty;
            if (!l2_.empty())
                l2_.insert(p, tick_);
        }
        last = l1_.insert(p, tick_);
        last_page = p;
        // Misses that reach this point always walk in hardware. With
        // SoftwareTrap the OOOVA's trap handler pre-installs a
        // stream's pages so its reserve sees hits and pays nothing
        // here; machines without a precise-trap path (REF, early
        // commit) and a stream too large for the TLB to hold fall
        // through to this walk, so a software-refill configuration
        // is never silently free.
        delay += cost;
        missCycles_ += cost;
    }
    return delay;
}

TlbAuditView
Tlb::auditView() const
{
    auto snap = [](const Level &lvl) {
        TlbAuditView::Level out;
        out.sets = lvl.sets;
        out.assoc = lvl.assoc;
        out.ways.reserve(lvl.ways.size());
        for (const Entry &e : lvl.ways)
            out.ways.push_back({e.valid, e.page, e.lastUse});
        return out;
    };
    TlbAuditView v;
    v.l1 = snap(l1_);
    v.l2 = snap(l2_);
    v.tick = tick_;
    v.hits = hits_;
    v.misses = misses_;
    v.indexedMisses = indexedMisses_;
    v.missCycles = missCycles_;
    return v;
}

bool
Tlb::wouldMiss(const std::vector<Addr> &pages) const
{
    // A probe must not disturb LRU state, so it cannot see the fills
    // earlier lookups of the same stream would perform; a page
    // repeated in @p pages therefore reports a miss each time. That
    // is conservative in exactly one direction (a would-miss page is
    // never reported resident), which is what the trap path needs.
    Addr prev = 0;
    bool have_prev = false;
    for (Addr p : pages) {
        // A repeat of the page just probed has the same residency.
        if (have_prev && p == prev)
            continue;
        prev = p;
        have_prev = true;
        if (l1_.peek(p))
            continue;
        if (!l2_.empty() && l2_.peek(p))
            continue;
        return true;
    }
    return false;
}

unsigned
Tlb::install(const std::vector<Addr> &pages, bool indexed)
{
    unsigned installed = 0;
    // Same consecutive-page batching as translate(): a repeat of the
    // page just handled is resident in L1 by construction.
    Entry *last = nullptr;
    Addr last_page = 0;
    for (Addr p : pages) {
        ++tick_;
        if (last && p == last_page) {
            last->lastUse = tick_;
            continue;
        }
        if (Entry *e = l1_.find(p, tick_)) {
            last = e;
            last_page = p;
            continue;
        }
        if (!l2_.empty() && l2_.find(p, tick_)) {
            last = l1_.insert(p, tick_);
            last_page = p;
            continue;
        }
        ++misses_;
        if (indexed)
            ++indexedMisses_;
        if (!l2_.empty())
            l2_.insert(p, tick_);
        last = l1_.insert(p, tick_);
        last_page = p;
        ++installed;
    }
    return installed;
}

// ---------------------------------------------------------- wrapper

namespace
{

/**
 * The translation stage in front of a concrete memory model: every
 * stream pays its page-lookup stalls before its addresses reach the
 * wrapped model, and the TLB counters ride on the wrapped model's
 * stats. Everything else — unit arbitration, busy intervals, free
 * times — is the inner model's.
 */
class TranslatingMemorySystem : public MemorySystem
{
  public:
    TranslatingMemorySystem(std::unique_ptr<MemorySystem> inner,
                            const TlbConfig &cfg)
        : inner_(std::move(inner)), tlb_(cfg)
    {
    }

    MemAccess
    reserve(Cycle earliest, Addr addr, int64_t stride_bytes,
            unsigned elems, MemOp op) override
    {
        if (elems == 0)
            return inner_->reserve(earliest, addr, stride_bytes,
                                   elems, op);
        tlb_.stridedPages(addr, stride_bytes, elems, pageScratch_);
        unsigned stall = tlb_.translate(pageScratch_, false);
        MemAccess acc = inner_->reserve(earliest + stall, addr,
                                        stride_bytes, elems, op);
        refreshStats();
        return acc;
    }

    MemAccess
    reserve(Cycle earliest, const std::vector<Addr> &elem_addrs,
            MemOp op) override
    {
        if (elem_addrs.empty())
            return inner_->reserve(earliest, elem_addrs, op);
        tlb_.indexedPages(elem_addrs, pageScratch_);
        unsigned stall = tlb_.translate(pageScratch_, true);
        MemAccess acc =
            inner_->reserve(earliest + stall, elem_addrs, op);
        refreshStats();
        return acc;
    }

    Cycle freeAt() const override { return inner_->freeAt(); }

    Cycle freeAt(MemOp op) const override { return inner_->freeAt(op); }

    const IntervalRecorder &busy() const override
    {
        return inner_->busy();
    }

    unsigned
    inFlightMshrs(Cycle now) const override
    {
        return inner_->inFlightMshrs(now);
    }

    const MemStats &
    stats() const override
    {
        refreshStats();
        return merged_;
    }

    Tlb *tlb() override { return &tlb_; }

  private:
    /**
     * Re-merge after every reserve() as well as on stats() reads, so
     * a reference held across reserve() calls observes fresh
     * counters just as it would on the bare models.
     */
    void
    refreshStats() const
    {
        merged_ = inner_->stats();
        merged_.tlbHits = tlb_.hits();
        merged_.tlbMisses = tlb_.misses();
        merged_.tlbIndexedMisses = tlb_.indexedMisses();
        merged_.tlbMissCycles = tlb_.missCycles();
    }

    std::unique_ptr<MemorySystem> inner_;
    Tlb tlb_;
    /** Reusable page-sequence buffer (one stream at a time). */
    std::vector<Addr> pageScratch_;
    mutable MemStats merged_;
};

} // namespace

std::unique_ptr<MemorySystem>
wrapWithTlb(std::unique_ptr<MemorySystem> inner, const TlbConfig &cfg)
{
    return std::make_unique<TranslatingMemorySystem>(std::move(inner),
                                                     cfg);
}

} // namespace oova
