/**
 * @file
 * The virtual-memory translation stage: a set-associative TLB that
 * sits in front of every MemorySystem model.
 *
 * The paper's memory system is physically addressed and fault-free,
 * but the OOOVA's headline claim is precise exceptions under
 * decoupled vector execution — and modern vector evaluations treat
 * address translation as a first-class cost for indexed accesses,
 * where every element of a gather can touch a different page.
 *
 * Translation granularity matches how the address unit works:
 *
 *  - a strided stream generates its addresses in order, so it
 *    translates once per page crossed — unit stride touching one
 *    page costs one lookup no matter the vector length;
 *  - a gather/scatter translates per element (the index vector is
 *    fully available at issue), so its TLB behaviour follows the
 *    recorded IndexPattern: a bank-friendly permutation stays inside
 *    one page window while uniform-random indices thrash any
 *    small TLB.
 *
 * Refill policy (TlbRefill): a HardwareWalk charges missPenalty
 * stall cycles per refill inside the memory model, serializing the
 * stream's setup. SoftwareTrap instead raises a precise trap through
 * the OOOVA's existing squash-and-replay path (late commit only; the
 * trap handler installs the missing translations, so the replay
 * hits). Machines without a precise-trap path — the REF machine, or
 * the OOOVA under early commit — fall back to hardware-walk charging
 * so a software-refill configuration is never silently free.
 *
 * Accounting note for SoftwareTrap: the faulting attempt records its
 * misses when the trap handler installs the translations, charging
 * no stall cycles — the cost is the trap penalty, visible in cycles
 * and SimResult::traps — and the replayed attempt's lookups count as
 * hits. Misses that still reach a reserve() (fallback machines, or
 * the residue of a stream too large for the TLB to hold at once)
 * walk in hardware and accrue tlbMissCycles as usual.
 */

#ifndef OOVA_MEM_TLB_HH
#define OOVA_MEM_TLB_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace oova
{

class MemorySystem;

/**
 * Plain-data snapshot of a TLB's translation arrays and counters for
 * the invariant audit (src/check/): geometry, per-way contents and
 * the LRU/stat state, with no back-pointers into the live structure,
 * so the checker logic can be exercised on hand-built (corrupted)
 * views in tests.
 */
struct TlbAuditView
{
    struct Way
    {
        bool valid = false;
        Addr page = 0;
        uint64_t lastUse = 0;
    };

    struct Level
    {
        unsigned sets = 0;
        unsigned assoc = 0;
        /** sets * assoc entries, set-major (set i at [i*assoc, ...)). */
        std::vector<Way> ways;
    };

    Level l1;
    Level l2;

    uint64_t tick = 0; ///< LRU timestamp source == lookups performed
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t indexedMisses = 0;
    uint64_t missCycles = 0;
};

/** How a TLB miss is refilled. */
enum class TlbRefill : uint8_t
{
    /** Hardware page walk: missPenalty stall cycles per refill. */
    HardwareWalk,
    /**
     * Software-managed TLB: a miss raises a precise trap on the
     * OOOVA's late-commit path (the handler installs the missing
     * translations and the instruction replays). Falls back to
     * hardware-walk charging on machines without a precise-trap
     * path.
     */
    SoftwareTrap,
};

/** TLB configuration, embedded in MemConfig. */
struct TlbConfig
{
    /**
     * Off by default: translation is free and invisible, so every
     * pre-existing figure and machine label is byte-identical.
     */
    bool enabled = false;

    /** First-level entries. */
    unsigned entries = 64;
    /** Page size in bytes. */
    unsigned pageBytes = 4096;
    /** Ways per set (>= entries means fully associative). */
    unsigned associativity = 4;
    /** Stall cycles charged per hardware page walk. */
    unsigned missPenalty = 30;

    /** Optional second level: 0 disables it. */
    unsigned l2Entries = 0;
    /** Ways per set of the second level. */
    unsigned l2Associativity = 8;
    /** Stall cycles when an L1 miss hits the second level. */
    unsigned l2HitPenalty = 6;

    TlbRefill refill = TlbRefill::HardwareWalk;

    /**
     * Config suffix appended to the memory-model label, e.g.
     * "/t64e4k" (64 entries, 4 KiB pages), "/t16e4ka2" (2-way),
     * "/t64e4kl512" (512-entry second level), "/t64e4ks" (software
     * refill). Empty while disabled, so default labels are
     * untouched.
     */
    std::string label() const;
};

/**
 * The TLB proper: L1 (and optional L2) set-associative translation
 * arrays with LRU replacement, plus the hit/miss/stall counters
 * surfaced through MemStats. Owned by the translation wrapper that
 * makeMemorySystem puts in front of the selected model; reachable
 * from the simulators via MemorySystem::tlb() for the
 * software-refill trap path.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    const TlbConfig &config() const { return cfg_; }

    /** Page number of a byte address. */
    Addr pageOf(Addr a) const { return a / cfg_.pageBytes; }

    /**
     * The lookup sequence of a strided stream: one entry per page
     * crossing, in first-touch order (a page re-entered later in the
     * stream appears again — it is looked up again, and normally
     * hits). Empty for zero-element streams.
     */
    std::vector<Addr> stridedPages(Addr addr, int64_t stride_bytes,
                                   unsigned elems) const;

    /** Allocation-free variant: clears and fills @p out. */
    void stridedPages(Addr addr, int64_t stride_bytes, unsigned elems,
                      std::vector<Addr> &out) const;

    /**
     * The lookup sequence of a gather/scatter: one entry per
     * element, duplicates preserved — per-element translation is
     * what makes a random gather expensive.
     */
    std::vector<Addr>
    indexedPages(const std::vector<Addr> &elem_addrs) const;

    /** Allocation-free variant: clears and fills @p out. */
    void indexedPages(const std::vector<Addr> &elem_addrs,
                      std::vector<Addr> &out) const;

    /**
     * Perform the lookups of one stream, filling on miss, and
     * return the stall cycles its hardware walks cost. @p indexed
     * routes miss counts into the indexed counters.
     */
    unsigned translate(const std::vector<Addr> &pages, bool indexed);

    /** Would any lookup of @p pages miss? No state/stat change. */
    bool wouldMiss(const std::vector<Addr> &pages) const;

    /**
     * Software refill at trap time: install every page of @p pages
     * that is absent, counting each installation as a miss (indexed
     * or strided per @p indexed) but charging no stall cycles.
     * Returns the number installed.
     */
    unsigned install(const std::vector<Addr> &pages, bool indexed);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t indexedMisses() const { return indexedMisses_; }
    uint64_t missCycles() const { return missCycles_; }

    /**
     * Valid entries across both levels right now. O(1): maintained
     * at insert time (nothing ever invalidates an entry), so the
     * occupancy telemetry can sample it every calendar advance.
     */
    unsigned
    residentPages() const
    {
        return l1_.valid + l2_.valid;
    }

    /** Snapshot for the invariant audit (see TlbAuditView). */
    TlbAuditView auditView() const;

  private:
    struct Entry
    {
        Addr page = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    /** One set-associative translation array. */
    struct Level
    {
        std::vector<Entry> ways;
        unsigned sets = 0;
        unsigned assoc = 0;
        unsigned valid = 0; ///< valid ways (grows monotonically)

        void init(unsigned entries, unsigned associativity);
        bool empty() const { return ways.empty(); }
        Entry *find(Addr page, uint64_t tick);
        const Entry *peek(Addr page) const;
        Entry *insert(Addr page, uint64_t tick);
    };

    TlbConfig cfg_;
    Level l1_;
    Level l2_;
    uint64_t tick_ = 0; ///< LRU timestamp source (not cycles)

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t indexedMisses_ = 0;
    uint64_t missCycles_ = 0;
};

/**
 * Wrap @p inner with the translation stage described by @p cfg: every
 * reserve() first pays for its page lookups, then the stream proceeds
 * into the wrapped model. Used by makeMemorySystem when
 * MemConfig::tlb.enabled is set.
 */
std::unique_ptr<MemorySystem>
wrapWithTlb(std::unique_ptr<MemorySystem> inner, const TlbConfig &cfg);

} // namespace oova

#endif // OOVA_MEM_TLB_HH
