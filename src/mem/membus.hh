/**
 * @file
 * The memory-system model of the paper (section 2.2): one address
 * bus shared by all memory transactions (scalar and vector, load and
 * store), physically separate data busses, a fixed main-memory
 * latency, and one element transferred per cycle once a stream
 * starts. The single address bus is the contended resource; its
 * occupancy is the "memory port" of figures 4 and 6.
 */

#ifndef OOVA_MEM_MEMBUS_HH
#define OOVA_MEM_MEMBUS_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace oova
{

/**
 * Exclusive, serializing address bus. A memory operation reserves
 * the bus for one cycle per element; the reservation begins no
 * earlier than requested and no earlier than the previous
 * reservation ends.
 */
class AddressBus
{
  public:
    /**
     * Reserve @p elems consecutive address slots.
     * @param earliest do not start before this cycle
     * @return the cycle the first address is driven
     *
     * A zero-element reservation is a no-op returning @p earliest:
     * nothing is driven, so no stats advance and the bus stays free.
     */
    Cycle
    reserve(Cycle earliest, unsigned elems)
    {
        if (elems == 0)
            return earliest;
        Cycle start = earliest > freeAt_ ? earliest : freeAt_;
        freeAt_ = start + elems;
        requests_ += elems;
        busy_.add(start, freeAt_);
        return start;
    }

    /** First cycle the bus is free again. */
    Cycle freeAt() const { return freeAt_; }

    /** Total element requests driven so far. */
    uint64_t requests() const { return requests_; }

    /** Busy intervals (the MEM component of the state breakdown). */
    const IntervalRecorder &busy() const { return busy_; }

  private:
    Cycle freeAt_ = 0;
    uint64_t requests_ = 0;
    IntervalRecorder busy_;
};

} // namespace oova

#endif // OOVA_MEM_MEMBUS_HH
