/**
 * @file
 * Binary trace serialization.
 *
 * The format is a small fixed-width little-endian record stream with
 * a magic/version header, so traces can be generated once and
 * replayed by the bench binaries, mirroring the paper's
 * trace-once/simulate-many Dixie workflow.
 */

#ifndef OOVA_TRACE_TRACE_IO_HH
#define OOVA_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace oova
{

/** Serialize a trace to a stream. Returns false on I/O error. */
bool saveTrace(const Trace &trace, std::ostream &os);

/** Serialize a trace to a file. Returns false on I/O error. */
bool saveTraceFile(const Trace &trace, const std::string &path);

/**
 * Deserialize a trace from a stream.
 * @return true on success; on failure @p out is left empty.
 */
bool loadTrace(Trace &out, std::istream &is);

/** Deserialize a trace from a file. */
bool loadTraceFile(Trace &out, const std::string &path);

/**
 * 64-bit FNV-1a hash of the trace's serialized byte stream — the
 * exact bytes saveTrace() would write, including the format
 * magic/version and the trace name. Two traces hash equal iff their
 * serialized forms are identical, and a trace-format version bump
 * changes every hash; this is the trace half of the sweep-farm
 * result-store key.
 */
uint64_t traceContentHash(const Trace &trace);

} // namespace oova

#endif // OOVA_TRACE_TRACE_IO_HH
