#include "trace/trace.hh"

// Trace is header-only today; this translation unit anchors the
// library and keeps the build layout uniform across modules.
