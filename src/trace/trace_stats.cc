#include "trace/trace_stats.hh"

namespace oova
{

TraceStats
TraceStats::compute(const Trace &trace)
{
    TraceStats s;
    for (const DynInst &inst : trace) {
        if (inst.isVector()) {
            ++s.vectorInsts;
            s.vectorOps += inst.vl;
            if (inst.isLoad()) {
                (inst.isSpill ? s.vecSpillLoadOps : s.vecLoadOps) +=
                    inst.vl;
            } else if (inst.isStore()) {
                (inst.isSpill ? s.vecSpillStoreOps : s.vecStoreOps) +=
                    inst.vl;
            }
        } else {
            ++s.scalarInsts;
            if (inst.isLoad())
                ++(inst.isSpill ? s.scalarSpillLoads : s.scalarLoads);
            else if (inst.isStore())
                ++(inst.isSpill ? s.scalarSpillStores : s.scalarStores);
            if (inst.isBranch())
                ++s.branches;
        }
    }
    return s;
}

} // namespace oova
