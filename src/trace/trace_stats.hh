/**
 * @file
 * Trace-level statistics: the columns of the paper's Table 2 (basic
 * operation counts, percentage of vectorization, average vector
 * length) and Table 3 (vector memory spill operations).
 */

#ifndef OOVA_TRACE_TRACE_STATS_HH
#define OOVA_TRACE_TRACE_STATS_HH

#include <cstdint>

#include "trace/trace.hh"

namespace oova
{

/** Aggregate statistics over one trace. */
struct TraceStats
{
    uint64_t scalarInsts = 0; ///< non-vector instructions
    uint64_t vectorInsts = 0; ///< vector instructions
    uint64_t vectorOps = 0;   ///< sum of vector lengths

    // Vector memory operation census, in *operations* (words moved),
    // split into spill and non-spill as in Table 3.
    uint64_t vecLoadOps = 0;
    uint64_t vecSpillLoadOps = 0;
    uint64_t vecStoreOps = 0;
    uint64_t vecSpillStoreOps = 0;

    // Scalar memory census (instruction == operation for scalars).
    uint64_t scalarLoads = 0;
    uint64_t scalarSpillLoads = 0;
    uint64_t scalarStores = 0;
    uint64_t scalarSpillStores = 0;

    uint64_t branches = 0;

    uint64_t
    totalInsts() const
    {
        return scalarInsts + vectorInsts;
    }

    /**
     * Percentage of vectorization as defined under Table 2: vector
     * operations over (scalar instructions + vector operations).
     */
    double
    vectorization() const
    {
        double denom = static_cast<double>(scalarInsts + vectorOps);
        return denom > 0 ? 100.0 * vectorOps / denom : 0.0;
    }

    /** Average vector length of vector instructions. */
    double
    avgVectorLength() const
    {
        return vectorInsts
                   ? static_cast<double>(vectorOps) / vectorInsts
                   : 0.0;
    }

    /** Fraction of vector memory traffic that is spill traffic. */
    double
    spillTrafficFraction() const
    {
        uint64_t total = vecLoadOps + vecSpillLoadOps + vecStoreOps +
                         vecSpillStoreOps;
        return total ? static_cast<double>(vecSpillLoadOps +
                                           vecSpillStoreOps) /
                           total
                     : 0.0;
    }

    /** Compute statistics for a trace in one pass. */
    static TraceStats compute(const Trace &trace);
};

} // namespace oova

#endif // OOVA_TRACE_TRACE_STATS_HH
