#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <streambuf>

#include "common/logging.hh"

namespace oova
{

namespace
{

// Version 2 added the gather/scatter index-pattern fields.
constexpr char kMagic[8] = {'O', 'O', 'V', 'A', 'T', 'R', 'C', '2'};

template <typename T>
void
put(std::ostream &os, T value)
{
    // Serialize little-endian regardless of host order.
    unsigned char buf[sizeof(T)];
    auto u = static_cast<uint64_t>(value);
    for (size_t i = 0; i < sizeof(T); ++i)
        buf[i] = static_cast<unsigned char>((u >> (8 * i)) & 0xff);
    os.write(reinterpret_cast<const char *>(buf), sizeof(T));
}

template <typename T>
bool
get(std::istream &is, T &value)
{
    unsigned char buf[sizeof(T)];
    if (!is.read(reinterpret_cast<char *>(buf), sizeof(T)))
        return false;
    uint64_t u = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
        u |= static_cast<uint64_t>(buf[i]) << (8 * i);
    value = static_cast<T>(u);
    return true;
}

void
putReg(std::ostream &os, const RegId &r)
{
    put<uint8_t>(os, static_cast<uint8_t>(r.cls));
    put<uint8_t>(os, r.idx);
}

bool
getReg(std::istream &is, RegId &r)
{
    uint8_t cls, idx;
    if (!get(is, cls) || !get(is, idx))
        return false;
    // Validate at the deserialization boundary: register classes
    // and indices are used as unchecked array subscripts everywhere
    // downstream, so a corrupted byte must be rejected here.
    if (cls > static_cast<uint8_t>(RegClass::None))
        return false;
    r.cls = static_cast<RegClass>(cls);
    if (r.cls != RegClass::None && idx >= numLogicalRegs(r.cls))
        return false;
    r.idx = idx;
    return true;
}

} // namespace

bool
saveTrace(const Trace &trace, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    put<uint32_t>(os, static_cast<uint32_t>(trace.name().size()));
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
    put<uint64_t>(os, trace.size());

    for (const DynInst &inst : trace) {
        put<uint64_t>(os, inst.pc);
        put<uint8_t>(os, static_cast<uint8_t>(inst.op));
        putReg(os, inst.dst);
        put<uint8_t>(os, inst.numSrc);
        for (unsigned i = 0; i < kMaxSrcRegs; ++i)
            putReg(os, inst.src[i]);
        put<uint16_t>(os, inst.vl);
        put<int64_t>(os, inst.strideBytes);
        put<uint64_t>(os, inst.addr);
        put<uint32_t>(os, inst.regionBytes);
        put<uint8_t>(os, inst.elemSize);
        put<uint8_t>(os, static_cast<uint8_t>(inst.idxPattern));
        put<uint32_t>(os, inst.idxParam);
        put<uint64_t>(os, inst.idxSeed);
        put<uint8_t>(os, inst.taken ? 1 : 0);
        put<uint64_t>(os, inst.target);
        put<uint8_t>(os, inst.isSpill ? 1 : 0);
    }
    return static_cast<bool>(os);
}

bool
saveTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    return saveTrace(trace, os);
}

bool
loadTrace(Trace &out, std::istream &is)
{
    out = Trace();

    char magic[sizeof(kMagic)];
    if (!is.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        return false;
    }

    uint32_t name_len;
    if (!get(is, name_len) || name_len > (1u << 20))
        return false;
    std::string name(name_len, '\0');
    if (!is.read(name.data(), name_len))
        return false;
    out.setName(name);

    uint64_t count;
    if (!get(is, count))
        return false;
    out.reserve(count);

    for (uint64_t n = 0; n < count; ++n) {
        DynInst inst;
        uint8_t op, num_src, taken, spill, esize, ipat;
        if (!get(is, inst.pc) || !get(is, op) ||
            !getReg(is, inst.dst) || !get(is, num_src)) {
            out = Trace();
            return false;
        }
        // Validate at the deserialization boundary: traits() is an
        // unchecked table lookup on the hot path, so a corrupted
        // opcode byte must be rejected here, not deep in a simulator.
        if (op >= kNumOpcodes) {
            out = Trace();
            return false;
        }
        inst.op = static_cast<Opcode>(op);
        // Same boundary rule: numSrc bounds every src[] loop in the
        // simulators (the array holds kMaxSrcRegs entries).
        if (num_src > kMaxSrcRegs) {
            out = Trace();
            return false;
        }
        inst.numSrc = num_src;
        for (unsigned i = 0; i < kMaxSrcRegs; ++i) {
            if (!getReg(is, inst.src[i])) {
                out = Trace();
                return false;
            }
        }
        if (!get(is, inst.vl) || !get(is, inst.strideBytes) ||
            !get(is, inst.addr) || !get(is, inst.regionBytes) ||
            !get(is, esize) || !get(is, ipat) ||
            !get(is, inst.idxParam) || !get(is, inst.idxSeed) ||
            !get(is, taken) || !get(is, inst.target) ||
            !get(is, spill)) {
            out = Trace();
            return false;
        }
        inst.elemSize = esize;
        if (ipat > static_cast<uint8_t>(IndexPattern::Random)) {
            out = Trace();
            return false;
        }
        inst.idxPattern = static_cast<IndexPattern>(ipat);
        inst.taken = taken != 0;
        inst.isSpill = spill != 0;
        out.push(inst);
    }
    return true;
}

bool
loadTraceFile(Trace &out, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    return loadTrace(out, is);
}

namespace
{

/**
 * A streambuf that hashes every byte written instead of storing it,
 * so traceContentHash() reuses saveTrace() verbatim — the hash
 * covers exactly the serialized format, field order and all.
 */
class FnvStreambuf : public std::streambuf
{
  public:
    uint64_t
    hash() const
    {
        return hash_;
    }

  protected:
    int
    overflow(int ch) override
    {
        if (ch != traits_type::eof())
            mix(static_cast<unsigned char>(ch));
        return ch;
    }

    std::streamsize
    xsputn(const char *s, std::streamsize n) override
    {
        for (std::streamsize i = 0; i < n; ++i)
            mix(static_cast<unsigned char>(s[i]));
        return n;
    }

  private:
    void
    mix(unsigned char b)
    {
        hash_ = (hash_ ^ b) * 1099511628211ull;
    }

    uint64_t hash_ = 14695981039346656037ull; // FNV-1a offset basis
};

} // namespace

uint64_t
traceContentHash(const Trace &trace)
{
    FnvStreambuf buf;
    std::ostream os(&buf);
    saveTrace(trace, os);
    return buf.hash();
}

} // namespace oova
