/**
 * @file
 * The dynamic instruction trace consumed by both simulators.
 *
 * A Trace is the common currency of the repository: the workload
 * generator produces one, the reference and OOOVA simulators replay
 * it, and the trace-statistics pass regenerates the paper's Table 2
 * columns from it.
 */

#ifndef OOVA_TRACE_TRACE_HH
#define OOVA_TRACE_TRACE_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace oova
{

/** An ordered dynamic instruction stream with a program name. */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Append an instruction (sequence position = index). */
    void
    push(DynInst inst)
    {
        insts_.push_back(inst);
    }

    size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    const DynInst &operator[](size_t i) const { return insts_[i]; }
    DynInst &operator[](size_t i) { return insts_[i]; }

    const std::vector<DynInst> &insts() const { return insts_; }

    auto begin() const { return insts_.begin(); }
    auto end() const { return insts_.end(); }

    void
    reserve(size_t n)
    {
        insts_.reserve(n);
    }

  private:
    std::string name_;
    std::vector<DynInst> insts_;
};

} // namespace oova

#endif // OOVA_TRACE_TRACE_HH
