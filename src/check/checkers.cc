#include "check/checkers.hh"

#include <algorithm>

namespace oova::check
{

void
checkFreeListStructure(const RegFileAudit &rf, Reporter &r)
{
    const size_t n = rf.regs.size();
    std::vector<bool> listed(n, false);
    for (int idx : rf.freeList) {
        if (idx < 0 || static_cast<size_t>(idx) >= n) {
            r.fail("%s free list holds out-of-range index %d "
                   "(file size %zu)",
                   rf.cls, idx, n);
            continue;
        }
        if (listed[static_cast<size_t>(idx)]) {
            r.fail("%s preg %d appears twice in the free list",
                   rf.cls, idx);
            continue;
        }
        listed[static_cast<size_t>(idx)] = true;
    }
    for (size_t i = 0; i < n; ++i) {
        const RegAudit &p = rf.regs[i];
        if (p.inFreeList != listed[i]) {
            r.fail("%s preg %zu: inFreeList=%d but free-list "
                   "membership=%d",
                   rf.cls, i, static_cast<int>(p.inFreeList),
                   static_cast<int>(listed[i]));
        }
        // Exactly one of free / claimed: a free register holds no
        // claims, a register with no claims must be on the list.
        if (p.inFreeList && p.refCount != 0) {
            r.fail("%s preg %zu: on the free list with refCount=%d",
                   rf.cls, i, p.refCount);
        }
        if (!p.inFreeList && p.refCount == 0) {
            r.fail("%s preg %zu: refCount 0 but not on the free "
                   "list (leaked register)",
                   rf.cls, i);
        }
        if (p.refCount < 0) {
            r.fail("%s preg %zu: negative refCount %d", rf.cls, i,
                   p.refCount);
        }
        // A free register has no live subscribers: subscriptions die
        // with the ROB entries / eliminations that held the claims.
        if (p.inFreeList &&
            (p.srcRefs != 0 || p.dstRefs != 0 || p.elimRefs != 0)) {
            r.fail("%s preg %zu: free with live subscriptions "
                   "(src=%lld dst=%lld elim=%lld)",
                   rf.cls, i, static_cast<long long>(p.srcRefs),
                   static_cast<long long>(p.dstRefs),
                   static_cast<long long>(p.elimRefs));
        }
    }
}

void
checkCountsMatch(const char *what, const char *cls,
                 const std::vector<int64_t> &actual,
                 const std::vector<int64_t> &expected, Reporter &r)
{
    if (actual.size() != expected.size()) {
        r.fail("%s/%s: %zu registers audited against %zu expected",
               cls, what, actual.size(), expected.size());
        return;
    }
    for (size_t i = 0; i < actual.size(); ++i) {
        if (actual[i] != expected[i]) {
            r.fail("%s preg %zu: %s=%lld, ground truth %lld", cls, i,
                   what, static_cast<long long>(actual[i]),
                   static_cast<long long>(expected[i]));
        }
    }
}

void
checkAgeOrdered(const char *what, const std::vector<SeqNum> &seqs,
                Reporter &r)
{
    for (size_t i = 1; i < seqs.size(); ++i) {
        if (seqs[i] <= seqs[i - 1]) {
            r.fail("%s: seq %llu at position %zu not older than seq "
                   "%llu before it",
                   what, static_cast<unsigned long long>(seqs[i]), i,
                   static_cast<unsigned long long>(seqs[i - 1]));
        }
    }
}

void
checkScalarMatch(const char *what, uint64_t actual, uint64_t expected,
                 Reporter &r)
{
    if (actual != expected) {
        r.fail("%s=%llu, ground truth %llu", what,
               static_cast<unsigned long long>(actual),
               static_cast<unsigned long long>(expected));
    }
}

void
checkCalendarAgreement(Cycle calendarNext, Cycle scanNext,
                       Reporter &r)
{
    if (calendarNext == scanNext)
        return;
    if (scanNext < calendarNext) {
        r.fail("live state transition at cycle %llu earlier than "
               "calendar minimum %llu",
               static_cast<unsigned long long>(scanNext),
               static_cast<unsigned long long>(calendarNext));
    } else {
        r.fail("calendar event at cycle %llu matches no live state "
               "transition (next real: %llu)",
               static_cast<unsigned long long>(calendarNext),
               static_cast<unsigned long long>(scanNext));
    }
}

void
checkMemWindow(const MemAccess &acc, Cycle earliest, Reporter &r)
{
    if (acc.start < earliest) {
        r.fail("stream address phase starts at %llu, before the "
               "requested cycle %llu",
               static_cast<unsigned long long>(acc.start),
               static_cast<unsigned long long>(earliest));
    }
    if (acc.end < acc.start) {
        r.fail("stream address phase runs backwards: [%llu, %llu)",
               static_cast<unsigned long long>(acc.start),
               static_cast<unsigned long long>(acc.end));
    }
    if (acc.firstData < acc.start) {
        r.fail("first data at %llu precedes the address phase at "
               "%llu",
               static_cast<unsigned long long>(acc.firstData),
               static_cast<unsigned long long>(acc.start));
    }
    if (acc.lastData < acc.firstData) {
        r.fail("data window runs backwards: [%llu, %llu)",
               static_cast<unsigned long long>(acc.firstData),
               static_cast<unsigned long long>(acc.lastData));
    }
}

void
checkMemStatsBounds(const MemStats &s, Reporter &r)
{
    if (s.indexedConflicts > s.bankConflicts) {
        r.fail("indexedConflicts=%llu exceeds bankConflicts=%llu",
               static_cast<unsigned long long>(s.indexedConflicts),
               static_cast<unsigned long long>(s.bankConflicts));
    }
    if (s.indexedConflictCycles > s.conflictCycles) {
        r.fail("indexedConflictCycles=%llu exceeds "
               "conflictCycles=%llu",
               static_cast<unsigned long long>(
                   s.indexedConflictCycles),
               static_cast<unsigned long long>(s.conflictCycles));
    }
    if (s.tlbIndexedMisses > s.tlbMisses) {
        r.fail("tlbIndexedMisses=%llu exceeds tlbMisses=%llu",
               static_cast<unsigned long long>(s.tlbIndexedMisses),
               static_cast<unsigned long long>(s.tlbMisses));
    }
}

void
checkMemStatsMonotone(const MemStats &prev, const MemStats &cur,
                      Reporter &r)
{
    auto mono = [&](const char *what, uint64_t before,
                    uint64_t after) {
        if (after < before) {
            r.fail("%s went backwards: %llu -> %llu", what,
                   static_cast<unsigned long long>(before),
                   static_cast<unsigned long long>(after));
        }
    };
    mono("requests", prev.requests, cur.requests);
    mono("bankConflicts", prev.bankConflicts, cur.bankConflicts);
    mono("conflictCycles", prev.conflictCycles, cur.conflictCycles);
    mono("indexedConflicts", prev.indexedConflicts,
         cur.indexedConflicts);
    mono("indexedConflictCycles", prev.indexedConflictCycles,
         cur.indexedConflictCycles);
    mono("cacheHits", prev.cacheHits, cur.cacheHits);
    mono("cacheMisses", prev.cacheMisses, cur.cacheMisses);
    mono("mshrStallCycles", prev.mshrStallCycles,
         cur.mshrStallCycles);
    mono("tlbHits", prev.tlbHits, cur.tlbHits);
    mono("tlbMisses", prev.tlbMisses, cur.tlbMisses);
    mono("tlbIndexedMisses", prev.tlbIndexedMisses,
         cur.tlbIndexedMisses);
    mono("tlbMissCycles", prev.tlbMissCycles, cur.tlbMissCycles);
}

namespace
{

void
checkTlbLevel(const char *name, const TlbAuditView::Level &lvl,
              uint64_t tick, Reporter &r)
{
    if (lvl.sets == 0 && lvl.assoc == 0 && lvl.ways.empty())
        return; // level disabled
    if (lvl.ways.size() !=
        static_cast<size_t>(lvl.sets) * lvl.assoc) {
        r.fail("TLB %s: %zu ways for %u sets x %u assoc", name,
               lvl.ways.size(), lvl.sets, lvl.assoc);
        return;
    }
    if (lvl.sets == 0) {
        r.fail("TLB %s: zero sets with %zu ways", name,
               lvl.ways.size());
        return;
    }
    for (unsigned set = 0; set < lvl.sets; ++set) {
        const TlbAuditView::Way *ways =
            &lvl.ways[static_cast<size_t>(set) * lvl.assoc];
        for (unsigned w = 0; w < lvl.assoc; ++w) {
            if (!ways[w].valid)
                continue;
            if (ways[w].page % lvl.sets != set) {
                r.fail("TLB %s: page %llu stored in set %u, indexes "
                       "to set %llu",
                       name,
                       static_cast<unsigned long long>(ways[w].page),
                       set,
                       static_cast<unsigned long long>(ways[w].page %
                                                       lvl.sets));
            }
            if (ways[w].lastUse > tick) {
                r.fail("TLB %s: set %u way %u lastUse=%llu is in the "
                       "future (tick=%llu)",
                       name, set, w,
                       static_cast<unsigned long long>(
                           ways[w].lastUse),
                       static_cast<unsigned long long>(tick));
            }
            for (unsigned w2 = w + 1; w2 < lvl.assoc; ++w2) {
                if (ways[w2].valid && ways[w2].page == ways[w].page) {
                    r.fail("TLB %s: page %llu duplicated in set %u "
                           "(ways %u and %u)",
                           name,
                           static_cast<unsigned long long>(
                               ways[w].page),
                           set, w, w2);
                }
            }
        }
    }
}

} // namespace

void
checkTlbSoundness(const TlbAuditView &v, Reporter &r)
{
    checkTlbLevel("L1", v.l1, v.tick, r);
    checkTlbLevel("L2", v.l2, v.tick, r);
    if (v.indexedMisses > v.misses) {
        r.fail("TLB indexedMisses=%llu exceeds misses=%llu",
               static_cast<unsigned long long>(v.indexedMisses),
               static_cast<unsigned long long>(v.misses));
    }
    // Every lookup bumps the tick; install()'s resident-page probes
    // bump it without counting a hit, so the sum is only bounded.
    if (v.hits + v.misses > v.tick) {
        r.fail("TLB hits+misses=%llu exceeds lookups performed "
               "(tick=%llu)",
               static_cast<unsigned long long>(v.hits + v.misses),
               static_cast<unsigned long long>(v.tick));
    }
}

void
checkCpiConservation(
    Cycle cycles, const std::array<uint64_t, kNumCpiBuckets> &buckets,
    Reporter &r)
{
    uint64_t sum = 0;
    for (uint64_t b : buckets)
        sum += b;
    if (sum != cycles) {
        r.fail("CPI stack sums to %llu, run took %llu cycles "
               "(%s by %lld)",
               static_cast<unsigned long long>(sum),
               static_cast<unsigned long long>(cycles),
               sum < cycles ? "unattributed" : "overcharged",
               static_cast<long long>(
                   static_cast<int64_t>(cycles) -
                   static_cast<int64_t>(sum)));
    }
}

void
checkOccupancyConservation(
    Cycle cycles,
    const std::array<StatDistribution, kNumOccStructs> &occ,
    const std::array<StatTimeSeries, kNumOccStructs> &occ_ts,
    Reporter &r)
{
    for (size_t s = 0; s < kNumOccStructs; ++s) {
        const char *name =
            occStructName(static_cast<OccStruct>(s));
        if (occ[s].samples != 0 && occ[s].samples != cycles) {
            r.fail("occupancy[%s] holds %llu samples, run took "
                   "%llu cycles",
                   name,
                   static_cast<unsigned long long>(occ[s].samples),
                   static_cast<unsigned long long>(cycles));
        }
        if (occ_ts[s].total != 0 && occ_ts[s].total != cycles) {
            r.fail("occupancyTs[%s] holds %llu cycles of weight, "
                   "run took %llu cycles",
                   name,
                   static_cast<unsigned long long>(occ_ts[s].total),
                   static_cast<unsigned long long>(cycles));
        }
        uint64_t bucket_sum = 0;
        for (uint64_t b : occ[s].buckets)
            bucket_sum += b;
        if (bucket_sum != occ[s].samples) {
            r.fail("occupancy[%s] histogram sums to %llu, not its "
                   "%llu samples",
                   name,
                   static_cast<unsigned long long>(bucket_sum),
                   static_cast<unsigned long long>(occ[s].samples));
        }
    }
}

} // namespace oova::check
