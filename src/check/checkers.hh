/**
 * @file
 * The checker logic behind the invariant audits, as free functions
 * over plain data views.
 *
 * The OOOVA's internal state lives inside its translation unit, so
 * the simulator registers thin lambdas that snapshot the relevant
 * state (register files, expected reference counts recomputed from
 * the live ROB, queue age sequences, memory statistics) into the
 * view structures here and delegate the actual judgement to these
 * functions. That split is what makes the audit testable: the unit
 * tests build corrupted views directly and assert that each checker
 * family reports the injected violation.
 */

#ifndef OOVA_CHECK_CHECKERS_HH
#define OOVA_CHECK_CHECKERS_HH

#include <cstdint>
#include <vector>

#include "check/check.hh"
#include "common/types.hh"
#include "mem/memsystem.hh"
#include "mem/simresult.hh"
#include "mem/tlb.hh"

namespace oova::check
{

// ------------------------------------------------ register files

/** Audit-relevant state of one physical register. */
struct RegAudit
{
    int refCount = 0;
    bool inFreeList = false;
    /** Wakeup subscription counts (see PhysReg). */
    int64_t srcRefs = 0;
    int64_t dstRefs = 0;
    int64_t elimRefs = 0;
};

/** Snapshot of one class's physical file + free list. */
struct RegFileAudit
{
    /** Class letter for messages ("A", "S", "V", "M"). */
    const char *cls = "?";
    std::vector<RegAudit> regs;
    /** Free-list contents in queue order. */
    std::vector<int> freeList;
};

/**
 * Free-list conservation: every list index in range and unique, the
 * inFreeList flag agreeing with list membership, and "free" meaning
 * exactly refCount == 0 with no live wakeup subscriptions — i.e.
 * every register is exactly one of free / mapped / pending-free.
 */
void checkFreeListStructure(const RegFileAudit &rf, Reporter &r);

/**
 * Per-register counter conservation: @p actual (taken from the
 * register file) must equal @p expected (recomputed from the ground
 * truth — map tables, live ROB entries, unresolved eliminations).
 * @p what names the counter in the violation detail.
 */
void checkCountsMatch(const char *what, const char *cls,
                      const std::vector<int64_t> &actual,
                      const std::vector<int64_t> &expected,
                      Reporter &r);

// ------------------------------------------------ ages & scalars

/**
 * Age monotonicity: @p seqs (the sequence numbers of one queue in
 * iteration order) must be strictly increasing — every simulator
 * queue is filled in program order and only ever erased from, and
 * memory disambiguation relies on the wait set staying age-sorted.
 */
void checkAgeOrdered(const char *what,
                     const std::vector<SeqNum> &seqs, Reporter &r);

/** A single bookkeeping counter against its recomputed value. */
void checkScalarMatch(const char *what, uint64_t actual,
                      uint64_t expected, Reporter &r);

/**
 * Event-calendar soundness at an idle jump: the calendar's next live
 * event must agree with the ground-truth full rescan. A scan value
 * below the calendar's would mean a live state transition earlier
 * than the heap minimum (the calendar would skip it); above, a stale
 * event survived validation. kNoCycle means "no event" on both sides.
 */
void checkCalendarAgreement(Cycle calendarNext, Cycle scanNext,
                            Reporter &r);

// ------------------------------------------------ memory system

/**
 * Window sanity of one reserved stream: the address phase starts no
 * earlier than requested and does not run backwards, and data
 * arrival follows the address phase (firstData >= start,
 * lastData >= firstData).
 */
void checkMemWindow(const MemAccess &acc, Cycle earliest,
                    Reporter &r);

/**
 * Counter containment: every indexed sub-counter is bounded by its
 * total (strided derivations in MemStats subtract them, so an excess
 * would underflow into nonsense).
 */
void checkMemStatsBounds(const MemStats &s, Reporter &r);

/** All MemStats counters are cumulative: they must never decrease. */
void checkMemStatsMonotone(const MemStats &prev, const MemStats &cur,
                           Reporter &r);

/**
 * TLB structural soundness over Tlb::auditView(): set geometry
 * consistent, every valid entry in the set its page indexes to, no
 * duplicate pages within a set, LRU timestamps bounded by the tick
 * counter, and the miss counters contained (indexed <= total,
 * hits + misses <= lookups).
 */
void checkTlbSoundness(const TlbAuditView &v, Reporter &r);

// ------------------------------------------------ cycle accounting

/**
 * CPI-stack conservation: with cycle accounting enabled, every cycle
 * of the run is charged to exactly one bucket, so the buckets must
 * sum exactly to @p cycles — an attribution gap or double charge is
 * an accounting bug, not a rounding error.
 */
void checkCpiConservation(
    Cycle cycles,
    const std::array<uint64_t, kNumCpiBuckets> &buckets, Reporter &r);

/**
 * Occupancy-telemetry conservation: with sampling enabled, every
 * sampled structure's distribution receives exactly one weighted
 * sample per machine cycle — progress steps charge 1, calendar
 * jumps and the final drain charge their span in bulk — so each
 * non-empty distribution's sample count, and its time series' total
 * weight, must equal @p cycles. A mismatch means a calendar advance
 * bypassed the sampling hook (or charged twice). Distributions with
 * zero samples are structures the machine doesn't model (e.g. REF
 * has no ROB) and are exempt.
 */
void checkOccupancyConservation(
    Cycle cycles,
    const std::array<StatDistribution, kNumOccStructs> &occ,
    const std::array<StatTimeSeries, kNumOccStructs> &occ_ts,
    Reporter &r);

} // namespace oova::check

#endif // OOVA_CHECK_CHECKERS_HH
