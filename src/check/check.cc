#include "check/check.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <mutex>

#include "common/logging.hh"

namespace oova::check
{

namespace
{

/**
 * Process-wide violation tally and the stderr print lock. Sweep
 * workers audit their machines concurrently; each registry is
 * single-threaded but the aggregate count and the report stream are
 * shared.
 */
std::atomic<uint64_t> processViolations{0};
std::mutex reportMutex;

CheckLevel
parseLevel(const char *text)
{
    if (!text || !*text)
        return CheckLevel::Off;
    if (text[1] == '\0') {
        switch (text[0]) {
          case '0':
            return CheckLevel::Off;
          case '1':
            return CheckLevel::Retire;
          case '2':
            return CheckLevel::Full;
          default:
            break;
        }
    }
    warn("OOVA_CHECK=%s is not 0, 1 or 2; audits stay off", text);
    return CheckLevel::Off;
}

} // namespace

CheckLevel
levelFromEnv()
{
    static const CheckLevel level = parseLevel(getenv("OOVA_CHECK"));
    return level;
}

const char *
levelName(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off:
        return "off";
      case CheckLevel::Retire:
        return "retire";
      case CheckLevel::Full:
        return "full";
    }
    return "?";
}

void
Reporter::fail(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    reg_.record(checker_, now_, buf);
}

void
Registry::add(std::string id, uint8_t sites, CheckFn fn)
{
    checkers_.push_back({std::move(id), sites, std::move(fn)});
}

void
Registry::runSite(Site site, Cycle now)
{
    for (auto &c : checkers_) {
        if (!(c.sites & site))
            continue;
        Reporter r(*this, c.id.c_str(), now);
        c.fn(r);
    }
}

void
Registry::record(const char *checker, Cycle now, std::string detail)
{
    ++violationCount_;
    processViolations.fetch_add(1, std::memory_order_relaxed);
    if (violations_.size() < kMaxStored)
        violations_.push_back({now, checker, detail});

    // Print immediately: if the broken invariant later crashes the
    // simulation, the evidence is already out. One line, one lock
    // acquisition, so concurrent sweep workers interleave cleanly.
    std::lock_guard<std::mutex> lock(reportMutex);
    fprintf(stderr,
            "OOVA-CHECK VIOLATION cycle=%llu checker=%s detail=%s\n",
            static_cast<unsigned long long>(now), checker,
            detail.c_str());
    if (violations_.size() == kMaxStored) {
        fprintf(stderr,
                "OOVA-CHECK note: %zu violations stored; further "
                "ones are counted but not recorded\n",
                kMaxStored);
    }
}

std::string
Registry::report() const
{
    if (violationCount_ == 0)
        return "";
    std::string out =
        csprintf("OOVA-CHECK REPORT: %llu violation(s), %zu "
                 "recorded\n",
                 static_cast<unsigned long long>(violationCount_),
                 violations_.size());
    for (const auto &v : violations_) {
        out += csprintf("  cycle=%llu checker=%s detail=%s\n",
                        static_cast<unsigned long long>(v.cycle),
                        v.checker.c_str(), v.detail.c_str());
    }
    return out;
}

uint64_t
processViolationCount()
{
    return processViolations.load(std::memory_order_relaxed);
}

int
processExitCode()
{
    return processViolationCount() ? 3 : 0;
}

void
noteExternalViolations(uint64_t count)
{
    processViolations.fetch_add(count, std::memory_order_relaxed);
}

void
resetProcessViolations()
{
    processViolations.store(0, std::memory_order_relaxed);
}

} // namespace oova::check
