/**
 * @file
 * The invariant-audit framework: a registry of named checkers that
 * observe simulator state and report structural violations.
 *
 * The event-driven hot path (intrusive wakeup lists, the min-heap
 * event calendar, slab/sliding-queue storage, TLB accounting) is
 * correct only while a web of conservation laws holds — every
 * physical register is exactly one of free / mapped / pending-free,
 * subscription refcounts mirror the live ROB, no state transition
 * fires earlier than the calendar minimum. Debug asserts cover a few
 * of those laws; this subsystem makes the whole set checkable in
 * every build type, gem5-checker style: checkers are registered
 * against live simulator state and run at configurable granularity.
 *
 * Levels (OOVA_CHECK environment variable, or OooConfig::checkLevel):
 *
 *   0 (Off)    no checkers run; zero overhead beyond one branch.
 *   1 (Retire) cheap per-retire checks plus a full end-of-run audit.
 *   2 (Full)   everything: per-event checks (calendar validation at
 *              idle jumps, memory-window checks at reserve),
 *              periodic whole-state sweeps (every kAuditWindow
 *              cycles), per-retire checks, end-of-run audit.
 *
 * Checkers are strictly observe-only: simulated timing and figure
 * output are byte-identical at any level. A violation prints one
 * structured line to stderr (cycle, checker id, detail), is recorded
 * in the owning registry's report, and bumps a process-wide tally
 * that the bench drivers turn into a non-zero exit code.
 */

#ifndef OOVA_CHECK_CHECK_HH
#define OOVA_CHECK_CHECK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace oova::check
{

/** How much auditing runs (see file comment). */
enum class CheckLevel : uint8_t
{
    Off = 0,
    Retire = 1,
    Full = 2,
};

/**
 * Audit level from the OOVA_CHECK environment variable (parsed once
 * per process): 0, 1 or 2. Unset means Off; anything else warns and
 * falls back to Off.
 */
CheckLevel levelFromEnv();

/** Human-readable level name ("off", "retire", "full"). */
const char *levelName(CheckLevel level);

/**
 * The sites a checker can be invoked from, as a bitmask. The
 * simulator decides which sites fire at which level; a checker
 * declares where it is meaningful (and affordable).
 */
enum Site : uint8_t
{
    /** After a cycle that retired at least one instruction. */
    kSiteRetire = 1u << 0,
    /** Every kAuditWindow simulated cycles (whole-state sweeps). */
    kSiteWindow = 1u << 1,
    /** Hot, targeted sites: idle jumps, memory reserves. */
    kSiteEvent = 1u << 2,
    /** Once when the simulation finishes (every level above Off). */
    kSiteEnd = 1u << 3,
};

/** Cycle spacing of the kSiteWindow sweeps at level Full. */
constexpr Cycle kAuditWindow = 256;

/** One recorded invariant violation. */
struct Violation
{
    Cycle cycle = 0;
    std::string checker;
    std::string detail;
};

class Registry;

/**
 * Handed to a checker while it runs; fail() records one violation
 * against the checker's id at the current audit cycle.
 */
class Reporter
{
  public:
    /** printf-style violation detail. */
    void fail(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    Cycle now() const { return now_; }

  private:
    friend class Registry;
    Reporter(Registry &reg, const char *checker, Cycle now)
        : reg_(reg), checker_(checker), now_(now)
    {
    }

    Registry &reg_;
    const char *checker_;
    Cycle now_;
};

/**
 * One simulation's set of registered checkers. Owned by the machine
 * being audited; not thread-safe (each sweep job owns its machine
 * and its registry), but violation reporting aggregates into a
 * thread-safe process tally.
 */
class Registry
{
  public:
    using CheckFn = std::function<void(Reporter &)>;

    /** Register a checker for the sites in @p sites. */
    void add(std::string id, uint8_t sites, CheckFn fn);

    /** Run every checker registered for @p site. */
    void runSite(Site site, Cycle now);

    /**
     * A reporter for inline push-style checks (sites too hot or too
     * value-laden for a pull-based checker, e.g. validating each
     * MemAccess as reserve returns it). @p checker must outlive the
     * reporter (string literals do).
     */
    Reporter
    reporter(const char *checker, Cycle now)
    {
        return Reporter(*this, checker, now);
    }

    size_t numCheckers() const { return checkers_.size(); }

    uint64_t violationCount() const { return violationCount_; }
    /** Recorded violations (capped at kMaxStored; the count is not). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /**
     * The structured report: one "cycle=... checker=... detail=..."
     * line per recorded violation under a summary header; empty
     * string when the audit is clean.
     */
    std::string report() const;

    /** Stored-violation cap, so a hot broken invariant can't OOM. */
    static constexpr size_t kMaxStored = 64;

  private:
    friend class Reporter;
    void record(const char *checker, Cycle now, std::string detail);

    struct Checker
    {
        std::string id;
        uint8_t sites;
        CheckFn fn;
    };

    std::vector<Checker> checkers_;
    std::vector<Violation> violations_;
    uint64_t violationCount_ = 0;
};

/**
 * Process-wide violation tally, aggregated across every registry
 * (sweep workers run many machines concurrently). The bench drivers
 * map a non-zero tally to a non-zero exit code.
 */
uint64_t processViolationCount();

/** Exit code for the current tally: 0 clean, 3 on violations. */
int processExitCode();

/**
 * Fold @p count violations observed outside this process into the
 * tally. The forked sweep backend runs jobs in worker processes
 * whose tallies would otherwise die with them; every result frame
 * carries its job's violation delta, the parent sums the deltas as
 * frames arrive (so tallies survive a worker dying mid-batch and
 * requeued jobs are counted exactly once, by the frame that finally
 * delivers them) and records the total here, so processExitCode()
 * is identical however the sweep was executed — or recovered.
 */
void noteExternalViolations(uint64_t count);

/** Reset the tally (tests only). */
void resetProcessViolations();

} // namespace oova::check

#endif // OOVA_CHECK_CHECK_HH
