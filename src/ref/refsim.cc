#include "ref/refsim.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "check/check.hh"
#include "check/checkers.hh"
#include "common/logging.hh"
#include "mem/memsystem.hh"
#include "mem/tlb.hh"

namespace oova
{

namespace
{

/**
 * CPI-stack bucket for a REF issue stall. The in-order machine has
 * no rename or queues, so the stall causes map onto the shared
 * buckets: dependence waits are operand waits, WAR/WAW is the
 * machine's want of renaming, structural FU/port losses are FU
 * conflicts, the memory unit is the memory bucket, and the
 * post-branch redirect bubble is fetch-limited.
 */
CpiBucket
cpiBucketFor(StallCause cause)
{
    switch (cause) {
    case StallCause::ScalarDep:
    case StallCause::VectorDep:
        return CpiBucket::OperandWait;
    case StallCause::WarWaw:
        return CpiBucket::Rename;
    case StallCause::FuBusy:
    case StallCause::Ports:
        return CpiBucket::FuBusy;
    case StallCause::MemUnit:
        return CpiBucket::Memory;
    case StallCause::Branch:
        return CpiBucket::Fetch;
    default:
        return CpiBucket::OperandWait;
    }
}

/** Per-logical-V-register occupancy state. */
struct VRegState
{
    Cycle writeStart = 0;   ///< cycle the first element is written
    Cycle writeEnd = 0;     ///< cycle past the last element write
    bool writerIsLoad = false;
    Cycle lastReadEnd = 0;  ///< cycle past the last in-flight read
};

class RefMachine
{
  public:
    RefMachine(const Trace &trace, const RefConfig &cfg)
        : trace_(trace), cfg_(cfg), lat_(cfg.lat),
          mem_(makeMemorySystem(cfg.mem, cfg.lat.memLatency)),
          memUnitFree_(std::max(cfg.mem.memUnits, 1u), 0)
    {
        aReady_.fill(0);
        sReady_.fill(0);
        mReady_.fill(0);
        for (auto &bank : readPortFree_)
            bank.fill(0);
        writePortFree_.fill(0);
        check::CheckLevel lvl =
            cfg.checkLevel >= 0
                ? static_cast<check::CheckLevel>(
                      std::min(cfg.checkLevel, 2))
                : check::levelFromEnv();
        checkRetire_ = lvl >= check::CheckLevel::Retire;
        checkFull_ = lvl >= check::CheckLevel::Full;
    }

    SimResult run();

  private:
    Cycle &scalarReady(const RegId &r);
    Cycle vSrcAvail(const RegId &r, bool reader_is_store) const;
    void finish(Cycle c) { endCycle_ = std::max(endCycle_, c); }

    /** Level Full: audit every granted memory window (observe-only). */
    void
    auditAccess(const MemAccess &a, Cycle earliest)
    {
        if (!checkFull_)
            return;
        check::Reporter r = audit_.reporter("mem-window", earliest);
        check::checkMemWindow(a, earliest, r);
    }

    // Port constraint helpers (banked file: regs 2b and 2b+1 share
    // two read ports and one write port).
    Cycle readPortConstraint(const RegId &r) const;
    void occupyReadPort(const RegId &r, Cycle until);
    Cycle writePortConstraint(const RegId &r) const;
    void occupyWritePort(const RegId &r, Cycle until);

    const Trace &trace_;
    const RefConfig &cfg_;
    const LatencyTable &lat_;

    std::array<Cycle, kNumLogicalARegs> aReady_;
    std::array<Cycle, kNumLogicalSRegs> sReady_;
    std::array<Cycle, kNumLogicalMRegs> mReady_;
    std::array<VRegState, kNumLogicalVRegs> vreg_;

    std::array<std::array<Cycle, 2>, kNumLogicalVRegs / 2>
        readPortFree_;
    std::array<Cycle, kNumLogicalVRegs / 2> writePortFree_;

    /**
     * Earliest-free eligible vector memory unit for @p op: the
     * in-order front end stalls a vector memory instruction until
     * one of its direction's units is free. Scalar accesses slip
     * past this (as on the seed machine) and contend only inside
     * the memory model itself.
     */
    unsigned
    memUnitPick(MemOp op) const
    {
        auto [lo, hi] = memUnitRange(cfg_.mem, op);
        unsigned best = lo;
        for (unsigned u = lo + 1; u < hi; ++u)
            if (memUnitFree_[u] < memUnitFree_[best])
                best = u;
        return best;
    }

    Cycle fu1Free_ = 0;
    Cycle fu2Free_ = 0;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<Cycle> memUnitFree_;
    /** Reusable gather/scatter element-address buffer. */
    std::vector<Addr> idxScratch_;
    IntervalRecorder fu1Rec_;
    IntervalRecorder fu2Rec_;

    Cycle nextIssue_ = 0;
    Cycle endCycle_ = 0;
    std::array<uint64_t, kNumStallCauses> stallCycles_{};

    // ---- cycle accounting (observe-only; cfg.cpiStack) ----
    std::array<uint64_t, kNumCpiBuckets> cpiCycles_{};
    /** One past the previous instruction's issue cycle. */
    Cycle issueEndPrev_ = 0;

    // ---- invariant audit (observe-only; see src/check/) ----
    bool checkRetire_ = false;
    bool checkFull_ = false;
    check::Registry audit_;
};

Cycle &
RefMachine::scalarReady(const RegId &r)
{
    switch (r.cls) {
    case RegClass::A:
        return aReady_[r.idx];
    case RegClass::S:
        return sReady_[r.idx];
    case RegClass::M:
        return mReady_[r.idx];
    default:
        panic("scalarReady on register class %d",
              static_cast<int>(r.cls));
    }
}

Cycle
RefMachine::vSrcAvail(const RegId &r, bool reader_is_store) const
{
    const VRegState &st = vreg_[r.idx];
    bool chain_ok;
    if (st.writerIsLoad) {
        // The C3400 does not chain memory loads into functional
        // units (or the store unit); consumers wait for completion.
        chain_ok = cfg_.chainLoadsToFus;
    } else {
        // FU -> FU and FU -> store chaining are both supported.
        chain_ok = true;
        (void)reader_is_store;
    }
    return chain_ok ? st.writeStart + 1 : st.writeEnd;
}

Cycle
RefMachine::readPortConstraint(const RegId &r) const
{
    if (!cfg_.modelPortConflicts)
        return 0;
    const auto &bank = readPortFree_[r.idx / 2];
    return std::min(bank[0], bank[1]);
}

void
RefMachine::occupyReadPort(const RegId &r, Cycle until)
{
    if (!cfg_.modelPortConflicts)
        return;
    auto &bank = readPortFree_[r.idx / 2];
    // Take the port that frees first.
    if (bank[0] <= bank[1])
        bank[0] = until;
    else
        bank[1] = until;
}

Cycle
RefMachine::writePortConstraint(const RegId &r) const
{
    if (!cfg_.modelPortConflicts)
        return 0;
    return writePortFree_[r.idx / 2];
}

void
RefMachine::occupyWritePort(const RegId &r, Cycle until)
{
    if (!cfg_.modelPortConflicts)
        return;
    writePortFree_[r.idx / 2] = until;
}

SimResult
RefMachine::run()
{
    // Issue-time computation with stall attribution: every
    // constraint that can delay issue raises t and records why.
    struct IssuePoint
    {
        Cycle t;
        StallCause cause = StallCause::None;

        void
        raise(Cycle c, StallCause why)
        {
            if (c > t) {
                t = c;
                cause = why;
            }
        }
    };

    for (const DynInst &inst : trace_) {
        Cycle ip_base_ = nextIssue_;
        IssuePoint ip{nextIssue_};
        const OpTraits &tr = inst.traits();

        // ---- Data constraints -------------------------------------
        for (unsigned i = 0; i < inst.numSrc; ++i) {
            const RegId &r = inst.src[i];
            if (r.cls == RegClass::V) {
                ip.raise(vSrcAvail(r, tr.isStore),
                         StallCause::VectorDep);
            } else if (r.valid()) {
                ip.raise(scalarReady(r), StallCause::ScalarDep);
            }
        }
        // Gather/scatter index vectors must be complete: the memory
        // unit needs the whole index register to form addresses.
        if (inst.isIndexedMem()) {
            for (unsigned i = 0; i < inst.numSrc; ++i)
                if (inst.src[i].cls == RegClass::V)
                    ip.raise(vreg_[inst.src[i].idx].writeEnd,
                             StallCause::VectorDep);
        }

        // WAR/WAW on a vector destination: the new value's first
        // element may not be written before the previous user is
        // done with the old value. The first write happens a fixed
        // delay after issue (crossbars + latency, or the memory
        // round trip for loads), so issue may begin that much
        // earlier than the conflict clears.
        if (inst.dst.cls == RegClass::V) {
            const VRegState &d = vreg_[inst.dst.idx];
            Cycle write_delay;
            if (inst.isLoad()) {
                write_delay = lat_.vectorStartup + lat_.memLatency +
                              lat_.writeXbarVector;
            } else {
                write_delay = lat_.vectorStartup + lat_.readXbar +
                              lat_.opLatency(inst.op) +
                              lat_.writeXbarVector;
            }
            Cycle clear = std::max(d.lastReadEnd + 1, d.writeEnd);
            if (clear > write_delay)
                ip.raise(clear - write_delay, StallCause::WarWaw);
        }

        // ---- Structural constraints and execution -----------------
        if (inst.isVectorArith()) {
            int fu;
            if (tr.fu2Only)
                fu = 2;
            else
                fu = (fu1Free_ <= fu2Free_) ? 1 : 2;
            ip.raise(fu == 1 ? fu1Free_ : fu2Free_,
                     StallCause::FuBusy);

            for (unsigned i = 0; i < inst.numSrc; ++i)
                if (inst.src[i].cls == RegClass::V)
                    ip.raise(readPortConstraint(inst.src[i]),
                             StallCause::Ports);
            if (inst.dst.cls == RegClass::V)
                ip.raise(writePortConstraint(inst.dst),
                         StallCause::Ports);

            Cycle t = ip.t;
            Cycle exec = t + lat_.vectorStartup;
            Cycle read_done = exec + inst.vl;
            Cycle write_start = exec + lat_.readXbar +
                                lat_.opLatency(inst.op) +
                                lat_.writeXbarVector;
            Cycle write_end = write_start + inst.vl;

            if (fu == 1) {
                fu1Free_ = read_done;
                fu1Rec_.add(t, read_done);
            } else {
                fu2Free_ = read_done;
                fu2Rec_.add(t, read_done);
            }
            for (unsigned i = 0; i < inst.numSrc; ++i) {
                const RegId &r = inst.src[i];
                if (r.cls == RegClass::V) {
                    vreg_[r.idx].lastReadEnd =
                        std::max(vreg_[r.idx].lastReadEnd, read_done);
                    occupyReadPort(r, read_done);
                }
            }
            if (inst.dst.cls == RegClass::V) {
                VRegState &d = vreg_[inst.dst.idx];
                d.writeStart = write_start;
                d.writeEnd = write_end;
                d.writerIsLoad = false;
                occupyWritePort(inst.dst, write_end);
                finish(write_end);
            } else if (inst.dst.cls == RegClass::M) {
                mReady_[inst.dst.idx] = write_end;
                finish(write_end);
            } else if (inst.dst.valid()) {
                // VReduce: the scalar result needs every element.
                Cycle ready = exec + lat_.readXbar +
                              lat_.opLatency(inst.op) + inst.vl +
                              lat_.writeXbarScalar;
                scalarReady(inst.dst) = ready;
                finish(ready);
            }
        } else if (inst.isVectorMem()) {
            MemOp mop = tr.isStore ? MemOp::Store : MemOp::Load;
            unsigned mu = memUnitPick(mop);
            ip.raise(memUnitFree_[mu], StallCause::MemUnit);
            // Gather/scatter reserve their real per-element
            // addresses (the whole index vector is available at
            // issue), so bank conflicts follow the actual pattern.
            auto reserveStream = [&](Cycle at) {
                MemAccess a;
                if (inst.isIndexedMem()) {
                    indexedElemAddrs(inst, idxScratch_);
                    a = mem_->reserve(at, idxScratch_, mop);
                } else {
                    a = mem_->reserve(at, inst.addr,
                                      inst.strideBytes, inst.vl,
                                      mop);
                }
                auditAccess(a, at);
                return a;
            };
            if (inst.isLoad()) {
                if (inst.dst.cls == RegClass::V)
                    ip.raise(writePortConstraint(inst.dst),
                             StallCause::Ports);
                Cycle t = ip.t;
                MemAccess a = reserveStream(t + lat_.vectorStartup);
                memUnitFree_[mu] = a.end;
                VRegState &d = vreg_[inst.dst.idx];
                d.writeStart = a.firstData + lat_.writeXbarVector;
                d.writeEnd = a.lastData + lat_.writeXbarVector;
                d.writerIsLoad = true;
                occupyWritePort(inst.dst, d.writeEnd);
                finish(d.writeEnd);
            } else {
                // Store: data register is src[0].
                const RegId &data = inst.src[0];
                ip.raise(readPortConstraint(data),
                         StallCause::Ports);
                Cycle t = ip.t;
                MemAccess a = reserveStream(t + lat_.vectorStartup);
                memUnitFree_[mu] = a.end;
                Cycle read_done = a.end;
                vreg_[data.idx].lastReadEnd =
                    std::max(vreg_[data.idx].lastReadEnd, read_done);
                occupyReadPort(data, read_done);
                finish(read_done);
            }
        } else if (inst.isMem()) {
            // Scalar memory.
            Cycle t = ip.t;
            if (inst.isLoad()) {
                MemAccess a = mem_->reserve(t, inst.addr,
                                            inst.elemSize, 1,
                                            MemOp::Load);
                auditAccess(a, t);
                Cycle ready = a.firstData + lat_.writeXbarScalar;
                scalarReady(inst.dst) = ready;
                finish(ready);
            } else {
                MemAccess a = mem_->reserve(t, inst.addr,
                                            inst.elemSize, 1,
                                            MemOp::Store);
                auditAccess(a, t);
                finish(a.start + 1);
            }
        } else if (inst.isBranch()) {
            Cycle t = ip.t;
            Cycle resolve = t + lat_.opLatency(inst.op);
            finish(resolve);
            if (inst.taken) {
                nextIssue_ = std::max(nextIssue_,
                                      t + 1 + cfg_.takenBranchPenalty);
            }
        } else {
            // Scalar ALU / move / SetVL / SetVS.
            Cycle t = ip.t;
            if (inst.dst.valid()) {
                Cycle ready = t + lat_.opLatency(inst.op) +
                              lat_.writeXbarScalar;
                scalarReady(inst.dst) = ready;
                finish(ready);
            } else {
                finish(t + 1);
            }
        }

        if (ip.t > ip_base_ && ip.cause != StallCause::None) {
            stallCycles_[static_cast<unsigned>(ip.cause)] +=
                ip.t - ip_base_;
        }
        if (cfg_.cpiStack) {
            // Charge the issue timeline gap-free: the redirect
            // bubble folded into nextIssue_ by the previous taken
            // branch is fetch-limited, the raise()-tracked stall
            // goes to its bucket, and the issue cycle itself
            // commits one instruction. Chaining the intervals off
            // issueEndPrev_ is what makes the stack sum to cycles
            // exactly.
            cpiCycles_[static_cast<unsigned>(CpiBucket::Fetch)] +=
                ip_base_ - issueEndPrev_;
            cpiCycles_[static_cast<unsigned>(
                cpiBucketFor(ip.cause))] += ip.t - ip_base_;
            ++cpiCycles_[static_cast<unsigned>(CpiBucket::Commit)];
            issueEndPrev_ = ip.t + 1;
        }
        nextIssue_ = std::max(nextIssue_, ip.t + 1);
        finish(ip.t + 1);
    }

    if (cfg_.cpiStack) {
        // After the last issue the vector units and memory drain.
        cpiCycles_[static_cast<unsigned>(CpiBucket::Drain)] +=
            endCycle_ - issueEndPrev_;
    }

    // Occupancy telemetry (observe-only): REF is in-order with no
    // ROB, queues, renaming, or cache, so the only structure it
    // models is concurrently-busy memory units — derived from the
    // same busy-interval sweep the OOOVA uses, so the occupancy
    // figure compares like with like.
    std::array<StatDistribution, kNumOccStructs> occ{};
    std::array<StatTimeSeries, kNumOccStructs> occTs{};
    bool telemetry = cfg_.telemetry || telemetryForced();
    if (telemetry) {
        size_t mu = static_cast<size_t>(OccStruct::MemUnits);
        occ[mu].setCapacity(std::max(cfg_.mem.memUnits, 1u));
        accumulateIntervalDepth(mem_->busy(), endCycle_, occ[mu],
                                occTs[mu]);
    }

    // End-of-run audit: memory-counter containment and TLB
    // structural soundness. Observe-only; violations go to stderr
    // and the process-wide tally (check::processExitCode()).
    if (checkRetire_) {
        check::Reporter r = audit_.reporter("mem-stats", endCycle_);
        check::checkMemStatsBounds(mem_->stats(), r);
        if (const Tlb *tlb = mem_->tlb()) {
            check::Reporter tr2 = audit_.reporter("tlb-lru",
                                                  endCycle_);
            check::checkTlbSoundness(tlb->auditView(), tr2);
        }
        if (cfg_.cpiStack) {
            check::Reporter cr = audit_.reporter("cpi-conservation",
                                                 endCycle_);
            check::checkCpiConservation(endCycle_, cpiCycles_, cr);
        }
        if (telemetry) {
            check::Reporter oc = audit_.reporter(
                "occupancy-conservation", endCycle_);
            check::checkOccupancyConservation(endCycle_, occ, occTs,
                                              oc);
        }
    }

    SimResult res;
    res.program = trace_.name();
    res.machine = "REF" + cfg_.mem.label();
    res.cycles = endCycle_;
    res.instructions = trace_.size();
    res.fu1BusyCycles = fu1Rec_.busyCycles();
    res.fu2BusyCycles = fu2Rec_.busyCycles();
    res.memBusyCycles = mem_->busy().busyCycles();
    res.memRequests = mem_->stats().requests;
    res.memBankConflicts = mem_->stats().bankConflicts;
    res.memConflictCycles = mem_->stats().conflictCycles;
    res.memIndexedConflicts = mem_->stats().indexedConflicts;
    res.memIndexedConflictCycles = mem_->stats().indexedConflictCycles;
    res.cacheHits = mem_->stats().cacheHits;
    res.cacheMisses = mem_->stats().cacheMisses;
    res.mshrStallCycles = mem_->stats().mshrStallCycles;
    res.tlbHits = mem_->stats().tlbHits;
    res.tlbMisses = mem_->stats().tlbMisses;
    res.tlbIndexedMisses = mem_->stats().tlbIndexedMisses;
    res.tlbMissCycles = mem_->stats().tlbMissCycles;
    res.stallCycles = stallCycles_;
    res.cpiCycles = cpiCycles_;
    res.occupancy = occ;
    res.occupancyTs = occTs;
    res.stateCycles = UnitStateBreakdown::compute(
        fu2Rec_, fu1Rec_, mem_->busy(), endCycle_);
    return res;
}

} // namespace

SimResult
simulateRef(const Trace &trace, const RefConfig &cfg)
{
    RefMachine machine(trace, cfg);
    return machine.run();
}

} // namespace oova
