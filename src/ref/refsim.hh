/**
 * @file
 * The reference architecture simulator: an in-order vector machine
 * modeled on the Convex C3400 (paper section 2.1).
 *
 *  - the scalar unit issues at most one instruction per cycle, in
 *    program order, blocking on every hazard;
 *  - the vector unit has FU2 (general purpose), FU1 (everything but
 *    multiply/divide/sqrt) and one memory unit;
 *  - 8 architected vector registers; pairs of registers form a bank
 *    sharing two read ports and one write port;
 *  - chaining from functional units to functional units and to the
 *    store unit, but no chaining of memory loads into functional
 *    units;
 *  - one shared address bus, fixed memory latency, one element per
 *    cycle.
 *
 * The model is analytic: each instruction's issue cycle is the max
 * of its structural and data constraints, which is exactly
 * equivalent to cycle-stepping a blocking single-issue front end,
 * and busy intervals are accumulated for the figure-3/7 state
 * breakdown.
 */

#ifndef OOVA_REF_REFSIM_HH
#define OOVA_REF_REFSIM_HH

#include "isa/latency.hh"
#include "mem/memsystem.hh"
#include "mem/simresult.hh"
#include "trace/trace.hh"

namespace oova
{

/** Configuration of the reference machine. */
struct RefConfig
{
    LatencyTable lat = LatencyTable::refDefaults();

    /**
     * Model the banked V register file port conflicts dynamically.
     * Off by default: on the real C3400 "the compiler is
     * responsible for scheduling vector instructions and allocating
     * vector registers so that no port conflicts arise" (paper
     * section 2.1), and our generator does not perform that
     * port-aware allocation, so charging the conflicts to REF would
     * penalize it for stalls the real machine never saw. The
     * bench/abl_ports ablation turns this on to quantify what
     * port-oblivious allocation would cost.
     */
    bool modelPortConflicts = false;

    /** Allow load->FU chaining (off on the real C3400). */
    bool chainLoadsToFus = false;

    /** Pipeline depth charged on taken branches. */
    unsigned takenBranchPenalty = 3;

    /**
     * Invariant-audit level (src/check/), mirroring
     * OooConfig::checkLevel: -1 inherits OOVA_CHECK; 0/1/2 force.
     * REF audits its memory system and TLB; checkers are
     * observe-only and never change simulated timing.
     */
    int checkLevel = -1;

    /**
     * Cycle accounting (CPI stack), mirroring OooConfig::cpiStack:
     * charge every cycle to one CpiBucket (SimResult::cpiCycles).
     * Observe-only; never changes simulated timing or output.
     */
    bool cpiStack = false;

    /**
     * Occupancy telemetry, mirroring OooConfig::telemetry. REF has
     * no out-of-order structures; it fills only the mem-units
     * occupancy (concurrently busy memory units, derived from the
     * busy-interval sweep at end of run). Observe-only.
     */
    bool telemetry = false;

    /**
     * The memory hierarchy (default: the paper's flat address bus;
     * see mem/memsystem.hh). Non-default models are reflected in the
     * result's machine label, e.g. "REF/mb8p1".
     */
    MemConfig mem;
};

/** Run @p trace through the reference machine. */
SimResult simulateRef(const Trace &trace, const RefConfig &cfg = {});

} // namespace oova

#endif // OOVA_REF_REFSIM_HH
