/**
 * @file
 * Architected register classes of the Convex C3400-like ISA.
 *
 * The machine has four register classes, mirroring the paper:
 *  - A: 8 address registers (scalar unit)
 *  - S: 8 scalar registers (scalar unit)
 *  - V: 8 vector registers of up to 128 64-bit elements
 *  - M: 1 vector-mask register
 * Renaming (in the OOOVA) maps each class onto its own physical
 * register file with its own free list.
 */

#ifndef OOVA_ISA_REGISTERS_HH
#define OOVA_ISA_REGISTERS_HH

#include <cstdint>

namespace oova
{

/** The four architected register classes (plus None for "no reg"). */
enum class RegClass : uint8_t
{
    A,      ///< A registers (addresses, loop counters)
    S,      ///< S registers (scalar floating point / integer)
    V,      ///< V registers (128 x 64-bit elements)
    M,      ///< vector mask register(s)
    None,   ///< absent operand
};

constexpr unsigned kNumRegClasses = 4;

/** Architected (logical) register counts per class. */
constexpr unsigned kNumLogicalARegs = 8;
constexpr unsigned kNumLogicalSRegs = 8;
constexpr unsigned kNumLogicalVRegs = 8;
constexpr unsigned kNumLogicalMRegs = 1;

/** Maximum elements held by one vector register. */
constexpr unsigned kMaxVectorLength = 128;

/** Size in bytes of one vector element (64-bit machine words). */
constexpr unsigned kElemBytes = 8;

/** Number of architected registers in a class. */
constexpr unsigned
numLogicalRegs(RegClass cls)
{
    switch (cls) {
    case RegClass::A:
        return kNumLogicalARegs;
    case RegClass::S:
        return kNumLogicalSRegs;
    case RegClass::V:
        return kNumLogicalVRegs;
    case RegClass::M:
        return kNumLogicalMRegs;
    default:
        return 0;
    }
}

/** One-letter class prefix used by the disassembler. */
constexpr char
regClassPrefix(RegClass cls)
{
    switch (cls) {
    case RegClass::A:
        return 'a';
    case RegClass::S:
        return 's';
    case RegClass::V:
        return 'v';
    case RegClass::M:
        return 'm';
    default:
        return '?';
    }
}

/** An architected register operand: class + index within class. */
struct RegId
{
    RegClass cls = RegClass::None;
    uint8_t idx = 0;

    constexpr RegId() = default;
    constexpr RegId(RegClass c, uint8_t i) : cls(c), idx(i) {}

    constexpr bool valid() const { return cls != RegClass::None; }

    constexpr bool
    operator==(const RegId &other) const
    {
        return cls == other.cls && idx == other.idx;
    }
};

/** Convenience constructors for operands. */
constexpr RegId
aReg(uint8_t i)
{
    return RegId(RegClass::A, i);
}

constexpr RegId
sReg(uint8_t i)
{
    return RegId(RegClass::S, i);
}

constexpr RegId
vReg(uint8_t i)
{
    return RegId(RegClass::V, i);
}

constexpr RegId
mReg(uint8_t i)
{
    return RegId(RegClass::M, i);
}

} // namespace oova

#endif // OOVA_ISA_REGISTERS_HH
