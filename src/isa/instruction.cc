#include "isa/instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace oova
{

std::pair<Addr, Addr>
DynInst::memRange() const
{
    sim_assert(isMem(), "memRange() on non-memory op %s", opName(op));
    if (isIndexedMem())
        return {addr, addr + regionBytes};
    if (!isVector())
        return {addr, addr + elemSize};

    int64_t span = static_cast<int64_t>(vl - 1) * strideBytes;
    if (span >= 0)
        return {addr, addr + static_cast<Addr>(span) + elemSize};
    // Negative stride: the last element has the lowest address.
    return {addr - static_cast<Addr>(-span),
            addr + elemSize};
}

namespace
{

std::string
regStr(const RegId &r)
{
    if (!r.valid())
        return "-";
    return std::string(1, regClassPrefix(r.cls)) + std::to_string(r.idx);
}

} // namespace

std::string
DynInst::toString() const
{
    std::ostringstream os;
    os << opName(op);
    if (dst.valid())
        os << " " << regStr(dst);
    for (unsigned i = 0; i < numSrc; ++i)
        os << (i == 0 && !dst.valid() ? " " : ", ") << regStr(src[i]);
    if (isMem()) {
        os << " @0x" << std::hex << addr << std::dec;
        if (isVector())
            os << " vl=" << vl << " vs=" << strideBytes;
        if (isSpill)
            os << " [spill]";
    } else if (isVector()) {
        os << " vl=" << vl;
    }
    if (isBranch())
        os << (taken ? " T" : " N");
    return os.str();
}

DynInst
makeVArith(Opcode op, RegId dst, RegId src_a, RegId src_b, uint16_t vl)
{
    sim_assert(traits(op).isVector && !traits(op).isMem,
               "%s is not vector arithmetic", opName(op));
    DynInst inst;
    inst.op = op;
    inst.dst = dst;
    if (src_a.valid())
        inst.addSrc(src_a);
    if (src_b.valid())
        inst.addSrc(src_b);
    inst.vl = vl;
    return inst;
}

DynInst
makeVLoad(RegId dst, RegId base_reg, Addr addr, int64_t stride_bytes,
          uint16_t vl, bool is_spill)
{
    DynInst inst;
    inst.op = Opcode::VLoad;
    inst.dst = dst;
    if (base_reg.valid())
        inst.addSrc(base_reg);
    inst.addr = addr;
    inst.strideBytes = stride_bytes;
    inst.vl = vl;
    inst.isSpill = is_spill;
    return inst;
}

DynInst
makeVStore(RegId data, RegId base_reg, Addr addr, int64_t stride_bytes,
           uint16_t vl, bool is_spill)
{
    DynInst inst;
    inst.op = Opcode::VStore;
    inst.addSrc(data);
    if (base_reg.valid())
        inst.addSrc(base_reg);
    inst.addr = addr;
    inst.strideBytes = stride_bytes;
    inst.vl = vl;
    inst.isSpill = is_spill;
    return inst;
}

DynInst
makeScalar(Opcode op, RegId dst, RegId src_a, RegId src_b)
{
    DynInst inst;
    inst.op = op;
    inst.dst = dst;
    if (src_a.valid())
        inst.addSrc(src_a);
    if (src_b.valid())
        inst.addSrc(src_b);
    return inst;
}

DynInst
makeSLoad(RegId dst, RegId base_reg, Addr addr, bool is_spill)
{
    DynInst inst;
    inst.op = Opcode::SLoad;
    inst.dst = dst;
    if (base_reg.valid())
        inst.addSrc(base_reg);
    inst.addr = addr;
    inst.vl = 1;
    inst.isSpill = is_spill;
    return inst;
}

DynInst
makeSStore(RegId data, RegId base_reg, Addr addr, bool is_spill)
{
    DynInst inst;
    inst.op = Opcode::SStore;
    inst.addSrc(data);
    if (base_reg.valid())
        inst.addSrc(base_reg);
    inst.addr = addr;
    inst.vl = 1;
    inst.isSpill = is_spill;
    return inst;
}

DynInst
makeBranch(RegId cond, bool taken, Addr target)
{
    DynInst inst;
    inst.op = Opcode::Branch;
    if (cond.valid())
        inst.addSrc(cond);
    inst.taken = taken;
    inst.target = target;
    return inst;
}

DynInst
makeCall(Addr target)
{
    DynInst inst;
    inst.op = Opcode::Call;
    inst.taken = true;
    inst.target = target;
    return inst;
}

DynInst
makeRet(Addr target)
{
    DynInst inst;
    inst.op = Opcode::Ret;
    inst.taken = true;
    inst.target = target;
    return inst;
}

} // namespace oova
