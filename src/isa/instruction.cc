#include "isa/instruction.hh"

#include <numeric>
#include <sstream>

#include "common/logging.hh"

namespace oova
{

namespace
{

/** splitmix64: scrambles the per-instance seed into placements. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::vector<Addr>
indexedElemAddrs(const DynInst &di)
{
    std::vector<Addr> out;
    indexedElemAddrs(di, out);
    return out;
}

void
indexedElemAddrs(const DynInst &di, std::vector<Addr> &out)
{
    sim_assert(di.isIndexedMem(),
               "indexedElemAddrs() on non-indexed op %s", opName(di.op));
    unsigned esz = std::max<unsigned>(di.elemSize, 1);
    uint64_t words = std::max<uint64_t>(di.regionBytes / esz, 1);
    unsigned vl = di.vl;

    out.clear();
    // A zero-length gather/scatter reserves nothing, matching the
    // strided path's zero-element no-op.
    if (vl == 0)
        return;
    out.reserve(vl);
    switch (di.idxPattern) {
    case IndexPattern::None:
        // Pre-pattern behavior: a contiguous word walk of the region.
        for (unsigned i = 0; i < vl; ++i)
            out.push_back(di.addr + static_cast<Addr>(i) * esz);
        break;
    case IndexPattern::Permutation: {
        // Window placed on an 8-word boundary so repeated gathers
        // continue the same arithmetic bank walk; step odd (co-prime
        // with any power-of-two bank count) and co-prime with vl
        // (so it really is a permutation of the window).
        uint64_t step = di.idxParam ? (di.idxParam | 1) : 5;
        while (std::gcd<uint64_t>(step, vl) != 1)
            step += 2;
        uint64_t window = 0;
        if (words > vl)
            window = (mix64(di.idxSeed) % ((words - vl) / 8 + 1)) * 8;
        for (unsigned i = 0; i < vl; ++i) {
            uint64_t w = window + (static_cast<uint64_t>(i) * step) % vl;
            out.push_back(di.addr + (w % words) * esz);
        }
        break;
    }
    case IndexPattern::CongruentMod: {
        uint64_t m = std::max<uint64_t>(di.idxParam, 1);
        // Wrap within the largest multiple of m that fits the
        // region, so wrapped indices keep the residue class.
        uint64_t span = words - words % m;
        if (span < m)
            span = words;
        uint64_t c = mix64(di.idxSeed) % m;
        for (unsigned i = 0; i < vl; ++i) {
            uint64_t w = (c + static_cast<uint64_t>(i) * m) % span;
            out.push_back(di.addr + w * esz);
        }
        break;
    }
    case IndexPattern::Random: {
        uint64_t x = di.idxSeed | 1;
        for (unsigned i = 0; i < vl; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.push_back(di.addr + (x % words) * esz);
        }
        break;
    }
    }
}

std::pair<Addr, Addr>
DynInst::memRange() const
{
    sim_assert(isMem(), "memRange() on non-memory op %s", opName(op));
    if (isIndexedMem())
        return {addr, addr + regionBytes};
    if (!isVector())
        return {addr, addr + elemSize};

    int64_t span = static_cast<int64_t>(vl - 1) * strideBytes;
    if (span >= 0)
        return {addr, addr + static_cast<Addr>(span) + elemSize};
    // Negative stride: the last element has the lowest address.
    return {addr - static_cast<Addr>(-span),
            addr + elemSize};
}

namespace
{

std::string
regStr(const RegId &r)
{
    if (!r.valid())
        return "-";
    return std::string(1, regClassPrefix(r.cls)) + std::to_string(r.idx);
}

} // namespace

std::string
DynInst::toString() const
{
    std::ostringstream os;
    os << opName(op);
    if (dst.valid())
        os << " " << regStr(dst);
    for (unsigned i = 0; i < numSrc; ++i)
        os << (i == 0 && !dst.valid() ? " " : ", ") << regStr(src[i]);
    if (isMem()) {
        os << " @0x" << std::hex << addr << std::dec;
        if (isVector())
            os << " vl=" << vl << " vs=" << strideBytes;
        if (isSpill)
            os << " [spill]";
    } else if (isVector()) {
        os << " vl=" << vl;
    }
    if (isBranch())
        os << (taken ? " T" : " N");
    return os.str();
}

DynInst
makeVArith(Opcode op, RegId dst, RegId src_a, RegId src_b, uint16_t vl)
{
    sim_assert(traits(op).isVector && !traits(op).isMem,
               "%s is not vector arithmetic", opName(op));
    DynInst inst;
    inst.op = op;
    inst.dst = dst;
    if (src_a.valid())
        inst.addSrc(src_a);
    if (src_b.valid())
        inst.addSrc(src_b);
    inst.vl = vl;
    return inst;
}

DynInst
makeVLoad(RegId dst, RegId base_reg, Addr addr, int64_t stride_bytes,
          uint16_t vl, bool is_spill)
{
    DynInst inst;
    inst.op = Opcode::VLoad;
    inst.dst = dst;
    if (base_reg.valid())
        inst.addSrc(base_reg);
    inst.addr = addr;
    inst.strideBytes = stride_bytes;
    inst.vl = vl;
    inst.isSpill = is_spill;
    return inst;
}

DynInst
makeVStore(RegId data, RegId base_reg, Addr addr, int64_t stride_bytes,
           uint16_t vl, bool is_spill)
{
    DynInst inst;
    inst.op = Opcode::VStore;
    inst.addSrc(data);
    if (base_reg.valid())
        inst.addSrc(base_reg);
    inst.addr = addr;
    inst.strideBytes = stride_bytes;
    inst.vl = vl;
    inst.isSpill = is_spill;
    return inst;
}

DynInst
makeScalar(Opcode op, RegId dst, RegId src_a, RegId src_b)
{
    DynInst inst;
    inst.op = op;
    inst.dst = dst;
    if (src_a.valid())
        inst.addSrc(src_a);
    if (src_b.valid())
        inst.addSrc(src_b);
    return inst;
}

DynInst
makeSLoad(RegId dst, RegId base_reg, Addr addr, bool is_spill)
{
    DynInst inst;
    inst.op = Opcode::SLoad;
    inst.dst = dst;
    if (base_reg.valid())
        inst.addSrc(base_reg);
    inst.addr = addr;
    inst.vl = 1;
    inst.isSpill = is_spill;
    return inst;
}

DynInst
makeSStore(RegId data, RegId base_reg, Addr addr, bool is_spill)
{
    DynInst inst;
    inst.op = Opcode::SStore;
    inst.addSrc(data);
    if (base_reg.valid())
        inst.addSrc(base_reg);
    inst.addr = addr;
    inst.vl = 1;
    inst.isSpill = is_spill;
    return inst;
}

DynInst
makeBranch(RegId cond, bool taken, Addr target)
{
    DynInst inst;
    inst.op = Opcode::Branch;
    if (cond.valid())
        inst.addSrc(cond);
    inst.taken = taken;
    inst.target = target;
    return inst;
}

DynInst
makeCall(Addr target)
{
    DynInst inst;
    inst.op = Opcode::Call;
    inst.taken = true;
    inst.target = target;
    return inst;
}

DynInst
makeRet(Addr target)
{
    DynInst inst;
    inst.op = Opcode::Ret;
    inst.taken = true;
    inst.target = target;
    return inst;
}

} // namespace oova
