#include "isa/opcodes.hh"

namespace oova
{

const char *
opName(Opcode op)
{
    return traits(op).name;
}

} // namespace oova
