#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace oova
{

namespace
{

// Columns: name, isVector, isMem, isLoad, isStore, isBranch,
//          isControl, fu2Only, writesMask, lat
constexpr OpTraits kTraits[kNumOpcodes] = {
    {"sadd",    false, false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"smul",    false, false, false, false, false, false, false, false,
     LatClass::Mul},
    {"sdiv",    false, false, false, false, false, false, false, false,
     LatClass::DivSqrt},
    {"smove",   false, false, false, false, false, false, false, false,
     LatClass::Move},
    {"sload",   false, true,  true,  false, false, false, false, false,
     LatClass::Mem},
    {"sstore",  false, true,  false, true,  false, false, false, false,
     LatClass::Mem},
    {"branch",  false, false, false, false, true,  false, false, false,
     LatClass::AddLogic},
    {"call",    false, false, false, false, true,  false, false, false,
     LatClass::AddLogic},
    {"ret",     false, false, false, false, true,  false, false, false,
     LatClass::AddLogic},
    {"setvl",   false, false, false, false, false, true,  false, false,
     LatClass::Move},
    {"setvs",   false, false, false, false, false, true,  false, false,
     LatClass::Move},
    {"vadd",    true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vmul",    true,  false, false, false, false, false, true,  false,
     LatClass::Mul},
    {"vdiv",    true,  false, false, false, false, false, true,  false,
     LatClass::DivSqrt},
    {"vsqrt",   true,  false, false, false, false, false, true,  false,
     LatClass::DivSqrt},
    {"vlogic",  true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vshift",  true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vcmp",    true,  false, false, false, false, false, false, true,
     LatClass::AddLogic},
    {"vmerge",  true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vreduce", true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vload",   true,  true,  true,  false, false, false, false, false,
     LatClass::Mem},
    {"vstore",  true,  true,  false, true,  false, false, false, false,
     LatClass::Mem},
    {"vgather", true,  true,  true,  false, false, false, false, false,
     LatClass::Mem},
    {"vscatter", true, true,  false, true,  false, false, false, false,
     LatClass::Mem},
};

} // namespace

const OpTraits &
traits(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    sim_assert(idx < kNumOpcodes, "bad opcode %u", idx);
    return kTraits[idx];
}

const char *
opName(Opcode op)
{
    return traits(op).name;
}

} // namespace oova
