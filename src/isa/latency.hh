/**
 * @file
 * Configurable functional-unit latencies (the paper's Table 1).
 *
 * The scanned paper's Table 1 is partially illegible, so these are
 * reconstructed defaults consistent with the legible fragments
 * ("write x-bar 1|2", "3 4/9" patterns) and with Convex C34xx
 * descriptions in the authors' related work. Everything is a knob;
 * the bench binaries print the values in force.
 */

#ifndef OOVA_ISA_LATENCY_HH
#define OOVA_ISA_LATENCY_HH

#include "isa/opcodes.hh"

namespace oova
{

/** Cycle counts for each latency class plus crossbar/startup costs. */
struct LatencyTable
{
    unsigned readXbar = 1;        ///< register-file read crossbar
    unsigned writeXbarVector = 2; ///< vector write crossbar
    unsigned writeXbarScalar = 1; ///< scalar write path
    unsigned vectorStartup = 1;   ///< 1 in REF, 0 in OOOVA (Table 1 *)
    unsigned moveLat = 1;
    unsigned addLogic = 3;        ///< add / logic / shift / compare
    unsigned mul = 4;
    unsigned divSqrt = 9;
    unsigned memLatency = 50;     ///< main memory latency (swept)
    unsigned branchMispredict = 3;///< REF taken-branch / OOOVA redirect

    /** Execution latency of an op, excluding crossbars and memory. */
    unsigned
    opLatency(Opcode op) const
    {
        switch (traits(op).lat) {
        case LatClass::Move:
            return moveLat;
        case LatClass::AddLogic:
            return addLogic;
        case LatClass::Mul:
            return mul;
        case LatClass::DivSqrt:
            return divSqrt;
        case LatClass::Mem:
            return memLatency;
        }
        return 1;
    }

    /** The defaults used for the reference (in-order) machine. */
    static LatencyTable
    refDefaults()
    {
        LatencyTable t;
        t.vectorStartup = 1;
        return t;
    }

    /** The defaults used for the OOOVA. */
    static LatencyTable
    oooDefaults()
    {
        LatencyTable t;
        t.vectorStartup = 0;
        return t;
    }
};

} // namespace oova

#endif // OOVA_ISA_LATENCY_HH
