/**
 * @file
 * Opcode set and static opcode traits.
 *
 * The opcode vocabulary is the minimum needed to reproduce the
 * paper's timing behaviour: what matters to both simulators is an
 * instruction's functional-unit class, latency class and memory
 * behaviour, not its exact semantics. FU2 executes every vector
 * operation; FU1 executes everything except multiply, divide and
 * square root (paper section 2.1).
 */

#ifndef OOVA_ISA_OPCODES_HH
#define OOVA_ISA_OPCODES_HH

#include <cstdint>

namespace oova
{

enum class Opcode : uint8_t
{
    // Scalar computation (A or S class chosen by the dest operand).
    SAdd,     ///< scalar add/sub/logic
    SMul,     ///< scalar multiply
    SDiv,     ///< scalar divide / sqrt
    SMove,    ///< scalar register move / immediate load
    // Scalar memory.
    SLoad,
    SStore,
    // Control.
    Branch,   ///< conditional or unconditional branch
    Call,     ///< subroutine call (pushes the return stack)
    Ret,      ///< subroutine return (pops the return stack)
    SetVL,    ///< write the vector length register
    SetVS,    ///< write the vector stride register
    // Vector arithmetic.
    VAdd,     ///< vector add/sub
    VMul,     ///< vector multiply (FU2 only)
    VDiv,     ///< vector divide (FU2 only)
    VSqrt,    ///< vector square root (FU2 only)
    VLogic,   ///< vector logical ops
    VShift,   ///< vector shifts
    VCmp,     ///< vector compare, writes a mask register
    VMerge,   ///< vector merge under mask
    VReduce,  ///< reduction: vector source, scalar dest
    // Vector memory.
    VLoad,    ///< unit or constant stride load
    VStore,   ///< unit or constant stride store
    VGather,  ///< indexed load
    VScatter, ///< indexed store
    NumOpcodes,
};

constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/** Latency classes; cycle counts live in LatencyTable. */
enum class LatClass : uint8_t
{
    Move,     ///< register move / control
    AddLogic, ///< add, logic, shift, compare, merge
    Mul,
    DivSqrt,
    Mem,      ///< memory access (latency comes from the mem model)
};

/** Static properties of one opcode. */
struct OpTraits
{
    const char *name;
    bool isVector;  ///< executes in the vector unit / uses V regs
    bool isMem;
    bool isLoad;
    bool isStore;
    bool isBranch;
    bool isControl; ///< SetVL / SetVS
    bool fu2Only;   ///< vector op that only FU2 can execute
    bool writesMask;
    LatClass lat;
};

namespace detail
{

// Columns: name, isVector, isMem, isLoad, isStore, isBranch,
//          isControl, fu2Only, writesMask, lat
inline constexpr OpTraits kOpTraits[kNumOpcodes] = {
    {"sadd",    false, false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"smul",    false, false, false, false, false, false, false, false,
     LatClass::Mul},
    {"sdiv",    false, false, false, false, false, false, false, false,
     LatClass::DivSqrt},
    {"smove",   false, false, false, false, false, false, false, false,
     LatClass::Move},
    {"sload",   false, true,  true,  false, false, false, false, false,
     LatClass::Mem},
    {"sstore",  false, true,  false, true,  false, false, false, false,
     LatClass::Mem},
    {"branch",  false, false, false, false, true,  false, false, false,
     LatClass::AddLogic},
    {"call",    false, false, false, false, true,  false, false, false,
     LatClass::AddLogic},
    {"ret",     false, false, false, false, true,  false, false, false,
     LatClass::AddLogic},
    {"setvl",   false, false, false, false, false, true,  false, false,
     LatClass::Move},
    {"setvs",   false, false, false, false, false, true,  false, false,
     LatClass::Move},
    {"vadd",    true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vmul",    true,  false, false, false, false, false, true,  false,
     LatClass::Mul},
    {"vdiv",    true,  false, false, false, false, false, true,  false,
     LatClass::DivSqrt},
    {"vsqrt",   true,  false, false, false, false, false, true,  false,
     LatClass::DivSqrt},
    {"vlogic",  true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vshift",  true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vcmp",    true,  false, false, false, false, false, false, true,
     LatClass::AddLogic},
    {"vmerge",  true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vreduce", true,  false, false, false, false, false, false, false,
     LatClass::AddLogic},
    {"vload",   true,  true,  true,  false, false, false, false, false,
     LatClass::Mem},
    {"vstore",  true,  true,  false, true,  false, false, false, false,
     LatClass::Mem},
    {"vgather", true,  true,  true,  false, false, false, false, false,
     LatClass::Mem},
    {"vscatter", true, true,  false, true,  false, false, false, false,
     LatClass::Mem},
};

} // namespace detail

/**
 * Look up the traits of an opcode. Inline: this runs several times
 * per instruction per simulated cycle, so the table lives in the
 * header and the lookup compiles down to an indexed load.
 */
inline const OpTraits &
traits(Opcode op)
{
    return detail::kOpTraits[static_cast<unsigned>(op)];
}

/** Short mnemonic, e.g. "vadd". */
const char *opName(Opcode op);

/** True for subroutine calls (they push the return stack). */
constexpr bool
isCallOp(Opcode op)
{
    return op == Opcode::Call;
}

/** True for subroutine returns (they pop the return stack). */
constexpr bool
isRetOp(Opcode op)
{
    return op == Opcode::Ret;
}

} // namespace oova

#endif // OOVA_ISA_OPCODES_HH
