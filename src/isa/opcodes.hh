/**
 * @file
 * Opcode set and static opcode traits.
 *
 * The opcode vocabulary is the minimum needed to reproduce the
 * paper's timing behaviour: what matters to both simulators is an
 * instruction's functional-unit class, latency class and memory
 * behaviour, not its exact semantics. FU2 executes every vector
 * operation; FU1 executes everything except multiply, divide and
 * square root (paper section 2.1).
 */

#ifndef OOVA_ISA_OPCODES_HH
#define OOVA_ISA_OPCODES_HH

#include <cstdint>

namespace oova
{

enum class Opcode : uint8_t
{
    // Scalar computation (A or S class chosen by the dest operand).
    SAdd,     ///< scalar add/sub/logic
    SMul,     ///< scalar multiply
    SDiv,     ///< scalar divide / sqrt
    SMove,    ///< scalar register move / immediate load
    // Scalar memory.
    SLoad,
    SStore,
    // Control.
    Branch,   ///< conditional or unconditional branch
    Call,     ///< subroutine call (pushes the return stack)
    Ret,      ///< subroutine return (pops the return stack)
    SetVL,    ///< write the vector length register
    SetVS,    ///< write the vector stride register
    // Vector arithmetic.
    VAdd,     ///< vector add/sub
    VMul,     ///< vector multiply (FU2 only)
    VDiv,     ///< vector divide (FU2 only)
    VSqrt,    ///< vector square root (FU2 only)
    VLogic,   ///< vector logical ops
    VShift,   ///< vector shifts
    VCmp,     ///< vector compare, writes a mask register
    VMerge,   ///< vector merge under mask
    VReduce,  ///< reduction: vector source, scalar dest
    // Vector memory.
    VLoad,    ///< unit or constant stride load
    VStore,   ///< unit or constant stride store
    VGather,  ///< indexed load
    VScatter, ///< indexed store
    NumOpcodes,
};

constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/** Latency classes; cycle counts live in LatencyTable. */
enum class LatClass : uint8_t
{
    Move,     ///< register move / control
    AddLogic, ///< add, logic, shift, compare, merge
    Mul,
    DivSqrt,
    Mem,      ///< memory access (latency comes from the mem model)
};

/** Static properties of one opcode. */
struct OpTraits
{
    const char *name;
    bool isVector;  ///< executes in the vector unit / uses V regs
    bool isMem;
    bool isLoad;
    bool isStore;
    bool isBranch;
    bool isControl; ///< SetVL / SetVS
    bool fu2Only;   ///< vector op that only FU2 can execute
    bool writesMask;
    LatClass lat;
};

/** Look up the traits of an opcode. */
const OpTraits &traits(Opcode op);

/** Short mnemonic, e.g. "vadd". */
const char *opName(Opcode op);

/** True for subroutine calls (they push the return stack). */
constexpr bool
isCallOp(Opcode op)
{
    return op == Opcode::Call;
}

/** True for subroutine returns (they pop the return stack). */
constexpr bool
isRetOp(Opcode op)
{
    return op == Opcode::Ret;
}

} // namespace oova

#endif // OOVA_ISA_OPCODES_HH
