/**
 * @file
 * The dynamic instruction record — one element of a trace.
 *
 * The simulators are trace driven, as in the paper: the workload
 * generator (our Dixie substitute) emits fully resolved dynamic
 * instructions, including memory addresses, per-instruction vector
 * length / stride, and branch outcomes. The simulators never compute
 * data values; they model time.
 */

#ifndef OOVA_ISA_INSTRUCTION_HH
#define OOVA_ISA_INSTRUCTION_HH

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace oova
{

/** Maximum source operands on any instruction. */
constexpr unsigned kMaxSrcRegs = 3;

/**
 * One dynamic (executed) instruction.
 *
 * Memory operands: for strided ops, @c addr is the base address and
 * @c strideBytes the element stride (possibly negative). For
 * gather/scatter the individual element addresses are unknown to the
 * hardware ahead of time, so the generator supplies the conservative
 * enclosing region [addr, addr+regionBytes) used for disambiguation,
 * matching the paper's range mechanism.
 */
struct DynInst
{
    Addr pc = 0;
    Opcode op = Opcode::SMove;

    RegId dst;
    std::array<RegId, kMaxSrcRegs> src{};
    uint8_t numSrc = 0;

    /** Vector length in elements for vector ops (1 for scalars). */
    uint16_t vl = 1;
    int64_t strideBytes = kElemBytes;
    Addr addr = 0;
    uint32_t regionBytes = 0; ///< gather/scatter only
    uint8_t elemSize = kElemBytes;

    // Gather/scatter index-vector shape (see indexedElemAddrs()).
    IndexPattern idxPattern = IndexPattern::None;
    uint32_t idxParam = 0; ///< pattern parameter (e.g. the modulus)
    uint64_t idxSeed = 0;  ///< per-instance seed (window placement)

    bool taken = false; ///< branch outcome from the trace
    Addr target = 0;    ///< branch target

    bool isSpill = false; ///< compiler-generated spill load/store

    const OpTraits &traits() const { return oova::traits(op); }

    bool isVector() const { return traits().isVector; }
    bool isMem() const { return traits().isMem; }
    bool isLoad() const { return traits().isLoad; }
    bool isStore() const { return traits().isStore; }
    bool isBranch() const { return traits().isBranch; }
    bool isVectorMem() const { return isMem() && isVector(); }
    bool isVectorArith() const { return isVector() && !isMem(); }
    bool isIndexedMem() const
    {
        return op == Opcode::VGather || op == Opcode::VScatter;
    }

    /** Number of element requests this op puts on the address bus. */
    unsigned
    memElems() const
    {
        return isVectorMem() ? vl : 1;
    }

    /**
     * Conservative byte range touched by a memory op, as computed by
     * the paper's Range pipeline stage: [first, last) half-open.
     */
    std::pair<Addr, Addr> memRange() const;

    /** True if two memory ranges overlap. */
    static bool
    rangesOverlap(const std::pair<Addr, Addr> &a,
                  const std::pair<Addr, Addr> &b)
    {
        return a.first < b.second && b.first < a.second;
    }

    /** Append a source operand. */
    void
    addSrc(RegId r)
    {
        src[numSrc++] = r;
    }

    /** Disassembly for debugging and trace dumps. */
    std::string toString() const;
};

/**
 * Reconstruct the per-element addresses of a gather/scatter from its
 * recorded index pattern. Pure and deterministic — the same
 * instruction always yields the same addresses — so simulation
 * results stay reproducible. Patterns:
 *
 *  - None: contiguous word walk of [addr, addr+regionBytes), the
 *    pre-pattern conservative assumption;
 *  - Permutation: every word of a vl-element window (placed by
 *    idxSeed on an 8-word boundary) exactly once, stepped by an odd
 *    stride co-prime with vl, so the bank sequence is an arithmetic
 *    walk that never revisits a bank within 8 elements;
 *  - CongruentMod: indices c, c+m, c+2m, ... (m = idxParam), all
 *    congruent mod m — the pathological case that serializes on a
 *    bank subset;
 *  - Random: xorshift-uniform words of the region.
 */
std::vector<Addr> indexedElemAddrs(const DynInst &di);

/**
 * Allocation-free variant for simulator hot paths: clears @p out and
 * fills it with the same addresses, reusing its capacity.
 */
void indexedElemAddrs(const DynInst &di, std::vector<Addr> &out);

/** Build a vector arithmetic instruction. */
DynInst makeVArith(Opcode op, RegId dst, RegId src_a, RegId src_b,
                   uint16_t vl);

/** Build a strided vector load. */
DynInst makeVLoad(RegId dst, RegId base_reg, Addr addr,
                  int64_t stride_bytes, uint16_t vl,
                  bool is_spill = false);

/** Build a strided vector store. */
DynInst makeVStore(RegId data, RegId base_reg, Addr addr,
                   int64_t stride_bytes, uint16_t vl,
                   bool is_spill = false);

/** Build a scalar ALU instruction. */
DynInst makeScalar(Opcode op, RegId dst, RegId src_a,
                   RegId src_b = RegId());

/** Build a scalar load. */
DynInst makeSLoad(RegId dst, RegId base_reg, Addr addr,
                  bool is_spill = false);

/** Build a scalar store. */
DynInst makeSStore(RegId data, RegId base_reg, Addr addr,
                   bool is_spill = false);

/** Build a conditional branch. */
DynInst makeBranch(RegId cond, bool taken, Addr target);

/** Build a subroutine call (always taken). */
DynInst makeCall(Addr target);

/** Build a subroutine return (always taken). */
DynInst makeRet(Addr target);

} // namespace oova

#endif // OOVA_ISA_INSTRUCTION_HH
