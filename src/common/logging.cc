#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace oova
{

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return std::string("<format error>");
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vcsprintf(fmt, args);
    va_end(args);
    return s;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace oova
