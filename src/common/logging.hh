/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal simulator bug; aborts (may dump core).
 * fatal()  - a user error (bad configuration); exits with status 1.
 * warn()   - something suspicious that the run survives.
 * inform() - plain status output.
 */

#ifndef OOVA_COMMON_LOGGING_HH
#define OOVA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace oova
{

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vcsprintf(const char *fmt, va_list args);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail
{

[[noreturn]] inline void
panicFmt(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    panicImpl(file, line, msg);
}

[[noreturn]] inline void
fatalFmt(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    fatalImpl(file, line, msg);
}

} // namespace detail

#define panic(...) \
    ::oova::detail::panicFmt(__FILE__, __LINE__, __VA_ARGS__)

#define fatal(...) \
    ::oova::detail::fatalFmt(__FILE__, __LINE__, __VA_ARGS__)

#define warn(...) \
    ::oova::warnImpl(::oova::csprintf(__VA_ARGS__))

#define inform(...) \
    ::oova::informImpl(::oova::csprintf(__VA_ARGS__))

/**
 * Invariant check that stays on in release builds.
 * Usage: sim_assert(cond, "message %d", value);
 */
#define sim_assert(cond, ...)                                          \
    do {                                                               \
        if (!(cond))                                                   \
            ::oova::detail::panicFmt(__FILE__, __LINE__,               \
                                     "assertion '" #cond "' failed: " \
                                     __VA_ARGS__);                     \
    } while (0)

} // namespace oova

#endif // OOVA_COMMON_LOGGING_HH
