/**
 * @file
 * A FIFO over contiguous storage for simulator hot paths.
 *
 * std::deque's segmented representation makes size()/front()/pop a
 * multi-load affair and costs one allocation per couple of entries;
 * the simulator's queues (ROB, fetch buffer, pipe FIFO, rename free
 * lists) are small, bounded, and hammered every simulated cycle.
 * SlidingQueue keeps elements in one vector and pops by advancing a
 * head index, compacting the dead prefix once it dominates the
 * buffer, so every operation is O(1) amortized on flat memory and
 * iteration order is exactly insertion (FIFO) order.
 */

#ifndef OOVA_COMMON_SLIDINGQUEUE_HH
#define OOVA_COMMON_SLIDINGQUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace oova
{

template <typename T>
class SlidingQueue
{
  public:
    bool empty() const { return head_ == buf_.size(); }
    size_t size() const { return buf_.size() - head_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_.back(); }
    const T &back() const { return buf_.back(); }

    void push_back(const T &v) { buf_.push_back(v); }
    void push_back(T &&v) { buf_.push_back(std::move(v)); }

    void
    pop_front()
    {
        ++head_;
        // Compact once the dead prefix dominates: amortized O(1)
        // per pop, and keeps the footprint proportional to the live
        // element count.
        if (head_ >= 64 && head_ * 2 >= buf_.size()) {
            buf_.erase(buf_.begin(),
                       buf_.begin() + static_cast<long>(head_));
            head_ = 0;
        }
    }

    void
    clear()
    {
        buf_.clear();
        head_ = 0;
    }

    using iterator = typename std::vector<T>::iterator;
    using const_iterator = typename std::vector<T>::const_iterator;

    iterator begin()
    {
        return buf_.begin() + static_cast<long>(head_);
    }
    iterator end() { return buf_.end(); }
    const_iterator begin() const
    {
        return buf_.begin() + static_cast<long>(head_);
    }
    const_iterator end() const { return buf_.end(); }

    auto rbegin() { return buf_.rbegin(); }
    auto rend() { return buf_.rend() - static_cast<long>(head_); }

    /** Erase the element at @p it (middle erase, preserves order). */
    iterator erase(iterator it) { return buf_.erase(it); }

  private:
    std::vector<T> buf_;
    size_t head_ = 0;
};

} // namespace oova

#endif // OOVA_COMMON_SLIDINGQUEUE_HH
