#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace oova
{

uint64_t
IntervalRecorder::busyCycles() const
{
    if (intervals_.empty())
        return 0;
    if (sortedDisjoint_) {
        // Non-overlapping intervals: merging is a plain sum.
        uint64_t busy = 0;
        for (const auto &[s, e] : intervals_)
            busy += e - s;
        return busy;
    }
    auto sorted = intervals_;
    std::sort(sorted.begin(), sorted.end());
    uint64_t busy = 0;
    Cycle cur_start = sorted[0].first;
    Cycle cur_end = sorted[0].second;
    for (size_t i = 1; i < sorted.size(); ++i) {
        if (sorted[i].first > cur_end) {
            busy += cur_end - cur_start;
            cur_start = sorted[i].first;
            cur_end = sorted[i].second;
        } else {
            cur_end = std::max(cur_end, sorted[i].second);
        }
    }
    busy += cur_end - cur_start;
    return busy;
}

void
IntervalRecorder::clear()
{
    intervals_.clear();
    lastEnd_ = 0;
    sortedDisjoint_ = true;
}

namespace
{

/**
 * Sort-free sweep for the common case: each unit's intervals are
 * already in order and non-overlapping (a serially-reused unit), so
 * the three lists merge with cursors instead of building and sorting
 * one big event vector. Produces exactly the sweep-line's output.
 */
std::array<uint64_t, UnitStateBreakdown::kNumStates>
computeSortedDisjoint(const IntervalRecorder &fu2,
                      const IntervalRecorder &fu1,
                      const IntervalRecorder &mem,
                      Cycle total_cycles)
{
    // Index by state bit: 2 = FU2, 1 = FU1, 0 = MEM.
    const std::vector<std::pair<Cycle, Cycle>> *ivs[3] = {
        &mem.intervals(), &fu1.intervals(), &fu2.intervals()};
    size_t idx[3] = {0, 0, 0};
    bool busy[3] = {false, false, false};

    auto clampEnd = [&](const std::pair<Cycle, Cycle> &iv) {
        return std::min<Cycle>(iv.second, total_cycles);
    };
    // Skip intervals the clamp makes empty (entirely past the end).
    auto skipDead = [&](int u) {
        const auto &v = *ivs[u];
        while (idx[u] < v.size() &&
               v[idx[u]].first >= clampEnd(v[idx[u]])) {
            ++idx[u];
        }
    };
    for (int u = 0; u < 3; ++u)
        skipDead(u);

    std::array<uint64_t, UnitStateBreakdown::kNumStates> out{};
    Cycle prev = 0;
    while (true) {
        Cycle next = kNoCycle;
        for (int u = 0; u < 3; ++u) {
            const auto &v = *ivs[u];
            if (idx[u] >= v.size())
                continue;
            Cycle b =
                busy[u] ? clampEnd(v[idx[u]]) : v[idx[u]].first;
            next = std::min(next, b);
        }
        if (next == kNoCycle)
            break;
        if (next > prev) {
            int state = (busy[2] ? 4 : 0) | (busy[1] ? 2 : 0) |
                        (busy[0] ? 1 : 0);
            out[static_cast<size_t>(state)] += next - prev;
            prev = next;
        }
        for (int u = 0; u < 3; ++u) {
            const auto &v = *ivs[u];
            if (busy[u] && idx[u] < v.size() &&
                clampEnd(v[idx[u]]) == next) {
                busy[u] = false;
                ++idx[u];
                skipDead(u);
            }
            // Back-to-back intervals re-enter at the same boundary.
            if (!busy[u] && idx[u] < v.size() &&
                v[idx[u]].first == next) {
                busy[u] = true;
            }
        }
    }
    if (total_cycles > prev)
        out[0] += total_cycles - prev; // trailing all-idle time
    return out;
}

} // namespace

std::array<uint64_t, UnitStateBreakdown::kNumStates>
UnitStateBreakdown::compute(const IntervalRecorder &fu2,
                            const IntervalRecorder &fu1,
                            const IntervalRecorder &mem,
                            Cycle total_cycles)
{
    if (fu2.sortedDisjoint() && fu1.sortedDisjoint() &&
        mem.sortedDisjoint()) {
        return computeSortedDisjoint(fu2, fu1, mem, total_cycles);
    }

    // Sweep-line over (cycle, unit, delta) events. A unit counts as
    // busy while its overlap depth is positive.
    struct Event
    {
        Cycle cycle;
        int unit;  // 2 = FU2, 1 = FU1, 0 = MEM (bit position)
        int delta; // +1 begin, -1 end
    };

    std::vector<Event> events;
    auto addUnit = [&](const IntervalRecorder &rec, int unit) {
        for (const auto &[s, e] : rec.intervals()) {
            Cycle end = std::min<Cycle>(e, total_cycles);
            if (s >= end)
                continue;
            events.push_back({s, unit, +1});
            events.push_back({end, unit, -1});
        }
    };
    addUnit(fu2, 2);
    addUnit(fu1, 1);
    addUnit(mem, 0);

    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.cycle < b.cycle;
              });

    std::array<uint64_t, kNumStates> out{};
    int depth[3] = {0, 0, 0};
    Cycle prev = 0;
    size_t i = 0;
    while (i < events.size()) {
        Cycle now = events[i].cycle;
        if (now > prev) {
            int state = (depth[2] > 0 ? 4 : 0) | (depth[1] > 0 ? 2 : 0) |
                        (depth[0] > 0 ? 1 : 0);
            out[state] += now - prev;
            prev = now;
        }
        while (i < events.size() && events[i].cycle == now) {
            depth[events[i].unit] += events[i].delta;
            ++i;
        }
    }
    if (total_cycles > prev)
        out[0] += total_cycles - prev; // trailing all-idle time

    return out;
}

std::string
UnitStateBreakdown::stateName(int state)
{
    sim_assert(state >= 0 && state < kNumStates, "state %d", state);
    std::string s = "<";
    s += (state & 4) ? "FU2," : "   ,";
    s += (state & 2) ? "FU1," : "   ,";
    s += (state & 1) ? "MEM" : "   ";
    s += ">";
    return s;
}

Histogram::Histogram(uint64_t bucket_width, size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets + 1, 0)
{
    sim_assert(bucket_width >= 1, "bucket width must be >= 1");
    sim_assert(num_buckets >= 1, "need at least one bucket");
}

void
Histogram::sample(uint64_t value)
{
    size_t idx = static_cast<size_t>(value / bucketWidth_);
    if (idx >= buckets_.size() - 1)
        idx = buckets_.size() - 1; // overflow bucket
    ++buckets_[idx];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / count_ : 0.0;
}

// ------------------------------------------------ occupancy telemetry

const char *
occStructName(OccStruct s)
{
    switch (s) {
    case OccStruct::Rob:
        return "rob";
    case OccStruct::AQueue:
        return "aqueue";
    case OccStruct::SQueue:
        return "squeue";
    case OccStruct::VQueue:
        return "vqueue";
    case OccStruct::FreeVRegs:
        return "free-vregs";
    case OccStruct::Mshrs:
        return "mshrs";
    case OccStruct::MemUnits:
        return "mem-units";
    case OccStruct::TlbPages:
        return "tlb-pages";
    case OccStruct::NumStructs:
        break;
    }
    panic("occStructName on %d", static_cast<int>(s));
}

double
StatDistribution::mean() const
{
    return samples ? static_cast<double>(sum) / samples : 0.0;
}

double
StatDistribution::stddev() const
{
    if (samples == 0)
        return 0.0;
    double n = static_cast<double>(samples);
    double m = static_cast<double>(sum) / n;
    double var = static_cast<double>(sumSquares) / n - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

uint64_t
StatDistribution::p95() const
{
    if (samples == 0)
        return 0;
    // Smallest rank covering 95% of the weight, in exact integers.
    uint64_t rank = (samples * 95 + 99) / 100;
    uint64_t cum = 0;
    for (size_t b = 0; b < kNumBuckets; ++b) {
        cum += buckets[b];
        if (cum >= rank) {
            uint64_t edge = (b + 1) * width - 1;
            return std::min(edge, maxValue);
        }
    }
    return maxValue; // unreachable: buckets sum to samples
}

void
StatTimeSeries::sample(uint64_t value, uint64_t n)
{
    while (n > 0) {
        size_t cur = static_cast<size_t>(total / epochLen);
        if (cur >= kMaxEpochs) {
            // Window full: halve the resolution, keep exact sums.
            for (size_t i = 0; i < kMaxEpochs / 2; ++i)
                sums[i] = sums[2 * i] + sums[2 * i + 1];
            std::fill(sums.begin() + kMaxEpochs / 2, sums.end(),
                      uint64_t{0});
            epochLen *= 2;
            continue;
        }
        uint64_t room = epochLen - total % epochLen;
        uint64_t take = std::min(room, n);
        sums[cur] += value * take;
        total += take;
        n -= take;
    }
}

uint64_t
StatTimeSeries::epochCycles(size_t e) const
{
    uint64_t start = e * epochLen;
    if (start >= total)
        return 0;
    return std::min(epochLen, total - start);
}

double
StatTimeSeries::epochMean(size_t e) const
{
    uint64_t cycles = epochCycles(e);
    return cycles ? static_cast<double>(sums[e]) / cycles : 0.0;
}

void
accumulateIntervalDepth(const IntervalRecorder &rec, Cycle total,
                        StatDistribution &dist, StatTimeSeries &ts)
{
    if (total == 0)
        return;
    // Sweep-line over begin/end events, clipped to [0, total).
    std::vector<std::pair<Cycle, int>> events;
    events.reserve(rec.intervals().size() * 2);
    for (const auto &[s, e] : rec.intervals()) {
        Cycle end = std::min<Cycle>(e, total);
        if (s >= end)
            continue;
        events.emplace_back(s, +1);
        events.emplace_back(end, -1);
    }
    std::sort(events.begin(), events.end());

    Cycle prev = 0;
    int64_t depth = 0;
    size_t i = 0;
    while (i < events.size()) {
        Cycle now = events[i].first;
        if (now > prev) {
            dist.sample(static_cast<uint64_t>(depth), now - prev);
            ts.sample(static_cast<uint64_t>(depth), now - prev);
            prev = now;
        }
        while (i < events.size() && events[i].first == now) {
            depth += events[i].second;
            ++i;
        }
    }
    if (total > prev) {
        dist.sample(static_cast<uint64_t>(depth), total - prev);
        ts.sample(static_cast<uint64_t>(depth), total - prev);
    }
}

bool
telemetryForced()
{
    static const bool forced = [] {
        const char *env = std::getenv("OOVA_TELEMETRY");
        return env && *env && std::strcmp(env, "0") != 0;
    }();
    return forced;
}

} // namespace oova
