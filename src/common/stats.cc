#include "common/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace oova
{

void
IntervalRecorder::add(Cycle start, Cycle end)
{
    sim_assert(end >= start, "interval end before start");
    if (end == start)
        return; // zero-length: nothing was occupied
    intervals_.emplace_back(start, end);
    lastEnd_ = std::max(lastEnd_, end);
}

uint64_t
IntervalRecorder::busyCycles() const
{
    if (intervals_.empty())
        return 0;
    auto sorted = intervals_;
    std::sort(sorted.begin(), sorted.end());
    uint64_t busy = 0;
    Cycle cur_start = sorted[0].first;
    Cycle cur_end = sorted[0].second;
    for (size_t i = 1; i < sorted.size(); ++i) {
        if (sorted[i].first > cur_end) {
            busy += cur_end - cur_start;
            cur_start = sorted[i].first;
            cur_end = sorted[i].second;
        } else {
            cur_end = std::max(cur_end, sorted[i].second);
        }
    }
    busy += cur_end - cur_start;
    return busy;
}

void
IntervalRecorder::clear()
{
    intervals_.clear();
    lastEnd_ = 0;
}

std::array<uint64_t, UnitStateBreakdown::kNumStates>
UnitStateBreakdown::compute(const IntervalRecorder &fu2,
                            const IntervalRecorder &fu1,
                            const IntervalRecorder &mem,
                            Cycle total_cycles)
{
    // Sweep-line over (cycle, unit, delta) events. A unit counts as
    // busy while its overlap depth is positive.
    struct Event
    {
        Cycle cycle;
        int unit;  // 2 = FU2, 1 = FU1, 0 = MEM (bit position)
        int delta; // +1 begin, -1 end
    };

    std::vector<Event> events;
    auto addUnit = [&](const IntervalRecorder &rec, int unit) {
        for (const auto &[s, e] : rec.intervals()) {
            Cycle end = std::min<Cycle>(e, total_cycles);
            if (s >= end)
                continue;
            events.push_back({s, unit, +1});
            events.push_back({end, unit, -1});
        }
    };
    addUnit(fu2, 2);
    addUnit(fu1, 1);
    addUnit(mem, 0);

    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.cycle < b.cycle;
              });

    std::array<uint64_t, kNumStates> out{};
    int depth[3] = {0, 0, 0};
    Cycle prev = 0;
    size_t i = 0;
    while (i < events.size()) {
        Cycle now = events[i].cycle;
        if (now > prev) {
            int state = (depth[2] > 0 ? 4 : 0) | (depth[1] > 0 ? 2 : 0) |
                        (depth[0] > 0 ? 1 : 0);
            out[state] += now - prev;
            prev = now;
        }
        while (i < events.size() && events[i].cycle == now) {
            depth[events[i].unit] += events[i].delta;
            ++i;
        }
    }
    if (total_cycles > prev)
        out[0] += total_cycles - prev; // trailing all-idle time

    return out;
}

std::string
UnitStateBreakdown::stateName(int state)
{
    sim_assert(state >= 0 && state < kNumStates, "state %d", state);
    std::string s = "<";
    s += (state & 4) ? "FU2," : "   ,";
    s += (state & 2) ? "FU1," : "   ,";
    s += (state & 1) ? "MEM" : "   ";
    s += ">";
    return s;
}

Histogram::Histogram(uint64_t bucket_width, size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets + 1, 0)
{
    sim_assert(bucket_width >= 1, "bucket width must be >= 1");
    sim_assert(num_buckets >= 1, "need at least one bucket");
}

void
Histogram::sample(uint64_t value)
{
    size_t idx = static_cast<size_t>(value / bucketWidth_);
    if (idx >= buckets_.size() - 1)
        idx = buckets_.size() - 1; // overflow bucket
    ++buckets_[idx];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / count_ : 0.0;
}

} // namespace oova
