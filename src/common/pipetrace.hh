/**
 * @file
 * Instruction-lifecycle tracer for the OOOVA pipeline, emitting the
 * O3PipeView text format that Konata (and gem5's o3-pipeview script)
 * render as a per-instruction waterfall.
 *
 * Recording is allocation-free after construction: timestamps land
 * in a preallocated ring of records, and text formatting happens
 * only when a record is flushed (ring wrap or finish()). The tracer
 * is observe-only — attaching one never changes simulated timing —
 * and the simulator pays nothing when no tracer is configured (a
 * single null check per stage hook).
 */

#ifndef OOVA_COMMON_PIPETRACE_HH
#define OOVA_COMMON_PIPETRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace oova
{

struct DynInst;

/** Sentinel record handle: instruction not traced. */
constexpr uint32_t kNoTraceRec = 0xffffffffu;

class PipeTracer
{
  public:
    /** Default cap on traced instructions (keeps files viewable). */
    static constexpr size_t kDefaultLimit = 50000;
    /** Default ring capacity (must exceed max in-flight count). */
    static constexpr size_t kDefaultWindow = 4096;

    explicit PipeTracer(size_t limit = kDefaultLimit,
                        size_t window = kDefaultWindow);

    /**
     * Start a record at fetch. Returns a handle for the later stage
     * hooks, or kNoTraceRec once @p limit records have been started
     * (the simulator keeps running untraced). When the ring is full
     * the oldest record is flushed to text to make room.
     */
    uint32_t fetch(const DynInst *di, uint64_t seq, Cycle c);

    // Later lifecycle stages; all ignore kNoTraceRec and handles
    // that have already been flushed out of the ring.
    void rename(uint32_t rec, Cycle c);
    void dispatch(uint32_t rec, Cycle c);
    void issue(uint32_t rec, Cycle c);
    void complete(uint32_t rec, Cycle c);
    void retire(uint32_t rec, Cycle c);
    /** The instruction was squashed (trap replay); never retires. */
    void squash(uint32_t rec, Cycle c);

    /** Flush every still-buffered record; call once after the run. */
    void finish();

    /** The emitted trace text (valid after finish()). */
    const std::string &str() const { return out_; }

    /** Number of records started (bounded by the limit). */
    uint64_t recorded() const { return nextRec_; }

    /** Write the trace text to @p path; false on I/O failure. */
    bool write(const std::string &path) const;

  private:
    struct Rec
    {
        const DynInst *di = nullptr;
        uint64_t seq = 0;
        Cycle fetch = kNoCycle;
        Cycle rename = kNoCycle;
        Cycle dispatch = kNoCycle;
        Cycle issue = kNoCycle;
        Cycle complete = kNoCycle;
        Cycle retire = kNoCycle;
        bool squashed = false;
    };

    Rec *slot(uint32_t rec);
    void flush(const Rec &r);

    size_t limit_;
    std::vector<Rec> ring_;
    uint64_t nextRec_ = 0;  ///< handles handed out so far
    uint64_t flushed_ = 0;  ///< handles already emitted as text
    std::string out_;
};

} // namespace oova

#endif // OOVA_COMMON_PIPETRACE_HH
