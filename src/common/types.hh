/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 */

#ifndef OOVA_COMMON_TYPES_HH
#define OOVA_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace oova
{

/** Simulated clock cycle. Cycle 0 is the first cycle of execution. */
using Cycle = uint64_t;

/** Byte address in the simulated (flat, 64-bit) address space. */
using Addr = uint64_t;

/** Dynamic instruction sequence number (position in the trace). */
using SeqNum = uint64_t;

/** Sentinel for "no cycle": later than any real cycle. */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid sequence number. */
constexpr SeqNum kNoSeq = std::numeric_limits<SeqNum>::max();

} // namespace oova

#endif // OOVA_COMMON_TYPES_HH
