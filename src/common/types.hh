/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 */

#ifndef OOVA_COMMON_TYPES_HH
#define OOVA_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace oova
{

/** Simulated clock cycle. Cycle 0 is the first cycle of execution. */
using Cycle = uint64_t;

/** Byte address in the simulated (flat, 64-bit) address space. */
using Addr = uint64_t;

/** Dynamic instruction sequence number (position in the trace). */
using SeqNum = uint64_t;

/** Sentinel for "no cycle": later than any real cycle. */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid sequence number. */
constexpr SeqNum kNoSeq = std::numeric_limits<SeqNum>::max();

/**
 * Shape of a gather/scatter index vector. The trace generator knows
 * how it built each index vector; recording the shape (instead of
 * vl full index values) lets the simulators reconstruct the exact
 * per-element addresses deterministically and hand them to the
 * memory system, so bank conflicts follow the real access pattern.
 * See indexedElemAddrs() in isa/instruction.hh.
 */
enum class IndexPattern : uint8_t
{
    /** Unknown: fall back to a contiguous word walk of the region. */
    None,
    /**
     * A permutation of a contiguous element window — every word of
     * the window touched exactly once, in a shuffled but
     * bank-friendly order (e.g. a shuffled table sweep).
     */
    Permutation,
    /**
     * All indices congruent modulo the pattern parameter m; with m
     * equal to the bank count every element lands on one bank.
     */
    CongruentMod,
    /** Uniform pseudo-random indices over the whole region. */
    Random,
};

} // namespace oova

#endif // OOVA_COMMON_TYPES_HH
