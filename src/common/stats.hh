/**
 * @file
 * Statistics primitives used by the simulators and the experiment
 * harness: busy-interval recording, the 8-way functional-unit state
 * breakdown of the paper's figures 3 and 7, and a small histogram.
 */

#ifndef OOVA_COMMON_STATS_HH
#define OOVA_COMMON_STATS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace oova
{

/**
 * Records half-open busy intervals [start, end) for one hardware
 * unit. Intervals may be added out of order and may overlap; queries
 * merge them first.
 */
class IntervalRecorder
{
  public:
    /**
     * Record that the unit was busy during [start, end). Inline:
     * every simulated issue records an interval, so this must be a
     * bounds check and a push_back.
     */
    void
    add(Cycle start, Cycle end)
    {
        sim_assert(end >= start, "interval end before start");
        if (end == start)
            return; // zero-length: nothing was occupied
        if (start < lastEnd_)
            sortedDisjoint_ = false;
        intervals_.emplace_back(start, end);
        lastEnd_ = std::max(lastEnd_, end);
    }

    /** Total busy cycles with overlapping intervals merged. */
    uint64_t busyCycles() const;

    /** Latest end cycle over all intervals (0 if none). */
    Cycle lastEnd() const { return lastEnd_; }

    /** Raw (unmerged) intervals, in insertion order. */
    const std::vector<std::pair<Cycle, Cycle>> &
    intervals() const
    {
        return intervals_;
    }

    /** Number of recorded intervals. */
    size_t count() const { return intervals_.size(); }

    /**
     * True while the recorded intervals are non-overlapping and in
     * nondecreasing order — the natural product of a serially-reused
     * unit — enabling the sort-free query fast paths.
     */
    bool sortedDisjoint() const { return sortedDisjoint_; }

    void clear();

  private:
    std::vector<std::pair<Cycle, Cycle>> intervals_;
    Cycle lastEnd_ = 0;
    bool sortedDisjoint_ = true;
};

/**
 * Per-cycle machine-state breakdown over the three vector units,
 * reproducing the 3-tuple states (FU2, FU1, MEM) of the paper's
 * figures 3 and 7. State index bit assignment: bit 2 = FU2 busy,
 * bit 1 = FU1 busy, bit 0 = MEM busy; e.g. state 0 is
 * ( , , ) -- all idle -- and state 7 is (FU2, FU1, MEM).
 */
class UnitStateBreakdown
{
  public:
    static constexpr int kNumStates = 8;

    /**
     * Compute the number of cycles spent in each of the 8 states.
     *
     * @param fu2 busy intervals of the general-purpose unit
     * @param fu1 busy intervals of the restricted unit
     * @param mem busy intervals of the memory port
     * @param total_cycles the denominator; cycles past the last
     *        interval count as all-idle
     */
    static std::array<uint64_t, kNumStates>
    compute(const IntervalRecorder &fu2, const IntervalRecorder &fu1,
            const IntervalRecorder &mem, Cycle total_cycles);

    /** Human-readable state label, e.g. "<FU2,FU1,MEM>". */
    static std::string stateName(int state);
};

/** Linear-bucket histogram with running sum/min/max. */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (>= 1)
     * @param num_buckets bucket count; values past the last bucket
     *        land in the overflow bucket
     */
    Histogram(uint64_t bucket_width, size_t num_buckets);

    void sample(uint64_t value);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const;

    /** Bucket counts; the final entry is the overflow bucket. */
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    uint64_t bucketWidth() const { return bucketWidth_; }

  private:
    uint64_t bucketWidth_;
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
};

} // namespace oova

#endif // OOVA_COMMON_STATS_HH
