/**
 * @file
 * Statistics primitives used by the simulators and the experiment
 * harness: busy-interval recording, the 8-way functional-unit state
 * breakdown of the paper's figures 3 and 7, and a small histogram.
 */

#ifndef OOVA_COMMON_STATS_HH
#define OOVA_COMMON_STATS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace oova
{

/**
 * Records half-open busy intervals [start, end) for one hardware
 * unit. Intervals may be added out of order and may overlap; queries
 * merge them first.
 */
class IntervalRecorder
{
  public:
    /**
     * Record that the unit was busy during [start, end). Inline:
     * every simulated issue records an interval, so this must be a
     * bounds check and a push_back.
     */
    void
    add(Cycle start, Cycle end)
    {
        sim_assert(end >= start, "interval end before start");
        if (end == start)
            return; // zero-length: nothing was occupied
        if (start < lastEnd_)
            sortedDisjoint_ = false;
        intervals_.emplace_back(start, end);
        lastEnd_ = std::max(lastEnd_, end);
    }

    /** Total busy cycles with overlapping intervals merged. */
    uint64_t busyCycles() const;

    /** Latest end cycle over all intervals (0 if none). */
    Cycle lastEnd() const { return lastEnd_; }

    /** Raw (unmerged) intervals, in insertion order. */
    const std::vector<std::pair<Cycle, Cycle>> &
    intervals() const
    {
        return intervals_;
    }

    /** Number of recorded intervals. */
    size_t count() const { return intervals_.size(); }

    /**
     * True while the recorded intervals are non-overlapping and in
     * nondecreasing order — the natural product of a serially-reused
     * unit — enabling the sort-free query fast paths.
     */
    bool sortedDisjoint() const { return sortedDisjoint_; }

    void clear();

  private:
    std::vector<std::pair<Cycle, Cycle>> intervals_;
    Cycle lastEnd_ = 0;
    bool sortedDisjoint_ = true;
};

/**
 * Per-cycle machine-state breakdown over the three vector units,
 * reproducing the 3-tuple states (FU2, FU1, MEM) of the paper's
 * figures 3 and 7. State index bit assignment: bit 2 = FU2 busy,
 * bit 1 = FU1 busy, bit 0 = MEM busy; e.g. state 0 is
 * ( , , ) -- all idle -- and state 7 is (FU2, FU1, MEM).
 */
class UnitStateBreakdown
{
  public:
    static constexpr int kNumStates = 8;

    /**
     * Compute the number of cycles spent in each of the 8 states.
     *
     * @param fu2 busy intervals of the general-purpose unit
     * @param fu1 busy intervals of the restricted unit
     * @param mem busy intervals of the memory port
     * @param total_cycles the denominator; cycles past the last
     *        interval count as all-idle
     */
    static std::array<uint64_t, kNumStates>
    compute(const IntervalRecorder &fu2, const IntervalRecorder &fu1,
            const IntervalRecorder &mem, Cycle total_cycles);

    /** Human-readable state label, e.g. "<FU2,FU1,MEM>". */
    static std::string stateName(int state);
};

/** Linear-bucket histogram with running sum/min/max. */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (>= 1)
     * @param num_buckets bucket count; values past the last bucket
     *        land in the overflow bucket
     */
    Histogram(uint64_t bucket_width, size_t num_buckets);

    void sample(uint64_t value);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const;

    /** Bucket counts; the final entry is the overflow bucket. */
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    uint64_t bucketWidth() const { return bucketWidth_; }

  private:
    uint64_t bucketWidth_;
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
};

// ------------------------------------------------ occupancy telemetry

/**
 * Machine structures sampled by the occupancy telemetry layer
 * (cfg.telemetry / OOVA_TELEMETRY=1). One StatDistribution and one
 * StatTimeSeries per entry ride in SimResult; occStructName() gives
 * the stable label used by simResultJson(), the --stats dump, and
 * the README table (lint-enforced both directions).
 */
enum class OccStruct : uint8_t
{
    Rob,          ///< reorder-buffer entries in flight
    AQueue,       ///< address-unit instruction queue depth
    SQueue,       ///< scalar-unit instruction queue depth
    VQueue,       ///< vector-unit instruction queue depth
    FreeVRegs,    ///< free physical vector registers
    Mshrs,        ///< in-flight cache miss-status registers
    MemUnits,     ///< concurrently busy memory units
    TlbPages,     ///< valid (resident) TLB entries, both levels
    NumStructs,
};

constexpr size_t kNumOccStructs =
    static_cast<size_t>(OccStruct::NumStructs);

/** Stable lowercase label for @p s, e.g. "rob", "free-vregs". */
const char *occStructName(OccStruct s);

/**
 * Running distribution over exact integers: count/sum/sum-of-squares
 * plus min/max and a fixed 16-bucket linear histogram (last bucket
 * catches overflow). Plain aggregate so simResultJson() can
 * round-trip it bit-exactly; sample() is inline and allocation-free
 * because the simulators call it on every event-calendar advance.
 * @p n is a bulk weight: an idle jump of k cycles charges its
 * structure occupancies once with n = k, exactly like the CPI stack.
 */
struct StatDistribution
{
    static constexpr size_t kNumBuckets = 16;

    uint64_t width = 1; ///< histogram bucket width (>= 1)
    uint64_t samples = 0;
    uint64_t sum = 0;
    uint64_t sumSquares = 0;
    uint64_t minValue = 0;
    uint64_t maxValue = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    /**
     * Size the histogram so [0, capacity] spans the 16 buckets: a
     * full structure lands in the last bucket, not in overflow.
     */
    void
    setCapacity(uint64_t capacity)
    {
        width = std::max<uint64_t>((capacity + kNumBuckets) /
                                       kNumBuckets,
                                   1);
    }

    void
    sample(uint64_t value, uint64_t n = 1)
    {
        if (n == 0)
            return; // zero-length calendar jump: no cycles to charge
        minValue = samples ? std::min(minValue, value) : value;
        maxValue = std::max(maxValue, value);
        samples += n;
        sum += value * n;
        sumSquares += value * value * n;
        buckets[std::min<uint64_t>(value / width,
                                   kNumBuckets - 1)] += n;
    }

    double mean() const;
    /** Population standard deviation. */
    double stddev() const;
    /**
     * 95th-percentile upper bound read off the histogram: the
     * inclusive upper edge of the bucket holding the 95th-percentile
     * sample, clamped to the observed max.
     */
    uint64_t p95() const;

    bool operator==(const StatDistribution &) const = default;
};

/**
 * Bounded-memory time series: the sample stream is folded into at
 * most 32 fixed-length epochs of value-sums. When the run outgrows
 * the window, adjacent epochs pairwise-merge and the epoch length
 * doubles — O(1) amortized, exact sums, and the final shape is
 * independent of how the samples were batched. Epoch means
 * reconstruct as sums[e] / epochLen (the last epoch may be partial;
 * epochCycles() gives its true denominator).
 */
struct StatTimeSeries
{
    static constexpr size_t kMaxEpochs = 32;

    uint64_t epochLen = 1; ///< cycles per epoch (power of two)
    uint64_t total = 0;    ///< total weight sampled (== cycles)
    std::array<uint64_t, kMaxEpochs> sums{};

    void sample(uint64_t value, uint64_t n = 1);

    /** Number of epochs holding data. */
    size_t
    epochsUsed() const
    {
        return static_cast<size_t>((total + epochLen - 1) / epochLen);
    }

    /** Weight actually accumulated into epoch @p e. */
    uint64_t epochCycles(size_t e) const;
    /** Mean sampled value over epoch @p e. */
    double epochMean(size_t e) const;

    bool operator==(const StatTimeSeries &) const = default;
};

/**
 * Feed the concurrency depth of @p rec's intervals, cycle by cycle
 * over [0, total), into @p dist and @p ts: for every cycle the
 * sampled value is the number of intervals covering it (intervals
 * are clipped to the range). Charges exactly @p total weight into
 * each sink, which is what the occupancy-conservation checker
 * verifies. This is how per-unit memory busy is sampled on both
 * machines — REF has no cycle loop to hook, so both derive it from
 * the same busy()-interval sweep at end of run.
 */
void accumulateIntervalDepth(const IntervalRecorder &rec, Cycle total,
                             StatDistribution &dist,
                             StatTimeSeries &ts);

/**
 * True when OOVA_TELEMETRY=1 (or any nonzero value) is in the
 * environment: forces occupancy sampling on regardless of
 * cfg.telemetry, exactly like OOVA_CHECK overrides checkLevel. Used
 * by CI to prove every golden byte-identical with sampling enabled.
 */
bool telemetryForced();

} // namespace oova

#endif // OOVA_COMMON_STATS_HH
