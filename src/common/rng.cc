#include "common/rng.hh"

#include "common/logging.hh"

namespace oova
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

uint64_t
Rng::uniform(uint64_t lo, uint64_t hi)
{
    sim_assert(lo <= hi, "uniform(%llu, %llu)",
               (unsigned long long)lo, (unsigned long long)hi);
    uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - (UINT64_MAX % span);
    uint64_t v = next();
    while (v >= limit)
        v = next();
    return lo + (v % span);
}

double
Rng::uniformReal()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

} // namespace oova
