#include "common/table.hh"

#include <sstream>

#include "common/logging.hh"

namespace oova
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    sim_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    sim_assert(cells.size() == headers_.size(),
               "row has %zu cells, table has %zu columns",
               cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            // Left-align the first column (names), right-align data.
            if (c == 0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << '\n';
    };

    emitRow(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
TextTable::fmt(uint64_t v)
{
    return std::to_string(v);
}

} // namespace oova
