/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in the workload generator flow from one
 * seeded Rng instance so that traces, and therefore every simulation
 * result, are bit-for-bit reproducible across runs and platforms.
 * The generator is xoshiro256** (Blackman & Vigna), which is small,
 * fast and has no global state.
 */

#ifndef OOVA_COMMON_RNG_HH
#define OOVA_COMMON_RNG_HH

#include <cstdint>

namespace oova
{

/** xoshiro256** pseudo-random generator with convenience helpers. */
class Rng
{
  public:
    /** Seed via splitmix64 so any 64-bit seed yields a good state. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    uint64_t uniform(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool chance(double p);

  private:
    uint64_t state_[4];
};

} // namespace oova

#endif // OOVA_COMMON_RNG_HH
