/**
 * @file
 * Plain-text table formatting for the benchmark harness. Every
 * reproduced paper table/figure is emitted through TextTable so the
 * output is aligned for humans and optionally machine-readable CSV.
 */

#ifndef OOVA_COMMON_TABLE_HH
#define OOVA_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace oova
{

/** A simple column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; the cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns and a separator under the header. */
    std::string str() const;

    /** Render as CSV (no padding, comma-separated). */
    std::string csv() const;

    size_t numRows() const { return rows_.size(); }
    size_t numCols() const { return headers_.size(); }

    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Format a double with fixed precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format an integer with thousands grouping disabled. */
    static std::string fmt(uint64_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace oova

#endif // OOVA_COMMON_TABLE_HH
