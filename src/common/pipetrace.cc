#include "common/pipetrace.hh"

#include <fstream>

#include "common/logging.hh"
#include "isa/instruction.hh"

namespace oova
{

namespace
{

/**
 * O3PipeView ticks. gem5 emits picosecond ticks at a 1GHz-ish
 * clock; Konata only needs the stage ticks to share one scale, so a
 * fixed 1000 ticks/cycle keeps the files grep-able in cycles.
 */
constexpr uint64_t kTicksPerCycle = 1000;

uint64_t
tick(Cycle c)
{
    return c == kNoCycle ? 0 : c * kTicksPerCycle;
}

/** The disasm field is colon-delimited; sanitize just in case. */
std::string
sanitize(std::string s)
{
    for (char &c : s) {
        if (c == ':' || c == '\n')
            c = ';';
    }
    return s;
}

} // namespace

PipeTracer::PipeTracer(size_t limit, size_t window) : limit_(limit)
{
    ring_.resize(window ? window : 1);
    out_.reserve(4096);
}

uint32_t
PipeTracer::fetch(const DynInst *di, uint64_t seq, Cycle c)
{
    if (nextRec_ >= limit_)
        return kNoTraceRec;
    if (nextRec_ - flushed_ == ring_.size())
        flush(ring_[flushed_++ % ring_.size()]);
    uint32_t rec = static_cast<uint32_t>(nextRec_++);
    Rec &r = ring_[rec % ring_.size()];
    r = Rec{};
    r.di = di;
    r.seq = seq;
    r.fetch = c;
    return rec;
}

PipeTracer::Rec *
PipeTracer::slot(uint32_t rec)
{
    if (rec == kNoTraceRec || rec < flushed_)
        return nullptr;
    return &ring_[rec % ring_.size()];
}

void
PipeTracer::rename(uint32_t rec, Cycle c)
{
    if (Rec *r = slot(rec))
        r->rename = c;
}

void
PipeTracer::dispatch(uint32_t rec, Cycle c)
{
    if (Rec *r = slot(rec))
        r->dispatch = c;
}

void
PipeTracer::issue(uint32_t rec, Cycle c)
{
    if (Rec *r = slot(rec))
        r->issue = c;
}

void
PipeTracer::complete(uint32_t rec, Cycle c)
{
    if (Rec *r = slot(rec))
        r->complete = c;
}

void
PipeTracer::retire(uint32_t rec, Cycle c)
{
    if (Rec *r = slot(rec))
        r->retire = c;
}

void
PipeTracer::squash(uint32_t rec, Cycle)
{
    if (Rec *r = slot(rec))
        r->squashed = true;
}

void
PipeTracer::flush(const Rec &r)
{
    // One record, gem5 O3PipeView framing: the fetch line carries
    // identity (pc, sequence number, disasm), each further line one
    // stage tick (0 = never reached), and the retire line closes the
    // record. A squashed instruction retires at tick 0, which is how
    // Konata renders the kill.
    out_ += csprintf(
        "O3PipeView:fetch:%llu:0x%08llx:0:%llu:%s\n",
        static_cast<unsigned long long>(tick(r.fetch)),
        static_cast<unsigned long long>(r.di ? r.di->pc : 0),
        static_cast<unsigned long long>(r.seq),
        sanitize(r.di ? r.di->toString() : "?").c_str());
    out_ += csprintf("O3PipeView:decode:%llu\n",
                     static_cast<unsigned long long>(tick(r.rename)));
    out_ += csprintf("O3PipeView:rename:%llu\n",
                     static_cast<unsigned long long>(tick(r.rename)));
    out_ += csprintf(
        "O3PipeView:dispatch:%llu\n",
        static_cast<unsigned long long>(tick(r.dispatch)));
    out_ += csprintf("O3PipeView:issue:%llu\n",
                     static_cast<unsigned long long>(tick(r.issue)));
    out_ += csprintf(
        "O3PipeView:complete:%llu\n",
        static_cast<unsigned long long>(tick(r.complete)));
    out_ += csprintf(
        "O3PipeView:retire:%llu:store:0\n",
        static_cast<unsigned long long>(
            r.squashed ? 0 : tick(r.retire)));
}

void
PipeTracer::finish()
{
    while (flushed_ < nextRec_)
        flush(ring_[flushed_++ % ring_.size()]);
}

bool
PipeTracer::write(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os << out_;
    return static_cast<bool>(os);
}

} // namespace oova
