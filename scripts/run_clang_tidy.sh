#!/usr/bin/env bash
# clang-tidy gate: analyze every src/ and bench/ translation unit
# using the checked-in .clang-tidy config and the build tree's
# compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is ON).
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
# tests/ are exempt: gtest's macro expansion trips bugprone checks
# the test author cannot address.

set -eu -o pipefail

BUILD="${1:-build}"
cd "$(dirname "$0")/.."

if [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "run_clang_tidy: $BUILD/compile_commands.json not found;" \
         "configure with CMake first" >&2
    exit 2
fi

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not installed" >&2
    exit 2
fi
clang-tidy --version

if command -v run-clang-tidy > /dev/null 2>&1; then
    # Parallel runner from the clang-tools package.
    run-clang-tidy -p "$BUILD" -quiet '(src|bench)/.*\.cc$'
else
    files="$(python3 - "$BUILD" <<'EOF'
import json, sys
entries = json.load(open(sys.argv[1] + "/compile_commands.json"))
files = sorted({e["file"] for e in entries})
print("\n".join(f for f in files if "/src/" in f or "/bench/" in f))
EOF
)"
    # shellcheck disable=SC2086
    clang-tidy -p "$BUILD" --quiet $files
fi
echo "clang-tidy gate passed"
